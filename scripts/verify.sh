#!/bin/sh
# verify.sh — the tier-1 gate: build, vet, format, doc lint, tests.
# Run from the repository root. Exits non-zero on the first failure.
set -eu
cd "$(dirname "$0")/.."

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== doc lint =="
# Every package must open its canonical doc file with a package comment:
# "// Package <name> ..." for libraries, "// Command <name> ..." for mains.
missing=0
for dir in $(go list -f '{{.Dir}}' ./...); do
    name=$(go list -f '{{.Name}}' "$dir")
    if [ "$name" = main ]; then
        want="// Command "
    else
        want="// Package $name"
    fi
    ok=0
    for f in "$dir"/*.go; do
        case "$f" in *_test.go) continue ;; esac
        if grep -q "^$want" "$f"; then
            ok=1
            break
        fi
    done
    if [ "$ok" = 0 ]; then
        echo "missing package comment (want \"$want...\"): $dir" >&2
        missing=1
    fi
done
[ "$missing" = 0 ]

echo "== go test =="
go test ./...

echo "== go test -race (concurrency gate) =="
# The live harness, transport sublayer, parallel explorer and the
# observability registry are the concurrent core; run their suites
# (plus the facade) under the race detector.
go test -race ./internal/sim/... ./internal/transport/... ./internal/conformance/... \
    ./internal/crash/... ./internal/dsim/... ./internal/obs/... .

echo "== go test -race (socket runtime gate) =="
# The TCP mesh, its RPC layer and the mod daemon are real-concurrency
# code (listener/dialer goroutines, reconnect loops, OS-process tests);
# their suites run under the race detector too.
go test -race ./internal/netmesh/ ./internal/modrpc/ ./cmd/mod/

echo "== fault-matrix smoke (short mode) =="
# A quick seeded-loss pass over the fault-injection paths.
go test -short -run 'Fault|Lossy|Partition' ./internal/sim/... ./internal/conformance/...

echo "== crash smoke (recovery gate) =="
# One seeded crash-restart run per protocol class — tagless, tagged
# (causal-rst), general (sync) — under the race detector: each must
# crash, restore its checkpoint, replay its journal, and still deliver
# every message exactly once.
go test -race -run 'TestCrashRestartRecoversEveryProtocol/^(tagless|causal-rst|sync)$' ./internal/sim/

echo "== trace smoke (observability gate) =="
# Run an instrumented causal-order scenario through mobench and validate
# the emitted Chrome trace: well-formed JSON, monotone per-track
# timestamps, every deliver preceded by its send (-validate re-reads the
# file and checks all three).
tracetmp=$(mktemp -d)
trap 'rm -rf "$tracetmp"' EXIT
go run ./cmd/mobench trace -proto causal-rst -o "$tracetmp/trace.json" -validate 2>/dev/null
go run ./cmd/mobench trace -proto causal-rst -lossy -o "$tracetmp/lossy.json" -validate 2>/dev/null

echo "== net smoke (real-process gate) =="
# Build the mod daemon, spawn three of them on loopback, drive the
# seeded causal workload over their client sockets, and diff the
# reassembled user view against the in-memory sim's (mobench exits
# non-zero on any divergence or daemon failure).
go build -o "$tracetmp/mod" ./cmd/mod
go run ./cmd/mobench net -smoke -modbin "$tracetmp/mod"

echo "== nil-tracer overhead smoke =="
# One pass over the explorer benchmarks, uninstrumented and traced: the
# nil-tracer fast path must not break the hot loop (the /traced variant
# asserts records flow; timing comparisons are for humans via -bench).
go test -run '^$' -bench 'BenchmarkExplore/causal-rst-4msg' -benchtime 1x . >/dev/null

echo "verify: OK"
