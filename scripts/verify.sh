#!/bin/sh
# verify.sh — the tier-1 gate: build, vet, format, doc lint, tests.
# Run from the repository root. Exits non-zero on the first failure.
set -eu
cd "$(dirname "$0")/.."

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== doc lint =="
# Every package must open its canonical doc file with a package comment:
# "// Package <name> ..." for libraries, "// Command <name> ..." for mains.
missing=0
for dir in $(go list -f '{{.Dir}}' ./...); do
    name=$(go list -f '{{.Name}}' "$dir")
    if [ "$name" = main ]; then
        want="// Command "
    else
        want="// Package $name"
    fi
    ok=0
    for f in "$dir"/*.go; do
        case "$f" in *_test.go) continue ;; esac
        if grep -q "^$want" "$f"; then
            ok=1
            break
        fi
    done
    if [ "$ok" = 0 ]; then
        echo "missing package comment (want \"$want...\"): $dir" >&2
        missing=1
    fi
done
[ "$missing" = 0 ]

echo "== doc lint (exported identifiers) =="
# The hot-path packages are API surface for the load tooling: every
# exported top-level identifier in internal/transport and
# internal/netmesh must carry a doc comment.
undocumented=0
for dir in internal/transport internal/netmesh; do
    for f in "$dir"/*.go; do
        case "$f" in *_test.go) continue ;; esac
        found=$(awk '
            /^(func|type|var|const) [A-Z]/ || /^func \([a-zA-Z]+ ?\*?[A-Z][A-Za-z0-9]*\) [A-Z]/ {
                if (prev !~ /^\/\//) print FILENAME ":" FNR ": " $0
            }
            { prev = $0 }
        ' "$f")
        if [ -n "$found" ]; then
            echo "undocumented exports:" >&2
            echo "$found" >&2
            undocumented=1
        fi
    done
done
[ "$undocumented" = 0 ]

echo "== go test =="
go test ./...

echo "== go test -race (concurrency gate) =="
# The live harness, transport sublayer, parallel explorer and the
# observability registry are the concurrent core; run their suites
# (plus the facade) under the race detector.
go test -race ./internal/sim/... ./internal/transport/... ./internal/conformance/... \
    ./internal/crash/... ./internal/dsim/... ./internal/obs/... ./internal/shard/... \
    ./internal/fleetobs/... ./internal/member/... .

echo "== go test -race (socket runtime gate) =="
# The TCP mesh, its RPC layer and the mod daemon are real-concurrency
# code (listener/dialer goroutines, reconnect loops, OS-process tests);
# their suites run under the race detector too.
go test -race ./internal/netmesh/ ./internal/chanmux/ ./internal/modrpc/ ./cmd/mod/ ./cmd/mostat/

echo "== fault-matrix smoke (short mode) =="
# A quick seeded-loss pass over the fault-injection paths.
go test -short -run 'Fault|Lossy|Partition' ./internal/sim/... ./internal/conformance/...

echo "== crash smoke (recovery gate) =="
# One seeded crash-restart run per protocol class — tagless, tagged
# (causal-rst), general (sync) — under the race detector: each must
# crash, restore its checkpoint, replay its journal, and still deliver
# every message exactly once.
go test -race -run 'TestCrashRestartRecoversEveryProtocol/^(tagless|causal-rst|sync)$' ./internal/sim/

echo "== trace smoke (observability gate) =="
# Run an instrumented causal-order scenario through mobench and validate
# the emitted Chrome trace: well-formed JSON, monotone per-track
# timestamps, every deliver preceded by its send (-validate re-reads the
# file and checks all three).
tracetmp=$(mktemp -d)
trap 'rm -rf "$tracetmp"' EXIT
go run ./cmd/mobench trace -proto causal-rst -o "$tracetmp/trace.json" -validate 2>/dev/null
go run ./cmd/mobench trace -proto causal-rst -lossy -o "$tracetmp/lossy.json" -validate 2>/dev/null

echo "== net smoke (real-process gate) =="
# Build the mod daemon, spawn three of them on loopback, drive the
# seeded causal workload over their client sockets, and diff the
# reassembled user view against the in-memory sim's (mobench exits
# non-zero on any divergence or daemon failure).
go build -o "$tracetmp/mod" ./cmd/mod
go run ./cmd/mobench net -smoke -modbin "$tracetmp/mod"

echo "== load smoke (throughput gate) =="
# A short open-loop load run over the batched mesh path: the subcommand
# itself re-reads BENCH_load.json and exits non-zero if it is truncated
# or any row reports zero throughput.
go run ./cmd/mobench load -json -outdir "$tracetmp/load" -msgs 500 -protos tagless >/dev/null
[ -s "$tracetmp/load/BENCH_load.json" ]

echo "== shard smoke (ordering-key gate) =="
# A short keyed open-loop run over the sharded runtime, sim and mesh:
# the subcommand re-reads BENCH_shard.json and exits non-zero if it is
# truncated, any row reports zero throughput, or a row ran with fewer
# than 2 keys or 2 shards.
go run ./cmd/mobench shard -json -outdir "$tracetmp/shard" -msgs 600 -keys 24 -shards 4 -protos fifo >/dev/null
[ -s "$tracetmp/shard/BENCH_shard.json" ]

echo "== obs-fleet smoke (observability-plane gate) =="
# A short E15 pass: traced-vs-untraced overhead rows, a live scraped
# 3-daemon fleet whose merged timeline must validate causally with zero
# orphaned receives, and a named contention table. The subcommand
# re-reads BENCH_obs.json and exits non-zero on any violation.
go run ./cmd/mobench obs -json -outdir "$tracetmp/obs" -msgs 800 -runs 1 -fleet-msgs 120 >/dev/null
[ -s "$tracetmp/obs/BENCH_obs.json" ]

echo "== churn smoke (membership gate) =="
# E16's fast sub-matrix: fifo through a state-transfer join and a
# detector-driven eviction on clean loopback meshes with per-node WALs.
# The subcommand exits non-zero unless every cell's surviving user view
# matches the sim reference and the eviction names exactly the silent
# process.
go run ./cmd/mobench churn -smoke >/dev/null

echo "== mux smoke (multi-tenant gate) =="
# E17's fast sub-matrix: three channels with distinct guarantee levels
# (tagless / fifo / causal-rst) multiplexed over one 3-process loopback
# mesh, each channel's user view diffed byte-for-byte against its
# standalone sim run across clean, lossy and crash-restart cells. The
# subcommand exits non-zero on any divergence, unknown-channel drop, or
# tagless-channel overhead.
go run ./cmd/mobench mux -smoke >/dev/null

echo "== allocation budget (steady-path gate) =="
# The pooled encode, outbox pop and frame read paths must be
# allocation-free once warm. Run without -race (the detector's
# instrumentation allocates; the tests are build-tagged !race).
go test -run 'AllocationBudget|AvoidsWindowTimer' ./internal/netmesh/

echo "== nil-tracer overhead smoke =="
# One pass over the explorer benchmarks, uninstrumented and traced: the
# nil-tracer fast path must not break the hot loop (the /traced variant
# asserts records flow; timing comparisons are for humans via -bench).
go test -run '^$' -bench 'BenchmarkExplore/causal-rst-4msg' -benchtime 1x . >/dev/null

echo "verify: OK"
