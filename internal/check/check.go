// Package check evaluates forbidden predicates over user-view runs: it
// searches for an instantiation of the predicate's message variables that
// satisfies every guard and every causality atom. A complete run belongs
// to the specification set X_B exactly when no such instantiation exists.
//
// Variables bind to pairwise distinct messages. This is the only
// consistent reading of the paper's ∃ x1,...,xm ∈ M quantification: if a
// variable pair could share a message, the trivially true conjunct
// x.s ▷ x.r would satisfy every k-crown, making X_sync empty.
//
// Two matchers are provided: a pruned backtracking search (the default)
// and a naive nested-loop enumeration kept as the reference
// implementation and ablation baseline (BenchmarkCheckMatcher).
package check

import (
	"fmt"

	"msgorder/internal/event"
	"msgorder/internal/predicate"
	"msgorder/internal/userview"
)

// Match is a satisfying assignment: Assignment[i] is the message bound to
// predicate variable i.
type Match struct {
	Assignment []event.MsgID
}

// String renders the match as "x=m0, y=m3" given the predicate.
func (m Match) String(p *predicate.Predicate) string {
	s := ""
	for i, id := range m.Assignment {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s=m%d", p.Vars[i], id)
	}
	return s
}

// FindViolation searches for an assignment of pairwise distinct messages
// to the predicate's variables that satisfies the predicate (i.e.
// exhibits the forbidden pattern).
func FindViolation(r *userview.Run, p *predicate.Predicate) (Match, bool) {
	s := newSearch(r, p)
	if s.run(0) {
		return Match{Assignment: s.assign}, true
	}
	return Match{}, false
}

// Satisfies reports whether the run belongs to X_B: it is complete and no
// instantiation of the predicate holds.
func Satisfies(r *userview.Run, p *predicate.Predicate) bool {
	if !r.IsComplete() {
		return false
	}
	_, bad := FindViolation(r, p)
	return !bad
}

// CountViolations returns the number of satisfying assignments (used by
// diagnostics and tests). Cost is O(m^vars); intended for small runs.
func CountViolations(r *userview.Run, p *predicate.Predicate) int {
	n := 0
	enumerate(r, p, func(Match) bool {
		n++
		return true
	})
	return n
}

// FindViolationNaive is the reference matcher: it enumerates every tuple.
func FindViolationNaive(r *userview.Run, p *predicate.Predicate) (Match, bool) {
	var out Match
	found := false
	enumerate(r, p, func(m Match) bool {
		out = m
		found = true
		return false
	})
	return out, found
}

// enumerate calls fn for every satisfying assignment until fn returns
// false.
func enumerate(r *userview.Run, p *predicate.Predicate, fn func(Match) bool) {
	nv := len(p.Vars)
	nm := r.NumMessages()
	if nm < nv {
		return
	}
	assign := make([]event.MsgID, nv)
	used := make([]bool, nm)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == nv {
			if !holds(r, p, assign) {
				return true
			}
			return fn(Match{Assignment: append([]event.MsgID(nil), assign...)})
		}
		for m := 0; m < nm; m++ {
			if used[m] {
				continue
			}
			used[m] = true
			assign[i] = event.MsgID(m)
			if !rec(i + 1) {
				return false
			}
			used[m] = false
		}
		return true
	}
	rec(0)
}

// holds evaluates guards and atoms under a full assignment.
func holds(r *userview.Run, p *predicate.Predicate, assign []event.MsgID) bool {
	msgs := make([]event.Message, len(assign))
	for i, id := range assign {
		msgs[i] = r.Message(id)
	}
	if !p.GuardsSatisfied(msgs) {
		return false
	}
	for _, a := range p.Atoms {
		from := event.E(assign[a.From.Var], a.From.Part.Kind())
		to := event.E(assign[a.To.Var], a.To.Part.Kind())
		if !r.Before(from, to) {
			return false
		}
	}
	return true
}

// search is the pruned backtracking matcher. Variables are ordered by
// descending atom degree so highly-constrained variables bind first, and
// every guard or atom whose variables are all bound is checked as soon as
// possible.
type search struct {
	r      *userview.Run
	p      *predicate.Predicate
	order  []int // variable binding order
	rank   []int // rank[v] = position of v in order
	assign []event.MsgID
	bound  []bool
	used   []bool // messages already bound (bindings are pairwise distinct)
	// atomAt[k] lists atoms whose later-bound endpoint has rank k.
	atomAt [][]predicate.Atom
	// guardAt[k] lists guards fully bound at rank k.
	guardAt [][]predicate.Guard
}

func newSearch(r *userview.Run, p *predicate.Predicate) *search {
	nv := len(p.Vars)
	s := &search{
		r:      r,
		p:      p,
		assign: make([]event.MsgID, nv),
		bound:  make([]bool, nv),
		used:   make([]bool, r.NumMessages()),
		rank:   make([]int, nv),
	}
	// Degree-ordered variable selection.
	deg := make([]int, nv)
	for _, a := range p.Atoms {
		deg[a.From.Var]++
		deg[a.To.Var]++
	}
	s.order = make([]int, nv)
	for i := range s.order {
		s.order[i] = i
	}
	// Insertion sort by descending degree (stable, nv is tiny).
	for i := 1; i < nv; i++ {
		for j := i; j > 0 && deg[s.order[j]] > deg[s.order[j-1]]; j-- {
			s.order[j], s.order[j-1] = s.order[j-1], s.order[j]
		}
	}
	for k, v := range s.order {
		s.rank[v] = k
	}
	s.atomAt = make([][]predicate.Atom, nv)
	for _, a := range p.Atoms {
		k := s.rank[a.From.Var]
		if s.rank[a.To.Var] > k {
			k = s.rank[a.To.Var]
		}
		s.atomAt[k] = append(s.atomAt[k], a)
	}
	s.guardAt = make([][]predicate.Guard, nv)
	for _, g := range p.Guards {
		k := 0
		switch g.Kind {
		case predicate.GuardColorIs:
			k = s.rank[g.Var]
		default:
			k = s.rank[g.A.Var]
			if s.rank[g.B.Var] > k {
				k = s.rank[g.B.Var]
			}
		}
		s.guardAt[k] = append(s.guardAt[k], g)
	}
	return s
}

func (s *search) run(k int) bool {
	if k == len(s.order) {
		return true
	}
	v := s.order[k]
	for m := 0; m < s.r.NumMessages(); m++ {
		if s.used[m] {
			continue
		}
		s.used[m] = true
		s.assign[v] = event.MsgID(m)
		s.bound[v] = true
		if s.consistentAt(k) && s.run(k+1) {
			return true
		}
		s.bound[v] = false
		s.used[m] = false
	}
	return false
}

// consistentAt checks the atoms and guards that became fully bound at
// rank k.
func (s *search) consistentAt(k int) bool {
	for _, g := range s.guardAt[k] {
		if !s.guardHolds(g) {
			return false
		}
	}
	for _, a := range s.atomAt[k] {
		from := event.E(s.assign[a.From.Var], a.From.Part.Kind())
		to := event.E(s.assign[a.To.Var], a.To.Part.Kind())
		if !s.r.Before(from, to) {
			return false
		}
	}
	return true
}

func (s *search) guardHolds(g predicate.Guard) bool {
	proc := func(ref predicate.EventRef) event.ProcID {
		m := s.r.Message(s.assign[ref.Var])
		if ref.Part == predicate.S {
			return m.From
		}
		return m.To
	}
	switch g.Kind {
	case predicate.GuardProcEq:
		return proc(g.A) == proc(g.B)
	case predicate.GuardProcNeq:
		return proc(g.A) != proc(g.B)
	case predicate.GuardColorIs:
		return s.r.Message(s.assign[g.Var]).Color == g.Color
	default:
		return false
	}
}
