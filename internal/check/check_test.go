package check

import (
	"math/rand"
	"testing"
	"testing/quick"

	"msgorder/internal/event"
	"msgorder/internal/predicate"
	"msgorder/internal/userview"
)

var (
	coPred   = predicate.MustParse("x, y : x.s -> y.s && y.r -> x.r")
	fifoPred = predicate.MustParse(`x, y :
		process(x.s) == process(y.s) && process(x.r) == process(y.r) :
		x.s -> y.s && y.r -> x.r`)
	crown2Pred = predicate.MustParse("x1, x2 : x1.s -> x2.r && x2.s -> x1.r")
)

func s(m event.MsgID) event.Event { return event.E(m, event.Send) }
func d(m event.MsgID) event.Event { return event.E(m, event.Deliver) }

func mkRun(t *testing.T, msgs []event.Message, procs [][]event.Event) *userview.Run {
	t.Helper()
	r, err := userview.New(msgs, procs)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func fifoViolation(t *testing.T) *userview.Run {
	msgs := []event.Message{
		{ID: 0, From: 0, To: 1},
		{ID: 1, From: 0, To: 1},
	}
	return mkRun(t, msgs, [][]event.Event{
		{s(0), s(1)},
		{d(1), d(0)},
	})
}

func crownRun(t *testing.T) *userview.Run {
	msgs := []event.Message{
		{ID: 0, From: 0, To: 1},
		{ID: 1, From: 1, To: 0},
	}
	return mkRun(t, msgs, [][]event.Event{
		{s(0), d(1)},
		{s(1), d(0)},
	})
}

func TestFindViolationCausal(t *testing.T) {
	r := fifoViolation(t)
	m, found := FindViolation(r, coPred)
	if !found {
		t.Fatal("expected a causal violation")
	}
	if m.Assignment[0] != 0 || m.Assignment[1] != 1 {
		t.Fatalf("assignment = %v, want [0 1]", m.Assignment)
	}
	if got := m.String(coPred); got != "x=m0, y=m1" {
		t.Errorf("String = %q", got)
	}
	if Satisfies(r, coPred) {
		t.Error("run must not satisfy causal ordering")
	}
}

func TestFIFOGuardsRestrict(t *testing.T) {
	// Same pattern but messages on different channels: FIFO is satisfied,
	// causal ordering is not.
	msgs := []event.Message{
		{ID: 0, From: 0, To: 1},
		{ID: 1, From: 0, To: 2},
	}
	// m0.s before m1.s at P0; m1 delivered at P2, then P2 sends m2? Keep
	// it minimal: two receivers, so no FIFO pair exists.
	r := mkRun(t, msgs, [][]event.Event{
		{s(0), s(1)},
		{d(0)},
		{d(1)},
	})
	if !Satisfies(r, fifoPred) {
		t.Error("different destinations: FIFO trivially satisfied")
	}
	if !Satisfies(r, coPred) {
		t.Error("deliveries at different processes are concurrent: CO holds")
	}
}

func TestCrownDetection(t *testing.T) {
	r := crownRun(t)
	if Satisfies(r, crown2Pred) {
		t.Error("crossing pair must violate the 2-crown predicate")
	}
	if !Satisfies(r, coPred) {
		t.Error("crossing pair is causally ordered")
	}
}

func TestColorGuard(t *testing.T) {
	flush := predicate.MustParse("x, y : color(y) == red : x.s -> y.s && y.r -> x.r")
	msgs := []event.Message{
		{ID: 0, From: 0, To: 1},
		{ID: 1, From: 0, To: 1, Color: event.ColorRed},
	}
	// m1 (red) overtakes m0: forbidden.
	r := mkRun(t, msgs, [][]event.Event{
		{s(0), s(1)},
		{d(1), d(0)},
	})
	if Satisfies(r, flush) {
		t.Error("red message overtaking must violate forward flush")
	}
	// Swap colors: the overtaking message is not red; allowed.
	msgs2 := []event.Message{
		{ID: 0, From: 0, To: 1, Color: event.ColorRed},
		{ID: 1, From: 0, To: 1},
	}
	r2 := mkRun(t, msgs2, [][]event.Event{
		{s(0), s(1)},
		{d(1), d(0)},
	})
	if !Satisfies(r2, flush) {
		t.Error("plain message overtaking a red one is allowed by forward flush")
	}
}

func TestIncompleteRunNeverSatisfies(t *testing.T) {
	msgs := []event.Message{{ID: 0, From: 0, To: 1}}
	r := mkRun(t, msgs, [][]event.Event{{s(0)}, {}})
	if Satisfies(r, coPred) {
		t.Error("incomplete runs are outside every specification set")
	}
}

func TestEmptyRunSatisfiesEverything(t *testing.T) {
	r := mkRun(t, nil, [][]event.Event{{}, {}})
	for _, p := range []*predicate.Predicate{coPred, fifoPred, crown2Pred} {
		if !Satisfies(r, p) {
			t.Errorf("empty run must satisfy %s", p)
		}
	}
}

func TestCountViolations(t *testing.T) {
	r := fifoViolation(t)
	if got := CountViolations(r, coPred); got != 1 {
		t.Fatalf("CountViolations = %d, want 1", got)
	}
	if got := CountViolations(crownRun(t), coPred); got != 0 {
		t.Fatalf("CountViolations = %d, want 0", got)
	}
}

func TestBindingsAreDistinct(t *testing.T) {
	// ∃x,y binds distinct messages: with a single message, x.s -> y.r has
	// no instantiation even though m0.s ▷ m0.r.
	p := predicate.MustParse("x, y : x.s -> y.r")
	msgs := []event.Message{{ID: 0, From: 0, To: 1}}
	r := mkRun(t, msgs, [][]event.Event{{s(0)}, {d(0)}})
	if _, found := FindViolation(r, p); found {
		t.Fatal("variables must bind distinct messages")
	}
	if _, found := FindViolationNaive(r, p); found {
		t.Fatal("naive matcher must also bind distinct messages")
	}
	// With two chained messages the pattern matches.
	msgs2 := []event.Message{
		{ID: 0, From: 0, To: 1},
		{ID: 1, From: 1, To: 0},
	}
	r2 := mkRun(t, msgs2, [][]event.Event{
		{s(0), d(1)},
		{d(0), s(1)},
	})
	m, found := FindViolation(r2, p)
	if !found {
		t.Fatal("m0.s ▷ m1.r should match with x=m0, y=m1")
	}
	if m.Assignment[0] == m.Assignment[1] {
		t.Fatalf("assignment = %v, want distinct bindings", m.Assignment)
	}
}

// randomRun builds a random valid complete user-view run with colors.
func randomRun(rng *rand.Rand, nProcs, nMsgs int) *userview.Run {
	colors := []event.Color{event.ColorNone, event.ColorRed, event.ColorBlue}
	msgs := make([]event.Message, nMsgs)
	for i := range msgs {
		msgs[i] = event.Message{
			ID:    event.MsgID(i),
			From:  event.ProcID(rng.Intn(nProcs)),
			To:    event.ProcID(rng.Intn(nProcs)),
			Color: colors[rng.Intn(len(colors))],
		}
	}
	procs := make([][]event.Event, nProcs)
	sent := make([]bool, nMsgs)
	delivered := make([]bool, nMsgs)
	for steps := 0; steps < 2*nMsgs; steps++ {
		var choices []event.Event
		for i := 0; i < nMsgs; i++ {
			if !sent[i] {
				choices = append(choices, s(event.MsgID(i)))
			} else if !delivered[i] {
				choices = append(choices, d(event.MsgID(i)))
			}
		}
		e := choices[rng.Intn(len(choices))]
		if e.Kind == event.Send {
			sent[e.Msg] = true
		} else {
			delivered[e.Msg] = true
		}
		p := e.Proc(msgs[e.Msg])
		procs[p] = append(procs[p], e)
	}
	r, err := userview.New(msgs, procs)
	if err != nil {
		panic(err)
	}
	return r
}

// TestQuickMatchersAgree cross-checks the pruned matcher against the
// naive enumerator on random runs and a spread of predicates.
func TestQuickMatchersAgree(t *testing.T) {
	preds := []*predicate.Predicate{
		coPred,
		fifoPred,
		crown2Pred,
		predicate.MustParse("x1, x2, x3 : x1.s -> x2.r && x2.s -> x3.r && x3.s -> x1.r"),
		predicate.MustParse("x, y : color(y) == red : x.s -> y.s && y.r -> x.r"),
		predicate.MustParse("x, y : process(x.s) != process(y.s) : x.s -> y.r"),
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRun(rng, 2+rng.Intn(3), 1+rng.Intn(5))
		for _, p := range preds {
			_, fast := FindViolation(r, p)
			_, naive := FindViolationNaive(r, p)
			if fast != naive {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCOPredicateMatchesBuiltin: the B2 predicate matcher must agree
// with the userview package's built-in causal-ordering test.
func TestQuickCOPredicateMatchesBuiltin(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRun(rng, 2+rng.Intn(3), 1+rng.Intn(5))
		return Satisfies(r, coPred) == r.InCO()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCrownFamilyMatchesBuiltin: violating any k-crown predicate for
// k = 2..4 must coincide with not being logically synchronous, on runs
// with few messages (a crown in a run of ≤ 4 messages has length ≤ 4).
func TestQuickCrownFamilyMatchesBuiltin(t *testing.T) {
	crowns := []*predicate.Predicate{
		crown2Pred,
		predicate.MustParse("x1, x2, x3 : x1.s -> x2.r && x2.s -> x3.r && x3.s -> x1.r"),
		predicate.MustParse("x1, x2, x3, x4 : x1.s -> x2.r && x2.s -> x3.r && x3.s -> x4.r && x4.s -> x1.r"),
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRun(rng, 2+rng.Intn(3), 1+rng.Intn(4))
		violated := false
		for _, p := range crowns {
			if !Satisfies(r, p) {
				violated = true
			}
		}
		return violated == !r.InSync()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}
