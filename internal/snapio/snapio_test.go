package snapio

import (
	"bytes"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var w Writer
	w.U64(0)
	w.U64(300)
	w.U64(1 << 60)
	w.Int(42)
	w.Byte(0xAB)
	w.Bool(true)
	w.Bool(false)
	w.Bytes([]byte("payload"))
	w.Bytes(nil)

	r := NewReader(w.Out())
	if got := r.U64(); got != 0 {
		t.Fatalf("U64 = %d", got)
	}
	if got := r.U64(); got != 300 {
		t.Fatalf("U64 = %d", got)
	}
	if got := r.U64(); got != 1<<60 {
		t.Fatalf("U64 = %d", got)
	}
	if got := r.Int(); got != 42 {
		t.Fatalf("Int = %d", got)
	}
	if got := r.Byte(); got != 0xAB {
		t.Fatalf("Byte = %x", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("Bool round-trip failed")
	}
	if got := r.Bytes(); !bytes.Equal(got, []byte("payload")) {
		t.Fatalf("Bytes = %q", got)
	}
	if got := r.Bytes(); got != nil {
		t.Fatalf("empty Bytes = %v, want nil", got)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReaderErrors(t *testing.T) {
	r := NewReader([]byte{0x80}) // truncated varint
	r.U64()
	if r.Err() == nil {
		t.Fatal("truncated varint not flagged")
	}
	// Errors are sticky: further reads stay zero.
	if r.U64() != 0 || r.Byte() != 0 || r.Bytes() != nil {
		t.Fatal("reads after error returned data")
	}

	r = NewReader([]byte{5, 1, 2}) // Bytes length overruns input
	if r.Bytes() != nil || r.Err() == nil {
		t.Fatal("overrun Bytes not flagged")
	}

	r = NewReader([]byte{1, 7, 9})
	r.Byte()
	if err := r.Close(); err == nil {
		t.Fatal("trailing bytes not flagged")
	}
}

func TestWriterPanicsOnNegativeInt(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Int did not panic")
		}
	}()
	var w Writer
	w.Int(-1)
}
