// Package snapio provides the tiny binary codec shared by protocol
// state snapshots (protocol.Snapshotter). Snapshots must be
// deterministic — the same state always encodes to the same bytes, so
// crash recovery can be verified by re-encoding — which is why the
// helpers here force explicit, sorted traversal of maps at the call
// site and the Reader accumulates a single error instead of panicking
// on truncated input.
package snapio

import (
	"errors"
	"fmt"
)

// ErrCorrupt reports a malformed snapshot encoding.
var ErrCorrupt = errors.New("snapio: corrupt snapshot encoding")

// Writer accumulates a snapshot encoding.
type Writer struct {
	buf []byte
}

// U64 appends an unsigned varint.
func (w *Writer) U64(v uint64) {
	for v >= 0x80 {
		w.buf = append(w.buf, byte(v)|0x80)
		v >>= 7
	}
	w.buf = append(w.buf, byte(v))
}

// Int appends a non-negative int as a varint.
func (w *Writer) Int(v int) {
	if v < 0 {
		panic(fmt.Sprintf("snapio: negative Int %d", v))
	}
	w.U64(uint64(v))
}

// Byte appends one raw byte.
func (w *Writer) Byte(b byte) { w.buf = append(w.buf, b) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.Byte(1)
	} else {
		w.Byte(0)
	}
}

// Bytes appends a length-prefixed byte string.
func (w *Writer) Bytes(b []byte) {
	w.Int(len(b))
	w.buf = append(w.buf, b...)
}

// Out returns the accumulated encoding.
func (w *Writer) Out() []byte { return w.buf }

// Reset truncates the writer for reuse, keeping the backing buffer —
// the pooling hook for hot encode paths (the mesh's frame codec).
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// Reader decodes a snapshot encoding. Methods keep returning zero
// values after the first error; check Err (or Close) once at the end.
type Reader struct {
	b   []byte
	err error
}

// NewReader wraps an encoding.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// U64 reads an unsigned varint.
func (r *Reader) U64() uint64 {
	if r.err != nil {
		return 0
	}
	var v uint64
	for i := 0; ; i++ {
		if i >= len(r.b) || i > 9 {
			r.err = ErrCorrupt
			return 0
		}
		b := r.b[i]
		v |= uint64(b&0x7F) << (7 * i)
		if b < 0x80 {
			r.b = r.b[i+1:]
			return v
		}
	}
}

// Int reads a non-negative int.
func (r *Reader) Int() int {
	v := r.U64()
	if v > 1<<31 {
		r.err = ErrCorrupt
		return 0
	}
	return int(v)
}

// Byte reads one raw byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if len(r.b) == 0 {
		r.err = ErrCorrupt
		return 0
	}
	b := r.b[0]
	r.b = r.b[1:]
	return b
}

// Bool reads a boolean.
func (r *Reader) Bool() bool { return r.Byte() != 0 }

// Bytes reads a length-prefixed byte string (nil for length zero).
func (r *Reader) Bytes() []byte {
	n := r.Int()
	if r.err != nil {
		return nil
	}
	if n > len(r.b) {
		r.err = ErrCorrupt
		return nil
	}
	if n == 0 {
		r.b = r.b[0:]
		return nil
	}
	out := append([]byte(nil), r.b[:n]...)
	r.b = r.b[n:]
	return out
}

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Close verifies the encoding was fully consumed without errors.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(r.b))
	}
	return nil
}
