// Package run models system runs: decomposed partially ordered sets
// H = (H_1, ..., H_n, →) over the four system events of each message
// (invoke x.s*, send x.s, receive x.r*, deliver x.r), as defined in
// Section 3.1 of Murty & Garg.
//
// A Run carries the full message set M (the distributed system's message
// universe) together with the events that have occurred so far, so the
// paper's pending-event sets I, S, R, D are all derivable.
//
// The package implements the run axioms R1–R3, prefixes, the causal past
// with respect to a process, the user's-view projection, and membership in
// the protocol limit sets X_u (tagless), X_td (tagged) and X_gn (general)
// of Section 3.2.1.
package run

import (
	"errors"
	"fmt"
	"strings"

	"msgorder/internal/event"
	"msgorder/internal/poset"
	"msgorder/internal/userview"
)

// Validation errors returned by New.
var (
	ErrBadMessageID   = errors.New("run: message IDs must be 0..m-1 in order")
	ErrWrongProcess   = errors.New("run: event placed at wrong process")
	ErrDuplicateEvent = errors.New("run: event occurs twice")
	ErrUnknownMessage = errors.New("run: event references unknown message")
	ErrBadKind        = errors.New("run: invalid event kind")
	ErrNoSend         = errors.New("run: receive present without send (axiom R2)")
	ErrNoRequest      = errors.New("run: execution precedes its request (axiom R3)")
	ErrCyclic         = errors.New("run: causality relation is cyclic (axiom R1)")
)

// Run is an immutable system run. Construct with New.
type Run struct {
	msgs    []event.Message
	procs   [][]event.Event
	present []bool // indexed by Event.Index()
	pos     []int  // position within the owning process sequence
	reach   *poset.Reachability
}

// New builds and validates a system run over the message universe msgs.
// procs[i] is the event sequence H_i. The run axioms are enforced:
//
//	R1: the induced relation → is a partial order (acyclic),
//	R2: x.r* present only if x.s is present,
//	R3: x.s only after x.s* on the same process, x.r only after x.r*.
//
// Events must occur at the correct process and at most once. The run may
// be any prefix of a computation: messages may be un-invoked, in flight,
// or undelivered.
func New(msgs []event.Message, procs [][]event.Event) (*Run, error) {
	for i, m := range msgs {
		if int(m.ID) != i {
			return nil, fmt.Errorf("%w: msgs[%d].ID = %d", ErrBadMessageID, i, m.ID)
		}
	}
	r := &Run{
		msgs:    append([]event.Message(nil), msgs...),
		present: make([]bool, 4*len(msgs)),
		pos:     make([]int, 4*len(msgs)),
	}
	r.procs = make([][]event.Event, len(procs))
	for p, seq := range procs {
		r.procs[p] = append([]event.Event(nil), seq...)
	}
	for p, seq := range r.procs {
		for i, e := range seq {
			if !e.Kind.Valid() {
				return nil, fmt.Errorf("%w: %v", ErrBadKind, e)
			}
			if int(e.Msg) < 0 || int(e.Msg) >= len(msgs) {
				return nil, fmt.Errorf("%w: %v", ErrUnknownMessage, e)
			}
			if want := e.Proc(msgs[e.Msg]); want != event.ProcID(p) {
				return nil, fmt.Errorf("%w: %v at P%d, want P%d", ErrWrongProcess, e, p, want)
			}
			if r.present[e.Index()] {
				return nil, fmt.Errorf("%w: %v", ErrDuplicateEvent, e)
			}
			r.present[e.Index()] = true
			r.pos[e.Index()] = i
		}
	}
	for _, m := range msgs {
		id := m.ID
		if r.Has(event.E(id, event.Receive)) && !r.Has(event.E(id, event.Send)) {
			return nil, fmt.Errorf("%w: m%d", ErrNoSend, id)
		}
		// R3: execution preceded by request on the same process sequence.
		if err := r.requireBefore(id, event.Invoke, event.Send); err != nil {
			return nil, err
		}
		if err := r.requireBefore(id, event.Receive, event.Deliver); err != nil {
			return nil, err
		}
	}
	g := r.eventGraph()
	if !g.IsAcyclic() {
		return nil, ErrCyclic
	}
	r.reach = poset.NewReachability(g)
	return r, nil
}

func (r *Run) requireBefore(id event.MsgID, req, exec event.Kind) error {
	e := event.E(id, exec)
	if !r.Has(e) {
		return nil
	}
	q := event.E(id, req)
	if !r.Has(q) || r.pos[q.Index()] >= r.pos[e.Index()] {
		return fmt.Errorf("%w: %v", ErrNoRequest, e)
	}
	return nil
}

// eventGraph builds → as a DAG over event indices: per-process sequencing
// plus the message edge x.s → x.r*.
func (r *Run) eventGraph() *poset.DAG {
	g := poset.NewDAG(4 * len(r.msgs))
	for _, seq := range r.procs {
		for i := 0; i+1 < len(seq); i++ {
			g.AddEdge(seq[i].Index(), seq[i+1].Index())
		}
	}
	for _, m := range r.msgs {
		snd, rcv := event.E(m.ID, event.Send), event.E(m.ID, event.Receive)
		if r.Has(snd) && r.Has(rcv) {
			g.AddEdge(snd.Index(), rcv.Index())
		}
	}
	return g
}

// NumMessages returns the size of the message universe M.
func (r *Run) NumMessages() int { return len(r.msgs) }

// NumProcs returns the number of processes.
func (r *Run) NumProcs() int { return len(r.procs) }

// Message returns the message with the given id.
func (r *Run) Message(id event.MsgID) event.Message { return r.msgs[id] }

// Messages returns a copy of the message universe.
func (r *Run) Messages() []event.Message {
	return append([]event.Message(nil), r.msgs...)
}

// ProcSeq returns a copy of H_i.
func (r *Run) ProcSeq(p event.ProcID) []event.Event {
	return append([]event.Event(nil), r.procs[p]...)
}

// Has reports whether the event has occurred.
func (r *Run) Has(e event.Event) bool {
	i := e.Index()
	return i >= 0 && i < len(r.present) && r.present[i]
}

// Before reports e → f (strict happened-before in the system's view).
func (r *Run) Before(e, f event.Event) bool {
	if !r.Has(e) || !r.Has(f) {
		return false
	}
	return r.reach.Reaches(e.Index(), f.Index())
}

// Concurrent reports that both events occur and neither precedes the other.
func (r *Run) Concurrent(e, f event.Event) bool {
	if !r.Has(e) || !r.Has(f) || e == f {
		return false
	}
	return !r.Before(e, f) && !r.Before(f, e)
}

// NumEvents returns the total number of events in the run.
func (r *Run) NumEvents() int {
	n := 0
	for _, seq := range r.procs {
		n += len(seq)
	}
	return n
}

// --- Pending-event sets (Section 3.1) ---

// NotInvoked returns I_i(H): invoke events of messages from process i that
// the user has not yet requested.
func (r *Run) NotInvoked(i event.ProcID) []event.Event {
	var out []event.Event
	for _, m := range r.msgs {
		if m.From == i && !r.Has(event.E(m.ID, event.Invoke)) {
			out = append(out, event.E(m.ID, event.Invoke))
		}
	}
	return out
}

// SendPending returns S_i(H): messages invoked at process i but not yet
// sent.
func (r *Run) SendPending(i event.ProcID) []event.Event {
	var out []event.Event
	for _, m := range r.msgs {
		if m.From != i {
			continue
		}
		if r.Has(event.E(m.ID, event.Invoke)) && !r.Has(event.E(m.ID, event.Send)) {
			out = append(out, event.E(m.ID, event.Send))
		}
	}
	return out
}

// ReceivePending returns R_i(H): messages sent to process i but not yet
// received (in transit).
func (r *Run) ReceivePending(i event.ProcID) []event.Event {
	var out []event.Event
	for _, m := range r.msgs {
		if m.To != i {
			continue
		}
		if r.Has(event.E(m.ID, event.Send)) && !r.Has(event.E(m.ID, event.Receive)) {
			out = append(out, event.E(m.ID, event.Receive))
		}
	}
	return out
}

// DeliverPending returns D_i(H): messages received at process i but not
// yet delivered.
func (r *Run) DeliverPending(i event.ProcID) []event.Event {
	var out []event.Event
	for _, m := range r.msgs {
		if m.To != i {
			continue
		}
		if r.Has(event.E(m.ID, event.Receive)) && !r.Has(event.E(m.ID, event.Deliver)) {
			out = append(out, event.E(m.ID, event.Deliver))
		}
	}
	return out
}

// Controllable returns C_i(H) = S_i(H) ∪ D_i(H): the events a protocol may
// enable or delay at process i.
func (r *Run) Controllable(i event.ProcID) []event.Event {
	return append(r.SendPending(i), r.DeliverPending(i)...)
}

// Quiescent reports that no events are pending anywhere:
// S(H) ∪ R(H) ∪ D(H) = ∅. A live protocol must eventually reach a
// quiescent run if the user stops invoking messages.
func (r *Run) Quiescent() bool {
	for p := 0; p < len(r.procs); p++ {
		i := event.ProcID(p)
		if len(r.SendPending(i)) > 0 || len(r.ReceivePending(i)) > 0 || len(r.DeliverPending(i)) > 0 {
			return false
		}
	}
	return true
}

// --- Prefixes and causal past ---

// IsPrefixOf reports whether every H_i of r is a prefix of the
// corresponding sequence of s.
func (r *Run) IsPrefixOf(s *Run) bool {
	if len(r.procs) != len(s.procs) {
		return false
	}
	for p := range r.procs {
		if len(r.procs[p]) > len(s.procs[p]) {
			return false
		}
		for i, e := range r.procs[p] {
			if s.procs[p][i] != e {
				return false
			}
		}
	}
	return true
}

// CausalPast returns CausalPast_i(H): the prefix containing all of H_i and,
// for j ≠ i, exactly the events of H_j that happen before some event of
// H_i (Section 3.1, Figure 1).
func (r *Run) CausalPast(i event.ProcID) (*Run, error) {
	keep := func(g event.Event) bool {
		for _, h := range r.procs[i] {
			if r.Before(g, h) {
				return true
			}
		}
		return false
	}
	procs := make([][]event.Event, len(r.procs))
	for p, seq := range r.procs {
		if event.ProcID(p) == i {
			procs[p] = append([]event.Event(nil), seq...)
			continue
		}
		for _, g := range seq {
			if keep(g) {
				procs[p] = append(procs[p], g)
			}
		}
	}
	return New(r.msgs, procs)
}

// Equal reports whether two runs have identical message universes and
// process sequences (the paper's H = G).
func (r *Run) Equal(s *Run) bool {
	if len(r.msgs) != len(s.msgs) || len(r.procs) != len(s.procs) {
		return false
	}
	for i := range r.msgs {
		if r.msgs[i] != s.msgs[i] {
			return false
		}
	}
	for p := range r.procs {
		if len(r.procs[p]) != len(s.procs[p]) {
			return false
		}
		for i := range r.procs[p] {
			if r.procs[p][i] != s.procs[p][i] {
				return false
			}
		}
	}
	return true
}

// --- User's view ---

// UsersView projects the run onto its send and deliver events
// (Section 3.3, Figure 4) and returns the resulting user-view run.
func (r *Run) UsersView() (*userview.Run, error) {
	procs := make([][]event.Event, len(r.procs))
	for p, seq := range r.procs {
		for _, e := range seq {
			if e.Kind.UserVisible() {
				procs[p] = append(procs[p], e)
			}
		}
	}
	return userview.New(r.msgs, procs)
}

// --- Limit-set membership (Section 3.2.1) ---

// immediatePair reports whether a (present) and b are adjacent in their
// process sequence with a directly before b.
func (r *Run) immediatePair(a, b event.Event) bool {
	if !r.Has(a) || !r.Has(b) {
		return false
	}
	return r.pos[b.Index()] == r.pos[a.Index()]+1
}

// InXu reports membership in X_u (achievable by every live tagless
// protocol): each x.s* immediately precedes x.s, each x.r* immediately
// precedes x.r, and every requested message has been delivered.
func (r *Run) InXu() bool {
	for _, m := range r.msgs {
		id := m.ID
		inv, snd := event.E(id, event.Invoke), event.E(id, event.Send)
		rcv, dlv := event.E(id, event.Receive), event.E(id, event.Deliver)
		if r.Has(inv) != r.Has(snd) || (r.Has(inv) && !r.immediatePair(inv, snd)) {
			return false
		}
		if r.Has(rcv) != r.Has(dlv) || (r.Has(rcv) && !r.immediatePair(rcv, dlv)) {
			return false
		}
		if r.Has(inv) && !r.Has(dlv) {
			return false // requested but not delivered
		}
	}
	return true
}

// InXtd reports membership in X_td (achievable by every live tagged
// protocol): X_u plus causal ordering of messages at the receive level:
// x.s → y.s ⇒ ¬(y.r* → x.r*).
func (r *Run) InXtd() bool {
	if !r.InXu() {
		return false
	}
	for _, x := range r.msgs {
		for _, y := range r.msgs {
			if x.ID == y.ID {
				continue
			}
			if r.Before(event.E(x.ID, event.Send), event.E(y.ID, event.Send)) &&
				r.Before(event.E(y.ID, event.Receive), event.E(x.ID, event.Receive)) {
				return false
			}
		}
	}
	return true
}

// InXgn reports membership in X_gn (achievable by every live general
// protocol): X_td plus the existence of the numbering scheme N with
// N(x.r) = N(x.r*)+1 = N(x.s)+2 = N(x.s*)+3 and h → g ⇒ N(h) < N(g).
func (r *Run) InXgn() bool {
	if !r.InXtd() {
		return false
	}
	_, ok := r.Numbering()
	return ok
}

// Numbering returns a message order T witnessing the X_gn numbering scheme
// (messages listed in increasing N-block order), or ok=false if none
// exists. A numbering exists iff the system message-collision graph
// (x → y when any event of x happens before any event of y) is acyclic.
func (r *Run) Numbering() ([]event.MsgID, bool) {
	g := poset.NewDAG(len(r.msgs))
	kinds := []event.Kind{event.Invoke, event.Send, event.Receive, event.Deliver}
	for _, x := range r.msgs {
		for _, y := range r.msgs {
			if x.ID == y.ID {
				continue
			}
			for _, hk := range kinds {
				for _, fk := range kinds {
					if r.Before(event.E(x.ID, hk), event.E(y.ID, fk)) {
						g.AddEdge(int(x.ID), int(y.ID))
					}
				}
			}
		}
	}
	order, err := g.TopoSort()
	if err != nil {
		return nil, false
	}
	ids := make([]event.MsgID, len(order))
	for i, v := range order {
		ids[i] = event.MsgID(v)
	}
	return ids, true
}

// NumberingScheme materializes N for every present event from the message
// order returned by Numbering. It returns ok=false when no numbering
// exists.
func (r *Run) NumberingScheme() (map[event.Event]int, bool) {
	order, ok := r.Numbering()
	if !ok {
		return nil, false
	}
	n := make(map[event.Event]int)
	for blk, id := range order {
		base := 4 * blk
		for off, k := range []event.Kind{event.Invoke, event.Send, event.Receive, event.Deliver} {
			e := event.E(id, k)
			if r.Has(e) {
				n[e] = base + off
			}
		}
	}
	return n, true
}

// --- Construction from a user view (Theorem 1, Figure 5) ---

// FromUserView builds the system run H from a user-view run (H,▷) by
// inserting x.s* immediately before each x.s and x.r* immediately before
// each x.r. The result satisfies UsersView(H) = (H,▷), and if the view is
// complete and in X_sync / X_co / X_async then H is in X_gn / X_td / X_u
// respectively (the paper's Theorem 1 construction).
func FromUserView(v *userview.Run) (*Run, error) {
	procs := make([][]event.Event, v.NumProcs())
	for p := 0; p < v.NumProcs(); p++ {
		for _, e := range v.ProcSeq(event.ProcID(p)) {
			star := event.Invoke
			if e.Kind == event.Deliver {
				star = event.Receive
			}
			procs[p] = append(procs[p], event.E(e.Msg, star), e)
		}
	}
	return New(v.Messages(), procs)
}

// String renders the run compactly, one process per line fragment.
func (r *Run) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sysrun{%d msgs", len(r.msgs))
	for p, seq := range r.procs {
		fmt.Fprintf(&b, "; P%d:", p)
		parts := make([]string, len(seq))
		for i, e := range seq {
			parts[i] = e.String()
		}
		b.WriteString(strings.Join(parts, " "))
	}
	b.WriteString("}")
	return b.String()
}
