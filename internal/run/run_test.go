package run

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"msgorder/internal/event"
	"msgorder/internal/userview"
)

func mk(pairs ...[2]event.ProcID) []event.Message {
	msgs := make([]event.Message, len(pairs))
	for i, p := range pairs {
		msgs[i] = event.Message{ID: event.MsgID(i), From: p[0], To: p[1]}
	}
	return msgs
}

func ev(m event.MsgID, k event.Kind) event.Event { return event.E(m, k) }

func inv(m event.MsgID) event.Event { return ev(m, event.Invoke) }
func snd(m event.MsgID) event.Event { return ev(m, event.Send) }
func rcv(m event.MsgID) event.Event { return ev(m, event.Receive) }
func dlv(m event.MsgID) event.Event { return ev(m, event.Deliver) }

func mustNew(t *testing.T, msgs []event.Message, procs [][]event.Event) *Run {
	t.Helper()
	r, err := New(msgs, procs)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return r
}

// fifoRun models Figure 2: P0 sends m0 then m1 to P1; the network delivers
// m1 first (receive), but a FIFO protocol delays delivery of m1 until m0
// is delivered.
func fifoRun(t *testing.T) *Run {
	msgs := mk([2]event.ProcID{0, 1}, [2]event.ProcID{0, 1})
	return mustNew(t, msgs, [][]event.Event{
		{inv(0), snd(0), inv(1), snd(1)},
		{rcv(1), rcv(0), dlv(0), dlv(1)},
	})
}

// immediateRun is a fully sequential run where every request is
// immediately executed: member of X_u.
func immediateRun(t *testing.T) *Run {
	msgs := mk([2]event.ProcID{0, 1}, [2]event.ProcID{1, 0})
	return mustNew(t, msgs, [][]event.Event{
		{inv(0), snd(0), rcv(1), dlv(1)},
		{rcv(0), dlv(0), inv(1), snd(1)},
	})
}

func TestValidationErrors(t *testing.T) {
	msgs := mk([2]event.ProcID{0, 1})
	cases := []struct {
		name  string
		msgs  []event.Message
		procs [][]event.Event
		want  error
	}{
		{"bad id", []event.Message{{ID: 3}}, [][]event.Event{{}}, ErrBadMessageID},
		{"wrong process", msgs, [][]event.Event{{rcv(0)}, {}}, ErrWrongProcess},
		{"duplicate", msgs, [][]event.Event{{inv(0), inv(0)}, {}}, ErrDuplicateEvent},
		{"unknown message", msgs, [][]event.Event{{inv(9)}, {}}, ErrUnknownMessage},
		{"bad kind", msgs, [][]event.Event{{event.Event{Msg: 0, Kind: 0}}, {}}, ErrBadKind},
		{"receive without send", msgs, [][]event.Event{{}, {rcv(0)}}, ErrNoSend},
		{"send without invoke", msgs, [][]event.Event{{snd(0)}, {}}, ErrNoRequest},
		{"invoke after send", msgs, [][]event.Event{{snd(0), inv(0)}, {}}, ErrNoRequest},
		{"deliver without receive", msgs, [][]event.Event{{inv(0), snd(0)}, {dlv(0)}}, ErrNoRequest},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := New(c.msgs, c.procs); !errors.Is(err, c.want) {
				t.Fatalf("err = %v, want %v", err, c.want)
			}
		})
	}
}

func TestCyclicRunRejected(t *testing.T) {
	// m0: P0->P1, m1: P1->P0; each receive precedes the local send.
	msgs := mk([2]event.ProcID{0, 1}, [2]event.ProcID{1, 0})
	_, err := New(msgs, [][]event.Event{
		{rcv(1), dlv(1), inv(0), snd(0)},
		{rcv(0), dlv(0), inv(1), snd(1)},
	})
	if !errors.Is(err, ErrCyclic) {
		t.Fatalf("err = %v, want ErrCyclic", err)
	}
}

func TestBeforeAcrossMessage(t *testing.T) {
	r := fifoRun(t)
	if !r.Before(snd(0), rcv(0)) {
		t.Error("x.s → x.r* must hold")
	}
	if !r.Before(inv(0), dlv(1)) {
		t.Error("m0.s* → m1.r via chains")
	}
	if r.Before(rcv(0), rcv(1)) {
		t.Error("m0.r* is after m1.r* at P1")
	}
	if !r.Before(rcv(1), rcv(0)) {
		t.Error("P1 sequencing: m1.r* before m0.r*")
	}
	if r.Concurrent(snd(1), rcv(1)) {
		t.Error("a send and its receive are ordered, not concurrent")
	}
}

func TestPendingSets(t *testing.T) {
	// Universe of 2 messages from P0 to P1; m0 sent and received (not
	// delivered), m1 invoked (not sent). A third message m2 not invoked.
	msgs := mk([2]event.ProcID{0, 1}, [2]event.ProcID{0, 1}, [2]event.ProcID{0, 1})
	r := mustNew(t, msgs, [][]event.Event{
		{inv(0), snd(0), inv(1)},
		{rcv(0)},
	})
	if got := r.NotInvoked(0); len(got) != 1 || got[0] != inv(2) {
		t.Errorf("NotInvoked(0) = %v, want [m2.s*]", got)
	}
	if got := r.SendPending(0); len(got) != 1 || got[0] != snd(1) {
		t.Errorf("SendPending(0) = %v, want [m1.s]", got)
	}
	if got := r.ReceivePending(1); len(got) != 0 {
		t.Errorf("ReceivePending(1) = %v, want empty", got)
	}
	if got := r.DeliverPending(1); len(got) != 1 || got[0] != dlv(0) {
		t.Errorf("DeliverPending(1) = %v, want [m0.r]", got)
	}
	if got := r.Controllable(0); len(got) != 1 {
		t.Errorf("Controllable(0) = %v", got)
	}
	if r.Quiescent() {
		t.Error("run with pending events is not quiescent")
	}
}

func TestReceivePendingInTransit(t *testing.T) {
	msgs := mk([2]event.ProcID{0, 1})
	r := mustNew(t, msgs, [][]event.Event{
		{inv(0), snd(0)},
		{},
	})
	got := r.ReceivePending(1)
	if len(got) != 1 || got[0] != rcv(0) {
		t.Errorf("ReceivePending(1) = %v, want [m0.r*]", got)
	}
}

func TestQuiescent(t *testing.T) {
	if !immediateRun(t).Quiescent() {
		t.Error("completed run must be quiescent")
	}
	// Un-invoked messages do not block quiescence.
	msgs := mk([2]event.ProcID{0, 1})
	r := mustNew(t, msgs, [][]event.Event{{}, {}})
	if !r.Quiescent() {
		t.Error("empty run is quiescent")
	}
}

func TestIsPrefixOf(t *testing.T) {
	full := fifoRun(t)
	prefix := mustNew(t, full.Messages(), [][]event.Event{
		{inv(0), snd(0)},
		{},
	})
	if !prefix.IsPrefixOf(full) {
		t.Error("prefix not recognized")
	}
	if full.IsPrefixOf(prefix) {
		t.Error("full run is not a prefix of its prefix")
	}
	other := mustNew(t, full.Messages(), [][]event.Event{
		{inv(1), snd(1)},
		{},
	})
	if other.IsPrefixOf(full) {
		t.Error("diverging run accepted as prefix")
	}
}

// TestCausalPastFigure1 reconstructs the Figure 1 scenario: a three-process
// run where the causal past w.r.t. process 1 contains exactly the events
// that precede some event at process 1.
func TestCausalPastFigure1(t *testing.T) {
	// m0: P0->P1 (delivered), m1: P2->P0 (delivered at P0 but after P0's
	// send; unrelated to P1), m2: P2->P1 (sent but not received).
	msgs := mk([2]event.ProcID{0, 1}, [2]event.ProcID{2, 0}, [2]event.ProcID{2, 1})
	r := mustNew(t, msgs, [][]event.Event{
		{inv(0), snd(0), rcv(1), dlv(1)},
		{rcv(0), dlv(0)},
		{inv(1), snd(1), inv(2), snd(2)},
	})
	past, err := r.CausalPast(1)
	if err != nil {
		t.Fatalf("CausalPast: %v", err)
	}
	// P1's own events all kept.
	if got := past.ProcSeq(1); len(got) != 2 {
		t.Fatalf("P1 events = %v", got)
	}
	// P0: inv(0), snd(0) precede P1's rcv(0); rcv(1), dlv(1) do not.
	wantP0 := []event.Event{inv(0), snd(0)}
	gotP0 := past.ProcSeq(0)
	if len(gotP0) != len(wantP0) || gotP0[0] != wantP0[0] || gotP0[1] != wantP0[1] {
		t.Fatalf("P0 past = %v, want %v", gotP0, wantP0)
	}
	// P2: nothing precedes events of P1 (m2 never received).
	if got := past.ProcSeq(2); len(got) != 0 {
		t.Fatalf("P2 past = %v, want empty", got)
	}
	if !past.IsPrefixOf(r) {
		t.Error("causal past must be a prefix")
	}
}

func TestCausalPastIdempotent(t *testing.T) {
	r := fifoRun(t)
	p1, err := r.CausalPast(1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := p1.CausalPast(1)
	if err != nil {
		t.Fatal(err)
	}
	if !p1.Equal(p2) {
		t.Error("CausalPast is not idempotent")
	}
}

func TestUsersViewProjection(t *testing.T) {
	r := fifoRun(t)
	v, err := r.UsersView()
	if err != nil {
		t.Fatal(err)
	}
	// User view of the FIFO run has m0.s, m1.s at P0 and m0.r, m1.r at P1
	// in FIFO delivery order.
	p1 := v.ProcSeq(1)
	if len(p1) != 2 || p1[0] != dlv(0) || p1[1] != dlv(1) {
		t.Fatalf("user P1 = %v, want [m0.r m1.r]", p1)
	}
	if !v.IsComplete() || !v.InCO() {
		t.Error("FIFO system run projects to a causally ordered view")
	}
}

// TestUsersViewFigure4 reproduces Figure 4: in the system view s2 → r1
// (via the receive buffering), but in the user's view s2 does not precede
// r1.
func TestUsersViewFigure4(t *testing.T) {
	r := fifoRun(t)
	// System view: m1.s → m1.r* → m0.r* ... wait: P1 = [r*1, r*0, r0, r1].
	if !r.Before(snd(1), dlv(0)) {
		t.Fatal("system view should order m1.s before m0.r via receive buffering")
	}
	v, err := r.UsersView()
	if err != nil {
		t.Fatal(err)
	}
	if v.Before(snd(1), dlv(0)) {
		t.Error("user view must not order m1.s before m0.r")
	}
}

func TestInXu(t *testing.T) {
	if !immediateRun(t).InXu() {
		t.Error("immediate run must be in X_u")
	}
	if fifoRun(t).InXu() {
		t.Error("FIFO run delays deliveries; not in X_u")
	}
	// Requested but never delivered: not in X_u.
	msgs := mk([2]event.ProcID{0, 1})
	r := mustNew(t, msgs, [][]event.Event{{inv(0), snd(0)}, {}})
	if r.InXu() {
		t.Error("undelivered request must exclude run from X_u")
	}
}

func TestInXtd(t *testing.T) {
	if !immediateRun(t).InXtd() {
		t.Error("immediate sequential run is in X_td")
	}
	// A run in X_u that violates receive-level causal ordering:
	// m0: P0->P2, m1: P0->P1, m2: P1->P2. m0.s → m1.s, m1 delivered at P1
	// triggers m2, and m2 overtakes m0 at P2.
	msgs := mk([2]event.ProcID{0, 2}, [2]event.ProcID{0, 1}, [2]event.ProcID{1, 2})
	r := mustNew(t, msgs, [][]event.Event{
		{inv(0), snd(0), inv(1), snd(1)},
		{rcv(1), dlv(1), inv(2), snd(2)},
		{rcv(2), dlv(2), rcv(0), dlv(0)},
	})
	if !r.InXu() {
		t.Fatal("run is immediate and complete; should be in X_u")
	}
	if r.InXtd() {
		t.Error("m0.s → m2.s and m2.r* → m0.r*: not in X_td")
	}
}

func TestInXgn(t *testing.T) {
	if !immediateRun(t).InXgn() {
		t.Error("sequential run is in X_gn")
	}
	// Crossing messages: in X_td but not X_gn.
	msgs := mk([2]event.ProcID{0, 1}, [2]event.ProcID{1, 0})
	r := mustNew(t, msgs, [][]event.Event{
		{inv(0), snd(0), rcv(1), dlv(1)},
		{inv(1), snd(1), rcv(0), dlv(0)},
	})
	if !r.InXtd() {
		t.Fatal("crossing pair is causally ordered at receive level")
	}
	if r.InXgn() {
		t.Error("crossing messages admit no vertical-arrow numbering")
	}
}

func TestNumberingScheme(t *testing.T) {
	r := immediateRun(t)
	n, ok := r.NumberingScheme()
	if !ok {
		t.Fatal("numbering must exist for sequential run")
	}
	// N(x.r) = N(x.r*)+1 = N(x.s)+2 = N(x.s*)+3
	for _, m := range r.Messages() {
		base := n[inv(m.ID)]
		if n[snd(m.ID)] != base+1 || n[rcv(m.ID)] != base+2 || n[dlv(m.ID)] != base+3 {
			t.Fatalf("block broken for m%d: %v", m.ID, n)
		}
	}
	// h → g ⇒ N(h) < N(g)
	kinds := []event.Kind{event.Invoke, event.Send, event.Receive, event.Deliver}
	for _, x := range r.Messages() {
		for _, y := range r.Messages() {
			for _, hk := range kinds {
				for _, fk := range kinds {
					h, g := ev(x.ID, hk), ev(y.ID, fk)
					if r.Before(h, g) && n[h] >= n[g] {
						t.Fatalf("numbering violates %v → %v", h, g)
					}
				}
			}
		}
	}
}

func TestFromUserViewRoundTrip(t *testing.T) {
	msgs := mk([2]event.ProcID{0, 1}, [2]event.ProcID{1, 0})
	v, err := userview.New(msgs, [][]event.Event{
		{snd(0), dlv(1)},
		{snd(1), dlv(0)},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := FromUserView(v)
	if err != nil {
		t.Fatalf("FromUserView: %v", err)
	}
	if !h.InXu() {
		t.Error("star-completion must land in X_u")
	}
	back, err := h.UsersView()
	if err != nil {
		t.Fatal(err)
	}
	if back.Key() != v.Key() {
		t.Errorf("round trip changed the view:\n got %s\nwant %s", back.Key(), v.Key())
	}
}

func TestFromUserViewPreservesLimitSets(t *testing.T) {
	// Theorem 1: completion of an X_co view is in X_td; completion of an
	// X_sync view is in X_gn.
	msgs := mk([2]event.ProcID{0, 1}, [2]event.ProcID{1, 0})
	crossing, err := userview.New(msgs, [][]event.Event{
		{snd(0), dlv(1)},
		{snd(1), dlv(0)},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := FromUserView(crossing)
	if err != nil {
		t.Fatal(err)
	}
	if !crossing.InCO() || !h.InXtd() {
		t.Error("X_co view must complete into X_td")
	}
	if crossing.InSync() || h.InXgn() {
		t.Error("crossing view is not sync; completion must not be in X_gn")
	}

	seq, err := userview.New(msgs, [][]event.Event{
		{snd(0), dlv(1)},
		{dlv(0), snd(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := FromUserView(seq)
	if err != nil {
		t.Fatal(err)
	}
	if !seq.InSync() || !h2.InXgn() {
		t.Error("X_sync view must complete into X_gn")
	}
}

// randomSystemRun generates a valid system run via random scheduling.
func randomSystemRun(rng *rand.Rand, nProcs, nMsgs int) *Run {
	msgs := make([]event.Message, nMsgs)
	for i := range msgs {
		msgs[i] = event.Message{
			ID:   event.MsgID(i),
			From: event.ProcID(rng.Intn(nProcs)),
			To:   event.ProcID(rng.Intn(nProcs)),
		}
	}
	procs := make([][]event.Event, nProcs)
	stage := make([]event.Kind, nMsgs) // last executed kind; 0 = none
	for steps := 0; steps < 4*nMsgs; steps++ {
		var choices []event.Event
		for i := 0; i < nMsgs; i++ {
			if stage[i] < event.Deliver {
				choices = append(choices, ev(event.MsgID(i), stage[i]+1))
			}
		}
		if len(choices) == 0 {
			break
		}
		e := choices[rng.Intn(len(choices))]
		stage[e.Msg] = e.Kind
		p := e.Proc(msgs[e.Msg])
		procs[p] = append(procs[p], e)
	}
	r, err := New(msgs, procs)
	if err != nil {
		panic(err)
	}
	return r
}

func TestQuickSystemLimitSetChain(t *testing.T) {
	// X_gn ⊆ X_td ⊆ X_u on random runs.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomSystemRun(rng, 2+rng.Intn(3), 1+rng.Intn(4))
		if r.InXgn() && !r.InXtd() {
			return false
		}
		if r.InXtd() && !r.InXu() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCausalPastClosed(t *testing.T) {
	// The causal past must contain every event that precedes one of its
	// events (downward closure).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomSystemRun(rng, 2+rng.Intn(2), 1+rng.Intn(4))
		i := event.ProcID(rng.Intn(r.NumProcs()))
		past, err := r.CausalPast(i)
		if err != nil {
			return false
		}
		for p := 0; p < r.NumProcs(); p++ {
			for _, g := range past.ProcSeq(event.ProcID(p)) {
				for q := 0; q < r.NumProcs(); q++ {
					for _, h := range r.ProcSeq(event.ProcID(q)) {
						if r.Before(h, g) && !past.Has(h) {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUsersViewWeakensCausality(t *testing.T) {
	// e ▷ f in the user's view implies e → f in the system's view
	// (projection never invents causality).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomSystemRun(rng, 2+rng.Intn(3), 1+rng.Intn(4))
		v, err := r.UsersView()
		if err != nil {
			return false
		}
		kinds := []event.Kind{event.Send, event.Deliver}
		for _, x := range r.Messages() {
			for _, y := range r.Messages() {
				for _, hk := range kinds {
					for _, fk := range kinds {
						h, g := ev(x.ID, hk), ev(y.ID, fk)
						if v.Before(h, g) && !r.Before(h, g) {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEqualAndString(t *testing.T) {
	a, b := fifoRun(t), fifoRun(t)
	if !a.Equal(b) {
		t.Error("identical runs must be Equal")
	}
	if a.Equal(immediateRun(t)) {
		t.Error("different runs must not be Equal")
	}
	if a.String() == "" {
		t.Error("empty String()")
	}
	if a.NumEvents() != 8 {
		t.Errorf("NumEvents = %d, want 8", a.NumEvents())
	}
}
