// Package fleetobs is the fleet-wide observability plane: it scrapes
// the per-daemon observability endpoints (metrics snapshots and causal
// trace records), rebases every process's local timebase onto one
// shared wall-clock axis, and merges the per-process traces into a
// single causal fleet timeline that can be validated (every receive
// causally follows its send), attributed (where each message's
// end-to-end latency went), and profiled (which ordering domains and
// which locks are hot).
//
// The merge is the fleet-scale version of what internal/obs does for a
// single harness: obs records each process's view of a run; fleetobs
// reconstructs the run itself — the partial order the paper studies —
// from those per-process fragments. Vector clocks make the
// reconstruction checkable: the component sum of a record's clock is
// strictly monotone along happens-before, so sorting by it yields a
// valid linear extension, and any receive whose clock does not
// dominate its send's clock is evidence of a broken trace, not a
// plausible reordering.
package fleetobs

import (
	"fmt"
	"sort"

	"msgorder/internal/event"
	"msgorder/internal/obs"
)

// NodeTrace is one daemon's contribution to a fleet timeline: the
// records scraped from its collector plus the wall-clock origin of its
// Step timebase (the obs.TimebaseGauge gauge, microseconds). Records
// keep the Proc they were emitted with — a daemon only emits records
// for events it locally observed, so Proc identifies the process even
// after merging.
type NodeTrace struct {
	// TimebaseUS is the node's Step origin as Unix microseconds; 0
	// means the records are already on a shared axis (deterministic
	// simulators, single-process runs).
	TimebaseUS int64
	// Records are the node's trace records in emission order.
	Records []obs.Record
}

// Event is one record of a merged fleet timeline, rebased onto the
// shared wall-clock axis.
type Event struct {
	// GlobalUS is the record's timestamp rebased to Unix microseconds
	// (TimebaseUS + Step); for simulator traces it is the raw step.
	GlobalUS int64
	// Node is the index of the NodeTrace the record came from.
	Node int
	// Seq is the record's emission index within its node, the
	// tie-breaker that keeps merges deterministic.
	Seq int
	// Record is the original trace record.
	Record obs.Record
}

// Timeline is a merged fleet timeline: the union of several nodes'
// records ordered by a valid linear extension of happens-before.
type Timeline struct {
	// Events is the merged record sequence. Records carrying vector
	// clocks are ordered by clock-component sum (monotone along
	// happens-before); ties and clockless records order by rebased
	// global time, then node, then emission index.
	Events []Event
}

// vcSum returns the happens-before-monotone sort key of a record: the
// component sum of its vector clock, or -1 for clockless records
// (spans, transport faults) so they sort by time alone within their
// neighborhood.
func vcSum(r obs.Record) int64 {
	if r.VC == nil {
		return -1
	}
	var s int64
	for _, x := range r.VC {
		s += int64(x)
	}
	return s
}

// Merge combines per-node traces into one fleet timeline. Each node's
// records are rebased by its timebase and the union is sorted into a
// linear extension of the causal order: primary key clock sum (for
// stamped records), secondary rebased time, then node and emission
// index for determinism. Merge never fails — Validate reports whether
// the merged timeline is causally consistent.
func Merge(nodes []NodeTrace) *Timeline {
	var evs []Event
	for ni, n := range nodes {
		for si, r := range n.Records {
			evs = append(evs, Event{
				GlobalUS: n.TimebaseUS + r.Step,
				Node:     ni,
				Seq:      si,
				Record:   r,
			})
		}
	}
	sort.SliceStable(evs, func(i, j int) bool {
		si, sj := vcSum(evs[i].Record), vcSum(evs[j].Record)
		switch {
		case si >= 0 && sj >= 0 && si != sj:
			return si < sj
		case evs[i].GlobalUS != evs[j].GlobalUS:
			return evs[i].GlobalUS < evs[j].GlobalUS
		case evs[i].Node != evs[j].Node:
			return evs[i].Node < evs[j].Node
		default:
			return evs[i].Seq < evs[j].Seq
		}
	})
	return &Timeline{Events: evs}
}

// Check is the outcome of validating a merged timeline.
type Check struct {
	// Events is the merged record count; Msgs the distinct user
	// messages seen.
	Events, Msgs int
	// Sends, Receives, Delivers count the user-message lifecycle
	// records in the timeline.
	Sends, Receives, Delivers int
	// OrphanReceives counts receives of messages no node ever sent —
	// each one is a hole in the scraped trace.
	OrphanReceives int
	// CausalViolations counts receives whose vector clock fails to
	// dominate every matching send's clock — evidence the merged
	// timeline is not a run at all.
	CausalViolations int
	// Undelivered counts invoked messages with no delivery record
	// (only meaningful for quiesced runs scraped to completion).
	Undelivered int
	// Problems holds human-readable detail for the first few failures.
	Problems []string
}

const maxProblems = 8

func (c *Check) problem(format string, args ...any) {
	if len(c.Problems) < maxProblems {
		c.Problems = append(c.Problems, fmt.Sprintf(format, args...))
	}
}

// Err returns nil for a causally valid (and, when requireDelivery was
// set, complete) timeline, or an error summarizing what failed.
func (c Check) Err() error {
	if c.OrphanReceives == 0 && c.CausalViolations == 0 && c.Undelivered == 0 {
		return nil
	}
	return fmt.Errorf("fleetobs: invalid timeline: %d orphan receives, %d causal violations, %d undelivered (first problems: %v)",
		c.OrphanReceives, c.CausalViolations, c.Undelivered, c.Problems)
}

// Validate checks the merged timeline's cross-process causal
// consistency: every user-message receive must be preceded by a send
// of the same message whose vector clock the receive dominates (the
// receive merged the send's stamp, so send.VC ≤ receive.VC must hold
// across processes). With requireDelivery set it additionally demands
// every invoked message carry a delivery record — the completeness
// check for quiesced runs.
func (tl *Timeline) Validate(requireDelivery bool) Check {
	c := Check{Events: len(tl.Events)}
	type msgState struct {
		sends     []obs.Record
		invoked   bool
		delivered bool
	}
	msgs := make(map[event.MsgID]*msgState)
	state := func(m event.MsgID) *msgState {
		s := msgs[m]
		if s == nil {
			s = &msgState{}
			msgs[m] = s
		}
		return s
	}
	// First pass: collect every send so receives are checked against
	// the whole fleet's sends, not just those sorted earlier — a
	// mis-stamped receive must surface as a causal violation, not hide
	// as an orphan.
	for _, ev := range tl.Events {
		if r := ev.Record; r.Op == obs.OpSend && r.Msg != obs.NoMsg {
			c.Sends++
			s := state(r.Msg)
			s.sends = append(s.sends, r)
		}
	}
	for _, ev := range tl.Events {
		r := ev.Record
		if r.Msg == obs.NoMsg {
			continue
		}
		switch r.Op {
		case obs.OpInvoke:
			state(r.Msg).invoked = true
		case obs.OpReceive:
			c.Receives++
			s := state(r.Msg)
			if len(s.sends) == 0 {
				c.OrphanReceives++
				c.problem("receive of m%d at P%d with no send in any node's trace", r.Msg, r.Proc)
				continue
			}
			// A receive is causally placed if at least one send of the
			// message happens-before it. (Broadcast protocols emit one
			// send per destination; retransmit dups re-receive the same
			// stamp.)
			ok := false
			for _, snd := range s.sends {
				if snd.VC == nil || r.VC == nil {
					ok = true // clockless emitter: nothing to check
					break
				}
				if snd.VC.LessEq(r.VC) {
					ok = true
					break
				}
			}
			if !ok {
				c.CausalViolations++
				c.problem("receive of m%d at P%d (vc %v) does not dominate any send stamp", r.Msg, r.Proc, r.VC)
			}
		case obs.OpDeliver:
			c.Delivers++
			state(r.Msg).delivered = true
		}
	}
	c.Msgs = len(msgs)
	if requireDelivery {
		for m, s := range msgs {
			if s.invoked && !s.delivered {
				c.Undelivered++
				c.problem("m%d invoked but never delivered", m)
			}
		}
	}
	return c
}
