package fleetobs

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"

	"msgorder/internal/obs"
)

// LockSite is one contended synchronization site aggregated from a
// runtime mutex or block profile: the code location that waited and
// how long it waited in total.
type LockSite struct {
	// Frame is the most informative stack frame of the site — the
	// first non-runtime, non-sync frame, i.e. the code that was
	// actually contending.
	Frame string
	// DelayUS is the cumulative delay attributed to the site in
	// microseconds.
	DelayUS int64
	// Count is the number of sampled contention events.
	Count int64
}

// frameSymbol extracts the function symbol from a pprof debug=1 frame
// line ("#\t0xADDR\tpkg.Func+0xOFF\tfile:line").
func frameSymbol(line string) string {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return ""
	}
	sym := fields[2]
	if i := strings.LastIndex(sym, "+0x"); i > 0 {
		sym = sym[:i]
	}
	return sym
}

// interestingFrame reports whether a symbol names contending user
// code rather than the synchronization machinery itself.
func interestingFrame(sym string) bool {
	return sym != "" &&
		!strings.HasPrefix(sym, "sync.") &&
		!strings.HasPrefix(sym, "runtime.") &&
		!strings.HasPrefix(sym, "internal/")
}

// ParseContention parses a runtime mutex or block profile in pprof's
// debug=1 text form into lock sites sorted by cumulative delay,
// heaviest first. Sites resolving to the same display frame are
// merged.
func ParseContention(r io.Reader) ([]LockSite, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var cyclesPerSecond float64
	byFrame := make(map[string]*LockSite)
	var cur *LockSite // site awaiting its display frame
	var curCycles float64
	flush := func(frame string) {
		if cur == nil {
			return
		}
		if frame == "" {
			frame = "(unresolved)"
		}
		delayUS := int64(0)
		if cyclesPerSecond > 0 {
			delayUS = int64(curCycles / cyclesPerSecond * 1e6)
		}
		s := byFrame[frame]
		if s == nil {
			s = &LockSite{Frame: frame}
			byFrame[frame] = s
		}
		s.DelayUS += delayUS
		s.Count += cur.Count
		cur = nil
	}
	var pendingFrame string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "---"):
			continue
		case strings.Contains(line, "cycles/second="):
			v := line[strings.Index(line, "cycles/second=")+len("cycles/second="):]
			if f, err := strconv.ParseFloat(strings.Fields(v)[0], 64); err == nil {
				cyclesPerSecond = f
			}
		case strings.HasPrefix(strings.TrimSpace(line), "#"):
			if cur == nil {
				continue
			}
			sym := frameSymbol(line)
			if pendingFrame == "" && sym != "" {
				pendingFrame = sym // fallback: first symbolized frame
			}
			if interestingFrame(sym) {
				flush(sym)
				pendingFrame = ""
			}
		default:
			// A new sample line ends the previous site's frame search.
			flush(pendingFrame)
			pendingFrame = ""
			fields := strings.Fields(line)
			if len(fields) < 3 || fields[2] != "@" {
				continue
			}
			cycles, err1 := strconv.ParseFloat(fields[0], 64)
			count, err2 := strconv.ParseInt(fields[1], 10, 64)
			if err1 != nil || err2 != nil {
				continue
			}
			cur = &LockSite{Count: count}
			curCycles = cycles
		}
	}
	flush(pendingFrame)
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sites := make([]LockSite, 0, len(byFrame))
	for _, s := range byFrame {
		sites = append(sites, *s)
	}
	sort.Slice(sites, func(i, j int) bool {
		if sites[i].DelayUS != sites[j].DelayUS {
			return sites[i].DelayUS > sites[j].DelayUS
		}
		return sites[i].Frame < sites[j].Frame
	})
	return sites, nil
}

// TopContended returns the n heaviest sites (the input is already
// sorted by ParseContention).
func TopContended(sites []LockSite, n int) []LockSite {
	if n > len(sites) {
		n = len(sites)
	}
	return sites[:n]
}

// contentionTopN is how many lock sites PublishContention surfaces as
// gauges per profile.
const contentionTopN = 5

// gaugeFrame flattens a frame symbol into a metric-name segment.
func gaugeFrame(sym string) string {
	return strings.NewReplacer("/", "_", "(", "", ")", "", "*", "").Replace(sym)
}

// PublishContention refreshes the contention-summary gauges in a
// registry from the process's own runtime profiles: for each of the
// mutex and block profiles (when profiling is active and has samples)
// it publishes the top contended sites as
// "contention.<profile>.<frame>.delay_us" gauges plus
// "contention.<profile>.total_delay_us" and ".sites" rollups. A nil
// registry, or profiling left at its default-off rates, publishes
// nothing — the daemon opts in with -mutex-fraction / -block-rate.
func PublishContention(reg *obs.Registry) {
	if reg == nil {
		return
	}
	if runtime.SetMutexProfileFraction(-1) > 0 {
		publishProfile(reg, "mutex")
	}
	publishProfile(reg, "block")
}

func publishProfile(reg *obs.Registry, name string) {
	p := pprof.Lookup(name)
	if p == nil || p.Count() == 0 {
		return
	}
	var buf bytes.Buffer
	if err := p.WriteTo(&buf, 1); err != nil {
		return
	}
	sites, err := ParseContention(&buf)
	if err != nil {
		return
	}
	var total int64
	for _, s := range sites {
		total += s.DelayUS
	}
	reg.Gauge(fmt.Sprintf("contention.%s.total_delay_us", name), total)
	reg.Gauge(fmt.Sprintf("contention.%s.sites", name), int64(len(sites)))
	for _, s := range TopContended(sites, contentionTopN) {
		reg.Gauge(fmt.Sprintf("contention.%s.%s.delay_us", name, gaugeFrame(s.Frame)), s.DelayUS)
	}
}
