package fleetobs

import (
	"context"
	"sort"
	"strings"
	"time"

	"msgorder/internal/obs"
)

// perKeySuffix reports whether a metric name carries the ".k<hex>"
// per-domain suffix obs.Probe appends for keyed messages — those are
// excluded from fleet aggregates to avoid double counting.
func perKeySuffix(name string) bool {
	i := strings.LastIndex(name, ".k")
	if i < 0 || i+2 >= len(name) {
		return false
	}
	for _, c := range name[i+2:] {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

// ProtoInhibition is one protocol's inhibition-span quantiles across
// the fleet, in the emitting harness's step unit (microseconds for
// live meshes).
type ProtoInhibition struct {
	// Proto is the protocol label from the histogram name.
	Proto string `json:"proto"`
	// SendP50/SendP99 summarize send-side inhibition (invoke→send
	// holds); DeliverP50/DeliverP99 the delivery side (receive→deliver
	// holds).
	SendP50    int64 `json:"send_p50,omitempty"`
	SendP99    int64 `json:"send_p99,omitempty"`
	DeliverP50 int64 `json:"deliver_p50,omitempty"`
	DeliverP99 int64 `json:"deliver_p99,omitempty"`
}

// ContentionLeader is one entry of the fleet's top-contended-lock
// table, read back from the contention gauges the daemons publish.
type ContentionLeader struct {
	// Name is the gauge-flattened lock site, prefixed by its profile
	// ("mutex." or "block.").
	Name string `json:"name"`
	// DelayUS is the site's cumulative contention delay.
	DelayUS int64 `json:"delay_us"`
}

// Status is one fleet-wide observability sample: what mostat renders
// per tick and what its -snapshot -json mode emits for mobench.
type Status struct {
	// Targets is the fleet size polled.
	Targets int `json:"targets"`
	// Deliveries is the cumulative fleet-wide delivered-message count
	// (per-protocol latency histogram counts, per-key variants
	// excluded).
	Deliveries int64 `json:"deliveries"`
	// MsgsPerSec is the delivery rate since the previous sample (0 on
	// the first).
	MsgsPerSec float64 `json:"msgs_per_sec"`
	// Inhibition is the per-protocol inhibition quantile table.
	Inhibition []ProtoInhibition `json:"inhibition,omitempty"`
	// Attribution decomposes end-to-end latency over the merged
	// timeline accumulated so far.
	Attribution Attribution `json:"attribution"`
	// Skew is the per-domain delivery skew over the merged timeline.
	Skew SkewReport `json:"skew"`
	// Contention is the fleet's top contended locks by cumulative
	// delay.
	Contention []ContentionLeader `json:"contention,omitempty"`
	// Check is the merged timeline's causal validation outcome.
	Check Check `json:"check"`
}

// statusFromSnapshot derives the snapshot-scoped parts of a Status.
func statusFromSnapshot(s obs.Snapshot, topK int) Status {
	st := Status{}
	protos := make(map[string]*ProtoInhibition)
	proto := func(name, prefix string) *ProtoInhibition {
		p := strings.TrimPrefix(name, prefix)
		pi := protos[p]
		if pi == nil {
			pi = &ProtoInhibition{Proto: p}
			protos[p] = pi
		}
		return pi
	}
	for name, h := range s.Histograms {
		if perKeySuffix(name) {
			continue
		}
		switch {
		case strings.HasPrefix(name, "deliver.latency.steps."):
			st.Deliveries += h.Count
		case strings.HasPrefix(name, "inhibit.send.steps."):
			pi := proto(name, "inhibit.send.steps.")
			pi.SendP50, pi.SendP99 = h.Quantile(0.50), h.Quantile(0.99)
		case strings.HasPrefix(name, "inhibit.deliver.steps."):
			pi := proto(name, "inhibit.deliver.steps.")
			pi.DeliverP50, pi.DeliverP99 = h.Quantile(0.50), h.Quantile(0.99)
		}
	}
	for _, pi := range protos {
		st.Inhibition = append(st.Inhibition, *pi)
	}
	sort.Slice(st.Inhibition, func(i, j int) bool { return st.Inhibition[i].Proto < st.Inhibition[j].Proto })
	for name, v := range s.Gauges {
		if !strings.HasPrefix(name, "contention.") || !strings.HasSuffix(name, ".delay_us") {
			continue
		}
		site := strings.TrimSuffix(strings.TrimPrefix(name, "contention."), ".delay_us")
		if strings.HasSuffix(site, ".total") || !strings.Contains(site, ".") {
			continue // rollup gauges are not lock sites
		}
		st.Contention = append(st.Contention, ContentionLeader{Name: site, DelayUS: v})
	}
	sort.Slice(st.Contention, func(i, j int) bool {
		if st.Contention[i].DelayUS != st.Contention[j].DelayUS {
			return st.Contention[i].DelayUS > st.Contention[j].DelayUS
		}
		return st.Contention[i].Name < st.Contention[j].Name
	})
	if topK > 0 && len(st.Contention) > topK {
		st.Contention = st.Contention[:topK]
	}
	return st
}

// Status polls the fleet once and derives a fleet-wide sample: merged
// metrics quantiles, timeline attribution, skew and contention
// leaders. prev and dt, when given, turn the cumulative delivery count
// into a rate.
func (f *Fleet) Status(ctx context.Context, topK int, prev *Status, dt time.Duration) (Status, error) {
	merged, _, err := f.Poll(ctx)
	if err != nil {
		return Status{}, err
	}
	st := statusFromSnapshot(merged, topK)
	st.Targets = len(f.Clients)
	tl := f.Timeline()
	st.Attribution = Summarize(Attribute(tl))
	st.Skew = Skew(tl, topK)
	st.Check = tl.Validate(false)
	if prev != nil && dt > 0 && st.Deliveries >= prev.Deliveries {
		st.MsgsPerSec = float64(st.Deliveries-prev.Deliveries) / dt.Seconds()
	}
	return st, nil
}
