package fleetobs

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"msgorder/internal/event"
	"msgorder/internal/obs"
	"msgorder/internal/protocol"
	"msgorder/internal/vc"
)

// twoNodeTraces fabricates the per-node traces of one message sent
// from P0 to P1 across two daemons with different timebases, the
// minimal cross-process causal exchange.
func twoNodeTraces() []NodeTrace {
	send := vc.Vector{2, 0}
	recv := vc.Vector{2, 1}
	deliver := vc.Vector{2, 2}
	n0 := NodeTrace{TimebaseUS: 1000, Records: []obs.Record{
		{Step: 0, Proc: 0, Op: obs.OpInvoke, Msg: 0, VC: vc.Vector{1, 0}},
		{Step: 5, Proc: 0, Op: obs.OpSend, Msg: 0, VC: send},
		{Step: 0, Dur: 5, Proc: 0, Op: obs.OpInhibitSend, Msg: 0},
	}}
	n1 := NodeTrace{TimebaseUS: 900, Records: []obs.Record{
		{Step: 140, Proc: 1, Op: obs.OpReceive, Msg: 0, VC: recv},
		{Step: 160, Proc: 1, Op: obs.OpDeliver, Msg: 0, VC: deliver},
		{Step: 140, Dur: 20, Proc: 1, Op: obs.OpInhibitDeliver, Msg: 0},
	}}
	return []NodeTrace{n0, n1}
}

func TestMergeOrdersCausally(t *testing.T) {
	tl := Merge(twoNodeTraces())
	if len(tl.Events) != 6 {
		t.Fatalf("merged %d events, want 6", len(tl.Events))
	}
	// The stamped lifecycle must come out invoke < send < receive <
	// deliver even though node 1's rebased receive (1040) is later than
	// node 0's send (1005) only thanks to the timebase rebasing.
	order := make(map[obs.Op]int)
	for i, ev := range tl.Events {
		if ev.Record.VC != nil {
			order[ev.Record.Op] = i
		}
	}
	if !(order[obs.OpInvoke] < order[obs.OpSend] &&
		order[obs.OpSend] < order[obs.OpReceive] &&
		order[obs.OpReceive] < order[obs.OpDeliver]) {
		t.Fatalf("merged order not a linear extension: %v", order)
	}
	if c := tl.Validate(true); c.Err() != nil {
		t.Fatalf("valid timeline rejected: %v", c.Err())
	}
}

func TestValidateCatchesOrphansAndViolations(t *testing.T) {
	nodes := twoNodeTraces()
	// Drop node 0 entirely: node 1's receive becomes an orphan.
	c := Merge(nodes[1:]).Validate(false)
	if c.OrphanReceives != 1 {
		t.Fatalf("orphan receives = %d, want 1 (check: %+v)", c.OrphanReceives, c)
	}
	if c.Err() == nil {
		t.Fatal("orphaned timeline passed validation")
	}

	// Corrupt the receive stamp so it no longer dominates the send.
	nodes = twoNodeTraces()
	nodes[1].Records[0].VC = vc.Vector{0, 1}
	c = Merge(nodes).Validate(false)
	if c.CausalViolations != 1 {
		t.Fatalf("causal violations = %d, want 1 (check: %+v)", c.CausalViolations, c)
	}

	// Drop the deliver: completeness check must flag it.
	nodes = twoNodeTraces()
	nodes[1].Records = nodes[1].Records[:1]
	c = Merge(nodes).Validate(true)
	if c.Undelivered != 1 {
		t.Fatalf("undelivered = %d, want 1 (check: %+v)", c.Undelivered, c)
	}
}

func TestAttribute(t *testing.T) {
	tl := Merge(twoNodeTraces())
	lats := Attribute(tl)
	if len(lats) != 1 {
		t.Fatalf("attributed %d messages, want 1", len(lats))
	}
	l := lats[0]
	// Global times: invoke 1000, send 1005, receive 1040, deliver 1060.
	if l.TotalUS != 60 {
		t.Fatalf("total = %d, want 60", l.TotalUS)
	}
	if l.InhibitUS != 25 { // 5 send-side + 20 deliver-side
		t.Fatalf("inhibit = %d, want 25", l.InhibitUS)
	}
	if l.TransportUS != 35 { // 1040 - 1005
		t.Fatalf("transport = %d, want 35", l.TransportUS)
	}
	if l.QueueUS != 0 {
		t.Fatalf("queue = %d, want 0", l.QueueUS)
	}
	a := Summarize(lats)
	if a.Msgs != 1 || a.Total.P50 != 60 || a.Total.Max != 60 {
		t.Fatalf("summary wrong: %+v", a)
	}
	if a.Inhibit.Share < 0.4 || a.Inhibit.Share > 0.42 {
		t.Fatalf("inhibit share = %v, want 25/60", a.Inhibit.Share)
	}
}

func TestSkew(t *testing.T) {
	hot, cold := event.KeyOf("hot"), event.KeyOf("cold")
	var recs []obs.Record
	for i := 0; i < 9; i++ {
		recs = append(recs, obs.Record{Op: obs.OpDeliver, Msg: event.MsgID(i), Key: hot})
	}
	recs = append(recs, obs.Record{Op: obs.OpDeliver, Msg: 9, Key: cold})
	recs = append(recs, obs.Record{Op: obs.OpDeliver, Msg: 10}) // unkeyed: ignored
	rep := Skew(Merge([]NodeTrace{{Records: recs}}), 1)
	if rep.Keys != 2 || rep.Deliveries != 10 {
		t.Fatalf("skew counted %d keys / %d deliveries, want 2/10", rep.Keys, rep.Deliveries)
	}
	if len(rep.Top) != 1 || rep.Top[0].Key != hot || rep.Top[0].Deliveries != 9 {
		t.Fatalf("top-1 = %+v, want hot key with 9", rep.Top)
	}
	if rep.MaxShare != 0.9 {
		t.Fatalf("max share = %v, want 0.9", rep.MaxShare)
	}
	if empty := Skew(&Timeline{}, 3); empty.Keys != 0 || len(empty.Top) != 0 {
		t.Fatalf("empty skew report not empty: %+v", empty)
	}
}

const mutexProfileFixture = `--- mutex:
cycles/second=1000000000
sampling period=1
2000000000 4 @ 0x4851ac 0x52f98d 0x46d301
#	0x4851ab	sync.(*Mutex).Unlock+0x6b	/go/src/sync/mutex.go:223
#	0x52f98c	msgorder/internal/netmesh.(*Node).handle+0x12c	/root/repo/internal/netmesh/node.go:500
#	0x46d300	runtime.goexit+0x0	/go/src/runtime/asm.s:1650
500000000 2 @ 0x4851ac 0x51aa01 0x46d301
#	0x4851ab	sync.(*Mutex).Unlock+0x6b	/go/src/sync/mutex.go:223
#	0x51aa00	msgorder/internal/transport.(*Endpoint).pump+0x80	/root/repo/internal/transport/transport.go:300
#	0x46d300	runtime.goexit+0x0	/go/src/runtime/asm.s:1650
`

func TestParseContention(t *testing.T) {
	sites, err := ParseContention(strings.NewReader(mutexProfileFixture))
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) != 2 {
		t.Fatalf("parsed %d sites, want 2: %+v", len(sites), sites)
	}
	top := sites[0]
	if !strings.Contains(top.Frame, "netmesh.(*Node).handle") {
		t.Fatalf("top frame = %q, want the netmesh handler (sync/runtime frames skipped)", top.Frame)
	}
	if top.DelayUS != 2000000 || top.Count != 4 {
		t.Fatalf("top site = %+v, want 2s delay / 4 events", top)
	}
	if sites[1].DelayUS != 500000 {
		t.Fatalf("second site delay = %d, want 500000", sites[1].DelayUS)
	}
	if got := TopContended(sites, 1); len(got) != 1 || got[0].Frame != top.Frame {
		t.Fatalf("TopContended(1) = %+v", got)
	}
}

// TestMuxAndClient drives the daemon-side handler end to end through
// the scrape client: JSON and Prometheus metrics, trace cursors, and
// the fleet poller's merged timeline.
func TestMuxAndClient(t *testing.T) {
	reg := obs.NewRegistry()
	col := obs.NewCollector()
	reg.Gauge(obs.TimebaseGauge, 1000)
	step := int64(0)
	p := obs.NewProbe(2, col, reg, "fifo", func() int64 { return step })
	m := event.Message{ID: 0, From: 0, To: 1}
	p.Invoke(m)
	w := protocol.Wire{From: 0, To: 1, Kind: protocol.UserWire, Msg: 0}
	step = 5
	p.Send(&w)
	step = 10
	p.Receive(w)
	step = 12
	p.Deliver(1, 0)

	srv := httptest.NewServer(Mux(reg, col))
	defer srv.Close()
	ctx := context.Background()
	c := &Client{Base: srv.URL}

	snap, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Gauges[obs.TimebaseGauge] != 1000 {
		t.Fatalf("scraped timebase = %d, want 1000", snap.Gauges[obs.TimebaseGauge])
	}
	if _, ok := snap.Histograms["deliver.latency.steps.fifo"]; !ok {
		t.Fatalf("scraped snapshot missing latency histogram: %v", snap.Names())
	}

	recs, next, err := c.TraceSince(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || next != col.Seq() {
		t.Fatalf("trace scrape = %d recs next %d (collector seq %d)", len(recs), next, col.Seq())
	}
	if recs2, next2, err := c.TraceSince(ctx, next); err != nil || len(recs2) != 0 || next2 != next {
		t.Fatalf("caught-up scrape = %d recs next %d err %v", len(recs2), next2, err)
	}

	// Prometheus negotiation.
	resp, err := c.get(ctx, "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 1<<16)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if !strings.Contains(string(body[:n]), "# TYPE") {
		t.Fatalf("prom exposition missing TYPE lines: %q", body[:100])
	}

	// Fleet poll: one-node fleet, merged timeline must validate.
	f := NewFleet([]string{srv.URL})
	merged, nodes, err := f.Poll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 1 || nodes[0].Trace.TimebaseUS != 1000 {
		t.Fatalf("fleet poll nodes = %+v", nodes)
	}
	if merged.Gauges[obs.TimebaseGauge] != 1000 {
		t.Fatal("merged snapshot lost timebase gauge")
	}
	if chk := f.Timeline().Validate(true); chk.Err() != nil {
		t.Fatalf("fleet timeline invalid: %v", chk.Err())
	}
	// A second poll pulls nothing new (cursor advanced).
	if _, nodes, err = f.Poll(ctx); err != nil || len(nodes[0].Trace.Records) != 0 {
		t.Fatalf("incremental poll re-fetched %d records (err %v)", len(nodes[0].Trace.Records), err)
	}
}
