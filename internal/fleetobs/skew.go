package fleetobs

import (
	"sort"

	"msgorder/internal/event"
	"msgorder/internal/obs"
)

// KeyLoad is one ordering domain's delivery volume in a timeline.
type KeyLoad struct {
	// Key is the ordering domain.
	Key event.Key
	// Deliveries is the number of deliver records carrying the key.
	Deliveries int
	// Share is Deliveries over all keyed deliveries (0..1).
	Share float64
}

// SkewReport describes hot-key skew in a sharded run: how unevenly the
// delivered traffic spread over ordering domains.
type SkewReport struct {
	// Keys is the number of distinct ordering domains seen; Deliveries
	// the keyed deliver records counted.
	Keys, Deliveries int
	// Top holds the K heaviest domains, heaviest first.
	Top []KeyLoad
	// MaxShare is Top[0].Share (0 with no keyed traffic) — 1/Keys for
	// a perfectly uniform load, approaching 1 as one domain dominates.
	MaxShare float64
}

// Skew counts deliver records per ordering domain across the merged
// timeline and reports the top-k heavy hitters. Unkeyed deliveries are
// ignored — an unsharded run produces an empty report.
func Skew(tl *Timeline, k int) SkewReport {
	counts := make(map[event.Key]int)
	total := 0
	for _, ev := range tl.Events {
		r := ev.Record
		if r.Op != obs.OpDeliver || r.Key == event.NoKey {
			continue
		}
		counts[r.Key]++
		total++
	}
	rep := SkewReport{Keys: len(counts), Deliveries: total}
	if total == 0 {
		return rep
	}
	loads := make([]KeyLoad, 0, len(counts))
	for key, n := range counts {
		loads = append(loads, KeyLoad{Key: key, Deliveries: n, Share: float64(n) / float64(total)})
	}
	sort.Slice(loads, func(i, j int) bool {
		if loads[i].Deliveries != loads[j].Deliveries {
			return loads[i].Deliveries > loads[j].Deliveries
		}
		return loads[i].Key < loads[j].Key
	})
	if k > len(loads) {
		k = len(loads)
	}
	rep.Top = loads[:k]
	rep.MaxShare = loads[0].Share
	return rep
}
