package fleetobs

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"

	"msgorder/internal/obs"
)

// TraceCursorHeader is the response header on /trace carrying the next
// scrape cursor: pass its value back as ?since= to receive only
// records emitted after this response.
const TraceCursorHeader = "X-Trace-Next"

// wantsProm reports whether a /metrics request asked for the
// Prometheus text exposition instead of the JSON default — either
// explicitly (?format=prom) or via Accept content negotiation.
func wantsProm(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prom", "prometheus":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "openmetrics")
}

// Mux builds the daemon-side observability HTTP handler shared by
// cmd/mod and the in-process conformance meshes:
//
//   - /metrics — registry snapshot; JSON by default, Prometheus text
//     exposition with ?format=prom or an Accept header asking for
//     text/plain. When contention profiling is active (see
//     EnableContention) the snapshot includes the refreshed
//     top-contended-lock gauges.
//   - /trace — the causal trace as NDJSON. ?since=<cursor> returns
//     only records numbered at or after the cursor; the response's
//     X-Trace-Next header carries the cursor to resume from.
//   - /healthz — liveness.
//   - /debug/pprof/... — the runtime profiles, notably /debug/pprof/mutex
//     and /debug/pprof/block for remote contention profiling.
func Mux(metrics *obs.Registry, collector *obs.Collector) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		PublishContention(metrics)
		snap := metrics.Snapshot()
		if wantsProm(r) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			obs.WritePrometheus(w, snap)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(snap)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		recs := collector.Records()
		next := collector.Seq()
		if q := r.URL.Query().Get("since"); q != "" {
			since, err := strconv.ParseUint(q, 10, 64)
			if err != nil {
				http.Error(w, "bad since cursor: "+err.Error(), http.StatusBadRequest)
				return
			}
			recs, next = collector.RecordsSince(since)
		}
		w.Header().Set(TraceCursorHeader, strconv.FormatUint(next, 10))
		w.Header().Set("Content-Type", "application/x-ndjson")
		obs.WriteNDJSON(w, recs)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Client scrapes one daemon's observability endpoints.
type Client struct {
	// Base is the daemon's HTTP base URL, e.g. "http://127.0.0.1:9001".
	Base string
	// HTTP is the client to use (nil: http.DefaultClient).
	HTTP *http.Client
}

func (c *Client) cli() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) get(ctx context.Context, path string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.cli().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		resp.Body.Close()
		return nil, fmt.Errorf("fleetobs: GET %s%s: %s: %s", c.Base, path, resp.Status, strings.TrimSpace(string(body)))
	}
	return resp, nil
}

// Metrics fetches the daemon's metrics snapshot (JSON form).
func (c *Client) Metrics(ctx context.Context) (obs.Snapshot, error) {
	resp, err := c.get(ctx, "/metrics")
	if err != nil {
		return obs.Snapshot{}, err
	}
	defer resp.Body.Close()
	var s obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		return obs.Snapshot{}, fmt.Errorf("fleetobs: decoding %s/metrics: %w", c.Base, err)
	}
	return s, nil
}

// TraceSince fetches the daemon's trace records numbered since and
// later, returning the records and the cursor to resume from. Pass 0
// to fetch everything buffered.
func (c *Client) TraceSince(ctx context.Context, since uint64) ([]obs.Record, uint64, error) {
	resp, err := c.get(ctx, fmt.Sprintf("/trace?since=%d", since))
	if err != nil {
		return nil, since, err
	}
	defer resp.Body.Close()
	next := since
	if h := resp.Header.Get(TraceCursorHeader); h != "" {
		if v, err := strconv.ParseUint(h, 10, 64); err == nil {
			next = v
		}
	}
	var recs []obs.Record
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var r obs.Record
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			return nil, since, fmt.Errorf("fleetobs: decoding %s/trace line: %w", c.Base, err)
		}
		recs = append(recs, r)
	}
	if err := sc.Err(); err != nil {
		return nil, since, err
	}
	return recs, next, nil
}

// Contention fetches and parses one of the daemon's contention
// profiles ("mutex" or "block") via /debug/pprof.
func (c *Client) Contention(ctx context.Context, profile string) ([]LockSite, error) {
	resp, err := c.get(ctx, "/debug/pprof/"+profile+"?debug=1")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return ParseContention(resp.Body)
}

// Scrape is one node's full observability pull: metrics snapshot plus
// the trace records since the caller's cursor, already wrapped as a
// NodeTrace with the timebase read from the snapshot.
type Scrape struct {
	// Snapshot is the node's metrics at scrape time.
	Snapshot obs.Snapshot
	// Trace is the node's records since the request cursor, with
	// TimebaseUS filled from the obs.TimebaseGauge gauge.
	Trace NodeTrace
	// Next is the trace cursor to pass to the following Scrape.
	Next uint64
}

// ScrapeNode pulls metrics and trace from one daemon in a single
// logical operation.
func (c *Client) ScrapeNode(ctx context.Context, since uint64) (Scrape, error) {
	snap, err := c.Metrics(ctx)
	if err != nil {
		return Scrape{}, err
	}
	recs, next, err := c.TraceSince(ctx, since)
	if err != nil {
		return Scrape{}, err
	}
	return Scrape{
		Snapshot: snap,
		Trace:    NodeTrace{TimebaseUS: snap.Gauges[obs.TimebaseGauge], Records: recs},
		Next:     next,
	}, nil
}

// Fleet scrapes a set of daemons and maintains per-node trace cursors
// so repeated polls pull only new records.
type Fleet struct {
	// Clients are the per-daemon scrapers, one per fleet member.
	Clients []*Client
	cursors []uint64
	// accumulated per-node records across polls, so Merged timelines
	// stay complete even though each poll is incremental.
	traces []NodeTrace
}

// NewFleet builds a fleet scraper over the given base URLs.
func NewFleet(bases []string) *Fleet {
	f := &Fleet{
		cursors: make([]uint64, len(bases)),
		traces:  make([]NodeTrace, len(bases)),
	}
	for _, b := range bases {
		f.Clients = append(f.Clients, &Client{Base: b})
	}
	return f
}

// Poll scrapes every fleet member once, advancing trace cursors, and
// returns the merged metrics snapshot for this round alongside the
// per-node snapshots. Trace records accumulate inside the Fleet; call
// Timeline for the merged view.
func (f *Fleet) Poll(ctx context.Context) (merged obs.Snapshot, nodes []Scrape, err error) {
	reg := obs.NewRegistry()
	for i, c := range f.Clients {
		s, serr := c.ScrapeNode(ctx, f.cursors[i])
		if serr != nil {
			return obs.Snapshot{}, nodes, serr
		}
		f.cursors[i] = s.Next
		f.traces[i].TimebaseUS = s.Trace.TimebaseUS
		f.traces[i].Records = append(f.traces[i].Records, s.Trace.Records...)
		reg.MergeSnapshot(s.Snapshot)
		nodes = append(nodes, s)
	}
	return reg.Snapshot(), nodes, nil
}

// Timeline merges every record accumulated so far into one fleet
// timeline.
func (f *Fleet) Timeline() *Timeline {
	return Merge(f.traces)
}
