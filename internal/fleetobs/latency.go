package fleetobs

import (
	"sort"

	"msgorder/internal/event"
	"msgorder/internal/obs"
)

// MsgLatency decomposes one delivered message's end-to-end latency
// (invoke at the source to deliver at the destination, on the rebased
// global axis) into where the time actually went:
//
//   - Inhibit: protocol-imposed waiting — the send-side inhibition span
//     (held between invoke and send) plus the delivery-side span (held
//     between receive and deliver). This is the cost the paper's
//     inhibition hierarchy is about.
//   - Transport: time on the wire and in the reliable sublayer,
//     send execution to receive arrival (includes retransmit delays).
//   - Queue: the remainder — inbox queueing, handler scheduling, and
//     clock skew the rebasing could not remove. Clamped at zero.
type MsgLatency struct {
	// Msg is the message; Key its ordering domain (event.NoKey when
	// unkeyed).
	Msg event.MsgID
	Key event.Key
	// From and To are the source and destination processes.
	From, To event.ProcID
	// TotalUS is deliver minus invoke on the global axis.
	TotalUS int64
	// InhibitUS, TransportUS and QueueUS are the attribution segments;
	// they sum to TotalUS up to clamping.
	InhibitUS, TransportUS, QueueUS int64
}

func clampPos(v int64) int64 {
	if v < 0 {
		return 0
	}
	return v
}

// Attribute decomposes every delivered message in the timeline. A
// message must carry invoke, send, receive and deliver records to be
// attributable; partially scraped messages are skipped. For broadcast
// protocols each (message, destination) pair attributes separately.
func Attribute(tl *Timeline) []MsgLatency {
	type side struct {
		invoke, send       int64
		hasInvoke, hasSend bool
		from               event.ProcID
		key                event.Key
		inhibitSend        int64
		recv, deliver      map[event.ProcID]int64
		inhibitDeliver     map[event.ProcID]int64
	}
	msgs := make(map[event.MsgID]*side)
	state := func(m event.MsgID) *side {
		s := msgs[m]
		if s == nil {
			s = &side{
				recv:           make(map[event.ProcID]int64),
				deliver:        make(map[event.ProcID]int64),
				inhibitDeliver: make(map[event.ProcID]int64),
			}
			msgs[m] = s
		}
		return s
	}
	for _, ev := range tl.Events {
		r := ev.Record
		if r.Msg == obs.NoMsg {
			continue
		}
		s := state(r.Msg)
		if r.Key != event.NoKey {
			s.key = r.Key
		}
		switch r.Op {
		case obs.OpInvoke:
			if !s.hasInvoke {
				s.invoke, s.hasInvoke, s.from = ev.GlobalUS, true, r.Proc
			}
		case obs.OpSend:
			if !s.hasSend {
				s.send, s.hasSend = ev.GlobalUS, true
			}
		case obs.OpReceive:
			if _, ok := s.recv[r.Proc]; !ok {
				s.recv[r.Proc] = ev.GlobalUS
			}
		case obs.OpDeliver:
			if _, ok := s.deliver[r.Proc]; !ok {
				s.deliver[r.Proc] = ev.GlobalUS
			}
		case obs.OpInhibitSend:
			s.inhibitSend += r.Dur
		case obs.OpInhibitDeliver:
			s.inhibitDeliver[r.Proc] += r.Dur
		}
	}
	var out []MsgLatency
	for m, s := range msgs {
		if !s.hasInvoke || !s.hasSend {
			continue
		}
		for proc, dg := range s.deliver {
			rg, ok := s.recv[proc]
			if !ok {
				continue
			}
			total := dg - s.invoke
			inhibit := s.inhibitSend + s.inhibitDeliver[proc]
			transport := clampPos(rg - s.send)
			out = append(out, MsgLatency{
				Msg: m, Key: s.key, From: s.from, To: proc,
				TotalUS:     total,
				InhibitUS:   inhibit,
				TransportUS: transport,
				QueueUS:     clampPos(total - inhibit - transport),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Msg != out[j].Msg {
			return out[i].Msg < out[j].Msg
		}
		return out[i].To < out[j].To
	})
	return out
}

// SegmentSummary is the distribution of one attribution segment across
// a set of delivered messages, in microseconds.
type SegmentSummary struct {
	// P50, P99 and Max are quantiles of the segment; Mean its average.
	P50, P99, Max int64
	Mean          float64
	// Share is the segment's fraction of total end-to-end time summed
	// across all messages (0..1).
	Share float64
}

// Attribution aggregates per-message latency decompositions.
type Attribution struct {
	// Msgs is the number of attributed (message, destination) pairs.
	Msgs int
	// Total, Inhibit, Transport and Queue summarize each segment.
	Total, Inhibit, Transport, Queue SegmentSummary
}

// quantile returns the q-quantile of vals (nearest-rank); vals may be
// unsorted and is not modified.
func quantile(vals []int64, q float64) int64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]int64(nil), vals...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	idx := int(q*float64(len(s))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

func summarize(vals []int64, totalSum int64) SegmentSummary {
	var sum, max int64
	for _, v := range vals {
		sum += v
		if v > max {
			max = v
		}
	}
	ss := SegmentSummary{
		P50: quantile(vals, 0.50),
		P99: quantile(vals, 0.99),
		Max: max,
	}
	if len(vals) > 0 {
		ss.Mean = float64(sum) / float64(len(vals))
	}
	if totalSum > 0 {
		ss.Share = float64(sum) / float64(totalSum)
	}
	return ss
}

// Summarize aggregates a set of per-message decompositions into
// segment distributions and shares.
func Summarize(lats []MsgLatency) Attribution {
	a := Attribution{Msgs: len(lats)}
	var total, inhibit, transport, queue []int64
	var totalSum int64
	for _, l := range lats {
		total = append(total, l.TotalUS)
		inhibit = append(inhibit, l.InhibitUS)
		transport = append(transport, l.TransportUS)
		queue = append(queue, l.QueueUS)
		totalSum += l.TotalUS
	}
	a.Total = summarize(total, totalSum)
	a.Inhibit = summarize(inhibit, totalSum)
	a.Transport = summarize(transport, totalSum)
	a.Queue = summarize(queue, totalSum)
	return a
}
