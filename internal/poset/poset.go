// Package poset provides finite directed-graph and partial-order utilities
// used throughout the message-ordering library: reachability, transitive
// closure and reduction, topological sorting, cycle detection, and linear
// extensions.
//
// Nodes are dense integers 0..n-1. Higher layers map domain objects (events,
// messages) onto node indices. All operations are deterministic: where a
// choice exists (e.g. among topological orders) the smallest node index wins.
package poset

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"
)

// ErrCycle is reported by operations that require an acyclic graph.
var ErrCycle = errors.New("poset: graph contains a cycle")

// DAG is a mutable directed graph over nodes 0..n-1. The zero value is an
// empty graph; add nodes with Grow or AddNode. Despite the name, a DAG may
// temporarily contain cycles; operations that require acyclicity report
// ErrCycle.
type DAG struct {
	succ [][]int // adjacency lists, deduplicated lazily by Edge/AddEdge
	pred [][]int
	m    int // number of edges
}

// NewDAG returns a graph with n isolated nodes.
func NewDAG(n int) *DAG {
	d := &DAG{}
	d.Grow(n)
	return d
}

// Len returns the number of nodes.
func (d *DAG) Len() int { return len(d.succ) }

// NumEdges returns the number of distinct directed edges.
func (d *DAG) NumEdges() int { return d.m }

// Grow ensures the graph has at least n nodes.
func (d *DAG) Grow(n int) {
	for len(d.succ) < n {
		d.succ = append(d.succ, nil)
		d.pred = append(d.pred, nil)
	}
}

// AddNode appends a fresh node and returns its index.
func (d *DAG) AddNode() int {
	d.succ = append(d.succ, nil)
	d.pred = append(d.pred, nil)
	return len(d.succ) - 1
}

// HasEdge reports whether the edge u->v is present.
func (d *DAG) HasEdge(u, v int) bool {
	if u < 0 || u >= len(d.succ) {
		return false
	}
	for _, w := range d.succ[u] {
		if w == v {
			return true
		}
	}
	return false
}

// AddEdge inserts the edge u->v, growing the graph as needed.
// Duplicate edges are ignored. Self-loops are permitted (they make the
// graph cyclic).
func (d *DAG) AddEdge(u, v int) {
	if u < 0 || v < 0 {
		return
	}
	n := u
	if v > n {
		n = v
	}
	d.Grow(n + 1)
	if d.HasEdge(u, v) {
		return
	}
	d.succ[u] = append(d.succ[u], v)
	d.pred[v] = append(d.pred[v], u)
	d.m++
}

// Succ returns the successors of u. The returned slice must not be modified.
func (d *DAG) Succ(u int) []int { return d.succ[u] }

// Pred returns the predecessors of u. The returned slice must not be modified.
func (d *DAG) Pred(u int) []int { return d.pred[u] }

// Clone returns a deep copy of the graph.
func (d *DAG) Clone() *DAG {
	c := NewDAG(d.Len())
	for u, vs := range d.succ {
		for _, v := range vs {
			c.AddEdge(u, v)
		}
	}
	return c
}

// TopoSort returns a topological order of the nodes, or ErrCycle if the
// graph is cyclic. Among valid orders it returns the lexicographically
// smallest (by node index), which makes results reproducible.
func (d *DAG) TopoSort() ([]int, error) {
	n := d.Len()
	indeg := make([]int, n)
	for _, vs := range d.succ {
		for _, v := range vs {
			indeg[v]++
		}
	}
	// Min-heap of ready nodes for deterministic output.
	ready := &intHeap{}
	for u := 0; u < n; u++ {
		if indeg[u] == 0 {
			ready.push(u)
		}
	}
	order := make([]int, 0, n)
	for ready.len() > 0 {
		u := ready.pop()
		order = append(order, u)
		for _, v := range d.succ[u] {
			indeg[v]--
			if indeg[v] == 0 {
				ready.push(v)
			}
		}
	}
	if len(order) != n {
		return nil, ErrCycle
	}
	return order, nil
}

// IsAcyclic reports whether the graph has no directed cycle.
func (d *DAG) IsAcyclic() bool {
	_, err := d.TopoSort()
	return err == nil
}

// FindCycle returns one directed cycle as a node sequence
// [v0, v1, ..., vk] with edges v0->v1->...->vk->v0, or nil if the graph is
// acyclic. Self-loops yield a single-element cycle.
func (d *DAG) FindCycle() []int {
	n := d.Len()
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int8, n)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	var cycle []int
	var dfs func(u int) bool
	dfs = func(u int) bool {
		color[u] = gray
		for _, v := range d.succ[u] {
			switch color[v] {
			case white:
				parent[v] = u
				if dfs(v) {
					return true
				}
			case gray:
				// Found a back edge u->v; walk parents from u back to v.
				cycle = []int{u}
				for w := u; w != v; {
					w = parent[w]
					cycle = append(cycle, w)
				}
				reverse(cycle)
				return true
			}
		}
		color[u] = black
		return false
	}
	for u := 0; u < n; u++ {
		if color[u] == white && dfs(u) {
			return cycle
		}
	}
	return nil
}

// Reachability is a dense transitive-closure matrix built once from a DAG.
type Reachability struct {
	n    int
	bits []uint64 // n rows of ceil(n/64) words; row u marks nodes reachable from u (excluding u unless on a cycle through u)
	w    int
}

// NewReachability computes reachability (the strict transitive closure of
// the edge relation) for every pair of nodes. Works for cyclic graphs too:
// Reaches(u,u) is true iff u lies on a cycle.
func NewReachability(d *DAG) *Reachability {
	n := d.Len()
	w := (n + 63) / 64
	r := &Reachability{n: n, w: w, bits: make([]uint64, n*w)}
	order, err := d.TopoSort()
	if err == nil {
		// Acyclic fast path: process in reverse topological order.
		for i := n - 1; i >= 0; i-- {
			u := order[i]
			row := r.bits[u*w : (u+1)*w]
			for _, v := range d.succ[u] {
				row[v/64] |= 1 << (uint(v) % 64)
				vrow := r.bits[v*w : (v+1)*w]
				for k := 0; k < w; k++ {
					row[k] |= vrow[k]
				}
			}
		}
		return r
	}
	// General path: BFS from each node.
	for u := 0; u < n; u++ {
		row := r.bits[u*w : (u+1)*w]
		stack := append([]int(nil), d.succ[u]...)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if row[v/64]&(1<<(uint(v)%64)) != 0 {
				continue
			}
			row[v/64] |= 1 << (uint(v) % 64)
			stack = append(stack, d.succ[v]...)
		}
	}
	return r
}

// Reaches reports whether v is reachable from u by a nonempty path.
func (r *Reachability) Reaches(u, v int) bool {
	if u < 0 || v < 0 || u >= r.n || v >= r.n {
		return false
	}
	return r.bits[u*r.w+v/64]&(1<<(uint(v)%64)) != 0
}

// Comparable reports whether u and v are ordered either way.
func (r *Reachability) Comparable(u, v int) bool {
	return r.Reaches(u, v) || r.Reaches(v, u)
}

// Concurrent reports whether distinct nodes u and v are unordered.
func (r *Reachability) Concurrent(u, v int) bool {
	return u != v && !r.Comparable(u, v)
}

// CountReachable returns the number of nodes reachable from u.
func (r *Reachability) CountReachable(u int) int {
	c := 0
	for _, word := range r.bits[u*r.w : (u+1)*r.w] {
		c += bits.OnesCount64(word)
	}
	return c
}

// TransitiveReduction returns a new graph containing the minimal edge set
// whose transitive closure equals that of d. Requires an acyclic graph.
func TransitiveReduction(d *DAG) (*DAG, error) {
	if !d.IsAcyclic() {
		return nil, ErrCycle
	}
	r := NewReachability(d)
	out := NewDAG(d.Len())
	for u := 0; u < d.Len(); u++ {
		for _, v := range d.succ[u] {
			// u->v is redundant if some other successor w of u reaches v.
			redundant := false
			for _, w := range d.succ[u] {
				if w != v && r.Reaches(w, v) {
					redundant = true
					break
				}
			}
			if !redundant {
				out.AddEdge(u, v)
			}
		}
	}
	return out, nil
}

// TransitiveClosure returns a new graph with an edge u->v for every
// nonempty path u~>v in d.
func TransitiveClosure(d *DAG) *DAG {
	r := NewReachability(d)
	out := NewDAG(d.Len())
	for u := 0; u < d.Len(); u++ {
		for v := 0; v < d.Len(); v++ {
			if r.Reaches(u, v) {
				out.AddEdge(u, v)
			}
		}
	}
	return out
}

// LinearExtensions enumerates every topological order of the acyclic graph
// d and calls fn for each. The slice passed to fn is reused; copy it if it
// must be retained. If fn returns false, enumeration stops early.
// Returns ErrCycle for cyclic graphs, and the total count otherwise.
func LinearExtensions(d *DAG, fn func(order []int) bool) (int, error) {
	n := d.Len()
	if !d.IsAcyclic() {
		return 0, ErrCycle
	}
	indeg := make([]int, n)
	for _, vs := range d.succ {
		for _, v := range vs {
			indeg[v]++
		}
	}
	order := make([]int, 0, n)
	used := make([]bool, n)
	count := 0
	stopped := false
	var rec func()
	rec = func() {
		if stopped {
			return
		}
		if len(order) == n {
			count++
			if !fn(order) {
				stopped = true
			}
			return
		}
		for u := 0; u < n; u++ {
			if used[u] || indeg[u] != 0 {
				continue
			}
			used[u] = true
			order = append(order, u)
			for _, v := range d.succ[u] {
				indeg[v]--
			}
			rec()
			for _, v := range d.succ[u] {
				indeg[v]++
			}
			order = order[:len(order)-1]
			used[u] = false
			if stopped {
				return
			}
		}
	}
	rec()
	return count, nil
}

// StronglyConnected returns the strongly connected components of d in
// reverse topological order of the condensation (Tarjan). Each component
// is sorted ascending.
func StronglyConnected(d *DAG) [][]int {
	n := d.Len()
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var comps [][]int
	next := 0

	// Iterative Tarjan to survive deep graphs.
	type frame struct {
		u, i int
	}
	var callStack []frame
	for start := 0; start < n; start++ {
		if index[start] != -1 {
			continue
		}
		callStack = append(callStack[:0], frame{start, 0})
		index[start] = next
		low[start] = next
		next++
		stack = append(stack, start)
		onStack[start] = true
		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			u := f.u
			if f.i < len(d.succ[u]) {
				v := d.succ[u][f.i]
				f.i++
				if index[v] == -1 {
					index[v] = next
					low[v] = next
					next++
					stack = append(stack, v)
					onStack[v] = true
					callStack = append(callStack, frame{v, 0})
				} else if onStack[v] && index[v] < low[u] {
					low[u] = index[v]
				}
				continue
			}
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				p := callStack[len(callStack)-1].u
				if low[u] < low[p] {
					low[p] = low[u]
				}
			}
			if low[u] == index[u] {
				var comp []int
				for {
					v := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[v] = false
					comp = append(comp, v)
					if v == u {
						break
					}
				}
				sort.Ints(comp)
				comps = append(comps, comp)
			}
		}
	}
	return comps
}

// String renders the graph adjacency for debugging.
func (d *DAG) String() string {
	s := fmt.Sprintf("DAG(n=%d, m=%d)", d.Len(), d.m)
	for u, vs := range d.succ {
		if len(vs) == 0 {
			continue
		}
		sorted := append([]int(nil), vs...)
		sort.Ints(sorted)
		s += fmt.Sprintf(" %d->%v", u, sorted)
	}
	return s
}

func reverse(a []int) {
	for i, j := 0, len(a)-1; i < j; i, j = i+1, j-1 {
		a[i], a[j] = a[j], a[i]
	}
}

// intHeap is a tiny binary min-heap of ints.
type intHeap struct{ a []int }

func (h *intHeap) len() int { return len(h.a) }

func (h *intHeap) push(x int) {
	h.a = append(h.a, x)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p] <= h.a[i] {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *intHeap) pop() int {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h.a[l] < h.a[small] {
			small = l
		}
		if r < last && h.a[r] < h.a[small] {
			small = r
		}
		if small == i {
			break
		}
		h.a[i], h.a[small] = h.a[small], h.a[i]
		i = small
	}
	return top
}
