package poset

import (
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func chain(n int) *DAG {
	d := NewDAG(n)
	for i := 0; i+1 < n; i++ {
		d.AddEdge(i, i+1)
	}
	return d
}

func diamond() *DAG {
	d := NewDAG(4)
	d.AddEdge(0, 1)
	d.AddEdge(0, 2)
	d.AddEdge(1, 3)
	d.AddEdge(2, 3)
	return d
}

func TestAddEdgeDeduplicates(t *testing.T) {
	d := NewDAG(2)
	d.AddEdge(0, 1)
	d.AddEdge(0, 1)
	if got := d.NumEdges(); got != 1 {
		t.Fatalf("NumEdges = %d, want 1", got)
	}
	if !d.HasEdge(0, 1) || d.HasEdge(1, 0) {
		t.Fatalf("unexpected edge set: %v", d)
	}
}

func TestAddEdgeGrows(t *testing.T) {
	var d DAG
	d.AddEdge(3, 7)
	if d.Len() != 8 {
		t.Fatalf("Len = %d, want 8", d.Len())
	}
	if !d.HasEdge(3, 7) {
		t.Fatal("missing edge 3->7")
	}
}

func TestAddEdgeNegativeIgnored(t *testing.T) {
	var d DAG
	d.AddEdge(-1, 2)
	d.AddEdge(2, -5)
	if d.Len() != 0 || d.NumEdges() != 0 {
		t.Fatalf("negative edges should be ignored, got %v", &d)
	}
}

func TestTopoSortChain(t *testing.T) {
	d := chain(5)
	order, err := d.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3, 4}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestTopoSortDeterministic(t *testing.T) {
	// 2 and 0 are both sources; smallest index must come first.
	d := NewDAG(3)
	d.AddEdge(2, 1)
	d.AddEdge(0, 1)
	order, err := d.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 2, 1}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestTopoSortCycle(t *testing.T) {
	d := NewDAG(3)
	d.AddEdge(0, 1)
	d.AddEdge(1, 2)
	d.AddEdge(2, 0)
	if _, err := d.TopoSort(); !errors.Is(err, ErrCycle) {
		t.Fatalf("err = %v, want ErrCycle", err)
	}
	if d.IsAcyclic() {
		t.Fatal("IsAcyclic = true on a 3-cycle")
	}
}

func TestSelfLoopIsCycle(t *testing.T) {
	d := NewDAG(1)
	d.AddEdge(0, 0)
	if d.IsAcyclic() {
		t.Fatal("self-loop should be cyclic")
	}
	c := d.FindCycle()
	if len(c) != 1 || c[0] != 0 {
		t.Fatalf("FindCycle = %v, want [0]", c)
	}
}

func TestFindCycleNilOnDAG(t *testing.T) {
	if c := diamond().FindCycle(); c != nil {
		t.Fatalf("FindCycle = %v on acyclic graph", c)
	}
}

func TestFindCycleValid(t *testing.T) {
	d := NewDAG(6)
	d.AddEdge(0, 1)
	d.AddEdge(1, 2)
	d.AddEdge(2, 3)
	d.AddEdge(3, 1) // cycle 1->2->3->1
	d.AddEdge(3, 4)
	c := d.FindCycle()
	if len(c) == 0 {
		t.Fatal("no cycle found")
	}
	for i, u := range c {
		v := c[(i+1)%len(c)]
		if !d.HasEdge(u, v) {
			t.Fatalf("cycle %v uses missing edge %d->%d", c, u, v)
		}
	}
}

func TestReachabilityDiamond(t *testing.T) {
	r := NewReachability(diamond())
	cases := []struct {
		u, v int
		want bool
	}{
		{0, 3, true}, {0, 1, true}, {0, 2, true},
		{1, 2, false}, {2, 1, false},
		{3, 0, false}, {1, 3, true},
		{0, 0, false}, // not on a cycle
	}
	for _, c := range cases {
		if got := r.Reaches(c.u, c.v); got != c.want {
			t.Errorf("Reaches(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
	if !r.Concurrent(1, 2) {
		t.Error("1 and 2 should be concurrent")
	}
	if r.Concurrent(0, 3) {
		t.Error("0 and 3 are ordered, not concurrent")
	}
	if got := r.CountReachable(0); got != 3 {
		t.Errorf("CountReachable(0) = %d, want 3", got)
	}
}

func TestReachabilityCyclic(t *testing.T) {
	d := NewDAG(4)
	d.AddEdge(0, 1)
	d.AddEdge(1, 0)
	d.AddEdge(1, 2)
	r := NewReachability(d)
	if !r.Reaches(0, 0) || !r.Reaches(1, 1) {
		t.Error("nodes on a cycle should reach themselves")
	}
	if !r.Reaches(0, 2) {
		t.Error("0 should reach 2")
	}
	if r.Reaches(2, 0) || r.Reaches(3, 3) {
		t.Error("unexpected reachability")
	}
}

func TestReachabilityOutOfRange(t *testing.T) {
	r := NewReachability(chain(2))
	if r.Reaches(-1, 0) || r.Reaches(0, 5) {
		t.Error("out-of-range queries must be false")
	}
}

func TestTransitiveReduction(t *testing.T) {
	d := chain(4)
	d.AddEdge(0, 2) // redundant
	d.AddEdge(0, 3) // redundant
	tr, err := TransitiveReduction(d)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumEdges() != 3 {
		t.Fatalf("reduction has %d edges, want 3: %v", tr.NumEdges(), tr)
	}
	// Closure of reduction must equal closure of original.
	r1, r2 := NewReachability(d), NewReachability(tr)
	for u := 0; u < 4; u++ {
		for v := 0; v < 4; v++ {
			if r1.Reaches(u, v) != r2.Reaches(u, v) {
				t.Fatalf("closure changed at (%d,%d)", u, v)
			}
		}
	}
}

func TestTransitiveReductionCycle(t *testing.T) {
	d := NewDAG(2)
	d.AddEdge(0, 1)
	d.AddEdge(1, 0)
	if _, err := TransitiveReduction(d); !errors.Is(err, ErrCycle) {
		t.Fatalf("err = %v, want ErrCycle", err)
	}
}

func TestTransitiveClosure(t *testing.T) {
	tc := TransitiveClosure(chain(4))
	wantEdges := 3 + 2 + 1
	if tc.NumEdges() != wantEdges {
		t.Fatalf("closure has %d edges, want %d", tc.NumEdges(), wantEdges)
	}
	if !tc.HasEdge(0, 3) {
		t.Fatal("missing closure edge 0->3")
	}
}

func TestLinearExtensionsCount(t *testing.T) {
	// An antichain of n elements has n! linear extensions.
	d := NewDAG(4)
	n, err := LinearExtensions(d, func([]int) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if n != 24 {
		t.Fatalf("count = %d, want 24", n)
	}

	// A chain has exactly one.
	n, err = LinearExtensions(chain(5), func([]int) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("count = %d, want 1", n)
	}

	// The diamond has two (1 before 2, or 2 before 1).
	n, err = LinearExtensions(diamond(), func([]int) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("count = %d, want 2", n)
	}
}

func TestLinearExtensionsValid(t *testing.T) {
	d := diamond()
	_, err := LinearExtensions(d, func(order []int) bool {
		pos := make([]int, d.Len())
		for i, u := range order {
			pos[u] = i
		}
		for u := 0; u < d.Len(); u++ {
			for _, v := range d.Succ(u) {
				if pos[u] >= pos[v] {
					t.Fatalf("order %v violates edge %d->%d", order, u, v)
				}
			}
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLinearExtensionsEarlyStop(t *testing.T) {
	d := NewDAG(5)
	calls := 0
	_, err := LinearExtensions(d, func([]int) bool {
		calls++
		return calls < 3
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3 (early stop)", calls)
	}
}

func TestLinearExtensionsCycle(t *testing.T) {
	d := NewDAG(2)
	d.AddEdge(0, 1)
	d.AddEdge(1, 0)
	if _, err := LinearExtensions(d, func([]int) bool { return true }); !errors.Is(err, ErrCycle) {
		t.Fatalf("err = %v, want ErrCycle", err)
	}
}

func TestStronglyConnected(t *testing.T) {
	d := NewDAG(6)
	d.AddEdge(0, 1)
	d.AddEdge(1, 2)
	d.AddEdge(2, 0) // SCC {0,1,2}
	d.AddEdge(2, 3)
	d.AddEdge(3, 4)
	d.AddEdge(4, 3) // SCC {3,4}
	// node 5 isolated
	comps := StronglyConnected(d)
	var sizes []int
	for _, c := range comps {
		sizes = append(sizes, len(c))
	}
	sort.Ints(sizes)
	if !reflect.DeepEqual(sizes, []int{1, 2, 3}) {
		t.Fatalf("component sizes = %v, want [1 2 3]", sizes)
	}
	for _, c := range comps {
		if len(c) == 3 && !reflect.DeepEqual(c, []int{0, 1, 2}) {
			t.Fatalf("3-SCC = %v, want [0 1 2]", c)
		}
	}
}

func TestClone(t *testing.T) {
	d := diamond()
	c := d.Clone()
	c.AddEdge(3, 0)
	if !d.IsAcyclic() {
		t.Fatal("mutating clone affected original")
	}
	if c.IsAcyclic() {
		t.Fatal("clone should have become cyclic")
	}
}

func TestStringSmoke(t *testing.T) {
	if s := diamond().String(); s == "" {
		t.Fatal("empty String()")
	}
}

// randomDAG builds an acyclic graph by only adding forward edges i<j.
func randomDAG(rng *rand.Rand, n int, p float64) *DAG {
	d := NewDAG(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				d.AddEdge(i, j)
			}
		}
	}
	return d
}

func TestQuickReachabilityMatchesDFS(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(12)
		d := randomDAG(r, n, 0.3)
		re := NewReachability(d)
		// Independent check: DFS per pair.
		var dfs func(u, target int, seen []bool) bool
		dfs = func(u, target int, seen []bool) bool {
			for _, v := range d.Succ(u) {
				if v == target {
					return true
				}
				if !seen[v] {
					seen[v] = true
					if dfs(v, target, seen) {
						return true
					}
				}
			}
			return false
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				want := dfs(u, v, make([]bool, n))
				if re.Reaches(u, v) != want {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTransitiveReductionMinimal(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(9)
		d := randomDAG(r, n, 0.4)
		tr, err := TransitiveReduction(d)
		if err != nil {
			return false
		}
		full := NewReachability(d)
		// Removing any edge of the reduction must change the closure.
		for u := 0; u < n; u++ {
			for _, v := range tr.Succ(u) {
				smaller := NewDAG(n)
				for a := 0; a < n; a++ {
					for _, b := range tr.Succ(a) {
						if a == u && b == v {
							continue
						}
						smaller.AddEdge(a, b)
					}
				}
				if NewReachability(smaller).Reaches(u, v) == full.Reaches(u, v) {
					return false // edge was redundant: not minimal
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
