package vc

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLamport(t *testing.T) {
	var l Lamport
	if l.Time() != 0 {
		t.Fatal("zero value must start at 0")
	}
	if l.Tick() != 1 || l.Tick() != 2 {
		t.Fatal("Tick must increment")
	}
	if got := l.Observe(10); got != 11 {
		t.Fatalf("Observe(10) = %d, want 11", got)
	}
	if got := l.Observe(3); got != 12 {
		t.Fatalf("Observe(3) = %d, want 12 (no regression)", got)
	}
}

func TestVectorOrdering(t *testing.T) {
	a := Vector{1, 0, 2}
	b := Vector{1, 1, 2}
	c := Vector{0, 3, 0}
	if !a.Less(b) || b.Less(a) {
		t.Error("a < b expected")
	}
	if !a.Concurrent(c) || !c.Concurrent(a) {
		t.Error("a and c are concurrent")
	}
	if a.Less(a) {
		t.Error("Less must be irreflexive")
	}
	if !a.LessEq(a) {
		t.Error("LessEq must be reflexive")
	}
}

func TestVectorMergeTick(t *testing.T) {
	v := NewVector(3)
	v.Tick(1)
	v.Merge(Vector{2, 0, 5})
	want := Vector{2, 1, 5}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("v = %v, want %v", v, want)
		}
	}
	cl := v.Clone()
	cl.Tick(0)
	if v[0] == cl[0] {
		t.Error("Clone must not alias")
	}
}

func TestVectorEncodeRoundTrip(t *testing.T) {
	f := func(raw []uint64) bool {
		v := Vector(raw)
		got, err := DecodeVector(v.Encode())
		if err != nil {
			return false
		}
		if len(got) != len(v) {
			return false
		}
		for i := range v {
			if got[i] != v[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeVectorErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{0xff},    // truncated varint
		{2, 1},    // missing element
		{1, 1, 9}, // trailing bytes
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}, // absurd length
	}
	for _, b := range cases {
		if _, err := DecodeVector(b); !errors.Is(err, ErrDecode) {
			t.Errorf("DecodeVector(%v) err = %v, want ErrDecode", b, err)
		}
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(3)
	if m.N() != 3 {
		t.Fatal("N")
	}
	if got := m.Incr(1, 2); got != 1 {
		t.Fatalf("Incr = %d, want 1", got)
	}
	m.Set(0, 1, 7)
	if m.Get(0, 1) != 7 || m.Get(1, 2) != 1 || m.Get(2, 2) != 0 {
		t.Fatalf("unexpected matrix %v", m)
	}
}

func TestMatrixMergeClone(t *testing.T) {
	a := NewMatrix(2)
	a.Set(0, 1, 3)
	b := NewMatrix(2)
	b.Set(0, 1, 1)
	b.Set(1, 0, 5)
	a.Merge(b)
	if a.Get(0, 1) != 3 || a.Get(1, 0) != 5 {
		t.Fatalf("merge wrong: %v", a)
	}
	c := a.Clone()
	c.Set(0, 0, 9)
	if a.Get(0, 0) != 0 {
		t.Error("Clone aliases")
	}
	if !a.Equal(a.Clone()) || a.Equal(b) {
		t.Error("Equal broken")
	}
	if a.Equal(nil) || a.Equal(NewMatrix(3)) {
		t.Error("Equal must reject nil and size mismatch")
	}
	// Merging a mismatched matrix is a no-op.
	before := a.Clone()
	a.Merge(NewMatrix(5))
	a.Merge(nil)
	if !a.Equal(before) {
		t.Error("mismatched merge must not modify")
	}
}

func TestMatrixEncodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(5)
		m := NewMatrix(n)
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				m.Set(j, k, uint64(rng.Intn(100)))
			}
		}
		got, err := DecodeMatrix(m.Encode())
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(m) {
			t.Fatalf("round trip changed matrix: %v -> %v", m, got)
		}
	}
}

func TestDecodeMatrixErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{3, 1},    // missing entries
		{1, 1, 9}, // trailing
	}
	for _, b := range cases {
		if _, err := DecodeMatrix(b); !errors.Is(err, ErrDecode) {
			t.Errorf("DecodeMatrix(%v) err = %v, want ErrDecode", b, err)
		}
	}
}

func TestStrings(t *testing.T) {
	if (Vector{1, 2}).String() != "[1 2]" {
		t.Error("Vector.String")
	}
	m := NewMatrix(2)
	m.Set(0, 1, 3)
	if m.String() != "[0 3; 0 0]" {
		t.Errorf("Matrix.String = %q", m.String())
	}
}

// TestQuickVectorPartialOrder: Less is a strict partial order.
func TestQuickVectorPartialOrder(t *testing.T) {
	gen := func(rng *rand.Rand) Vector {
		v := NewVector(3)
		for i := range v {
			v[i] = uint64(rng.Intn(4))
		}
		return v
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := gen(rng), gen(rng), gen(rng)
		if a.Less(a) {
			return false
		}
		if a.Less(b) && b.Less(a) {
			return false
		}
		if a.Less(b) && b.Less(c) && !a.Less(c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
