// Package vc implements the logical clocks used by tagged message-ordering
// protocols: Lamport scalar clocks, vector clocks, and the n×n matrix
// clocks of Raynal, Schiper and Toueg — the machinery the paper cites as
// the witness that causal ordering needs only tagging ([20, 21]).
//
// All clocks serialize to compact byte strings with encoding/binary so
// protocols can account tag overhead in bytes.
package vc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
)

// ErrDecode reports a malformed clock encoding.
var ErrDecode = errors.New("vc: malformed clock encoding")

// Lamport is a scalar logical clock. The zero value is ready to use.
type Lamport struct {
	t uint64
}

// Time returns the current clock value.
func (l *Lamport) Time() uint64 { return l.t }

// Tick advances the clock for a local event and returns the new value.
func (l *Lamport) Tick() uint64 {
	l.t++
	return l.t
}

// Observe merges a received timestamp and ticks, per Lamport's rule.
func (l *Lamport) Observe(remote uint64) uint64 {
	if remote > l.t {
		l.t = remote
	}
	return l.Tick()
}

// Set overwrites the clock value. It exists for crash recovery: a
// restored process resumes from its snapshotted timestamp rather than
// restarting at zero (which would break the total order already agreed
// with its peers).
func (l *Lamport) Set(t uint64) { l.t = t }

// Vector is a vector clock over n processes.
type Vector []uint64

// NewVector returns a zeroed vector clock for n processes.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a copy.
func (v Vector) Clone() Vector { return append(Vector(nil), v...) }

// Tick increments the component of process i.
func (v Vector) Tick(i int) { v[i]++ }

// Merge sets v to the componentwise maximum of v and o.
func (v Vector) Merge(o Vector) {
	for i := range v {
		if i < len(o) && o[i] > v[i] {
			v[i] = o[i]
		}
	}
}

// LessEq reports v ≤ o componentwise.
func (v Vector) LessEq(o Vector) bool {
	for i := range v {
		var oi uint64
		if i < len(o) {
			oi = o[i]
		}
		if v[i] > oi {
			return false
		}
	}
	return true
}

// Less reports v ≤ o and v ≠ o (the happened-before order on vector
// timestamps).
func (v Vector) Less(o Vector) bool {
	return v.LessEq(o) && !o.LessEq(v)
}

// Concurrent reports that neither vector dominates the other.
func (v Vector) Concurrent(o Vector) bool {
	return !v.LessEq(o) && !o.LessEq(v)
}

// String renders the vector as "[1 0 2]".
func (v Vector) String() string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprint(x)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// Encode serializes the vector (length-prefixed varints).
func (v Vector) Encode() []byte {
	buf := binary.AppendUvarint(nil, uint64(len(v)))
	for _, x := range v {
		buf = binary.AppendUvarint(buf, x)
	}
	return buf
}

// DecodeVector parses an encoded vector clock.
func DecodeVector(b []byte) (Vector, error) {
	n, k := binary.Uvarint(b)
	if k <= 0 || n > 1<<20 {
		return nil, ErrDecode
	}
	b = b[k:]
	v := make(Vector, n)
	for i := range v {
		x, k := binary.Uvarint(b)
		if k <= 0 {
			return nil, ErrDecode
		}
		v[i] = x
		b = b[k:]
	}
	if len(b) != 0 {
		return nil, ErrDecode
	}
	return v, nil
}

// Matrix is an n×n matrix clock: M[j][k] is the owner's knowledge of how
// many messages process j has sent to process k.
type Matrix struct {
	n int
	m []uint64 // row-major
}

// NewMatrix returns a zeroed n×n matrix clock.
func NewMatrix(n int) *Matrix {
	return &Matrix{n: n, m: make([]uint64, n*n)}
}

// N returns the dimension.
func (mx *Matrix) N() int { return mx.n }

// Get returns M[j][k].
func (mx *Matrix) Get(j, k int) uint64 { return mx.m[j*mx.n+k] }

// Set assigns M[j][k].
func (mx *Matrix) Set(j, k int, v uint64) { mx.m[j*mx.n+k] = v }

// Incr increments M[j][k] and returns the new value.
func (mx *Matrix) Incr(j, k int) uint64 {
	mx.m[j*mx.n+k]++
	return mx.m[j*mx.n+k]
}

// Clone returns a deep copy.
func (mx *Matrix) Clone() *Matrix {
	c := NewMatrix(mx.n)
	copy(c.m, mx.m)
	return c
}

// Merge sets the matrix to the entrywise maximum with o.
func (mx *Matrix) Merge(o *Matrix) {
	if o == nil || o.n != mx.n {
		return
	}
	for i, x := range o.m {
		if x > mx.m[i] {
			mx.m[i] = x
		}
	}
}

// Equal reports entrywise equality.
func (mx *Matrix) Equal(o *Matrix) bool {
	if o == nil || o.n != mx.n {
		return false
	}
	for i := range mx.m {
		if mx.m[i] != o.m[i] {
			return false
		}
	}
	return true
}

// String renders the matrix row by row.
func (mx *Matrix) String() string {
	var b strings.Builder
	b.WriteString("[")
	for j := 0; j < mx.n; j++ {
		if j > 0 {
			b.WriteString("; ")
		}
		for k := 0; k < mx.n; k++ {
			if k > 0 {
				b.WriteString(" ")
			}
			fmt.Fprint(&b, mx.Get(j, k))
		}
	}
	b.WriteString("]")
	return b.String()
}

// Encode serializes the matrix (dimension prefix plus varints).
func (mx *Matrix) Encode() []byte {
	buf := binary.AppendUvarint(nil, uint64(mx.n))
	for _, x := range mx.m {
		buf = binary.AppendUvarint(buf, x)
	}
	return buf
}

// DecodeMatrix parses an encoded matrix clock.
func DecodeMatrix(b []byte) (*Matrix, error) {
	n64, k := binary.Uvarint(b)
	if k <= 0 || n64 > 1<<10 {
		return nil, ErrDecode
	}
	b = b[k:]
	n := int(n64)
	mx := NewMatrix(n)
	for i := range mx.m {
		x, k := binary.Uvarint(b)
		if k <= 0 {
			return nil, ErrDecode
		}
		mx.m[i] = x
		b = b[k:]
	}
	if len(b) != 0 {
		return nil, ErrDecode
	}
	return mx, nil
}
