// Package pgraph implements the predicate graph of Definition 4.2 in
// Murty & Garg: a directed multigraph with one vertex per message variable
// of a forbidden predicate and one edge per causality conjunct
// xj.p ▷ xk.q. The package provides
//
//   - simple-cycle enumeration with β-vertex analysis (Definition 4.3),
//   - a polynomial minimum-order computation over closed edge-walks via
//     0-1 breadth-first search on the line graph, and
//   - the Lemma 4 contraction that reduces any cycle to a canonical
//     two-vertex or all-β cycle while preserving its order.
//
// A vertex is a β vertex with respect to a cycle when its incoming edge
// arrives at the variable's delivery event (·▷ x.r) and its outgoing edge
// departs from the variable's send event (x.s ▷ ·). The order of a cycle
// is its number of β vertices; by Theorems 3 and 4 the minimum order over
// cycles decides the protocol class required by the specification.
package pgraph

import (
	"fmt"
	"strings"

	"msgorder/internal/predicate"
)

// Edge is one conjunct of the predicate viewed as a multigraph edge.
type Edge struct {
	ID       int // index into Graph.Edges
	From, To int // variable indices
	FromPart predicate.Part
	ToPart   predicate.Part
}

// Graph is the predicate graph. Same-variable atoms become self-loops;
// callers that follow the paper's preprocessing (see package classify)
// remove them before construction.
type Graph struct {
	vars  []string
	edges []Edge
	out   [][]int // edge IDs leaving each vertex
	in    [][]int // edge IDs entering each vertex
}

// New builds the predicate graph of p. Every atom contributes one edge.
func New(p *predicate.Predicate) *Graph {
	g := &Graph{
		vars: append([]string(nil), p.Vars...),
		out:  make([][]int, len(p.Vars)),
		in:   make([][]int, len(p.Vars)),
	}
	for _, a := range p.Atoms {
		id := len(g.edges)
		e := Edge{
			ID:       id,
			From:     a.From.Var,
			To:       a.To.Var,
			FromPart: a.From.Part,
			ToPart:   a.To.Part,
		}
		g.edges = append(g.edges, e)
		g.out[e.From] = append(g.out[e.From], id)
		g.in[e.To] = append(g.in[e.To], id)
	}
	return g
}

// NumVertices returns the number of variables.
func (g *Graph) NumVertices() int { return len(g.vars) }

// NumEdges returns the number of conjuncts.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Var returns the name of vertex v.
func (g *Graph) Var(v int) string { return g.vars[v] }

// Edges returns a copy of the edge list.
func (g *Graph) Edges() []Edge { return append([]Edge(nil), g.edges...) }

// EdgeString renders an edge as "x.s -> y.r".
func (g *Graph) EdgeString(e Edge) string {
	return fmt.Sprintf("%s.%s -> %s.%s", g.vars[e.From], e.FromPart, g.vars[e.To], e.ToPart)
}

// Cycle is a closed edge sequence: Edges[i].To == Edges[i+1].From
// (cyclically). For simple cycles vertices are distinct.
type Cycle struct {
	Edges []Edge
}

// Len returns the number of edges in the cycle.
func (c Cycle) Len() int { return len(c.Edges) }

// betaJunction reports whether the junction where edge in arrives and edge
// out departs forms a β vertex: incoming at r, outgoing at s.
func betaJunction(in, out Edge) bool {
	return in.ToPart == predicate.R && out.FromPart == predicate.S
}

// Order returns the number of β vertices of the cycle (Definition 4.3).
// A single self-loop edge x.s -> x.r counts its unique junction.
func (c Cycle) Order() int {
	n := 0
	for i, out := range c.Edges {
		in := c.Edges[(i-1+len(c.Edges))%len(c.Edges)]
		if betaJunction(in, out) {
			n++
		}
	}
	return n
}

// BetaVertices returns the vertex indices that are β with respect to the
// cycle, in cycle order.
func (c Cycle) BetaVertices() []int {
	var out []int
	for i, e := range c.Edges {
		in := c.Edges[(i-1+len(c.Edges))%len(c.Edges)]
		if betaJunction(in, e) {
			out = append(out, e.From)
		}
	}
	return out
}

// Vertices returns the vertex sequence visited by the cycle.
func (c Cycle) Vertices() []int {
	out := make([]int, len(c.Edges))
	for i, e := range c.Edges {
		out[i] = e.From
	}
	return out
}

// String renders the cycle using the graph for variable names.
func (g *Graph) CycleString(c Cycle) string {
	parts := make([]string, len(c.Edges))
	for i, e := range c.Edges {
		parts[i] = g.EdgeString(e)
	}
	return strings.Join(parts, ", ")
}

// SimpleCycles enumerates every simple cycle (distinct vertices; edges of
// a multigraph pair are distinguished) exactly once. Each cycle starts at
// its minimum vertex. The callback may return false to stop early.
//
// Enumeration cost grows exponentially with graph size; it is intended for
// the small predicates that arise in specifications (≤ ~12 variables).
// For classification use MinOrder, which is polynomial.
func (g *Graph) SimpleCycles(fn func(Cycle) bool) {
	n := len(g.vars)
	onPath := make([]bool, n)
	var path []Edge
	stopped := false

	var dfs func(start, v int)
	dfs = func(start, v int) {
		if stopped {
			return
		}
		for _, eid := range g.out[v] {
			e := g.edges[eid]
			if e.To == start {
				cyc := Cycle{Edges: append(append([]Edge(nil), path...), e)}
				if !fn(cyc) {
					stopped = true
					return
				}
				continue
			}
			// Only visit vertices greater than start so each cycle is
			// produced exactly once, anchored at its minimum vertex.
			if e.To < start || onPath[e.To] {
				continue
			}
			onPath[e.To] = true
			path = append(path, e)
			dfs(start, e.To)
			path = path[:len(path)-1]
			onPath[e.To] = false
			if stopped {
				return
			}
		}
	}
	for s := 0; s < n && !stopped; s++ {
		onPath[s] = true
		dfs(s, s)
		onPath[s] = false
	}
}

// AllCycles returns every simple cycle (see SimpleCycles).
func (g *Graph) AllCycles() []Cycle {
	var out []Cycle
	g.SimpleCycles(func(c Cycle) bool {
		out = append(out, c)
		return true
	})
	return out
}

// HasCycle reports whether the graph contains any cycle, in time linear in
// the graph size (Theorem 2's implementability test).
func (g *Graph) HasCycle() bool {
	n := len(g.vars)
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int8, n)
	var dfs func(u int) bool
	dfs = func(u int) bool {
		color[u] = gray
		for _, eid := range g.out[u] {
			v := g.edges[eid].To
			switch color[v] {
			case gray:
				return true
			case white:
				if dfs(v) {
					return true
				}
			}
		}
		color[u] = black
		return false
	}
	for u := 0; u < n; u++ {
		if color[u] == white && dfs(u) {
			return true
		}
	}
	return false
}

// MinOrder returns the minimum order over all closed edge-walks of the
// graph, together with a witness cycle attaining it, using 0-1 BFS on the
// line graph (nodes are edges; an arc joins consecutive edges and weighs 1
// exactly when the junction is a β vertex). ok is false when the graph is
// acyclic.
//
// Closed edge-walks subsume simple cycles, and the Lemma 4 contraction
// argument applies to them unchanged, so the classification derived from
// this minimum agrees with the paper's cycle-based table. MinOrder runs in
// O(E) space and O(E·A) time where A ≤ E² is the number of line-graph
// arcs.
func (g *Graph) MinOrder() (order int, witness Cycle, ok bool) {
	ne := len(g.edges)
	if ne == 0 || !g.HasCycle() {
		return 0, Cycle{}, false
	}
	best := -1
	var bestCycle Cycle
	dist := make([]int, ne)
	prev := make([]int, ne)
	for start := 0; start < ne; start++ {
		// Shortest walk weight from the end of `start` back around to
		// `start` itself.
		for i := range dist {
			dist[i] = -1
			prev[i] = -1
		}
		// Deque for 0-1 BFS over line-graph nodes (= edges).
		var deque []int
		pushFront := func(x int) { deque = append([]int{x}, deque...) }
		pushBack := func(x int) { deque = append(deque, x) }

		// Initialize with the successors of start.
		for _, eid := range g.out[g.edges[start].To] {
			w := 0
			if betaJunction(g.edges[start], g.edges[eid]) {
				w = 1
			}
			if eid == start {
				// Immediate closure: self-loop walk of length 1.
				if best == -1 || w < best {
					best = w
					bestCycle = Cycle{Edges: []Edge{g.edges[start]}}
				}
				continue
			}
			if dist[eid] == -1 || w < dist[eid] {
				dist[eid] = w
				prev[eid] = -1 // direct successor of start
				if w == 0 {
					pushFront(eid)
				} else {
					pushBack(eid)
				}
			}
		}
		visited := make([]bool, ne)
		for len(deque) > 0 {
			u := deque[0]
			deque = deque[1:]
			if visited[u] {
				continue
			}
			visited[u] = true
			for _, vid := range g.out[g.edges[u].To] {
				w := 0
				if betaJunction(g.edges[u], g.edges[vid]) {
					w = 1
				}
				if vid == start {
					// Closing junction weight: start's own junction.
					closing := 0
					if betaJunction(g.edges[u], g.edges[start]) {
						closing = 1
					}
					total := dist[u] + closing
					if best == -1 || total < best {
						best = total
						bestCycle = g.walkFrom(start, u, prev)
					}
					continue
				}
				nd := dist[u] + w
				if dist[vid] == -1 || nd < dist[vid] {
					dist[vid] = nd
					prev[vid] = u
					if w == 0 {
						pushFront(vid)
					} else {
						pushBack(vid)
					}
				}
			}
		}
	}
	if best == -1 {
		return 0, Cycle{}, false
	}
	return best, bestCycle, true
}

// walkFrom reconstructs the closed walk start -> ... -> last -> start.
func (g *Graph) walkFrom(start, last int, prev []int) Cycle {
	var rev []Edge
	for e := last; e != -1; e = prev[e] {
		rev = append(rev, g.edges[e])
	}
	edges := []Edge{g.edges[start]}
	for i := len(rev) - 1; i >= 0; i-- {
		edges = append(edges, rev[i])
	}
	return Cycle{Edges: edges}
}

// MinOrderExhaustive computes the minimum order over simple cycles by
// enumeration, with a witness. It exists as the exact reference
// implementation for MinOrder; the two agree on every predicate whose
// minimum is attained by a simple cycle (in particular the full catalog —
// see the cross-check tests and BenchmarkCycleEnum).
func (g *Graph) MinOrderExhaustive() (order int, witness Cycle, ok bool) {
	best := -1
	var bestCycle Cycle
	g.SimpleCycles(func(c Cycle) bool {
		if o := c.Order(); best == -1 || o < best {
			best = o
			bestCycle = c
		}
		return best != 0 // an order-0 cycle cannot be beaten
	})
	if best == -1 {
		return 0, Cycle{}, false
	}
	return best, bestCycle, true
}

// DOT renders the graph in Graphviz DOT syntax, labeling each edge with
// its parts.
func (g *Graph) DOT() string {
	var b strings.Builder
	b.WriteString("digraph predicate {\n")
	for _, v := range g.vars {
		fmt.Fprintf(&b, "  %q;\n", v)
	}
	for _, e := range g.edges {
		fmt.Fprintf(&b, "  %q -> %q [label=\"%s->%s\"];\n",
			g.vars[e.From], g.vars[e.To], e.FromPart, e.ToPart)
	}
	b.WriteString("}\n")
	return b.String()
}
