package pgraph

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"msgorder/internal/predicate"
)

func causalB2() *predicate.Predicate {
	return predicate.MustParse("x, y : x.s -> y.s && y.r -> x.r")
}

// example1 is the predicate of Example 1 / Figure 6 in the paper, with the
// edge set E = {(x1,x2),(x2,x3),(x3,x4),(x4,x1),(x4,x5),(x1,x4)}.
func example1() *predicate.Predicate {
	return predicate.MustParse(`forbidden x1, x2, x3, x4, x5 :
		x1.r -> x2.s && x2.s -> x3.s && x3.r -> x4.r &&
		x4.s -> x1.s && x4.s -> x5.r && x1.s -> x4.r`)
}

func crown(k int) *predicate.Predicate {
	b := predicate.NewBuilder(vars(k)...)
	for i := 0; i < k; i++ {
		b.Atom(varName(i), predicate.S, varName((i+1)%k), predicate.R)
	}
	return b.MustBuild()
}

func vars(k int) []string {
	out := make([]string, k)
	for i := range out {
		out[i] = varName(i)
	}
	return out
}

func varName(i int) string { return "x" + string(rune('1'+i)) }

func TestGraphShape(t *testing.T) {
	g := New(causalB2())
	if g.NumVertices() != 2 || g.NumEdges() != 2 {
		t.Fatalf("shape = (%d,%d), want (2,2)", g.NumVertices(), g.NumEdges())
	}
	if g.Var(0) != "x" || g.Var(1) != "y" {
		t.Fatalf("vars = %q, %q", g.Var(0), g.Var(1))
	}
	es := g.Edges()
	if es[0].From != 0 || es[0].To != 1 || es[0].FromPart != predicate.S {
		t.Fatalf("edge0 = %+v", es[0])
	}
	if got := g.EdgeString(es[1]); got != "y.r -> x.r" {
		t.Fatalf("EdgeString = %q", got)
	}
}

func TestCausalCycleOrderOne(t *testing.T) {
	g := New(causalB2())
	cycles := g.AllCycles()
	if len(cycles) != 1 {
		t.Fatalf("cycles = %d, want 1", len(cycles))
	}
	c := cycles[0]
	if c.Order() != 1 {
		t.Fatalf("order = %d, want 1", c.Order())
	}
	// The β vertex is x (incoming y.r -> x.r, outgoing x.s -> y.s).
	bv := c.BetaVertices()
	if len(bv) != 1 || g.Var(bv[0]) != "x" {
		t.Fatalf("β vertices = %v", bv)
	}
}

func TestLemma3CausalVariantsOrderOne(t *testing.T) {
	for _, src := range []string{
		"x, y : x.s -> y.r && y.r -> x.r", // B1
		"x, y : x.s -> y.s && y.r -> x.r", // B2
		"x, y : x.s -> y.s && y.s -> x.r", // B3
	} {
		g := New(predicate.MustParse(src))
		got, _, ok := g.MinOrder()
		if !ok || got != 1 {
			t.Errorf("%s: MinOrder = %d (ok=%v), want 1", src, got, ok)
		}
	}
}

func TestLemma3AsyncVariantsOrderZero(t *testing.T) {
	for _, src := range []string{
		"x, y : x.s -> y.s && y.s -> x.s",
		"x, y : x.s -> y.s && y.r -> x.s",
		"x, y : x.r -> y.s && y.s -> x.r",
		"x, y : x.r -> y.r && y.r -> x.s",
		"x, y : x.r -> y.r && y.r -> x.r",
	} {
		g := New(predicate.MustParse(src))
		got, _, ok := g.MinOrder()
		if !ok || got != 0 {
			t.Errorf("%s: MinOrder = %d (ok=%v), want 0", src, got, ok)
		}
	}
}

func TestCrownOrders(t *testing.T) {
	for k := 2; k <= 6; k++ {
		g := New(crown(k))
		got, w, ok := g.MinOrder()
		if !ok || got != k {
			t.Errorf("crown(%d): MinOrder = %d (ok=%v), want %d", k, got, ok, k)
		}
		if w.Len() != k {
			t.Errorf("crown(%d): witness length %d, want %d", k, w.Len(), k)
		}
		if len(w.BetaVertices()) != k {
			t.Errorf("crown(%d): all vertices must be β", k)
		}
	}
}

func TestAcyclicPredicateNoCycle(t *testing.T) {
	// "receive the second message before the first": both edges x -> y.
	g := New(predicate.MustParse("x, y : x.s -> y.s && x.r -> y.r"))
	if g.HasCycle() {
		t.Fatal("graph should be acyclic")
	}
	if _, _, ok := g.MinOrder(); ok {
		t.Fatal("MinOrder should report no cycle")
	}
	if _, _, ok := g.MinOrderExhaustive(); ok {
		t.Fatal("MinOrderExhaustive should report no cycle")
	}
	if cycles := g.AllCycles(); len(cycles) != 0 {
		t.Fatalf("AllCycles = %d, want 0", len(cycles))
	}
}

// TestExample1Graph checks the Example 1 edge set.
func TestExample1Graph(t *testing.T) {
	g := New(example1())
	if g.NumVertices() != 5 || g.NumEdges() != 6 {
		t.Fatalf("shape = (%d,%d), want (5,6)", g.NumVertices(), g.NumEdges())
	}
	want := map[string]bool{
		"x1->x2": true, "x2->x3": true, "x3->x4": true,
		"x4->x1": true, "x4->x5": true, "x1->x4": true,
	}
	for _, e := range g.Edges() {
		key := g.Var(e.From) + "->" + g.Var(e.To)
		if !want[key] {
			t.Errorf("unexpected edge %s", key)
		}
		delete(want, key)
	}
	if len(want) != 0 {
		t.Errorf("missing edges: %v", want)
	}
}

// TestExample2Cycle verifies the 4-vertex cycle of Example 2 has order 1
// with β vertex x4 (Example 3).
func TestExample2Cycle(t *testing.T) {
	g := New(example1())
	var found bool
	g.SimpleCycles(func(c Cycle) bool {
		if c.Len() != 4 {
			return true
		}
		found = true
		if c.Order() != 1 {
			t.Errorf("4-cycle order = %d, want 1", c.Order())
		}
		bv := c.BetaVertices()
		if len(bv) != 1 || g.Var(bv[0]) != "x4" {
			t.Errorf("β vertices = %v, want [x4]", bv)
		}
		return true
	})
	if !found {
		t.Fatal("4-vertex cycle of Example 2 not found")
	}
}

func TestExample1MinOrder(t *testing.T) {
	g := New(example1())
	got, _, ok := g.MinOrder()
	if !ok || got != 1 {
		t.Fatalf("MinOrder = %d (ok=%v), want 1", got, ok)
	}
	exGot, _, exOK := g.MinOrderExhaustive()
	if !exOK || exGot != got {
		t.Fatalf("exhaustive = %d (ok=%v), fast = %d", exGot, exOK, got)
	}
}

func TestSimpleCyclesDistinct(t *testing.T) {
	g := New(example1())
	seen := map[string]bool{}
	g.SimpleCycles(func(c Cycle) bool {
		key := g.CycleString(c)
		if seen[key] {
			t.Errorf("cycle produced twice: %s", key)
		}
		seen[key] = true
		// Validate adjacency.
		for i, e := range c.Edges {
			next := c.Edges[(i+1)%len(c.Edges)]
			if e.To != next.From {
				t.Errorf("broken cycle %s", key)
			}
		}
		return true
	})
	// Cycles of example1: [x1,x2,x3,x4] and [x1,x4] (one pair of
	// antiparallel edges).
	if len(seen) != 2 {
		t.Errorf("found %d cycles, want 2: %v", len(seen), seen)
	}
}

func TestSimpleCyclesEarlyStop(t *testing.T) {
	g := New(example1())
	calls := 0
	g.SimpleCycles(func(Cycle) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}

func TestMultigraphParallelEdges(t *testing.T) {
	// Two parallel edges x->y plus one y->x: two distinct cycles.
	p := predicate.MustParse("x, y : x.s -> y.s && x.s -> y.r && y.r -> x.r")
	g := New(p)
	if got := len(g.AllCycles()); got != 2 {
		t.Fatalf("cycles = %d, want 2", got)
	}
	got, _, ok := g.MinOrder()
	if !ok || got != 1 {
		t.Fatalf("MinOrder = %d, want 1", got)
	}
}

func TestSelfLoopCycle(t *testing.T) {
	// x.s -> x.r as an edge is a self-loop; its junction is β.
	p := &predicate.Predicate{
		Vars: []string{"x"},
		Atoms: []predicate.Atom{{
			From: predicate.EventRef{Var: 0, Part: predicate.S},
			To:   predicate.EventRef{Var: 0, Part: predicate.R},
		}},
	}
	g := New(p)
	if !g.HasCycle() {
		t.Fatal("self-loop must count as a cycle")
	}
	got, w, ok := g.MinOrder()
	if !ok || got != 1 || w.Len() != 1 {
		t.Fatalf("MinOrder = %d len %d (ok=%v)", got, w.Len(), ok)
	}
}

func TestFIFOGuardsIgnoredByGraph(t *testing.T) {
	p := predicate.MustParse(`x, y :
		process(x.s) == process(y.s) && process(x.r) == process(y.r) :
		x.s -> y.s && y.r -> x.r`)
	g := New(p)
	got, _, ok := g.MinOrder()
	if !ok || got != 1 {
		t.Fatalf("FIFO MinOrder = %d (ok=%v), want 1", got, ok)
	}
}

func TestKWeakerOrderOne(t *testing.T) {
	// k=1: s1 -> s2, s2 -> s3, r3 -> r1.
	p := predicate.MustParse("x1, x2, x3 : x1.s -> x2.s && x2.s -> x3.s && x3.r -> x1.r")
	g := New(p)
	got, _, ok := g.MinOrder()
	if !ok || got != 1 {
		t.Fatalf("MinOrder = %d (ok=%v), want 1", got, ok)
	}
}

func TestContractCausalAlreadyCanonical(t *testing.T) {
	g := New(causalB2())
	c := g.AllCycles()[0]
	res := Contract(c)
	if res.Unsat {
		t.Fatal("causal predicate is satisfiable")
	}
	if got := res.Canonical(); got.Len() != 2 || got.Order() != 1 {
		t.Fatalf("canonical = len %d order %d", got.Len(), got.Order())
	}
	if !IsCanonical(res.Canonical()) {
		t.Fatal("result not canonical")
	}
}

func TestContractExample2PreservesOrder(t *testing.T) {
	g := New(example1())
	g.SimpleCycles(func(c Cycle) bool {
		if c.Len() != 4 {
			return true
		}
		res := Contract(c)
		if res.Unsat {
			t.Fatal("cycle contraction reported unsat")
		}
		canon := res.Canonical()
		if !IsCanonical(canon) {
			t.Fatalf("not canonical: %v", canon)
		}
		if canon.Order() != c.Order() {
			t.Fatalf("order changed: %d -> %d", c.Order(), canon.Order())
		}
		if canon.Len() != 2 {
			t.Fatalf("canonical length = %d, want 2", canon.Len())
		}
		return true
	})
}

func TestContractCrownStaysPut(t *testing.T) {
	g := New(crown(4))
	cycles := g.AllCycles()
	if len(cycles) != 1 {
		t.Fatalf("crown cycles = %d", len(cycles))
	}
	res := Contract(cycles[0])
	if res.Canonical().Len() != 4 || res.Canonical().Order() != 4 {
		t.Fatalf("crown should be canonical already: %+v", res.Canonical())
	}
}

func TestContractLongOrderZero(t *testing.T) {
	// A long cycle with no β vertex contracts to 2 edges of order 0.
	p := predicate.MustParse("a, b, c : a.s -> b.s && b.s -> c.s && c.s -> a.s")
	g := New(p)
	res := Contract(g.AllCycles()[0])
	if res.Unsat {
		t.Fatal("unexpected unsat: contraction stops at 2 edges")
	}
	canon := res.Canonical()
	if canon.Len() != 2 || canon.Order() != 0 {
		t.Fatalf("canonical = len %d order %d, want 2/0", canon.Len(), canon.Order())
	}
}

func TestDOT(t *testing.T) {
	dot := New(causalB2()).DOT()
	for _, want := range []string{"digraph", `"x" -> "y"`, "s->s"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

// randomPredicate builds a predicate with nv variables and na atoms with
// distinct endpoint variables.
func randomPredicate(rng *rand.Rand, nv, na int) *predicate.Predicate {
	p := &predicate.Predicate{Vars: vars(nv)}
	parts := []predicate.Part{predicate.S, predicate.R}
	for i := 0; i < na; i++ {
		a := rng.Intn(nv)
		b := rng.Intn(nv)
		for b == a {
			b = rng.Intn(nv)
		}
		p.Atoms = append(p.Atoms, predicate.Atom{
			From: predicate.EventRef{Var: a, Part: parts[rng.Intn(2)]},
			To:   predicate.EventRef{Var: b, Part: parts[rng.Intn(2)]},
		})
	}
	return p
}

// TestQuickMinOrderLowerBoundsExhaustive: the walk-based minimum can never
// exceed the simple-cycle minimum (walks subsume cycles), and both agree
// on cycle existence.
func TestQuickMinOrderLowerBoundsExhaustive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomPredicate(rng, 2+rng.Intn(4), 1+rng.Intn(7))
		g := New(p)
		fast, _, fok := g.MinOrder()
		ex, _, eok := g.MinOrderExhaustive()
		if fok != eok {
			return false
		}
		if !fok {
			return true
		}
		return fast <= ex
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMinOrderWitnessConsistent: the witness walk must be a closed
// walk whose order equals the reported minimum.
func TestQuickMinOrderWitnessConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomPredicate(rng, 2+rng.Intn(4), 1+rng.Intn(7))
		g := New(p)
		min, w, ok := g.MinOrder()
		if !ok {
			return true
		}
		for i, e := range w.Edges {
			if e.To != w.Edges[(i+1)%len(w.Edges)].From {
				return false
			}
		}
		return w.Order() == min
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickContractPreservesOrder: for simple cycles, the Lemma 4
// contraction preserves order unless it detects unsatisfiability.
func TestQuickContractPreservesOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomPredicate(rng, 2+rng.Intn(4), 2+rng.Intn(6))
		g := New(p)
		ok := true
		g.SimpleCycles(func(c Cycle) bool {
			res := Contract(c)
			if res.Unsat {
				return true // degenerate composition; nothing to check
			}
			canon := res.Canonical()
			if !IsCanonical(canon) || canon.Order() != c.Order() {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
