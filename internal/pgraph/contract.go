package pgraph

import "msgorder/internal/predicate"

// ContractResult records the Lemma 4 reduction of a cycle: the successive
// weaker predicates' cycles, ending in a canonical cycle that is either
// two edges long or consists solely of β vertices. Every step preserves
// the order of the cycle, so the canonical cycle classifies the original
// predicate.
//
// If the contraction ever produces an impossible same-variable atom
// (x.r ▷ x.s or x.p ▷ x.p), the original predicate is unsatisfiable and
// Unsat is set; the specification then equals X_async.
type ContractResult struct {
	Steps []Cycle // Steps[0] is the input; the last entry is canonical
	Unsat bool
}

// Canonical returns the final cycle of the contraction.
func (r ContractResult) Canonical() Cycle { return r.Steps[len(r.Steps)-1] }

// Contract applies the Lemma 4 reduction to a cycle (or closed edge-walk).
// Non-β junctions are composed through transitivity — an incoming
// x.p ▷ y.s with outgoing y.s ▷ z.q (or any junction that is not
// "arrive at r, depart at s") yields x.p ▷ z.q — until the cycle has two
// edges or every junction is β. Synthesized edges carry ID -1.
func Contract(c Cycle) ContractResult {
	res := ContractResult{Steps: []Cycle{c}}
	cur := append([]Edge(nil), c.Edges...)
	for len(cur) > 2 {
		// Find a non-β junction: between cur[i] and cur[(i+1)%n].
		n := len(cur)
		j := -1
		for i := 0; i < n; i++ {
			if !betaJunction(cur[i], cur[(i+1)%n]) {
				j = i
				break
			}
		}
		if j == -1 {
			break // all β: canonical crown
		}
		in, out := cur[j], cur[(j+1)%n]
		merged := Edge{
			ID:       -1,
			From:     in.From,
			FromPart: in.FromPart,
			To:       out.To,
			ToPart:   out.ToPart,
		}
		next := make([]Edge, 0, n-1)
		for i := 0; i < n; i++ {
			if i == j {
				next = append(next, merged)
				continue
			}
			if i == (j+1)%n {
				continue
			}
			next = append(next, cur[i])
		}
		// Rotate so the sequence remains a closed walk in order. (The
		// construction above preserves cyclic adjacency already: merged
		// replaces the pair in place.)
		cur = next
		// A merged same-variable atom is either trivially true
		// (x.s ▷ x.r — drop it and fuse its neighbours' junction) or
		// impossible (unsatisfiable predicate).
		cur, res.Unsat = simplifySelfAtoms(cur)
		res.Steps = append(res.Steps, Cycle{Edges: append([]Edge(nil), cur...)})
		if res.Unsat || len(cur) == 0 {
			break
		}
	}
	return res
}

// simplifySelfAtoms removes trivially-true self atoms (x.s ▷ x.r) and
// reports unsatisfiability on impossible ones.
func simplifySelfAtoms(edges []Edge) ([]Edge, bool) {
	out := edges[:0]
	for _, e := range edges {
		if e.From != e.To {
			out = append(out, e)
			continue
		}
		if e.FromPart == predicate.S && e.ToPart == predicate.R {
			continue // trivially true conjunct: drop
		}
		return edges, true // impossible conjunct: predicate unsatisfiable
	}
	return out, false
}

// IsCanonical reports whether a cycle satisfies Lemma 4's stopping
// condition: it has at most two edges, or every junction is β.
func IsCanonical(c Cycle) bool {
	if len(c.Edges) <= 2 {
		return true
	}
	return c.Order() == len(c.Edges)
}
