package fifo

import (
	"encoding/binary"
	"reflect"
	"testing"

	"msgorder/internal/event"
	"msgorder/internal/protocol"
	"msgorder/internal/protocols/ptest"
)

func newProc(t *testing.T, id event.ProcID, n int) (*Process, *ptest.Env) {
	t.Helper()
	env := ptest.NewEnv(id, n)
	p, ok := Maker().(*Process)
	if !ok {
		t.Fatal("Maker did not return *Process")
	}
	p.Init(env)
	return p, env
}

func userWire(from event.ProcID, id event.MsgID, seq uint64) protocol.Wire {
	return protocol.Wire{
		From: from,
		Kind: protocol.UserWire,
		Msg:  id,
		Tag:  binary.AppendUvarint(nil, seq),
	}
}

func TestDescribe(t *testing.T) {
	p, _ := newProc(t, 0, 2)
	d := p.Describe()
	if d.Class != protocol.Tagged || d.Name != "fifo" {
		t.Fatalf("descriptor = %+v", d)
	}
}

func TestSendsTagSequences(t *testing.T) {
	p, env := newProc(t, 0, 2)
	p.OnInvoke(event.Message{ID: 0, From: 0, To: 1})
	p.OnInvoke(event.Message{ID: 1, From: 0, To: 1})
	p.OnInvoke(event.Message{ID: 2, From: 0, To: 0}) // different channel
	wires := env.TakeSent()
	if len(wires) != 3 {
		t.Fatalf("sent %d wires", len(wires))
	}
	seq := func(w protocol.Wire) uint64 {
		s, _ := binary.Uvarint(w.Tag)
		return s
	}
	if seq(wires[0]) != 0 || seq(wires[1]) != 1 {
		t.Error("sequences must increment per channel")
	}
	if seq(wires[2]) != 0 {
		t.Error("sequences are per destination")
	}
}

func TestInOrderDelivery(t *testing.T) {
	p, env := newProc(t, 1, 2)
	p.OnReceive(userWire(0, 10, 0))
	p.OnReceive(userWire(0, 11, 1))
	if !reflect.DeepEqual(env.DeliveredSeq(), []int{10, 11}) {
		t.Fatalf("delivered = %v", env.DeliveredSeq())
	}
}

func TestOutOfOrderBuffered(t *testing.T) {
	p, env := newProc(t, 1, 2)
	p.OnReceive(userWire(0, 11, 1))
	if len(env.Delivered) != 0 {
		t.Fatal("seq 1 must wait for seq 0")
	}
	p.OnReceive(userWire(0, 12, 2))
	if len(env.Delivered) != 0 {
		t.Fatal("seq 2 must also wait")
	}
	p.OnReceive(userWire(0, 10, 0))
	if !reflect.DeepEqual(env.DeliveredSeq(), []int{10, 11, 12}) {
		t.Fatalf("delivered = %v, want drain in order", env.DeliveredSeq())
	}
}

func TestPerSourceIndependence(t *testing.T) {
	p, env := newProc(t, 2, 3)
	p.OnReceive(userWire(0, 20, 1)) // held: from P0
	p.OnReceive(userWire(1, 30, 0)) // from P1, in order
	if !reflect.DeepEqual(env.DeliveredSeq(), []int{30}) {
		t.Fatalf("delivered = %v", env.DeliveredSeq())
	}
	p.OnReceive(userWire(0, 21, 0))
	if !reflect.DeepEqual(env.DeliveredSeq(), []int{30, 21, 20}) {
		t.Fatalf("delivered = %v", env.DeliveredSeq())
	}
}

func TestControlWireIgnored(t *testing.T) {
	p, env := newProc(t, 1, 2)
	p.OnReceive(protocol.Wire{From: 0, Kind: protocol.ControlWire})
	if len(env.Delivered) != 0 || len(env.Sent) != 0 {
		t.Fatal("control wires must be ignored")
	}
}

func TestMalformedTagDropped(t *testing.T) {
	p, env := newProc(t, 1, 2)
	p.OnReceive(protocol.Wire{From: 0, Kind: protocol.UserWire, Msg: 5, Tag: nil})
	if len(env.Delivered) != 0 {
		t.Fatal("malformed tag must not deliver")
	}
}
