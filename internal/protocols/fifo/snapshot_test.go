package fifo

import (
	"reflect"
	"testing"

	"msgorder/internal/event"
	"msgorder/internal/protocols/ptest"
)

// TestSnapshotMidStream crashes a receiver holding an out-of-order
// message: the restored clone must finish the run exactly like the
// original would have.
func TestSnapshotMidStream(t *testing.T) {
	sender := Maker()
	senv := ptest.NewEnv(0, 2)
	sender.Init(senv)
	for id := 0; id < 3; id++ {
		sender.OnInvoke(event.Message{ID: event.MsgID(id), From: 0, To: 1})
	}
	wires := senv.TakeSent()

	recv := Maker()
	renv := ptest.NewEnv(1, 2)
	recv.Init(renv)
	recv.OnReceive(wires[2]) // out of order: held
	if len(renv.Delivered) != 0 {
		t.Fatalf("delivered %v before the gap filled", renv.DeliveredSeq())
	}

	clone := Maker()
	cenv := ptest.NewEnv(1, 2)
	clone.Init(cenv)
	ptest.RestoreClone(t, recv, clone)

	clone.OnReceive(wires[0])
	clone.OnReceive(wires[1])
	if got := cenv.DeliveredSeq(); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("restored clone delivered %v, want [0 1 2]", got)
	}

	// Sender-side state survives too: the clone of the sender continues
	// the sequence instead of restarting at 0.
	sclone := Maker()
	scenv := ptest.NewEnv(0, 2)
	sclone.Init(scenv)
	ptest.RestoreClone(t, sender, sclone)
	sclone.OnInvoke(event.Message{ID: 3, From: 0, To: 1})
	w, _ := scenv.LastSent()
	recvB := Maker()
	renvB := ptest.NewEnv(1, 2)
	recvB.Init(renvB)
	for _, x := range append(wires, w) {
		recvB.OnReceive(x)
	}
	if got := renvB.DeliveredSeq(); !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Fatalf("post-restore send broke sequencing: delivered %v", got)
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	p := Maker()
	p.Init(ptest.NewEnv(0, 2))
	if err := p.(interface{ Restore([]byte) error }).Restore([]byte{0xFF, 0x01, 0x02}); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
}
