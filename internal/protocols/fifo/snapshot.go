package fifo

import (
	"sort"

	"msgorder/internal/event"
	"msgorder/internal/protocol"
	"msgorder/internal/snapio"
)

var _ protocol.Snapshotter = (*Process)(nil)

// Snapshot encodes the per-channel sequencing state deterministically
// (map keys are sorted; held buffers are keyed, so order is not state).
func (p *Process) Snapshot() []byte {
	var w snapio.Writer
	writeSeqMap(&w, p.nextSend)
	writeSeqMap(&w, p.nextDeliver)
	w.Int(len(p.held))
	for _, src := range sortedProcs(p.held) {
		hm := p.held[src]
		w.Int(int(src))
		w.Int(len(hm))
		seqs := make([]uint64, 0, len(hm))
		for seq := range hm {
			seqs = append(seqs, seq)
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		for _, seq := range seqs {
			w.U64(seq)
			w.Int(int(hm[seq]))
		}
	}
	return w.Out()
}

// Restore rebuilds the state onto a freshly Init'd instance.
func (p *Process) Restore(b []byte) error {
	r := snapio.NewReader(b)
	nextSend := readSeqMap(r)
	nextDeliver := readSeqMap(r)
	held := make(map[event.ProcID]map[uint64]event.MsgID)
	for i, n := 0, r.Int(); i < n; i++ {
		src := event.ProcID(r.Int())
		hm := make(map[uint64]event.MsgID)
		for j, k := 0, r.Int(); j < k; j++ {
			seq := r.U64()
			hm[seq] = event.MsgID(r.Int())
		}
		held[src] = hm
	}
	if err := r.Close(); err != nil {
		return err
	}
	p.nextSend, p.nextDeliver, p.held = nextSend, nextDeliver, held
	return nil
}

// writeSeqMap encodes a proc→sequence map in ascending key order.
func writeSeqMap(w *snapio.Writer, m map[event.ProcID]uint64) {
	w.Int(len(m))
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, int(k))
	}
	sort.Ints(keys)
	for _, k := range keys {
		w.Int(k)
		w.U64(m[event.ProcID(k)])
	}
}

func readSeqMap(r *snapio.Reader) map[event.ProcID]uint64 {
	m := make(map[event.ProcID]uint64)
	for i, n := 0, r.Int(); i < n; i++ {
		k := event.ProcID(r.Int())
		m[k] = r.U64()
	}
	return m
}

// sortedProcs returns m's keys in ascending order.
func sortedProcs[V any](m map[event.ProcID]V) []event.ProcID {
	keys := make([]event.ProcID, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
