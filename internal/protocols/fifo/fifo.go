// Package fifo implements FIFO channel ordering with per-channel sequence
// numbers — the classic tagged protocol for the specification
//
//	forbidden x, y : process(x.s) == process(y.s) &&
//	                 process(x.r) == process(y.r) :
//	                 x.s -> y.s && y.r -> x.r
//
// Each user wire carries an 8-byte-max varint sequence number for its
// (sender, receiver) channel; the receiver buffers out-of-order arrivals
// and delivers in sequence.
package fifo

import (
	"encoding/binary"

	"msgorder/internal/event"
	"msgorder/internal/protocol"
)

// Process is one FIFO protocol instance.
type Process struct {
	env protocol.Env
	// nextSend[dst] is the sequence number for the next message to dst.
	nextSend map[event.ProcID]uint64
	// nextDeliver[src] is the sequence expected next from src.
	nextDeliver map[event.ProcID]uint64
	// held buffers out-of-order messages: held[src][seq] = message id.
	held map[event.ProcID]map[uint64]event.MsgID
}

var (
	_ protocol.Process   = (*Process)(nil)
	_ protocol.Describer = (*Process)(nil)
)

// Maker builds FIFO protocol instances.
func Maker() protocol.Process { return &Process{} }

// Describe declares the tagged capability class.
func (p *Process) Describe() protocol.Descriptor {
	return protocol.Descriptor{Name: "fifo", Class: protocol.Tagged}
}

// Init prepares per-channel state.
func (p *Process) Init(env protocol.Env) {
	p.env = env
	p.nextSend = make(map[event.ProcID]uint64)
	p.nextDeliver = make(map[event.ProcID]uint64)
	p.held = make(map[event.ProcID]map[uint64]event.MsgID)
}

// OnInvoke stamps the channel sequence number and sends immediately.
func (p *Process) OnInvoke(m event.Message) {
	seq := p.nextSend[m.To]
	p.nextSend[m.To] = seq + 1
	p.env.Send(protocol.Wire{
		To:    m.To,
		Kind:  protocol.UserWire,
		Msg:   m.ID,
		Color: m.Color,
		Tag:   binary.AppendUvarint(nil, seq),
	})
}

// OnReceive delivers in-sequence messages and buffers the rest.
func (p *Process) OnReceive(w protocol.Wire) {
	if w.Kind != protocol.UserWire {
		return
	}
	seq, n := binary.Uvarint(w.Tag)
	if n <= 0 {
		return // malformed tag: drop (the simulator's liveness check flags it)
	}
	src := w.From
	if seq != p.nextDeliver[src] {
		hm := p.held[src]
		if hm == nil {
			hm = make(map[uint64]event.MsgID)
			p.held[src] = hm
		}
		hm[seq] = w.Msg
		return
	}
	// Commit sequencing state before delivering (Deliver may reenter).
	p.nextDeliver[src] = seq + 1
	p.env.Deliver(w.Msg)
	// Drain any buffered successors.
	for {
		next := p.nextDeliver[src]
		id, ok := p.held[src][next]
		if !ok {
			return
		}
		delete(p.held[src], next)
		p.nextDeliver[src] = next + 1
		p.env.Deliver(id)
	}
}
