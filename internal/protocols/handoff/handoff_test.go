package handoff

import (
	"testing"

	"msgorder/internal/event"
	"msgorder/internal/protocol"
	"msgorder/internal/protocols/ptest"
)

func TestDescribe(t *testing.T) {
	p := Maker().(*Process)
	p.Init(ptest.NewEnv(0, 3))
	if d := p.Describe(); d.Class != protocol.General || d.Name != "handoff-freeze" {
		t.Fatalf("descriptor = %+v", d)
	}
}

// TestOrdinaryMessagesAreTaglessCheap checks non-red traffic outside a
// handoff window sends immediately with no tag and no control wires.
func TestOrdinaryMessagesAreTaglessCheap(t *testing.T) {
	env := ptest.NewEnv(1, 3)
	p := Maker().(*Process)
	p.Init(env)
	p.OnInvoke(event.Message{ID: 0, From: 1, To: 2})
	sent := env.TakeSent()
	if len(sent) != 1 || sent[0].Kind != protocol.UserWire || len(sent[0].Tag) != 0 {
		t.Fatalf("ordinary invoke sent %+v, want one bare user wire", sent)
	}
	p.OnReceive(protocol.Wire{From: 0, To: 1, Kind: protocol.UserWire, Msg: 9})
	if got := env.DeliveredSeq(); len(got) != 1 || got[0] != 9 {
		t.Fatalf("delivered %v, want [9]", got)
	}
	if len(env.TakeSent()) != 0 {
		t.Fatal("ordinary receive sent wires")
	}
}

// TestFreezeHoldsOrdinarySends checks a FREEZE parks invokes until the
// THAW and replies with the send-count vector.
func TestFreezeHoldsOrdinarySends(t *testing.T) {
	env := ptest.NewEnv(1, 3)
	p := Maker().(*Process)
	p.Init(env)
	p.OnInvoke(event.Message{ID: 0, From: 1, To: 2}) // sent[2] = 1
	env.TakeSent()

	p.OnReceive(protocol.Wire{From: 2, To: 1, Kind: protocol.ControlWire, Ctrl: ctrlFreeze,
		Tag: []byte{5}})
	frozen := env.TakeSent()
	if len(frozen) != 1 || frozen[0].Ctrl != ctrlFrozen || frozen[0].To != 2 {
		t.Fatalf("freeze reply = %+v, want one FROZEN to P2", frozen)
	}
	id, vec, ok := decodeFrozen(frozen[0].Tag, 3)
	if !ok || id != 5 || vec[0] != 0 || vec[1] != 0 || vec[2] != 1 {
		t.Fatalf("FROZEN payload id=%d vec=%v ok=%v", id, vec, ok)
	}

	p.OnInvoke(event.Message{ID: 1, From: 1, To: 0})
	if got := env.TakeSent(); len(got) != 0 {
		t.Fatalf("frozen process sent %+v", got)
	}
	p.OnReceive(protocol.Wire{From: 0, To: 1, Kind: protocol.ControlWire, Ctrl: ctrlThaw,
		Tag: []byte{5}})
	flushed := env.TakeSent()
	if len(flushed) != 1 || flushed[0].Kind != protocol.UserWire || flushed[0].Msg != 1 {
		t.Fatalf("thaw flushed %+v, want held user wire m1", flushed)
	}
}

// TestSnapshotRoundTrip freezes a process mid-window and checks the
// snapshot restores byte-identically.
func TestSnapshotRoundTrip(t *testing.T) {
	env := ptest.NewEnv(1, 3)
	p := Maker().(*Process)
	p.Init(env)
	p.OnInvoke(event.Message{ID: 0, From: 1, To: 2})
	p.OnReceive(protocol.Wire{From: 2, To: 1, Kind: protocol.ControlWire, Ctrl: ctrlFreeze,
		Tag: []byte{7}})
	p.OnInvoke(event.Message{ID: 1, From: 1, To: 0}) // held
	p.OnInvoke(event.Message{ID: 2, From: 1, To: 2, Color: event.ColorRed})

	clone := Maker().(*Process)
	clone.Init(ptest.NewEnv(1, 3))
	ptest.RestoreClone(t, p, clone)
	if clone.freezes != 1 || len(clone.holdQ) != 1 || len(clone.reds) != 1 || clone.phase != phaseLock {
		t.Fatalf("clone state freezes=%d holds=%d reds=%d phase=%d",
			clone.freezes, len(clone.holdQ), len(clone.reds), clone.phase)
	}
}
