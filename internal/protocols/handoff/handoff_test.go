package handoff

import (
	"testing"

	"msgorder/internal/catalog"
	"msgorder/internal/conformance"
	"msgorder/internal/event"
	"msgorder/internal/protocol"
	"msgorder/internal/protocols/ptest"
	"msgorder/internal/transport"
)

func TestDescribe(t *testing.T) {
	p := Maker().(*Process)
	p.Init(ptest.NewEnv(0, 3))
	if d := p.Describe(); d.Class != protocol.General || d.Name != "handoff-freeze" {
		t.Fatalf("descriptor = %+v", d)
	}
}

// TestOrdinaryMessagesAreTaglessCheap checks non-red traffic outside a
// handoff window sends immediately with no tag and no control wires.
func TestOrdinaryMessagesAreTaglessCheap(t *testing.T) {
	env := ptest.NewEnv(1, 3)
	p := Maker().(*Process)
	p.Init(env)
	p.OnInvoke(event.Message{ID: 0, From: 1, To: 2})
	sent := env.TakeSent()
	if len(sent) != 1 || sent[0].Kind != protocol.UserWire || len(sent[0].Tag) != 0 {
		t.Fatalf("ordinary invoke sent %+v, want one bare user wire", sent)
	}
	p.OnReceive(protocol.Wire{From: 0, To: 1, Kind: protocol.UserWire, Msg: 9})
	if got := env.DeliveredSeq(); len(got) != 1 || got[0] != 9 {
		t.Fatalf("delivered %v, want [9]", got)
	}
	if len(env.TakeSent()) != 0 {
		t.Fatal("ordinary receive sent wires")
	}
}

// TestFreezeHoldsOrdinarySends checks a FREEZE parks invokes until the
// THAW and replies with the send-count vector.
func TestFreezeHoldsOrdinarySends(t *testing.T) {
	env := ptest.NewEnv(1, 3)
	p := Maker().(*Process)
	p.Init(env)
	p.OnInvoke(event.Message{ID: 0, From: 1, To: 2}) // sent[2] = 1
	env.TakeSent()

	p.OnReceive(protocol.Wire{From: 2, To: 1, Kind: protocol.ControlWire, Ctrl: ctrlFreeze,
		Tag: []byte{5}})
	frozen := env.TakeSent()
	if len(frozen) != 1 || frozen[0].Ctrl != ctrlFrozen || frozen[0].To != 2 {
		t.Fatalf("freeze reply = %+v, want one FROZEN to P2", frozen)
	}
	id, vec, ok := decodeFrozen(frozen[0].Tag, 3)
	if !ok || id != 5 || vec[0] != 0 || vec[1] != 0 || vec[2] != 1 {
		t.Fatalf("FROZEN payload id=%d vec=%v ok=%v", id, vec, ok)
	}

	p.OnInvoke(event.Message{ID: 1, From: 1, To: 0})
	if got := env.TakeSent(); len(got) != 0 {
		t.Fatalf("frozen process sent %+v", got)
	}
	p.OnReceive(protocol.Wire{From: 0, To: 1, Kind: protocol.ControlWire, Ctrl: ctrlThaw,
		Tag: []byte{5}})
	flushed := env.TakeSent()
	if len(flushed) != 1 || flushed[0].Kind != protocol.UserWire || flushed[0].Msg != 1 {
		t.Fatalf("thaw flushed %+v, want held user wire m1", flushed)
	}
}

// TestSnapshotRoundTrip freezes a process mid-window and checks the
// snapshot restores byte-identically.
func TestSnapshotRoundTrip(t *testing.T) {
	env := ptest.NewEnv(1, 3)
	p := Maker().(*Process)
	p.Init(env)
	p.OnInvoke(event.Message{ID: 0, From: 1, To: 2})
	p.OnReceive(protocol.Wire{From: 2, To: 1, Kind: protocol.ControlWire, Ctrl: ctrlFreeze,
		Tag: []byte{7}})
	p.OnInvoke(event.Message{ID: 1, From: 1, To: 0}) // held
	p.OnInvoke(event.Message{ID: 2, From: 1, To: 2, Color: event.ColorRed})

	clone := Maker().(*Process)
	clone.Init(ptest.NewEnv(1, 3))
	ptest.RestoreClone(t, p, clone)
	if clone.freezes != 1 || len(clone.holdQ) != 1 || len(clone.reds) != 1 || clone.phase != phaseLock {
		t.Fatalf("clone state freezes=%d holds=%d reds=%d phase=%d",
			clone.freezes, len(clone.holdQ), len(clone.reds), clone.phase)
	}
}

func handoffPred() catalog.Entry {
	c, ok := catalog.ByName("handoff")
	if !ok {
		panic("handoff spec missing from catalog")
	}
	return c
}

var handoffColors = []event.Color{
	event.ColorNone, event.ColorNone, event.ColorNone, event.ColorRed,
}

// TestLiveSimSatisfiesSpec runs the protocol on the live harness over
// seeded red-mixed workloads and requires the §5 crossing-freedom
// predicate to hold on every run.
func TestLiveSimSatisfiesSpec(t *testing.T) {
	cfg := conformance.Config{
		Maker:       Maker,
		Procs:       3,
		InitialMsgs: 16,
		ChainBudget: 6,
		Colors:      handoffColors,
	}
	if err := conformance.AlwaysSatisfies(cfg, 6, handoffPred().Pred); err != nil {
		t.Fatalf("handoff violated its spec on the deterministic sim: %v", err)
	}
}

// TestLiveSimSatisfiesSpecUnderLoss reruns the conformance sweep over
// a lossy, reordering network: the freeze-drain barrier must hold even
// when control and user wires are dropped, duplicated and delayed.
func TestLiveSimSatisfiesSpecUnderLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("lossy sweep skipped in -short")
	}
	cfg := conformance.Config{
		Maker:       Maker,
		Procs:       3,
		InitialMsgs: 14,
		Colors:      handoffColors,
		Faults:      &transport.FaultPlan{DropRate: 0.15, DupRate: 0.1, DelayJitter: 0.2},
	}
	if err := conformance.AlwaysSatisfies(cfg, 4, handoffPred().Pred); err != nil {
		t.Fatalf("handoff violated its spec under loss: %v", err)
	}
}

// TestTaglessViolatesHandoffSpec is the negative control: a protocol
// with no handoff machinery must produce a crossing on some seed, or
// the spec isn't biting.
func TestTaglessViolatesHandoffSpec(t *testing.T) {
	cfg := conformance.Config{
		Procs:       3,
		InitialMsgs: 16,
		Colors:      handoffColors,
		Maker:       taglessMaker,
	}
	_, found, err := conformance.FindsViolation(cfg, 24, handoffPred().Pred)
	if err != nil {
		t.Fatalf("sweep failed: %v", err)
	}
	if !found {
		t.Fatal("tagless never violated the handoff spec in 24 seeds — spec not exercised")
	}
}

// taglessMaker is a minimal send-immediately protocol for the negative
// control (avoiding an import cycle with the registry).
func taglessMaker() protocol.Process { return &taglessProc{} }

type taglessProc struct{ env protocol.Env }

func (p *taglessProc) Init(env protocol.Env) { p.env = env }
func (p *taglessProc) OnInvoke(m event.Message) {
	p.env.Send(protocol.Wire{To: m.To, Kind: protocol.UserWire, Msg: m.ID, Color: m.Color})
}
func (p *taglessProc) OnReceive(w protocol.Wire) { p.env.Deliver(w.Msg) }
