// Conformance sweeps live in an external test package: the harness
// (internal/conformance) now reaches the protocol registry through
// chanmux, so an in-package import of it would be a cycle.
package handoff_test

import (
	"testing"

	"msgorder/internal/catalog"
	"msgorder/internal/conformance"
	"msgorder/internal/event"
	"msgorder/internal/protocol"
	"msgorder/internal/protocols/handoff"
	"msgorder/internal/transport"
)

func handoffPred() catalog.Entry {
	c, ok := catalog.ByName("handoff")
	if !ok {
		panic("handoff spec missing from catalog")
	}
	return c
}

var handoffColors = []event.Color{
	event.ColorNone, event.ColorNone, event.ColorNone, event.ColorRed,
}

// TestLiveSimSatisfiesSpec runs the protocol on the live harness over
// seeded red-mixed workloads and requires the §5 crossing-freedom
// predicate to hold on every run.
func TestLiveSimSatisfiesSpec(t *testing.T) {
	cfg := conformance.Config{
		Maker:       handoff.Maker,
		Procs:       3,
		InitialMsgs: 16,
		ChainBudget: 6,
		Colors:      handoffColors,
	}
	if err := conformance.AlwaysSatisfies(cfg, 6, handoffPred().Pred); err != nil {
		t.Fatalf("handoff violated its spec on the deterministic sim: %v", err)
	}
}

// TestLiveSimSatisfiesSpecUnderLoss reruns the conformance sweep over
// a lossy, reordering network: the freeze-drain barrier must hold even
// when control and user wires are dropped, duplicated and delayed.
func TestLiveSimSatisfiesSpecUnderLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("lossy sweep skipped in -short")
	}
	cfg := conformance.Config{
		Maker:       handoff.Maker,
		Procs:       3,
		InitialMsgs: 14,
		Colors:      handoffColors,
		Faults:      &transport.FaultPlan{DropRate: 0.15, DupRate: 0.1, DelayJitter: 0.2},
	}
	if err := conformance.AlwaysSatisfies(cfg, 4, handoffPred().Pred); err != nil {
		t.Fatalf("handoff violated its spec under loss: %v", err)
	}
}

// TestTaglessViolatesHandoffSpec is the negative control: a protocol
// with no handoff machinery must produce a crossing on some seed, or
// the spec isn't biting.
func TestTaglessViolatesHandoffSpec(t *testing.T) {
	cfg := conformance.Config{
		Procs:       3,
		InitialMsgs: 16,
		Colors:      handoffColors,
		Maker:       taglessMaker,
	}
	_, found, err := conformance.FindsViolation(cfg, 24, handoffPred().Pred)
	if err != nil {
		t.Fatalf("sweep failed: %v", err)
	}
	if !found {
		t.Fatal("tagless never violated the handoff spec in 24 seeds — spec not exercised")
	}
}

// taglessMaker is a minimal send-immediately protocol for the negative
// control (avoiding an import cycle with the registry).
func taglessMaker() protocol.Process { return &taglessProc{} }

type taglessProc struct{ env protocol.Env }

func (p *taglessProc) Init(env protocol.Env) { p.env = env }
func (p *taglessProc) OnInvoke(m event.Message) {
	p.env.Send(protocol.Wire{To: m.To, Kind: protocol.UserWire, Msg: m.ID, Color: m.Color})
}
func (p *taglessProc) OnReceive(w protocol.Wire) { p.env.Deliver(w.Msg) }
