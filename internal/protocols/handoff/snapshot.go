package handoff

import (
	"sort"

	"msgorder/internal/event"
	"msgorder/internal/protocol"
	"msgorder/internal/snapio"
)

var _ protocol.Snapshotter = (*Process)(nil)

// appendMsg encodes one queued user message.
func appendMsg(w *snapio.Writer, m event.Message) {
	w.Int(int(m.ID))
	w.Int(int(m.From))
	w.Int(int(m.To))
	w.Int(int(m.Color))
	w.U64(uint64(m.Key))
}

// readMsg decodes one queued user message.
func readMsg(r *snapio.Reader) event.Message {
	return event.Message{
		ID:    event.MsgID(r.Int()),
		From:  event.ProcID(r.Int()),
		To:    event.ProcID(r.Int()),
		Color: event.Color(r.Int()),
		Key:   event.Key(r.U64()),
	}
}

// Snapshot encodes the full ordering state: send/receive tallies, the
// freeze window count, held invokes, the mobile handoff machine, the
// responder drain slot and the coordinator lock. Map traversals are
// sorted, so equal states encode to equal bytes.
func (p *Process) Snapshot() []byte {
	var w snapio.Writer
	w.Int(len(p.sent))
	for _, s := range p.sent {
		w.U64(s)
	}
	w.U64(p.recvd)
	w.Int(p.freezes)
	w.Int(len(p.holdQ))
	for _, m := range p.holdQ {
		appendMsg(&w, m)
	}
	w.Byte(p.phase)
	w.Int(len(p.reds))
	for _, m := range p.reds {
		appendMsg(&w, m)
	}
	procs := make([]int, 0, len(p.frozen))
	for q := range p.frozen {
		procs = append(procs, int(q))
	}
	sort.Ints(procs)
	w.Int(len(procs))
	for _, q := range procs {
		w.Int(q)
		vec := p.frozen[event.ProcID(q)]
		w.Int(len(vec))
		for _, v := range vec {
			w.U64(v)
		}
	}
	procs = procs[:0]
	for q := range p.drained {
		procs = append(procs, int(q))
	}
	sort.Ints(procs)
	w.Int(len(procs))
	for _, q := range procs {
		w.Int(q)
	}
	w.U64(p.selfDrainWant)
	w.Bool(p.selfDrainPend)
	w.Int(int(p.drainFrom))
	w.Int(int(p.drainRed))
	w.U64(p.drainWant)
	w.Bool(p.drainPend)
	w.Int(len(p.lockQ))
	for _, q := range p.lockQ {
		w.Int(int(q))
	}
	w.Bool(p.lockBusy)
	return w.Out()
}

// Restore rebuilds the state onto a freshly Init'd instance.
func (p *Process) Restore(b []byte) error {
	r := snapio.NewReader(b)
	sent := make([]uint64, r.Int())
	for i := range sent {
		sent[i] = r.U64()
	}
	recvd := r.U64()
	freezes := r.Int()
	var holdQ []event.Message
	for i, n := 0, r.Int(); i < n; i++ {
		holdQ = append(holdQ, readMsg(r))
	}
	phase := r.Byte()
	var reds []event.Message
	for i, n := 0, r.Int(); i < n; i++ {
		reds = append(reds, readMsg(r))
	}
	var frozen map[event.ProcID][]uint64
	if n := r.Int(); n > 0 || phase == phaseFreeze {
		frozen = make(map[event.ProcID][]uint64, n)
		for i := 0; i < n; i++ {
			q := event.ProcID(r.Int())
			vec := make([]uint64, r.Int())
			for j := range vec {
				vec[j] = r.U64()
			}
			frozen[q] = vec
		}
	}
	var drained map[event.ProcID]bool
	if n := r.Int(); n > 0 || phase == phaseDrain {
		drained = make(map[event.ProcID]bool, n)
		for i := 0; i < n; i++ {
			drained[event.ProcID(r.Int())] = true
		}
	}
	selfDrainWant := r.U64()
	selfDrainPend := r.Bool()
	drainFrom := event.ProcID(r.Int())
	drainRed := event.MsgID(r.Int())
	drainWant := r.U64()
	drainPend := r.Bool()
	var lockQ []event.ProcID
	for i, n := 0, r.Int(); i < n; i++ {
		lockQ = append(lockQ, event.ProcID(r.Int()))
	}
	lockBusy := r.Bool()
	if err := r.Close(); err != nil {
		return err
	}
	p.sent, p.recvd, p.freezes, p.holdQ = sent, recvd, freezes, holdQ
	p.phase, p.reds, p.frozen, p.drained = phase, reds, frozen, drained
	p.selfDrainWant, p.selfDrainPend = selfDrainWant, selfDrainPend
	p.drainFrom, p.drainRed, p.drainWant, p.drainPend = drainFrom, drainRed, drainWant, drainPend
	p.lockQ, p.lockBusy = lockQ, lockBusy
	return nil
}
