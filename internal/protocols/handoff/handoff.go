// Package handoff implements the paper's §5 mobile-handoff
// specification as a live protocol: no message may cross a red
// (handoff) message — forbidden is any y with x.s -> y.r && y.s -> x.r
// for a red x. The paper places this specification in the general
// class (Theorem 4.2: it cannot be implemented by tagging alone), and
// this protocol spends its control messages on a freeze-drain-thaw
// round per handoff:
//
//	mobile  --LOCK-->   coordinator          (serialize handoffs)
//	mobile  <--GRANT--  coordinator
//	mobile  --FREEZE--> every other process  (stop sending user wires)
//	mobile  <--FROZEN-- each, carrying its per-destination send counts
//	mobile  --DRAIN-->  every other process  (expected receive totals)
//	mobile  <--DRAINED- each, once all pre-freeze wires arrived
//	mobile  --red user message--> new base station d
//	d       --THAW-->   every other process  (resume sending)
//
// The drain barrier guarantees every message sent before the freeze is
// delivered — everywhere — before the red send executes, so no earlier
// message's delivery can follow x.s; the freeze guarantees no process
// sends between its FROZEN reply and the THAW, so every later send is
// causally after x.r. Ordinary (non-red) messages outside a handoff
// window are sent and delivered immediately at tagless cost: the
// protocol's overhead is confined to the handoffs themselves,
// 4(n-1)+2 control wires each.
package handoff

import (
	"encoding/binary"

	"msgorder/internal/event"
	"msgorder/internal/protocol"
)

// Control message types.
const (
	ctrlLock    uint8 = iota + 1 // mobile -> coordinator: request handoff slot
	ctrlGrant                    // coordinator -> mobile: slot granted
	ctrlFreeze                   // mobile -> peers: stop sending user wires
	ctrlFrozen                   // peer -> mobile: frozen, + send-count vector
	ctrlDrain                    // mobile -> peers: expected receive total
	ctrlDrained                  // peer -> mobile: all pre-freeze wires arrived
	ctrlThaw                     // new base -> peers: handoff done, resume
	ctrlUnlock                   // mobile -> coordinator: slot released
)

// coordID is the process serializing handoffs (the lock coordinator).
const coordID event.ProcID = 0

// Handoff phases of the mobile process.
const (
	phaseIdle   uint8 = iota // no handoff in progress here
	phaseLock                // lock requested, awaiting grant
	phaseFreeze              // freezes sent, collecting FROZEN vectors
	phaseDrain               // drains sent, collecting DRAINED
	phaseRed                 // red sent, awaiting the THAW echo
)

// Process is one handoff protocol instance.
type Process struct {
	env  protocol.Env
	n    int
	self event.ProcID

	// sent counts user wires this process sent, per destination
	// (handoff reds included); recvd counts user wires received here.
	// Together they are the drain barrier's currency.
	sent  []uint64
	recvd uint64

	// freezes counts active FREEZE windows at this process; while
	// positive, ordinary invokes are held. A counter (not a bool)
	// because a reordered THAW from the previous handoff may arrive
	// after the next handoff's FREEZE.
	freezes int
	holdQ   []event.Message

	// Mobile-side handoff state. reds queues invoked handoffs; the
	// head is the one in flight.
	phase         uint8
	reds          []event.Message
	frozen        map[event.ProcID][]uint64
	drained       map[event.ProcID]bool
	selfDrainWant uint64
	selfDrainPend bool

	// Responder-side drain state (at most one outstanding: handoffs
	// are serialized by the coordinator lock).
	drainFrom event.ProcID
	drainRed  event.MsgID
	drainWant uint64
	drainPend bool

	// Coordinator state (process 0 only).
	lockQ    []event.ProcID
	lockBusy bool
}

var (
	_ protocol.Process   = (*Process)(nil)
	_ protocol.Describer = (*Process)(nil)
)

// Maker builds handoff protocol instances.
func Maker() protocol.Process { return &Process{} }

// Describe declares the general capability class.
func (p *Process) Describe() protocol.Descriptor {
	return protocol.Descriptor{Name: "handoff-freeze", Class: protocol.General}
}

// Init sizes the send-count vector.
func (p *Process) Init(env protocol.Env) {
	p.env = env
	p.n = env.NumProcs()
	p.self = env.Self()
	p.sent = make([]uint64, p.n)
}

// OnInvoke sends ordinary messages immediately (unless frozen or mid-
// handoff) and starts the handoff round for red ones.
func (p *Process) OnInvoke(m event.Message) {
	if m.Color == event.ColorRed {
		p.reds = append(p.reds, m)
		if p.phase == phaseIdle {
			p.startHandoff()
		}
		return
	}
	if p.freezes > 0 || p.phase != phaseIdle {
		p.holdQ = append(p.holdQ, m)
		return
	}
	p.sendUser(m)
}

// sendUser releases one ordinary user wire.
func (p *Process) sendUser(m event.Message) {
	p.sent[m.To]++
	p.env.Send(protocol.Wire{
		To:    m.To,
		Kind:  protocol.UserWire,
		Msg:   m.ID,
		Color: m.Color,
	})
}

// startHandoff requests the handoff lock for the queued red's round.
func (p *Process) startHandoff() {
	p.phase = phaseLock
	if p.self == coordID {
		p.lockQ = append(p.lockQ, p.self)
		p.pumpLock()
		return
	}
	p.env.Send(protocol.Wire{To: coordID, Kind: protocol.ControlWire, Ctrl: ctrlLock})
}

// pumpLock grants the next queued handoff when the slot is free
// (coordinator only).
func (p *Process) pumpLock() {
	if p.lockBusy || len(p.lockQ) == 0 {
		return
	}
	grantee := p.lockQ[0]
	p.lockQ = p.lockQ[1:]
	p.lockBusy = true
	if grantee == p.self {
		p.onGrant()
		return
	}
	p.env.Send(protocol.Wire{To: grantee, Kind: protocol.ControlWire, Ctrl: ctrlGrant})
}

// onGrant begins the freeze round for the handoff at the head of the
// red queue.
func (p *Process) onGrant() {
	p.phase = phaseFreeze
	p.frozen = make(map[event.ProcID][]uint64, p.n-1)
	id := uint64(p.reds[0].ID)
	for q := event.ProcID(0); int(q) < p.n; q++ {
		if q == p.self {
			continue
		}
		p.env.Send(protocol.Wire{
			To:   q,
			Kind: protocol.ControlWire,
			Ctrl: ctrlFreeze,
			Tag:  binary.AppendUvarint(nil, id),
		})
	}
	p.checkFrozen()
}

// checkFrozen advances to the drain round once every peer replied.
func (p *Process) checkFrozen() {
	if p.phase != phaseFreeze || len(p.frozen) != p.n-1 {
		return
	}
	p.phase = phaseDrain
	p.drained = make(map[event.ProcID]bool, p.n)
	id := uint64(p.reds[0].ID)
	for r := event.ProcID(0); int(r) < p.n; r++ {
		// expected receive total at r: everything every frozen peer
		// had sent to r, plus what the mobile itself sent to r.
		want := p.sent[r]
		for _, vec := range p.frozen {
			want += vec[r]
		}
		if r == p.self {
			if p.recvd >= want {
				p.drained[r] = true
			} else {
				p.selfDrainWant = want
				p.selfDrainPend = true
			}
			continue
		}
		tag := binary.AppendUvarint(nil, id)
		tag = binary.AppendUvarint(tag, want)
		p.env.Send(protocol.Wire{To: r, Kind: protocol.ControlWire, Ctrl: ctrlDrain, Tag: tag})
	}
	p.checkDrained()
}

// checkDrained sends the red once the whole system is drained.
func (p *Process) checkDrained() {
	if p.phase != phaseDrain || len(p.drained) != p.n {
		return
	}
	p.phase = phaseRed
	m := p.reds[0]
	p.sent[m.To]++
	p.env.Send(protocol.Wire{
		To:    m.To,
		Kind:  protocol.UserWire,
		Msg:   m.ID,
		Color: m.Color,
	})
}

// OnReceive handles user wires (immediate delivery; red triggers the
// thaw broadcast) and the eight control types.
func (p *Process) OnReceive(w protocol.Wire) {
	if w.Kind == protocol.UserWire {
		p.recvd++
		p.env.Deliver(w.Msg)
		if w.Color == event.ColorRed {
			// This process is the new base station: the handoff is
			// complete, release every frozen peer.
			p.freezes--
			id := binary.AppendUvarint(nil, uint64(w.Msg))
			for q := event.ProcID(0); int(q) < p.n; q++ {
				if q == p.self {
					continue
				}
				p.env.Send(protocol.Wire{To: q, Kind: protocol.ControlWire, Ctrl: ctrlThaw, Tag: id})
			}
			p.maybeFlush()
		}
		p.checkDrainReply()
		if p.selfDrainPend && p.recvd >= p.selfDrainWant {
			p.selfDrainPend = false
			p.drained[p.self] = true
			p.checkDrained()
		}
		return
	}
	switch w.Ctrl {
	case ctrlLock:
		p.lockQ = append(p.lockQ, w.From)
		p.pumpLock()
	case ctrlGrant:
		p.onGrant()
	case ctrlFreeze:
		p.freezes++
		tag, _ := binary.Uvarint(w.Tag)
		reply := binary.AppendUvarint(nil, tag)
		for _, s := range p.sent {
			reply = binary.AppendUvarint(reply, s)
		}
		p.env.Send(protocol.Wire{To: w.From, Kind: protocol.ControlWire, Ctrl: ctrlFrozen, Tag: reply})
	case ctrlFrozen:
		id, vec, ok := decodeFrozen(w.Tag, p.n)
		if !ok || p.phase != phaseFreeze || len(p.reds) == 0 || id != p.reds[0].ID {
			return
		}
		p.frozen[w.From] = vec
		p.checkFrozen()
	case ctrlDrain:
		buf := w.Tag
		id, k := binary.Uvarint(buf)
		if k <= 0 {
			return
		}
		want, k2 := binary.Uvarint(buf[k:])
		if k2 <= 0 {
			return
		}
		p.drainFrom, p.drainRed, p.drainWant, p.drainPend = w.From, event.MsgID(id), want, true
		p.checkDrainReply()
	case ctrlDrained:
		id, k := binary.Uvarint(w.Tag)
		if k <= 0 || p.phase != phaseDrain || len(p.reds) == 0 || event.MsgID(id) != p.reds[0].ID {
			return
		}
		p.drained[w.From] = true
		p.checkDrained()
	case ctrlThaw:
		p.onThaw(w)
	case ctrlUnlock:
		p.lockBusy = false
		p.pumpLock()
	}
}

// checkDrainReply answers an outstanding DRAIN once every expected
// pre-freeze wire has arrived.
func (p *Process) checkDrainReply() {
	if !p.drainPend || p.recvd < p.drainWant {
		return
	}
	p.drainPend = false
	p.env.Send(protocol.Wire{
		To:   p.drainFrom,
		Kind: protocol.ControlWire,
		Ctrl: ctrlDrained,
		Tag:  binary.AppendUvarint(nil, uint64(p.drainRed)),
	})
}

// onThaw ends the handoff at the mobile (matched by red id) or
// releases one freeze window at a peer.
func (p *Process) onThaw(w protocol.Wire) {
	id, k := binary.Uvarint(w.Tag)
	if k <= 0 {
		return
	}
	if p.phase == phaseRed && len(p.reds) > 0 && event.MsgID(id) == p.reds[0].ID {
		p.phase = phaseIdle
		p.reds = p.reds[1:]
		p.frozen, p.drained, p.selfDrainPend = nil, nil, false
		if p.self == coordID {
			p.lockBusy = false
			p.pumpLock()
		} else {
			p.env.Send(protocol.Wire{To: coordID, Kind: protocol.ControlWire, Ctrl: ctrlUnlock})
		}
		p.maybeFlush()
		if len(p.reds) > 0 && p.phase == phaseIdle {
			p.startHandoff()
		}
		return
	}
	p.freezes--
	p.maybeFlush()
}

// maybeFlush releases held ordinary invokes once this process is
// neither frozen nor mid-handoff.
func (p *Process) maybeFlush() {
	if p.freezes > 0 || p.phase != phaseIdle {
		return
	}
	q := p.holdQ
	p.holdQ = nil
	for _, m := range q {
		p.sendUser(m)
	}
}

// decodeFrozen splits a FROZEN tag into the red id and the sender's
// per-destination send-count vector.
func decodeFrozen(tag []byte, n int) (event.MsgID, []uint64, bool) {
	id, k := binary.Uvarint(tag)
	if k <= 0 {
		return 0, nil, false
	}
	tag = tag[k:]
	vec := make([]uint64, n)
	for i := range vec {
		v, k := binary.Uvarint(tag)
		if k <= 0 {
			return 0, nil, false
		}
		vec[i] = v
		tag = tag[k:]
	}
	return event.MsgID(id), vec, true
}
