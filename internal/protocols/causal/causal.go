// Package causal implements the two tagged causal-ordering protocols the
// paper cites as witnesses that X_co needs only piggybacking:
//
//   - RST — the Raynal–Schiper–Toueg algorithm [20]: every user message
//     carries an n×n matrix clock M where M[j][k] is the sender's
//     knowledge of how many messages j has sent to k. Process i delivers
//     a message from j when it is the next one from j and every message
//     sent to i causally before it has been delivered.
//
//   - SES — the Schiper–Eggli–Sandoz algorithm [21]: every user message
//     carries a vector timestamp plus a set of (destination, vector)
//     pairs recording causally preceding sends. Tags are O(n) entries of
//     O(n) words in the worst case but far smaller in sparse traffic —
//     the tag-size ablation against RST's always-n² matrix.
//
// Both deliver the exact specification X_co; BenchmarkCausalVariants
// compares their overhead.
package causal

import (
	"encoding/binary"
	"sort"

	"msgorder/internal/event"
	"msgorder/internal/protocol"
	"msgorder/internal/vc"
)

// --- RST ---

// RST is one Raynal–Schiper–Toueg protocol instance.
type RST struct {
	env protocol.Env
	m   *vc.Matrix
	del []uint64 // del[j] = messages from j delivered here
	// held buffers received-but-undeliverable messages.
	held []heldRST
}

type heldRST struct {
	id   event.MsgID
	from event.ProcID
	tag  *vc.Matrix
}

var (
	_ protocol.Process   = (*RST)(nil)
	_ protocol.Describer = (*RST)(nil)
)

// RSTMaker builds RST instances.
func RSTMaker() protocol.Process { return &RST{} }

// Describe declares the tagged capability class.
func (p *RST) Describe() protocol.Descriptor {
	return protocol.Descriptor{Name: "causal-rst", Class: protocol.Tagged}
}

// Init allocates the matrix clock.
func (p *RST) Init(env protocol.Env) {
	p.env = env
	n := env.NumProcs()
	p.m = vc.NewMatrix(n)
	p.del = make([]uint64, n)
}

// OnInvoke increments the sender's row and sends the matrix as the tag.
func (p *RST) OnInvoke(m event.Message) {
	p.m.Incr(int(p.env.Self()), int(m.To))
	p.env.Send(protocol.Wire{
		To:    m.To,
		Kind:  protocol.UserWire,
		Msg:   m.ID,
		Color: m.Color,
		Tag:   p.m.Encode(),
	})
}

// OnReceive applies the RST delivery condition, buffering when needed.
func (p *RST) OnReceive(w protocol.Wire) {
	if w.Kind != protocol.UserWire {
		return
	}
	tag, err := vc.DecodeMatrix(w.Tag)
	if err != nil {
		return // malformed tag: drop; the liveness check will flag it
	}
	p.held = append(p.held, heldRST{id: w.Msg, from: w.From, tag: tag})
	p.drain()
}

// deliverable: the message is the next from its sender, and every message
// sent to self causally before it has been delivered.
func (p *RST) deliverable(h heldRST) bool {
	self := int(p.env.Self())
	if h.tag.Get(int(h.from), self) != p.del[h.from]+1 {
		return false
	}
	for k := 0; k < p.env.NumProcs(); k++ {
		if k == int(h.from) {
			continue
		}
		if h.tag.Get(k, self) > p.del[k] {
			return false
		}
	}
	return true
}

func (p *RST) drain() {
	for {
		progress := false
		for i := 0; i < len(p.held); i++ {
			h := p.held[i]
			if !p.deliverable(h) {
				continue
			}
			p.held = append(p.held[:i], p.held[i+1:]...)
			// Commit state before delivering: Deliver may reenter (a
			// user hook can invoke follow-up messages synchronously),
			// and those must be tagged with this delivery's knowledge.
			p.del[h.from]++
			p.m.Merge(h.tag)
			p.env.Deliver(h.id)
			progress = true
			break
		}
		if !progress {
			return
		}
	}
}

// --- SES ---

// SES is one Schiper–Eggli–Sandoz protocol instance.
type SES struct {
	env protocol.Env
	v   vc.Vector
	// vm[k] is the timestamp knowledge of messages sent to process k.
	vm   map[event.ProcID]vc.Vector
	held []heldSES
}

type heldSES struct {
	id event.MsgID
	tm vc.Vector
	// need is the (self, V) constraint extracted from the tag, nil when
	// unconstrained.
	need vc.Vector
	rest map[event.ProcID]vc.Vector
}

var (
	_ protocol.Process   = (*SES)(nil)
	_ protocol.Describer = (*SES)(nil)
)

// SESMaker builds SES instances.
func SESMaker() protocol.Process { return &SES{} }

// Describe declares the tagged capability class.
func (p *SES) Describe() protocol.Descriptor {
	return protocol.Descriptor{Name: "causal-ses", Class: protocol.Tagged}
}

// Init allocates the vector clock and send buffer.
func (p *SES) Init(env protocol.Env) {
	p.env = env
	p.v = vc.NewVector(env.NumProcs())
	p.vm = make(map[event.ProcID]vc.Vector)
}

// OnInvoke timestamps the message, attaches the send buffer, and records
// the send in it.
func (p *SES) OnInvoke(m event.Message) {
	self := int(p.env.Self())
	p.v.Tick(self)
	tm := p.v.Clone()
	tag := encodeSES(tm, p.vm)
	if prev, ok := p.vm[m.To]; ok {
		prev.Merge(tm)
	} else {
		p.vm[m.To] = tm.Clone()
	}
	p.env.Send(protocol.Wire{
		To:    m.To,
		Kind:  protocol.UserWire,
		Msg:   m.ID,
		Color: m.Color,
		Tag:   tag,
	})
}

// OnReceive applies the SES delivery condition.
func (p *SES) OnReceive(w protocol.Wire) {
	if w.Kind != protocol.UserWire {
		return
	}
	tm, entries, err := decodeSES(w.Tag)
	if err != nil {
		return // malformed tag: drop
	}
	h := heldSES{id: w.Msg, tm: tm, rest: entries}
	if need, ok := entries[p.env.Self()]; ok {
		h.need = need
		delete(entries, p.env.Self())
	}
	p.held = append(p.held, h)
	p.drain()
}

func (p *SES) drain() {
	for {
		progress := false
		for i := 0; i < len(p.held); i++ {
			h := p.held[i]
			if h.need != nil && !h.need.LessEq(p.v) {
				continue
			}
			p.held = append(p.held[:i], p.held[i+1:]...)
			// Commit state before delivering (Deliver may reenter).
			p.v.Merge(h.tm)
			for k, vec := range h.rest {
				if prev, ok := p.vm[k]; ok {
					prev.Merge(vec)
				} else {
					p.vm[k] = vec.Clone()
				}
			}
			p.env.Deliver(h.id)
			progress = true
			break
		}
		if !progress {
			return
		}
	}
}

// encodeSES serializes (tm, entries): tm, then a count of entries, then
// each destination and vector.
func encodeSES(tm vc.Vector, vm map[event.ProcID]vc.Vector) []byte {
	buf := tm.Encode()
	buf = binary.AppendUvarint(buf, uint64(len(vm)))
	// Deterministic order: ascending destination.
	keys := make([]int, 0, len(vm))
	for k := range vm {
		keys = append(keys, int(k))
	}
	sort.Ints(keys)
	for _, k := range keys {
		buf = binary.AppendUvarint(buf, uint64(k))
		buf = append(buf, vm[event.ProcID(k)].Encode()...)
	}
	return buf
}

func decodeSES(b []byte) (vc.Vector, map[event.ProcID]vc.Vector, error) {
	tm, rest, err := decodeVectorPrefix(b)
	if err != nil {
		return nil, nil, err
	}
	cnt, k := binary.Uvarint(rest)
	if k <= 0 {
		return nil, nil, vc.ErrDecode
	}
	rest = rest[k:]
	entries := make(map[event.ProcID]vc.Vector, cnt)
	for i := uint64(0); i < cnt; i++ {
		dst, k := binary.Uvarint(rest)
		if k <= 0 {
			return nil, nil, vc.ErrDecode
		}
		rest = rest[k:]
		var vec vc.Vector
		vec, rest, err = decodeVectorPrefix(rest)
		if err != nil {
			return nil, nil, err
		}
		entries[event.ProcID(dst)] = vec
	}
	if len(rest) != 0 {
		return nil, nil, vc.ErrDecode
	}
	return tm, entries, nil
}

// decodeVectorPrefix decodes one length-prefixed vector from the front of
// b and returns the remainder.
func decodeVectorPrefix(b []byte) (vc.Vector, []byte, error) {
	n, k := binary.Uvarint(b)
	if k <= 0 || n > 1<<16 {
		return nil, nil, vc.ErrDecode
	}
	b = b[k:]
	v := make(vc.Vector, n)
	for i := range v {
		x, k := binary.Uvarint(b)
		if k <= 0 {
			return nil, nil, vc.ErrDecode
		}
		v[i] = x
		b = b[k:]
	}
	return v, b, nil
}
