package causal

import (
	"msgorder/internal/event"
	"msgorder/internal/protocol"
	"msgorder/internal/vc"
)

// BSS is the Birman–Schiper–Stephenson causal broadcast protocol — the
// multicast extension the paper's conclusion anticipates, and the
// third cited causal witness [4]. Every broadcast carries a single
// vector timestamp of length n (versus RST's n×n matrix): entry k is the
// number of broadcasts by process k delivered at the sender before this
// one. A receiver delivers a copy from i when it is i's next broadcast
// and every broadcast the sender had delivered first has been delivered
// here too.
//
// BSS orders broadcasts only: it must be driven by broadcast workloads
// (Request.Broadcast). A stray unicast is forwarded with an untagged
// marker and delivered on receipt, preserving liveness but not ordered
// against broadcasts.
type BSS struct {
	env protocol.Env
	// vcDel[k] = broadcasts by process k delivered here. The own entry
	// counts this process's broadcasts (delivered locally by fiat).
	vcDel vc.Vector
	held  []heldBSS
}

type heldBSS struct {
	id   event.MsgID
	from event.ProcID
	tag  vc.Vector
}

// bssKind prefixes the wire tag.
const (
	bssPlain byte = iota + 1 // untagged unicast fallback
	bssCast                  // broadcast copy, vector follows
)

var (
	_ protocol.Process     = (*BSS)(nil)
	_ protocol.Describer   = (*BSS)(nil)
	_ protocol.Broadcaster = (*BSS)(nil)
)

// BSSMaker builds BSS instances.
func BSSMaker() protocol.Process { return &BSS{} }

// Describe declares the tagged capability class.
func (p *BSS) Describe() protocol.Descriptor {
	return protocol.Descriptor{Name: "causal-bss", Class: protocol.Tagged}
}

// Init allocates the delivery vector.
func (p *BSS) Init(env protocol.Env) {
	p.env = env
	p.vcDel = vc.NewVector(env.NumProcs())
}

// OnBroadcast stamps every copy with one vector timestamp.
func (p *BSS) OnBroadcast(msgs []event.Message) {
	self := int(p.env.Self())
	tag := append([]byte{bssCast}, p.vcDel.Encode()...)
	p.vcDel.Tick(self) // our own broadcast counts as delivered locally
	for _, m := range msgs {
		p.env.Send(protocol.Wire{
			To:    m.To,
			Kind:  protocol.UserWire,
			Msg:   m.ID,
			Color: m.Color,
			Tag:   tag,
		})
	}
}

// OnInvoke handles stray unicasts with a liveness-preserving fallback.
func (p *BSS) OnInvoke(m event.Message) {
	p.env.Send(protocol.Wire{
		To:    m.To,
		Kind:  protocol.UserWire,
		Msg:   m.ID,
		Color: m.Color,
		Tag:   []byte{bssPlain},
	})
}

// OnReceive applies the BSS delivery condition to broadcast copies.
func (p *BSS) OnReceive(w protocol.Wire) {
	if w.Kind != protocol.UserWire || len(w.Tag) == 0 {
		return
	}
	switch w.Tag[0] {
	case bssPlain:
		p.env.Deliver(w.Msg)
	case bssCast:
		tag, err := vc.DecodeVector(w.Tag[1:])
		if err != nil {
			return // malformed: drop; liveness check flags it
		}
		p.held = append(p.held, heldBSS{id: w.Msg, from: w.From, tag: tag})
		p.drain()
	}
}

// deliverable: next broadcast from its sender, and the sender's causal
// past of broadcasts is already delivered here.
func (p *BSS) deliverable(h heldBSS) bool {
	from := int(h.from)
	if from >= len(p.vcDel) || len(h.tag) != len(p.vcDel) {
		return false
	}
	if h.tag[from] != p.vcDel[from] {
		return false
	}
	for k := range p.vcDel {
		if k == from {
			continue
		}
		if h.tag[k] > p.vcDel[k] {
			return false
		}
	}
	return true
}

func (p *BSS) drain() {
	for {
		progress := false
		for i := 0; i < len(p.held); i++ {
			h := p.held[i]
			if !p.deliverable(h) {
				continue
			}
			p.held = append(p.held[:i], p.held[i+1:]...)
			// Commit state before delivering (Deliver may reenter).
			p.vcDel.Tick(int(h.from))
			p.env.Deliver(h.id)
			progress = true
			break
		}
		if !progress {
			return
		}
	}
}
