package causal

import (
	"reflect"
	"testing"

	"msgorder/internal/event"
	"msgorder/internal/protocol"
	"msgorder/internal/protocols/ptest"
)

// twoToOne scripts the common scenario: P0 sends m0 then m1 to P1, and
// P1 receives them out of order so m1 is held when the crash hits.
func twoToOne(t *testing.T, mk func() protocol.Process) (held protocol.Process, henv *ptest.Env, wires []protocol.Wire) {
	t.Helper()
	sender := mk()
	senv := ptest.NewEnv(0, 3)
	sender.Init(senv)
	sender.OnInvoke(event.Message{ID: 0, From: 0, To: 1})
	sender.OnInvoke(event.Message{ID: 1, From: 0, To: 1})
	wires = senv.TakeSent()

	recv := mk()
	renv := ptest.NewEnv(1, 3)
	recv.Init(renv)
	recv.OnReceive(wires[1])
	if len(renv.Delivered) != 0 {
		t.Fatalf("causally later message delivered first: %v", renv.DeliveredSeq())
	}
	return recv, renv, wires
}

func TestRSTSnapshotMidStream(t *testing.T) {
	recv, _, wires := twoToOne(t, RSTMaker)
	clone := RSTMaker()
	cenv := ptest.NewEnv(1, 3)
	clone.Init(cenv)
	ptest.RestoreClone(t, recv, clone)
	clone.OnReceive(wires[0])
	if got := cenv.DeliveredSeq(); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("restored clone delivered %v, want [0 1]", got)
	}
}

func TestSESSnapshotMidStream(t *testing.T) {
	recv, _, wires := twoToOne(t, SESMaker)
	clone := SESMaker()
	cenv := ptest.NewEnv(1, 3)
	clone.Init(cenv)
	ptest.RestoreClone(t, recv, clone)
	clone.OnReceive(wires[0])
	if got := cenv.DeliveredSeq(); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("restored clone delivered %v, want [0 1]", got)
	}
}

func TestBSSSnapshotMidStream(t *testing.T) {
	sender := BSSMaker()
	senv := ptest.NewEnv(0, 3)
	sender.Init(senv)
	cast := sender.(protocol.Broadcaster)
	cast.OnBroadcast([]event.Message{{ID: 0, From: 0, To: 1}, {ID: 1, From: 0, To: 2}})
	cast.OnBroadcast([]event.Message{{ID: 2, From: 0, To: 1}, {ID: 3, From: 0, To: 2}})
	wires := senv.TakeSent() // [m0->P1, m1->P2, m2->P1, m3->P2]

	recv := BSSMaker()
	renv := ptest.NewEnv(1, 3)
	recv.Init(renv)
	recv.OnReceive(wires[2]) // second broadcast first: held
	if len(renv.Delivered) != 0 {
		t.Fatalf("second broadcast delivered before the first: %v", renv.DeliveredSeq())
	}

	clone := BSSMaker()
	cenv := ptest.NewEnv(1, 3)
	clone.Init(cenv)
	ptest.RestoreClone(t, recv, clone)
	clone.OnReceive(wires[0])
	if got := cenv.DeliveredSeq(); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("restored clone delivered %v, want [0 2]", got)
	}
}
