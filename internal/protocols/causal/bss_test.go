package causal

import (
	"reflect"
	"testing"

	"msgorder/internal/event"
	"msgorder/internal/protocol"
	"msgorder/internal/protocols/ptest"
)

func newBSS(t *testing.T, id event.ProcID, n int) (*BSS, *ptest.Env) {
	t.Helper()
	env := ptest.NewEnv(id, n)
	p, ok := BSSMaker().(*BSS)
	if !ok {
		t.Fatal("BSSMaker did not return *BSS")
	}
	p.Init(env)
	return p, env
}

func TestBSSDescribe(t *testing.T) {
	p, _ := newBSS(t, 0, 3)
	if d := p.Describe(); d.Class != protocol.Tagged || d.Name != "causal-bss" {
		t.Fatalf("descriptor = %+v", d)
	}
}

// broadcast invokes OnBroadcast with one copy per destination.
func broadcast(p *BSS, env *ptest.Env, baseID event.MsgID) []protocol.Wire {
	var msgs []event.Message
	id := baseID
	for to := 0; to < env.N; to++ {
		if event.ProcID(to) == env.ID {
			continue
		}
		msgs = append(msgs, event.Message{ID: id, From: env.ID, To: event.ProcID(to)})
		id++
	}
	p.OnBroadcast(msgs)
	return env.TakeSent()
}

func TestBSSSharedTimestamp(t *testing.T) {
	p, env := newBSS(t, 0, 3)
	wires := broadcast(p, env, 0)
	if len(wires) != 2 {
		t.Fatalf("copies = %d, want 2", len(wires))
	}
	if !reflect.DeepEqual(wires[0].Tag, wires[1].Tag) {
		t.Fatal("all copies of a broadcast share one timestamp")
	}
}

func TestBSSTagSizeLinear(t *testing.T) {
	// BSS tags are O(n) versus RST's O(n²).
	n := 16
	bss, envB := newBSS(t, 0, n)
	rst, envR := newRST(t, 0, n)
	copies := broadcast(bss, envB, 0)
	rst.OnInvoke(event.Message{ID: 0, From: 0, To: 1})
	wb := copies[0]
	wr, _ := envR.LastSent()
	if len(wb.Tag) >= len(wr.Tag) {
		t.Fatalf("BSS tag (%dB) should undercut RST tag (%dB) at n=%d",
			len(wb.Tag), len(wr.Tag), n)
	}
}

// TestBSSCausalDeliveryOrder reproduces the classic scenario with
// broadcasts: P0 broadcasts b1; P1 delivers it and broadcasts b2; P2
// receives b2's copy first and must buffer it until b1's copy arrives.
func TestBSSCausalDeliveryOrder(t *testing.T) {
	p0, env0 := newBSS(t, 0, 3)
	p1, env1 := newBSS(t, 1, 3)
	p2, env2 := newBSS(t, 2, 3)

	b1 := broadcast(p0, env0, 0) // copies: m0 -> P1, m1 -> P2
	var toP1, toP2 protocol.Wire
	for _, w := range b1 {
		if w.To == 1 {
			toP1 = w
		} else {
			toP2 = w
		}
	}
	p1.OnReceive(toP1)
	if !reflect.DeepEqual(env1.DeliveredSeq(), []int{0}) {
		t.Fatalf("P1 delivered = %v", env1.DeliveredSeq())
	}
	b2 := broadcast(p1, env1, 2) // copies: m2 -> P0, m3 -> P2
	var b2ToP2 protocol.Wire
	for _, w := range b2 {
		if w.To == 2 {
			b2ToP2 = w
		}
	}
	p2.OnReceive(b2ToP2)
	if len(env2.Delivered) != 0 {
		t.Fatal("P2 must buffer b2: b1 is causally prior")
	}
	p2.OnReceive(toP2)
	if !reflect.DeepEqual(env2.DeliveredSeq(), []int{1, 3}) {
		t.Fatalf("P2 delivered = %v, want b1 then b2", env2.DeliveredSeq())
	}
}

func TestBSSSenderOrderPreserved(t *testing.T) {
	p0, env0 := newBSS(t, 0, 2)
	p1, env1 := newBSS(t, 1, 2)
	first := broadcast(p0, env0, 0)
	second := broadcast(p0, env0, 1)
	p1.OnReceive(second[0])
	if len(env1.Delivered) != 0 {
		t.Fatal("second broadcast must wait for the first")
	}
	p1.OnReceive(first[0])
	if !reflect.DeepEqual(env1.DeliveredSeq(), []int{0, 1}) {
		t.Fatalf("delivered = %v", env1.DeliveredSeq())
	}
}

func TestBSSUnicastFallbackLive(t *testing.T) {
	p0, env0 := newBSS(t, 0, 2)
	p1, env1 := newBSS(t, 1, 2)
	p0.OnInvoke(event.Message{ID: 0, From: 0, To: 1})
	w, _ := env0.LastSent()
	p1.OnReceive(w)
	if !reflect.DeepEqual(env1.DeliveredSeq(), []int{0}) {
		t.Fatal("fallback unicast must deliver immediately")
	}
}

func TestBSSMalformedDropped(t *testing.T) {
	p, env := newBSS(t, 1, 2)
	p.OnReceive(protocol.Wire{From: 0, Kind: protocol.UserWire, Msg: 1, Tag: nil})
	p.OnReceive(protocol.Wire{From: 0, Kind: protocol.UserWire, Msg: 2, Tag: []byte{bssCast, 0xff}})
	p.OnReceive(protocol.Wire{From: 0, Kind: protocol.ControlWire})
	if len(env.Delivered) != 0 {
		t.Fatal("malformed wires must not deliver")
	}
}
