package causal

import (
	"sort"

	"msgorder/internal/event"
	"msgorder/internal/protocol"
	"msgorder/internal/snapio"
	"msgorder/internal/vc"
)

var (
	_ protocol.Snapshotter = (*RST)(nil)
	_ protocol.Snapshotter = (*SES)(nil)
	_ protocol.Snapshotter = (*BSS)(nil)
)

// Snapshot encodes the matrix clock, delivery counts and held buffer.
// The held buffer is encoded in arrival order — the drain scan is
// order-sensitive, so order IS state.
func (p *RST) Snapshot() []byte {
	var w snapio.Writer
	w.Bytes(p.m.Encode())
	w.Int(len(p.del))
	for _, d := range p.del {
		w.U64(d)
	}
	w.Int(len(p.held))
	for _, h := range p.held {
		w.Int(int(h.id))
		w.Int(int(h.from))
		w.Bytes(h.tag.Encode())
	}
	return w.Out()
}

// Restore rebuilds the state onto a freshly Init'd instance.
func (p *RST) Restore(b []byte) error {
	r := snapio.NewReader(b)
	m, err := vc.DecodeMatrix(r.Bytes())
	if err != nil {
		return err
	}
	del := make([]uint64, r.Int())
	for i := range del {
		del[i] = r.U64()
	}
	var held []heldRST
	for i, n := 0, r.Int(); i < n; i++ {
		h := heldRST{id: event.MsgID(r.Int()), from: event.ProcID(r.Int())}
		if h.tag, err = vc.DecodeMatrix(r.Bytes()); err != nil {
			return err
		}
		held = append(held, h)
	}
	if err := r.Close(); err != nil {
		return err
	}
	p.m, p.del, p.held = m, del, held
	return nil
}

// Snapshot encodes the vector clock, per-destination send knowledge and
// held buffer (in arrival order — the drain scan is order-sensitive).
func (p *SES) Snapshot() []byte {
	var w snapio.Writer
	w.Bytes(p.v.Encode())
	writeVecMap(&w, p.vm)
	w.Int(len(p.held))
	for _, h := range p.held {
		w.Int(int(h.id))
		w.Bytes(h.tm.Encode())
		w.Bool(h.need != nil)
		if h.need != nil {
			w.Bytes(h.need.Encode())
		}
		writeVecMap(&w, h.rest)
	}
	return w.Out()
}

// Restore rebuilds the state onto a freshly Init'd instance.
func (p *SES) Restore(b []byte) error {
	r := snapio.NewReader(b)
	v, err := vc.DecodeVector(r.Bytes())
	if err != nil {
		return err
	}
	vm, err := readVecMap(r)
	if err != nil {
		return err
	}
	var held []heldSES
	for i, n := 0, r.Int(); i < n; i++ {
		h := heldSES{id: event.MsgID(r.Int())}
		if h.tm, err = vc.DecodeVector(r.Bytes()); err != nil {
			return err
		}
		if r.Bool() {
			if h.need, err = vc.DecodeVector(r.Bytes()); err != nil {
				return err
			}
		}
		if h.rest, err = readVecMap(r); err != nil {
			return err
		}
		held = append(held, h)
	}
	if err := r.Close(); err != nil {
		return err
	}
	p.v, p.vm, p.held = v, vm, held
	return nil
}

// Snapshot encodes the delivery vector and held buffer (in arrival
// order — the drain scan is order-sensitive).
func (p *BSS) Snapshot() []byte {
	var w snapio.Writer
	w.Bytes(p.vcDel.Encode())
	w.Int(len(p.held))
	for _, h := range p.held {
		w.Int(int(h.id))
		w.Int(int(h.from))
		w.Bytes(h.tag.Encode())
	}
	return w.Out()
}

// Restore rebuilds the state onto a freshly Init'd instance.
func (p *BSS) Restore(b []byte) error {
	r := snapio.NewReader(b)
	vcDel, err := vc.DecodeVector(r.Bytes())
	if err != nil {
		return err
	}
	var held []heldBSS
	for i, n := 0, r.Int(); i < n; i++ {
		h := heldBSS{id: event.MsgID(r.Int()), from: event.ProcID(r.Int())}
		if h.tag, err = vc.DecodeVector(r.Bytes()); err != nil {
			return err
		}
		held = append(held, h)
	}
	if err := r.Close(); err != nil {
		return err
	}
	p.vcDel, p.held = vcDel, held
	return nil
}

// writeVecMap encodes a proc→vector map in ascending key order.
func writeVecMap(w *snapio.Writer, m map[event.ProcID]vc.Vector) {
	w.Int(len(m))
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, int(k))
	}
	sort.Ints(keys)
	for _, k := range keys {
		w.Int(k)
		w.Bytes(m[event.ProcID(k)].Encode())
	}
}

func readVecMap(r *snapio.Reader) (map[event.ProcID]vc.Vector, error) {
	m := make(map[event.ProcID]vc.Vector)
	for i, n := 0, r.Int(); i < n; i++ {
		k := event.ProcID(r.Int())
		v, err := vc.DecodeVector(r.Bytes())
		if err != nil {
			return nil, err
		}
		m[k] = v
	}
	return m, nil
}
