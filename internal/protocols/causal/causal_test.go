package causal

import (
	"reflect"
	"testing"

	"msgorder/internal/event"
	"msgorder/internal/protocol"
	"msgorder/internal/protocols/ptest"
	"msgorder/internal/vc"
)

// --- RST unit tests ---

func newRST(t *testing.T, id event.ProcID, n int) (*RST, *ptest.Env) {
	t.Helper()
	env := ptest.NewEnv(id, n)
	p, ok := RSTMaker().(*RST)
	if !ok {
		t.Fatal("RSTMaker did not return *RST")
	}
	p.Init(env)
	return p, env
}

func TestRSTDescribe(t *testing.T) {
	p, _ := newRST(t, 0, 3)
	if d := p.Describe(); d.Class != protocol.Tagged {
		t.Fatalf("descriptor = %+v", d)
	}
}

func TestRSTTagsMatrix(t *testing.T) {
	p, env := newRST(t, 0, 3)
	p.OnInvoke(event.Message{ID: 0, From: 0, To: 1})
	w, ok := env.LastSent()
	if !ok {
		t.Fatal("no wire sent")
	}
	m, err := vc.DecodeMatrix(w.Tag)
	if err != nil {
		t.Fatal(err)
	}
	if m.Get(0, 1) != 1 {
		t.Fatalf("tag matrix = %v, want M[0][1]=1", m)
	}
}

// TestRSTTriangle reproduces the classic causal violation scenario at the
// receiver: P2 receives the relayed message before the direct one and
// must buffer it.
func TestRSTTriangle(t *testing.T) {
	// P0 sends m0 to P2, then m1 to P1. P1 delivers m1 and relays m2 to
	// P2. P2 receives m2 BEFORE m0: must hold m2 until m0 is delivered.
	p0, env0 := newRST(t, 0, 3)
	p1, env1 := newRST(t, 1, 3)
	p2, env2 := newRST(t, 2, 3)

	p0.OnInvoke(event.Message{ID: 0, From: 0, To: 2})
	p0.OnInvoke(event.Message{ID: 1, From: 0, To: 1})
	wires := env0.TakeSent()
	if len(wires) != 2 {
		t.Fatal("P0 must send two wires")
	}
	w0, w1 := wires[0], wires[1]

	p1.OnReceive(w1)
	if !reflect.DeepEqual(env1.DeliveredSeq(), []int{1}) {
		t.Fatal("P1 must deliver m1 immediately")
	}
	p1.OnInvoke(event.Message{ID: 2, From: 1, To: 2})
	w2, ok := env1.LastSent()
	if !ok {
		t.Fatal("P1 must send m2")
	}

	// m2 arrives at P2 first.
	p2.OnReceive(w2)
	if len(env2.Delivered) != 0 {
		t.Fatal("P2 must buffer m2: m0 is causally prior")
	}
	p2.OnReceive(w0)
	if !reflect.DeepEqual(env2.DeliveredSeq(), []int{0, 2}) {
		t.Fatalf("delivered = %v, want [0 2]", env2.DeliveredSeq())
	}
}

func TestRSTFIFOWithinChannel(t *testing.T) {
	p0, env0 := newRST(t, 0, 2)
	p1, env1 := newRST(t, 1, 2)
	p0.OnInvoke(event.Message{ID: 0, From: 0, To: 1})
	p0.OnInvoke(event.Message{ID: 1, From: 0, To: 1})
	wires := env0.TakeSent()
	p1.OnReceive(wires[1]) // out of order
	if len(env1.Delivered) != 0 {
		t.Fatal("second message must wait for the first")
	}
	p1.OnReceive(wires[0])
	if !reflect.DeepEqual(env1.DeliveredSeq(), []int{0, 1}) {
		t.Fatalf("delivered = %v", env1.DeliveredSeq())
	}
}

func TestRSTMalformedTag(t *testing.T) {
	p, env := newRST(t, 1, 2)
	p.OnReceive(protocol.Wire{From: 0, Kind: protocol.UserWire, Msg: 3, Tag: []byte{0xff}})
	if len(env.Delivered) != 0 {
		t.Fatal("malformed tag must not deliver")
	}
	p.OnReceive(protocol.Wire{From: 0, Kind: protocol.ControlWire})
	if len(env.Delivered) != 0 {
		t.Fatal("control wires ignored")
	}
}

// --- SES unit tests ---

func newSES(t *testing.T, id event.ProcID, n int) (*SES, *ptest.Env) {
	t.Helper()
	env := ptest.NewEnv(id, n)
	p, ok := SESMaker().(*SES)
	if !ok {
		t.Fatal("SESMaker did not return *SES")
	}
	p.Init(env)
	return p, env
}

func TestSESDescribe(t *testing.T) {
	p, _ := newSES(t, 0, 3)
	if d := p.Describe(); d.Class != protocol.Tagged || d.Name != "causal-ses" {
		t.Fatalf("descriptor = %+v", d)
	}
}

func TestSESTriangle(t *testing.T) {
	p0, env0 := newSES(t, 0, 3)
	p1, env1 := newSES(t, 1, 3)
	p2, env2 := newSES(t, 2, 3)

	p0.OnInvoke(event.Message{ID: 0, From: 0, To: 2})
	p0.OnInvoke(event.Message{ID: 1, From: 0, To: 1})
	wires := env0.TakeSent()
	w0, w1 := wires[0], wires[1]

	p1.OnReceive(w1)
	if !reflect.DeepEqual(env1.DeliveredSeq(), []int{1}) {
		t.Fatal("P1 must deliver m1 immediately")
	}
	p1.OnInvoke(event.Message{ID: 2, From: 1, To: 2})
	w2, _ := env1.LastSent()

	p2.OnReceive(w2)
	if len(env2.Delivered) != 0 {
		t.Fatal("P2 must buffer the relayed message")
	}
	p2.OnReceive(w0)
	if !reflect.DeepEqual(env2.DeliveredSeq(), []int{0, 2}) {
		t.Fatalf("delivered = %v, want [0 2]", env2.DeliveredSeq())
	}
}

func TestSESFIFOWithinChannel(t *testing.T) {
	p0, env0 := newSES(t, 0, 2)
	p1, env1 := newSES(t, 1, 2)
	p0.OnInvoke(event.Message{ID: 0, From: 0, To: 1})
	p0.OnInvoke(event.Message{ID: 1, From: 0, To: 1})
	wires := env0.TakeSent()
	p1.OnReceive(wires[1])
	if len(env1.Delivered) != 0 {
		t.Fatal("second message must wait for the first")
	}
	p1.OnReceive(wires[0])
	if !reflect.DeepEqual(env1.DeliveredSeq(), []int{0, 1}) {
		t.Fatalf("delivered = %v", env1.DeliveredSeq())
	}
}

func TestSESTagSmallerThanRSTWhenSparse(t *testing.T) {
	// With little history, SES tags are smaller than RST's n×n matrix.
	n := 16
	rst, envR := newRST(t, 0, n)
	ses, envS := newSES(t, 0, n)
	rst.OnInvoke(event.Message{ID: 0, From: 0, To: 1})
	ses.OnInvoke(event.Message{ID: 0, From: 0, To: 1})
	wr, _ := envR.LastSent()
	ws, _ := envS.LastSent()
	if len(ws.Tag) >= len(wr.Tag) {
		t.Fatalf("SES tag (%d bytes) should be smaller than RST tag (%d bytes) at n=%d",
			len(ws.Tag), len(wr.Tag), n)
	}
}

func TestSESMalformedTag(t *testing.T) {
	p, env := newSES(t, 1, 2)
	p.OnReceive(protocol.Wire{From: 0, Kind: protocol.UserWire, Msg: 3, Tag: []byte{0xff}})
	if len(env.Delivered) != 0 {
		t.Fatal("malformed tag must not deliver")
	}
}

func TestSESCodecRoundTrip(t *testing.T) {
	tm := vc.Vector{1, 2, 3}
	vm := map[event.ProcID]vc.Vector{
		2: {0, 1, 0},
		0: {4, 0, 0},
	}
	tm2, entries, err := decodeSES(encodeSES(tm, vm))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tm2, tm) {
		t.Fatalf("tm = %v", tm2)
	}
	if len(entries) != 2 || !reflect.DeepEqual(entries[2], vm[2]) || !reflect.DeepEqual(entries[0], vm[0]) {
		t.Fatalf("entries = %v", entries)
	}
}

func TestSESCodecErrors(t *testing.T) {
	bad := [][]byte{
		nil,
		{1, 1},          // vector then missing count
		{1, 1, 2, 0},    // count 2 but one truncated entry
		{0, 0, 1, 1, 9}, // trailing garbage
	}
	for _, b := range bad {
		if _, _, err := decodeSES(b); err == nil {
			t.Errorf("decodeSES(%v) should fail", b)
		}
	}
}
