package sync

import (
	"sort"

	"msgorder/internal/event"
	"msgorder/internal/protocol"
	"msgorder/internal/snapio"
)

var (
	_ protocol.Snapshotter = (*Process)(nil)
	_ protocol.Snapshotter = (*RA)(nil)
)

// Snapshot encodes the sender's pending table and the sequencer's grant
// queue. The queue is FIFO, so its order is state; the pending map is
// keyed and encoded sorted.
func (p *Process) Snapshot() []byte {
	var w snapio.Writer
	w.Int(len(p.pending))
	ids := make([]int, 0, len(p.pending))
	for id := range p.pending {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, id := range ids {
		m := p.pending[event.MsgID(id)]
		w.Int(int(m.ID))
		w.Int(int(m.From))
		w.Int(int(m.To))
		w.Int(int(m.Color))
	}
	w.Int(len(p.queue))
	for _, g := range p.queue {
		w.Int(int(g.sender))
		w.Int(int(g.msg))
	}
	w.Bool(p.busy)
	return w.Out()
}

// Restore rebuilds the state onto a freshly Init'd instance.
func (p *Process) Restore(b []byte) error {
	r := snapio.NewReader(b)
	pending := make(map[event.MsgID]event.Message)
	for i, n := 0, r.Int(); i < n; i++ {
		m := event.Message{
			ID:    event.MsgID(r.Int()),
			From:  event.ProcID(r.Int()),
			To:    event.ProcID(r.Int()),
			Color: event.Color(r.Int()),
		}
		pending[m.ID] = m
	}
	var queue []grant
	for i, n := 0, r.Int(); i < n; i++ {
		g := grant{sender: event.ProcID(r.Int()), msg: event.MsgID(r.Int())}
		queue = append(queue, g)
	}
	busy := r.Bool()
	if err := r.Close(); err != nil {
		return err
	}
	p.pending, p.queue, p.busy = pending, queue, busy
	return nil
}

// Snapshot encodes the Lamport clock, the FIFO send queue and the
// lock-acquisition state.
func (p *RA) Snapshot() []byte {
	var w snapio.Writer
	w.U64(p.clock.Time())
	w.Int(len(p.queue))
	for _, m := range p.queue {
		w.Int(int(m.ID))
		w.Int(int(m.From))
		w.Int(int(m.To))
		w.Int(int(m.Color))
	}
	w.Bool(p.requesting)
	w.U64(p.reqTS)
	w.Int(p.replies)
	w.Int(len(p.deferred))
	for _, j := range p.deferred {
		w.Int(int(j))
	}
	return w.Out()
}

// Restore rebuilds the state onto a freshly Init'd instance.
func (p *RA) Restore(b []byte) error {
	r := snapio.NewReader(b)
	clockT := r.U64()
	var queue []event.Message
	for i, n := 0, r.Int(); i < n; i++ {
		queue = append(queue, event.Message{
			ID:    event.MsgID(r.Int()),
			From:  event.ProcID(r.Int()),
			To:    event.ProcID(r.Int()),
			Color: event.Color(r.Int()),
		})
	}
	requesting := r.Bool()
	reqTS := r.U64()
	replies := r.Int()
	var deferred []event.ProcID
	for i, n := 0, r.Int(); i < n; i++ {
		deferred = append(deferred, event.ProcID(r.Int()))
	}
	if err := r.Close(); err != nil {
		return err
	}
	p.clock.Set(clockT)
	p.queue, p.requesting, p.reqTS, p.replies, p.deferred = queue, requesting, reqTS, replies, deferred
	return nil
}
