package sync

import (
	"encoding/binary"
	"testing"

	"msgorder/internal/event"
	"msgorder/internal/protocol"
	"msgorder/internal/protocols/ptest"
)

func newRA(t *testing.T, id event.ProcID, n int) (*RA, *ptest.Env) {
	t.Helper()
	env := ptest.NewEnv(id, n)
	p, ok := RAMaker().(*RA)
	if !ok {
		t.Fatal("RAMaker did not return *RA")
	}
	p.Init(env)
	return p, env
}

func TestRADescribe(t *testing.T) {
	p, _ := newRA(t, 0, 3)
	if d := p.Describe(); d.Class != protocol.General || d.Name != "sync-ra" {
		t.Fatalf("descriptor = %+v", d)
	}
}

func TestRAInvokeBroadcastsRequests(t *testing.T) {
	p, env := newRA(t, 1, 4)
	p.OnInvoke(event.Message{ID: 0, From: 1, To: 2})
	wires := env.TakeSent()
	if len(wires) != 3 {
		t.Fatalf("sent %d wires, want 3 REQUESTs", len(wires))
	}
	seen := map[event.ProcID]bool{}
	for _, w := range wires {
		if w.Kind != protocol.ControlWire || w.Ctrl != ctrlRARequest {
			t.Fatalf("wire = %+v", w)
		}
		seen[w.To] = true
	}
	if seen[1] || len(seen) != 3 {
		t.Fatalf("requests to %v", seen)
	}
}

func TestRASingleProcessShortCircuit(t *testing.T) {
	p, env := newRA(t, 0, 1)
	p.OnInvoke(event.Message{ID: 0, From: 0, To: 0})
	w, ok := env.LastSent()
	if !ok || w.Kind != protocol.UserWire {
		t.Fatalf("wire = %+v, want immediate user send", w)
	}
}

func TestRAEntersCSAfterAllReplies(t *testing.T) {
	p, env := newRA(t, 0, 3)
	p.OnInvoke(event.Message{ID: 5, From: 0, To: 2})
	env.TakeSent()
	p.OnReceive(protocol.Wire{From: 1, Kind: protocol.ControlWire, Ctrl: ctrlRAReply})
	if len(env.Sent) != 0 {
		t.Fatal("one reply is not enough at n=3")
	}
	p.OnReceive(protocol.Wire{From: 2, Kind: protocol.ControlWire, Ctrl: ctrlRAReply})
	w, ok := env.LastSent()
	if !ok || w.Kind != protocol.UserWire || w.Msg != 5 {
		t.Fatalf("wire = %+v, want user m5", w)
	}
}

func TestRAPriorityDefersLowerClaims(t *testing.T) {
	p, env := newRA(t, 0, 3)
	p.OnInvoke(event.Message{ID: 0, From: 0, To: 1})
	env.TakeSent()
	// P0 requested with ts=1. A competing request with a later timestamp
	// must be deferred...
	later := binary.AppendUvarint(nil, 9)
	p.OnReceive(protocol.Wire{From: 2, Kind: protocol.ControlWire, Ctrl: ctrlRARequest, Tag: later})
	if len(env.Sent) != 0 {
		t.Fatal("later claim must be deferred while we hold priority")
	}
	// ...while an earlier one gets an immediate reply.
	earlier := binary.AppendUvarint(nil, 0)
	p.OnReceive(protocol.Wire{From: 1, Kind: protocol.ControlWire, Ctrl: ctrlRARequest, Tag: earlier})
	w, ok := env.LastSent()
	if !ok || w.Ctrl != ctrlRAReply || w.To != 1 {
		t.Fatalf("wire = %+v, want REPLY to P1", w)
	}
}

func TestRAAckReleasesAndAnswersDeferred(t *testing.T) {
	p, env := newRA(t, 0, 3)
	p.OnInvoke(event.Message{ID: 0, From: 0, To: 1})
	env.TakeSent()
	later := binary.AppendUvarint(nil, 9)
	p.OnReceive(protocol.Wire{From: 2, Kind: protocol.ControlWire, Ctrl: ctrlRARequest, Tag: later})
	// Complete the handshake: replies, then the delivery ack.
	p.OnReceive(protocol.Wire{From: 1, Kind: protocol.ControlWire, Ctrl: ctrlRAReply})
	p.OnReceive(protocol.Wire{From: 2, Kind: protocol.ControlWire, Ctrl: ctrlRAReply})
	env.TakeSent() // the user message
	p.OnReceive(protocol.Wire{From: 1, Kind: protocol.ControlWire, Ctrl: ctrlRAAck})
	w, ok := env.LastSent()
	if !ok || w.Ctrl != ctrlRAReply || w.To != 2 {
		t.Fatalf("wire = %+v, want deferred REPLY to P2", w)
	}
}

func TestRAReceiverDeliversAndAcks(t *testing.T) {
	p, env := newRA(t, 2, 3)
	p.OnReceive(protocol.Wire{From: 0, To: 2, Kind: protocol.UserWire, Msg: 7})
	if len(env.Delivered) != 1 || env.Delivered[0] != 7 {
		t.Fatalf("delivered = %v", env.Delivered)
	}
	w, ok := env.LastSent()
	if !ok || w.Ctrl != ctrlRAAck || w.To != 0 {
		t.Fatalf("wire = %+v, want ACK to sender", w)
	}
}

func TestRAMalformedRequestIgnored(t *testing.T) {
	p, env := newRA(t, 0, 2)
	p.OnReceive(protocol.Wire{From: 1, Kind: protocol.ControlWire, Ctrl: ctrlRARequest, Tag: nil})
	if len(env.Sent) != 0 {
		t.Fatal("malformed request must be dropped")
	}
	// A stray REPLY while not requesting must not panic or enter CS.
	p.OnReceive(protocol.Wire{From: 1, Kind: protocol.ControlWire, Ctrl: ctrlRAReply})
	if len(env.Sent) != 0 {
		t.Fatal("stray reply must be ignored")
	}
}

func TestBeforePriority(t *testing.T) {
	if !before(1, 0, 2, 1) || before(2, 1, 1, 0) {
		t.Error("lower timestamp must win")
	}
	if !before(3, 0, 3, 1) || before(3, 1, 3, 0) {
		t.Error("ties break by process id")
	}
}
