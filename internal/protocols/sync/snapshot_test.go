package sync

import (
	"encoding/binary"
	"reflect"
	"testing"

	"msgorder/internal/event"
	"msgorder/internal/protocol"
	"msgorder/internal/protocols/ptest"
)

func ctrl(from, to event.ProcID, c uint8, tag []byte) protocol.Wire {
	return protocol.Wire{From: from, To: to, Kind: protocol.ControlWire, Ctrl: c, Tag: tag}
}

func msgIDTag(id event.MsgID) []byte {
	return binary.AppendUvarint(nil, uint64(id))
}

// TestSequencerSnapshotMidGrant crashes the sequencer while one slot is
// granted and another queued: the restored clone must hand out the
// queued grant on DONE exactly like the original.
func TestSequencerSnapshotMidGrant(t *testing.T) {
	seq := Maker()
	env := ptest.NewEnv(0, 3)
	seq.Init(env)
	seq.OnReceive(ctrl(1, 0, ctrlReq, msgIDTag(5))) // granted: GO to P1
	seq.OnReceive(ctrl(2, 0, ctrlReq, msgIDTag(6))) // queued behind the busy slot
	sent := env.TakeSent()
	if len(sent) != 1 || sent[0].To != 1 || sent[0].Ctrl != ctrlGo {
		t.Fatalf("sent = %+v, want one GO to P1", sent)
	}

	clone := Maker()
	cenv := ptest.NewEnv(0, 3)
	clone.Init(cenv)
	ptest.RestoreClone(t, seq, clone)

	clone.OnReceive(ctrl(1, 0, ctrlDone, nil))
	sent = cenv.TakeSent()
	if len(sent) != 1 || sent[0].To != 2 || sent[0].Ctrl != ctrlGo ||
		!reflect.DeepEqual(sent[0].Tag, msgIDTag(6)) {
		t.Fatalf("after DONE, restored sequencer sent %+v, want GO(m6) to P2", sent)
	}
}

// TestSenderSnapshotKeepsPending crashes a sender between REQ and GO.
func TestSenderSnapshotKeepsPending(t *testing.T) {
	snd := Maker()
	env := ptest.NewEnv(1, 3)
	snd.Init(env)
	snd.OnInvoke(event.Message{ID: 5, From: 1, To: 2, Color: event.ColorRed})
	env.TakeSent() // the REQ

	clone := Maker()
	cenv := ptest.NewEnv(1, 3)
	clone.Init(cenv)
	ptest.RestoreClone(t, snd, clone)

	clone.OnReceive(ctrl(0, 1, ctrlGo, msgIDTag(5)))
	sent := cenv.TakeSent()
	if len(sent) != 1 || sent[0].Kind != protocol.UserWire || sent[0].Msg != 5 ||
		sent[0].To != 2 || sent[0].Color != event.ColorRed {
		t.Fatalf("after GO, restored sender sent %+v, want user m5 to P2", sent)
	}
}

// TestRASnapshotMidAcquisition crashes an RA process mid lock
// acquisition with a deferred claimant.
func TestRASnapshotMidAcquisition(t *testing.T) {
	p := RAMaker()
	env := ptest.NewEnv(1, 3)
	p.Init(env)
	p.OnInvoke(event.Message{ID: 7, From: 1, To: 0})
	if sent := env.TakeSent(); len(sent) != 2 {
		t.Fatalf("request fanout = %d wires, want 2", len(sent))
	}
	// A competing claim with the same timestamp loses the tie-break to
	// us, so it is deferred.
	p.OnReceive(ctrl(2, 1, ctrlRARequest, binary.AppendUvarint(nil, 1)))
	if sent := env.TakeSent(); len(sent) != 0 {
		t.Fatalf("deferred claim answered early: %+v", sent)
	}

	clone := RAMaker()
	cenv := ptest.NewEnv(1, 3)
	clone.Init(cenv)
	ptest.RestoreClone(t, p, clone)

	// Both replies arrive: the clone enters the critical section.
	clone.OnReceive(ctrl(0, 1, ctrlRAReply, nil))
	clone.OnReceive(ctrl(2, 1, ctrlRAReply, nil))
	sent := cenv.TakeSent()
	if len(sent) != 1 || sent[0].Kind != protocol.UserWire || sent[0].Msg != 7 {
		t.Fatalf("after replies, restored RA sent %+v, want user m7", sent)
	}
	// The ack releases the lock and answers the deferred claimant.
	clone.OnReceive(ctrl(0, 1, ctrlRAAck, nil))
	sent = cenv.TakeSent()
	if len(sent) != 1 || sent[0].Ctrl != ctrlRAReply || sent[0].To != 2 {
		t.Fatalf("after ack, restored RA sent %+v, want reply to deferred P2", sent)
	}
}
