// Package sync implements a logically synchronous ordering protocol — the
// general-class witness of Theorem 1.1. The paper proves no tagged
// protocol can implement X_sync; this one uses explicit control messages:
//
//	sender  --REQ-->  sequencer          (request a global slot)
//	sender  <--GO--   sequencer          (slot granted, exclusively)
//	sender  --user message--> receiver   (delivered on receipt)
//	receiver --DONE--> sequencer         (slot released)
//
// Process 0 acts as sequencer. At most one user message is in flight at
// any instant, so every message occupies an exclusive global window and
// the user view admits the vertical-arrow numbering T of the SYNC
// definition: each message costs three control wires.
//
// This is deliberately the simplest member of the class; decentralized
// algorithms (Bagrodia's binary rendezvous, CSP guard implementations)
// trade the central sequencer for more intricate control traffic, but by
// Theorem 4.2 every one of them must send control messages.
package sync

import (
	"encoding/binary"

	"msgorder/internal/event"
	"msgorder/internal/protocol"
)

// Control message types.
const (
	ctrlReq  uint8 = iota + 1 // sender -> sequencer: please grant msg
	ctrlGo                    // sequencer -> sender: slot granted
	ctrlDone                  // receiver -> sequencer: slot finished
)

// sequencerID is the process acting as the global sequencer.
const sequencerID event.ProcID = 0

// Process is one sync protocol instance.
type Process struct {
	env protocol.Env
	// Sender state: messages invoked but not yet granted.
	pending map[event.MsgID]event.Message
	// Sequencer state (only used at process 0).
	queue []grant
	busy  bool
}

type grant struct {
	sender event.ProcID
	msg    event.MsgID
}

var (
	_ protocol.Process   = (*Process)(nil)
	_ protocol.Describer = (*Process)(nil)
)

// Maker builds sync protocol instances.
func Maker() protocol.Process { return &Process{} }

// Describe declares the general capability class.
func (p *Process) Describe() protocol.Descriptor {
	return protocol.Descriptor{Name: "sync-sequencer", Class: protocol.General}
}

// Init prepares sender and sequencer state.
func (p *Process) Init(env protocol.Env) {
	p.env = env
	p.pending = make(map[event.MsgID]event.Message)
}

// OnInvoke buffers the message and requests a slot from the sequencer.
func (p *Process) OnInvoke(m event.Message) {
	p.pending[m.ID] = m
	p.env.Send(protocol.Wire{
		To:   sequencerID,
		Kind: protocol.ControlWire,
		Ctrl: ctrlReq,
		Tag:  binary.AppendUvarint(nil, uint64(m.ID)),
	})
}

// OnReceive handles user deliveries and the three control types.
func (p *Process) OnReceive(w protocol.Wire) {
	switch w.Kind {
	case protocol.UserWire:
		p.env.Deliver(w.Msg)
		p.env.Send(protocol.Wire{
			To:   sequencerID,
			Kind: protocol.ControlWire,
			Ctrl: ctrlDone,
		})
	case protocol.ControlWire:
		p.onControl(w)
	}
}

func (p *Process) onControl(w protocol.Wire) {
	switch w.Ctrl {
	case ctrlReq:
		id, n := binary.Uvarint(w.Tag)
		if n <= 0 {
			return
		}
		p.queue = append(p.queue, grant{sender: w.From, msg: event.MsgID(id)})
		p.pump()
	case ctrlDone:
		p.busy = false
		p.pump()
	case ctrlGo:
		id, n := binary.Uvarint(w.Tag)
		if n <= 0 {
			return
		}
		m, ok := p.pending[event.MsgID(id)]
		if !ok {
			return
		}
		delete(p.pending, m.ID)
		p.env.Send(protocol.Wire{
			To:    m.To,
			Kind:  protocol.UserWire,
			Msg:   m.ID,
			Color: m.Color,
		})
	}
}

// pump grants the next queued slot when idle (sequencer only).
func (p *Process) pump() {
	if p.busy || len(p.queue) == 0 {
		return
	}
	g := p.queue[0]
	p.queue = p.queue[1:]
	p.busy = true
	p.env.Send(protocol.Wire{
		To:   g.sender,
		Kind: protocol.ControlWire,
		Ctrl: ctrlGo,
		Tag:  binary.AppendUvarint(nil, uint64(g.msg)),
	})
}
