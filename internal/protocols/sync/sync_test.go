package sync

import (
	"reflect"
	"testing"

	"msgorder/internal/event"
	"msgorder/internal/protocol"
	"msgorder/internal/protocols/ptest"
)

func newProc(t *testing.T, id event.ProcID, n int) (*Process, *ptest.Env) {
	t.Helper()
	env := ptest.NewEnv(id, n)
	p, ok := Maker().(*Process)
	if !ok {
		t.Fatal("Maker did not return *Process")
	}
	p.Init(env)
	return p, env
}

func TestDescribe(t *testing.T) {
	p, _ := newProc(t, 0, 3)
	if d := p.Describe(); d.Class != protocol.General {
		t.Fatalf("descriptor = %+v", d)
	}
}

func TestInvokeSendsReq(t *testing.T) {
	p, env := newProc(t, 1, 3)
	p.OnInvoke(event.Message{ID: 4, From: 1, To: 2})
	w, ok := env.LastSent()
	if !ok || w.Kind != protocol.ControlWire || w.Ctrl != ctrlReq || w.To != sequencerID {
		t.Fatalf("wire = %+v, want REQ to sequencer", w)
	}
	if len(env.Sent) != 1 {
		t.Fatal("user message must be buffered until GO")
	}
}

func TestSequencerSerializesGrants(t *testing.T) {
	seq, env := newProc(t, 0, 3)
	// Two REQs arrive.
	req := func(from event.ProcID, id uint64) protocol.Wire {
		return protocol.Wire{From: from, To: 0, Kind: protocol.ControlWire,
			Ctrl: ctrlReq, Tag: []byte{byte(id)}}
	}
	seq.OnReceive(req(1, 4))
	seq.OnReceive(req(2, 5))
	wires := env.TakeSent()
	if len(wires) != 1 {
		t.Fatalf("grants = %d, want 1 (serialized)", len(wires))
	}
	if wires[0].Ctrl != ctrlGo || wires[0].To != 1 {
		t.Fatalf("grant = %+v", wires[0])
	}
	// DONE releases the slot; the next grant goes out.
	seq.OnReceive(protocol.Wire{From: 2, To: 0, Kind: protocol.ControlWire, Ctrl: ctrlDone})
	wires = env.TakeSent()
	if len(wires) != 1 || wires[0].To != 2 {
		t.Fatalf("second grant = %+v", wires)
	}
}

func TestGoReleasesBufferedMessage(t *testing.T) {
	p, env := newProc(t, 1, 3)
	p.OnInvoke(event.Message{ID: 4, From: 1, To: 2, Color: event.ColorRed})
	env.TakeSent() // discard REQ
	p.onControl(protocol.Wire{From: 0, Kind: protocol.ControlWire, Ctrl: ctrlGo, Tag: []byte{4}})
	w, ok := env.LastSent()
	if !ok || w.Kind != protocol.UserWire || w.Msg != 4 || w.To != 2 || w.Color != event.ColorRed {
		t.Fatalf("wire = %+v, want user m4 to P2", w)
	}
}

func TestGoForUnknownMessageIgnored(t *testing.T) {
	p, env := newProc(t, 1, 3)
	p.onControl(protocol.Wire{From: 0, Kind: protocol.ControlWire, Ctrl: ctrlGo, Tag: []byte{9}})
	if len(env.Sent) != 0 {
		t.Fatal("unknown GO must be ignored")
	}
}

func TestReceiverDeliversAndAcks(t *testing.T) {
	p, env := newProc(t, 2, 3)
	p.OnReceive(protocol.Wire{From: 1, To: 2, Kind: protocol.UserWire, Msg: 4})
	if !reflect.DeepEqual(env.DeliveredSeq(), []int{4}) {
		t.Fatalf("delivered = %v", env.DeliveredSeq())
	}
	w, ok := env.LastSent()
	if !ok || w.Ctrl != ctrlDone || w.To != sequencerID {
		t.Fatalf("wire = %+v, want DONE to sequencer", w)
	}
}

func TestMalformedControlIgnored(t *testing.T) {
	p, env := newProc(t, 0, 2)
	p.OnReceive(protocol.Wire{From: 1, Kind: protocol.ControlWire, Ctrl: ctrlReq, Tag: nil})
	p.OnReceive(protocol.Wire{From: 1, Kind: protocol.ControlWire, Ctrl: ctrlGo, Tag: nil})
	p.OnReceive(protocol.Wire{From: 1, Kind: protocol.ControlWire, Ctrl: 99})
	if len(env.Sent) != 0 && env.Sent[0].Ctrl == ctrlGo {
		t.Fatal("malformed REQ must not grant")
	}
}
