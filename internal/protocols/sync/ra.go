package sync

import (
	"encoding/binary"

	"msgorder/internal/event"
	"msgorder/internal/protocol"
	"msgorder/internal/vc"
)

// RA is the decentralized member of the general class: logically
// synchronous ordering via Ricart–Agrawala mutual exclusion on a virtual
// global send-lock. To emit a message a process acquires the lock
// (2(n-1) control messages), transmits, and releases after the receiver's
// delivery acknowledgement — so message windows are disjoint in real time
// and the run admits the SYNC numbering.
//
// Compared with the sequencer (3 control messages per user message,
// central bottleneck), RA pays 2(n-1)+1 but spreads the load: the
// centralized-vs-decentralized ablation of DESIGN.md. The paper's
// Theorem 4.2 says both MUST send control messages; neither can be
// replaced by tagging.
type RA struct {
	env   protocol.Env
	clock vc.Lamport

	queue      []event.Message // invoked, not yet transmitted
	requesting bool
	reqTS      uint64
	replies    int
	deferred   []event.ProcID
}

// Control message types (disjoint from the sequencer's).
const (
	ctrlRARequest uint8 = iota + 10
	ctrlRAReply
	ctrlRAAck
)

var (
	_ protocol.Process   = (*RA)(nil)
	_ protocol.Describer = (*RA)(nil)
)

// RAMaker builds Ricart–Agrawala sync instances.
func RAMaker() protocol.Process { return &RA{} }

// Describe declares the general capability class.
func (p *RA) Describe() protocol.Descriptor {
	return protocol.Descriptor{Name: "sync-ra", Class: protocol.General}
}

// Init stores the environment.
func (p *RA) Init(env protocol.Env) { p.env = env }

// OnInvoke queues the message and starts acquiring the send-lock.
func (p *RA) OnInvoke(m event.Message) {
	p.queue = append(p.queue, m)
	p.tryRequest()
}

func (p *RA) tryRequest() {
	if p.requesting || len(p.queue) == 0 {
		return
	}
	p.requesting = true
	p.reqTS = p.clock.Tick()
	p.replies = 0
	n := p.env.NumProcs()
	if n == 1 {
		p.enterCS()
		return
	}
	tag := binary.AppendUvarint(nil, p.reqTS)
	for j := 0; j < n; j++ {
		if event.ProcID(j) == p.env.Self() {
			continue
		}
		p.env.Send(protocol.Wire{
			To:   event.ProcID(j),
			Kind: protocol.ControlWire,
			Ctrl: ctrlRARequest,
			Tag:  tag,
		})
	}
}

// enterCS transmits the head of the queue; the lock is released by the
// receiver's acknowledgement.
func (p *RA) enterCS() {
	m := p.queue[0]
	p.queue = p.queue[1:]
	p.env.Send(protocol.Wire{
		To:    m.To,
		Kind:  protocol.UserWire,
		Msg:   m.ID,
		Color: m.Color,
	})
}

// OnReceive handles user deliveries and the three control types.
func (p *RA) OnReceive(w protocol.Wire) {
	switch w.Kind {
	case protocol.UserWire:
		p.env.Deliver(w.Msg)
		p.env.Send(protocol.Wire{
			To:   w.From,
			Kind: protocol.ControlWire,
			Ctrl: ctrlRAAck,
		})
	case protocol.ControlWire:
		p.onControl(w)
	}
}

func (p *RA) onControl(w protocol.Wire) {
	switch w.Ctrl {
	case ctrlRARequest:
		ts, n := binary.Uvarint(w.Tag)
		if n <= 0 {
			return
		}
		p.clock.Observe(ts)
		if p.requesting && before(p.reqTS, p.env.Self(), ts, w.From) {
			// Our claim has priority: answer after we release.
			p.deferred = append(p.deferred, w.From)
			return
		}
		p.reply(w.From)
	case ctrlRAReply:
		if !p.requesting {
			return
		}
		p.replies++
		if p.replies == p.env.NumProcs()-1 {
			p.enterCS()
		}
	case ctrlRAAck:
		// Lock released: answer deferred claimants, move to the next
		// queued message.
		p.requesting = false
		for _, j := range p.deferred {
			p.reply(j)
		}
		p.deferred = p.deferred[:0]
		p.tryRequest()
	}
}

func (p *RA) reply(to event.ProcID) {
	p.env.Send(protocol.Wire{
		To:   to,
		Kind: protocol.ControlWire,
		Ctrl: ctrlRAReply,
	})
}

// before reports whether claim (ts1, p1) has priority over (ts2, p2):
// lower timestamp wins, process id breaks ties.
func before(ts1 uint64, p1 event.ProcID, ts2 uint64, p2 event.ProcID) bool {
	if ts1 != ts2 {
		return ts1 < ts2
	}
	return p1 < p2
}
