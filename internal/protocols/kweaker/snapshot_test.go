package kweaker

import (
	"reflect"
	"testing"

	"msgorder/internal/event"
	"msgorder/internal/protocols/ptest"
)

func TestSnapshotMidStream(t *testing.T) {
	mk := Maker(1)
	sender := mk()
	senv := ptest.NewEnv(0, 2)
	sender.Init(senv)
	for id := 0; id < 3; id++ {
		sender.OnInvoke(event.Message{ID: event.MsgID(id), From: 0, To: 1})
	}
	wires := senv.TakeSent()

	// seq 3 arrives first: with k=1 it must wait for the contiguous
	// prefix to reach seq 1.
	recv := mk()
	renv := ptest.NewEnv(1, 2)
	recv.Init(renv)
	recv.OnReceive(wires[2])
	if len(renv.Delivered) != 0 {
		t.Fatalf("delivered %v outside the slack window", renv.DeliveredSeq())
	}

	clone := mk()
	cenv := ptest.NewEnv(1, 2)
	clone.Init(cenv)
	ptest.RestoreClone(t, recv, clone)

	clone.OnReceive(wires[0]) // seq 1: eligible, then seq 3 drains
	clone.OnReceive(wires[1])
	if got := cenv.DeliveredSeq(); !reflect.DeepEqual(got, []int{0, 2, 1}) {
		t.Fatalf("restored clone delivered %v, want [0 2 1]", got)
	}
}
