package kweaker

import (
	"encoding/binary"
	"reflect"
	"testing"

	"msgorder/internal/event"
	"msgorder/internal/protocol"
	"msgorder/internal/protocols/ptest"
)

func newProc(t *testing.T, k int, id event.ProcID) (*Process, *ptest.Env) {
	t.Helper()
	env := ptest.NewEnv(id, 2)
	p, ok := Maker(k)().(*Process)
	if !ok {
		t.Fatal("Maker did not return *Process")
	}
	p.Init(env)
	return p, env
}

func wire(from event.ProcID, id event.MsgID, seq uint64) protocol.Wire {
	return protocol.Wire{
		From: from,
		Kind: protocol.UserWire,
		Msg:  id,
		Tag:  binary.AppendUvarint(nil, seq),
	}
}

func TestDescribe(t *testing.T) {
	p, _ := newProc(t, 1, 0)
	if d := p.Describe(); d.Class != protocol.Tagged {
		t.Fatalf("descriptor = %+v", d)
	}
}

func TestNegativeKClamped(t *testing.T) {
	p, _ := newProc(t, -5, 0)
	if p.k != 0 {
		t.Fatalf("k = %d, want 0", p.k)
	}
}

func TestSequencesStartAtOne(t *testing.T) {
	p, env := newProc(t, 1, 0)
	p.OnInvoke(event.Message{ID: 0, From: 0, To: 1})
	w, _ := env.LastSent()
	seq, _ := binary.Uvarint(w.Tag)
	if seq != 1 {
		t.Fatalf("first seq = %d, want 1", seq)
	}
}

func TestZeroSlackIsFIFO(t *testing.T) {
	p, env := newProc(t, 0, 1)
	p.OnReceive(wire(0, 11, 2))
	if len(env.Delivered) != 0 {
		t.Fatal("k=0 must hold seq 2 until seq 1")
	}
	p.OnReceive(wire(0, 10, 1))
	if !reflect.DeepEqual(env.DeliveredSeq(), []int{10, 11}) {
		t.Fatalf("delivered = %v", env.DeliveredSeq())
	}
}

func TestSlackOneAllowsSingleOvertake(t *testing.T) {
	p, env := newProc(t, 1, 1)
	p.OnReceive(wire(0, 11, 2)) // seq 2 with slack 1: eligible immediately
	if !reflect.DeepEqual(env.DeliveredSeq(), []int{11}) {
		t.Fatalf("delivered = %v: seq 2 is within the slack window", env.DeliveredSeq())
	}
	p.OnReceive(wire(0, 12, 3)) // seq 3 needs contiguous >= 1
	if len(env.Delivered) != 1 {
		t.Fatal("seq 3 must wait: seq 1 still missing")
	}
	p.OnReceive(wire(0, 10, 1))
	if !reflect.DeepEqual(env.DeliveredSeq(), []int{11, 10, 12}) {
		t.Fatalf("delivered = %v", env.DeliveredSeq())
	}
}

func TestSlackBoundsChainOvertake(t *testing.T) {
	// With k=1 a message may never overtake a chain of 2: seq 4 waits
	// until contiguous >= 2.
	p, env := newProc(t, 1, 1)
	p.OnReceive(wire(0, 14, 4))
	p.OnReceive(wire(0, 13, 3))
	if len(env.Delivered) != 0 {
		t.Fatal("seqs 3 and 4 must wait for the prefix")
	}
	p.OnReceive(wire(0, 11, 1))
	// contiguous=1: seq 3 eligible (3-2=1), seq 4 not (needs 2).
	if !reflect.DeepEqual(env.DeliveredSeq(), []int{11, 13}) {
		t.Fatalf("delivered = %v", env.DeliveredSeq())
	}
	p.OnReceive(wire(0, 12, 2))
	if !reflect.DeepEqual(env.DeliveredSeq(), []int{11, 13, 12, 14}) {
		t.Fatalf("delivered = %v", env.DeliveredSeq())
	}
}

func TestPerChannelIndependence(t *testing.T) {
	env := ptest.NewEnv(1, 3)
	p := Maker(0)().(*Process)
	p.Init(env)
	p.OnReceive(wire(0, 20, 2)) // held, from P0
	p.OnReceive(wire(2, 30, 1)) // from P2, in order
	if !reflect.DeepEqual(env.DeliveredSeq(), []int{30}) {
		t.Fatalf("delivered = %v", env.DeliveredSeq())
	}
}

func TestMalformedAndControl(t *testing.T) {
	p, env := newProc(t, 1, 1)
	p.OnReceive(protocol.Wire{From: 0, Kind: protocol.UserWire, Msg: 1, Tag: nil})
	p.OnReceive(protocol.Wire{From: 0, Kind: protocol.ControlWire})
	if len(env.Delivered) != 0 {
		t.Fatal("nothing should deliver")
	}
}
