// Package kweaker implements k-weaker FIFO ordering on each channel: a
// message may be overtaken by later sends on its channel, but never by a
// chain of more than k of them. Formally it implements the guarded
// k-weaker specification of Section 5 restricted to one channel,
//
//	forbidden x1 .. x_{k+2} (same channel) :
//	    x1.s -> x2.s && ... && x_{k+1}.s -> x_{k+2}.s && x_{k+2}.r -> x1.r
//
// whose predicate graph has a single cycle of order 1, so tagging
// suffices. Each wire carries a channel sequence number; the receiver
// delivers sequence n only once every sequence ≤ n-k-1 has been
// delivered. k = 0 degenerates to FIFO; k → ∞ degenerates to the tagless
// protocol.
package kweaker

import (
	"encoding/binary"

	"msgorder/internal/event"
	"msgorder/internal/protocol"
)

// Process is one k-weaker protocol instance.
type Process struct {
	env protocol.Env
	k   uint64
	// Sender side: next sequence per destination (sequences start at 1).
	nextSeq map[event.ProcID]uint64
	// Receiver side, per source.
	in map[event.ProcID]*inbound
}

type inbound struct {
	delivered  map[uint64]bool
	contiguous uint64 // highest c with 1..c all delivered
	held       []heldMsg
}

type heldMsg struct {
	id  event.MsgID
	seq uint64
}

var (
	_ protocol.Process   = (*Process)(nil)
	_ protocol.Describer = (*Process)(nil)
)

// Maker builds k-weaker instances with the given slack k.
func Maker(k int) protocol.Maker {
	if k < 0 {
		k = 0
	}
	return func() protocol.Process { return &Process{k: uint64(k)} }
}

// Describe declares the tagged capability class.
func (p *Process) Describe() protocol.Descriptor {
	return protocol.Descriptor{Name: "kweaker", Class: protocol.Tagged}
}

// Init prepares per-channel state.
func (p *Process) Init(env protocol.Env) {
	p.env = env
	p.nextSeq = make(map[event.ProcID]uint64)
	p.in = make(map[event.ProcID]*inbound)
}

// OnInvoke stamps the channel sequence and sends immediately.
func (p *Process) OnInvoke(m event.Message) {
	seq := p.nextSeq[m.To] + 1
	p.nextSeq[m.To] = seq
	p.env.Send(protocol.Wire{
		To:    m.To,
		Kind:  protocol.UserWire,
		Msg:   m.ID,
		Color: m.Color,
		Tag:   binary.AppendUvarint(nil, seq),
	})
}

// OnReceive buffers and delivers everything within the slack window.
func (p *Process) OnReceive(w protocol.Wire) {
	if w.Kind != protocol.UserWire {
		return
	}
	seq, n := binary.Uvarint(w.Tag)
	if n <= 0 {
		return
	}
	ib := p.in[w.From]
	if ib == nil {
		ib = &inbound{delivered: make(map[uint64]bool)}
		p.in[w.From] = ib
	}
	ib.held = append(ib.held, heldMsg{id: w.Msg, seq: seq})
	p.drain(ib)
}

// eligible: sequence n may be delivered once every sequence ≤ n-k-1 has
// been delivered, i.e. the contiguous prefix reaches n-k-1.
func (p *Process) eligible(ib *inbound, h heldMsg) bool {
	if h.seq <= p.k+1 {
		return true // nothing old enough to wait for
	}
	return ib.contiguous >= h.seq-p.k-1
}

func (p *Process) drain(ib *inbound) {
	for {
		progress := false
		for i := 0; i < len(ib.held); i++ {
			h := ib.held[i]
			if !p.eligible(ib, h) {
				continue
			}
			ib.held = append(ib.held[:i], ib.held[i+1:]...)
			// Commit state before delivering (Deliver may reenter).
			ib.delivered[h.seq] = true
			for ib.delivered[ib.contiguous+1] {
				ib.contiguous++
			}
			p.env.Deliver(h.id)
			progress = true
			break
		}
		if !progress {
			return
		}
	}
}
