package kweaker

import (
	"sort"

	"msgorder/internal/event"
	"msgorder/internal/protocol"
	"msgorder/internal/snapio"
)

var _ protocol.Snapshotter = (*Process)(nil)

// Snapshot encodes the sequencing and inbound state deterministically.
// The slack k is configuration, not state, and is not snapshotted. Held
// buffers are encoded in arrival order — the drain scan is
// order-sensitive, so order IS state.
func (p *Process) Snapshot() []byte {
	var w snapio.Writer
	w.Int(len(p.nextSeq))
	for _, dst := range sortedKeys(p.nextSeq) {
		w.Int(int(dst))
		w.U64(p.nextSeq[dst])
	}
	w.Int(len(p.in))
	for _, src := range sortedKeys(p.in) {
		ib := p.in[src]
		w.Int(int(src))
		w.U64(ib.contiguous)
		w.Int(len(ib.delivered))
		seqs := make([]uint64, 0, len(ib.delivered))
		for s := range ib.delivered {
			seqs = append(seqs, s)
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		for _, s := range seqs {
			w.U64(s)
		}
		w.Int(len(ib.held))
		for _, h := range ib.held {
			w.Int(int(h.id))
			w.U64(h.seq)
		}
	}
	return w.Out()
}

// Restore rebuilds the state onto a freshly Init'd instance.
func (p *Process) Restore(b []byte) error {
	r := snapio.NewReader(b)
	nextSeq := make(map[event.ProcID]uint64)
	for i, n := 0, r.Int(); i < n; i++ {
		dst := event.ProcID(r.Int())
		nextSeq[dst] = r.U64()
	}
	in := make(map[event.ProcID]*inbound)
	for i, n := 0, r.Int(); i < n; i++ {
		src := event.ProcID(r.Int())
		ib := &inbound{delivered: make(map[uint64]bool), contiguous: r.U64()}
		for j, k := 0, r.Int(); j < k; j++ {
			ib.delivered[r.U64()] = true
		}
		for j, k := 0, r.Int(); j < k; j++ {
			h := heldMsg{id: event.MsgID(r.Int()), seq: r.U64()}
			ib.held = append(ib.held, h)
		}
		in[src] = ib
	}
	if err := r.Close(); err != nil {
		return err
	}
	p.nextSeq, p.in = nextSeq, in
	return nil
}

// sortedKeys returns m's keys in ascending order.
func sortedKeys[V any](m map[event.ProcID]V) []event.ProcID {
	keys := make([]event.ProcID, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
