// Package ptest provides a scripted in-memory environment for
// unit-testing protocol instances without a simulator: tests inject
// invokes and receives directly and inspect the wires sent and messages
// delivered.
package ptest

import (
	"msgorder/internal/event"
	"msgorder/internal/protocol"
)

// Env is a recording protocol.Env. The zero value is not ready; use
// NewEnv.
type Env struct {
	ID        event.ProcID
	N         int
	Sent      []protocol.Wire
	Delivered []event.MsgID
}

var _ protocol.Env = (*Env)(nil)

// NewEnv returns an environment for process id of n.
func NewEnv(id event.ProcID, n int) *Env {
	return &Env{ID: id, N: n}
}

// Self returns the process id.
func (e *Env) Self() event.ProcID { return e.ID }

// NumProcs returns the process count.
func (e *Env) NumProcs() int { return e.N }

// Send records the wire, stamping From like the real harness.
func (e *Env) Send(w protocol.Wire) {
	w.From = e.ID
	e.Sent = append(e.Sent, w)
}

// Deliver records the delivery.
func (e *Env) Deliver(id event.MsgID) {
	e.Delivered = append(e.Delivered, id)
}

// TakeSent returns and clears the sent wires.
func (e *Env) TakeSent() []protocol.Wire {
	out := e.Sent
	e.Sent = nil
	return out
}

// LastSent returns the most recent wire, or ok=false.
func (e *Env) LastSent() (protocol.Wire, bool) {
	if len(e.Sent) == 0 {
		return protocol.Wire{}, false
	}
	return e.Sent[len(e.Sent)-1], true
}

// DeliveredSeq reports the delivered ids as plain ints for easy
// comparison.
func (e *Env) DeliveredSeq() []int {
	out := make([]int, len(e.Delivered))
	for i, id := range e.Delivered {
		out[i] = int(id)
	}
	return out
}
