// Package ptest provides a scripted in-memory environment for
// unit-testing protocol instances without a simulator: tests inject
// invokes and receives directly and inspect the wires sent and messages
// delivered.
package ptest

import (
	"bytes"
	"testing"

	"msgorder/internal/event"
	"msgorder/internal/protocol"
)

// Env is a recording protocol.Env. The zero value is not ready; use
// NewEnv.
type Env struct {
	ID        event.ProcID
	N         int
	Sent      []protocol.Wire
	Delivered []event.MsgID
}

var _ protocol.Env = (*Env)(nil)

// NewEnv returns an environment for process id of n.
func NewEnv(id event.ProcID, n int) *Env {
	return &Env{ID: id, N: n}
}

// Self returns the process id.
func (e *Env) Self() event.ProcID { return e.ID }

// NumProcs returns the process count.
func (e *Env) NumProcs() int { return e.N }

// Send records the wire, stamping From like the real harness.
func (e *Env) Send(w protocol.Wire) {
	w.From = e.ID
	e.Sent = append(e.Sent, w)
}

// Deliver records the delivery.
func (e *Env) Deliver(id event.MsgID) {
	e.Delivered = append(e.Delivered, id)
}

// TakeSent returns and clears the sent wires.
func (e *Env) TakeSent() []protocol.Wire {
	out := e.Sent
	e.Sent = nil
	return out
}

// LastSent returns the most recent wire, or ok=false.
func (e *Env) LastSent() (protocol.Wire, bool) {
	if len(e.Sent) == 0 {
		return protocol.Wire{}, false
	}
	return e.Sent[len(e.Sent)-1], true
}

// DeliveredSeq reports the delivered ids as plain ints for easy
// comparison.
func (e *Env) DeliveredSeq() []int {
	out := make([]int, len(e.Delivered))
	for i, id := range e.Delivered {
		out[i] = int(id)
	}
	return out
}

// RestoreClone snapshots src and restores the snapshot into clone
// (which must already be Init'd). It fails the test unless the clone
// re-encodes to byte-identical bytes — the determinism contract of
// protocol.Snapshotter — and returns the snapshot for further checks.
func RestoreClone(t testing.TB, src, clone protocol.Process) []byte {
	t.Helper()
	s, ok := src.(protocol.Snapshotter)
	if !ok {
		t.Fatalf("%T does not implement protocol.Snapshotter", src)
	}
	c, ok := clone.(protocol.Snapshotter)
	if !ok {
		t.Fatalf("%T does not implement protocol.Snapshotter", clone)
	}
	snap := s.Snapshot()
	if err := c.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if got := c.Snapshot(); !bytes.Equal(got, snap) {
		t.Fatalf("snapshot not stable across restore:\n got %x\nwant %x", got, snap)
	}
	return snap
}
