package flush

import (
	"reflect"
	"testing"

	"msgorder/internal/event"
	"msgorder/internal/protocol"
	"msgorder/internal/protocols/ptest"
)

func newProc(t *testing.T, id event.ProcID) (*Process, *ptest.Env) {
	t.Helper()
	env := ptest.NewEnv(id, 2)
	p, ok := Maker().(*Process)
	if !ok {
		t.Fatal("Maker did not return *Process")
	}
	p.Init(env)
	return p, env
}

// sendAll invokes messages on a sender and returns the wires.
func sendAll(p *Process, env *ptest.Env, colors ...event.Color) []protocol.Wire {
	for i, c := range colors {
		p.OnInvoke(event.Message{ID: event.MsgID(i), From: env.ID, To: 1, Color: c})
	}
	return env.TakeSent()
}

func TestKindMapping(t *testing.T) {
	cases := map[event.Color]Kind{
		event.ColorNone:  Ordinary,
		event.ColorRed:   ForwardFlush,
		event.ColorBlue:  BackwardFlush,
		event.ColorGreen: TwoWayFlush,
	}
	for c, want := range cases {
		if got := KindFor(c); got != want {
			t.Errorf("KindFor(%v) = %v, want %v", c, got, want)
		}
	}
	for _, k := range []Kind{Ordinary, ForwardFlush, BackwardFlush, TwoWayFlush} {
		if k.String() == "kind(?)" {
			t.Errorf("missing String for %d", k)
		}
	}
	if Kind(99).String() != "kind(?)" {
		t.Error("unknown kind string")
	}
}

func TestDescribe(t *testing.T) {
	p, _ := newProc(t, 0)
	if d := p.Describe(); d.Class != protocol.Tagged {
		t.Fatalf("descriptor = %+v", d)
	}
}

func TestOrdinaryMessagesReorderFreely(t *testing.T) {
	s, envS := newProc(t, 0)
	r, envR := newProc(t, 1)
	wires := sendAll(s, envS, event.ColorNone, event.ColorNone, event.ColorNone)
	r.OnReceive(wires[2])
	r.OnReceive(wires[0])
	r.OnReceive(wires[1])
	if !reflect.DeepEqual(envR.DeliveredSeq(), []int{2, 0, 1}) {
		t.Fatalf("delivered = %v: ordinary messages deliver on arrival", envR.DeliveredSeq())
	}
}

func TestForwardFlushWaitsForAllEarlier(t *testing.T) {
	s, envS := newProc(t, 0)
	r, envR := newProc(t, 1)
	// m0, m1 ordinary; m2 forward flush (red).
	wires := sendAll(s, envS, event.ColorNone, event.ColorNone, event.ColorRed)
	r.OnReceive(wires[2]) // flush arrives first: must wait
	if len(envR.Delivered) != 0 {
		t.Fatal("forward flush must wait for all earlier sends")
	}
	r.OnReceive(wires[0])
	if !reflect.DeepEqual(envR.DeliveredSeq(), []int{0}) {
		t.Fatalf("delivered = %v", envR.DeliveredSeq())
	}
	r.OnReceive(wires[1])
	if !reflect.DeepEqual(envR.DeliveredSeq(), []int{0, 1, 2}) {
		t.Fatalf("delivered = %v: flush drains after the backlog", envR.DeliveredSeq())
	}
}

func TestForwardFlushDoesNotBlockLater(t *testing.T) {
	s, envS := newProc(t, 0)
	r, envR := newProc(t, 1)
	// m0 forward flush, m1 ordinary sent after: m1 may overtake m0.
	wires := sendAll(s, envS, event.ColorRed, event.ColorNone)
	r.OnReceive(wires[1])
	if !reflect.DeepEqual(envR.DeliveredSeq(), []int{1}) {
		t.Fatal("a forward flush is not a barrier for later messages")
	}
	r.OnReceive(wires[0])
	if !reflect.DeepEqual(envR.DeliveredSeq(), []int{1, 0}) {
		t.Fatalf("delivered = %v", envR.DeliveredSeq())
	}
}

func TestBackwardFlushBarrier(t *testing.T) {
	s, envS := newProc(t, 0)
	r, envR := newProc(t, 1)
	// m0 backward flush (blue), m1 ordinary after it.
	wires := sendAll(s, envS, event.ColorBlue, event.ColorNone)
	r.OnReceive(wires[1]) // must wait for the barrier
	if len(envR.Delivered) != 0 {
		t.Fatal("messages after a backward flush must wait for it")
	}
	r.OnReceive(wires[0])
	if !reflect.DeepEqual(envR.DeliveredSeq(), []int{0, 1}) {
		t.Fatalf("delivered = %v", envR.DeliveredSeq())
	}
}

func TestBackwardFlushItselfUnconstrained(t *testing.T) {
	s, envS := newProc(t, 0)
	r, envR := newProc(t, 1)
	// m0 ordinary, m1 backward flush: m1 may overtake m0.
	wires := sendAll(s, envS, event.ColorNone, event.ColorBlue)
	r.OnReceive(wires[1])
	if !reflect.DeepEqual(envR.DeliveredSeq(), []int{1}) {
		t.Fatal("a backward flush is not constrained by earlier sends")
	}
}

func TestTwoWayFlushBothDirections(t *testing.T) {
	s, envS := newProc(t, 0)
	r, envR := newProc(t, 1)
	// m0 ordinary, m1 two-way (green), m2 ordinary.
	wires := sendAll(s, envS, event.ColorNone, event.ColorGreen, event.ColorNone)
	r.OnReceive(wires[1]) // waits for m0
	r.OnReceive(wires[2]) // waits for barrier m1
	if len(envR.Delivered) != 0 {
		t.Fatal("two-way flush pins both sides")
	}
	r.OnReceive(wires[0])
	if !reflect.DeepEqual(envR.DeliveredSeq(), []int{0, 1, 2}) {
		t.Fatalf("delivered = %v", envR.DeliveredSeq())
	}
}

func TestChainedBarriers(t *testing.T) {
	s, envS := newProc(t, 0)
	r, envR := newProc(t, 1)
	// Two successive backward flushes; the second records the first as
	// its barrier.
	wires := sendAll(s, envS, event.ColorBlue, event.ColorBlue, event.ColorNone)
	r.OnReceive(wires[2])
	r.OnReceive(wires[1])
	if len(envR.Delivered) != 0 {
		t.Fatal("everything waits on the first barrier")
	}
	r.OnReceive(wires[0])
	if !reflect.DeepEqual(envR.DeliveredSeq(), []int{0, 1, 2}) {
		t.Fatalf("delivered = %v", envR.DeliveredSeq())
	}
}

func TestMalformedTags(t *testing.T) {
	r, envR := newProc(t, 1)
	for _, tag := range [][]byte{nil, {1}, {1, 0}, {1, 0, 1, 9}} {
		r.OnReceive(protocol.Wire{From: 0, Kind: protocol.UserWire, Msg: 9, Tag: tag})
	}
	r.OnReceive(protocol.Wire{From: 0, Kind: protocol.ControlWire})
	if len(envR.Delivered) != 0 {
		t.Fatal("malformed or control wires must not deliver")
	}
}
