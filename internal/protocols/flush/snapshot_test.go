package flush

import (
	"reflect"
	"testing"

	"msgorder/internal/event"
	"msgorder/internal/protocols/ptest"
)

func TestSnapshotMidStream(t *testing.T) {
	sender := Maker()
	senv := ptest.NewEnv(0, 2)
	sender.Init(senv)
	// seq 1 ordinary, seq 2 backward-flush barrier, seq 3 forward-flush.
	sender.OnInvoke(event.Message{ID: 0, From: 0, To: 1})
	sender.OnInvoke(event.Message{ID: 1, From: 0, To: 1, Color: event.ColorBlue})
	sender.OnInvoke(event.Message{ID: 2, From: 0, To: 1, Color: event.ColorRed})
	wires := senv.TakeSent()

	recv := Maker()
	renv := ptest.NewEnv(1, 2)
	recv.Init(renv)
	recv.OnReceive(wires[2]) // forward flush: must trail everything earlier
	recv.OnReceive(wires[1]) // barrier, deliverable immediately
	if got := renv.DeliveredSeq(); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("delivered %v, want [1]", got)
	}

	clone := Maker()
	cenv := ptest.NewEnv(1, 2)
	clone.Init(cenv)
	ptest.RestoreClone(t, recv, clone)

	clone.OnReceive(wires[0]) // fills the prefix; the forward flush drains
	if got := cenv.DeliveredSeq(); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("restored clone delivered %v, want [0 2]", got)
	}
}
