// Package flush implements F-channels [1]: per-channel flush primitives
// that weaken or strengthen FIFO per message. Each send names a flush
// kind:
//
//	Ordinary      — constrained only by barriers,
//	ForwardFlush  — delivered after every earlier send on the channel,
//	BackwardFlush — a barrier: every later send is delivered after it,
//	TwoWayFlush   — both.
//
// The predicate-graph analysis (Section 2, Section 4.1) shows all four
// are tagged-implementable; each user wire carries a channel sequence
// number, its flush kind, and the sequence number of the latest preceding
// barrier.
package flush

import (
	"encoding/binary"

	"msgorder/internal/event"
	"msgorder/internal/protocol"
)

// Kind selects the flush behaviour of one send.
type Kind uint8

// Flush kinds.
const (
	Ordinary Kind = iota + 1
	ForwardFlush
	BackwardFlush
	TwoWayFlush
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Ordinary:
		return "ordinary"
	case ForwardFlush:
		return "forward-flush"
	case BackwardFlush:
		return "backward-flush"
	case TwoWayFlush:
		return "two-way-flush"
	default:
		return "kind(?)"
	}
}

// waitsForAllEarlier reports whether the kind must trail every earlier
// send on its channel.
func (k Kind) waitsForAllEarlier() bool {
	return k == ForwardFlush || k == TwoWayFlush
}

// isBarrier reports whether later sends must trail this one.
func (k Kind) isBarrier() bool {
	return k == BackwardFlush || k == TwoWayFlush
}

// KindFor maps message colors to flush kinds so flush workloads can be
// expressed through the standard harness: red = forward flush, blue =
// backward flush, green = two-way flush, uncolored = ordinary.
func KindFor(c event.Color) Kind {
	switch c {
	case event.ColorRed:
		return ForwardFlush
	case event.ColorBlue:
		return BackwardFlush
	case event.ColorGreen:
		return TwoWayFlush
	default:
		return Ordinary
	}
}

// Process is one flush-channel protocol instance.
type Process struct {
	env protocol.Env
	// Sender side, per destination.
	nextSeq     map[event.ProcID]uint64
	lastBarrier map[event.ProcID]uint64 // 0 = none
	// Receiver side, per source.
	in map[event.ProcID]*inbound
}

type inbound struct {
	delivered map[uint64]bool
	// contiguous is the highest c with 1..c all delivered.
	contiguous uint64
	held       []heldMsg
}

type heldMsg struct {
	id      event.MsgID
	seq     uint64
	barrier uint64
	kind    Kind
}

var (
	_ protocol.Process   = (*Process)(nil)
	_ protocol.Describer = (*Process)(nil)
)

// Maker builds flush protocol instances.
func Maker() protocol.Process { return &Process{} }

// Describe declares the tagged capability class.
func (p *Process) Describe() protocol.Descriptor {
	return protocol.Descriptor{Name: "flush", Class: protocol.Tagged}
}

// Init prepares per-channel state.
func (p *Process) Init(env protocol.Env) {
	p.env = env
	p.nextSeq = make(map[event.ProcID]uint64)
	p.lastBarrier = make(map[event.ProcID]uint64)
	p.in = make(map[event.ProcID]*inbound)
}

// OnInvoke stamps (seq, barrier, kind) and sends immediately. The kind is
// derived from the message color via KindFor.
func (p *Process) OnInvoke(m event.Message) {
	kind := KindFor(m.Color)
	seq := p.nextSeq[m.To] + 1 // sequences start at 1; barrier 0 = none
	p.nextSeq[m.To] = seq
	barrier := p.lastBarrier[m.To]
	if kind.isBarrier() {
		p.lastBarrier[m.To] = seq
	}
	tag := binary.AppendUvarint(nil, seq)
	tag = binary.AppendUvarint(tag, barrier)
	tag = append(tag, byte(kind))
	p.env.Send(protocol.Wire{
		To:    m.To,
		Kind:  protocol.UserWire,
		Msg:   m.ID,
		Color: m.Color,
		Tag:   tag,
	})
}

// OnReceive buffers the message and delivers everything eligible.
func (p *Process) OnReceive(w protocol.Wire) {
	if w.Kind != protocol.UserWire {
		return
	}
	seq, n := binary.Uvarint(w.Tag)
	if n <= 0 {
		return
	}
	rest := w.Tag[n:]
	barrier, n2 := binary.Uvarint(rest)
	if n2 <= 0 || len(rest[n2:]) != 1 {
		return
	}
	kind := Kind(rest[n2])
	ib := p.in[w.From]
	if ib == nil {
		ib = &inbound{delivered: make(map[uint64]bool)}
		p.in[w.From] = ib
	}
	ib.held = append(ib.held, heldMsg{id: w.Msg, seq: seq, barrier: barrier, kind: kind})
	p.drain(ib)
}

// eligible applies the flush delivery conditions.
func (ib *inbound) eligible(h heldMsg) bool {
	if h.kind.waitsForAllEarlier() && ib.contiguous < h.seq-1 {
		return false
	}
	if h.barrier != 0 && !ib.delivered[h.barrier] {
		return false
	}
	return true
}

func (p *Process) drain(ib *inbound) {
	for {
		progress := false
		for i := 0; i < len(ib.held); i++ {
			h := ib.held[i]
			if !ib.eligible(h) {
				continue
			}
			ib.held = append(ib.held[:i], ib.held[i+1:]...)
			// Commit state before delivering (Deliver may reenter).
			ib.delivered[h.seq] = true
			for ib.delivered[ib.contiguous+1] {
				ib.contiguous++
			}
			p.env.Deliver(h.id)
			progress = true
			break
		}
		if !progress {
			return
		}
	}
}
