package registry

import (
	"testing"

	"msgorder/internal/classify"
)

// TestCatalogResolves pins the catalog shape: 8 protocols, resolvable
// by name, every named spec present in the catalog package.
func TestCatalogResolves(t *testing.T) {
	cat := Catalog()
	if len(cat) != 8 {
		t.Fatalf("catalog has %d protocols, want 8", len(cat))
	}
	seen := map[string]bool{}
	for _, e := range cat {
		if seen[e.Name] {
			t.Fatalf("duplicate protocol %q", e.Name)
		}
		seen[e.Name] = true
		if e.Maker == nil {
			t.Fatalf("%s: nil maker", e.Name)
		}
		got, ok := ByName(e.Name)
		if !ok || got.Name != e.Name {
			t.Fatalf("ByName(%q) = %+v, %v", e.Name, got, ok)
		}
		if e.Spec != "" && e.Pred() == nil {
			t.Fatalf("%s: spec %q has no predicate", e.Name, e.Spec)
		}
		if inst := e.Maker(); inst == nil {
			t.Fatalf("%s: maker built nil", e.Name)
		}
	}
	if _, ok := ByName("causal-bss"); !ok {
		t.Fatal("extras not resolvable")
	}
	ho, ok := ByName("handoff")
	if !ok {
		t.Fatal("handoff not resolvable")
	}
	if ho.Pred() == nil {
		t.Fatal("handoff entry has no predicate")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("unknown protocol resolved")
	}
	if names := Names(); len(names) != 11 || names[0] != "tagless" {
		t.Fatalf("Names() = %v", names)
	}
}

// TestForSpecPicksMinimalWitness pins the spec→witness walk: each
// classifier verdict maps to its class's cheapest catalog protocol,
// catalog names and raw expressions both resolve, and unimplementable
// or malformed specs are refused.
func TestForSpecPicksMinimalWitness(t *testing.T) {
	cases := []struct {
		spec, witness string
		class         classify.Class
	}{
		{"", "tagless", classify.Tagless},
		{"fifo", "causal-rst", classify.Tagged},
		{"causal-b2", "causal-rst", classify.Tagged},
		{"sync-2", "sync", classify.General},
	}
	for _, c := range cases {
		e, class, err := ForSpec(c.spec)
		if err != nil {
			t.Fatalf("ForSpec(%q): %v", c.spec, err)
		}
		if e.Name != c.witness || class != c.class {
			t.Fatalf("ForSpec(%q) = %s/%s, want %s/%s", c.spec, e.Name, class, c.witness, c.class)
		}
	}
	if _, _, err := ForSpec("not a ( spec"); err == nil {
		t.Fatal("malformed spec accepted")
	}
}

// TestRequiredRankOrdering pins the class power scale used to reject a
// forced protocol weaker than its specification.
func TestRequiredRankOrdering(t *testing.T) {
	tl, _ := RequiredRank(classify.Tagless)
	tg, _ := RequiredRank(classify.Tagged)
	gn, _ := RequiredRank(classify.General)
	if !(tl < tg && tg < gn) {
		t.Fatalf("rank order broken: tagless=%d tagged=%d general=%d", tl, tg, gn)
	}
	if _, err := RequiredRank(classify.Unimplementable); err == nil {
		t.Fatal("unimplementable class got a rank")
	}
}
