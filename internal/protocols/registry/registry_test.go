package registry

import "testing"

// TestCatalogResolves pins the catalog shape: 8 protocols, resolvable
// by name, every named spec present in the catalog package.
func TestCatalogResolves(t *testing.T) {
	cat := Catalog()
	if len(cat) != 8 {
		t.Fatalf("catalog has %d protocols, want 8", len(cat))
	}
	seen := map[string]bool{}
	for _, e := range cat {
		if seen[e.Name] {
			t.Fatalf("duplicate protocol %q", e.Name)
		}
		seen[e.Name] = true
		if e.Maker == nil {
			t.Fatalf("%s: nil maker", e.Name)
		}
		got, ok := ByName(e.Name)
		if !ok || got.Name != e.Name {
			t.Fatalf("ByName(%q) = %+v, %v", e.Name, got, ok)
		}
		if e.Spec != "" && e.Pred() == nil {
			t.Fatalf("%s: spec %q has no predicate", e.Name, e.Spec)
		}
		if inst := e.Maker(); inst == nil {
			t.Fatalf("%s: maker built nil", e.Name)
		}
	}
	if _, ok := ByName("causal-bss"); !ok {
		t.Fatal("extras not resolvable")
	}
	ho, ok := ByName("handoff")
	if !ok {
		t.Fatal("handoff not resolvable")
	}
	if ho.Pred() == nil {
		t.Fatal("handoff entry has no predicate")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("unknown protocol resolved")
	}
	if names := Names(); len(names) != 11 || names[0] != "tagless" {
		t.Fatalf("Names() = %v", names)
	}
}
