// Package registry is the shared protocol catalog for the command-line
// tools: one place mapping a protocol's name to its maker, the
// specification it implements, and the workload colors it needs, so
// mobench's experiment tables and the mod daemon agree on what
// "causal-rst" means. The presentation order follows the paper's
// Theorem 1 hierarchy: tagless first, then tagged, then general.
package registry

import (
	"fmt"

	"msgorder/internal/catalog"
	"msgorder/internal/classify"
	"msgorder/internal/event"
	"msgorder/internal/predicate"
	"msgorder/internal/protocol"
	"msgorder/internal/protocols/causal"
	"msgorder/internal/protocols/fifo"
	"msgorder/internal/protocols/flush"
	"msgorder/internal/protocols/handoff"
	"msgorder/internal/protocols/kweaker"
	syncproto "msgorder/internal/protocols/sync"
	"msgorder/internal/protocols/tagless"
)

// Entry describes one runnable protocol.
type Entry struct {
	// Name is the canonical CLI name.
	Name string
	// Maker builds one process's instance.
	Maker protocol.Maker
	// Spec names the catalog specification the protocol implements
	// ("" = liveness only, nothing forbidden).
	Spec string
	// Colors is the workload color mix the protocol's spec is about
	// (nil = colorless); flush protocols need flush-colored messages
	// in the stream to exercise anything.
	Colors []event.Color
}

// Pred returns the entry's specification predicate (nil when the
// entry has none). Unknown spec names return nil — Catalog entries
// are all validated by the registry test.
func (e Entry) Pred() *predicate.Predicate {
	if e.Spec == "" {
		return nil
	}
	if e.Name == "kweaker-1" {
		return catalog.KWeakerChannel(1)
	}
	c, ok := catalog.ByName(e.Spec)
	if !ok {
		return nil
	}
	return c.Pred
}

// Catalog returns the benchable protocol catalog in presentation order
// (the 8 unicast protocols every matrix sweeps).
func Catalog() []Entry {
	flushColors := []event.Color{
		event.ColorNone, event.ColorNone, event.ColorNone, event.ColorRed,
	}
	return []Entry{
		{Name: "tagless", Maker: tagless.Maker},
		{Name: "fifo", Maker: fifo.Maker, Spec: "fifo"},
		{Name: "kweaker-1", Maker: kweaker.Maker(1), Spec: "kweaker-1-channel"},
		{Name: "flush", Maker: flush.Maker, Spec: "local-forward-flush", Colors: flushColors},
		{Name: "causal-rst", Maker: causal.RSTMaker, Spec: "causal-b2"},
		{Name: "causal-ses", Maker: causal.SESMaker, Spec: "causal-b2"},
		{Name: "sync", Maker: syncproto.Maker, Spec: "sync-2"},
		{Name: "sync-ra", Maker: syncproto.RAMaker, Spec: "sync-2"},
	}
}

// extras are runnable protocols outside the benchmark catalog.
func extras() []Entry {
	handoffColors := []event.Color{
		event.ColorNone, event.ColorNone, event.ColorNone, event.ColorRed,
	}
	return []Entry{
		{Name: "causal-bss", Maker: causal.BSSMaker, Spec: "causal-b2"},
		{Name: "kweaker-2", Maker: kweaker.Maker(2)},
		{Name: "handoff", Maker: handoff.Maker, Spec: "handoff", Colors: handoffColors},
	}
}

// ResolveSpec turns a specification string into a predicate: a catalog
// entry name, or a forbidden-predicate expression.
func ResolveSpec(s string) (*predicate.Predicate, error) {
	if e, ok := catalog.ByName(s); ok {
		return e.Pred, nil
	}
	return predicate.Parse(s)
}

// RequiredRank maps a classification verdict onto protocol.Class's
// power scale, so a forced protocol choice can be checked against what
// a specification requires.
func RequiredRank(c classify.Class) (int, error) {
	switch c {
	case classify.Tagless:
		return int(protocol.Tagless), nil
	case classify.Tagged:
		return int(protocol.Tagged), nil
	case classify.General:
		return int(protocol.General), nil
	default:
		return 0, fmt.Errorf("specification is unimplementable")
	}
}

// WitnessFor picks the minimal catalog witness for a required class:
// the cheapest protocol whose class suffices per the paper's Theorem 1
// hierarchy.
func WitnessFor(c classify.Class) (Entry, error) {
	var name string
	switch c {
	case classify.Tagless:
		name = "tagless"
	case classify.Tagged:
		name = "causal-rst"
	case classify.General:
		name = "sync"
	default:
		return Entry{}, fmt.Errorf("specification is unimplementable: no protocol can realize it")
	}
	e, ok := ByName(name)
	if !ok {
		return Entry{}, fmt.Errorf("internal: witness %q missing from registry", name)
	}
	return e, nil
}

// ForSpec resolves a forbidden-predicate specification (a catalog spec
// name or an expression) to the cheapest sufficient catalog witness:
// the spec is parsed, run through the classifier, and mapped to its
// class's minimal witness. An empty spec forbids nothing, so the
// tagless witness suffices. The returned class lets callers check a
// user-forced protocol against what the spec requires.
func ForSpec(spec string) (Entry, classify.Class, error) {
	if spec == "" {
		e, err := WitnessFor(classify.Tagless)
		return e, classify.Tagless, err
	}
	pred, err := ResolveSpec(spec)
	if err != nil {
		return Entry{}, 0, fmt.Errorf("spec: %w", err)
	}
	res, err := classify.Classify(pred)
	if err != nil {
		return Entry{}, 0, fmt.Errorf("classify: %w", err)
	}
	e, err := WitnessFor(res.Class)
	return e, res.Class, err
}

// ByName resolves a protocol by CLI name, searching the catalog and
// the extras.
func ByName(name string) (Entry, bool) {
	for _, e := range append(Catalog(), extras()...) {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}

// Names returns every resolvable protocol name, catalog first.
func Names() []string {
	var out []string
	for _, e := range append(Catalog(), extras()...) {
		out = append(out, e.Name)
	}
	return out
}
