// Package tagless implements the paper's trivial "do nothing" protocol:
// every invoke is sent immediately and every receive is delivered
// immediately, with no tags and no control messages. It is the witness
// that X_async needs no protocol (Theorem 1.3) — and, under an
// adversarial network, the baseline that visibly violates every stronger
// ordering.
package tagless

import (
	"msgorder/internal/event"
	"msgorder/internal/protocol"
)

// Process is one tagless protocol instance. The zero value is NOT ready;
// construct with New (via Maker).
type Process struct {
	env protocol.Env
}

var (
	_ protocol.Process     = (*Process)(nil)
	_ protocol.Describer   = (*Process)(nil)
	_ protocol.Snapshotter = (*Process)(nil)
)

// Maker builds tagless protocol instances.
func Maker() protocol.Process { return &Process{} }

// Describe declares the tagless capability class.
func (p *Process) Describe() protocol.Descriptor {
	return protocol.Descriptor{Name: "tagless", Class: protocol.Tagless}
}

// Init stores the environment.
func (p *Process) Init(env protocol.Env) { p.env = env }

// OnInvoke sends immediately, untagged.
func (p *Process) OnInvoke(m event.Message) {
	p.env.Send(protocol.Wire{
		To:    m.To,
		Kind:  protocol.UserWire,
		Msg:   m.ID,
		Color: m.Color,
	})
}

// OnReceive delivers immediately.
func (p *Process) OnReceive(w protocol.Wire) {
	if w.Kind == protocol.UserWire {
		p.env.Deliver(w.Msg)
	}
}

// Snapshot returns the empty encoding: the protocol is stateless.
func (p *Process) Snapshot() []byte { return nil }

// Restore accepts any snapshot of the stateless protocol.
func (p *Process) Restore([]byte) error { return nil }
