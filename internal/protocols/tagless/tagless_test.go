package tagless

import (
	"reflect"
	"testing"

	"msgorder/internal/event"
	"msgorder/internal/protocol"
	"msgorder/internal/protocols/ptest"
)

func TestDescribe(t *testing.T) {
	p := Maker().(*Process)
	if d := p.Describe(); d.Class != protocol.Tagless || d.Name != "tagless" {
		t.Fatalf("descriptor = %+v", d)
	}
}

func TestSendImmediateUntagged(t *testing.T) {
	env := ptest.NewEnv(0, 2)
	p := Maker().(*Process)
	p.Init(env)
	p.OnInvoke(event.Message{ID: 3, From: 0, To: 1, Color: event.ColorRed})
	w, ok := env.LastSent()
	if !ok {
		t.Fatal("no wire sent")
	}
	if w.Kind != protocol.UserWire || w.Msg != 3 || w.To != 1 || len(w.Tag) != 0 {
		t.Fatalf("wire = %+v", w)
	}
	if w.Color != event.ColorRed {
		t.Error("color must ride along")
	}
}

func TestDeliverImmediate(t *testing.T) {
	env := ptest.NewEnv(1, 2)
	p := Maker().(*Process)
	p.Init(env)
	p.OnReceive(protocol.Wire{From: 0, Kind: protocol.UserWire, Msg: 7})
	p.OnReceive(protocol.Wire{From: 0, Kind: protocol.ControlWire})
	if !reflect.DeepEqual(env.DeliveredSeq(), []int{7}) {
		t.Fatalf("delivered = %v", env.DeliveredSeq())
	}
}
