package dsim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"

	"msgorder/internal/event"
	"msgorder/internal/obs"
	"msgorder/internal/protocol"
	"msgorder/internal/run"
	"msgorder/internal/userview"
)

// Simulation errors.
var (
	ErrProtocol = errors.New("dsim: protocol error")
	ErrLiveness = errors.New("dsim: liveness violation")
)

// Request asks the harness to invoke a user message. With Broadcast set,
// To is ignored and one copy is invoked for every other process (the
// multicast extension); protocols implementing protocol.Broadcaster
// receive all copies together.
type Request struct {
	From, To  event.ProcID
	Color     event.Color
	Broadcast bool
}

// Result is the outcome of a completed simulation.
type Result struct {
	System      *run.Run
	View        *userview.Run
	Stats       protocol.Stats
	Undelivered []event.MsgID
	// Steps is the number of discrete events processed.
	Steps int
	// EndTime is the simulated clock at quiescence.
	EndTime int64
}

// Option configures a Sim.
type Option func(*Sim)

// WithSeed sets the PRNG seed (default 1).
func WithSeed(seed int64) Option {
	return func(s *Sim) { s.rng = rand.New(rand.NewSource(seed)) }
}

// WithDelay sets the inclusive network delay range (default [1, 16]).
func WithDelay(min, max int64) Option {
	return func(s *Sim) { s.minDelay, s.maxDelay = min, max }
}

// WithFIFONetwork makes the network preserve per-channel order (default
// off: the network reorders freely). Useful as an ablation.
func WithFIFONetwork() Option {
	return func(s *Sim) { s.fifoNet = true }
}

// WithTracer streams causally stamped trace records of the run into t.
// Record timestamps are simulated ticks.
func WithTracer(t obs.Tracer) Option {
	return func(s *Sim) { s.tracer = t }
}

// WithMetrics records inhibition and latency histograms into m.
func WithMetrics(m *obs.Registry) Option {
	return func(s *Sim) { s.metrics = m }
}

// Sim is one deterministic simulation instance. Not safe for concurrent
// use.
type Sim struct {
	n       int
	procs   []protocol.Process
	classes []protocol.Class
	rec     *protocol.Recorder
	rng     *rand.Rand
	queue   itemHeap
	now     int64
	seq     int
	steps   int
	state   []event.Kind // last executed kind per message
	err     error

	minDelay, maxDelay int64
	fifoNet            bool
	chanClock          map[[2]event.ProcID]int64 // per-channel FIFO frontier

	tracer  obs.Tracer
	metrics *obs.Registry
	probe   *obs.Probe // nil unless WithTracer/WithMetrics was given

	onDeliver func(p event.ProcID, id event.MsgID) []Request
}

// New builds a simulator over n processes running the given protocol.
func New(n int, maker protocol.Maker, opts ...Option) *Sim {
	s := &Sim{
		n:         n,
		rec:       protocol.NewRecorder(n),
		rng:       rand.New(rand.NewSource(1)),
		minDelay:  1,
		maxDelay:  16,
		chanClock: make(map[[2]event.ProcID]int64),
	}
	for _, o := range opts {
		o(s)
	}
	proto := ""
	for i := 0; i < n; i++ {
		p := maker()
		class := protocol.General // undeclared protocols get full power
		if d, ok := p.(protocol.Describer); ok {
			class = d.Describe().Class
			proto = d.Describe().Name
		}
		s.procs = append(s.procs, p)
		s.classes = append(s.classes, class)
		p.Init(&env{sim: s, self: event.ProcID(i)})
	}
	// nil unless observability was requested — the fast path.
	s.probe = obs.NewProbe(n, s.tracer, s.metrics, proto, func() int64 { return s.now })
	return s
}

// OnDeliver installs a workload hook: each delivery may trigger follow-up
// requests (invoked immediately), enabling causal-chain workloads.
func (s *Sim) OnDeliver(fn func(p event.ProcID, id event.MsgID) []Request) {
	s.onDeliver = fn
}

// Invoke schedules a user request at simulated time at.
func (s *Sim) Invoke(at int64, req Request) {
	s.push(at, item{kind: itemInvoke, req: req})
}

// Run drains the event queue and returns the recorded run. It fails if a
// protocol violated its capability class or the event-state machine, and
// reports (without failing) messages never delivered — the caller decides
// whether that is a liveness bug or an artifact of a truncated workload.
func (s *Sim) Run() (*Result, error) {
	for len(s.queue) > 0 {
		it := heap.Pop(&s.queue).(*queued)
		s.now = it.at
		s.steps++
		switch it.item.kind {
		case itemInvoke:
			s.doInvoke(it.item.req)
		case itemArrival:
			s.doArrival(it.item.wire)
		}
		if s.err != nil {
			return nil, s.err
		}
	}
	sys, err := s.rec.SystemRun()
	if err != nil {
		return nil, fmt.Errorf("%w: recorded run invalid: %v", ErrProtocol, err)
	}
	view, err := sys.UsersView()
	if err != nil {
		return nil, fmt.Errorf("%w: user view invalid: %v", ErrProtocol, err)
	}
	return &Result{
		System:      sys,
		View:        view,
		Stats:       s.rec.Stats(),
		Undelivered: s.rec.Undelivered(),
		Steps:       s.steps,
		EndTime:     s.now,
	}, nil
}

// MustQuiesce runs the simulation and additionally fails if any invoked
// message was never delivered (the paper's liveness condition).
func (s *Sim) MustQuiesce() (*Result, error) {
	res, err := s.Run()
	if err != nil {
		return nil, err
	}
	if len(res.Undelivered) > 0 {
		return res, fmt.Errorf("%w: %d undelivered messages: %v",
			ErrLiveness, len(res.Undelivered), res.Undelivered)
	}
	return res, nil
}

func (s *Sim) doInvoke(req Request) {
	if int(req.From) >= s.n || req.From < 0 {
		s.fail("invoke with out-of-range process: %+v", req)
		return
	}
	if req.Broadcast {
		var msgs []event.Message
		for to := 0; to < s.n; to++ {
			if event.ProcID(to) == req.From {
				continue
			}
			m := s.rec.NewMessage(req.From, event.ProcID(to), req.Color)
			s.state = append(s.state, event.Invoke)
			msgs = append(msgs, m)
		}
		if len(msgs) == 0 {
			return // single-process system: nothing to broadcast
		}
		for _, m := range msgs {
			s.probe.Invoke(m)
		}
		if b, ok := s.procs[req.From].(protocol.Broadcaster); ok {
			b.OnBroadcast(msgs)
			return
		}
		for _, m := range msgs {
			s.procs[req.From].OnInvoke(m)
		}
		return
	}
	if int(req.To) >= s.n || req.To < 0 {
		s.fail("invoke with out-of-range process: %+v", req)
		return
	}
	m := s.rec.NewMessage(req.From, req.To, req.Color)
	s.state = append(s.state, event.Invoke)
	if int(m.ID) != len(s.state)-1 {
		s.fail("message id skew")
		return
	}
	s.probe.Invoke(m)
	s.procs[req.From].OnInvoke(m)
}

func (s *Sim) doArrival(w protocol.Wire) {
	if w.Kind == protocol.UserWire {
		if !s.advance(w.Msg, event.Receive) {
			return
		}
		s.rec.RecordReceive(w.Msg)
	}
	s.probe.Receive(w)
	s.procs[w.To].OnReceive(w)
}

// advance enforces the per-message event order s* → s → r* → r.
func (s *Sim) advance(id event.MsgID, k event.Kind) bool {
	if int(id) >= len(s.state) {
		s.fail("event for unknown message m%d", id)
		return false
	}
	if s.state[id] != k-1 {
		s.fail("m%d: %v executed after %v", id, k, s.state[id])
		return false
	}
	s.state[id] = k
	return true
}

func (s *Sim) fail(format string, args ...any) {
	if s.err == nil {
		s.err = fmt.Errorf("%w: %s", ErrProtocol, fmt.Sprintf(format, args...))
	}
}

// failWith preserves the cause's identity for errors.Is matching.
func (s *Sim) failWith(err error) {
	if s.err == nil {
		s.err = fmt.Errorf("%w: %w", ErrProtocol, err)
	}
}

func (s *Sim) delay(from, to event.ProcID) int64 {
	d := s.minDelay
	if s.maxDelay > s.minDelay {
		d += s.rng.Int63n(s.maxDelay - s.minDelay + 1)
	}
	if !s.fifoNet {
		return d
	}
	// FIFO network: arrival times on a channel are monotone.
	key := [2]event.ProcID{from, to}
	at := s.now + d
	if at <= s.chanClock[key] {
		at = s.chanClock[key] + 1
	}
	s.chanClock[key] = at
	return at - s.now
}

// env implements protocol.Env for one process.
type env struct {
	sim  *Sim
	self event.ProcID
}

var _ protocol.Env = (*env)(nil)

func (e *env) Self() event.ProcID { return e.self }
func (e *env) NumProcs() int      { return e.sim.n }

func (e *env) Send(w protocol.Wire) {
	s := e.sim
	w.From = e.self
	if int(w.To) >= s.n || w.To < 0 {
		s.fail("send to out-of-range process %d", w.To)
		return
	}
	if err := protocol.CheckCapability(s.classes[e.self], w); err != nil {
		s.failWith(fmt.Errorf("P%d: %w", e.self, err))
		return
	}
	switch w.Kind {
	case protocol.UserWire:
		if !s.advance(w.Msg, event.Send) {
			return
		}
		s.rec.RecordSend(w.Msg, len(w.Tag))
	case protocol.ControlWire:
		s.rec.RecordControl(len(w.Tag))
	default:
		s.fail("P%d sent wire with invalid kind %d", e.self, w.Kind)
		return
	}
	s.probe.Send(&w)
	s.push(s.now+s.delay(w.From, w.To), item{kind: itemArrival, wire: w})
}

func (e *env) Deliver(id event.MsgID) {
	s := e.sim
	if !s.advance(id, event.Deliver) {
		return
	}
	msg := s.rec.Message(id)
	if msg.To != e.self {
		s.fail("P%d delivered m%d addressed to P%d", e.self, id, msg.To)
		return
	}
	s.rec.RecordDeliver(id)
	s.probe.Deliver(e.self, id)
	if s.onDeliver != nil {
		for _, req := range s.onDeliver(e.self, id) {
			s.push(s.now, item{kind: itemInvoke, req: req})
		}
	}
}

// --- event queue ---

type itemKind uint8

const (
	itemInvoke itemKind = iota + 1
	itemArrival
)

type item struct {
	kind itemKind
	req  Request
	wire protocol.Wire
}

type queued struct {
	at   int64
	seq  int
	item item
}

type itemHeap []*queued

func (h itemHeap) Len() int { return len(h) }
func (h itemHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h itemHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *itemHeap) Push(x any)   { *h = append(*h, x.(*queued)) }
func (h *itemHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

func (s *Sim) push(at int64, it item) {
	if at < s.now {
		at = s.now
	}
	s.seq++
	heap.Push(&s.queue, &queued{at: at, seq: s.seq, item: it})
}
