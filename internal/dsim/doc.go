// Package dsim is a deterministic discrete-event simulator for
// message-ordering protocols, plus an exhaustive schedule explorer that
// upgrades seed-based violation hunting to small-scope model checking.
//
// # The simulator
//
// Sim runs one workload under a seeded PRNG, so every run is exactly
// reproducible from its seed — the tool used to search for specification
// violations ("protocol X violates spec Y under seed Z") and to
// regenerate the paper's figures. The network is reliable but unordered:
// each wire message is assigned an independent random delay, so later
// sends routinely overtake earlier ones — the adversary the paper's
// protocols must tame.
//
// # The explorer
//
// Explore replays one fixed workload under every possible network
// arrival order. User invocations execute eagerly in submission order;
// the only nondeterminism is which in-flight wire arrives next, so the
// search space is a tree of arrival choices. If no visited schedule
// violates a specification, no schedule for that workload does — a proof
// for the workload, not a sample.
//
// The default search (Workers: 0) walks that tree with one goroutine per
// GOMAXPROCS core pulling schedule prefixes from a shared frontier, and
// bounds the walk by visited states rather than schedules using two
// reductions:
//
//   - Canonical-state deduplication. Every protocol process is a
//     deterministic function of its handler-call history, and the run
//     recorder keeps only per-process event logs — so a fingerprint of
//     the per-process handler histories, the multiset of in-flight
//     wires, and the global hook-call log identifies states exactly:
//     equal fingerprints imply identical futures. Schedules that
//     converge to a visited state are pruned (ExploreStats.DedupHits).
//     Note the fingerprint hashes handler histories, not just delivered
//     prefixes: a protocol's internal state may depend on receive order
//     even when deliveries agree.
//   - Commutativity (sleep-set) pruning. Two arrivals at distinct
//     processes commute — each handler touches only its own process
//     state, appends to the shared wire multiset, and records only
//     per-process events — so of the two interleavings only one is
//     explored (ExploreStats.SleepHits). Sleep sets combine with the
//     fingerprint cache via Godefroid's fix: each cached state remembers
//     the sleep set it was expanded with, and a later arrival whose
//     sleep set is smaller re-expands the difference. Delivery hooks are
//     shared mutable state across processes, so workloads with a
//     MakeHook disable this reduction (deduplication stays on; the
//     fingerprint then includes the global hook-call order).
//
// Both reductions preserve the set of reachable complete runs: every
// distinct final state is still visited exactly once, so a violation
// exists in the reduced search iff it exists in the full one. What
// changes is the schedule count (ExploreStats.Schedules counts distinct
// final states, not interleavings) and the visit order. The visit
// callback is never invoked concurrently, but its order under parallel
// search is unspecified.
//
// # Determinism and Workers: 1
//
// Workers: 1 selects the legacy sequential depth-first search: no
// deduplication, no pruning, and schedules visited in lexicographic
// order of arrival indices. Its visit sequence is a compatibility
// contract — byte-identical to releases that predate the parallel
// explorer — so use it when diffing explorer output across versions or
// when an enumeration count like "3! arrival orders" is the point.
//
// Exploration is only well-defined if replaying a schedule prefix twice
// makes the same choices, which requires ExploreConfig.Maker and
// ExploreConfig.MakeHook to build deterministic instances. The explorer
// cross-checks every replayed arrival against the wire identity the
// parent prefix saw and fails with ErrDivergentReplay on disagreement
// instead of silently exploring a different tree.
//
// # Limits
//
// ErrExploreLimit fires when the number of complete schedules visited
// reaches ExploreConfig.MaxRuns (default 100000). The truncated search
// has still visited MaxRuns complete runs — the error marks the result
// as a sample rather than a proof. Early termination by the visit
// callback returning false is not an error: it is the normal way to stop
// after a counterexample.
package dsim
