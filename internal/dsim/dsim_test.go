package dsim

import (
	"errors"
	"testing"

	"msgorder/internal/event"
	"msgorder/internal/protocol"
	"msgorder/internal/protocols/tagless"
)

func TestDeterminism(t *testing.T) {
	runOnce := func() string {
		s := New(3, tagless.Maker, WithSeed(42))
		for i := 0; i < 10; i++ {
			s.Invoke(int64(i), Request{From: event.ProcID(i % 3), To: event.ProcID((i + 1) % 3)})
		}
		res, err := s.MustQuiesce()
		if err != nil {
			t.Fatal(err)
		}
		return res.View.Key()
	}
	if runOnce() != runOnce() {
		t.Fatal("same seed must reproduce the same run")
	}
}

func TestSeedsDiffer(t *testing.T) {
	keys := map[string]bool{}
	for seed := int64(1); seed <= 8; seed++ {
		s := New(2, tagless.Maker, WithSeed(seed), WithDelay(1, 50))
		for i := 0; i < 6; i++ {
			s.Invoke(0, Request{From: 0, To: 1})
		}
		res, err := s.MustQuiesce()
		if err != nil {
			t.Fatal(err)
		}
		keys[res.View.Key()] = true
	}
	if len(keys) < 2 {
		t.Fatal("different seeds should reorder deliveries")
	}
}

func TestRecordedRunValid(t *testing.T) {
	s := New(3, tagless.Maker, WithSeed(7))
	for i := 0; i < 20; i++ {
		s.Invoke(int64(i), Request{From: event.ProcID(i % 3), To: event.ProcID((i + 2) % 3)})
	}
	res, err := s.MustQuiesce()
	if err != nil {
		t.Fatal(err)
	}
	if !res.View.IsComplete() {
		t.Error("quiesced run must be complete")
	}
	if !res.System.InXu() {
		t.Error("tagless runs execute requests immediately: must be in X_u")
	}
	if res.Stats.UserMessages != 20 || res.Stats.Deliveries != 20 {
		t.Errorf("stats = %+v", res.Stats)
	}
	if res.Stats.ControlMessages != 0 || res.Stats.UserTagBytes != 0 {
		t.Errorf("tagless protocol has no overhead: %+v", res.Stats)
	}
	if res.Steps == 0 || res.EndTime == 0 {
		t.Error("missing step/clock accounting")
	}
}

func TestOnDeliverChains(t *testing.T) {
	s := New(2, tagless.Maker, WithSeed(3))
	count := 0
	s.OnDeliver(func(p event.ProcID, _ event.MsgID) []Request {
		if count >= 5 {
			return nil
		}
		count++
		return []Request{{From: p, To: 1 - p}}
	})
	s.Invoke(0, Request{From: 0, To: 1})
	res, err := s.MustQuiesce()
	if err != nil {
		t.Fatal(err)
	}
	if res.View.NumMessages() != 6 {
		t.Fatalf("messages = %d, want 6 (1 + 5 chained)", res.View.NumMessages())
	}
}

func TestFIFONetworkOption(t *testing.T) {
	// Under a FIFO network even the tagless protocol preserves channel
	// order.
	for seed := int64(1); seed <= 30; seed++ {
		s := New(2, tagless.Maker, WithSeed(seed), WithDelay(1, 50), WithFIFONetwork())
		for i := 0; i < 8; i++ {
			s.Invoke(0, Request{From: 0, To: 1})
		}
		res, err := s.MustQuiesce()
		if err != nil {
			t.Fatal(err)
		}
		if v, bad := res.View.FindCOViolation(); bad {
			t.Fatalf("seed %d: FIFO net produced violation %v", seed, v)
		}
	}
}

func TestInvokeRangeChecked(t *testing.T) {
	s := New(2, tagless.Maker)
	s.Invoke(0, Request{From: 0, To: 9})
	if _, err := s.Run(); !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol", err)
	}
}

// doubleDeliver delivers every user message twice.
type doubleDeliver struct{ env protocol.Env }

func (p *doubleDeliver) Init(env protocol.Env) { p.env = env }
func (p *doubleDeliver) OnInvoke(m event.Message) {
	p.env.Send(protocol.Wire{To: m.To, Kind: protocol.UserWire, Msg: m.ID})
}
func (p *doubleDeliver) OnReceive(w protocol.Wire) {
	p.env.Deliver(w.Msg)
	p.env.Deliver(w.Msg)
}

func TestEventOrderEnforced(t *testing.T) {
	s := New(2, func() protocol.Process { return &doubleDeliver{} })
	s.Invoke(0, Request{From: 0, To: 1})
	if _, err := s.Run(); !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol for double delivery", err)
	}
}

// sneakyTagged declares itself tagged but sends a control wire.
type sneakyTagged struct{ env protocol.Env }

func (p *sneakyTagged) Describe() protocol.Descriptor {
	return protocol.Descriptor{Name: "sneaky", Class: protocol.Tagged}
}
func (p *sneakyTagged) Init(env protocol.Env) { p.env = env }
func (p *sneakyTagged) OnInvoke(m event.Message) {
	p.env.Send(protocol.Wire{To: m.To, Kind: protocol.ControlWire})
	p.env.Send(protocol.Wire{To: m.To, Kind: protocol.UserWire, Msg: m.ID})
}
func (p *sneakyTagged) OnReceive(w protocol.Wire) {
	if w.Kind == protocol.UserWire {
		p.env.Deliver(w.Msg)
	}
}

func TestCapabilityEnforced(t *testing.T) {
	s := New(2, func() protocol.Process { return &sneakyTagged{} })
	s.Invoke(0, Request{From: 0, To: 1})
	_, err := s.Run()
	if !errors.Is(err, protocol.ErrClassViolation) {
		t.Fatalf("err = %v, want ErrClassViolation", err)
	}
}

// dropper never delivers.
type dropper struct{ env protocol.Env }

func (p *dropper) Init(env protocol.Env) { p.env = env }
func (p *dropper) OnInvoke(m event.Message) {
	p.env.Send(protocol.Wire{To: m.To, Kind: protocol.UserWire, Msg: m.ID})
}
func (p *dropper) OnReceive(protocol.Wire) {}

func TestLivenessViolationDetected(t *testing.T) {
	s := New(2, func() protocol.Process { return &dropper{} })
	s.Invoke(0, Request{From: 0, To: 1})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Undelivered) != 1 {
		t.Fatalf("undelivered = %v, want one entry", res.Undelivered)
	}
	if _, err := (func() (*Result, error) {
		s2 := New(2, func() protocol.Process { return &dropper{} })
		s2.Invoke(0, Request{From: 0, To: 1})
		return s2.MustQuiesce()
	})(); !errors.Is(err, ErrLiveness) {
		t.Fatalf("err = %v, want ErrLiveness", err)
	}
}

func TestSelfMessage(t *testing.T) {
	s := New(2, tagless.Maker, WithSeed(1))
	s.Invoke(0, Request{From: 1, To: 1})
	res, err := s.MustQuiesce()
	if err != nil {
		t.Fatal(err)
	}
	if !res.View.IsComplete() {
		t.Error("self message must round-trip")
	}
}
