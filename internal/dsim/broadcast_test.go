package dsim

import (
	"errors"
	"testing"

	"msgorder/internal/event"
	"msgorder/internal/protocol"
	"msgorder/internal/protocols/causal"
	"msgorder/internal/protocols/tagless"
)

func TestBroadcastFansOut(t *testing.T) {
	s := New(4, tagless.Maker, WithSeed(1))
	s.Invoke(0, Request{From: 1, Broadcast: true})
	res, err := s.MustQuiesce()
	if err != nil {
		t.Fatal(err)
	}
	if res.View.NumMessages() != 3 {
		t.Fatalf("messages = %d, want 3 copies", res.View.NumMessages())
	}
	for _, m := range res.View.Messages() {
		if m.From != 1 || m.To == 1 {
			t.Fatalf("copy %v must go from P1 to another process", m)
		}
	}
}

func TestBroadcastReachesBroadcaster(t *testing.T) {
	// BSS implements protocol.Broadcaster: all copies share one stamp.
	s := New(3, causal.BSSMaker, WithSeed(2))
	s.Invoke(0, Request{From: 0, Broadcast: true})
	s.Invoke(1, Request{From: 0, Broadcast: true})
	res, err := s.MustQuiesce()
	if err != nil {
		t.Fatal(err)
	}
	if !res.View.InCO() {
		t.Fatal("BSS broadcasts must stay causally ordered")
	}
	if res.Stats.UserMessages != 4 {
		t.Fatalf("user messages = %d, want 4", res.Stats.UserMessages)
	}
}

func TestBroadcastSingleProcessNoop(t *testing.T) {
	s := New(1, tagless.Maker)
	s.Invoke(0, Request{From: 0, Broadcast: true})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.View.NumMessages() != 0 {
		t.Fatal("broadcast in a single-process system creates no copies")
	}
}

func TestBroadcastBadSender(t *testing.T) {
	s := New(2, tagless.Maker)
	s.Invoke(0, Request{From: 7, Broadcast: true})
	if _, err := s.Run(); !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol", err)
	}
}

// selfDeliverer delivers without a prior send: event-order violation.
type selfDeliverer struct{ env protocol.Env }

func (p *selfDeliverer) Init(env protocol.Env)    { p.env = env }
func (p *selfDeliverer) OnInvoke(m event.Message) { p.env.Deliver(m.ID) }
func (p *selfDeliverer) OnReceive(protocol.Wire)  {}

func TestDeliverBeforeSendRejected(t *testing.T) {
	s := New(2, func() protocol.Process { return &selfDeliverer{} })
	s.Invoke(0, Request{From: 0, To: 1})
	if _, err := s.Run(); !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol", err)
	}
}

func TestSendBadWireKindRejected(t *testing.T) {
	bad := func() protocol.Process { return &badKind{} }
	s := New(2, bad)
	s.Invoke(0, Request{From: 0, To: 1})
	if _, err := s.Run(); !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol", err)
	}
}

type badKind struct{ env protocol.Env }

func (p *badKind) Init(env protocol.Env) { p.env = env }
func (p *badKind) OnInvoke(m event.Message) {
	p.env.Send(protocol.Wire{To: m.To, Kind: protocol.WireKind(99), Msg: m.ID})
}
func (p *badKind) OnReceive(protocol.Wire) {}

func TestSendOutOfRangeRejected(t *testing.T) {
	s := New(2, func() protocol.Process { return &badTarget{} })
	s.Invoke(0, Request{From: 0, To: 1})
	if _, err := s.Run(); !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol", err)
	}
}

type badTarget struct{ env protocol.Env }

func (p *badTarget) Init(env protocol.Env) { p.env = env }
func (p *badTarget) OnInvoke(m event.Message) {
	p.env.Send(protocol.Wire{To: 9, Kind: protocol.UserWire, Msg: m.ID})
}
func (p *badTarget) OnReceive(protocol.Wire) {}

// envProbe checks the env accessors.
type envProbe struct {
	env protocol.Env
	t   *testing.T
}

func (p *envProbe) Init(env protocol.Env) { p.env = env }
func (p *envProbe) OnInvoke(m event.Message) {
	if p.env.NumProcs() != 3 {
		p.t.Error("NumProcs wrong")
	}
	if p.env.Self() != m.From {
		p.t.Error("Self wrong")
	}
	p.env.Send(protocol.Wire{To: m.To, Kind: protocol.UserWire, Msg: m.ID})
}
func (p *envProbe) OnReceive(w protocol.Wire) { p.env.Deliver(w.Msg) }

func TestEnvAccessors(t *testing.T) {
	s := New(3, func() protocol.Process { return &envProbe{t: t} })
	s.Invoke(0, Request{From: 2, To: 0})
	if _, err := s.MustQuiesce(); err != nil {
		t.Fatal(err)
	}
}

// TestBSSAllSchedulesCausal model-checks BSS: two broadcasts from
// different senders, every arrival order, all views causally ordered.
// The legacy sequential search (Workers: 1) enumerates every
// interleaving; the default deduplicating search must cover the same
// ground with far fewer visits.
func TestBSSAllSchedulesCausal(t *testing.T) {
	cfg := ExploreConfig{
		Procs: 3,
		Maker: causal.BSSMaker,
		Requests: []Request{
			{From: 0, Broadcast: true},
			{From: 1, Broadcast: true},
		},
	}
	check := func(res *Result) bool {
		if len(res.Undelivered) > 0 {
			t.Fatal("liveness lost")
		}
		if !res.View.InCO() {
			t.Fatalf("non-causal BSS view: %v", res.View)
		}
		return true
	}
	cfg.Workers = 1
	n, err := Explore(cfg, check)
	if err != nil {
		t.Fatal(err)
	}
	if n < 6 {
		t.Fatalf("schedules = %d, expected at least 4!/(2!2!)-ish interleavings", n)
	}
	cfg.Workers = 0
	st, err := ExploreWithStats(cfg, check)
	if err != nil {
		t.Fatal(err)
	}
	if st.Schedules == 0 || st.Schedules > n {
		t.Fatalf("deduped schedules = %d, want 1..%d", st.Schedules, n)
	}
	t.Logf("explored %d schedules sequentially, %d deduped (%d dedup hits, %d sleep hits)",
		n, st.Schedules, st.DedupHits, st.SleepHits)
}

func TestExploreHookBadRequest(t *testing.T) {
	// A hook invoking an out-of-range process is rejected.
	_, err := Explore(ExploreConfig{
		Procs:    2,
		Maker:    tagless.Maker,
		Requests: []Request{{From: 0, To: 1}},
		MakeHook: func() func(event.ProcID, event.MsgID) []Request {
			return func(event.ProcID, event.MsgID) []Request {
				return []Request{{From: 0, To: 9}}
			}
		},
	}, func(*Result) bool { return true })
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol", err)
	}
}

func TestExploreCapabilityViolation(t *testing.T) {
	_, err := Explore(ExploreConfig{
		Procs:    2,
		Maker:    func() protocol.Process { return &sneakyTagged{} },
		Requests: []Request{{From: 0, To: 1}},
	}, func(*Result) bool { return true })
	if err == nil {
		t.Fatal("capability violation must surface in Explore")
	}
}

func TestExploreBadRequest(t *testing.T) {
	_, err := Explore(ExploreConfig{
		Procs:    2,
		Maker:    tagless.Maker,
		Requests: []Request{{From: 9, To: 0}},
	}, func(*Result) bool { return true })
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol", err)
	}
}
