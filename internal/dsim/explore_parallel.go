package dsim

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime/pprof"
	"sort"
	"sync"
	"time"

	"msgorder/internal/event"
	"msgorder/internal/obs"
	"msgorder/internal/protocol"
)

// exploreParallel walks the schedule tree from a shared frontier with a
// bounded worker pool. Each frontier node is a schedule prefix (script of
// arrival choices); a worker replays it from scratch, then either visits
// the completed run or expands the choice point into child prefixes.
//
// Two reductions bound the walk by visited states instead of schedules:
//
//   - Canonical-state dedup: a fingerprint of the per-process handler
//     histories plus the in-flight wire multiset identifies states that
//     different schedules converge to; a converged subtree is explored
//     once. Sound because every protocol process is a deterministic
//     function of its handler-call history, and the recorder keeps only
//     per-process logs — equal fingerprints imply identical futures.
//   - Sleep sets: arrivals at distinct processes commute (hook-free
//     workloads only — a delivery hook is shared global state), so after
//     exploring sibling w_j, the sibling-then-w_i interleaving already
//     covers w_i-then-w_j and the latter is put to sleep. Combining sleep
//     sets with state caching uses Godefroid's fix: each cached state
//     stores the sleep set it was expanded with, and a later visit
//     arriving with a smaller sleep set re-expands the difference.
type parallel struct {
	cfg     ExploreConfig
	visit   func(*Result) bool
	dedup   bool
	sleepOK bool

	// mu serializes visit callbacks and guards stats and the stop flags.
	mu      sync.Mutex
	stats   ExploreStats
	stopped bool
	err     error

	// vmu guards the fingerprint cache.
	vmu     sync.Mutex
	visited map[[16]byte]*stateRec

	// qmu guards the frontier.
	qmu    sync.Mutex
	qcond  *sync.Cond
	queue  []*pnode
	active int
	dead   bool

	// start anchors trace-record timestamps (µs since search start).
	start time.Time
}

// pnode is one frontier entry: a schedule prefix plus the wire-identity
// checksums that detect divergent replays and the transitions asleep at
// this node.
type pnode struct {
	script []int
	want   []uint64
	sleep  []string
}

// stateRec is a fingerprint-cache entry. sleep records which transitions
// were pruned when the state was first expanded, so a later arrival with
// fewer sleeping transitions knows what remains to explore.
type stateRec struct {
	sleep map[string]struct{}
}

func exploreParallel(cfg ExploreConfig, workers int, visit func(*Result) bool, start time.Time) (ExploreStats, error) {
	p := &parallel{
		cfg:     cfg,
		visit:   visit,
		dedup:   !cfg.NoDedup,
		sleepOK: cfg.MakeHook == nil,
		visited: make(map[[16]byte]*stateRec),
		queue:   []*pnode{{}},
		start:   start,
	}
	p.qcond = sync.NewCond(&p.qmu)

	// Each worker records into a private collector and registry so the
	// search's hot path takes no shared observability locks; the buffers
	// are merged into cfg.Tracer/cfg.Metrics after the join, in worker
	// order. pprof labels make workers distinguishable in CPU profiles.
	instrumented := cfg.Tracer != nil || cfg.Metrics != nil
	wtrace := make([]*obs.Collector, workers)
	wmet := make([]*obs.Registry, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		if instrumented {
			if cfg.Tracer != nil {
				wtrace[i] = obs.NewCollector()
			}
			wmet[i] = obs.NewRegistry()
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			labels := pprof.Labels("explorer-worker", fmt.Sprint(i))
			pprof.Do(context.Background(), labels, func(context.Context) {
				for {
					n := p.take()
					if n == nil {
						return
					}
					var tr obs.Tracer
					if wtrace[i] != nil {
						tr = wtrace[i]
					}
					p.process(n, tr, wmet[i])
					p.release()
				}
			})
		}(i)
	}
	wg.Wait()
	for i := 0; i < workers; i++ {
		if wtrace[i] != nil {
			wtrace[i].FlushTo(cfg.Tracer)
		}
		cfg.Metrics.Merge(wmet[i])
	}
	p.stats.Workers = workers
	return p.stats, p.err
}

// emitExpand records one choice-point expansion: an OpExpand trace
// record plus the depth/fanout distributions. Shared by the sequential
// and parallel searches; tr and met may be nil.
func emitExpand(tr obs.Tracer, met *obs.Registry, start time.Time, depth, fanout, children int) {
	if tr != nil {
		tr.Emit(obs.Record{
			Step: time.Since(start).Microseconds(),
			Proc: obs.HarnessProc,
			Op:   obs.OpExpand,
			Msg:  obs.NoMsg,
			Note: fmt.Sprintf("depth %d, %d in flight, %d explored", depth, fanout, children),
		})
	}
	met.Observe("explore.frontier.depth", int64(depth))
	met.Observe("explore.expand.fanout", int64(fanout))
	met.GaugeMax("explore.depth.max", int64(depth))
	met.Count("explore.expansions", 1)
}

// take pops a frontier node, blocking while other workers may still
// produce more. A nil return means the search is over.
func (p *parallel) take() *pnode {
	p.qmu.Lock()
	defer p.qmu.Unlock()
	for {
		if p.dead || (len(p.queue) == 0 && p.active == 0) {
			p.dead = true
			p.qcond.Broadcast()
			return nil
		}
		if n := len(p.queue); n > 0 {
			node := p.queue[n-1]
			p.queue = p.queue[:n-1]
			p.active++
			return node
		}
		p.qcond.Wait()
	}
}

func (p *parallel) release() {
	p.qmu.Lock()
	p.active--
	if p.active == 0 && len(p.queue) == 0 {
		p.qcond.Broadcast()
	}
	p.qmu.Unlock()
}

func (p *parallel) push(kids []*pnode) {
	if len(kids) == 0 {
		return
	}
	p.qmu.Lock()
	if !p.dead {
		p.queue = append(p.queue, kids...)
		p.qcond.Broadcast()
	}
	p.qmu.Unlock()
}

// kill drops the remaining frontier and wakes every worker.
func (p *parallel) kill() {
	p.qmu.Lock()
	p.dead = true
	p.queue = nil
	p.qcond.Broadcast()
	p.qmu.Unlock()
}

func (p *parallel) fail(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.stopped = true
	p.mu.Unlock()
	p.kill()
}

func (p *parallel) process(n *pnode, tr obs.Tracer, met *obs.Registry) {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return
	}
	p.stats.Replays++
	p.mu.Unlock()

	out, err := replay(p.cfg, n.script, n.want, p.dedup)
	if err != nil {
		p.fail(err)
		return
	}
	if out.res != nil {
		p.finishRun(out)
		return
	}
	p.expand(n, out, tr, met)
}

// finishRun visits a completed schedule (serialized, respecting MaxRuns
// and early stop), skipping terminal states already seen.
func (p *parallel) finishRun(out *replayOutcome) {
	if p.dedup {
		p.vmu.Lock()
		if _, seen := p.visited[out.fp]; seen {
			p.vmu.Unlock()
			p.mu.Lock()
			p.stats.DedupHits++
			p.mu.Unlock()
			return
		}
		p.visited[out.fp] = &stateRec{}
		p.vmu.Unlock()
	}
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return
	}
	p.stats.Schedules++
	stop := false
	if p.stats.Schedules >= p.cfg.MaxRuns {
		p.stats.Truncated = true
		p.stopped = true
		stop = true
	}
	if !p.visit(out.res) {
		p.stopped = true
		stop = true
	}
	p.mu.Unlock()
	if stop {
		p.kill()
	}
}

// expand turns a choice point into child frontier nodes, applying the
// fingerprint cache and sleep-set pruning.
func (p *parallel) expand(n *pnode, out *replayOutcome, tr obs.Tracer, met *obs.Registry) {
	asleep := make(map[string]struct{}, len(n.sleep))
	for _, enc := range n.sleep {
		asleep[enc] = struct{}{}
	}
	var children []int
	slept := 0
	first := true
	if p.dedup {
		p.vmu.Lock()
		rec, seen := p.visited[out.fp]
		if !seen {
			pruned := make(map[string]struct{})
			dupe := make(map[string]struct{}, len(out.encs))
			for i, enc := range out.encs {
				if _, s := asleep[enc]; s {
					pruned[enc] = struct{}{}
					slept++
					continue
				}
				if _, d := dupe[enc]; d {
					slept++ // identical wire: same successor state
					continue
				}
				dupe[enc] = struct{}{}
				children = append(children, i)
			}
			p.visited[out.fp] = &stateRec{sleep: pruned}
		} else {
			// Revisited state: explore only transitions that were asleep
			// at first expansion but are awake on this path.
			first = false
			for i, enc := range out.encs {
				if _, was := rec.sleep[enc]; !was {
					continue
				}
				if _, s := asleep[enc]; s {
					continue
				}
				delete(rec.sleep, enc)
				children = append(children, i)
			}
		}
		p.vmu.Unlock()
		if !first && len(children) == 0 {
			p.mu.Lock()
			p.stats.DedupHits++
			p.mu.Unlock()
			return
		}
	} else {
		dupe := make(map[string]struct{}, len(out.encs))
		for i, enc := range out.encs {
			if _, s := asleep[enc]; s {
				slept++
				continue
			}
			if _, d := dupe[enc]; d {
				slept++
				continue
			}
			dupe[enc] = struct{}{}
			children = append(children, i)
		}
	}

	p.mu.Lock()
	p.stats.States++
	p.stats.SleepHits += slept
	p.mu.Unlock()
	emitExpand(tr, met, p.start, len(n.script), out.fanout, len(children))

	kids := make([]*pnode, 0, len(children))
	var taken []string
	for _, i := range children {
		var childSleep []string
		if p.sleepOK && first {
			// Transitions asleep here, plus siblings explored before i,
			// stay asleep in the child when they commute with arrival i
			// (different destination process).
			to := encTo(out.encs[i])
			for enc := range asleep {
				if encTo(enc) != to {
					childSleep = append(childSleep, enc)
				}
			}
			for _, enc := range taken {
				if encTo(enc) != to {
					childSleep = append(childSleep, enc)
				}
			}
			taken = append(taken, out.encs[i])
		}
		script := make([]int, len(n.script)+1)
		copy(script, n.script)
		script[len(n.script)] = i
		want := make([]uint64, len(n.want)+1)
		copy(want, n.want)
		want[len(n.want)] = out.hashes[i]
		kids = append(kids, &pnode{script: script, want: want, sleep: childSleep})
	}
	p.push(kids)
}

// --- canonical state encoding ---

// appendWireEnc appends a canonical fixed-layout encoding of a wire. The
// destination process occupies the first four bytes so encTo can recover
// it from the encoded form.
func appendWireEnc(b []byte, w protocol.Wire) []byte {
	b = appendUint32(b, uint32(w.To))
	b = appendUint32(b, uint32(w.From))
	b = append(b, byte(w.Kind), w.Ctrl, byte(w.Color))
	b = appendUint32(b, uint32(w.Msg))
	// The ordering key is semantic state (it selects the per-key
	// instance at the receiver), so unlike the VC stamp it must be part
	// of the canonical encoding.
	b = appendUint32(b, uint32(w.Key>>32))
	b = appendUint32(b, uint32(w.Key))
	b = appendUint32(b, uint32(len(w.Tag)))
	return append(b, w.Tag...)
}

// encTo recovers the destination process from an encoded wire.
func encTo(enc string) event.ProcID {
	return event.ProcID(uint32(enc[0])<<24 | uint32(enc[1])<<16 | uint32(enc[2])<<8 | uint32(enc[3]))
}

func appendUint32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// hash64 is FNV-1a, used for the cheap per-arrival divergence checksums.
func hash64(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// fingerprint hashes the canonical exploration state: the per-process
// handler-call histories, the multiset of in-flight wires (sorted so the
// arrival list's order is irrelevant), and the global hook-call log.
func (st *replayState) fingerprint() [16]byte {
	h := fnv.New128a()
	var len4 [4]byte
	writeLen := func(n int) {
		len4[0], len4[1], len4[2], len4[3] = byte(n>>24), byte(n>>16), byte(n>>8), byte(n)
		h.Write(len4[:])
	}
	for _, log := range st.plog {
		writeLen(len(log))
		h.Write(log)
	}
	encs := make([]string, len(st.inFlight))
	for i, w := range st.inFlight {
		encs[i] = string(appendWireEnc(nil, w))
	}
	sort.Strings(encs)
	writeLen(len(encs))
	for _, enc := range encs {
		writeLen(len(enc))
		h.Write([]byte(enc))
	}
	h.Write(st.hooklog)
	var fp [16]byte
	copy(fp[:], h.Sum(nil))
	return fp
}
