package dsim

import (
	"testing"

	"msgorder/internal/protocols/fifo"
	"msgorder/internal/protocols/tagless"
)

// deterministicCases are workloads where no commutativity pruning can
// fire — either a delivery hook disables sleep sets, or every arrival
// targets the same process — so with NoDedup the parallel search must
// visit exactly the schedules the legacy enumeration does.
func deterministicCases() map[string]ExploreConfig {
	return map[string]ExploreConfig{
		"triangle-hooked": {Procs: 3, Maker: tagless.Maker,
			Requests: []Request{{From: 0, To: 2}, {From: 0, To: 1}},
			MakeHook: triangleHook},
		"same-channel": {Procs: 2, Maker: fifo.Maker,
			Requests: []Request{{From: 0, To: 1}, {From: 0, To: 1}, {From: 0, To: 1}}},
	}
}

// TestCrossWorkerScheduleDeterminism pins the cross-worker contract of
// ExploreStats: the completed-schedule count is a property of the
// schedule tree, not of the worker interleaving, so Workers: 1 and
// Workers: N with NoDedup agree exactly (on workloads where sleep-set
// pruning cannot fire).
func TestCrossWorkerScheduleDeterminism(t *testing.T) {
	for name, cfg := range deterministicCases() {
		t.Run(name, func(t *testing.T) {
			serial := cfg
			serial.Workers = 1
			orders, err := Explore(serial, func(*Result) bool { return true })
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 4, 8} {
				par := cfg
				par.Workers = workers
				par.NoDedup = true
				visited := 0
				st, err := ExploreWithStats(par, func(*Result) bool {
					visited++
					return true
				})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if st.Schedules != orders {
					t.Fatalf("workers=%d: schedules=%d, sequential enumeration found %d",
						workers, st.Schedules, orders)
				}
				if visited != st.Schedules {
					t.Fatalf("workers=%d: visit called %d times, stats claim %d schedules",
						workers, visited, st.Schedules)
				}
				if st.DedupHits != 0 {
					t.Fatalf("workers=%d: dedup hits %d with NoDedup set", workers, st.DedupHits)
				}
			}
		})
	}
}

// TestExploreAccountingInvariant checks the replay ledger across modes
// and worker counts: every frontier node processed is one replay, and
// each replay ends as exactly one of a visited schedule, an expanded
// interior state, or a dedup hit. Run under -race this also exercises
// the stats mutex from many workers.
func TestExploreAccountingInvariant(t *testing.T) {
	workloads := deterministicCases()
	workloads["crossing-hookfree"] = ExploreConfig{Procs: 3, Maker: tagless.Maker,
		Requests: []Request{
			{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 2}, {From: 2, To: 1},
		}}
	for name, cfg := range workloads {
		for _, mode := range []struct {
			name    string
			workers int
			noDedup bool
		}{
			{"default", 0, false},
			{"parallel-nodedup", 4, true},
			{"two-workers-dedup", 2, false},
		} {
			c := cfg
			c.Workers = mode.workers
			c.NoDedup = mode.noDedup
			st, err := ExploreWithStats(c, func(*Result) bool { return true })
			if err != nil {
				t.Fatalf("%s/%s: %v", name, mode.name, err)
			}
			if st.Replays != st.Schedules+st.States+st.DedupHits {
				t.Errorf("%s/%s: replays=%d, want schedules+states+dedup = %d+%d+%d = %d",
					name, mode.name, st.Replays, st.Schedules, st.States, st.DedupHits,
					st.Schedules+st.States+st.DedupHits)
			}
			if mode.noDedup && st.DedupHits != 0 {
				t.Errorf("%s/%s: dedup hits %d with NoDedup set", name, mode.name, st.DedupHits)
			}
			if st.Schedules <= 0 || st.Replays <= 0 {
				t.Errorf("%s/%s: degenerate stats %+v", name, mode.name, st)
			}
		}
	}
}
