package dsim

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"msgorder/internal/event"
	"msgorder/internal/obs"
	"msgorder/internal/protocol"
)

// Exploration errors. See doc.go for when each fires.
var (
	// ErrExploreLimit reports that exploration was truncated by MaxRuns.
	ErrExploreLimit = errors.New("dsim: exploration truncated by run limit")
	// ErrDivergentReplay reports that two replays of the same schedule
	// prefix disagreed — the MakeHook (or the protocol Maker) is not
	// deterministic, so the schedule tree being explored is not
	// well-defined.
	ErrDivergentReplay = errors.New("dsim: divergent replay — ExploreConfig.MakeHook and Maker must be deterministic")
)

// ExploreConfig drives an exhaustive schedule search: the same protocol
// and workload are replayed under every possible network arrival order.
// Invokes execute eagerly in submission order; the only nondeterminism is
// which in-flight wire arrives next. This turns seed-based violation
// hunting into small-scope model checking: if no schedule violates a
// specification, none exists for that workload.
type ExploreConfig struct {
	// Procs is the number of processes.
	Procs int
	// Maker builds the protocol under test (fresh instances per replay).
	Maker protocol.Maker
	// Requests are the initial user invocations, executed in order.
	Requests []Request
	// MakeHook, when non-nil, builds a fresh per-replay delivery hook for
	// causal-chain workloads. Hooks must be deterministic: the explorer
	// replays schedule prefixes many times and cross-checks that every
	// replay makes the same wire choices, failing with ErrDivergentReplay
	// on disagreement instead of silently exploring a different tree.
	MakeHook func() func(p event.ProcID, id event.MsgID) []Request
	// MaxRuns bounds the number of complete schedules visited
	// (default 100000). Exceeding it returns ErrExploreLimit.
	MaxRuns int
	// Workers sets the number of concurrent search goroutines.
	//
	//	≤0  — default: one worker per GOMAXPROCS core, with canonical-state
	//	      deduplication and commutativity (sleep-set) pruning enabled.
	//	1   — the legacy sequential depth-first search: schedules are
	//	      visited in lexicographic arrival order with no pruning, so
	//	      the visit sequence is reproducible against earlier releases.
	//	n>1 — n workers over a shared frontier.
	//
	// Under Workers != 1 the visit callback is still never called
	// concurrently (calls are serialized), but the visit order is
	// unspecified.
	Workers int
	// NoDedup disables the canonical-state fingerprint cache, so
	// schedules that converge to an already-visited state are replayed
	// anyway. Ignored when Workers is 1 (the legacy search never dedups).
	NoDedup bool
	// Tracer, when non-nil, receives one OpExpand record per expanded
	// choice point (timestamps are microseconds since search start).
	// Parallel workers buffer records locally and merge them at join, so
	// any Tracer works; ordering across workers is by buffer flush, not
	// by time.
	Tracer obs.Tracer
	// Metrics, when non-nil, receives the search distributions: frontier
	// depth and expansion fanout histograms, peak depth, and per-outcome
	// counters. Parallel workers record into private registries merged at
	// join.
	Metrics *obs.Registry
}

// ExploreStats reports how an exploration went.
type ExploreStats struct {
	// Schedules is the number of completed runs passed to visit.
	Schedules int
	// States is the number of interior choice-point states expanded.
	States int
	// Replays is the number of schedule-prefix replays executed — the
	// work measure an exploration actually pays for.
	Replays int
	// DedupHits counts subtrees pruned because their canonical state had
	// already been visited (fingerprint cache hits).
	DedupHits int
	// SleepHits counts arrivals skipped by commutativity pruning: two
	// deliveries at distinct processes commute, so only one interleaving
	// is explored.
	SleepHits int
	// Workers is the resolved worker count.
	Workers int
	// Truncated reports that MaxRuns stopped the search.
	Truncated bool
	// Elapsed is the wall-clock search time.
	Elapsed time.Duration
}

// Explore enumerates arrival orders, calling visit with each completed
// run. visit returning false stops the search early (not an error).
// Returns the number of schedules visited; see ExploreWithStats for the
// full accounting.
func Explore(cfg ExploreConfig, visit func(*Result) bool) (int, error) {
	st, err := ExploreWithStats(cfg, visit)
	return st.Schedules, err
}

// ExploreWithStats is Explore returning the full search statistics.
func ExploreWithStats(cfg ExploreConfig, visit func(*Result) bool) (ExploreStats, error) {
	if cfg.Procs <= 0 || cfg.Maker == nil {
		return ExploreStats{}, fmt.Errorf("%w: bad config", ErrProtocol)
	}
	if cfg.MaxRuns == 0 {
		cfg.MaxRuns = 100000
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	start := time.Now()
	var stats ExploreStats
	var err error
	if cfg.Workers == 1 {
		e := &explorer{cfg: cfg, visit: visit, stats: &stats, start: start}
		err = e.dfs(nil, nil)
		stats.Workers = 1
	} else {
		stats, err = exploreParallel(cfg, workers, visit, start)
	}
	stats.Elapsed = time.Since(start)
	if err != nil {
		return stats, err
	}
	if stats.Truncated {
		return stats, ErrExploreLimit
	}
	return stats, nil
}

// explorer is the legacy sequential depth-first search (Workers: 1). Its
// visit order — lexicographic in the script of arrival indices — is part
// of the compatibility contract and must not change.
type explorer struct {
	cfg       ExploreConfig
	visit     func(*Result) bool
	stats     *ExploreStats
	start     time.Time
	stopped   bool
	truncated bool
}

func (e *explorer) dfs(script []int, want []uint64) error {
	if e.stopped {
		return nil
	}
	e.stats.Replays++
	out, err := replay(e.cfg, script, want, false)
	if err != nil {
		return err
	}
	if out.res != nil {
		e.stats.Schedules++
		if e.stats.Schedules >= e.cfg.MaxRuns {
			e.stats.Truncated = true
			e.stopped = true
		}
		if !e.visit(out.res) {
			e.stopped = true
		}
		return nil
	}
	e.stats.States++
	emitExpand(e.cfg.Tracer, e.cfg.Metrics, e.start, len(script), out.fanout, out.fanout)
	for i := 0; i < out.fanout && !e.stopped; i++ {
		if err := e.dfs(append(script, i), append(want, out.hashes[i])); err != nil {
			return err
		}
	}
	return nil
}

// replayOutcome is what one replay of a schedule prefix produced: either
// a completed run (res != nil) or a choice point with fanout in-flight
// wires. encs/hashes canonically identify each in-flight wire; fp is the
// canonical-state fingerprint (computed only when logging is on).
type replayOutcome struct {
	fanout int
	encs   []string
	hashes []uint64
	res    *Result
	fp     [16]byte
}

// replay executes the workload following the script of arrival choices.
// want carries the expected wire identity for each script position; a
// mismatch (or an out-of-range index) means an earlier replay of the same
// prefix saw a different tree and is reported as ErrDivergentReplay.
// With logging set, the replay maintains the canonical-state logs needed
// for fingerprinting.
func replay(cfg ExploreConfig, script []int, want []uint64, logging bool) (*replayOutcome, error) {
	st := newReplayState(cfg, logging)
	if cfg.MakeHook != nil {
		st.hook = cfg.MakeHook()
	}
	for _, req := range cfg.Requests {
		st.invoke(req)
		if st.err != nil {
			return nil, st.err
		}
	}
	var scratch []byte
	pos := 0
	for len(st.inFlight) > 0 {
		if pos == len(script) {
			out := &replayOutcome{
				fanout: len(st.inFlight),
				encs:   make([]string, len(st.inFlight)),
				hashes: make([]uint64, len(st.inFlight)),
			}
			for i, w := range st.inFlight {
				enc := string(appendWireEnc(nil, w))
				out.encs[i] = enc
				out.hashes[i] = hash64([]byte(enc))
			}
			if logging {
				out.fp = st.fingerprint()
			}
			return out, nil
		}
		i := script[pos]
		if i >= len(st.inFlight) {
			return nil, fmt.Errorf("%w: arrival %d of %d disappeared at step %d",
				ErrDivergentReplay, i, len(st.inFlight), pos)
		}
		w := st.inFlight[i]
		if want != nil {
			scratch = appendWireEnc(scratch[:0], w)
			if hash64(scratch) != want[pos] {
				return nil, fmt.Errorf("%w: arrival %d changed identity at step %d",
					ErrDivergentReplay, i, pos)
			}
		}
		st.inFlight = append(st.inFlight[:i], st.inFlight[i+1:]...)
		st.arrive(w)
		if st.err != nil {
			return nil, st.err
		}
		pos++
	}
	if pos < len(script) {
		return nil, fmt.Errorf("%w: schedule ended after %d of %d arrivals",
			ErrDivergentReplay, pos, len(script))
	}
	sys, err := st.rec.SystemRun()
	if err != nil {
		return nil, fmt.Errorf("%w: recorded run invalid: %v", ErrProtocol, err)
	}
	view, err := sys.UsersView()
	if err != nil {
		return nil, fmt.Errorf("%w: user view invalid: %v", ErrProtocol, err)
	}
	out := &replayOutcome{res: &Result{
		System:      sys,
		View:        view,
		Stats:       st.rec.Stats(),
		Undelivered: st.rec.Undelivered(),
		Steps:       st.steps,
	}}
	if logging {
		out.fp = st.fingerprint()
	}
	return out, nil
}

// replayState is the lightweight single-threaded harness used by replay.
type replayState struct {
	n        int
	procs    []protocol.Process
	classes  []protocol.Class
	rec      *protocol.Recorder
	inFlight []protocol.Wire
	state    []event.Kind
	steps    int
	err      error
	hook     func(p event.ProcID, id event.MsgID) []Request
	// pending holds hook-triggered invokes, executed after the current
	// handler returns (matching the Sim and live-network semantics).
	pending []Request

	// Canonical-state logging for the fingerprint cache: plog records the
	// sequence of handler calls per process (which, by protocol
	// determinism, determines each process's state and the recorder's
	// per-process logs); hooklog records the global order of hook calls
	// (shared hook closures make deliveries at distinct processes
	// order-dependent).
	logging bool
	plog    [][]byte
	hooklog []byte
}

func newReplayState(cfg ExploreConfig, logging bool) *replayState {
	st := &replayState{
		n:       cfg.Procs,
		rec:     protocol.NewRecorder(cfg.Procs),
		logging: logging,
	}
	if logging {
		st.plog = make([][]byte, cfg.Procs)
	}
	for i := 0; i < cfg.Procs; i++ {
		p := cfg.Maker()
		class := protocol.General
		if d, ok := p.(protocol.Describer); ok {
			class = d.Describe().Class
		}
		st.procs = append(st.procs, p)
		st.classes = append(st.classes, class)
		p.Init(&replayEnv{st: st, self: event.ProcID(i)})
	}
	return st
}

func (st *replayState) fail(format string, args ...any) {
	if st.err == nil {
		st.err = fmt.Errorf("%w: %s", ErrProtocol, fmt.Sprintf(format, args...))
	}
}

func (st *replayState) advance(id event.MsgID, k event.Kind) bool {
	if int(id) >= len(st.state) {
		st.fail("event for unknown message m%d", id)
		return false
	}
	if st.state[id] != k-1 {
		st.fail("m%d: %v executed after %v", id, k, st.state[id])
		return false
	}
	st.state[id] = k
	return true
}

// logInvoke appends an invoke handler call to p's canonical log.
func (st *replayState) logInvoke(p event.ProcID, m event.Message) {
	if !st.logging {
		return
	}
	b := append(st.plog[p], 'I')
	st.plog[p] = appendUint32(appendUint32(b, uint32(m.ID)), uint32(m.Color))
}

func (st *replayState) invoke(req Request) {
	if int(req.From) >= st.n || req.From < 0 {
		st.fail("invoke with out-of-range process: %+v", req)
		return
	}
	if req.Broadcast {
		var msgs []event.Message
		for to := 0; to < st.n; to++ {
			if event.ProcID(to) == req.From {
				continue
			}
			m := st.rec.NewMessage(req.From, event.ProcID(to), req.Color)
			st.state = append(st.state, event.Invoke)
			st.logInvoke(req.From, m)
			msgs = append(msgs, m)
		}
		st.steps++
		if len(msgs) == 0 {
			return
		}
		if b, ok := st.procs[req.From].(protocol.Broadcaster); ok {
			b.OnBroadcast(msgs)
		} else {
			for _, m := range msgs {
				st.procs[req.From].OnInvoke(m)
			}
		}
		st.drainPending()
		return
	}
	if int(req.To) >= st.n || req.To < 0 {
		st.fail("invoke with out-of-range process: %+v", req)
		return
	}
	m := st.rec.NewMessage(req.From, req.To, req.Color)
	st.state = append(st.state, event.Invoke)
	st.logInvoke(req.From, m)
	st.steps++
	st.procs[req.From].OnInvoke(m)
	st.drainPending()
}

func (st *replayState) arrive(w protocol.Wire) {
	st.steps++
	if st.logging {
		st.plog[w.To] = appendWireEnc(append(st.plog[w.To], 'R'), w)
	}
	if w.Kind == protocol.UserWire {
		if !st.advance(w.Msg, event.Receive) {
			return
		}
		st.rec.RecordReceive(w.Msg)
	}
	st.procs[w.To].OnReceive(w)
	st.drainPending()
}

// drainPending executes hook-triggered invokes accumulated during the
// last handler, including those triggered transitively.
func (st *replayState) drainPending() {
	for len(st.pending) > 0 && st.err == nil {
		req := st.pending[0]
		st.pending = st.pending[1:]
		m := st.rec.NewMessage(req.From, req.To, req.Color)
		st.state = append(st.state, event.Invoke)
		st.logInvoke(req.From, m)
		st.steps++
		st.procs[req.From].OnInvoke(m)
	}
}

type replayEnv struct {
	st   *replayState
	self event.ProcID
}

var _ protocol.Env = (*replayEnv)(nil)

func (e *replayEnv) Self() event.ProcID { return e.self }
func (e *replayEnv) NumProcs() int      { return e.st.n }

func (e *replayEnv) Send(w protocol.Wire) {
	st := e.st
	w.From = e.self
	if int(w.To) < 0 || int(w.To) >= st.n {
		st.fail("send to out-of-range process %d", w.To)
		return
	}
	if err := protocol.CheckCapability(st.classes[e.self], w); err != nil {
		st.fail("P%d: %v", e.self, err)
		return
	}
	switch w.Kind {
	case protocol.UserWire:
		if !st.advance(w.Msg, event.Send) {
			return
		}
		st.rec.RecordSend(w.Msg, len(w.Tag))
	case protocol.ControlWire:
		st.rec.RecordControl(len(w.Tag))
	default:
		st.fail("P%d sent wire with invalid kind", e.self)
		return
	}
	st.inFlight = append(st.inFlight, w)
}

func (e *replayEnv) Deliver(id event.MsgID) {
	st := e.st
	if !st.advance(id, event.Deliver) {
		return
	}
	if st.rec.Message(id).To != e.self {
		st.fail("P%d delivered m%d not addressed to it", e.self, id)
		return
	}
	st.rec.RecordDeliver(id)
	if st.hook != nil {
		if st.logging {
			st.hooklog = appendUint32(appendUint32(st.hooklog, uint32(e.self)), uint32(id))
		}
		for _, req := range st.hook(e.self, id) {
			if int(req.From) >= st.n || int(req.To) >= st.n || req.From < 0 || req.To < 0 {
				st.fail("hook invoke with out-of-range process: %+v", req)
				return
			}
			st.pending = append(st.pending, req)
		}
	}
}
