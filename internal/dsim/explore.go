package dsim

import (
	"errors"
	"fmt"

	"msgorder/internal/event"
	"msgorder/internal/protocol"
)

// ErrExploreLimit reports that exploration was truncated by MaxRuns.
var ErrExploreLimit = errors.New("dsim: exploration truncated by run limit")

// ExploreConfig drives an exhaustive schedule search: the same protocol
// and workload are replayed under every possible network arrival order.
// Invokes execute eagerly in submission order; the only nondeterminism is
// which in-flight wire arrives next. This turns seed-based violation
// hunting into small-scope model checking: if no schedule violates a
// specification, none exists for that workload.
type ExploreConfig struct {
	// Procs is the number of processes.
	Procs int
	// Maker builds the protocol under test (fresh instances per replay).
	Maker protocol.Maker
	// Requests are the initial user invocations, executed in order.
	Requests []Request
	// MakeHook, when non-nil, builds a fresh per-replay delivery hook for
	// causal-chain workloads. It must be deterministic so replays agree.
	MakeHook func() func(p event.ProcID, id event.MsgID) []Request
	// MaxRuns bounds the number of complete schedules visited
	// (default 100000). Exceeding it returns ErrExploreLimit.
	MaxRuns int
}

// Explore enumerates every arrival order, calling visit with each
// completed run. visit returning false stops the search early (not an
// error). Returns the number of schedules visited.
func Explore(cfg ExploreConfig, visit func(*Result) bool) (int, error) {
	if cfg.Procs <= 0 || cfg.Maker == nil {
		return 0, fmt.Errorf("%w: bad config", ErrProtocol)
	}
	if cfg.MaxRuns == 0 {
		cfg.MaxRuns = 100000
	}
	e := &explorer{cfg: cfg, visit: visit}
	err := e.dfs(nil)
	if err != nil {
		return e.count, err
	}
	if e.truncated {
		return e.count, ErrExploreLimit
	}
	return e.count, nil
}

type explorer struct {
	cfg       ExploreConfig
	visit     func(*Result) bool
	count     int
	stopped   bool
	truncated bool
	script    []int
}

func (e *explorer) dfs(script []int) error {
	if e.stopped {
		return nil
	}
	fanout, res, err := e.replay(script)
	if err != nil {
		return err
	}
	if res != nil {
		e.count++
		if e.count >= e.cfg.MaxRuns {
			e.truncated = true
			e.stopped = true
		}
		if !e.visit(res) {
			e.stopped = true
		}
		return nil
	}
	for i := 0; i < fanout && !e.stopped; i++ {
		if err := e.dfs(append(script, i)); err != nil {
			return err
		}
	}
	return nil
}

// replay executes the workload following the script of arrival choices.
// If the script ends at a choice point, it returns the fanout; if the
// run completes, it returns the Result.
func (e *explorer) replay(script []int) (int, *Result, error) {
	st := newReplayState(e.cfg)
	if st.hook == nil && e.cfg.MakeHook != nil {
		st.hook = e.cfg.MakeHook()
	}
	for _, req := range e.cfg.Requests {
		st.invoke(req)
		if st.err != nil {
			return 0, nil, st.err
		}
	}
	pos := 0
	for {
		if len(st.inFlight) == 0 {
			break
		}
		if pos == len(script) {
			return len(st.inFlight), nil, nil
		}
		i := script[pos]
		pos++
		if i >= len(st.inFlight) {
			return 0, nil, fmt.Errorf("%w: script index out of range", ErrProtocol)
		}
		w := st.inFlight[i]
		st.inFlight = append(st.inFlight[:i], st.inFlight[i+1:]...)
		st.arrive(w)
		if st.err != nil {
			return 0, nil, st.err
		}
	}
	sys, err := st.rec.SystemRun()
	if err != nil {
		return 0, nil, fmt.Errorf("%w: recorded run invalid: %v", ErrProtocol, err)
	}
	view, err := sys.UsersView()
	if err != nil {
		return 0, nil, fmt.Errorf("%w: user view invalid: %v", ErrProtocol, err)
	}
	return 0, &Result{
		System:      sys,
		View:        view,
		Stats:       st.rec.Stats(),
		Undelivered: st.rec.Undelivered(),
		Steps:       st.steps,
	}, nil
}

// replayState is the lightweight single-threaded harness used by replay.
type replayState struct {
	n        int
	procs    []protocol.Process
	classes  []protocol.Class
	rec      *protocol.Recorder
	inFlight []protocol.Wire
	state    []event.Kind
	steps    int
	err      error
	hook     func(p event.ProcID, id event.MsgID) []Request
	// pending holds hook-triggered invokes, executed after the current
	// handler returns (matching the Sim and live-network semantics).
	pending []Request
}

func newReplayState(cfg ExploreConfig) *replayState {
	st := &replayState{
		n:   cfg.Procs,
		rec: protocol.NewRecorder(cfg.Procs),
	}
	for i := 0; i < cfg.Procs; i++ {
		p := cfg.Maker()
		class := protocol.General
		if d, ok := p.(protocol.Describer); ok {
			class = d.Describe().Class
		}
		st.procs = append(st.procs, p)
		st.classes = append(st.classes, class)
		p.Init(&replayEnv{st: st, self: event.ProcID(i)})
	}
	return st
}

func (st *replayState) fail(format string, args ...any) {
	if st.err == nil {
		st.err = fmt.Errorf("%w: %s", ErrProtocol, fmt.Sprintf(format, args...))
	}
}

func (st *replayState) advance(id event.MsgID, k event.Kind) bool {
	if int(id) >= len(st.state) {
		st.fail("event for unknown message m%d", id)
		return false
	}
	if st.state[id] != k-1 {
		st.fail("m%d: %v executed after %v", id, k, st.state[id])
		return false
	}
	st.state[id] = k
	return true
}

func (st *replayState) invoke(req Request) {
	if int(req.From) >= st.n || req.From < 0 {
		st.fail("invoke with out-of-range process: %+v", req)
		return
	}
	if req.Broadcast {
		var msgs []event.Message
		for to := 0; to < st.n; to++ {
			if event.ProcID(to) == req.From {
				continue
			}
			m := st.rec.NewMessage(req.From, event.ProcID(to), req.Color)
			st.state = append(st.state, event.Invoke)
			msgs = append(msgs, m)
		}
		st.steps++
		if len(msgs) == 0 {
			return
		}
		if b, ok := st.procs[req.From].(protocol.Broadcaster); ok {
			b.OnBroadcast(msgs)
		} else {
			for _, m := range msgs {
				st.procs[req.From].OnInvoke(m)
			}
		}
		st.drainPending()
		return
	}
	if int(req.To) >= st.n || req.To < 0 {
		st.fail("invoke with out-of-range process: %+v", req)
		return
	}
	m := st.rec.NewMessage(req.From, req.To, req.Color)
	st.state = append(st.state, event.Invoke)
	st.steps++
	st.procs[req.From].OnInvoke(m)
	st.drainPending()
}

func (st *replayState) arrive(w protocol.Wire) {
	st.steps++
	if w.Kind == protocol.UserWire {
		if !st.advance(w.Msg, event.Receive) {
			return
		}
		st.rec.RecordReceive(w.Msg)
	}
	st.procs[w.To].OnReceive(w)
	st.drainPending()
}

// drainPending executes hook-triggered invokes accumulated during the
// last handler, including those triggered transitively.
func (st *replayState) drainPending() {
	for len(st.pending) > 0 && st.err == nil {
		req := st.pending[0]
		st.pending = st.pending[1:]
		m := st.rec.NewMessage(req.From, req.To, req.Color)
		st.state = append(st.state, event.Invoke)
		st.steps++
		st.procs[req.From].OnInvoke(m)
	}
}

type replayEnv struct {
	st   *replayState
	self event.ProcID
}

var _ protocol.Env = (*replayEnv)(nil)

func (e *replayEnv) Self() event.ProcID { return e.self }
func (e *replayEnv) NumProcs() int      { return e.st.n }

func (e *replayEnv) Send(w protocol.Wire) {
	st := e.st
	w.From = e.self
	if int(w.To) < 0 || int(w.To) >= st.n {
		st.fail("send to out-of-range process %d", w.To)
		return
	}
	if err := protocol.CheckCapability(st.classes[e.self], w); err != nil {
		st.fail("P%d: %v", e.self, err)
		return
	}
	switch w.Kind {
	case protocol.UserWire:
		if !st.advance(w.Msg, event.Send) {
			return
		}
		st.rec.RecordSend(w.Msg, len(w.Tag))
	case protocol.ControlWire:
		st.rec.RecordControl(len(w.Tag))
	default:
		st.fail("P%d sent wire with invalid kind", e.self)
		return
	}
	st.inFlight = append(st.inFlight, w)
}

func (e *replayEnv) Deliver(id event.MsgID) {
	st := e.st
	if !st.advance(id, event.Deliver) {
		return
	}
	if st.rec.Message(id).To != e.self {
		st.fail("P%d delivered m%d not addressed to it", e.self, id)
		return
	}
	st.rec.RecordDeliver(id)
	if st.hook != nil {
		for _, req := range st.hook(e.self, id) {
			if int(req.From) >= st.n || int(req.To) >= st.n || req.From < 0 || req.To < 0 {
				st.fail("hook invoke with out-of-range process: %+v", req)
				return
			}
			st.pending = append(st.pending, req)
		}
	}
}
