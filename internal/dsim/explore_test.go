package dsim

import (
	"errors"
	"sync/atomic"
	"testing"

	"msgorder/internal/catalog"
	"msgorder/internal/check"
	"msgorder/internal/event"
	"msgorder/internal/protocol"
	"msgorder/internal/protocols/causal"
	"msgorder/internal/protocols/fifo"
	syncproto "msgorder/internal/protocols/sync"
	"msgorder/internal/protocols/tagless"
)

func fifoPred(t *testing.T) *catalogPred { return catPred(t, "fifo") }

type catalogPred = catalog.Entry

func catPred(t *testing.T, name string) *catalog.Entry {
	t.Helper()
	e, ok := catalog.ByName(name)
	if !ok {
		t.Fatalf("missing %s", name)
	}
	return &e
}

func TestExploreCountsSchedules(t *testing.T) {
	// Two messages on one channel under tagless transport: the two
	// arrival orders give two distinct runs.
	n, err := Explore(ExploreConfig{
		Procs: 2,
		Maker: tagless.Maker,
		Requests: []Request{
			{From: 0, To: 1},
			{From: 0, To: 1},
		},
	}, func(*Result) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("schedules = %d, want 2", n)
	}
}

// TestTaglessViolatesFIFOInSomeSchedule upgrades the seed hunt to a
// proof-by-enumeration: among ALL schedules of two same-channel messages,
// one violates FIFO.
func TestTaglessViolatesFIFOInSomeSchedule(t *testing.T) {
	e := fifoPred(t)
	found := false
	_, err := Explore(ExploreConfig{
		Procs: 2,
		Maker: tagless.Maker,
		Requests: []Request{
			{From: 0, To: 1},
			{From: 0, To: 1},
		},
	}, func(res *Result) bool {
		if _, bad := check.FindViolation(res.View, e.Pred); bad {
			found = true
			return false
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("no schedule violates FIFO — the adversary lost power")
	}
}

// TestFIFOSafeInAllSchedules: the FIFO protocol withstands every arrival
// order — exhaustive, not probabilistic.
func TestFIFOSafeInAllSchedules(t *testing.T) {
	e := fifoPred(t)
	n, err := Explore(ExploreConfig{
		Procs: 2,
		Maker: fifo.Maker,
		Requests: []Request{
			{From: 0, To: 1},
			{From: 0, To: 1},
			{From: 0, To: 1},
		},
	}, func(res *Result) bool {
		if len(res.Undelivered) > 0 {
			t.Fatal("liveness lost")
		}
		if m, bad := check.FindViolation(res.View, e.Pred); bad {
			t.Fatalf("FIFO violated: %s", m.String(e.Pred))
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 { // 3! arrival orders
		t.Fatalf("schedules = %d, want 6", n)
	}
}

// TestRSTCausalInAllSchedules model-checks the triangle workload: P0
// fires at P2 and P1; P1's delivery triggers a relay to P2. Every
// schedule must stay causally ordered and live.
func TestRSTCausalInAllSchedules(t *testing.T) {
	for name, maker := range map[string]protocol.Maker{
		"rst": causal.RSTMaker,
		"ses": causal.SESMaker,
	} {
		e := catPred(t, "causal-b2")
		n, err := Explore(ExploreConfig{
			Procs: 3,
			Maker: maker,
			Requests: []Request{
				{From: 0, To: 2},
				{From: 0, To: 1},
			},
			MakeHook: func() func(event.ProcID, event.MsgID) []Request {
				fired := false
				return func(p event.ProcID, _ event.MsgID) []Request {
					if p != 1 || fired {
						return nil
					}
					fired = true
					return []Request{{From: 1, To: 2}}
				}
			},
		}, func(res *Result) bool {
			if len(res.Undelivered) > 0 {
				t.Fatalf("%s: liveness lost", name)
			}
			if m, bad := check.FindViolation(res.View, e.Pred); bad {
				t.Fatalf("%s: causal ordering violated: %s", name, m.String(e.Pred))
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			t.Fatalf("%s: no schedules explored", name)
		}
	}
}

// TestTaglessTriangleViolatesCausal: the same triangle under tagless
// transport violates causal ordering in at least one schedule.
func TestTaglessTriangleViolatesCausal(t *testing.T) {
	e := catPred(t, "causal-b2")
	found := false
	_, err := Explore(ExploreConfig{
		Procs: 3,
		Maker: tagless.Maker,
		Requests: []Request{
			{From: 0, To: 2},
			{From: 0, To: 1},
		},
		MakeHook: func() func(event.ProcID, event.MsgID) []Request {
			fired := false
			return func(p event.ProcID, _ event.MsgID) []Request {
				if p != 1 || fired {
					return nil
				}
				fired = true
				return []Request{{From: 1, To: 2}}
			}
		},
	}, func(res *Result) bool {
		if _, bad := check.FindViolation(res.View, e.Pred); bad {
			found = true
			return false
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("triangle workload must violate causal ordering in some schedule")
	}
}

// TestSyncAllSchedulesSynchronous model-checks the sequencer: every
// arrival order of a two-message workload stays in X_sync.
func TestSyncAllSchedulesSynchronous(t *testing.T) {
	n, err := Explore(ExploreConfig{
		Procs: 3,
		Maker: syncproto.Maker,
		Requests: []Request{
			{From: 1, To: 2},
			{From: 2, To: 1},
		},
	}, func(res *Result) bool {
		if len(res.Undelivered) > 0 {
			t.Fatal("liveness lost")
		}
		if !res.View.InSync() {
			t.Fatalf("non-synchronous view under schedule:\n%v", res.View)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no schedules explored")
	}
	t.Logf("explored %d schedules", n)
}

func TestExploreRunLimit(t *testing.T) {
	_, err := Explore(ExploreConfig{
		Procs:   2,
		Maker:   tagless.Maker,
		MaxRuns: 3,
		Requests: []Request{
			{From: 0, To: 1}, {From: 0, To: 1}, {From: 0, To: 1}, {From: 0, To: 1},
		},
	}, func(*Result) bool { return true })
	if !errors.Is(err, ErrExploreLimit) {
		t.Fatalf("err = %v, want ErrExploreLimit", err)
	}
}

func TestExploreEarlyStopNotError(t *testing.T) {
	calls := 0
	n, err := Explore(ExploreConfig{
		Procs: 2,
		Maker: tagless.Maker,
		Requests: []Request{
			{From: 0, To: 1}, {From: 0, To: 1}, {From: 0, To: 1},
		},
	}, func(*Result) bool {
		calls++
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || calls != 1 {
		t.Fatalf("n = %d calls = %d, want 1/1", n, calls)
	}
}

func TestExploreBadConfig(t *testing.T) {
	if _, err := Explore(ExploreConfig{}, func(*Result) bool { return true }); !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol", err)
	}
}

// triangleHook builds the triangle workload's relay hook: P1's first
// delivery triggers a send to P2.
func triangleHook() func(event.ProcID, event.MsgID) []Request {
	fired := false
	return func(p event.ProcID, _ event.MsgID) []Request {
		if p != 1 || fired {
			return nil
		}
		fired = true
		return []Request{{From: 1, To: 2}}
	}
}

// exploreCensus runs one exploration and returns its stats, the ordered
// sequence of visited view keys, and the set of keys violating pred.
func exploreCensus(t *testing.T, cfg ExploreConfig, pred *catalog.Entry) (ExploreStats, []string, map[string]bool) {
	t.Helper()
	var seq []string
	viol := make(map[string]bool)
	st, err := ExploreWithStats(cfg, func(res *Result) bool {
		key := res.View.Key()
		seq = append(seq, key)
		if _, bad := check.FindViolation(res.View, pred.Pred); bad {
			viol[key] = true
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return st, seq, viol
}

// TestParallelMatchesSequentialViolationSets is the soundness contract of
// the deduplicating search: over a matrix of protocols and workloads, the
// default parallel+dedup explorer must find exactly the same set of
// distinct views — and hence the same violation set — as the legacy
// Workers: 1 enumeration.
func TestParallelMatchesSequentialViolationSets(t *testing.T) {
	msgs := func(reqs ...Request) []Request { return reqs }
	cases := []struct {
		name string
		cfg  ExploreConfig
		spec string
	}{
		{"tagless-vs-fifo", ExploreConfig{Procs: 2, Maker: tagless.Maker,
			Requests: msgs(Request{From: 0, To: 1}, Request{From: 0, To: 1}, Request{From: 0, To: 1})}, "fifo"},
		{"fifo-vs-fifo", ExploreConfig{Procs: 2, Maker: fifo.Maker,
			Requests: msgs(Request{From: 0, To: 1}, Request{From: 0, To: 1}, Request{From: 0, To: 1})}, "fifo"},
		{"tagless-triangle-vs-causal", ExploreConfig{Procs: 3, Maker: tagless.Maker,
			Requests: msgs(Request{From: 0, To: 2}, Request{From: 0, To: 1}),
			MakeHook: triangleHook}, "causal-b2"},
		{"rst-triangle-vs-causal", ExploreConfig{Procs: 3, Maker: causal.RSTMaker,
			Requests: msgs(Request{From: 0, To: 2}, Request{From: 0, To: 1}),
			MakeHook: triangleHook}, "causal-b2"},
		{"rst-crossing-vs-causal", ExploreConfig{Procs: 3, Maker: causal.RSTMaker,
			Requests: msgs(Request{From: 0, To: 1}, Request{From: 0, To: 2},
				Request{From: 1, To: 2}, Request{From: 2, To: 1})}, "causal-b2"},
		{"sync-vs-sync", ExploreConfig{Procs: 3, Maker: syncproto.Maker,
			Requests: msgs(Request{From: 1, To: 2}, Request{From: 2, To: 1})}, "sync-2"},
		{"sync-ra-vs-sync", ExploreConfig{Procs: 3, Maker: syncproto.RAMaker,
			Requests: msgs(Request{From: 1, To: 2}, Request{From: 2, To: 1})}, "sync-2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pred := catPred(t, tc.spec)
			serial := tc.cfg
			serial.Workers = 1
			_, sseq, sviol := exploreCensus(t, serial, pred)
			_, pseq, pviol := exploreCensus(t, tc.cfg, pred)

			sset := make(map[string]bool, len(sseq))
			for _, k := range sseq {
				sset[k] = true
			}
			pset := make(map[string]bool, len(pseq))
			for _, k := range pseq {
				pset[k] = true
			}
			if len(sset) != len(pset) {
				t.Fatalf("distinct views: serial %d, parallel %d", len(sset), len(pset))
			}
			for k := range sset {
				if !pset[k] {
					t.Fatalf("view visited serially but not in parallel:\n%s", k)
				}
			}
			if len(sviol) != len(pviol) {
				t.Fatalf("violation sets differ: serial %d, parallel %d", len(sviol), len(pviol))
			}
			for k := range sviol {
				if !pviol[k] {
					t.Fatalf("violation found serially but not in parallel:\n%s", k)
				}
			}
		})
	}
}

// TestSequentialOrderIsStable pins the Workers: 1 compatibility contract:
// the legacy search visits schedules in lexicographic arrival order, so
// two runs produce identical visit sequences (and the deduplicating
// search covers the same distinct views).
func TestSequentialOrderIsStable(t *testing.T) {
	cfg := ExploreConfig{
		Procs: 2,
		Maker: fifo.Maker,
		Requests: []Request{
			{From: 0, To: 1}, {From: 0, To: 1}, {From: 0, To: 1},
		},
		Workers: 1,
	}
	e := fifoPred(t)
	_, first, _ := exploreCensus(t, cfg, e)
	_, second, _ := exploreCensus(t, cfg, e)
	if len(first) != 6 {
		t.Fatalf("visited %d schedules, want 3! = 6", len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("visit %d differs between identical sequential runs", i)
		}
	}
}

// TestDedupCutsReplaysAtLeastTwofold encodes the performance contract:
// on 3-process workloads with commuting deliveries, the deduplicating
// search must do at most half the replays of the full enumeration.
func TestDedupCutsReplaysAtLeastTwofold(t *testing.T) {
	for name, cfg := range map[string]ExploreConfig{
		"causal-rst": {Procs: 3, Maker: causal.RSTMaker, Requests: []Request{
			{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 2}, {From: 2, To: 1},
		}},
		"sync-ra": {Procs: 3, Maker: syncproto.RAMaker, Requests: []Request{
			{From: 1, To: 2}, {From: 2, To: 1},
		}},
	} {
		serial := cfg
		serial.Workers = 1
		sst, _, _ := exploreCensus(t, serial, fifoPred(t))
		pst, _, _ := exploreCensus(t, cfg, fifoPred(t))
		if pst.Replays*2 > sst.Replays {
			t.Errorf("%s: dedup replays %d vs sequential %d — less than 2x reduction",
				name, pst.Replays, sst.Replays)
		}
		if pst.DedupHits+pst.SleepHits == 0 {
			t.Errorf("%s: no pruning recorded in stats", name)
		}
		t.Logf("%s: %d -> %d replays (%.1fx), %d dedup hits, %d sleep hits",
			name, sst.Replays, pst.Replays,
			float64(sst.Replays)/float64(pst.Replays), pst.DedupHits, pst.SleepHits)
	}
}

// TestDivergentHookDetected: a MakeHook whose behavior changes between
// replays makes the schedule tree ill-defined; the explorer must fail
// with ErrDivergentReplay instead of silently exploring a different tree.
func TestDivergentHookDetected(t *testing.T) {
	for _, workers := range []int{1, 0} {
		// The first replay stops at the root choice point before any
		// delivery, so the hook must misbehave on the second replay —
		// the first one that delivers — for the trees to diverge.
		var replayCount atomic.Int32
		_, err := Explore(ExploreConfig{
			Procs:   2,
			Maker:   tagless.Maker,
			Workers: workers,
			Requests: []Request{
				{From: 0, To: 1}, {From: 0, To: 1},
			},
			MakeHook: func() func(event.ProcID, event.MsgID) []Request {
				fire := replayCount.Add(1) == 2
				sent := false
				return func(p event.ProcID, _ event.MsgID) []Request {
					if !fire || sent || p != 1 {
						return nil
					}
					sent = true
					return []Request{{From: 1, To: 0}}
				}
			},
		}, func(*Result) bool { return true })
		if !errors.Is(err, ErrDivergentReplay) {
			t.Fatalf("workers=%d: err = %v, want ErrDivergentReplay", workers, err)
		}
	}
}

// TestNoDedupStillCoversAllViews: disabling the fingerprint cache keeps
// the search sound (commutativity pruning alone preserves all final
// states).
func TestNoDedupStillCoversAllViews(t *testing.T) {
	cfg := ExploreConfig{Procs: 3, Maker: causal.RSTMaker, Requests: []Request{
		{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 2}, {From: 2, To: 1},
	}}
	serial := cfg
	serial.Workers = 1
	_, sseq, _ := exploreCensus(t, serial, fifoPred(t))
	nodedup := cfg
	nodedup.NoDedup = true
	_, pseq, _ := exploreCensus(t, nodedup, fifoPred(t))
	want := make(map[string]bool)
	for _, k := range sseq {
		want[k] = true
	}
	got := make(map[string]bool)
	for _, k := range pseq {
		got[k] = true
	}
	if len(got) != len(want) {
		t.Fatalf("distinct views: no-dedup %d, sequential %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("view lost without dedup:\n%s", k)
		}
	}
}

// TestExploreStatsAccounting sanity-checks the Stats result on a workload
// small enough to reason about: 2 same-channel messages have 2 schedules,
// 3 interior states (root, after-m0, after-m1) and no pruning.
func TestExploreStatsAccounting(t *testing.T) {
	st, err := ExploreWithStats(ExploreConfig{
		Procs: 2,
		Maker: tagless.Maker,
		Requests: []Request{
			{From: 0, To: 1}, {From: 0, To: 1},
		},
	}, func(*Result) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if st.Schedules != 2 || st.States != 3 {
		t.Fatalf("schedules=%d states=%d, want 2/3", st.Schedules, st.States)
	}
	if st.Replays != st.States+st.Schedules {
		t.Fatalf("replays=%d, want states+schedules=%d", st.Replays, st.States+st.Schedules)
	}
	if st.Workers < 1 || st.Elapsed <= 0 {
		t.Fatalf("workers=%d elapsed=%v not populated", st.Workers, st.Elapsed)
	}
}
