package dsim

import (
	"errors"
	"testing"

	"msgorder/internal/catalog"
	"msgorder/internal/check"
	"msgorder/internal/event"
	"msgorder/internal/protocol"
	"msgorder/internal/protocols/causal"
	"msgorder/internal/protocols/fifo"
	syncproto "msgorder/internal/protocols/sync"
	"msgorder/internal/protocols/tagless"
)

func fifoPred(t *testing.T) *catalogPred { return catPred(t, "fifo") }

type catalogPred = catalog.Entry

func catPred(t *testing.T, name string) *catalog.Entry {
	t.Helper()
	e, ok := catalog.ByName(name)
	if !ok {
		t.Fatalf("missing %s", name)
	}
	return &e
}

func TestExploreCountsSchedules(t *testing.T) {
	// Two messages on one channel under tagless transport: the two
	// arrival orders give two distinct runs.
	n, err := Explore(ExploreConfig{
		Procs: 2,
		Maker: tagless.Maker,
		Requests: []Request{
			{From: 0, To: 1},
			{From: 0, To: 1},
		},
	}, func(*Result) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("schedules = %d, want 2", n)
	}
}

// TestTaglessViolatesFIFOInSomeSchedule upgrades the seed hunt to a
// proof-by-enumeration: among ALL schedules of two same-channel messages,
// one violates FIFO.
func TestTaglessViolatesFIFOInSomeSchedule(t *testing.T) {
	e := fifoPred(t)
	found := false
	_, err := Explore(ExploreConfig{
		Procs: 2,
		Maker: tagless.Maker,
		Requests: []Request{
			{From: 0, To: 1},
			{From: 0, To: 1},
		},
	}, func(res *Result) bool {
		if _, bad := check.FindViolation(res.View, e.Pred); bad {
			found = true
			return false
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("no schedule violates FIFO — the adversary lost power")
	}
}

// TestFIFOSafeInAllSchedules: the FIFO protocol withstands every arrival
// order — exhaustive, not probabilistic.
func TestFIFOSafeInAllSchedules(t *testing.T) {
	e := fifoPred(t)
	n, err := Explore(ExploreConfig{
		Procs: 2,
		Maker: fifo.Maker,
		Requests: []Request{
			{From: 0, To: 1},
			{From: 0, To: 1},
			{From: 0, To: 1},
		},
	}, func(res *Result) bool {
		if len(res.Undelivered) > 0 {
			t.Fatal("liveness lost")
		}
		if m, bad := check.FindViolation(res.View, e.Pred); bad {
			t.Fatalf("FIFO violated: %s", m.String(e.Pred))
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 { // 3! arrival orders
		t.Fatalf("schedules = %d, want 6", n)
	}
}

// TestRSTCausalInAllSchedules model-checks the triangle workload: P0
// fires at P2 and P1; P1's delivery triggers a relay to P2. Every
// schedule must stay causally ordered and live.
func TestRSTCausalInAllSchedules(t *testing.T) {
	for name, maker := range map[string]protocol.Maker{
		"rst": causal.RSTMaker,
		"ses": causal.SESMaker,
	} {
		e := catPred(t, "causal-b2")
		n, err := Explore(ExploreConfig{
			Procs: 3,
			Maker: maker,
			Requests: []Request{
				{From: 0, To: 2},
				{From: 0, To: 1},
			},
			MakeHook: func() func(event.ProcID, event.MsgID) []Request {
				fired := false
				return func(p event.ProcID, _ event.MsgID) []Request {
					if p != 1 || fired {
						return nil
					}
					fired = true
					return []Request{{From: 1, To: 2}}
				}
			},
		}, func(res *Result) bool {
			if len(res.Undelivered) > 0 {
				t.Fatalf("%s: liveness lost", name)
			}
			if m, bad := check.FindViolation(res.View, e.Pred); bad {
				t.Fatalf("%s: causal ordering violated: %s", name, m.String(e.Pred))
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			t.Fatalf("%s: no schedules explored", name)
		}
	}
}

// TestTaglessTriangleViolatesCausal: the same triangle under tagless
// transport violates causal ordering in at least one schedule.
func TestTaglessTriangleViolatesCausal(t *testing.T) {
	e := catPred(t, "causal-b2")
	found := false
	_, err := Explore(ExploreConfig{
		Procs: 3,
		Maker: tagless.Maker,
		Requests: []Request{
			{From: 0, To: 2},
			{From: 0, To: 1},
		},
		MakeHook: func() func(event.ProcID, event.MsgID) []Request {
			fired := false
			return func(p event.ProcID, _ event.MsgID) []Request {
				if p != 1 || fired {
					return nil
				}
				fired = true
				return []Request{{From: 1, To: 2}}
			}
		},
	}, func(res *Result) bool {
		if _, bad := check.FindViolation(res.View, e.Pred); bad {
			found = true
			return false
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("triangle workload must violate causal ordering in some schedule")
	}
}

// TestSyncAllSchedulesSynchronous model-checks the sequencer: every
// arrival order of a two-message workload stays in X_sync.
func TestSyncAllSchedulesSynchronous(t *testing.T) {
	n, err := Explore(ExploreConfig{
		Procs: 3,
		Maker: syncproto.Maker,
		Requests: []Request{
			{From: 1, To: 2},
			{From: 2, To: 1},
		},
	}, func(res *Result) bool {
		if len(res.Undelivered) > 0 {
			t.Fatal("liveness lost")
		}
		if !res.View.InSync() {
			t.Fatalf("non-synchronous view under schedule:\n%v", res.View)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no schedules explored")
	}
	t.Logf("explored %d schedules", n)
}

func TestExploreRunLimit(t *testing.T) {
	_, err := Explore(ExploreConfig{
		Procs:   2,
		Maker:   tagless.Maker,
		MaxRuns: 3,
		Requests: []Request{
			{From: 0, To: 1}, {From: 0, To: 1}, {From: 0, To: 1}, {From: 0, To: 1},
		},
	}, func(*Result) bool { return true })
	if !errors.Is(err, ErrExploreLimit) {
		t.Fatalf("err = %v, want ErrExploreLimit", err)
	}
}

func TestExploreEarlyStopNotError(t *testing.T) {
	calls := 0
	n, err := Explore(ExploreConfig{
		Procs: 2,
		Maker: tagless.Maker,
		Requests: []Request{
			{From: 0, To: 1}, {From: 0, To: 1}, {From: 0, To: 1},
		},
	}, func(*Result) bool {
		calls++
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || calls != 1 {
		t.Fatalf("n = %d calls = %d, want 1/1", n, calls)
	}
}

func TestExploreBadConfig(t *testing.T) {
	if _, err := Explore(ExploreConfig{}, func(*Result) bool { return true }); !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol", err)
	}
}
