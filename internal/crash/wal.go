package crash

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"msgorder/internal/event"
	"msgorder/internal/protocol"
)

// EntryKind identifies what a WAL entry journals.
type EntryKind uint8

// WAL entry kinds. Invoke, Broadcast and Receive are handler *inputs*
// (replayed into the recovering instance); Send and Deliver are handler
// *outputs* (used to verify the replayed instance re-emits the same
// effects, which the harness suppresses during replay).
const (
	EntryInvoke EntryKind = iota + 1
	EntryBroadcast
	EntryReceive
	EntrySend
	EntryDeliver
)

// snapshotRecord tags a checkpoint in the file encoding.
const snapshotRecord = 0x7F

// String returns the kind name.
func (k EntryKind) String() string {
	switch k {
	case EntryInvoke:
		return "invoke"
	case EntryBroadcast:
		return "broadcast"
	case EntryReceive:
		return "receive"
	case EntrySend:
		return "send"
	case EntryDeliver:
		return "deliver"
	default:
		return fmt.Sprintf("entry(%d)", uint8(k))
	}
}

// Entry is one journaled protocol event.
type Entry struct {
	Kind EntryKind
	// Msg is the invoked message (EntryInvoke).
	Msg event.Message
	// Msgs are the copies of one logical broadcast (EntryBroadcast).
	Msgs []event.Message
	// Wire is the received or sent wire (EntryReceive, EntrySend). The
	// observability stamp (Wire.VC) is not journaled.
	Wire protocol.Wire
	// ID is the delivered message (EntryDeliver).
	ID event.MsgID
	// Seq is the transport sequence number the received wire arrived
	// under (EntryReceive on the socket runtime; zero elsewhere). A
	// durable restart replays it into the transport's dedup state so a
	// retransmission of an already-handled envelope is absorbed instead
	// of re-delivered.
	Seq uint64
}

// Input reports whether the entry is a handler input (replayed) rather
// than an output (verified).
func (e Entry) Input() bool {
	return e.Kind == EntryInvoke || e.Kind == EntryBroadcast || e.Kind == EntryReceive
}

// ErrWALCorrupt reports a malformed WAL file.
var ErrWALCorrupt = errors.New("crash: corrupt WAL encoding")

// GroupCommit batches the WAL's file mirroring: instead of one write
// (and optional fsync) per journaled event, encoded entries accumulate
// in a commit buffer that flushes as one write when MaxPending entries
// have gathered, when Window expires, or on Flush/Checkpoint/Close.
// Only the durable mirror is batched — the in-memory journal that
// recovery replays and verifies against is always appended
// synchronously, so replay/verify semantics are byte-identical to the
// unbatched path. The trade is the classic group-commit one: an
// OS-process crash can lose at most Window (or MaxPending entries) of
// the journal tail, in exchange for amortizing the write/fsync cost
// across the whole batch.
type GroupCommit struct {
	// MaxPending forces a flush once this many entries are buffered
	// (default 64).
	MaxPending int
	// Window bounds how long an entry may sit unflushed before a
	// background flush fires (default 1ms).
	Window time.Duration
	// Sync fsyncs the file on every flush — one fsync per batch rather
	// than per entry (the group-commit fsync amortization). Off, the OS
	// page cache decides, as the unbatched path always did.
	Sync bool
}

func (gc GroupCommit) withDefaults() GroupCommit {
	if gc.MaxPending <= 0 {
		gc.MaxPending = 64
	}
	if gc.Window <= 0 {
		gc.Window = time.Millisecond
	}
	return gc
}

// WALStats tallies the journal's append and group-commit work.
type WALStats struct {
	// Appends counts entries journaled.
	Appends int
	// Flushes counts file writes (one per commit batch; on the
	// unbatched path, one per entry).
	Flushes int
	// FlushedEntries counts entries carried by those writes.
	FlushedEntries int
	// Syncs counts fsyncs issued (GroupCommit.Sync only).
	Syncs int
}

// WAL is one process's append-only write-ahead log. It holds the
// latest snapshot checkpoint plus every entry journaled since, and
// optionally mirrors both into a file — per entry, or in group-commit
// batches (EnableGroupCommit). Safe for concurrent use (the process
// goroutine appends while the restart goroutine replays).
type WAL struct {
	mu      sync.Mutex
	snap    []byte // latest checkpoint (nil: none)
	entries []Entry
	total   int // entries ever journaled, across checkpoints
	f       *os.File

	gc        *GroupCommit
	pendBuf   []byte // encoded entries awaiting one grouped write
	pendCount int
	timer     *time.Timer // armed while pendBuf is non-empty
	stats     WALStats
}

// NewWAL returns an empty in-memory WAL.
func NewWAL() *WAL { return &WAL{} }

// OpenFileWAL opens (or creates) a file-backed WAL, loading any
// snapshot and entries a previous incarnation persisted.
func OpenFileWAL(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	b, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, err
	}
	w := &WAL{f: f}
	if err := w.load(b); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// load parses a serialized WAL into the in-memory mirror.
func (w *WAL) load(b []byte) error {
	for len(b) > 0 {
		if b[0] == snapshotRecord {
			rest, snap, err := readBytes(b[1:])
			if err != nil {
				return err
			}
			w.snap = snap
			w.entries = nil
			b = rest
			continue
		}
		rest, e, err := decodeEntry(b)
		if err != nil {
			return err
		}
		w.entries = append(w.entries, e)
		w.total++
		b = rest
	}
	return nil
}

// EnableGroupCommit switches the file mirror to batched group-commit
// writes (see GroupCommit). Zero-value fields take defaults. The
// in-memory journal is unaffected — replay and output verification see
// exactly the same entries, in the same order, as the per-entry path.
func (w *WAL) EnableGroupCommit(cfg GroupCommit) {
	gc := cfg.withDefaults()
	w.mu.Lock()
	w.gc = &gc
	w.mu.Unlock()
}

// Append journals one entry. The in-memory mirror is updated
// immediately; with group commit enabled, the file write may be
// deferred into the current commit batch.
func (w *WAL) Append(e Entry) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.entries = append(w.entries, e)
	w.total++
	w.stats.Appends++
	if w.f == nil {
		return nil
	}
	if w.gc == nil {
		w.stats.Flushes++
		w.stats.FlushedEntries++
		if _, err := w.f.Write(encodeEntry(nil, e)); err != nil {
			return fmt.Errorf("crash: WAL append: %w", err)
		}
		return nil
	}
	w.pendBuf = encodeEntry(w.pendBuf, e)
	w.pendCount++
	if w.pendCount >= w.gc.MaxPending {
		return w.flushLocked()
	}
	if w.timer == nil {
		w.timer = time.AfterFunc(w.gc.Window, func() {
			w.mu.Lock()
			defer w.mu.Unlock()
			w.timer = nil
			_ = w.flushLocked()
		})
	}
	return nil
}

// Flush writes any batched entries to the file immediately.
func (w *WAL) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.flushLocked()
}

// flushLocked writes the pending commit batch, if any. Caller holds mu.
func (w *WAL) flushLocked() error {
	if w.timer != nil {
		w.timer.Stop()
		w.timer = nil
	}
	if w.pendCount == 0 || w.f == nil {
		w.pendBuf = w.pendBuf[:0]
		w.pendCount = 0
		return nil
	}
	n := w.pendCount
	buf := w.pendBuf
	w.pendBuf = buf[:0] // mu is held across the write, so reuse is safe
	w.pendCount = 0
	if _, err := w.f.Write(buf); err != nil {
		return fmt.Errorf("crash: WAL flush: %w", err)
	}
	w.stats.Flushes++
	w.stats.FlushedEntries += n
	if w.gc != nil && w.gc.Sync {
		w.stats.Syncs++
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("crash: WAL sync: %w", err)
		}
	}
	return nil
}

// Stats returns the journal's append/flush tallies so far.
func (w *WAL) Stats() WALStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// Checkpoint replaces everything journaled so far with a snapshot:
// recovery will restore snap and replay only entries appended after
// this call.
func (w *WAL) Checkpoint(snap []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.snap = append([]byte(nil), snap...)
	w.entries = nil
	// Pending batched entries are superseded by the snapshot: discard
	// them rather than write bytes the truncate would erase anyway.
	if w.timer != nil {
		w.timer.Stop()
		w.timer = nil
	}
	w.pendBuf = w.pendBuf[:0]
	w.pendCount = 0
	if w.f == nil {
		return nil
	}
	buf := append([]byte{snapshotRecord}, binary.AppendUvarint(nil, uint64(len(w.snap)))...)
	buf = append(buf, w.snap...)
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("crash: WAL checkpoint: %w", err)
	}
	if _, err := w.f.WriteAt(buf, 0); err != nil {
		return fmt.Errorf("crash: WAL checkpoint: %w", err)
	}
	if _, err := w.f.Seek(int64(len(buf)), 0); err != nil {
		return fmt.Errorf("crash: WAL checkpoint: %w", err)
	}
	return nil
}

// Replay returns the latest snapshot (nil if none) and a copy of the
// entries journaled since.
func (w *WAL) Replay() ([]byte, []Entry) {
	w.mu.Lock()
	defer w.mu.Unlock()
	var snap []byte
	if w.snap != nil {
		snap = append([]byte(nil), w.snap...)
	}
	return snap, append([]Entry(nil), w.entries...)
}

// SinceCheckpoint returns the number of entries journaled since the
// latest checkpoint (or ever, without one).
func (w *WAL) SinceCheckpoint() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.entries)
}

// Total returns the number of entries ever journaled.
func (w *WAL) Total() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.total
}

// Close flushes any batched entries and releases the backing file, if
// any.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	ferr := w.flushLocked()
	err := w.f.Close()
	w.f = nil
	if err == nil {
		err = ferr
	}
	return err
}

// SameOutput reports whether two output entries describe the same
// effect: identical deliveries, or sends of byte-identical wires
// (ignoring the observability stamp).
func SameOutput(a, b Entry) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case EntryDeliver:
		return a.ID == b.ID
	case EntrySend:
		return a.Wire.From == b.Wire.From && a.Wire.To == b.Wire.To &&
			a.Wire.Kind == b.Wire.Kind && a.Wire.Msg == b.Wire.Msg &&
			a.Wire.Color == b.Wire.Color && a.Wire.Ctrl == b.Wire.Ctrl &&
			a.Wire.Key == b.Wire.Key &&
			bytes.Equal(a.Wire.Tag, b.Wire.Tag)
	default:
		return false
	}
}

// encodeEntry appends e's file encoding to buf.
func encodeEntry(buf []byte, e Entry) []byte {
	buf = append(buf, byte(e.Kind))
	switch e.Kind {
	case EntryInvoke:
		buf = appendMessage(buf, e.Msg)
	case EntryBroadcast:
		buf = binary.AppendUvarint(buf, uint64(len(e.Msgs)))
		for _, m := range e.Msgs {
			buf = appendMessage(buf, m)
		}
	case EntryReceive, EntrySend:
		buf = binary.AppendUvarint(buf, e.Seq)
		buf = appendWire(buf, e.Wire)
	case EntryDeliver:
		buf = binary.AppendUvarint(buf, uint64(e.ID))
	}
	return buf
}

// decodeEntry parses one entry off the front of b.
func decodeEntry(b []byte) ([]byte, Entry, error) {
	if len(b) == 0 {
		return nil, Entry{}, ErrWALCorrupt
	}
	e := Entry{Kind: EntryKind(b[0])}
	b = b[1:]
	var err error
	switch e.Kind {
	case EntryInvoke:
		b, e.Msg, err = readMessage(b)
	case EntryBroadcast:
		var n uint64
		b, n, err = readUvarint(b)
		if err == nil && n > 1<<20 {
			err = ErrWALCorrupt
		}
		for i := uint64(0); err == nil && i < n; i++ {
			var m event.Message
			b, m, err = readMessage(b)
			e.Msgs = append(e.Msgs, m)
		}
	case EntryReceive, EntrySend:
		if b, e.Seq, err = readUvarint(b); err == nil {
			b, e.Wire, err = readWire(b)
		}
	case EntryDeliver:
		var id uint64
		b, id, err = readUvarint(b)
		e.ID = event.MsgID(id)
	default:
		err = ErrWALCorrupt
	}
	if err != nil {
		return nil, Entry{}, err
	}
	return b, e, nil
}

func appendMessage(buf []byte, m event.Message) []byte {
	buf = binary.AppendUvarint(buf, uint64(m.ID))
	buf = binary.AppendUvarint(buf, uint64(m.From))
	buf = binary.AppendUvarint(buf, uint64(m.To))
	buf = binary.AppendUvarint(buf, uint64(m.Color))
	buf = binary.AppendUvarint(buf, uint64(m.Key))
	return buf
}

func readMessage(b []byte) ([]byte, event.Message, error) {
	var m event.Message
	vals := make([]uint64, 5)
	var err error
	for i := range vals {
		if b, vals[i], err = readUvarint(b); err != nil {
			return nil, m, err
		}
	}
	m = event.Message{
		ID:    event.MsgID(vals[0]),
		From:  event.ProcID(vals[1]),
		To:    event.ProcID(vals[2]),
		Color: event.Color(vals[3]),
		Key:   event.Key(vals[4]),
	}
	return b, m, nil
}

func appendWire(buf []byte, w protocol.Wire) []byte {
	buf = binary.AppendUvarint(buf, uint64(w.From))
	buf = binary.AppendUvarint(buf, uint64(w.To))
	buf = append(buf, byte(w.Kind), w.Ctrl)
	buf = binary.AppendUvarint(buf, uint64(w.Msg))
	buf = binary.AppendUvarint(buf, uint64(w.Color))
	buf = binary.AppendUvarint(buf, uint64(w.Key))
	buf = binary.AppendUvarint(buf, uint64(len(w.Tag)))
	buf = append(buf, w.Tag...)
	return buf
}

func readWire(b []byte) ([]byte, protocol.Wire, error) {
	var w protocol.Wire
	var from, to uint64
	var err error
	if b, from, err = readUvarint(b); err != nil {
		return nil, w, err
	}
	if b, to, err = readUvarint(b); err != nil {
		return nil, w, err
	}
	if len(b) < 2 {
		return nil, w, ErrWALCorrupt
	}
	w.From, w.To = event.ProcID(from), event.ProcID(to)
	w.Kind, w.Ctrl = protocol.WireKind(b[0]), b[1]
	b = b[2:]
	var msg, color, key uint64
	if b, msg, err = readUvarint(b); err != nil {
		return nil, w, err
	}
	if b, color, err = readUvarint(b); err != nil {
		return nil, w, err
	}
	if b, key, err = readUvarint(b); err != nil {
		return nil, w, err
	}
	w.Msg, w.Color, w.Key = event.MsgID(msg), event.Color(color), event.Key(key)
	var tag []byte
	if b, tag, err = readBytes(b); err != nil {
		return nil, w, err
	}
	if len(tag) > 0 {
		w.Tag = tag
	}
	return b, w, nil
}

func readUvarint(b []byte) ([]byte, uint64, error) {
	v, k := binary.Uvarint(b)
	if k <= 0 {
		return nil, 0, ErrWALCorrupt
	}
	return b[k:], v, nil
}

func readBytes(b []byte) ([]byte, []byte, error) {
	b, n, err := readUvarint(b)
	if err != nil || uint64(len(b)) < n || n > 1<<30 {
		return nil, nil, ErrWALCorrupt
	}
	return b[n:], append([]byte(nil), b[:n]...), nil
}
