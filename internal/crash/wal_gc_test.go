package crash

import (
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"msgorder/internal/event"
	"msgorder/internal/protocol"
)

// gcEntries builds n distinct journal entries.
func gcEntries(n int) []Entry {
	out := make([]Entry, n)
	for i := range out {
		switch i % 3 {
		case 0:
			out[i] = Entry{Kind: EntryInvoke, Msg: event.Message{ID: event.MsgID(i), From: 0, To: 1}}
		case 1:
			out[i] = Entry{Kind: EntryReceive, Wire: protocol.Wire{From: 1, To: 0,
				Kind: protocol.UserWire, Msg: event.MsgID(i), Tag: []byte{byte(i)}}}
		default:
			out[i] = Entry{Kind: EntryDeliver, ID: event.MsgID(i)}
		}
	}
	return out
}

// fileEntries reopens path as a second WAL and returns what the file
// actually holds — the durable view, independent of the in-memory
// mirror of the WAL under test.
func fileEntries(t *testing.T, path string) ([]byte, []Entry) {
	t.Helper()
	r, err := OpenFileWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	return r.Replay()
}

func TestGroupCommitBatchesFileWrites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gc.wal")
	w, err := OpenFileWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	w.EnableGroupCommit(GroupCommit{MaxPending: 8, Window: time.Hour})
	entries := gcEntries(20)
	for _, e := range entries {
		if err := w.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	st := w.Stats()
	if st.Appends != 20 || st.Flushes != 2 || st.FlushedEntries != 16 {
		t.Fatalf("stats = %+v, want 20 appends in 2 flushes of 16 entries", st)
	}
	// The in-memory mirror is always complete — replay/verify semantics
	// do not see the batching.
	if _, mem := w.Replay(); !reflect.DeepEqual(mem, entries) {
		t.Fatal("in-memory mirror diverged from the appended entries")
	}
	// The file holds only the flushed batches until Flush.
	if _, onDisk := fileEntries(t, path); len(onDisk) != 16 {
		t.Fatalf("file holds %d entries before Flush, want 16", len(onDisk))
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	st = w.Stats()
	if st.Flushes != 3 || st.FlushedEntries != 20 {
		t.Fatalf("stats after Flush = %+v", st)
	}
	if _, onDisk := fileEntries(t, path); !reflect.DeepEqual(onDisk, entries) {
		t.Fatal("file after Flush diverged from the appended entries")
	}
	// An empty Flush is a no-op, not a counted write.
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if st2 := w.Stats(); st2.Flushes != 3 {
		t.Fatalf("empty Flush counted: %+v", st2)
	}
}

func TestGroupCommitWindowFlushesInBackground(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gc.wal")
	w, err := OpenFileWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	w.EnableGroupCommit(GroupCommit{MaxPending: 1 << 20, Window: 5 * time.Millisecond})
	for _, e := range gcEntries(3) {
		if err := w.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for w.Stats().Flushes == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("window flush never fired: %+v", w.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if st := w.Stats(); st.FlushedEntries != 3 {
		t.Fatalf("stats = %+v, want the 3 pending entries in one window flush", st)
	}
	if _, onDisk := fileEntries(t, path); len(onDisk) != 3 {
		t.Fatalf("file holds %d entries after the window flush", len(onDisk))
	}
}

func TestGroupCommitCloseFlushesTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gc.wal")
	w, err := OpenFileWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	w.EnableGroupCommit(GroupCommit{MaxPending: 1 << 20, Window: time.Hour})
	entries := gcEntries(5)
	for _, e := range entries {
		if err := w.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, onDisk := fileEntries(t, path); !reflect.DeepEqual(onDisk, entries) {
		t.Fatal("Close lost the pending commit batch")
	}
}

func TestGroupCommitCheckpointDiscardsPending(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gc.wal")
	w, err := OpenFileWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	w.EnableGroupCommit(GroupCommit{MaxPending: 1 << 20, Window: time.Hour})
	for _, e := range gcEntries(5) {
		if err := w.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	snap := []byte("state-after-5")
	if err := w.Checkpoint(snap); err != nil {
		t.Fatal(err)
	}
	// The pending batch was superseded by the snapshot: nothing of it
	// may be written afterwards, neither by a later flush...
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := w.Stats(); st.Flushes != 0 {
		t.Fatalf("discarded batch was flushed anyway: %+v", st)
	}
	// ...nor into the checkpointed file.
	gotSnap, onDisk := fileEntries(t, path)
	if string(gotSnap) != string(snap) || len(onDisk) != 0 {
		t.Fatalf("file = snap %q + %d entries, want the checkpoint alone", gotSnap, len(onDisk))
	}
	// Entries appended after the checkpoint batch and persist as usual.
	tail := gcEntries(2)
	for _, e := range tail {
		if err := w.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	gotSnap, onDisk = fileEntries(t, path)
	if string(gotSnap) != string(snap) || !reflect.DeepEqual(onDisk, tail) {
		t.Fatal("post-checkpoint appends not journaled after the snapshot")
	}
}

func TestGroupCommitSyncCountsPerFlush(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gc.wal")
	w, err := OpenFileWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	w.EnableGroupCommit(GroupCommit{MaxPending: 2, Window: time.Hour, Sync: true})
	for _, e := range gcEntries(4) {
		if err := w.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if st := w.Stats(); st.Flushes != 2 || st.Syncs != 2 {
		t.Fatalf("stats = %+v, want one fsync per flush", st)
	}
}

// TestGroupCommitReplayIdenticalToUnbatched is the semantic guarantee
// the performance work rides on: the same appends through a batched and
// an unbatched file WAL must leave byte-identical durable state once
// flushed, and identical replay views throughout.
func TestGroupCommitReplayIdenticalToUnbatched(t *testing.T) {
	dir := t.TempDir()
	plainPath := filepath.Join(dir, "plain.wal")
	gcPath := filepath.Join(dir, "gc.wal")
	plain, err := OpenFileWAL(plainPath)
	if err != nil {
		t.Fatal(err)
	}
	gc, err := OpenFileWAL(gcPath)
	if err != nil {
		t.Fatal(err)
	}
	gc.EnableGroupCommit(GroupCommit{MaxPending: 7, Window: time.Hour})
	entries := gcEntries(23)
	for _, e := range entries {
		if err := plain.Append(e); err != nil {
			t.Fatal(err)
		}
		if err := gc.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	snapA, memA := plain.Replay()
	snapB, memB := gc.Replay()
	if !reflect.DeepEqual(memA, memB) || !reflect.DeepEqual(snapA, snapB) {
		t.Fatal("replay views diverge before flush")
	}
	if err := plain.Close(); err != nil {
		t.Fatal(err)
	}
	if err := gc.Close(); err != nil {
		t.Fatal(err)
	}
	_, diskA := fileEntries(t, plainPath)
	_, diskB := fileEntries(t, gcPath)
	if !reflect.DeepEqual(diskA, diskB) || !reflect.DeepEqual(diskA, entries) {
		t.Fatal("durable state diverges between batched and unbatched WALs")
	}
	if st := plain.Stats(); st.Flushes != 23 {
		t.Fatalf("unbatched WAL stats = %+v, want one flush per append", st)
	}
	if st := gc.Stats(); st.Flushes >= 23 || st.FlushedEntries != 23 {
		t.Fatalf("batched WAL stats = %+v, want fewer flushes than appends", st)
	}
}
