package crash

import (
	"sync"
	"time"

	"msgorder/internal/event"
	"msgorder/internal/obs"
)

// DetectorConfig tunes the failure detector.
type DetectorConfig struct {
	// Interval is the expected heartbeat period (default 2ms). The
	// harness beats once per Interval for each live process.
	Interval time.Duration
	// Timeout is the heartbeat silence after which a process is
	// suspected (default 5×Interval). Shorter timeouts detect crashes
	// faster but mis-suspect processes the OS scheduler starved; the
	// FalseSuspicions counter measures that trade-off.
	Timeout time.Duration
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.Interval <= 0 {
		c.Interval = 2 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * c.Interval
	}
	return c
}

// DetectorCounters tallies suspect/alive transitions.
type DetectorCounters struct {
	// Suspicions counts suspect transitions.
	Suspicions int
	// Alives counts suspicions cleared by a resumed heartbeat.
	Alives int
	// FalseSuspicions counts suspicions of processes the harness never
	// crashed — detector noise, not failures.
	FalseSuspicions int
}

// Detector is a timeout-based failure detector: it watches per-process
// heartbeats and flips processes between alive and suspected, emitting
// obs trace records and metrics on every transition. It is purely
// observational — nothing in the harness acts on its verdicts — which
// keeps its inherent false suspicions from perturbing the run while
// still measuring real-world detection latency. Safe for concurrent
// use.
type Detector struct {
	mu          sync.Mutex
	cfg         DetectorConfig
	sink        *obs.Sink
	last        []time.Time
	suspect     []bool
	suspectedAt []time.Time
	crashed     []bool // harness ground truth, for the false-positive tally
	counts      DetectorCounters

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewDetector starts a detector over n processes emitting into sink
// (nil: no emission, counters only). Close must be called to stop its
// monitor goroutine.
func NewDetector(n int, cfg DetectorConfig, sink *obs.Sink) *Detector {
	d := &Detector{
		cfg:         cfg.withDefaults(),
		sink:        sink,
		last:        make([]time.Time, n),
		suspect:     make([]bool, n),
		suspectedAt: make([]time.Time, n),
		crashed:     make([]bool, n),
		stop:        make(chan struct{}),
	}
	now := time.Now()
	for i := range d.last {
		d.last[i] = now
	}
	d.wg.Add(1)
	go d.monitor()
	return d
}

// Config returns the detector's effective (defaulted) configuration.
func (d *Detector) Config() DetectorConfig { return d.cfg }

// Beat records a heartbeat from p, clearing any suspicion.
func (d *Detector) Beat(p event.ProcID) {
	d.mu.Lock()
	d.last[p] = time.Now()
	wasSuspect := d.suspect[p]
	var latency time.Duration
	if wasSuspect {
		d.suspect[p] = false
		d.counts.Alives++
		latency = time.Since(d.suspectedAt[p])
	}
	s := d.sink
	d.mu.Unlock()
	if wasSuspect {
		s.Count("crash.detector.alives", 1)
		s.Observe("crash.detector.suspected.us", latency.Microseconds())
		s.Trace(obs.Record{
			Step: s.Step(), Proc: p, Op: obs.OpAlive, Msg: obs.NoMsg,
			Note: "heartbeat resumed after " + latency.String(),
		})
	}
}

// MarkCrashed tells the detector the harness really crashed p, so a
// following suspicion is a true positive. Purely bookkeeping for the
// FalseSuspicions counter.
func (d *Detector) MarkCrashed(p event.ProcID, crashed bool) {
	d.mu.Lock()
	d.crashed[p] = crashed
	d.mu.Unlock()
}

// Suspects returns the currently suspected processes.
func (d *Detector) Suspects() []event.ProcID {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []event.ProcID
	for p, s := range d.suspect {
		if s {
			out = append(out, event.ProcID(p))
		}
	}
	return out
}

// Counters returns a snapshot of the transition tallies.
func (d *Detector) Counters() DetectorCounters {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.counts
}

// Close stops the monitor goroutine and waits for it to exit.
func (d *Detector) Close() {
	d.stopOnce.Do(func() { close(d.stop) })
	d.wg.Wait()
}

// monitor scans for heartbeat silence every Interval.
func (d *Detector) monitor() {
	defer d.wg.Done()
	t := time.NewTicker(d.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case now := <-t.C:
			d.scan(now)
		}
	}
}

// scan flips silent processes to suspected.
func (d *Detector) scan(now time.Time) {
	type flip struct {
		p       event.ProcID
		silence time.Duration
		isFalse bool
	}
	var flips []flip
	d.mu.Lock()
	for p := range d.last {
		if d.suspect[p] {
			continue
		}
		if silence := now.Sub(d.last[p]); silence > d.cfg.Timeout {
			d.suspect[p] = true
			d.suspectedAt[p] = now
			d.counts.Suspicions++
			isFalse := !d.crashed[p]
			if isFalse {
				d.counts.FalseSuspicions++
			}
			flips = append(flips, flip{event.ProcID(p), silence, isFalse})
		}
	}
	s := d.sink
	d.mu.Unlock()
	for _, f := range flips {
		s.Count("crash.detector.suspicions", 1)
		if f.isFalse {
			s.Count("crash.detector.false_suspicions", 1)
		}
		s.Trace(obs.Record{
			Step: s.Step(), Proc: f.p, Op: obs.OpSuspect, Msg: obs.NoMsg,
			Note: "no heartbeat for " + f.silence.String(),
		})
	}
}
