package crash

import (
	"testing"
	"time"

	"msgorder/internal/event"
	"msgorder/internal/transport"
)

// TestDetectorUnderOneWayPartition routes heartbeats through the
// fault injector's asymmetric one-way cut and checks the detector's
// suspicion set is exactly the unreachable side — the side whose
// beats the cut swallows — and that it empties once the cut heals.
// The reverse direction keeps beating throughout, so a symmetric
// treatment of the cut would be visible as an extra suspicion.
func TestDetectorUnderOneWayPartition(t *testing.T) {
	const n = 4
	inj := transport.NewInjector(transport.FaultPlan{
		OneWay: []transport.OneWayPartition{{
			From: []event.ProcID{2, 3},
			To:   []event.ProcID{0},
			Heal: -1, // heal explicitly below, not by budget
		}},
	})
	det := NewDetector(n, DetectorConfig{Interval: time.Millisecond}, nil)
	defer det.Close()

	// beatAll models every process's heartbeat toward the observer at
	// P0, each subject to the injector like any other envelope.
	beatAll := func() {
		det.Beat(0)
		for p := event.ProcID(1); p < n; p++ {
			if inj.Decide(p, 0) != transport.Drop {
				det.Beat(p)
			}
		}
	}

	deadline := time.Now().Add(time.Second)
	var cut []event.ProcID
	for time.Now().Before(deadline) {
		beatAll()
		cut = det.Suspects()
		if len(cut) == 2 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if len(cut) != 2 || cut[0] != 2 || cut[1] != 3 {
		t.Fatalf("suspects under one-way cut = %v, want exactly [2 3]", cut)
	}

	inj.HealOneWay()
	deadline = time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		beatAll()
		if len(det.Suspects()) == 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if s := det.Suspects(); len(s) != 0 {
		t.Fatalf("suspicion did not clear after heal: %v", s)
	}
	if c := det.Counters(); c.Suspicions < 2 || c.Alives < 2 {
		t.Fatalf("counters = %+v, want ≥2 suspicions and ≥2 alives", c)
	}
}
