// Package crash is the process-failure layer of the live harness: a
// seeded crash injector, a write-ahead log for durable protocol state,
// and a timeout-based failure detector.
//
// The paper's protocols assume immortal processes — all inhibition
// state (vector clocks, pending tags, blocked deliveries) lives only in
// memory. This package supplies the other half of the failure model
// that internal/transport started: processes that crash-stop (die
// forever) or crash-restart (come back after a downtime and must
// re-establish their pre-crash ordering state).
//
// The three pieces compose as follows. The Injector wraps the live
// harness's scheduler and fires crash Specs at chosen points of the
// adversary's release sequence, so crash timing is part of the seeded
// schedule rather than wall-clock noise. Each process journals its
// handler inputs and outputs into a WAL; on restart the harness replays
// the journal suffix (on top of the latest protocol.Snapshotter
// checkpoint, when one exists) into a fresh instance and verifies that
// the replayed instance re-emits exactly the sends and deliveries the
// pre-crash instance journaled — a divergence means the protocol's
// state is not a function of its event history and recovery would
// silently break its ordering guarantee. The Detector is purely
// observational: it watches per-process heartbeats and surfaces
// suspect/alive transitions as obs records and metrics, without
// feeding back into protocol behaviour.
package crash

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"msgorder/internal/event"
	"msgorder/internal/transport"
)

// Spec schedules one crash of one process.
type Spec struct {
	// Proc is the process to crash.
	Proc event.ProcID
	// At is the adversary release count after which the crash fires:
	// the crash happens just before the At-th transmission is released.
	// Counting releases (not wall time) keeps crash placement coupled to
	// the seeded schedule.
	At int
	// Restart selects crash-restart (recover after Downtime) over
	// crash-stop (dead forever).
	Restart bool
	// Downtime is how long the process stays down before restarting
	// (crash-restart only; 0 means the plan default).
	Downtime time.Duration
}

// Plan configures crash injection for one run. The zero plan injects
// nothing.
type Plan struct {
	// Crashes are the scheduled crashes, in any order.
	Crashes []Spec
	// SnapshotEvery checkpoints a Snapshotter protocol's state after
	// every N journaled entries, truncating the WAL (0: never snapshot,
	// recovery replays the full journal).
	SnapshotEvery int
	// Downtime is the default crash-restart downtime (default 25ms).
	Downtime time.Duration
	// Detector tunes the failure detector (zero value: defaults).
	Detector DetectorConfig
	// WALDir, when non-empty, backs each process's WAL with a file in
	// that directory instead of memory only.
	WALDir string
}

// DefaultDowntime is the crash-restart downtime when a plan does not
// set one.
const DefaultDowntime = 25 * time.Millisecond

// Enabled reports whether the plan schedules any crash.
func (p Plan) Enabled() bool { return len(p.Crashes) > 0 }

// HasStop reports whether any scheduled crash is a crash-stop. Runs
// with crash-stops lose liveness by design: messages addressed to (or
// inhibited behind) a dead process may stay undelivered, and the
// recorded run is a valid prefix rather than a complete run.
func (p Plan) HasStop() bool {
	for _, s := range p.Crashes {
		if !s.Restart {
			return true
		}
	}
	return false
}

// MaxProc returns the largest process id the plan crashes (-1 if none).
func (p Plan) MaxProc() event.ProcID {
	max := event.ProcID(-1)
	for _, s := range p.Crashes {
		if s.Proc > max {
			max = s.Proc
		}
	}
	return max
}

// Validate rejects plans that reference processes outside [0, n) or
// schedule a crash before the first release.
func (p Plan) Validate(n int) error {
	for _, s := range p.Crashes {
		if s.Proc < 0 || int(s.Proc) >= n {
			return fmt.Errorf("crash: spec for P%d outside [0, %d)", s.Proc, n)
		}
		if s.At < 1 {
			return fmt.Errorf("crash: spec for P%d at release %d (must be >= 1)", s.Proc, s.At)
		}
	}
	return nil
}

// RestartStagger builds a crash-restart plan that crashes each given
// process once, the first at release `first` and each subsequent one
// `gap` releases later. downtime 0 means the package default.
func RestartStagger(procs []event.ProcID, first, gap int, downtime time.Duration) Plan {
	p := Plan{Downtime: downtime}
	at := first
	for _, q := range procs {
		p.Crashes = append(p.Crashes, Spec{Proc: q, At: at, Restart: true})
		at += gap
	}
	return p
}

// StopOne builds a crash-stop plan that kills one process at the given
// release.
func StopOne(proc event.ProcID, at int) Plan {
	return Plan{Crashes: []Spec{{Proc: proc, At: at}}}
}

// Scheduler is the live harness's adversary hook (structurally
// identical to sim.Scheduler; redeclared here so sim can depend on
// crash and not the reverse).
type Scheduler interface {
	// Pick chooses which of n in-flight transmissions to release next.
	Pick(n int) int
	// Fate decides what the network does to the released transmission.
	Fate(from, to event.ProcID) transport.Action
}

// InjectorCounters tallies crash injection.
type InjectorCounters struct {
	// Fired counts crashes handed to the harness.
	Fired int
	// Skipped counts specs that were due while their process was
	// already down (or dead forever) and were dropped.
	Skipped int
}

// Injector fires a Plan's crashes at their scheduled release counts.
// It wraps the harness's Scheduler: every Fate call is one release, and
// crashes due at or before the current release count are handed to the
// onCrash callback (outside the injector's lock) just before the
// release proceeds. onCrash must not call back into the injector and
// must not block on the adversary loop.
type Injector struct {
	mu       sync.Mutex
	inner    Scheduler
	pending  []Spec // sorted by At
	releases int
	counts   InjectorCounters
	onCrash  func(Spec) bool // reports whether the crash actually fired
}

// NewInjector wraps inner so that plan's crashes fire through onCrash.
func NewInjector(plan Plan, inner Scheduler, onCrash func(Spec) bool) *Injector {
	pending := append([]Spec(nil), plan.Crashes...)
	sort.SliceStable(pending, func(i, j int) bool { return pending[i].At < pending[j].At })
	for i := range pending {
		if pending[i].Restart && pending[i].Downtime <= 0 {
			pending[i].Downtime = plan.Downtime
			if pending[i].Downtime <= 0 {
				pending[i].Downtime = DefaultDowntime
			}
		}
	}
	return &Injector{inner: inner, pending: pending, onCrash: onCrash}
}

// Pick delegates to the wrapped scheduler.
func (in *Injector) Pick(n int) int { return in.inner.Pick(n) }

// Fate counts one release, fires any crashes that have come due, then
// delegates the fault decision to the wrapped scheduler.
func (in *Injector) Fate(from, to event.ProcID) transport.Action {
	in.mu.Lock()
	in.releases++
	var due []Spec
	for len(in.pending) > 0 && in.pending[0].At <= in.releases {
		due = append(due, in.pending[0])
		in.pending = in.pending[1:]
	}
	in.mu.Unlock()
	for _, s := range due {
		fired := in.onCrash(s)
		in.mu.Lock()
		if fired {
			in.counts.Fired++
		} else {
			in.counts.Skipped++
		}
		in.mu.Unlock()
	}
	return in.inner.Fate(from, to)
}

// Releases returns the number of Fate calls so far.
func (in *Injector) Releases() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.releases
}

// Counters returns a snapshot of the injection tallies.
func (in *Injector) Counters() InjectorCounters {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts
}
