package crash

import (
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"msgorder/internal/event"
	"msgorder/internal/obs"
	"msgorder/internal/protocol"
	"msgorder/internal/transport"
)

type fateCounter struct{ picks, fates int }

func (f *fateCounter) Pick(n int) int { f.picks++; return 0 }
func (f *fateCounter) Fate(from, to event.ProcID) transport.Action {
	f.fates++
	return transport.Deliver
}

func TestInjectorFiresAtReleaseCounts(t *testing.T) {
	plan := Plan{Crashes: []Spec{
		{Proc: 2, At: 5, Restart: true},
		{Proc: 1, At: 2, Restart: true},
	}}
	var fired []Spec
	inner := &fateCounter{}
	in := NewInjector(plan, inner, func(s Spec) bool {
		fired = append(fired, s)
		return true
	})
	for i := 1; i <= 6; i++ {
		in.Fate(0, 1)
		switch {
		case i < 2 && len(fired) != 0:
			t.Fatalf("release %d: crash fired early", i)
		case i >= 2 && i < 5 && len(fired) != 1:
			t.Fatalf("release %d: fired = %d, want 1", i, len(fired))
		case i >= 5 && len(fired) != 2:
			t.Fatalf("release %d: fired = %d, want 2", i, len(fired))
		}
	}
	// Specs fire in At order regardless of plan order, with the default
	// downtime filled in.
	if fired[0].Proc != 1 || fired[1].Proc != 2 {
		t.Fatalf("fired order = %v", fired)
	}
	if fired[0].Downtime != DefaultDowntime {
		t.Fatalf("downtime = %v, want default %v", fired[0].Downtime, DefaultDowntime)
	}
	if c := in.Counters(); c.Fired != 2 || c.Skipped != 0 {
		t.Fatalf("counters = %+v", c)
	}
	if inner.fates != 6 {
		t.Fatalf("inner scheduler saw %d fates, want 6", inner.fates)
	}
}

func TestInjectorCountsSkips(t *testing.T) {
	plan := Plan{Crashes: []Spec{{Proc: 0, At: 1}, {Proc: 0, At: 2}}}
	calls := 0
	in := NewInjector(plan, &fateCounter{}, func(Spec) bool {
		calls++
		return calls == 1 // second crash of an already-dead process
	})
	in.Fate(0, 1)
	in.Fate(0, 1)
	if c := in.Counters(); c.Fired != 1 || c.Skipped != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestPlanValidate(t *testing.T) {
	if err := (Plan{Crashes: []Spec{{Proc: 3, At: 1}}}).Validate(3); err == nil {
		t.Fatal("out-of-range proc must be rejected")
	}
	if err := (Plan{Crashes: []Spec{{Proc: 0, At: 0}}}).Validate(3); err == nil {
		t.Fatal("At=0 must be rejected")
	}
	if err := (Plan{Crashes: []Spec{{Proc: 2, At: 7}}}).Validate(3); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}

func TestPlanHelpers(t *testing.T) {
	p := RestartStagger([]event.ProcID{1, 2}, 4, 3, 0)
	want := []Spec{{Proc: 1, At: 4, Restart: true}, {Proc: 2, At: 7, Restart: true}}
	if !reflect.DeepEqual(p.Crashes, want) {
		t.Fatalf("RestartStagger = %+v", p.Crashes)
	}
	if p.HasStop() {
		t.Fatal("restart-only plan reports HasStop")
	}
	if !StopOne(1, 5).HasStop() {
		t.Fatal("StopOne must report HasStop")
	}
	if got := p.MaxProc(); got != 2 {
		t.Fatalf("MaxProc = %d", got)
	}
	if !p.Enabled() || (Plan{}).Enabled() {
		t.Fatal("Enabled misreports")
	}
}

func walEntries() []Entry {
	return []Entry{
		{Kind: EntryInvoke, Msg: event.Message{ID: 3, From: 0, To: 2, Color: event.ColorRed}},
		{Kind: EntryBroadcast, Msgs: []event.Message{
			{ID: 4, From: 0, To: 1}, {ID: 5, From: 0, To: 2},
		}},
		{Kind: EntrySend, Wire: protocol.Wire{
			From: 0, To: 2, Kind: protocol.UserWire, Msg: 3,
			Color: event.ColorRed, Tag: []byte{1, 2, 3},
		}},
		{Kind: EntryReceive, Wire: protocol.Wire{
			From: 1, To: 0, Kind: protocol.ControlWire, Ctrl: 7, Tag: []byte{9},
		}},
		{Kind: EntryDeliver, ID: 3},
	}
}

func TestWALRoundTrip(t *testing.T) {
	w := NewWAL()
	for _, e := range walEntries() {
		if err := w.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	snap, got := w.Replay()
	if snap != nil {
		t.Fatalf("unexpected snapshot %v", snap)
	}
	if !reflect.DeepEqual(got, walEntries()) {
		t.Fatalf("replay = %+v\nwant %+v", got, walEntries())
	}
	if w.SinceCheckpoint() != 5 || w.Total() != 5 {
		t.Fatalf("lengths = %d/%d", w.SinceCheckpoint(), w.Total())
	}

	if err := w.Checkpoint([]byte("state")); err != nil {
		t.Fatal(err)
	}
	extra := Entry{Kind: EntryDeliver, ID: 9}
	if err := w.Append(extra); err != nil {
		t.Fatal(err)
	}
	snap, got = w.Replay()
	if string(snap) != "state" {
		t.Fatalf("snapshot = %q", snap)
	}
	if len(got) != 1 || !reflect.DeepEqual(got[0], extra) {
		t.Fatalf("entries after checkpoint = %+v", got)
	}
	if w.SinceCheckpoint() != 1 || w.Total() != 6 {
		t.Fatalf("lengths = %d/%d", w.SinceCheckpoint(), w.Total())
	}
}

func TestFileWALSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p0.wal")
	w, err := OpenFileWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range walEntries()[:3] {
		if err := w.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Checkpoint([]byte{0xAB, 0xCD}); err != nil {
		t.Fatal(err)
	}
	for _, e := range walEntries()[3:] {
		if err := w.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenFileWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	snap, entries := re.Replay()
	if string(snap) != "\xab\xcd" {
		t.Fatalf("snapshot = %x", snap)
	}
	if !reflect.DeepEqual(entries, walEntries()[3:]) {
		t.Fatalf("entries = %+v\nwant %+v", entries, walEntries()[3:])
	}
}

func TestSameOutput(t *testing.T) {
	send := walEntries()[2]
	if !SameOutput(send, send) {
		t.Fatal("identical sends must match")
	}
	mut := send
	mut.Wire.Tag = []byte{1, 2, 4}
	if SameOutput(send, mut) {
		t.Fatal("differing tags must not match")
	}
	if SameOutput(Entry{Kind: EntryDeliver, ID: 1}, Entry{Kind: EntryDeliver, ID: 2}) {
		t.Fatal("differing deliveries must not match")
	}
	if SameOutput(send, Entry{Kind: EntryDeliver, ID: 3}) {
		t.Fatal("kind mismatch must not match")
	}
}

func TestDetectorSuspectsAndClears(t *testing.T) {
	reg := obs.NewRegistry()
	d := NewDetector(2, DetectorConfig{Interval: 2 * time.Millisecond, Timeout: 8 * time.Millisecond},
		&obs.Sink{Metrics: reg})
	defer d.Close()
	d.MarkCrashed(1, true)

	// P0 keeps beating; P1 goes silent and must be suspected.
	deadline := time.Now().Add(2 * time.Second)
	for len(d.Suspects()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("silent process never suspected")
		}
		d.Beat(0)
		time.Sleep(time.Millisecond)
	}
	if s := d.Suspects(); len(s) != 1 || s[0] != 1 {
		t.Fatalf("suspects = %v, want [1]", s)
	}

	// A resumed heartbeat clears the suspicion.
	d.Beat(1)
	if len(d.Suspects()) != 0 {
		t.Fatalf("suspects = %v after heartbeat", d.Suspects())
	}
	c := d.Counters()
	if c.Suspicions < 1 || c.Alives < 1 {
		t.Fatalf("counters = %+v", c)
	}
	if c.FalseSuspicions > c.Suspicions-1 {
		t.Fatalf("counters = %+v: P1's suspicion counted as false", c)
	}
}
