// Package inhib mechanizes Section 3.2 of the paper: the denotational
// model of inhibitory protocols. A protocol is a function from runs to
// enabled controllable events per process; the set of runs possible under
// it, X_P, is generated inductively by executing one enabled event at a
// time. Over bounded message universes the package computes X_P exactly,
// checks the paper's liveness condition, decides mechanically whether a
// protocol meets the tagless or tagged information conditions
// (P_i depends only on the local history / the causal past), and verifies
// the Lemma 2 lower bounds X_u ⊆ X_P, X_td ⊆ X_P, X_gn ⊆ X_P.
package inhib

import (
	"errors"
	"fmt"

	"msgorder/internal/event"
	"msgorder/internal/run"
)

// Protocol is the denotational protocol of the paper: given the current
// run, the subset of process i's controllable events (pending sends and
// deliveries) it enables. Uncontrollable events (invokes and receives)
// are always enabled by the model itself.
type Protocol interface {
	// Enabled returns the enabled controllable events of process i in h.
	// It must be a subset of h.Controllable(i).
	Enabled(h *run.Run, i event.ProcID) []event.Event
	// Name labels the protocol in diagnostics.
	Name() string
}

// Exploration errors.
var (
	ErrNotLive   = errors.New("inhib: protocol violates the liveness condition")
	ErrBadEnable = errors.New("inhib: protocol enabled a non-controllable event")
	ErrTooLarge  = errors.New("inhib: state space exceeds the exploration limit")
)

// Result is the exhaustive exploration of X_P over one message universe.
type Result struct {
	// Reachable holds every reachable run, keyed for dedup.
	Reachable []*run.Run
	// Complete holds the quiescent complete runs (the protocol's
	// characteristic set restricted to this universe).
	Complete []*run.Run
}

// maxStates bounds the exploration.
const maxStates = 250000

// Explore computes every run reachable under the protocol for the fixed
// message universe, enforcing the paper's protocol axioms:
//
//	P1: I and R events are always enabled; enabled ⊆ I ∪ R ∪ C,
//	Liveness: whenever R ∪ C ≠ ∅ the enabled set intersects it.
func Explore(p Protocol, msgs []event.Message, nProcs int) (*Result, error) {
	empty, err := run.New(msgs, make([][]event.Event, nProcs))
	if err != nil {
		return nil, err
	}
	res := &Result{}
	seen := map[string]bool{}
	queue := []*run.Run{empty}
	seen[key(empty)] = true
	for len(queue) > 0 {
		if len(seen) > maxStates {
			return nil, ErrTooLarge
		}
		h := queue[0]
		queue = queue[1:]
		res.Reachable = append(res.Reachable, h)

		enabled, err := enabledEvents(p, h, nProcs)
		if err != nil {
			return nil, err
		}
		if len(enabled) == 0 {
			if quiescentComplete(h) {
				res.Complete = append(res.Complete, h)
			} else if pendingWork(h, nProcs) {
				return nil, fmt.Errorf("%w: %s stuck at %v", ErrNotLive, p.Name(), h)
			}
			continue
		}
		for _, e := range enabled {
			g, err := extend(h, e)
			if err != nil {
				return nil, err
			}
			k := key(g)
			if seen[k] {
				continue
			}
			seen[k] = true
			queue = append(queue, g)
		}
	}
	return res, nil
}

// enabledEvents is I ∪ R ∪ (protocol's enabled C events), validated.
func enabledEvents(p Protocol, h *run.Run, nProcs int) ([]event.Event, error) {
	var out []event.Event
	anyRC := false
	enabledRC := false
	for i := 0; i < nProcs; i++ {
		pid := event.ProcID(i)
		out = append(out, h.NotInvoked(pid)...)
		recv := h.ReceivePending(pid)
		out = append(out, recv...)
		if len(recv) > 0 {
			anyRC, enabledRC = true, true
		}
		ctrl := h.Controllable(pid)
		if len(ctrl) > 0 {
			anyRC = true
		}
		allowed := make(map[event.Event]bool, len(ctrl))
		for _, e := range ctrl {
			allowed[e] = true
		}
		for _, e := range p.Enabled(h, pid) {
			if !allowed[e] {
				return nil, fmt.Errorf("%w: %s enabled %v at P%d", ErrBadEnable, p.Name(), e, i)
			}
			out = append(out, e)
			enabledRC = true
		}
	}
	if anyRC && !enabledRC {
		return nil, fmt.Errorf("%w: %s", ErrNotLive, p.Name())
	}
	return out, nil
}

// extend executes one event.
func extend(h *run.Run, e event.Event) (*run.Run, error) {
	procs := make([][]event.Event, h.NumProcs())
	for i := 0; i < h.NumProcs(); i++ {
		procs[i] = h.ProcSeq(event.ProcID(i))
	}
	p := e.Proc(h.Message(e.Msg))
	procs[p] = append(procs[p], e)
	return run.New(h.Messages(), procs)
}

func key(h *run.Run) string { return h.String() }

// quiescentComplete: every message fully delivered.
func quiescentComplete(h *run.Run) bool {
	for _, m := range h.Messages() {
		if !h.Has(event.E(m.ID, event.Deliver)) {
			return false
		}
	}
	return true
}

func pendingWork(h *run.Run, nProcs int) bool {
	for i := 0; i < nProcs; i++ {
		pid := event.ProcID(i)
		if len(h.ReceivePending(pid)) > 0 || len(h.Controllable(pid)) > 0 {
			return true
		}
	}
	return false
}

// --- information-condition checking (the three protocol classes) ---

// ClassReport records whether a protocol meets an information condition
// over a result's reachable runs, with a counterexample when it does not.
type ClassReport struct {
	Holds  bool
	ProcID event.ProcID
	RunA   *run.Run
	RunB   *run.Run
	Detail string
}

// CheckTaglessCondition verifies H_i = G_i ⇒ P_i(H) = P_i(G) over every
// reachable pair (bucketed by local history, so the scan is linear).
func CheckTaglessCondition(p Protocol, res *Result) ClassReport {
	return checkCondition(p, res, func(h *run.Run, i event.ProcID) string {
		return fmt.Sprint(h.ProcSeq(i))
	}, "equal local histories")
}

// CheckTaggedCondition verifies CausalPast_i(H) = CausalPast_i(G) ⇒
// P_i(H) = P_i(G) over every reachable pair (bucketed by causal past).
func CheckTaggedCondition(p Protocol, res *Result) ClassReport {
	return checkCondition(p, res, func(h *run.Run, i event.ProcID) string {
		past, err := h.CausalPast(i)
		if err != nil {
			return "" // unreachable for valid runs; empty key groups errors
		}
		return past.String()
	}, "equal causal pasts")
}

func checkCondition(p Protocol, res *Result, keyFn func(h *run.Run, i event.ProcID) string, what string) ClassReport {
	type bucket struct {
		h       *run.Run
		enabled map[event.Event]bool
	}
	buckets := make(map[string]bucket)
	for _, h := range res.Reachable {
		for i := 0; i < h.NumProcs(); i++ {
			pid := event.ProcID(i)
			key := fmt.Sprintf("P%d|%s", i, keyFn(h, pid))
			en := eventSet(p.Enabled(h, pid))
			prev, ok := buckets[key]
			if !ok {
				buckets[key] = bucket{h: h, enabled: en}
				continue
			}
			if !sameSet(prev.enabled, en) {
				return ClassReport{
					Holds:  false,
					ProcID: pid,
					RunA:   prev.h,
					RunB:   h,
					Detail: fmt.Sprintf("%s at P%d but enabled sets differ: %v vs %v",
						what, i, prev.enabled, en),
				}
			}
		}
	}
	return ClassReport{Holds: true}
}

func eventSet(es []event.Event) map[event.Event]bool {
	out := make(map[event.Event]bool, len(es))
	for _, e := range es {
		out[e] = true
	}
	return out
}

func sameSet(a, b map[event.Event]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for e := range a {
		if !b[e] {
			return false
		}
	}
	return true
}

// --- built-in denotational protocols ---

// AllEnabled is the trivial tagless protocol: enable every controllable
// event.
type AllEnabled struct{}

var _ Protocol = AllEnabled{}

// Name labels the protocol.
func (AllEnabled) Name() string { return "all-enabled" }

// Enabled returns every controllable event.
func (AllEnabled) Enabled(h *run.Run, i event.ProcID) []event.Event {
	return h.Controllable(i)
}

// FIFODelivery enables sends freely and delivers a message only when all
// earlier sends on its channel are delivered. Its decision depends only
// on the causal past (the channel's send order precedes each receive), so
// it meets the tagged condition — verified mechanically in the tests.
type FIFODelivery struct{}

var _ Protocol = FIFODelivery{}

// Name labels the protocol.
func (FIFODelivery) Name() string { return "fifo-delivery" }

// Enabled applies the per-channel rule.
func (FIFODelivery) Enabled(h *run.Run, i event.ProcID) []event.Event {
	var out []event.Event
	out = append(out, h.SendPending(i)...)
	for _, e := range h.DeliverPending(i) {
		if fifoReady(h, e) {
			out = append(out, e)
		}
	}
	return out
}

func fifoReady(h *run.Run, e event.Event) bool {
	m := h.Message(e.Msg)
	for _, o := range h.Messages() {
		if o.ID == m.ID || o.From != m.From || o.To != m.To {
			continue
		}
		if h.Before(event.E(o.ID, event.Send), event.E(m.ID, event.Send)) &&
			!h.Has(event.E(o.ID, event.Deliver)) {
			return false // an earlier channel message is undelivered
		}
	}
	return true
}

// CausalDelivery enables a delivery only when every message to the same
// destination sent causally before it has been delivered — the
// denotational counterpart of the RST protocol.
type CausalDelivery struct{}

var _ Protocol = CausalDelivery{}

// Name labels the protocol.
func (CausalDelivery) Name() string { return "causal-delivery" }

// Enabled applies the causal rule.
func (CausalDelivery) Enabled(h *run.Run, i event.ProcID) []event.Event {
	var out []event.Event
	out = append(out, h.SendPending(i)...)
	for _, e := range h.DeliverPending(i) {
		if causalReady(h, e) {
			out = append(out, e)
		}
	}
	return out
}

func causalReady(h *run.Run, e event.Event) bool {
	m := h.Message(e.Msg)
	for _, o := range h.Messages() {
		if o.ID == m.ID || o.To != m.To {
			continue
		}
		if h.Before(event.E(o.ID, event.Send), event.E(m.ID, event.Send)) &&
			!h.Has(event.E(o.ID, event.Deliver)) {
			return false
		}
	}
	return true
}

// SyncGate serializes messages globally: a send is enabled only when no
// other message is in flight (sent but undelivered) anywhere in the run.
// Its decision inspects concurrent events, so it fails the tagged
// condition — the mechanical face of "logically synchronous ordering
// needs control messages".
type SyncGate struct{}

var _ Protocol = SyncGate{}

// Name labels the protocol.
func (SyncGate) Name() string { return "sync-gate" }

// Enabled applies the global gate.
func (SyncGate) Enabled(h *run.Run, i event.ProcID) []event.Event {
	var out []event.Event
	out = append(out, h.DeliverPending(i)...)
	if !openMessage(h) {
		out = append(out, h.SendPending(i)...)
	}
	return out
}

// openMessage reports a message sent but not yet delivered.
func openMessage(h *run.Run) bool {
	for _, m := range h.Messages() {
		if h.Has(event.E(m.ID, event.Send)) && !h.Has(event.E(m.ID, event.Deliver)) {
			return true
		}
	}
	return false
}
