package inhib

import (
	"errors"
	"testing"

	"msgorder/internal/catalog"
	"msgorder/internal/check"
	"msgorder/internal/event"
	"msgorder/internal/run"
	"msgorder/internal/universe"
	"msgorder/internal/userview"
)

// fifoTable: two messages on one channel.
func fifoTable() []event.Message {
	return []event.Message{
		{ID: 0, From: 0, To: 1},
		{ID: 1, From: 0, To: 1},
	}
}

// triangleTable: the relay scenario over three processes.
func triangleTable() []event.Message {
	return []event.Message{
		{ID: 0, From: 0, To: 2},
		{ID: 1, From: 0, To: 1},
		{ID: 2, From: 1, To: 2},
	}
}

// crossTable: two unrelated messages over three processes (for the
// sync-gate condition counterexample).
func crossTable() []event.Message {
	return []event.Message{
		{ID: 0, From: 0, To: 1},
		{ID: 1, From: 2, To: 0},
	}
}

func explore(t *testing.T, p Protocol, msgs []event.Message, nProcs int) *Result {
	t.Helper()
	res, err := Explore(p, msgs, nProcs)
	if err != nil {
		t.Fatalf("Explore(%s): %v", p.Name(), err)
	}
	if len(res.Complete) == 0 {
		t.Fatalf("%s: no complete runs", p.Name())
	}
	return res
}

// limitSetMembers enumerates the X_u members for a message table (star
// completions of every user view), filtered into X_td and X_gn.
func limitSetMembers(t *testing.T, msgs []event.Message, nProcs int) (xu, xtd, xgn []*run.Run) {
	t.Helper()
	universe.Schedules(msgs, nProcs, func(v *userview.Run) bool {
		h, err := run.FromUserView(v)
		if err != nil {
			t.Fatalf("FromUserView: %v", err)
		}
		if !h.InXu() {
			t.Fatalf("star completion must be in X_u: %v", h)
		}
		xu = append(xu, h)
		if h.InXtd() {
			xtd = append(xtd, h)
		}
		if h.InXgn() {
			xgn = append(xgn, h)
		}
		return true
	})
	return xu, xtd, xgn
}

// containsAll checks that every run in want appears among got (by key).
func containsAll(t *testing.T, label string, want []*run.Run, got []*run.Run) {
	t.Helper()
	keys := make(map[string]bool, len(got))
	for _, h := range got {
		keys[h.String()] = true
	}
	for _, h := range want {
		if !keys[h.String()] {
			t.Fatalf("%s: run missing from X_P: %v", label, h)
		}
	}
}

// --- Lemma 2: the lower bounds ---

func TestLemma2TaglessLowerBound(t *testing.T) {
	// X_u ⊆ X_P for the live tagless protocol.
	for _, msgs := range [][]event.Message{fifoTable(), triangleTable()} {
		res := explore(t, AllEnabled{}, msgs, 3)
		xu, _, _ := limitSetMembers(t, msgs, 3)
		containsAll(t, "all-enabled", xu, res.Complete)
	}
}

func TestLemma2TaggedLowerBound(t *testing.T) {
	// X_td ⊆ X_P for live tagged protocols.
	for _, p := range []Protocol{FIFODelivery{}, CausalDelivery{}} {
		for _, msgs := range [][]event.Message{fifoTable(), triangleTable()} {
			res := explore(t, p, msgs, 3)
			_, xtd, _ := limitSetMembers(t, msgs, 3)
			containsAll(t, p.Name(), xtd, res.Complete)
		}
	}
}

func TestLemma2GeneralLowerBound(t *testing.T) {
	// X_gn ⊆ X_P for the live general protocol.
	for _, msgs := range [][]event.Message{fifoTable(), triangleTable(), crossTable()} {
		res := explore(t, SyncGate{}, msgs, 3)
		_, _, xgn := limitSetMembers(t, msgs, 3)
		containsAll(t, "sync-gate", xgn, res.Complete)
	}
}

// --- safety of the denotational protocols ---

func userViews(t *testing.T, runs []*run.Run) []*userview.Run {
	t.Helper()
	var out []*userview.Run
	for _, h := range runs {
		v, err := h.UsersView()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, v)
	}
	return out
}

func TestFIFODeliverySafety(t *testing.T) {
	e, _ := catalog.ByName("fifo")
	res := explore(t, FIFODelivery{}, fifoTable(), 2)
	for _, v := range userViews(t, res.Complete) {
		if _, bad := check.FindViolation(v, e.Pred); bad {
			t.Fatalf("FIFO protocol produced a FIFO violation: %v", v)
		}
	}
}

func TestCausalDeliverySafety(t *testing.T) {
	e, _ := catalog.ByName("causal-b2")
	res := explore(t, CausalDelivery{}, triangleTable(), 3)
	for _, v := range userViews(t, res.Complete) {
		if _, bad := check.FindViolation(v, e.Pred); bad {
			t.Fatalf("causal protocol produced a causal violation: %v", v)
		}
	}
	// And the tagless baseline does violate on the same universe.
	res2 := explore(t, AllEnabled{}, triangleTable(), 3)
	violated := false
	for _, v := range userViews(t, res2.Complete) {
		if _, bad := check.FindViolation(v, e.Pred); bad {
			violated = true
			break
		}
	}
	if !violated {
		t.Fatal("all-enabled should violate causal ordering on the triangle")
	}
}

func TestSyncGateSafety(t *testing.T) {
	for _, msgs := range [][]event.Message{fifoTable(), triangleTable(), crossTable()} {
		res := explore(t, SyncGate{}, msgs, 3)
		for _, v := range userViews(t, res.Complete) {
			if !v.InSync() {
				t.Fatalf("sync-gate produced a non-synchronous view: %v", v)
			}
		}
	}
}

// --- the information conditions, mechanically ---

func TestAllEnabledIsTagless(t *testing.T) {
	res := explore(t, AllEnabled{}, triangleTable(), 3)
	if rep := CheckTaglessCondition(AllEnabled{}, res); !rep.Holds {
		t.Fatalf("all-enabled must meet the tagless condition: %s", rep.Detail)
	}
}

func TestFIFONotTagless(t *testing.T) {
	// FIFO's decision depends on the sender's order, which is invisible
	// in the receiver's local history: the tagless condition fails.
	res := explore(t, FIFODelivery{}, fifoTable(), 2)
	rep := CheckTaglessCondition(FIFODelivery{}, res)
	if rep.Holds {
		t.Fatal("FIFO delivery should fail the tagless condition")
	}
	t.Logf("counterexample: %s", rep.Detail)
}

func TestFIFOIsTagged(t *testing.T) {
	for _, msgs := range [][]event.Message{fifoTable(), triangleTable()} {
		res := explore(t, FIFODelivery{}, msgs, 3)
		if rep := CheckTaggedCondition(FIFODelivery{}, res); !rep.Holds {
			t.Fatalf("FIFO delivery must meet the tagged condition: %s", rep.Detail)
		}
	}
}

func TestCausalIsTagged(t *testing.T) {
	for _, msgs := range [][]event.Message{fifoTable(), triangleTable()} {
		res := explore(t, CausalDelivery{}, msgs, 3)
		if rep := CheckTaggedCondition(CausalDelivery{}, res); !rep.Holds {
			t.Fatalf("causal delivery must meet the tagged condition: %s", rep.Detail)
		}
	}
}

func TestSyncGateNotTagged(t *testing.T) {
	// The gate inspects in-flight messages elsewhere — concurrent
	// knowledge no tag can carry. The mechanical checker finds two runs
	// with equal causal pasts at a process but different enabled sets:
	// the face of "logical synchrony needs control messages".
	res := explore(t, SyncGate{}, crossTable(), 3)
	rep := CheckTaggedCondition(SyncGate{}, res)
	if rep.Holds {
		t.Fatal("sync-gate should fail the tagged condition")
	}
	t.Logf("counterexample at P%d: %s", rep.ProcID, rep.Detail)
}

// --- model hygiene ---

// misbehaved enables a send event for a message that was never invoked.
type misbehaved struct{}

func (misbehaved) Name() string { return "misbehaved" }
func (misbehaved) Enabled(h *run.Run, i event.ProcID) []event.Event {
	for _, m := range h.Messages() {
		if m.From == i && !h.Has(event.E(m.ID, event.Invoke)) {
			return []event.Event{event.E(m.ID, event.Send)}
		}
	}
	return h.Controllable(i)
}

func TestBadEnableRejected(t *testing.T) {
	if _, err := Explore(misbehaved{}, fifoTable(), 2); !errors.Is(err, ErrBadEnable) {
		t.Fatalf("err = %v, want ErrBadEnable", err)
	}
}

// stubborn never enables anything: violates liveness.
type stubborn struct{}

func (stubborn) Name() string { return "stubborn" }
func (stubborn) Enabled(*run.Run, event.ProcID) []event.Event {
	return nil
}

func TestLivenessViolationDetected(t *testing.T) {
	if _, err := Explore(stubborn{}, fifoTable(), 2); !errors.Is(err, ErrNotLive) {
		t.Fatalf("err = %v, want ErrNotLive", err)
	}
}

func TestReachableSetsGrowWithFreedom(t *testing.T) {
	// More inhibition means fewer complete runs: |X_sync-gate| ≤
	// |X_causal| ≤ |X_fifo| ≤ |X_all| on the fifo table.
	counts := map[string]int{}
	for _, p := range []Protocol{AllEnabled{}, FIFODelivery{}, CausalDelivery{}, SyncGate{}} {
		res := explore(t, p, fifoTable(), 2)
		counts[p.Name()] = len(res.Complete)
	}
	if !(counts["sync-gate"] <= counts["causal-delivery"] &&
		counts["causal-delivery"] <= counts["fifo-delivery"] &&
		counts["fifo-delivery"] <= counts["all-enabled"]) {
		t.Fatalf("unexpected ordering of X_P sizes: %v", counts)
	}
	if counts["all-enabled"] <= counts["fifo-delivery"] {
		t.Fatalf("FIFO must strictly inhibit on the fifo table: %v", counts)
	}
}
