// Package obs is the observability layer of the harness stack: a
// zero-dependency tracer of causally stamped event records, a metrics
// registry of counters, gauges and histograms, and exporters that turn
// a recorded timeline into Chrome trace-event JSON (loadable in
// Perfetto) or NDJSON.
//
// The paper's objects of study are *runs* — partial orders of events
// shaped by what a protocol inhibited and for how long. End-of-run
// aggregates (protocol.Stats, dsim.ExploreStats) cannot show that
// structure; this package records it. Every record carries a vector
// clock maintained by the observability layer itself (independent of
// any clocks the protocol under test may or may not use), so the
// causal structure of a run is visible even for tagless protocols.
//
// Instrumentation is strictly pay-for-what-you-use: a nil *Probe, nil
// Tracer, nil *Registry and nil *Sink are all valid and turn every
// emission site into a pointer test. Harnesses thread a single Probe
// through their event path and never branch on "is tracing on".
package obs

import (
	"fmt"
	"sync"

	"msgorder/internal/event"
	"msgorder/internal/protocol"
	"msgorder/internal/vc"
)

// Op identifies what a trace record describes.
type Op uint8

// Record operations. The four lifecycle operations mirror the paper's
// event kinds (x.s*, x.s, x.r*, x.r); the inhibition spans are derived
// from the gaps between them; the transport and explorer operations
// come from the layers below and above the protocols.
const (
	// OpInvoke is the user's send request (x.s*).
	OpInvoke Op = iota + 1
	// OpSend is the protocol's send execution (x.s); for control wires
	// Msg is NoMsg and Note names the control type.
	OpSend
	// OpReceive is the wire arrival (x.r* for user wires).
	OpReceive
	// OpDeliver is the protocol's delivery execution (x.r).
	OpDeliver
	// OpInhibitSend is a span: the protocol held a message between its
	// invoke and its send.
	OpInhibitSend
	// OpInhibitDeliver is a span: the protocol held a message between
	// its receive and its delivery. Note records what released it.
	OpInhibitDeliver
	// OpRetransmit is a transport-level timeout-driven resend.
	OpRetransmit
	// OpDrop is an injected transmission loss.
	OpDrop
	// OpDup is an injected transmission duplication.
	OpDup
	// OpDelay is an injected transmission delay.
	OpDelay
	// OpPartitionDrop is a transmission lost to an active partition.
	OpPartitionDrop
	// OpStallExtend is the stall detector extending its window because
	// the transport made progress.
	OpStallExtend
	// OpStallVerdict is the stall detector's final verdict.
	OpStallVerdict
	// OpExpand is one explorer choice-point expansion.
	OpExpand
	// OpCrash is an injected process crash (crash-stop or the start of
	// a crash-restart cycle).
	OpCrash
	// OpRecover is a process completing recovery: snapshot restored,
	// WAL suffix replayed, goroutine restarted.
	OpRecover
	// OpSuspect is the failure detector suspecting a process after
	// heartbeat silence.
	OpSuspect
	// OpAlive is the failure detector clearing a suspicion after
	// heartbeats resume.
	OpAlive
)

var opNames = map[Op]string{
	OpInvoke:         "invoke",
	OpSend:           "send",
	OpReceive:        "receive",
	OpDeliver:        "deliver",
	OpInhibitSend:    "inhibit-send",
	OpInhibitDeliver: "inhibit-deliver",
	OpRetransmit:     "retransmit",
	OpDrop:           "drop",
	OpDup:            "dup",
	OpDelay:          "delay",
	OpPartitionDrop:  "partition-drop",
	OpStallExtend:    "stall-extend",
	OpStallVerdict:   "stall-verdict",
	OpExpand:         "expand",
	OpCrash:          "crash",
	OpRecover:        "recover",
	OpSuspect:        "suspect",
	OpAlive:          "alive",
}

// String returns the operation's wire name (used in exports).
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// MarshalJSON renders the operation as its name.
func (o Op) MarshalJSON() ([]byte, error) {
	return []byte(`"` + o.String() + `"`), nil
}

// HarnessProc is the Proc value for records owned by the harness
// itself (stall detector, explorer) rather than any process.
const HarnessProc = event.ProcID(-1)

// NoMsg is the Msg value for records not scoped to a user message.
const NoMsg = event.MsgID(-1)

// Record is one structured trace event.
type Record struct {
	// Step is the timestamp in the emitting harness's timebase:
	// simulated ticks for dsim, scheduler steps for explorer replays,
	// wall microseconds since harness start for the live network.
	Step int64 `json:"step"`
	// Dur is the span length for span operations (0 for instants).
	Dur int64 `json:"dur,omitempty"`
	// Proc is the owning process track (HarnessProc for global records).
	Proc event.ProcID `json:"proc"`
	// Op is the operation.
	Op Op `json:"op"`
	// Msg is the user message involved (NoMsg when not message-scoped).
	Msg event.MsgID `json:"msg"`
	// VC is the observability layer's vector clock at the event (nil
	// when the emitter keeps no clocks, e.g. the transport).
	VC vc.Vector `json:"vc,omitempty"`
	// Note carries human detail: the blocking condition of an
	// inhibition span, a fault's endpoints, an expansion's fanout.
	Note string `json:"note,omitempty"`
}

// Tracer receives trace records. Implementations used by the live
// harness must be safe for concurrent use; the deterministic
// simulators emit from one goroutine.
type Tracer interface {
	Emit(Record)
}

// Collector is an in-memory Tracer: it buffers records for later
// export or merging. Safe for concurrent use.
type Collector struct {
	mu   sync.Mutex
	recs []Record
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Emit appends a record.
func (c *Collector) Emit(r Record) {
	c.mu.Lock()
	c.recs = append(c.recs, r)
	c.mu.Unlock()
}

// Len returns the number of buffered records.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.recs)
}

// Records returns a copy of the buffered records in emission order.
func (c *Collector) Records() []Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Record(nil), c.recs...)
}

// Reset drops all buffered records.
func (c *Collector) Reset() {
	c.mu.Lock()
	c.recs = c.recs[:0]
	c.mu.Unlock()
}

// FlushTo emits every buffered record into t and clears the buffer.
// Used to merge per-worker collectors into a shared tracer at join.
func (c *Collector) FlushTo(t Tracer) {
	if t == nil {
		return
	}
	c.mu.Lock()
	recs := c.recs
	c.recs = nil
	c.mu.Unlock()
	for _, r := range recs {
		t.Emit(r)
	}
}

// Sink bundles the tracer, registry and timebase one subsystem emits
// into. A nil *Sink (and nil fields) disables everything; every method
// is safe on a nil receiver, so emission sites need no guards.
type Sink struct {
	// Tracer receives records (nil: tracing off).
	Tracer Tracer
	// Metrics receives counters and histograms (nil: metrics off).
	Metrics *Registry
	// Now supplies Step timestamps (nil: records carry step 0).
	Now func() int64
}

// Enabled reports whether the sink records anything at all.
func (s *Sink) Enabled() bool {
	return s != nil && (s.Tracer != nil || s.Metrics != nil)
}

// Step returns the current timestamp, or 0 without a timebase.
func (s *Sink) Step() int64 {
	if s == nil || s.Now == nil {
		return 0
	}
	return s.Now()
}

// Trace emits a record if tracing is on.
func (s *Sink) Trace(r Record) {
	if s == nil || s.Tracer == nil {
		return
	}
	s.Tracer.Emit(r)
}

// Count adds d to the named counter if metrics are on.
func (s *Sink) Count(name string, d int64) {
	if s == nil {
		return
	}
	s.Metrics.Count(name, d)
}

// Observe records a histogram sample if metrics are on.
func (s *Sink) Observe(name string, v int64) {
	if s == nil {
		return
	}
	s.Metrics.Observe(name, v)
}

// Probe instruments one harness run. It maintains the observability
// layer's own vector clocks (ticked on every lifecycle event, merged
// through the stamps carried on wires), derives inhibition spans and
// latency histograms from the four-event lifecycle, and emits causally
// stamped records.
//
// A nil *Probe is the disabled fast path: every method returns after a
// single pointer test, so harnesses call it unconditionally on their
// hot paths. All methods are safe for concurrent use (the live harness
// emits from many goroutines).
type Probe struct {
	mu      sync.Mutex
	tracer  Tracer
	metrics *Registry
	now     func() int64
	proto   string

	vcs      []vc.Vector
	invokeAt map[event.MsgID]int64
	recvAt   map[event.MsgID]int64
	// ctx describes the handler currently running at each process, so
	// inhibition-release notes can name the unblocking event.
	ctx map[event.ProcID]string
}

// NewProbe builds a probe over n processes emitting into tracer and
// metrics with the given timebase. It returns nil — the disabled fast
// path — when both tracer and metrics are nil. proto labels the
// per-protocol histograms (pass the protocol's descriptor name).
func NewProbe(n int, tracer Tracer, metrics *Registry, proto string, now func() int64) *Probe {
	if tracer == nil && metrics == nil {
		return nil
	}
	if now == nil {
		now = func() int64 { return 0 }
	}
	p := &Probe{
		tracer:   tracer,
		metrics:  metrics,
		now:      now,
		proto:    proto,
		vcs:      make([]vc.Vector, n),
		invokeAt: make(map[event.MsgID]int64),
		recvAt:   make(map[event.MsgID]int64),
		ctx:      make(map[event.ProcID]string),
	}
	for i := range p.vcs {
		p.vcs[i] = vc.NewVector(n)
	}
	return p
}

// metric labels a metric name with the probe's protocol.
func (p *Probe) metric(name string) string {
	if p.proto == "" {
		return name
	}
	return name + "." + p.proto
}

func (p *Probe) emit(r Record) {
	if p.tracer != nil {
		p.tracer.Emit(r)
	}
}

// stamp ticks process q's clock and returns a snapshot.
func (p *Probe) stamp(q event.ProcID) vc.Vector {
	p.vcs[q].Tick(int(q))
	return p.vcs[q].Clone()
}

// Invoke records the user's send request of m at its source.
func (p *Probe) Invoke(m event.Message) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.now()
	p.invokeAt[m.ID] = now
	p.ctx[m.From] = fmt.Sprintf("invoke of m%d", m.ID)
	p.emit(Record{Step: now, Proc: m.From, Op: OpInvoke, Msg: m.ID, VC: p.stamp(m.From)})
}

// Send records the protocol's send execution and stamps the wire with
// the sender's clock so the receive side can merge it. Must be called
// with the wire the harness is about to transmit.
func (p *Probe) Send(w *protocol.Wire) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.now()
	stamp := p.stamp(w.From)
	w.VC = stamp
	rec := Record{Step: now, Proc: w.From, Op: OpSend, VC: stamp, Msg: NoMsg}
	if w.Kind == protocol.UserWire {
		rec.Msg = w.Msg
		if at, ok := p.invokeAt[w.Msg]; ok && now > at {
			p.emit(Record{
				Step: at, Dur: now - at, Proc: w.From, Op: OpInhibitSend, Msg: w.Msg,
				Note: fmt.Sprintf("m%d held %d steps after invoke", w.Msg, now-at),
			})
			p.metrics.Observe(p.metric("inhibit.send.steps"), now-at)
		}
	} else {
		rec.Note = fmt.Sprintf("ctrl %d to P%d", w.Ctrl, w.To)
	}
	p.emit(rec)
}

// Receive records a wire arrival at its destination, merging the
// sender's stamp into the destination's clock.
func (p *Probe) Receive(w protocol.Wire) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.now()
	if w.VC != nil {
		p.vcs[w.To].Merge(vc.Vector(w.VC))
	}
	rec := Record{Step: now, Proc: w.To, Op: OpReceive, VC: p.stamp(w.To), Msg: NoMsg}
	if w.Kind == protocol.UserWire {
		rec.Msg = w.Msg
		p.recvAt[w.Msg] = now
		p.ctx[w.To] = fmt.Sprintf("arrival of m%d", w.Msg)
	} else {
		rec.Note = fmt.Sprintf("ctrl %d from P%d", w.Ctrl, w.From)
		p.ctx[w.To] = fmt.Sprintf("ctrl %d from P%d", w.Ctrl, w.From)
	}
	p.emit(rec)
}

// Deliver records the protocol's delivery execution of m at proc,
// emitting the delivery-inhibition span (with the event that released
// it) and the end-to-end latency histogram.
func (p *Probe) Deliver(proc event.ProcID, m event.MsgID) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.now()
	p.emit(Record{Step: now, Proc: proc, Op: OpDeliver, Msg: m, VC: p.stamp(proc)})
	if at, ok := p.invokeAt[m]; ok {
		p.metrics.Observe(p.metric("deliver.latency.steps"), now-at)
	}
	if at, ok := p.recvAt[m]; ok && now > at {
		note := fmt.Sprintf("m%d held %d steps after receive", m, now-at)
		if cause, ok := p.ctx[proc]; ok {
			note += "; released by " + cause
		}
		p.emit(Record{Step: at, Dur: now - at, Proc: proc, Op: OpInhibitDeliver, Msg: m, Note: note})
		p.metrics.Observe(p.metric("inhibit.deliver.steps"), now-at)
	}
}

// Clock returns a copy of process q's current vector clock.
func (p *Probe) Clock(q event.ProcID) vc.Vector {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.vcs[q].Clone()
}
