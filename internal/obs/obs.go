// Package obs is the observability layer of the harness stack: a
// zero-dependency tracer of causally stamped event records, a metrics
// registry of counters, gauges and histograms, and exporters that turn
// a recorded timeline into Chrome trace-event JSON (loadable in
// Perfetto) or NDJSON.
//
// The paper's objects of study are *runs* — partial orders of events
// shaped by what a protocol inhibited and for how long. End-of-run
// aggregates (protocol.Stats, dsim.ExploreStats) cannot show that
// structure; this package records it. Every record carries a vector
// clock maintained by the observability layer itself (independent of
// any clocks the protocol under test may or may not use), so the
// causal structure of a run is visible even for tagless protocols.
//
// Instrumentation is strictly pay-for-what-you-use: a nil *Probe, nil
// Tracer, nil *Registry and nil *Sink are all valid and turn every
// emission site into a pointer test. Harnesses thread a single Probe
// through their event path and never branch on "is tracing on".
package obs

import (
	"encoding/json"
	"fmt"
	"strconv"
	"sync"

	"msgorder/internal/event"
	"msgorder/internal/protocol"
	"msgorder/internal/vc"
)

// Op identifies what a trace record describes.
type Op uint8

// Record operations. The four lifecycle operations mirror the paper's
// event kinds (x.s*, x.s, x.r*, x.r); the inhibition spans are derived
// from the gaps between them; the transport and explorer operations
// come from the layers below and above the protocols.
const (
	// OpInvoke is the user's send request (x.s*).
	OpInvoke Op = iota + 1
	// OpSend is the protocol's send execution (x.s); for control wires
	// Msg is NoMsg and Note names the control type.
	OpSend
	// OpReceive is the wire arrival (x.r* for user wires).
	OpReceive
	// OpDeliver is the protocol's delivery execution (x.r).
	OpDeliver
	// OpInhibitSend is a span: the protocol held a message between its
	// invoke and its send.
	OpInhibitSend
	// OpInhibitDeliver is a span: the protocol held a message between
	// its receive and its delivery. Note records what released it.
	OpInhibitDeliver
	// OpRetransmit is a transport-level timeout-driven resend.
	OpRetransmit
	// OpDrop is an injected transmission loss.
	OpDrop
	// OpDup is an injected transmission duplication.
	OpDup
	// OpDelay is an injected transmission delay.
	OpDelay
	// OpPartitionDrop is a transmission lost to an active partition.
	OpPartitionDrop
	// OpStallExtend is the stall detector extending its window because
	// the transport made progress.
	OpStallExtend
	// OpStallVerdict is the stall detector's final verdict.
	OpStallVerdict
	// OpExpand is one explorer choice-point expansion.
	OpExpand
	// OpCrash is an injected process crash (crash-stop or the start of
	// a crash-restart cycle).
	OpCrash
	// OpRecover is a process completing recovery: snapshot restored,
	// WAL suffix replayed, goroutine restarted.
	OpRecover
	// OpSuspect is the failure detector suspecting a process after
	// heartbeat silence.
	OpSuspect
	// OpAlive is the failure detector clearing a suspicion after
	// heartbeats resume.
	OpAlive
)

var opNames = map[Op]string{
	OpInvoke:         "invoke",
	OpSend:           "send",
	OpReceive:        "receive",
	OpDeliver:        "deliver",
	OpInhibitSend:    "inhibit-send",
	OpInhibitDeliver: "inhibit-deliver",
	OpRetransmit:     "retransmit",
	OpDrop:           "drop",
	OpDup:            "dup",
	OpDelay:          "delay",
	OpPartitionDrop:  "partition-drop",
	OpStallExtend:    "stall-extend",
	OpStallVerdict:   "stall-verdict",
	OpExpand:         "expand",
	OpCrash:          "crash",
	OpRecover:        "recover",
	OpSuspect:        "suspect",
	OpAlive:          "alive",
}

// String returns the operation's wire name (used in exports).
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// MarshalJSON renders the operation as its name.
func (o Op) MarshalJSON() ([]byte, error) {
	return []byte(`"` + o.String() + `"`), nil
}

// opValues is the reverse of opNames, for decoding scraped records.
var opValues = func() map[string]Op {
	m := make(map[string]Op, len(opNames))
	for op, name := range opNames {
		m[name] = op
	}
	return m
}()

// UnmarshalJSON parses an operation from its name (the MarshalJSON
// form) or, for forward compatibility, a bare number.
func (o *Op) UnmarshalJSON(b []byte) error {
	if len(b) >= 2 && b[0] == '"' {
		name := string(b[1 : len(b)-1])
		if op, ok := opValues[name]; ok {
			*o = op
			return nil
		}
		return fmt.Errorf("obs: unknown op %q", name)
	}
	var n uint8
	if err := json.Unmarshal(b, &n); err != nil {
		return err
	}
	*o = Op(n)
	return nil
}

// HarnessProc is the Proc value for records owned by the harness
// itself (stall detector, explorer) rather than any process.
const HarnessProc = event.ProcID(-1)

// TimebaseGauge is the metric name under which live harnesses publish
// their Step timebase origin as wall-clock microseconds (UnixMicro at
// harness start). Fleet tooling uses it to rebase per-process Step
// values onto one shared axis; deterministic simulators, whose Steps
// are logical ticks, never set it.
const TimebaseGauge = "obs.timebase.unix_us"

// NoMsg is the Msg value for records not scoped to a user message.
const NoMsg = event.MsgID(-1)

// Record is one structured trace event.
type Record struct {
	// Step is the timestamp in the emitting harness's timebase:
	// simulated ticks for dsim, scheduler steps for explorer replays,
	// wall microseconds since harness start for the live network.
	Step int64 `json:"step"`
	// Dur is the span length for span operations (0 for instants).
	Dur int64 `json:"dur,omitempty"`
	// Proc is the owning process track (HarnessProc for global records).
	Proc event.ProcID `json:"proc"`
	// Op is the operation.
	Op Op `json:"op"`
	// Msg is the user message involved (NoMsg when not message-scoped).
	Msg event.MsgID `json:"msg"`
	// Key is the message's ordering domain (event.NoKey for unkeyed
	// runs and non-message records), so sharded traces can tell their
	// domains apart.
	Key event.Key `json:"key,omitempty"`
	// Chan names the multiplexed channel the record belongs to (empty
	// for un-multiplexed runs), so a multi-tenant daemon's merged trace
	// can tell its tenants apart. Stamped by WithChannel wrappers, not
	// by emitters.
	Chan string `json:"chan,omitempty"`
	// VC is the observability layer's vector clock at the event (nil
	// when the emitter keeps no clocks, e.g. the transport).
	VC vc.Vector `json:"vc,omitempty"`
	// Note carries human detail: the blocking condition of an
	// inhibition span, a fault's endpoints, an expansion's fanout.
	Note string `json:"note,omitempty"`
}

// Tracer receives trace records. Implementations used by the live
// harness must be safe for concurrent use; the deterministic
// simulators emit from one goroutine.
type Tracer interface {
	Emit(Record)
}

// chanTracer stamps a channel label onto every record passing through.
type chanTracer struct {
	next Tracer
	name string
}

// Emit forwards r with the channel label filled in (an already-labelled
// record keeps its label, so nested wrappers compose innermost-wins).
func (t chanTracer) Emit(r Record) {
	if r.Chan == "" {
		r.Chan = t.name
	}
	t.next.Emit(r)
}

// WithChannel wraps next so every record emitted through the wrapper
// carries the multiplexed-channel name in Record.Chan. The multi-tenant
// daemon gives each channel's protocol stack one wrapper around the
// shared collector, so one merged timeline still attributes every
// record to its tenant. A nil next (tracing off) stays nil.
func WithChannel(next Tracer, channel string) Tracer {
	if next == nil || channel == "" {
		return next
	}
	return chanTracer{next: next, name: channel}
}

// Collector is an in-memory Tracer: it buffers records for later
// export or merging, and numbers them with a monotone sequence so
// remote pollers can scrape incrementally (RecordsSince) instead of
// re-downloading the whole buffer. An unbounded collector keeps
// everything until Reset; a capped one (NewCollectorCap) is a ring that
// overwrites its oldest records, so a long-running daemon traces at
// bounded memory and a scraper that keeps up loses nothing. Safe for
// concurrent use.
type Collector struct {
	mu sync.Mutex
	// limit is the ring capacity (0 = unbounded).
	limit int
	// recs holds the buffered records. While unbounded (or a capped
	// collector still filling), it is a plain append slice and head is
	// 0. Once a capped collector wraps (len == limit), it is a ring:
	// the oldest record is recs[head] and emission order wraps around.
	recs []Record
	head int
	// base is the sequence number of the oldest buffered record: Reset
	// and ring overwrites drop records but keep the numbering monotone,
	// so a poller's cursor stays valid.
	base uint64
	// dropped counts records overwritten before any poller could have
	// read them (a scraper that keeps up sees zero).
	dropped uint64
}

// NewCollector returns an empty unbounded collector.
func NewCollector() *Collector { return &Collector{} }

// NewCollectorCap returns an empty collector that keeps at most limit
// records, overwriting the oldest beyond that (limit <= 0 means
// unbounded).
func NewCollectorCap(limit int) *Collector {
	if limit < 0 {
		limit = 0
	}
	// The backing array is reserved up front: a capped collector exists
	// for hot paths, where growth reallocations (and the GC copies they
	// imply) would show up as tracing overhead.
	return &Collector{limit: limit, recs: make([]Record, 0, limit)}
}

// Emit appends a record, overwriting the oldest one when a capped
// collector is full.
func (c *Collector) Emit(r Record) {
	c.mu.Lock()
	c.emitLocked(r)
	c.mu.Unlock()
}

// EmitPair appends two records under a single lock acquisition — the
// probe's span+event pairs use it so the hot path pays one lock, not
// two.
func (c *Collector) EmitPair(a, b Record) {
	c.mu.Lock()
	c.emitLocked(a)
	c.emitLocked(b)
	c.mu.Unlock()
}

func (c *Collector) emitLocked(r Record) {
	if c.limit > 0 && len(c.recs) == c.limit {
		c.recs[c.head] = r
		c.head++
		if c.head == c.limit {
			c.head = 0
		}
		c.base++
		c.dropped++
	} else {
		c.recs = append(c.recs, r)
	}
}

// Len returns the number of buffered records.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.recs)
}

// Dropped returns how many records a capped collector has overwritten
// since creation.
func (c *Collector) Dropped() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// Seq returns the next sequence number — the cursor a poller that has
// seen everything so far would resume from.
func (c *Collector) Seq() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.base + uint64(len(c.recs))
}

// copyFrom returns a copy of the buffered records starting at logical
// index i (0 = oldest), in emission order. Callers hold c.mu.
func (c *Collector) copyFrom(i int) []Record {
	n := len(c.recs) - i
	if n <= 0 {
		return nil
	}
	out := make([]Record, 0, n)
	p := c.head + i
	if p >= len(c.recs) {
		p -= len(c.recs)
	}
	out = append(out, c.recs[p:min(p+n, len(c.recs))]...)
	if rem := n - (len(c.recs) - p); rem > 0 {
		out = append(out, c.recs[:rem]...)
	}
	return out
}

// Records returns a copy of the buffered records in emission order.
func (c *Collector) Records() []Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.copyFrom(0)
}

// RecordsSince returns the buffered records numbered since and later,
// plus the next cursor (pass it back as since on the next call). A
// cursor older than the buffer (the collector was Reset underneath the
// poller, or a capped ring lapped it) yields everything still
// buffered.
func (c *Collector) RecordsSince(since uint64) ([]Record, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	next := c.base + uint64(len(c.recs))
	if since < c.base {
		since = c.base
	}
	if since >= next {
		return nil, next
	}
	return c.copyFrom(int(since - c.base)), next
}

// Reset drops all buffered records (sequence numbering continues from
// where it was).
func (c *Collector) Reset() {
	c.mu.Lock()
	c.base += uint64(len(c.recs))
	c.recs = c.recs[:0]
	c.head = 0
	c.mu.Unlock()
}

// FlushTo emits every buffered record into t and clears the buffer.
// Used to merge per-worker collectors into a shared tracer at join.
func (c *Collector) FlushTo(t Tracer) {
	if t == nil {
		return
	}
	c.mu.Lock()
	recs := c.copyFrom(0)
	c.base += uint64(len(c.recs))
	c.recs = nil
	c.head = 0
	c.mu.Unlock()
	for _, r := range recs {
		t.Emit(r)
	}
}

// Sink bundles the tracer, registry and timebase one subsystem emits
// into. A nil *Sink (and nil fields) disables everything; every method
// is safe on a nil receiver, so emission sites need no guards.
type Sink struct {
	// Tracer receives records (nil: tracing off).
	Tracer Tracer
	// Metrics receives counters and histograms (nil: metrics off).
	Metrics *Registry
	// Now supplies Step timestamps (nil: records carry step 0).
	Now func() int64
}

// Enabled reports whether the sink records anything at all.
func (s *Sink) Enabled() bool {
	return s != nil && (s.Tracer != nil || s.Metrics != nil)
}

// Step returns the current timestamp, or 0 without a timebase.
func (s *Sink) Step() int64 {
	if s == nil || s.Now == nil {
		return 0
	}
	return s.Now()
}

// Trace emits a record if tracing is on.
func (s *Sink) Trace(r Record) {
	if s == nil || s.Tracer == nil {
		return
	}
	s.Tracer.Emit(r)
}

// Count adds d to the named counter if metrics are on.
func (s *Sink) Count(name string, d int64) {
	if s == nil {
		return
	}
	s.Metrics.Count(name, d)
}

// Observe records a histogram sample if metrics are on.
func (s *Sink) Observe(name string, v int64) {
	if s == nil {
		return
	}
	s.Metrics.Observe(name, v)
}

// Probe instruments one harness run. It maintains the observability
// layer's own vector clocks (ticked on every lifecycle event, merged
// through the stamps carried on wires), derives inhibition spans and
// latency histograms from the four-event lifecycle, and emits causally
// stamped records.
//
// A nil *Probe is the disabled fast path: every method returns after a
// single pointer test, so harnesses call it unconditionally on their
// hot paths. All methods are safe for concurrent use (the live harness
// emits from many goroutines).
type Probe struct {
	mu     sync.Mutex
	tracer Tracer
	// col is tracer when it is the in-memory collector, letting the
	// hot path batch span+event pairs under one lock (emit2).
	col     *Collector
	metrics *Registry
	now     func() int64
	proto   string

	vcs []vc.Vector
	// arena backs stamp snapshots: slices are carved off and never
	// reused, amortizing one allocation over a chunk of stamps.
	arena []uint64
	// invokeAt and recvAt store step+1 per message id (0 = unseen).
	// Message ids are dense workload indices, so slices beat maps on
	// the per-event path; they grow on demand.
	invokeAt []int64
	recvAt   []int64
	// keyOf remembers each message's ordering domain (learned at invoke
	// or receive) so delivery-side records and histograms can carry it
	// (NoKey is the zero value, so unkeyed slots need no sentinel).
	keyOf []event.Key
	// ctrlNotes caches rendered control-wire annotations (guarded by
	// mu like the rest of the probe state).
	ctrlNotes map[uint32]string
	// scratch is the reusable note-building buffer (guarded by mu), so
	// a span note costs one string allocation, not a buffer + a string.
	scratch []byte
	// ctx describes the handler currently running at each process, so
	// inhibition-release notes can name the unblocking event. The
	// description is kept as a compact value and only formatted when a
	// note actually embeds it.
	ctx []ctxNote

	// latency, inhSend and inhDeliver are the lifecycle histograms with
	// their names precomputed (and per-key variants cached), keeping
	// string building off the per-event path.
	latency    keyedMetric
	inhSend    keyedMetric
	inhDeliver keyedMetric
}

// ctxNote is a deferred-format handler description.
type ctxNote struct {
	kind uint8 // 0 none, ctxInvoke, ctxArrival, ctxCtrl
	msg  event.MsgID
	ctrl int
	from event.ProcID
}

const (
	ctxInvoke = uint8(iota + 1)
	ctxArrival
	ctxCtrl
)

// appendTo renders the description ("invoke of m3", "arrival of m7",
// "ctrl 2 from P1").
func (c ctxNote) appendTo(b []byte) []byte {
	switch c.kind {
	case ctxInvoke:
		b = append(b, "invoke of m"...)
		b = strconv.AppendInt(b, int64(c.msg), 10)
	case ctxArrival:
		b = append(b, "arrival of m"...)
		b = strconv.AppendInt(b, int64(c.msg), 10)
	case ctxCtrl:
		b = append(b, "ctrl "...)
		b = strconv.AppendInt(b, int64(c.ctrl), 10)
		b = append(b, " from P"...)
		b = strconv.AppendInt(b, int64(c.from), 10)
	}
	return b
}

// keyedMetric is a histogram name with direct histogram handles cached
// — the aggregate and its per-ordering-domain variants — so the
// per-event path skips the registry map (guarded by the probe mutex).
type keyedMetric struct {
	agg    string
	aggH   *hist
	perKey map[event.Key]*hist
}

func newKeyedMetric(name, proto string) keyedMetric {
	if proto != "" {
		name += "." + proto
	}
	return keyedMetric{agg: name, perKey: make(map[event.Key]*hist)}
}

// keyName builds the per-domain variant name
// ("inhibit.deliver.steps.fifo.k1c9a").
func (m *keyedMetric) keyName(k event.Key) string {
	b := make([]byte, 0, len(m.agg)+18)
	b = append(b, m.agg...)
	b = append(b, ".k"...)
	b = strconv.AppendUint(b, uint64(k), 16)
	return string(b)
}

// NewProbe builds a probe over n processes emitting into tracer and
// metrics with the given timebase. It returns nil — the disabled fast
// path — when both tracer and metrics are nil. proto labels the
// per-protocol histograms (pass the protocol's descriptor name).
func NewProbe(n int, tracer Tracer, metrics *Registry, proto string, now func() int64) *Probe {
	if tracer == nil && metrics == nil {
		return nil
	}
	if now == nil {
		now = func() int64 { return 0 }
	}
	p := &Probe{
		tracer:     tracer,
		metrics:    metrics,
		now:        now,
		proto:      proto,
		vcs:        make([]vc.Vector, n),
		ctx:        make([]ctxNote, n),
		latency:    newKeyedMetric("deliver.latency.steps", proto),
		inhSend:    newKeyedMetric("inhibit.send.steps", proto),
		inhDeliver: newKeyedMetric("inhibit.deliver.steps", proto),
	}
	p.col, _ = tracer.(*Collector)
	for i := range p.vcs {
		p.vcs[i] = vc.NewVector(n)
	}
	return p
}

// observeKeyed records a sample under the aggregate histogram and,
// when the message is keyed, under its per-domain variant too —
// "inhibit.deliver.steps.fifo.k1c9a" — so sharded runs get one
// histogram per domain alongside the aggregate. Histogram handles are
// resolved once and cached (lazily, so unobserved histograms never
// appear in snapshots).
func (p *Probe) observeKeyed(m *keyedMetric, k event.Key, v int64) {
	if p.metrics == nil {
		return
	}
	if m.aggH == nil {
		m.aggH = p.metrics.histFor(m.agg)
	}
	m.aggH.observe(v)
	if k != event.NoKey {
		h, ok := m.perKey[k]
		if !ok {
			h = p.metrics.histFor(m.keyName(k))
			m.perKey[k] = h
		}
		h.observe(v)
	}
}

// at reads the step+1 slot for id from a per-message table (0 when the
// id was never recorded).
func at(tbl []int64, id event.MsgID) int64 {
	if id < 0 || int(id) >= len(tbl) {
		return 0
	}
	return tbl[id]
}

// setAt grows tbl to cover id and stores step+1 there. Growth is
// geometric: message ids arrive roughly in order, so gap-sized growth
// would reallocate on nearly every new id.
func setAt(tbl []int64, id event.MsgID, step int64) []int64 {
	if id < 0 {
		return tbl
	}
	if int(id) >= len(tbl) {
		tbl = append(tbl, make([]int64, grownBy(len(tbl), int(id)))...)
	}
	tbl[id] = step + 1
	return tbl
}

// grownBy sizes a table extension: enough to cover id, at least a
// doubling, never tiny.
func grownBy(n, id int) int {
	g := id + 1 - n
	if g < n {
		g = n
	}
	if g < 1024 {
		g = 1024
	}
	return g
}

// key reads the ordering domain recorded for id (NoKey if none).
func (p *Probe) key(id event.MsgID) event.Key {
	if id < 0 || int(id) >= len(p.keyOf) {
		return event.NoKey
	}
	return p.keyOf[id]
}

// setKey grows keyOf to cover id and stores the domain.
func (p *Probe) setKey(id event.MsgID, k event.Key) {
	if id < 0 {
		return
	}
	if int(id) >= len(p.keyOf) {
		p.keyOf = append(p.keyOf, make([]event.Key, grownBy(len(p.keyOf), int(id)))...)
	}
	p.keyOf[id] = k
}

// setCtx records the handler description for proc (ignoring the
// harness pseudo-process).
func (p *Probe) setCtx(proc event.ProcID, c ctxNote) {
	if proc >= 0 && int(proc) < len(p.ctx) {
		p.ctx[proc] = c
	}
}

// heldNote appends "m<id> held <d> steps after <what>" to b.
func heldNote(b []byte, id event.MsgID, d int64, what string) []byte {
	b = append(b, 'm')
	b = strconv.AppendInt(b, int64(id), 10)
	b = append(b, " held "...)
	b = strconv.AppendInt(b, d, 10)
	b = append(b, " steps after "...)
	b = append(b, what...)
	return b
}

// Control-note directions, for the probe's note cache.
const (
	ctrlTo = iota
	ctrlFrom
)

var ctrlDirs = [...]string{ctrlTo: " to P", ctrlFrom: " from P"}

// ctrlNote renders "ctrl <c> <dir> P<p>", caching the rendered string:
// control codes and peers are tiny enumerations, so after warmup a
// chatty protocol's control traffic annotates for a map hit instead of
// an allocation per wire.
func (p *Probe) ctrlNote(c uint8, dir int, q event.ProcID) string {
	cacheable := q >= 0 && q <= 255
	k := uint32(c)<<9 | uint32(dir)<<8 | uint32(uint8(q))
	if cacheable {
		if s, ok := p.ctrlNotes[k]; ok {
			return s
		}
	}
	b := make([]byte, 0, 24)
	b = append(b, "ctrl "...)
	b = strconv.AppendInt(b, int64(c), 10)
	b = append(b, ctrlDirs[dir]...)
	b = strconv.AppendInt(b, int64(q), 10)
	s := string(b)
	if cacheable {
		if p.ctrlNotes == nil {
			p.ctrlNotes = make(map[uint32]string, 8)
		}
		p.ctrlNotes[k] = s
	}
	return s
}

func (p *Probe) emit(r Record) {
	if p.tracer != nil {
		p.tracer.Emit(r)
	}
}

// emit2 emits a span+event pair, paying a single collector lock when
// the tracer is the in-memory collector.
func (p *Probe) emit2(a, b Record) {
	if p.col != nil {
		p.col.EmitPair(a, b)
	} else if p.tracer != nil {
		p.tracer.Emit(a)
		p.tracer.Emit(b)
	}
}

// stamp ticks process q's clock and returns a snapshot. Snapshots are
// carved out of an arena chunk — each is an independent, never-reused
// slice, but allocation happens once per chunk instead of per event.
func (p *Probe) stamp(q event.ProcID) vc.Vector {
	p.vcs[q].Tick(int(q))
	n := len(p.vcs[q])
	if len(p.arena) < n {
		p.arena = make([]uint64, 1024*n)
	}
	v := vc.Vector(p.arena[:n:n])
	p.arena = p.arena[n:]
	copy(v, p.vcs[q])
	return v
}

// Invoke records the user's send request of m at its source.
func (p *Probe) Invoke(m event.Message) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.now()
	p.invokeAt = setAt(p.invokeAt, m.ID, now)
	if m.Key != event.NoKey {
		p.setKey(m.ID, m.Key)
	}
	p.setCtx(m.From, ctxNote{kind: ctxInvoke, msg: m.ID})
	p.emit(Record{Step: now, Proc: m.From, Op: OpInvoke, Msg: m.ID, Key: m.Key, VC: p.stamp(m.From)})
}

// Send records the protocol's send execution and stamps the wire with
// the sender's clock so the receive side can merge it. Must be called
// with the wire the harness is about to transmit.
func (p *Probe) Send(w *protocol.Wire) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.now()
	stamp := p.stamp(w.From)
	w.VC = stamp
	rec := Record{Step: now, Proc: w.From, Op: OpSend, VC: stamp, Msg: NoMsg}
	if w.Kind == protocol.UserWire {
		rec.Msg, rec.Key = w.Msg, w.Key
		if iat := at(p.invokeAt, w.Msg); iat > 0 && now > iat-1 {
			held := now - (iat - 1)
			p.observeKeyed(&p.inhSend, w.Key, held)
			p.scratch = heldNote(p.scratch[:0], w.Msg, held, "invoke")
			p.emit2(Record{
				Step: iat - 1, Dur: held, Proc: w.From, Op: OpInhibitSend, Msg: w.Msg, Key: w.Key,
				Note: string(p.scratch),
			}, rec)
			return
		}
	} else {
		rec.Note = p.ctrlNote(w.Ctrl, ctrlTo, w.To)
	}
	p.emit(rec)
}

// Receive records a wire arrival at its destination, merging the
// sender's stamp into the destination's clock.
func (p *Probe) Receive(w protocol.Wire) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.now()
	if w.VC != nil {
		p.vcs[w.To].Merge(vc.Vector(w.VC))
	}
	rec := Record{Step: now, Proc: w.To, Op: OpReceive, VC: p.stamp(w.To), Msg: NoMsg}
	if w.Kind == protocol.UserWire {
		rec.Msg, rec.Key = w.Msg, w.Key
		p.recvAt = setAt(p.recvAt, w.Msg, now)
		if w.Key != event.NoKey {
			p.setKey(w.Msg, w.Key)
		}
		p.setCtx(w.To, ctxNote{kind: ctxArrival, msg: w.Msg})
	} else {
		rec.Note = p.ctrlNote(w.Ctrl, ctrlFrom, w.From)
		p.setCtx(w.To, ctxNote{kind: ctxCtrl, ctrl: int(w.Ctrl), from: w.From})
	}
	p.emit(rec)
}

// Deliver records the protocol's delivery execution of m at proc,
// emitting the delivery-inhibition span (with the event that released
// it) and the end-to-end latency histogram.
func (p *Probe) Deliver(proc event.ProcID, m event.MsgID) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.now()
	key := p.key(m)
	rec := Record{Step: now, Proc: proc, Op: OpDeliver, Msg: m, Key: key, VC: p.stamp(proc)}
	if iat := at(p.invokeAt, m); iat > 0 {
		p.observeKeyed(&p.latency, key, now-(iat-1))
	}
	if rat := at(p.recvAt, m); rat > 0 && now > rat-1 {
		held := now - (rat - 1)
		b := heldNote(p.scratch[:0], m, held, "receive")
		if proc >= 0 && int(proc) < len(p.ctx) && p.ctx[proc].kind != 0 {
			b = append(b, "; released by "...)
			b = p.ctx[proc].appendTo(b)
		}
		p.scratch = b
		p.observeKeyed(&p.inhDeliver, key, held)
		p.emit2(Record{Step: rat - 1, Dur: held, Proc: proc, Op: OpInhibitDeliver, Msg: m, Key: key, Note: string(b)}, rec)
		return
	}
	p.emit(rec)
}

// Clock returns a copy of process q's current vector clock.
func (p *Probe) Clock(q event.ProcID) vc.Vector {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.vcs[q].Clone()
}
