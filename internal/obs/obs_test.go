package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"msgorder/internal/event"
	"msgorder/internal/protocol"
)

// TestNilFastPath: a nil probe, registry and sink must absorb every
// call without panicking — this is the disabled path every harness
// runs in production benchmarks.
func TestNilFastPath(t *testing.T) {
	var p *Probe
	m := event.Message{ID: 0, From: 0, To: 1}
	p.Invoke(m)
	w := protocol.Wire{From: 0, To: 1, Kind: protocol.UserWire, Msg: 0}
	p.Send(&w)
	p.Receive(w)
	p.Deliver(1, 0)
	if p.Clock(0) != nil {
		t.Fatal("nil probe returned a clock")
	}

	var r *Registry
	r.Count("x", 1)
	r.Gauge("x", 1)
	r.GaugeMax("x", 1)
	r.Observe("x", 1)
	r.Merge(NewRegistry())
	NewRegistry().Merge(r)
	if got := r.Snapshot(); got.Counters != nil {
		t.Fatal("nil registry snapshot not zero")
	}

	var s *Sink
	s.Trace(Record{})
	s.Count("x", 1)
	s.Observe("x", 1)
	if s.Enabled() || s.Step() != 0 {
		t.Fatal("nil sink not disabled")
	}

	if NewProbe(2, nil, nil, "p", nil) != nil {
		t.Fatal("probe with no outputs must be nil (the fast path)")
	}
}

// TestProbeCausality walks a two-message relay through a probe and
// checks the vector-clock stamps order causally related events.
func TestProbeCausality(t *testing.T) {
	c := NewCollector()
	reg := NewRegistry()
	step := int64(0)
	now := func() int64 { return step }
	p := NewProbe(3, c, reg, "test", now)

	m0 := event.Message{ID: 0, From: 0, To: 1}
	p.Invoke(m0)
	w0 := protocol.Wire{From: 0, To: 1, Kind: protocol.UserWire, Msg: 0}
	step = 1
	p.Send(&w0)
	if w0.VC == nil {
		t.Fatal("send did not stamp the wire")
	}
	step = 4
	p.Receive(w0)
	step = 7
	p.Deliver(1, 0)

	// Relay: P1 sends m1 to P2 after delivering m0.
	m1 := event.Message{ID: 1, From: 1, To: 2}
	p.Invoke(m1)
	w1 := protocol.Wire{From: 1, To: 2, Kind: protocol.UserWire, Msg: 1}
	step = 8
	p.Send(&w1)
	step = 12
	p.Receive(w1)
	p.Deliver(2, 1) // same step: delivered on arrival, no inhibition

	recs := c.Records()
	var sendVC, deliverVC, relayDeliverVC []uint64
	for _, r := range recs {
		switch {
		case r.Op == OpSend && r.Msg == 0:
			sendVC = r.VC
		case r.Op == OpDeliver && r.Msg == 0:
			deliverVC = r.VC
		case r.Op == OpDeliver && r.Msg == 1:
			relayDeliverVC = r.VC
		}
	}
	if sendVC == nil || deliverVC == nil || relayDeliverVC == nil {
		t.Fatalf("missing records: %+v", recs)
	}
	lessEq := func(a, b []uint64) bool {
		for i := range a {
			if a[i] > b[i] {
				return false
			}
		}
		return true
	}
	if !lessEq(sendVC, deliverVC) {
		t.Fatalf("send VC %v not ≤ deliver VC %v", sendVC, deliverVC)
	}
	if !lessEq(deliverVC, relayDeliverVC) {
		t.Fatalf("m0 deliver VC %v not ≤ relayed m1 deliver VC %v (transitivity lost)", deliverVC, relayDeliverVC)
	}

	// The delivery of m0 was held 3 steps past its receive: an
	// inhibition span and a histogram sample must exist.
	var span *Record
	for i := range recs {
		if recs[i].Op == OpInhibitDeliver && recs[i].Msg == 0 {
			span = &recs[i]
		}
	}
	if span == nil {
		t.Fatal("no delivery-inhibition span recorded")
	}
	if span.Dur != 3 || span.Step != 4 {
		t.Fatalf("span = step %d dur %d, want step 4 dur 3", span.Step, span.Dur)
	}
	if !strings.Contains(span.Note, "released by") {
		t.Fatalf("span note %q does not name the releasing event", span.Note)
	}
	snap := reg.Snapshot()
	h, ok := snap.Histograms["inhibit.deliver.steps.test"]
	if !ok || h.Count != 1 || h.Sum != 3 {
		t.Fatalf("inhibition histogram = %+v, want one sample of 3", h)
	}
	if h = snap.Histograms["deliver.latency.steps.test"]; h.Count != 2 {
		t.Fatalf("latency histogram count = %d, want 2", h.Count)
	}
}

func TestRegistrySnapshotAndMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Count("c", 2)
	b.Count("c", 3)
	a.Gauge("g", 10)
	b.GaugeMax("g", 7)
	for _, v := range []int64{1, 2, 3, 100} {
		a.Observe("h", v)
	}
	b.Observe("h", 1000)

	a.Merge(b)
	s := a.Snapshot()
	if s.Counters["c"] != 5 {
		t.Fatalf("merged counter = %d, want 5", s.Counters["c"])
	}
	if s.Gauges["g"] != 10 {
		t.Fatalf("merged gauge = %d, want max 10", s.Gauges["g"])
	}
	h := s.Histograms["h"]
	if h.Count != 5 || h.Sum != 1106 || h.Min != 1 || h.Max != 1000 {
		t.Fatalf("merged histogram = %+v", h)
	}
	var total int64
	for _, bk := range h.Buckets {
		total += bk.N
	}
	if total != h.Count {
		t.Fatalf("bucket sum %d != count %d", total, h.Count)
	}
	// Snapshot → MergeSnapshot roundtrip preserves the distribution.
	c := NewRegistry()
	c.MergeSnapshot(s)
	if got := c.Snapshot().Histograms["h"]; got.Count != h.Count || got.Sum != h.Sum {
		t.Fatalf("roundtrip lost samples: %+v vs %+v", got, h)
	}
	names := s.Names()
	if len(names) != 3 || names[0] != "c" || names[1] != "g" || names[2] != "h" {
		t.Fatalf("snapshot names = %v", names)
	}
}

// TestRegistryConcurrent exercises the registry from many goroutines;
// meaningful under -race.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Count("c", 1)
				r.Observe("h", int64(j))
				r.GaugeMax("g", int64(i*1000+j))
			}
		}(i)
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["c"] != 8000 || s.Histograms["h"].Count != 8000 || s.Gauges["g"] != 7999 {
		t.Fatalf("lost updates: %+v", s)
	}
}

func TestCollectorFlushTo(t *testing.T) {
	a, b := NewCollector(), NewCollector()
	a.Emit(Record{Op: OpSend, Msg: 1})
	a.Emit(Record{Op: OpDeliver, Msg: 1})
	a.FlushTo(b)
	if a.Len() != 0 || b.Len() != 2 {
		t.Fatalf("flush: a=%d b=%d", a.Len(), b.Len())
	}
	a.FlushTo(nil) // must not panic
}

// traceRecords is a minimal valid causal run for export tests.
func traceRecords() []Record {
	return []Record{
		{Step: 0, Proc: 0, Op: OpInvoke, Msg: 0, VC: []uint64{1, 0}},
		{Step: 1, Proc: 0, Op: OpSend, Msg: 0, VC: []uint64{2, 0}},
		{Step: 5, Proc: 1, Op: OpReceive, Msg: 0, VC: []uint64{2, 1}},
		{Step: 5, Dur: 3, Proc: 1, Op: OpInhibitDeliver, Msg: 0, Note: "held"},
		{Step: 8, Proc: 1, Op: OpDeliver, Msg: 0, VC: []uint64{2, 2}},
		{Step: 9, Proc: -1, Op: OpStallVerdict, Msg: NoMsg, Note: "idle"},
	}
}

func TestChromeExportValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, traceRecords()); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("exported trace fails validation: %v", err)
	}
	// Spot-check structure: metadata names the tracks, spans are "X".
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	evs := doc["traceEvents"].([]any)
	var haveHarness, haveSpan bool
	for _, e := range evs {
		ev := e.(map[string]any)
		if ev["ph"] == "M" {
			if args, ok := ev["args"].(map[string]any); ok && args["name"] == "harness" {
				haveHarness = true
			}
		}
		if ev["ph"] == "X" {
			haveSpan = true
		}
	}
	if !haveHarness || !haveSpan {
		t.Fatalf("export missing harness track (%v) or span event (%v)", haveHarness, haveSpan)
	}
}

func TestValidateChromeTraceRejects(t *testing.T) {
	cases := map[string][]Record{
		"deliver without send": {
			{Step: 0, Proc: 1, Op: OpDeliver, Msg: 3},
		},
		"deliver before send": {
			{Step: 5, Proc: 0, Op: OpSend, Msg: 3},
			{Step: 2, Proc: 1, Op: OpDeliver, Msg: 3},
		},
	}
	for name, recs := range cases {
		var buf bytes.Buffer
		// Bypass the exporter's sort for the ordering case by writing
		// records with equal timestamps where needed; for "deliver
		// before send" the sort moves deliver first, which is exactly
		// the broken shape.
		if err := WriteChromeTrace(&buf, recs); err != nil {
			t.Fatal(err)
		}
		if err := ValidateChromeTrace(buf.Bytes()); err == nil {
			t.Errorf("%s: validation passed", name)
		}
	}
	if err := ValidateChromeTrace([]byte("{not json")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if err := ValidateChromeTrace([]byte(`{"traceEvents":[]}`)); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestNDJSONExport(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, traceRecords()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(traceRecords()) {
		t.Fatalf("%d lines, want %d", len(lines), len(traceRecords()))
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first["op"] != "invoke" {
		t.Fatalf("op marshaled as %v, want \"invoke\"", first["op"])
	}
}

func TestOpStrings(t *testing.T) {
	for op := OpInvoke; op <= OpExpand; op++ {
		if strings.HasPrefix(op.String(), "op(") {
			t.Fatalf("op %d has no name", op)
		}
	}
	if Op(200).String() != "op(200)" {
		t.Fatal("unknown op string")
	}
}

// TestWithChannelStampsRecords checks the channel-label wrapper: every
// record through the wrapper carries the channel name, already-labelled
// records keep theirs, and a nil tracer stays nil (tracing off).
func TestWithChannelStampsRecords(t *testing.T) {
	col := NewCollector()
	tr := WithChannel(col, "orders")
	tr.Emit(Record{Proc: 0, Op: OpInvoke, Msg: 1})
	tr.Emit(Record{Proc: 1, Op: OpDeliver, Msg: 1, Chan: "pre-labelled"})
	recs := col.Records()
	if len(recs) != 2 || recs[0].Chan != "orders" || recs[1].Chan != "pre-labelled" {
		t.Fatalf("labels = %q, %q", recs[0].Chan, recs[1].Chan)
	}
	if WithChannel(nil, "orders") != nil {
		t.Fatal("nil tracer grew a wrapper")
	}
	if got := WithChannel(col, ""); got != Tracer(col) {
		t.Fatal("empty channel name grew a wrapper")
	}
}
