package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"msgorder/internal/event"
)

// chromeEvent is one entry of the Chrome trace-event JSON format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU),
// the format Perfetto and chrome://tracing load directly.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  *int64         `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object form of a trace file.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit,omitempty"`
}

// chromePID maps a record's process to its Chrome pid: pid 0 is the
// harness track, process i is pid i+1 — one track per process, so the
// causal run is visible as parallel timelines in Perfetto.
func chromePID(p event.ProcID) int {
	if p == HarnessProc {
		return 0
	}
	return int(p) + 1
}

func chromeTrackName(pid int) string {
	if pid == 0 {
		return "harness"
	}
	return fmt.Sprintf("P%d", pid-1)
}

// WriteChromeTrace exports records as Chrome trace-event JSON. Records
// are sorted by timestamp (stable, so same-step records keep their
// emission order); instants become thread-scoped "i" events and spans
// become complete "X" events. Timestamps are interpreted as
// microseconds by viewers; for the deterministic simulators they are
// really logical ticks — the shape, not the unit, is the point.
func WriteChromeTrace(w io.Writer, recs []Record) error {
	sorted := append([]Record(nil), recs...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Step < sorted[j].Step })

	pids := make(map[int]bool)
	tr := chromeTrace{DisplayTimeUnit: "ms"}
	for _, r := range sorted {
		pids[chromePID(r.Proc)] = true
	}
	// Metadata first: name each pid's track.
	var pidList []int
	for pid := range pids {
		pidList = append(pidList, pid)
	}
	sort.Ints(pidList)
	for _, pid := range pidList {
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]any{"name": chromeTrackName(pid)},
		})
	}
	for _, r := range sorted {
		ev := chromeEvent{
			Name: r.Op.String(),
			Cat:  "msgorder",
			Ph:   "i",
			S:    "t",
			TS:   r.Step,
			PID:  chromePID(r.Proc),
			Args: map[string]any{"op": r.Op.String()},
		}
		if r.Msg != NoMsg {
			ev.Name = fmt.Sprintf("%s m%d", r.Op, r.Msg)
			ev.Args["msg"] = int(r.Msg)
		}
		if r.Key != event.NoKey {
			ev.Args["key"] = fmt.Sprintf("%x", uint64(r.Key))
		}
		if r.Dur > 0 {
			d := r.Dur
			ev.Ph, ev.S, ev.Dur = "X", "", &d
		}
		if r.VC != nil {
			ev.Args["vc"] = r.VC.String()
		}
		if r.Note != "" {
			ev.Args["note"] = r.Note
		}
		tr.TraceEvents = append(tr.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tr)
}

// WriteNDJSON exports records as newline-delimited JSON, one record
// per line, in emission order — the machine-first format for piping
// into jq or a log store.
func WriteNDJSON(w io.Writer, recs []Record) error {
	enc := json.NewEncoder(w)
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}

// ValidateChromeTrace structurally checks an exported Chrome trace:
// the JSON is well-formed with a non-empty traceEvents array,
// timestamps are monotone per (pid, tid) track, and every deliver
// event is preceded (in array order and in time) by the send of the
// same message. This is the shape the verify gate asserts on the
// mobench trace smoke.
func ValidateChromeTrace(data []byte) error {
	var tr struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   int64          `json:"ts"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tr); err != nil {
		return fmt.Errorf("obs: trace not well-formed JSON: %w", err)
	}
	if len(tr.TraceEvents) == 0 {
		return fmt.Errorf("obs: trace has no events")
	}
	lastTS := make(map[[2]int]int64)
	sent := make(map[int]int64) // msg -> send ts
	events := 0
	for i, ev := range tr.TraceEvents {
		if ev.Ph == "M" {
			continue // metadata carries no timestamp
		}
		events++
		track := [2]int{ev.PID, ev.TID}
		if ts, ok := lastTS[track]; ok && ev.TS < ts {
			return fmt.Errorf("obs: event %d (%q): timestamp %d before %d on track pid=%d tid=%d",
				i, ev.Name, ev.TS, ts, ev.PID, ev.TID)
		}
		lastTS[track] = ev.TS
		op, _ := ev.Args["op"].(string)
		msgVal, hasMsg := ev.Args["msg"].(float64)
		if !hasMsg {
			continue
		}
		msg := int(msgVal)
		switch op {
		case "send":
			if _, dup := sent[msg]; !dup {
				sent[msg] = ev.TS
			}
		case "deliver":
			ts, ok := sent[msg]
			if !ok {
				return fmt.Errorf("obs: event %d: deliver of m%d with no preceding send", i, msg)
			}
			if ts > ev.TS {
				return fmt.Errorf("obs: event %d: deliver of m%d at %d before its send at %d",
					i, msg, ev.TS, ts)
			}
		}
	}
	if events == 0 {
		return fmt.Errorf("obs: trace has only metadata events")
	}
	return nil
}
