package obs

import "testing"

// TestHistogramQuantile pins the bucket-walk estimator the load runner
// reports latency percentiles from: bucket-granular upper bounds,
// clamped to the observed [Min, Max].
func TestHistogramQuantile(t *testing.T) {
	reg := NewRegistry()
	for v := int64(1); v <= 100; v++ {
		reg.Observe("lat", v)
	}
	h := reg.Snapshot().Histograms["lat"]
	if h.Count != 100 || h.Min != 1 || h.Max != 100 {
		t.Fatalf("histogram = %+v", h)
	}
	// Rank 50 lands in the [32, 63] bucket; the estimate is its upper
	// bound.
	if got := h.Quantile(0.50); got != 63 {
		t.Fatalf("p50 = %d, want 63", got)
	}
	// Rank 99 lands in the [64, 127] bucket, clamped to Max.
	if got := h.Quantile(0.99); got != 100 {
		t.Fatalf("p99 = %d, want 100 (bucket bound clamped to max)", got)
	}
	if h.Quantile(0) != h.Min || h.Quantile(-1) != h.Min {
		t.Fatal("Quantile(≤0) must be Min")
	}
	if h.Quantile(1) != h.Max || h.Quantile(2) != h.Max {
		t.Fatal("Quantile(≥1) must be Max")
	}
	if got := h.Quantile(0.5); got < h.Min || got > h.Max {
		t.Fatalf("quantile %d outside [%d, %d]", got, h.Min, h.Max)
	}

	// A single repeated value: every quantile is that value.
	reg.Observe("one", 42)
	one := reg.Snapshot().Histograms["one"]
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := one.Quantile(q); got != 42 {
			t.Fatalf("single-value Quantile(%v) = %d, want 42", q, got)
		}
	}

	// The empty histogram reports zero, not a panic.
	if got := (Histogram{}).Quantile(0.5); got != 0 {
		t.Fatalf("empty Quantile = %d, want 0", got)
	}
}
