package obs

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"

	"msgorder/internal/event"
	"msgorder/internal/protocol"
)

// TestMergeDisjointHistogramKeys folds two registries whose histogram
// sets do not overlap: the merge must carry each distribution across
// untouched, not cross-contaminate min/max or counts.
func TestMergeDisjointHistogramKeys(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Observe("ha", 4)
	a.Observe("ha", 16)
	b.Observe("hb", 1)
	b.Observe("hb", 1000)
	a.Merge(b)
	s := a.Snapshot()
	if len(s.Histograms) != 2 {
		t.Fatalf("merged histogram count = %d, want 2", len(s.Histograms))
	}
	ha, hb := s.Histograms["ha"], s.Histograms["hb"]
	if ha.Count != 2 || ha.Min != 4 || ha.Max != 16 || ha.Sum != 20 {
		t.Fatalf("ha corrupted by disjoint merge: %+v", ha)
	}
	if hb.Count != 2 || hb.Min != 1 || hb.Max != 1000 || hb.Sum != 1001 {
		t.Fatalf("hb not carried across: %+v", hb)
	}
	// Merging into an empty registry must reproduce both exactly.
	c := NewRegistry()
	c.MergeSnapshot(s)
	if got := c.Snapshot().Histograms["hb"]; got.Min != 1 || got.Max != 1000 {
		t.Fatalf("empty-target merge lost min/max: %+v", got)
	}
}

// TestQuantileEdges pins the Quantile contract at the boundaries: an
// empty histogram reports 0 everywhere, q≤0 is Min, q≥1 is Max, and
// estimates never leave [Min, Max] even though buckets are coarse.
func TestQuantileEdges(t *testing.T) {
	var empty Histogram
	for _, q := range []float64{-1, 0, 0.5, 0.99, 1, 2} {
		if got := empty.Quantile(q); got != 0 {
			t.Fatalf("empty.Quantile(%v) = %d, want 0", q, got)
		}
	}
	if empty.Mean() != 0 {
		t.Fatalf("empty.Mean() = %v, want 0", empty.Mean())
	}

	r := NewRegistry()
	for _, v := range []int64{3, 5, 6, 7, 900} {
		r.Observe("h", v)
	}
	h := r.Snapshot().Histograms["h"]
	if got := h.Quantile(0); got != 3 {
		t.Fatalf("Quantile(0) = %d, want Min 3", got)
	}
	if got := h.Quantile(1); got != 900 {
		t.Fatalf("Quantile(1) = %d, want Max 900", got)
	}
	if got := h.Quantile(-0.5); got != 3 {
		t.Fatalf("Quantile(<0) = %d, want Min", got)
	}
	if got := h.Quantile(1.5); got != 900 {
		t.Fatalf("Quantile(>1) = %d, want Max", got)
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		got := h.Quantile(q)
		if got < h.Min || got > h.Max {
			t.Fatalf("Quantile(%v) = %d outside [%d, %d]", q, got, h.Min, h.Max)
		}
	}
}

// TestMergeMinMaxPreserved chains three merges and checks min/max are
// the global extrema, including the case where the merged-in snapshot
// holds the new extremes.
func TestMergeMinMaxPreserved(t *testing.T) {
	a, b, c := NewRegistry(), NewRegistry(), NewRegistry()
	a.Observe("h", 50)
	b.Observe("h", 2)     // new min arrives via merge
	c.Observe("h", 70000) // new max arrives via a second merge
	a.Merge(b)
	a.Merge(c)
	h := a.Snapshot().Histograms["h"]
	if h.Min != 2 || h.Max != 70000 || h.Count != 3 {
		t.Fatalf("chained merge extrema = %+v, want min 2 max 70000 count 3", h)
	}
	if got := h.Quantile(0.5); got < h.Min || got > h.Max {
		t.Fatalf("post-merge quantile %d outside [%d, %d]", got, h.Min, h.Max)
	}
}

// TestCollectorRecordsSince covers the incremental scrape cursor,
// including a Reset underneath an existing cursor.
func TestCollectorRecordsSince(t *testing.T) {
	c := NewCollector()
	c.Emit(Record{Op: OpInvoke, Msg: 0})
	c.Emit(Record{Op: OpSend, Msg: 0})
	recs, next := c.RecordsSince(0)
	if len(recs) != 2 || next != 2 {
		t.Fatalf("RecordsSince(0) = %d recs next %d, want 2/2", len(recs), next)
	}
	if recs, next = c.RecordsSince(next); len(recs) != 0 || next != 2 {
		t.Fatalf("caught-up cursor returned %d recs next %d", len(recs), next)
	}
	c.Emit(Record{Op: OpDeliver, Msg: 0})
	recs, next = c.RecordsSince(next)
	if len(recs) != 1 || recs[0].Op != OpDeliver || next != 3 {
		t.Fatalf("incremental scrape = %d recs next %d", len(recs), next)
	}
	if c.Seq() != 3 {
		t.Fatalf("Seq() = %d, want 3", c.Seq())
	}
	// Reset keeps numbering monotone: an old cursor yields only what is
	// still buffered, never duplicates.
	c.Reset()
	c.Emit(Record{Op: OpCrash})
	recs, next = c.RecordsSince(1)
	if len(recs) != 1 || recs[0].Op != OpCrash || next != 4 {
		t.Fatalf("post-reset scrape = %d recs next %d", len(recs), next)
	}
	if recs, _ = c.RecordsSince(100); len(recs) != 0 {
		t.Fatalf("future cursor returned %d recs", len(recs))
	}
}

// TestRecordKeyExport checks that ordering keys survive both exporters
// and the per-key histogram suffix appears alongside the aggregate.
func TestRecordKeyExport(t *testing.T) {
	col := NewCollector()
	reg := NewRegistry()
	step := int64(0)
	p := NewProbe(2, col, reg, "fifo", func() int64 { return step })
	k := event.KeyOf("orders")
	m := event.Message{ID: 0, From: 0, To: 1, Key: k}
	p.Invoke(m)
	w := protocol.Wire{From: 0, To: 1, Kind: protocol.UserWire, Msg: 0, Key: k}
	step = 2
	p.Send(&w)
	step = 3
	p.Receive(w)
	step = 7
	p.Deliver(1, 0)

	var deliverKey event.Key
	for _, r := range col.Records() {
		if r.Op == OpDeliver {
			deliverKey = r.Key
		}
	}
	if deliverKey != k {
		t.Fatalf("deliver record key = %x, want %x (keyOf tracking lost it)", deliverKey, k)
	}

	var nd bytes.Buffer
	if err := WriteNDJSON(&nd, col.Records()); err != nil {
		t.Fatal(err)
	}
	var line map[string]any
	if err := json.Unmarshal([]byte(strings.SplitN(nd.String(), "\n", 2)[0]), &line); err != nil {
		t.Fatal(err)
	}
	if _, ok := line["key"]; !ok {
		t.Fatalf("NDJSON line missing key field: %v", line)
	}

	var ch bytes.Buffer
	if err := WriteChromeTrace(&ch, col.Records()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ch.String(), `"key"`) {
		t.Fatal("chrome export carries no key arg")
	}

	snap := reg.Snapshot()
	agg, perKey := false, false
	for name := range snap.Histograms {
		if name == "deliver.latency.steps.fifo" {
			agg = true
		}
		if strings.HasPrefix(name, "deliver.latency.steps.fifo.k") {
			perKey = true
		}
	}
	if !agg || !perKey {
		t.Fatalf("histograms missing aggregate (%v) or per-key (%v) variant: %v",
			agg, perKey, snap.Names())
	}
}

// TestWritePrometheus checks the text exposition: sanitized names,
// cumulative buckets, sum/count lines, and the JSON default untouched.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Count("transport.retransmits", 7)
	r.Gauge("obs.timebase.unix_us", 123)
	r.Observe("load.latency.us", 3)
	r.Observe("load.latency.us", 100)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE transport_retransmits counter",
		"transport_retransmits 7",
		"# TYPE obs_timebase_unix_us gauge",
		"# TYPE load_latency_us histogram",
		`load_latency_us_bucket{le="+Inf"} 2`,
		"load_latency_us_sum 103",
		"load_latency_us_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Buckets must be cumulative: the le=3 bucket holds 1, +Inf holds 2,
	// and counts never decrease down the list.
	var last int64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "load_latency_us_bucket") {
			continue
		}
		n, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("unparsable bucket line %q: %v", line, err)
		}
		if n < last {
			t.Fatalf("buckets not cumulative at %q", line)
		}
		last = n
	}
	if promName("9lives.x-y") != "_9lives_x_y" {
		t.Fatalf("promName sanitization = %q", promName("9lives.x-y"))
	}
}
