package obs

import (
	"fmt"
	"io"
	"strings"
)

// promName sanitizes a registry metric name into the Prometheus
// exposition charset: dots and dashes become underscores, anything
// else outside [a-zA-Z0-9_:] is dropped, and a leading digit gets an
// underscore prefix.
func promName(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if b.Len() == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		case c == '.' || c == '-':
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples,
// histograms as cumulative le-labelled buckets plus _sum and _count.
// Names are rendered deterministically (sorted), so scrapes diff
// cleanly.
func WritePrometheus(w io.Writer, s Snapshot) error {
	for _, name := range s.Names() {
		pn := promName(name)
		if v, ok := s.Counters[name]; ok {
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, v); err != nil {
				return err
			}
		}
		if v, ok := s.Gauges[name]; ok {
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, v); err != nil {
				return err
			}
		}
		h, ok := s.Histograms[name]
		if !ok {
			continue
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		// Registry buckets are non-cumulative per-bucket counts with
		// upper bounds 2^i - 1; the exposition format wants cumulative
		// counts and a trailing +Inf bucket equal to the total count.
		var cum int64
		for _, b := range h.Buckets {
			cum += b.N
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pn, b.Le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			pn, h.Count, pn, h.Sum, pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}
