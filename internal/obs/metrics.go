package obs

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a concurrency-safe metrics registry of counters, gauges
// and histograms, keyed by name. Snapshots are JSON-marshalable, and
// registries merge — the parallel explorer gives each worker its own
// registry and folds them together at join.
//
// A nil *Registry is valid and records nothing: every method begins
// with a pointer test, so instrumented code paths carry no branches of
// their own (the disabled fast path).
type Registry struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]int64
	hists    map[string]*hist
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]int64),
		gauges:   make(map[string]int64),
		hists:    make(map[string]*hist),
	}
}

// hist is a power-of-two-bucket histogram: bucket i counts values v
// with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i). Bucket 0 counts
// values ≤ 0. Fields are updated with atomics — hot observers hold a
// direct handle (histFor) and pay a few uncontended atomic adds per
// sample, no lock. A snapshot taken concurrently with observes is
// accurate per field but not a single instant (count may run a sample
// ahead of a bucket); callers of the scrape path tolerate that.
type hist struct {
	count    atomic.Int64
	sum      atomic.Int64
	min, max atomic.Int64
	buckets  [65]atomic.Int64
}

func newHist() *hist {
	h := &hist{}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// observe records one sample.
func (h *hist) observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bucketIdx(v)].Add(1)
}

func bucketIdx(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Count adds d to the named counter.
func (r *Registry) Count(name string, d int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] += d
	r.mu.Unlock()
}

// Gauge sets the named gauge.
func (r *Registry) Gauge(name string, v int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// GaugeMax raises the named gauge to v if v is larger (high-water
// marks; this is also the merge rule for gauges).
func (r *Registry) GaugeMax(name string, v int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if cur, ok := r.gauges[name]; !ok || v > cur {
		r.gauges[name] = v
	}
	r.mu.Unlock()
}

// histFor returns the named histogram, creating it if missing, so hot
// paths can observe through a direct handle instead of a map lookup
// per sample. Returns nil on a nil registry.
func (r *Registry) histFor(name string) *hist {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	h := r.hists[name]
	if h == nil {
		h = newHist()
		r.hists[name] = h
	}
	r.mu.Unlock()
	return h
}

// Observe records a sample in the named histogram.
func (r *Registry) Observe(name string, v int64) {
	if r == nil {
		return
	}
	r.histFor(name).observe(v)
}

// Merge folds o into r: counters add, gauges take the maximum,
// histograms fold bucket-wise. o is left unchanged. Merging a nil
// registry (either side) is a no-op. Merge never holds both locks at
// once (it goes through a snapshot), so concurrent cross-merges are
// deadlock-free.
func (r *Registry) Merge(o *Registry) {
	if r == nil || o == nil || r == o {
		return
	}
	r.MergeSnapshot(o.Snapshot())
}

// MergeSnapshot folds a snapshot into r with the same rules as Merge.
func (r *Registry) MergeSnapshot(s Snapshot) {
	if r == nil {
		return
	}
	r.mu.Lock()
	for k, v := range s.Counters {
		r.counters[k] += v
	}
	for k, v := range s.Gauges {
		if cur, ok := r.gauges[k]; !ok || v > cur {
			r.gauges[k] = v
		}
	}
	r.mu.Unlock()
	for k, oh := range s.Histograms {
		h := r.histFor(k)
		h.count.Add(oh.Count)
		h.sum.Add(oh.Sum)
		for {
			cur := h.min.Load()
			if oh.Min >= cur || h.min.CompareAndSwap(cur, oh.Min) {
				break
			}
		}
		for {
			cur := h.max.Load()
			if oh.Max <= cur || h.max.CompareAndSwap(cur, oh.Max) {
				break
			}
		}
		// Bucket upper bounds are 2^i - 1, so bits.Len64 recovers the
		// bucket index exactly.
		for _, b := range oh.Buckets {
			h.buckets[bucketIdx(b.Le)].Add(b.N)
		}
	}
}

// Counter returns the named counter's current value (0 if absent).
func (r *Registry) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// Bucket is one non-empty histogram bucket: N samples with value ≤ Le
// (and greater than the previous bucket's Le).
type Bucket struct {
	Le int64 `json:"le"`
	N  int64 `json:"n"`
}

// Histogram is a histogram snapshot.
type Histogram struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Min     int64    `json:"min"`
	Max     int64    `json:"max"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Mean returns the mean sample value.
func (h Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile estimates the q-quantile (q in [0, 1]) from the
// power-of-two buckets: it returns the upper bound of the bucket
// holding the rank-q sample, clamped to the observed [Min, Max], so
// the estimate is never tighter than a bucket width but never outside
// the data. Quantile(0) is Min, Quantile(1) is Max; an empty histogram
// reports 0.
func (h Histogram) Quantile(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min
	}
	if q >= 1 {
		return h.Max
	}
	rank := int64(math.Ceil(q * float64(h.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for _, b := range h.Buckets {
		cum += b.N
		if cum >= rank {
			v := b.Le
			if v < h.Min {
				v = h.Min
			}
			if v > h.Max {
				v = h.Max
			}
			return v
		}
	}
	return h.Max
}

// Snapshot is a point-in-time copy of a registry, JSON-marshalable.
type Snapshot struct {
	Counters   map[string]int64     `json:"counters,omitempty"`
	Gauges     map[string]int64     `json:"gauges,omitempty"`
	Histograms map[string]Histogram `json:"histograms,omitempty"`
}

// Snapshot returns a copy of the registry's current state. A nil
// registry snapshots to the zero Snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for k, v := range r.counters {
			s.Counters[k] = v
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for k, v := range r.gauges {
			s.Gauges[k] = v
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]Histogram, len(r.hists))
		for k, h := range r.hists {
			hs := Histogram{
				Count: h.count.Load(), Sum: h.sum.Load(),
				Min: h.min.Load(), Max: h.max.Load(),
			}
			for i := range h.buckets {
				n := h.buckets[i].Load()
				if n == 0 {
					continue
				}
				le := int64(0)
				if i > 0 {
					le = int64(1)<<uint(i) - 1
				}
				hs.Buckets = append(hs.Buckets, Bucket{Le: le, N: n})
			}
			s.Histograms[k] = hs
		}
	}
	return s
}

// Names returns the sorted metric names of a snapshot (counters,
// gauges and histograms together), for deterministic rendering.
func (s Snapshot) Names() []string {
	seen := make(map[string]bool)
	var out []string
	add := func(k string) {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	for k := range s.Counters {
		add(k)
	}
	for k := range s.Gauges {
		add(k)
	}
	for k := range s.Histograms {
		add(k)
	}
	sort.Strings(out)
	return out
}
