package obs

import (
	"testing"

	"msgorder/internal/event"
	"msgorder/internal/protocol"
)

func BenchmarkProbeLifecycle(b *testing.B) {
	col := NewCollectorCap(1 << 16)
	reg := NewRegistry()
	step := int64(0)
	p := NewProbe(3, col, reg, "fifo", func() int64 { step++; return step })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := event.MsgID(i % 4096)
		m := event.Message{ID: id, From: 0, To: 1}
		p.Invoke(m)
		w := protocol.Wire{From: 0, To: 1, Kind: protocol.UserWire, Msg: id}
		p.Send(&w)
		p.Receive(w)
		p.Deliver(1, id)
	}
}

func BenchmarkCollectorEmit(b *testing.B) {
	col := NewCollectorCap(1 << 16)
	r := Record{Step: 1, Proc: 0, Op: OpSend, Msg: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col.Emit(r)
	}
}
