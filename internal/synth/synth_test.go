package synth

import (
	"errors"
	"testing"

	"msgorder/internal/catalog"
	"msgorder/internal/classify"
	"msgorder/internal/conformance"
	"msgorder/internal/event"
	"msgorder/internal/predicate"
	"msgorder/internal/protocol"
	"msgorder/internal/vc"
)

func entry(t *testing.T, name string) *predicate.Predicate {
	t.Helper()
	e, ok := catalog.ByName(name)
	if !ok {
		t.Fatalf("missing catalog entry %s", name)
	}
	return e.Pred
}

func TestGenerateStrategies(t *testing.T) {
	cases := []struct {
		name string
		want Strategy
	}{
		{"fifo", ChannelSeqStrategy},
		{"local-forward-flush", ChannelSeqStrategy},
		{"causal-b2", CausalStrategy},
		{"causal-b1", CausalStrategy},
		{"global-forward-flush", CausalStrategy},
		{"kweaker-1", CausalStrategy},
		{"example-1", CausalStrategy},
		{"async-a", TrivialStrategy},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			maker, plan, err := Generate(entry(t, c.name))
			if err != nil {
				t.Fatal(err)
			}
			if plan.Strategy != c.want {
				t.Fatalf("strategy = %v, want %v\n%v", plan.Strategy, c.want, plan.Notes)
			}
			if maker == nil {
				t.Fatal("nil maker")
			}
		})
	}
}

func TestGenerateRejectsGeneral(t *testing.T) {
	if _, _, err := Generate(entry(t, "sync-2")); !errors.Is(err, ErrNeedsControl) {
		t.Fatalf("err = %v, want ErrNeedsControl", err)
	}
	if _, _, err := Generate(entry(t, "handoff")); !errors.Is(err, ErrNeedsControl) {
		t.Fatalf("err = %v, want ErrNeedsControl", err)
	}
}

func TestGenerateRejectsUnimplementable(t *testing.T) {
	if _, _, err := Generate(entry(t, "second-before-first")); !errors.Is(err, ErrUnimplementable) {
		t.Fatalf("err = %v, want ErrUnimplementable", err)
	}
}

func TestGenerateRejectsInvalid(t *testing.T) {
	if _, _, err := Generate(&predicate.Predicate{}); err == nil {
		t.Fatal("invalid predicate must be rejected")
	}
}

func TestPlanColorRoles(t *testing.T) {
	_, plan, err := Generate(entry(t, "local-forward-flush"))
	if err != nil {
		t.Fatal(err)
	}
	if !plan.YColorSet || plan.YColor != event.ColorRed || plan.XColorSet {
		t.Fatalf("plan roles = %+v", plan)
	}
	if plan.Class != classify.Tagged {
		t.Fatalf("class = %v", plan.Class)
	}
}

func TestStrategyString(t *testing.T) {
	for s, want := range map[Strategy]string{
		TrivialStrategy:    "trivial",
		ChannelSeqStrategy: "channel-seq",
		CausalStrategy:     "causal",
		Strategy(9):        "strategy(9)",
	} {
		if got := s.String(); got != want {
			t.Errorf("String(%d) = %q", int(s), got)
		}
	}
}

// --- conformance of generated protocols ---

const (
	safetySeeds = 60
	huntSeeds   = 300
)

func cfgFor(maker protocol.Maker, colors []event.Color) conformance.Config {
	return conformance.Config{
		Maker:       maker,
		Procs:       3,
		InitialMsgs: 12,
		ChainBudget: 10,
		ChainProb:   0.7,
		Colors:      colors,
		DelayMax:    40,
	}
}

func TestGeneratedFIFOConforms(t *testing.T) {
	spec := entry(t, "fifo")
	maker, _, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := conformance.AlwaysSatisfies(cfgFor(maker, nil), safetySeeds, spec); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratedFIFOIsExactlyFIFO(t *testing.T) {
	// The generated FIFO must not over-enforce: causal ordering must
	// still break under relays (it is weaker than causal).
	spec := entry(t, "fifo")
	maker, _, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	_, found, err := conformance.FindsViolation(cfgFor(maker, nil), huntSeeds, entry(t, "causal-b2"))
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("generated FIFO over-enforces: no causal violation found")
	}
}

func TestGeneratedLocalFlushConforms(t *testing.T) {
	spec := entry(t, "local-forward-flush")
	maker, _, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	colors := []event.Color{
		event.ColorNone, event.ColorNone, event.ColorNone, event.ColorRed,
	}
	if err := conformance.AlwaysSatisfies(cfgFor(maker, colors), safetySeeds, spec); err != nil {
		t.Fatal(err)
	}
	// And it is cheaper than FIFO: plain messages still reorder.
	_, found, err := conformance.FindsViolation(cfgFor(maker, colors), huntSeeds, entry(t, "fifo"))
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("generated flush over-enforces: plain messages never reorder")
	}
}

func TestGeneratedCausalFallbackConforms(t *testing.T) {
	spec := entry(t, "global-forward-flush")
	maker, plan, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Strategy != CausalStrategy {
		t.Fatalf("strategy = %v", plan.Strategy)
	}
	colors := []event.Color{
		event.ColorNone, event.ColorNone, event.ColorNone, event.ColorRed,
	}
	if err := conformance.AlwaysSatisfies(cfgFor(maker, colors), safetySeeds, spec); err != nil {
		t.Fatal(err)
	}
}

// --- the unsoundness demonstration ---

// naive is the tempting-but-wrong generated protocol for GLOBAL forward
// flush: every message carries the RST matrix, but only red deliveries
// wait (until every message sent here causally before the red's send is
// delivered); plain messages deliver on receipt. The channel-local
// version of this idea is sound; globally it is not, because a relay
// chain can carry "the red message was delivered" to another process
// that then delivers a causally-older plain message — realizing
// x.s ▷ y.s ∧ y.r ▷ x.r with a red y.
type naive struct {
	env           protocol.Env
	m             *vc.Matrix
	deliveredFrom []uint64
	held          []naiveHeld
}

type naiveHeld struct {
	id   event.MsgID
	from event.ProcID
	tag  *vc.Matrix
}

func newNaive() protocol.Process { return &naive{} }

func (p *naive) Describe() protocol.Descriptor {
	return protocol.Descriptor{Name: "naive-global-flush", Class: protocol.Tagged}
}

func (p *naive) Init(env protocol.Env) {
	p.env = env
	p.m = vc.NewMatrix(env.NumProcs())
	p.deliveredFrom = make([]uint64, env.NumProcs())
}

func (p *naive) OnInvoke(m event.Message) {
	p.m.Incr(int(p.env.Self()), int(m.To))
	p.env.Send(protocol.Wire{
		To: m.To, Kind: protocol.UserWire, Msg: m.ID, Color: m.Color,
		Tag: p.m.Encode(),
	})
}

func (p *naive) OnReceive(w protocol.Wire) {
	if w.Kind != protocol.UserWire {
		return
	}
	tag, err := vc.DecodeMatrix(w.Tag)
	if err != nil {
		return
	}
	if w.Color != event.ColorRed {
		// Plain: deliver immediately (this is the unsound shortcut).
		p.deliveredFrom[w.From]++
		p.m.Merge(tag)
		p.env.Deliver(w.Msg)
		p.drainNaive()
		return
	}
	p.held = append(p.held, naiveHeld{id: w.Msg, from: w.From, tag: tag})
	p.drainNaive()
}

func (p *naive) redDeliverable(h naiveHeld) bool {
	self := int(p.env.Self())
	for k := 0; k < p.env.NumProcs(); k++ {
		want := h.tag.Get(k, self)
		if k == int(h.from) {
			want-- // the red message itself is counted in its own tag
		}
		if p.deliveredFrom[k] < want {
			return false
		}
	}
	return true
}

func (p *naive) drainNaive() {
	for {
		progress := false
		for i := 0; i < len(p.held); i++ {
			h := p.held[i]
			if !p.redDeliverable(h) {
				continue
			}
			p.held = append(p.held[:i], p.held[i+1:]...)
			p.deliveredFrom[h.from]++
			p.m.Merge(h.tag)
			p.env.Deliver(h.id)
			progress = true
			break
		}
		if !progress {
			return
		}
	}
}

func TestNaiveGlobalFlushUnsound(t *testing.T) {
	spec := entry(t, "global-forward-flush")
	colors := []event.Color{
		event.ColorNone, event.ColorNone, event.ColorRed,
	}
	cfg := cfgFor(func() protocol.Process { return newNaive() }, colors)
	cfg.Procs = 3
	cfg.InitialMsgs = 10
	cfg.ChainBudget = 12
	cfg.ChainProb = 0.8
	v, found, err := conformance.FindsViolation(cfg, 2000, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Skip("no violation found in 2000 seeds; the naive protocol dodged the adversary this time")
	}
	t.Logf("naive red-only delay violated global flush at seed %d: %s",
		v.Seed, v.Match.String(spec))
}
