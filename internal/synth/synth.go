// Package synth generates an executing protocol from a forbidden
// predicate — the direction of the paper's companion work [19]: "
// specification using forbidden predicates also permits automatic
// generation of efficient protocols".
//
// Generate classifies the predicate and picks the cheapest sound
// strategy:
//
//   - tagless class → the trivial protocol (nothing to enforce),
//   - tagged class, same-channel B2 shape (both endpoints of the pattern
//     guarded onto one channel, as in FIFO, local flush, and colored
//     variants) → a per-channel sequence protocol that delays exactly the
//     deliveries the predicate constrains,
//   - any other tagged class → the full causal-ordering protocol
//     (conservative but sound: order 1 implies X_co ⊆ X_B),
//   - general or unimplementable class → an error citing the theorem
//     that forbids a tagged implementation.
//
// The channel strategy is sound precisely because the guards force both
// deliveries of the forbidden pattern onto one process, where delivery
// order is local: for global patterns (e.g. global forward flush),
// delaying only the constrained message is NOT sound — a relay chain can
// carry the delivery knowledge across processes — which the unsoundness
// test in this package demonstrates constructively.
package synth

import (
	"encoding/binary"
	"errors"
	"fmt"

	"msgorder/internal/classify"
	"msgorder/internal/event"
	"msgorder/internal/predicate"
	"msgorder/internal/protocol"
	"msgorder/internal/protocols/causal"
	"msgorder/internal/protocols/tagless"
)

// Strategy names the generated implementation technique.
type Strategy int

// Strategies, cheapest first.
const (
	// TrivialStrategy: enable everything (tagless class).
	TrivialStrategy Strategy = iota + 1
	// ChannelSeqStrategy: per-channel sequence numbers delaying exactly
	// the constrained deliveries.
	ChannelSeqStrategy
	// CausalStrategy: full causal ordering (sound for every tagged
	// specification).
	CausalStrategy
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case TrivialStrategy:
		return "trivial"
	case ChannelSeqStrategy:
		return "channel-seq"
	case CausalStrategy:
		return "causal"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Plan describes the generated protocol.
type Plan struct {
	Class    classify.Class
	Strategy Strategy
	// XColor/YColor are the pattern roles' color constraints
	// (ColorNone = unconstrained), meaningful for ChannelSeqStrategy.
	XColor, YColor event.Color
	XColorSet      bool
	YColorSet      bool
	Notes          []string
}

// Generation errors.
var (
	// ErrNeedsControl: the specification requires control messages
	// (Theorem 4.2); no tagged protocol can be generated.
	ErrNeedsControl = errors.New("synth: specification requires control messages (Theorem 4.2)")
	// ErrUnimplementable: no protocol exists at all (Theorem 2).
	ErrUnimplementable = errors.New("synth: specification is not implementable (Theorem 2)")
)

// Generate compiles a forbidden predicate into a protocol maker.
func Generate(p *predicate.Predicate) (protocol.Maker, *Plan, error) {
	res, err := classify.Classify(p)
	if err != nil {
		return nil, nil, err
	}
	plan := &Plan{Class: res.Class}
	switch res.Class {
	case classify.Unimplementable:
		return nil, nil, ErrUnimplementable
	case classify.General:
		return nil, nil, ErrNeedsControl
	case classify.Tagless:
		plan.Strategy = TrivialStrategy
		plan.Notes = append(plan.Notes,
			"the predicate is unsatisfiable: the trivial protocol suffices")
		return tagless.Maker, plan, nil
	}
	// Tagged: try the cheap channel strategy, else fall back to causal.
	if ok := analyzeChannelB2(p, plan); ok {
		plan.Strategy = ChannelSeqStrategy
		plan.Notes = append(plan.Notes,
			"same-channel B2 pattern: per-channel sequences delay exactly the constrained deliveries")
		maker := func() protocol.Process {
			return &channelSeq{plan: *plan}
		}
		return maker, plan, nil
	}
	plan.Strategy = CausalStrategy
	plan.Notes = append(plan.Notes,
		"no same-channel structure: enforcing full causal ordering (X_co ⊆ X_B for every order-1 predicate)")
	return causal.RSTMaker, plan, nil
}

// analyzeChannelB2 recognizes the guarded B2 shape
//
//	process(x.s)==process(y.s) && process(x.r)==process(y.r)
//	[&& color(x)==c1] [&& color(y)==c2] :
//	x.s -> y.s && y.r -> x.r
//
// with exactly two variables. Variable order and atom order are free.
func analyzeChannelB2(p *predicate.Predicate, plan *Plan) bool {
	if len(p.Vars) != 2 || len(p.Atoms) != 2 {
		return false
	}
	// Identify roles: the x role has the s->s atom source, the y role its
	// target.
	var x, y = -1, -1
	var haveSS, haveRR bool
	for _, a := range p.Atoms {
		switch {
		case a.From.Part == predicate.S && a.To.Part == predicate.S && !a.SameVar():
			haveSS = true
			x, y = a.From.Var, a.To.Var
		case a.From.Part == predicate.R && a.To.Part == predicate.R && !a.SameVar():
			haveRR = true
		default:
			return false
		}
	}
	if !haveSS || !haveRR {
		return false
	}
	// The r->r atom must be y.r -> x.r.
	for _, a := range p.Atoms {
		if a.From.Part == predicate.R && (a.From.Var != y || a.To.Var != x) {
			return false
		}
	}
	// Guards: need sender equality and receiver equality across the two
	// variables; color guards bind roles; anything else disqualifies.
	var senderEq, receiverEq bool
	for _, g := range p.Guards {
		switch g.Kind {
		case predicate.GuardProcEq:
			sameVarPair := (g.A.Var == x && g.B.Var == y) || (g.A.Var == y && g.B.Var == x)
			if !sameVarPair {
				return false
			}
			switch {
			case g.A.Part == predicate.S && g.B.Part == predicate.S:
				senderEq = true
			case g.A.Part == predicate.R && g.B.Part == predicate.R:
				receiverEq = true
			default:
				return false
			}
		case predicate.GuardColorIs:
			if g.Var == x {
				if plan.XColorSet && plan.XColor != g.Color {
					return false
				}
				plan.XColor, plan.XColorSet = g.Color, true
			} else {
				if plan.YColorSet && plan.YColor != g.Color {
					return false
				}
				plan.YColor, plan.YColorSet = g.Color, true
			}
		default:
			return false
		}
	}
	return senderEq && receiverEq
}

// channelSeq is the generated per-channel protocol: every wire carries
// its channel sequence number; a y-eligible delivery waits until every
// x-eligible message with a smaller sequence on its channel has been
// delivered. FIFO is the special case where every message plays both
// roles.
type channelSeq struct {
	plan Plan
	env  protocol.Env
	out  map[event.ProcID]*csOut // per-destination sender state
	in   map[event.ProcID]*csIn  // per-source receiver state
}

type csOut struct {
	nextSeq uint64 // next sequence on this channel
	xCount  uint64 // x-eligible messages already sent on it
}

type csIn struct {
	// xDelivered holds the sequence numbers of delivered x-eligible
	// messages.
	xDelivered map[uint64]bool
	held       []csHeld
}

type csHeld struct {
	id      event.MsgID
	seq     uint64
	xBefore uint64
	color   event.Color
}

var (
	_ protocol.Process   = (*channelSeq)(nil)
	_ protocol.Describer = (*channelSeq)(nil)
)

// Describe declares the tagged class with a synthetic name.
func (p *channelSeq) Describe() protocol.Descriptor {
	return protocol.Descriptor{Name: "synth-channel-seq", Class: protocol.Tagged}
}

// Init prepares per-channel state.
func (p *channelSeq) Init(env protocol.Env) {
	p.env = env
	p.out = make(map[event.ProcID]*csOut)
	p.in = make(map[event.ProcID]*csIn)
}

// xEligible reports whether a message can play the x role.
func (p *channelSeq) xEligible(c event.Color) bool {
	return !p.plan.XColorSet || c == p.plan.XColor
}

// yEligible reports whether a message can play the y role (and therefore
// must wait).
func (p *channelSeq) yEligible(c event.Color) bool {
	return !p.plan.YColorSet || c == p.plan.YColor
}

// OnInvoke tags (seq, xBefore) and sends immediately.
func (p *channelSeq) OnInvoke(m event.Message) {
	o := p.out[m.To]
	if o == nil {
		o = &csOut{}
		p.out[m.To] = o
	}
	tag := binary.AppendUvarint(nil, o.nextSeq)
	tag = binary.AppendUvarint(tag, o.xCount)
	o.nextSeq++
	if p.xEligible(m.Color) {
		o.xCount++
	}
	p.env.Send(protocol.Wire{
		To:    m.To,
		Kind:  protocol.UserWire,
		Msg:   m.ID,
		Color: m.Color,
		Tag:   tag,
	})
}

// OnReceive delivers unconstrained messages immediately and holds
// y-eligible ones until their x backlog is delivered.
func (p *channelSeq) OnReceive(w protocol.Wire) {
	if w.Kind != protocol.UserWire {
		return
	}
	seq, n := binary.Uvarint(w.Tag)
	if n <= 0 {
		return
	}
	xBefore, n2 := binary.Uvarint(w.Tag[n:])
	if n2 <= 0 || len(w.Tag[n+n2:]) != 0 {
		return
	}
	ib := p.in[w.From]
	if ib == nil {
		ib = &csIn{xDelivered: make(map[uint64]bool)}
		p.in[w.From] = ib
	}
	ib.held = append(ib.held, csHeld{id: w.Msg, seq: seq, xBefore: xBefore, color: w.Color})
	p.drain(ib)
}

// eligibleNow: a y-eligible message waits until every x-eligible message
// with a smaller sequence has been delivered (counted exactly).
func (p *channelSeq) eligibleNow(ib *csIn, h csHeld) bool {
	if !p.yEligible(h.color) {
		return true
	}
	var deliveredBelow uint64
	for s := range ib.xDelivered {
		if s < h.seq {
			deliveredBelow++
		}
	}
	return deliveredBelow >= h.xBefore
}

func (p *channelSeq) drain(ib *csIn) {
	for {
		progress := false
		for i := 0; i < len(ib.held); i++ {
			h := ib.held[i]
			if !p.eligibleNow(ib, h) {
				continue
			}
			ib.held = append(ib.held[:i], ib.held[i+1:]...)
			// Commit state before delivering (Deliver may reenter).
			if p.xEligible(h.color) {
				ib.xDelivered[h.seq] = true
			}
			p.env.Deliver(h.id)
			progress = true
			break
		}
		if !progress {
			return
		}
	}
}
