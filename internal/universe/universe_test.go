package universe

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"msgorder/internal/check"
	"msgorder/internal/event"
	"msgorder/internal/predicate"
	"msgorder/internal/userview"
)

func msgTable(pairs ...[2]event.ProcID) []event.Message {
	msgs := make([]event.Message, len(pairs))
	for i, p := range pairs {
		msgs[i] = event.Message{ID: event.MsgID(i), From: p[0], To: p[1]}
	}
	return msgs
}

func TestSchedulesSingleMessage(t *testing.T) {
	msgs := msgTable([2]event.ProcID{0, 1})
	n := Schedules(msgs, 2, func(r *userview.Run) bool {
		if !r.IsComplete() {
			t.Error("enumerated run must be complete")
		}
		return true
	})
	if n != 1 {
		t.Fatalf("runs = %d, want 1", n)
	}
}

func TestSchedulesSameChannelPair(t *testing.T) {
	// Two messages P0->P1: 2 send orders x 2 deliver orders.
	msgs := msgTable([2]event.ProcID{0, 1}, [2]event.ProcID{0, 1})
	n := Schedules(msgs, 2, func(*userview.Run) bool { return true })
	if n != 4 {
		t.Fatalf("runs = %d, want 4", n)
	}
}

func TestSchedulesDisjointPair(t *testing.T) {
	// Two messages on disjoint process pairs: each process sequence is a
	// single event, so there is exactly one run.
	msgs := msgTable([2]event.ProcID{0, 1}, [2]event.ProcID{2, 3})
	n := Schedules(msgs, 4, func(*userview.Run) bool { return true })
	if n != 1 {
		t.Fatalf("runs = %d, want 1", n)
	}
}

func TestSchedulesEarlyStop(t *testing.T) {
	msgs := msgTable([2]event.ProcID{0, 1}, [2]event.ProcID{0, 1})
	calls := 0
	Schedules(msgs, 2, func(*userview.Run) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}

func TestRunsCount(t *testing.T) {
	// One message over 2 processes: 4 (from,to) assignments, 1 schedule
	// each.
	if n := Runs(1, 2, func(*userview.Run) bool { return true }); n != 4 {
		t.Fatalf("Runs(1,2) = %d, want 4", n)
	}
}

func TestRunsWithColorsCount(t *testing.T) {
	n := RunsWithColors(1, 1, []event.Color{event.ColorNone, event.ColorRed},
		func(*userview.Run) bool { return true })
	// 1 (from,to) assignment x 2 colors.
	if n != 2 {
		t.Fatalf("count = %d, want 2", n)
	}
}

// TestExhaustiveLimitChain verifies X_sync ⊆ X_co ⊆ X_async over the full
// bounded universe of 3 messages on 2 processes.
func TestExhaustiveLimitChain(t *testing.T) {
	bad := 0
	Runs(3, 2, func(r *userview.Run) bool {
		if r.InSync() && !r.InCO() {
			bad++
		}
		if r.InCO() && !r.InAsync() {
			bad++
		}
		return bad == 0
	})
	if bad != 0 {
		t.Fatal("limit-set chain violated")
	}
}

// TestLemma3CausalEquivalence checks B1 ⇔ B2 ⇔ B3 (Lemma 3.2) over
// bounded universes without self-addressed messages (the paper's implicit
// model — see TestLemma3FailsWithSelfMessages), including three-process
// tables where the paper's intermediate-message argument bites.
func TestLemma3CausalEquivalence(t *testing.T) {
	b1 := predicate.MustParse("x, y : x.s -> y.r && y.r -> x.r")
	b2 := predicate.MustParse("x, y : x.s -> y.s && y.r -> x.r")
	b3 := predicate.MustParse("x, y : x.s -> y.s && y.s -> x.r")

	checkRun := func(r *userview.Run) bool {
		s1 := check.Satisfies(r, b1)
		s2 := check.Satisfies(r, b2)
		s3 := check.Satisfies(r, b3)
		if s1 != s2 || s2 != s3 {
			t.Errorf("disagreement (B1=%v B2=%v B3=%v) on %v", s1, s2, s3, r)
			return false
		}
		return true
	}
	RunsNoSelf(3, 2, checkRun)
	if t.Failed() {
		return
	}
	// Cross-process tables with 3 processes (sampled tables, all
	// schedules).
	tables := [][]event.Message{
		msgTable([2]event.ProcID{0, 1}, [2]event.ProcID{2, 0}, [2]event.ProcID{0, 1}),
		msgTable([2]event.ProcID{0, 1}, [2]event.ProcID{1, 2}, [2]event.ProcID{2, 0}),
		msgTable([2]event.ProcID{0, 2}, [2]event.ProcID{0, 1}, [2]event.ProcID{1, 2}),
	}
	for _, msgs := range tables {
		Schedules(msgs, 3, checkRun)
	}
}

// TestLemma3FailsWithSelfMessages documents a reproduction finding: with
// self-addressed messages (From == To) the Lemma 3.2 equivalence breaks.
// Two self-messages at P0 interleaved as m0.s m1.s m0.r m1.r satisfy
// B1 (m1.s ▷ m0.r ∧ m0.r ▷ m1.r with x=m1, y=m0) and B3, but not B2 —
// the run is causally ordered yet outside X_B1. The paper's case analysis
// ("x.r and y.s are in different processes") implicitly excludes this.
func TestLemma3FailsWithSelfMessages(t *testing.T) {
	b1 := predicate.MustParse("x, y : x.s -> y.r && y.r -> x.r")
	b2 := predicate.MustParse("x, y : x.s -> y.s && y.r -> x.r")
	msgs := []event.Message{
		{ID: 0, From: 0, To: 0},
		{ID: 1, From: 0, To: 0},
	}
	r, err := userview.New(msgs, [][]event.Event{{
		event.E(0, event.Send),
		event.E(1, event.Send),
		event.E(0, event.Deliver),
		event.E(1, event.Deliver),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !check.Satisfies(r, b2) {
		t.Error("the run is causally ordered (B2 unmatched)")
	}
	if check.Satisfies(r, b1) {
		t.Error("expected B1 to match via x=m1, y=m0 — counterexample vanished")
	}
}

// TestB1StillGeneralWithSelfMessages pins down the other half of the
// self-message finding: although X_co ⊄ X_B1 in the self-message model
// (so tagging is insufficient there), X_sync ⊆ X_B1 still holds — no
// logically synchronous run matches B1 — so B1 remains implementable
// with control messages.
func TestB1StillGeneralWithSelfMessages(t *testing.T) {
	b1 := predicate.MustParse("x, y : x.s -> y.r && y.r -> x.r")
	Runs(3, 2, func(r *userview.Run) bool {
		if r.InSync() && !check.Satisfies(r, b1) {
			t.Errorf("synchronous run matches B1: %v", r)
			return false
		}
		return true
	})
}

// TestLemma3AsyncUnsatisfiable: the Lemma 3.3 predicates can never be
// satisfied by any run.
func TestLemma3AsyncUnsatisfiable(t *testing.T) {
	preds := []*predicate.Predicate{
		predicate.MustParse("x, y : x.s -> y.s && y.s -> x.s"),
		predicate.MustParse("x, y : x.s -> y.s && y.r -> x.s"),
		predicate.MustParse("x, y : x.r -> y.s && y.s -> x.r"),
		predicate.MustParse("x, y : x.r -> y.r && y.r -> x.s"),
		predicate.MustParse("x, y : x.r -> y.r && y.r -> x.r"),
	}
	Runs(3, 2, func(r *userview.Run) bool {
		for _, p := range preds {
			if _, found := check.FindViolation(r, p); found {
				t.Errorf("unsatisfiable predicate %v matched run %v", p, r)
				return false
			}
		}
		return true
	})
}

func TestSyncWitnessAcyclicPredicate(t *testing.T) {
	// "receive second before first" has an acyclic graph: Theorem 2 gives
	// a logically synchronous run satisfying it.
	p := predicate.MustParse("x, y : x.s -> y.s && x.r -> y.r")
	r, err := SyncWitness(p)
	if err != nil {
		t.Fatalf("SyncWitness: %v", err)
	}
	if !r.InSync() {
		t.Error("witness must be logically synchronous")
	}
	if _, sat := check.FindViolation(r, p); !sat {
		t.Error("witness must satisfy the predicate")
	}
}

func TestSyncWitnessFailsOnCyclicGraph(t *testing.T) {
	// Causal ordering is implementable: no sync run satisfies it.
	p := predicate.MustParse("x, y : x.s -> y.s && y.r -> x.r")
	if _, err := SyncWitness(p); !errors.Is(err, ErrNoWitness) {
		t.Fatalf("err = %v, want ErrNoWitness", err)
	}
}

func TestCOWitnessCrown(t *testing.T) {
	// The 2-crown (logically synchronous spec) admits a causally ordered
	// violating run: control messages are necessary (Theorem 4.2).
	p := predicate.MustParse("x1, x2 : x1.s -> x2.r && x2.s -> x1.r")
	r, err := COWitness(p)
	if err != nil {
		t.Fatalf("COWitness: %v", err)
	}
	if !r.InCO() {
		t.Error("witness must be causally ordered")
	}
	if _, sat := check.FindViolation(r, p); !sat {
		t.Error("witness must satisfy the crown")
	}
	if r.InSync() {
		t.Error("a run satisfying the crown cannot be logically synchronous")
	}
}

func TestCOWitnessFailsOnCausalPredicate(t *testing.T) {
	p := predicate.MustParse("x, y : x.s -> y.s && y.r -> x.r")
	if _, err := COWitness(p); !errors.Is(err, ErrNoWitness) {
		t.Fatalf("err = %v, want ErrNoWitness", err)
	}
}

func TestAsyncWitnessCausalPredicate(t *testing.T) {
	p := predicate.MustParse("x, y : x.s -> y.s && y.r -> x.r")
	r, err := AsyncWitness(p)
	if err != nil {
		t.Fatalf("AsyncWitness: %v", err)
	}
	if !r.InAsync() {
		t.Error("witness must be a valid complete run")
	}
	if r.InCO() {
		t.Error("witness satisfying B2 cannot be causally ordered")
	}
}

func TestAsyncWitnessUnsatisfiable(t *testing.T) {
	p := predicate.MustParse("x, y : x.s -> y.s && y.s -> x.s")
	if _, err := AsyncWitness(p); !errors.Is(err, ErrUnsatisfiable) {
		t.Fatalf("err = %v, want ErrUnsatisfiable", err)
	}
}

func TestWitnessHonorsColorGuard(t *testing.T) {
	p := predicate.MustParse("x, y : color(x) == red : x.s -> y.r && y.s -> x.r")
	r, err := COWitness(p)
	if err != nil {
		t.Fatalf("COWitness: %v", err)
	}
	if r.Message(0).Color != event.ColorRed {
		t.Error("witness must color the handoff message red")
	}
}

func TestWitnessGuardConflict(t *testing.T) {
	// The atom co-locates x.s and y.s; the guard forbids it.
	p := predicate.MustParse("x, y : process(x.s) != process(y.s) : x.s -> y.s")
	if _, err := AsyncWitness(p); !errors.Is(err, ErrGuardsConflict) {
		t.Fatalf("err = %v, want ErrGuardsConflict", err)
	}
}

func TestRandomRunValid(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	msgs := RandomMessages(rng, 5, 3, []event.Color{event.ColorNone, event.ColorRed})
	r := RandomRun(rng, msgs, 3)
	if !r.IsComplete() {
		t.Error("random run must be complete")
	}
	if r.NumMessages() != 5 {
		t.Errorf("messages = %d", r.NumMessages())
	}
}

// TestQuickAsyncWitnessSound: whenever AsyncWitness succeeds on a random
// predicate, the run it returns is complete and satisfies the predicate.
func TestQuickAsyncWitnessSound(t *testing.T) {
	parts := []predicate.Part{predicate.S, predicate.R}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv := 2 + rng.Intn(3)
		p := &predicate.Predicate{}
		for i := 0; i < nv; i++ {
			p.Vars = append(p.Vars, string(rune('a'+i)))
		}
		na := 1 + rng.Intn(5)
		for i := 0; i < na; i++ {
			a, b := rng.Intn(nv), rng.Intn(nv)
			for b == a {
				b = rng.Intn(nv)
			}
			p.Atoms = append(p.Atoms, predicate.Atom{
				From: predicate.EventRef{Var: a, Part: parts[rng.Intn(2)]},
				To:   predicate.EventRef{Var: b, Part: parts[rng.Intn(2)]},
			})
		}
		r, err := AsyncWitness(p)
		if err != nil {
			return true // unsatisfiable or no realization found: fine
		}
		if !r.IsComplete() {
			return false
		}
		_, sat := check.FindViolation(r, p)
		return sat
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
