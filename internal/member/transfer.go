package member

import (
	"errors"
	"fmt"

	"msgorder/internal/crash"
	"msgorder/internal/event"
	"msgorder/internal/protocol"
)

// Transfer errors.
var (
	// ErrReplayDiverged reports a rebuilt instance emitting different
	// outputs than the journaled incarnation — the state transfer is
	// not byte-identical and must not go live.
	ErrReplayDiverged = errors.New("member: transfer replay diverged from journal")
	// ErrNoSnapshotter reports a checkpointed transfer for a protocol
	// that cannot restore snapshots.
	ErrNoSnapshotter = errors.New("member: checkpoint present but protocol has no Snapshotter")
)

// Checkpoint is one process's transferable ordering state at an epoch
// boundary: the latest WAL checkpoint blob (opaque — the runtime that
// wrote it decodes it) plus the journal suffix since. A joiner
// materializes it into a fresh WAL and durable-boots from that, which
// restores the snapshot, replays the suffix with output verification,
// and continues the departed incarnation exactly.
type Checkpoint struct {
	// Epoch is the membership epoch the state was captured at.
	Epoch uint64
	// Proc is the process slot the state belongs to.
	Proc event.ProcID
	// Snapshot is the WAL checkpoint blob (nil if never checkpointed).
	Snapshot []byte
	// Suffix is the journal since the checkpoint, in order.
	Suffix []crash.Entry
}

// Capture reads a process's transferable state out of its WAL at the
// given epoch boundary. The WAL must be quiesced (no concurrent
// appends): capture happens after the departing incarnation stopped.
func Capture(epoch uint64, proc event.ProcID, w *crash.WAL) Checkpoint {
	snap, entries := w.Replay()
	suffix := make([]crash.Entry, len(entries))
	copy(suffix, entries)
	return Checkpoint{Epoch: epoch, Proc: proc, Snapshot: snap, Suffix: suffix}
}

// Materialize writes the checkpoint into a fresh file WAL at path, in
// the exact shape a durable boot expects: the snapshot as the WAL's
// checkpoint record, then the suffix entries. The path must not name
// an existing WAL with state of its own.
func (c Checkpoint) Materialize(path string) error {
	w, err := crash.OpenFileWAL(path)
	if err != nil {
		return fmt.Errorf("member: materialize: %w", err)
	}
	if c.Snapshot != nil {
		if err := w.Checkpoint(c.Snapshot); err != nil {
			w.Close()
			return fmt.Errorf("member: materialize checkpoint: %w", err)
		}
	}
	for _, e := range c.Suffix {
		if err := w.Append(e); err != nil {
			w.Close()
			return fmt.Errorf("member: materialize append: %w", err)
		}
	}
	if err := w.Close(); err != nil {
		return fmt.Errorf("member: materialize close: %w", err)
	}
	return nil
}

// replayEnv is the effect-suppressing protocol environment used while
// rebuilding a transferred instance: outputs are collected for
// divergence verification instead of being executed.
type replayEnv struct {
	self  event.ProcID
	procs int
	got   []crash.Entry
}

func (e *replayEnv) Self() event.ProcID { return e.self }
func (e *replayEnv) NumProcs() int      { return e.procs }
func (e *replayEnv) Send(w protocol.Wire) {
	w.From = e.self
	e.got = append(e.got, crash.Entry{Kind: crash.EntrySend, Wire: w})
}
func (e *replayEnv) Deliver(id event.MsgID) {
	e.got = append(e.got, crash.Entry{Kind: crash.EntryDeliver, ID: id})
}

// Rebuild reconstructs a live protocol instance from the checkpoint:
// restore the snapshot (which must be a raw protocol snapshot — the
// sim-runtime WAL shape; the socket runtime's composite checkpoints
// are rebuilt by netmesh's own durable boot via Materialize), then
// replay the suffix inputs with effects suppressed, verifying each
// input's outputs against the journaled ones. Returns the instance and
// the number of replayed inputs; the instance's state is byte-identical
// to the departed incarnation's (guaranteed by Snapshotter determinism
// plus the output verification).
func (c Checkpoint) Rebuild(maker protocol.Maker, procs int) (protocol.Process, int, error) {
	inst := maker()
	env := &replayEnv{self: c.Proc, procs: procs}
	inst.Init(env)
	if c.Snapshot != nil {
		s, ok := inst.(protocol.Snapshotter)
		if !ok {
			return nil, 0, ErrNoSnapshotter
		}
		if err := s.Restore(c.Snapshot); err != nil {
			return nil, 0, fmt.Errorf("member: rebuild restore: %w", err)
		}
	}
	var outs []crash.Entry
	for _, en := range c.Suffix {
		if !en.Input() {
			outs = append(outs, en)
		}
	}
	oi, replayed := 0, 0
	for _, en := range c.Suffix {
		if !en.Input() {
			continue
		}
		switch en.Kind {
		case crash.EntryInvoke:
			inst.OnInvoke(en.Msg)
		case crash.EntryBroadcast:
			if b, ok := inst.(protocol.Broadcaster); ok {
				b.OnBroadcast(en.Msgs)
			} else {
				for _, m := range en.Msgs {
					inst.OnInvoke(m)
				}
			}
		case crash.EntryReceive:
			inst.OnReceive(en.Wire)
		}
		replayed++
		for _, g := range env.got {
			if oi >= len(outs) || !crash.SameOutput(outs[oi], g) {
				return nil, 0, fmt.Errorf("%w: P%d at input %d (%s)", ErrReplayDiverged, c.Proc, replayed, en.Kind)
			}
			oi++
		}
		env.got = env.got[:0]
	}
	if oi != len(outs) {
		return nil, 0, fmt.Errorf("%w: P%d re-emitted %d of %d journaled outputs", ErrReplayDiverged, c.Proc, oi, len(outs))
	}
	return inst, replayed, nil
}

// UserEvents projects a journal suffix onto the paper's user view:
// EntrySend of a user wire becomes the send event x.s, EntryDeliver
// becomes the delivery event x.r, in journal order. Control wires and
// handler inputs are invisible to the user, exactly as in the paper's
// h|s,r projection.
func UserEvents(entries []crash.Entry) []event.Event {
	var out []event.Event
	for _, e := range entries {
		switch e.Kind {
		case crash.EntrySend:
			if e.Wire.Kind == protocol.UserWire {
				out = append(out, event.E(e.Wire.Msg, event.Send))
			}
		case crash.EntryDeliver:
			out = append(out, event.E(e.ID, event.Deliver))
		}
	}
	return out
}
