package member

import (
	"sync"
	"time"

	"msgorder/internal/crash"
	"msgorder/internal/event"
)

// EvictorConfig tunes the suspicion-to-eviction policy.
type EvictorConfig struct {
	// Interval is how often the evictor polls the detector's suspect
	// set (default: the detector's heartbeat interval).
	Interval time.Duration
	// Grace is how long a suspicion must persist uninterrupted before
	// the process is evicted (default 4×Interval). The grace period
	// absorbs the detector's false suspicions — a scheduler-starved
	// process whose heartbeat resumes within Grace is never evicted.
	Grace time.Duration
}

func (c EvictorConfig) withDefaults(d crash.DetectorConfig) EvictorConfig {
	if c.Interval <= 0 {
		c.Interval = d.Interval
	}
	if c.Grace <= 0 {
		c.Grace = 4 * c.Interval
	}
	return c
}

// EvictorCounters tallies the evictor's decisions.
type EvictorCounters struct {
	// Evictions counts processes removed from the view.
	Evictions int
	// Reprieves counts suspicions that cleared within the grace period.
	Reprieves int
}

// Evictor closes the loop the observational Detector deliberately
// leaves open: it watches a heartbeat detector's suspect set and,
// when a suspicion persists past a grace period, administratively
// evicts the process from the membership view (Tracker.Evict). Safe
// for concurrent use; Close must be called to stop its poll loop.
type Evictor struct {
	tracker  *Tracker
	detector *crash.Detector
	cfg      EvictorConfig

	mu      sync.Mutex
	since   map[event.ProcID]time.Time
	evicted []event.ProcID
	counts  EvictorCounters

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewEvictor starts an evictor bridging the detector's suspicions into
// the tracker's view. Close must be called to stop it.
func NewEvictor(t *Tracker, d *crash.Detector, cfg EvictorConfig) *Evictor {
	e := &Evictor{
		tracker:  t,
		detector: d,
		cfg:      cfg.withDefaults(d.Config()),
		since:    make(map[event.ProcID]time.Time),
		stop:     make(chan struct{}),
	}
	e.wg.Add(1)
	go e.loop()
	return e
}

// Evicted returns the processes this evictor removed, in eviction
// order.
func (e *Evictor) Evicted() []event.ProcID {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]event.ProcID, len(e.evicted))
	copy(out, e.evicted)
	return out
}

// Counters returns a snapshot of the decision tallies.
func (e *Evictor) Counters() EvictorCounters {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.counts
}

// Close stops the poll loop and waits for it to exit.
func (e *Evictor) Close() {
	e.stopOnce.Do(func() { close(e.stop) })
	e.wg.Wait()
}

// loop polls the suspect set and applies the grace policy.
func (e *Evictor) loop() {
	defer e.wg.Done()
	t := time.NewTicker(e.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-e.stop:
			return
		case now := <-t.C:
			e.scan(now)
		}
	}
}

// scan advances the grace clocks and evicts overdue suspects.
func (e *Evictor) scan(now time.Time) {
	suspects := e.detector.Suspects()
	cur := make(map[event.ProcID]bool, len(suspects))
	for _, p := range suspects {
		cur[p] = true
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for p := range e.since {
		if !cur[p] {
			delete(e.since, p)
			e.counts.Reprieves++
		}
	}
	for _, p := range suspects {
		if !e.tracker.View().Contains(p) {
			continue
		}
		first, ok := e.since[p]
		if !ok {
			e.since[p] = now
			continue
		}
		if now.Sub(first) >= e.cfg.Grace {
			if _, err := e.tracker.Evict(p); err == nil {
				e.evicted = append(e.evicted, p)
				e.counts.Evictions++
			}
			delete(e.since, p)
		}
	}
}
