package member_test

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"msgorder/internal/crash"
	"msgorder/internal/event"
	"msgorder/internal/member"
	"msgorder/internal/protocol"
	"msgorder/internal/protocols/registry"
)

func TestTrackerTransitions(t *testing.T) {
	tr := member.NewTracker(4, []event.ProcID{0, 1, 2})
	if got := tr.Epoch(); got != 0 {
		t.Fatalf("initial epoch = %d, want 0", got)
	}
	v := tr.View()
	if v.Count() != 3 || !v.Contains(0) || v.Contains(3) {
		t.Fatalf("initial view wrong: %+v", v)
	}

	if _, err := tr.Join(3); err != nil {
		t.Fatalf("join 3: %v", err)
	}
	if _, err := tr.Join(3); !errors.Is(err, member.ErrAlreadyMember) {
		t.Fatalf("double join error = %v, want ErrAlreadyMember", err)
	}
	if _, err := tr.Leave(1); err != nil {
		t.Fatalf("leave 1: %v", err)
	}
	if _, err := tr.Evict(1); !errors.Is(err, member.ErrNotMember) {
		t.Fatalf("evict absent error = %v, want ErrNotMember", err)
	}
	if _, err := tr.Evict(2); err != nil {
		t.Fatalf("evict 2: %v", err)
	}

	if got := tr.Epoch(); got != 3 {
		t.Fatalf("epoch after 3 transitions = %d, want 3", got)
	}
	log := tr.Log()
	want := []member.Transition{
		{Epoch: 1, Op: member.OpJoin, Proc: 3},
		{Epoch: 2, Op: member.OpLeave, Proc: 1},
		{Epoch: 3, Op: member.OpEvict, Proc: 2},
	}
	if len(log) != len(want) {
		t.Fatalf("log length = %d, want %d", len(log), len(want))
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log[%d] = %+v, want %+v", i, log[i], want[i])
		}
	}

	if err := tr.CheckEpoch(3); err != nil {
		t.Fatalf("CheckEpoch(current): %v", err)
	}
	err := tr.CheckEpoch(1)
	var stale *member.StaleEpochError
	if !errors.As(err, &stale) || stale.Have != 1 || stale.Want != 3 {
		t.Fatalf("CheckEpoch(1) = %v, want StaleEpochError{1,3}", err)
	}
}

func TestViewEncodeDecode(t *testing.T) {
	tr := member.NewTracker(5, []event.ProcID{0, 2, 4})
	tr.Join(1)
	v := tr.View()
	b := v.Encode()
	if !bytes.Equal(b, tr.View().Encode()) {
		t.Fatal("Encode is not deterministic")
	}
	got, err := member.DecodeView(b)
	if err != nil {
		t.Fatalf("DecodeView: %v", err)
	}
	if got.Epoch != v.Epoch || len(got.Present) != len(v.Present) {
		t.Fatalf("round-trip mismatch: %+v vs %+v", got, v)
	}
	for i := range v.Present {
		if got.Present[i] != v.Present[i] {
			t.Fatalf("Present[%d] differs after round-trip", i)
		}
	}
	if _, err := member.DecodeView(b[:2]); err == nil {
		t.Fatal("DecodeView accepted truncated bytes")
	}
}

// journalHarness is a deterministic n-process mini-harness that runs a
// protocol with a FIFO wire queue and journals one target process's
// inputs and outputs into a WAL, exactly as the runtimes do.
type journalHarness struct {
	insts  []protocol.Process
	envs   []*harnessEnv
	queue  []protocol.Wire
	target event.ProcID
	wal    *crash.WAL
	events []event.Event // target's user events, in order
}

type harnessEnv struct {
	h     *journalHarness
	self  event.ProcID
	procs int
}

func (e *harnessEnv) Self() event.ProcID { return e.self }
func (e *harnessEnv) NumProcs() int      { return e.procs }
func (e *harnessEnv) Send(w protocol.Wire) {
	w.From = e.self
	if e.self == e.h.target {
		e.h.wal.Append(crash.Entry{Kind: crash.EntrySend, Wire: w})
		if w.Kind == protocol.UserWire {
			e.h.events = append(e.h.events, event.E(w.Msg, event.Send))
		}
	}
	e.h.queue = append(e.h.queue, w)
}
func (e *harnessEnv) Deliver(id event.MsgID) {
	if e.self == e.h.target {
		e.h.wal.Append(crash.Entry{Kind: crash.EntryDeliver, ID: id})
		e.h.events = append(e.h.events, event.E(id, event.Deliver))
	}
}

func newJournalHarness(t *testing.T, maker protocol.Maker, procs int, target event.ProcID, wal *crash.WAL) *journalHarness {
	t.Helper()
	h := &journalHarness{target: target, wal: wal}
	for p := 0; p < procs; p++ {
		inst := maker()
		env := &harnessEnv{h: h, self: event.ProcID(p), procs: procs}
		inst.Init(env)
		h.insts = append(h.insts, inst)
		h.envs = append(h.envs, env)
	}
	return h
}

func (h *journalHarness) invoke(m event.Message) {
	if m.From == h.target {
		h.wal.Append(crash.Entry{Kind: crash.EntryInvoke, Msg: m})
	}
	h.insts[m.From].OnInvoke(m)
	h.drain()
}

func (h *journalHarness) drain() {
	for len(h.queue) > 0 {
		w := h.queue[0]
		h.queue = h.queue[1:]
		if w.To == h.target {
			h.wal.Append(crash.Entry{Kind: crash.EntryReceive, Wire: w})
		}
		h.insts[w.To].OnReceive(w)
	}
}

// TestTransferByteIdentical is the core transfer guarantee: capture a
// process's WAL mid-run (checkpoint + suffix), materialize it into a
// fresh WAL file, capture that, rebuild an instance from it, and the
// rebuilt instance's snapshot must be byte-identical to the live one's.
func TestTransferByteIdentical(t *testing.T) {
	for _, name := range []string{"fifo", "causal-rst", "sync"} {
		t.Run(name, func(t *testing.T) {
			entry, ok := registry.ByName(name)
			if !ok {
				t.Fatalf("protocol %q not in registry", name)
			}
			const procs = 3
			const target = event.ProcID(1)
			dir := t.TempDir()
			walPath := filepath.Join(dir, "orig.wal")
			wal, err := crash.OpenFileWAL(walPath)
			if err != nil {
				t.Fatalf("open WAL: %v", err)
			}
			h := newJournalHarness(t, entry.Maker, procs, target, wal)

			rec := protocol.NewRecorder(procs)
			var msgs []event.Message
			for i := 0; i < 12; i++ {
				m := rec.NewMessage(event.ProcID(i%procs), event.ProcID((i+1)%procs), event.ColorNone)
				msgs = append(msgs, m)
			}
			for i, m := range msgs {
				h.invoke(m)
				if i == 5 {
					snap := h.insts[target].(protocol.Snapshotter).Snapshot()
					if err := wal.Checkpoint(snap); err != nil {
						t.Fatalf("checkpoint: %v", err)
					}
				}
			}
			liveSnap := h.insts[target].(protocol.Snapshotter).Snapshot()
			if err := wal.Close(); err != nil {
				t.Fatalf("close WAL: %v", err)
			}

			// Capture from the departed incarnation's WAL.
			reopened, err := crash.OpenFileWAL(walPath)
			if err != nil {
				t.Fatalf("reopen WAL: %v", err)
			}
			cp := member.Capture(7, target, reopened)
			reopened.Close()
			if cp.Epoch != 7 || cp.Proc != target || cp.Snapshot == nil {
				t.Fatalf("capture wrong: epoch=%d proc=%d snap=%v", cp.Epoch, cp.Proc, cp.Snapshot != nil)
			}

			// Materialize for a joiner and capture the materialized WAL.
			joinPath := filepath.Join(dir, "join.wal")
			if err := cp.Materialize(joinPath); err != nil {
				t.Fatalf("materialize: %v", err)
			}
			jw, err := crash.OpenFileWAL(joinPath)
			if err != nil {
				t.Fatalf("open joiner WAL: %v", err)
			}
			jcp := member.Capture(8, target, jw)
			jw.Close()
			if len(jcp.Suffix) != len(cp.Suffix) {
				t.Fatalf("materialized suffix length %d, want %d", len(jcp.Suffix), len(cp.Suffix))
			}

			inst, replayed, err := jcp.Rebuild(entry.Maker, procs)
			if err != nil {
				t.Fatalf("rebuild: %v", err)
			}
			if replayed == 0 {
				t.Fatal("rebuild replayed no inputs")
			}
			got := inst.(protocol.Snapshotter).Snapshot()
			if !bytes.Equal(got, liveSnap) {
				t.Fatalf("rebuilt snapshot differs from live instance (%d vs %d bytes)", len(got), len(liveSnap))
			}
		})
	}
}

// TestRebuildDetectsDivergence corrupts a journaled output and checks
// the rebuild refuses to go live.
func TestRebuildDetectsDivergence(t *testing.T) {
	entry, _ := registry.ByName("fifo")
	const procs = 3
	const target = event.ProcID(0)
	wal := crash.NewWAL()
	h := newJournalHarness(t, entry.Maker, procs, target, wal)
	rec := protocol.NewRecorder(procs)
	for i := 0; i < 6; i++ {
		h.invoke(rec.NewMessage(target, event.ProcID(1+(i%2)), event.ColorNone))
	}
	cp := member.Capture(1, target, wal)
	for i := range cp.Suffix {
		if cp.Suffix[i].Kind == crash.EntrySend {
			cp.Suffix[i].Wire.To++ // corrupt a journaled output
			break
		}
	}
	if _, _, err := cp.Rebuild(entry.Maker, procs); !errors.Is(err, member.ErrReplayDiverged) {
		t.Fatalf("rebuild error = %v, want ErrReplayDiverged", err)
	}
}

// TestUserEventsProjection checks the journal-to-user-view projection
// matches the events the live run recorded.
func TestUserEventsProjection(t *testing.T) {
	entry, _ := registry.ByName("causal-rst")
	const procs = 3
	const target = event.ProcID(2)
	wal := crash.NewWAL()
	h := newJournalHarness(t, entry.Maker, procs, target, wal)
	rec := protocol.NewRecorder(procs)
	for i := 0; i < 9; i++ {
		h.invoke(rec.NewMessage(event.ProcID(i%procs), event.ProcID((i+2)%procs), event.ColorNone))
	}
	cp := member.Capture(1, target, wal)
	got := member.UserEvents(cp.Suffix)
	if len(got) != len(h.events) {
		t.Fatalf("projected %d user events, live run recorded %d", len(got), len(h.events))
	}
	for i := range got {
		if got[i] != h.events[i] {
			t.Fatalf("event %d: projected %+v, live %+v", i, got[i], h.events[i])
		}
	}
}

// TestEvictorEvictsPersistentSuspect stops beating one process and
// checks the evictor removes exactly it after the grace period, while
// a briefly suspected process is reprieved.
func TestEvictorEvictsPersistentSuspect(t *testing.T) {
	const procs = 3
	det := crash.NewDetector(procs, crash.DetectorConfig{
		Interval: time.Millisecond, Timeout: 5 * time.Millisecond}, nil)
	defer det.Close()
	tr := member.NewTracker(procs, []event.ProcID{0, 1, 2})
	ev := member.NewEvictor(tr, det, member.EvictorConfig{
		Interval: time.Millisecond, Grace: 10 * time.Millisecond})
	defer ev.Close()

	// Beat 0 and 1 continuously; 2 goes silent.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				det.Beat(0)
				det.Beat(1)
			}
		}
	}()

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if !tr.View().Contains(2) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-done

	v := tr.View()
	if v.Contains(2) {
		t.Fatal("process 2 was never evicted")
	}
	if !v.Contains(0) || !v.Contains(1) {
		t.Fatalf("live processes evicted: view %+v", v)
	}
	if got := ev.Evicted(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Evicted() = %v, want [2]", got)
	}
	if tr.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1", tr.Epoch())
	}
}
