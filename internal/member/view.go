// Package member adds dynamic membership to the harness: an
// epoch-numbered view of which processes are present, protocol-correct
// state transfer so a joiner can continue another incarnation's
// ordering state byte-for-byte (built on protocol.Snapshotter plus the
// internal/crash WAL), and an Evictor that turns a heartbeat
// detector's persistent suspicions into administrative evictions.
//
// The paper's run model fixes the process set; membership churn is the
// production reality layered above it. The design keeps the paper's
// model intact per epoch: every view change bumps the epoch number,
// and within one epoch the process set is fixed, so each epoch is a
// well-formed run fragment. A joiner installs a snapshot at an epoch
// boundary and replays the journaled suffix, which the transfer
// machinery verifies reproduces the journaled outputs exactly.
package member

import (
	"errors"
	"fmt"
	"sync"

	"msgorder/internal/event"
	"msgorder/internal/snapio"
)

// Membership errors.
var (
	// ErrNotMember reports an operation on a process absent from the
	// current view.
	ErrNotMember = errors.New("member: process not in view")
	// ErrAlreadyMember reports a join for a process already present.
	ErrAlreadyMember = errors.New("member: process already in view")
)

// StaleEpochError reports an operation tagged with an epoch older than
// the view's current one — the caller acted on a membership view that
// has since changed.
type StaleEpochError struct {
	// Have is the epoch the caller presented.
	Have uint64
	// Want is the view's current epoch.
	Want uint64
}

// Error formats the stale-epoch report.
func (e *StaleEpochError) Error() string {
	return fmt.Sprintf("member: stale epoch %d (current %d)", e.Have, e.Want)
}

// Op is a membership transition kind.
type Op uint8

// Membership transition kinds.
const (
	// OpJoin adds a process to the view.
	OpJoin Op = iota + 1
	// OpLeave removes a process voluntarily (clean departure).
	OpLeave
	// OpEvict removes a process administratively (suspected dead).
	OpEvict
)

// String returns the op name.
func (o Op) String() string {
	switch o {
	case OpJoin:
		return "join"
	case OpLeave:
		return "leave"
	case OpEvict:
		return "evict"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// View is one epoch's membership: Present[p] reports whether process p
// is in the group. The slice is sized to the fixed capacity (the
// maximum process set the harness was built for); epochs number view
// changes starting from 0 for the initial view.
type View struct {
	// Epoch numbers this view; every transition increments it.
	Epoch uint64
	// Present flags each process slot's membership.
	Present []bool
}

// Members returns the present processes in ascending order.
func (v View) Members() []event.ProcID {
	out := make([]event.ProcID, 0, len(v.Present))
	for p, in := range v.Present {
		if in {
			out = append(out, event.ProcID(p))
		}
	}
	return out
}

// Contains reports whether p is in the view.
func (v View) Contains(p event.ProcID) bool {
	return int(p) >= 0 && int(p) < len(v.Present) && v.Present[p]
}

// Count returns the number of present processes.
func (v View) Count() int {
	n := 0
	for _, in := range v.Present {
		if in {
			n++
		}
	}
	return n
}

// clone deep-copies the view.
func (v View) clone() View {
	p := make([]bool, len(v.Present))
	copy(p, v.Present)
	return View{Epoch: v.Epoch, Present: p}
}

// Encode returns a deterministic encoding of the view (equal views
// always encode to equal bytes).
func (v View) Encode() []byte {
	var w snapio.Writer
	w.U64(v.Epoch)
	w.Int(len(v.Present))
	for _, in := range v.Present {
		w.Bool(in)
	}
	return w.Out()
}

// DecodeView rebuilds a view from Encode's bytes.
func DecodeView(b []byte) (View, error) {
	r := snapio.NewReader(b)
	v := View{Epoch: r.U64()}
	n := r.Int()
	if n > 0 && r.Err() == nil {
		v.Present = make([]bool, n)
		for i := range v.Present {
			v.Present[i] = r.Bool()
		}
	}
	if err := r.Close(); err != nil {
		return View{}, fmt.Errorf("member: corrupt view encoding: %w", err)
	}
	return v, nil
}

// Transition is one recorded view change.
type Transition struct {
	// Epoch is the epoch the transition created.
	Epoch uint64
	// Op is the transition kind.
	Op Op
	// Proc is the process that joined or departed.
	Proc event.ProcID
}

// Tracker is the authoritative membership state for one group: the
// current view plus the full transition log. Safe for concurrent use.
type Tracker struct {
	mu   sync.Mutex
	view View
	log  []Transition
}

// NewTracker builds a tracker over capacity process slots with the
// given initial members at epoch 0.
func NewTracker(capacity int, initial []event.ProcID) *Tracker {
	v := View{Present: make([]bool, capacity)}
	for _, p := range initial {
		v.Present[p] = true
	}
	return &Tracker{view: v}
}

// View returns a copy of the current view.
func (t *Tracker) View() View {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.view.clone()
}

// Epoch returns the current epoch number.
func (t *Tracker) Epoch() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.view.Epoch
}

// Log returns a copy of the transition log.
func (t *Tracker) Log() []Transition {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Transition, len(t.log))
	copy(out, t.log)
	return out
}

// CheckEpoch validates a caller-presented epoch against the current
// one, returning a *StaleEpochError on mismatch.
func (t *Tracker) CheckEpoch(epoch uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if epoch != t.view.Epoch {
		return &StaleEpochError{Have: epoch, Want: t.view.Epoch}
	}
	return nil
}

// Join adds p to the view, bumping the epoch. Returns the new view.
func (t *Tracker) Join(p event.ProcID) (View, error) {
	return t.apply(OpJoin, p)
}

// Leave removes p from the view voluntarily, bumping the epoch.
// Returns the new view.
func (t *Tracker) Leave(p event.ProcID) (View, error) {
	return t.apply(OpLeave, p)
}

// Evict removes p from the view administratively (the failure-detector
// path), bumping the epoch. Returns the new view.
func (t *Tracker) Evict(p event.ProcID) (View, error) {
	return t.apply(OpEvict, p)
}

// apply performs one transition under the lock.
func (t *Tracker) apply(op Op, p event.ProcID) (View, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(p) < 0 || int(p) >= len(t.view.Present) {
		return View{}, fmt.Errorf("%w: process %d out of range", ErrNotMember, p)
	}
	switch op {
	case OpJoin:
		if t.view.Present[p] {
			return View{}, fmt.Errorf("%w: process %d", ErrAlreadyMember, p)
		}
		t.view.Present[p] = true
	case OpLeave, OpEvict:
		if !t.view.Present[p] {
			return View{}, fmt.Errorf("%w: process %d", ErrNotMember, p)
		}
		t.view.Present[p] = false
	}
	t.view.Epoch++
	t.log = append(t.log, Transition{Epoch: t.view.Epoch, Op: op, Proc: p})
	return t.view.clone(), nil
}
