package classify

import (
	"errors"
	"strings"
	"testing"

	"msgorder/internal/predicate"
)

func classOf(t *testing.T, src string) *Result {
	t.Helper()
	res, err := Classify(predicate.MustParse(src))
	if err != nil {
		t.Fatalf("Classify(%q): %v", src, err)
	}
	return res
}

func TestPaperCatalogClasses(t *testing.T) {
	cases := []struct {
		name, src string
		want      Class
	}{
		{
			"causal ordering (B2)",
			"x, y : x.s -> y.s && y.r -> x.r",
			Tagged,
		},
		{
			"causal ordering (B1)",
			"x, y : x.s -> y.r && y.r -> x.r",
			Tagged,
		},
		{
			"causal ordering (B3)",
			"x, y : x.s -> y.s && y.s -> x.r",
			Tagged,
		},
		{
			"FIFO",
			"x, y : process(x.s) == process(y.s) && process(x.r) == process(y.r) : x.s -> y.s && y.r -> x.r",
			Tagged,
		},
		{
			"logically synchronous (2-crown)",
			"x1, x2 : x1.s -> x2.r && x2.s -> x1.r",
			General,
		},
		{
			"logically synchronous (3-crown)",
			"x1, x2, x3 : x1.s -> x2.r && x2.s -> x3.r && x3.s -> x1.r",
			General,
		},
		{
			"k-weaker causal (k=1)",
			"x1, x2, x3 : x1.s -> x2.s && x2.s -> x3.s && x3.r -> x1.r",
			Tagged,
		},
		{
			"local forward flush",
			"x, y : process(x.s) == process(y.s) && process(x.r) == process(y.r) && color(y) == red : x.s -> y.s && y.r -> x.r",
			Tagged,
		},
		{
			"global forward flush",
			"x, y : color(y) == red : x.s -> y.s && y.r -> x.r",
			Tagged,
		},
		{
			"mobile handoff (no message crosses a red handoff)",
			"x, y : color(x) == red : x.s -> y.r && y.s -> x.r",
			General,
		},
		{
			"receive second before first",
			"x, y : x.s -> y.s && x.r -> y.r",
			Unimplementable,
		},
		{
			"async witness a",
			"x, y : x.s -> y.s && y.s -> x.s",
			Tagless,
		},
		{
			"async witness e",
			"x, y : x.r -> y.r && y.r -> x.r",
			Tagless,
		},
		{
			"example 1",
			"x1, x2, x3, x4, x5 : x1.r -> x2.s && x2.s -> x3.s && x3.r -> x4.r && x4.s -> x1.s && x4.s -> x5.r && x1.s -> x4.r",
			Tagged,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res := classOf(t, c.src)
			if res.Class != c.want {
				t.Fatalf("class = %v, want %v\n%s", res.Class, c.want, res.Explanation())
			}
		})
	}
}

func TestMinOrderReported(t *testing.T) {
	res := classOf(t, "x1, x2, x3 : x1.s -> x2.r && x2.s -> x3.r && x3.s -> x1.r")
	if !res.HasCycle || res.MinOrder != 3 {
		t.Fatalf("MinOrder = %d (cycle=%v), want 3", res.MinOrder, res.HasCycle)
	}
	if res.Witness.Len() != 3 {
		t.Fatalf("witness len = %d", res.Witness.Len())
	}
}

func TestTaglessIffUnsatisfiable(t *testing.T) {
	// Order-0 classification must coincide with unsatisfiability.
	srcs := []string{
		"x, y : x.s -> y.s && y.s -> x.s",
		"x, y : x.s -> y.s && y.r -> x.s",
		"x, y : x.r -> y.r && y.r -> x.s",
		"x, y : x.s -> y.s && y.r -> x.r",
		"x1, x2 : x1.s -> x2.r && x2.s -> x1.r",
		"x, y : x.s -> y.s && x.r -> y.r",
	}
	for _, src := range srcs {
		res := classOf(t, src)
		if (res.Class == Tagless) != res.Unsatisfiable {
			t.Errorf("%s: class %v but unsat=%v", src, res.Class, res.Unsatisfiable)
		}
	}
}

func TestImpossibleSelfAtom(t *testing.T) {
	p := &predicate.Predicate{
		Vars: []string{"x"},
		Atoms: []predicate.Atom{{
			From: predicate.EventRef{Var: 0, Part: predicate.R},
			To:   predicate.EventRef{Var: 0, Part: predicate.S},
		}},
	}
	res, err := Classify(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != Tagless || !res.Unsatisfiable {
		t.Fatalf("class = %v unsat = %v, want tagless/unsat", res.Class, res.Unsatisfiable)
	}
}

func TestAllTrivialAtoms(t *testing.T) {
	p := &predicate.Predicate{
		Vars: []string{"x"},
		Atoms: []predicate.Atom{{
			From: predicate.EventRef{Var: 0, Part: predicate.S},
			To:   predicate.EventRef{Var: 0, Part: predicate.R},
		}},
	}
	res, err := Classify(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != Unimplementable {
		t.Fatalf("class = %v, want unimplementable (forbids every nonempty run)", res.Class)
	}
}

func TestTrivialAtomDropped(t *testing.T) {
	// x.s -> x.r conjoined with causal ordering changes nothing.
	p := predicate.MustParse("x, y : x.s -> x.r && x.s -> y.s && y.r -> x.r")
	res, err := Classify(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != Tagged {
		t.Fatalf("class = %v, want tagged", res.Class)
	}
	if res.Graph.NumEdges() != 2 {
		t.Fatalf("effective edges = %d, want 2", res.Graph.NumEdges())
	}
	found := false
	for _, n := range res.Notes {
		if strings.Contains(n, "trivially true") {
			found = true
		}
	}
	if !found {
		t.Error("missing preprocessing note")
	}
}

func TestContradictoryColorGuards(t *testing.T) {
	res := classOf(t, "x, y : color(x) == red && color(x) == blue : x.s -> y.s && y.r -> x.r")
	if res.Class != Tagless || !res.Unsatisfiable {
		t.Fatalf("class = %v, want tagless via contradictory guards", res.Class)
	}
	if !strings.Contains(res.Explanation(), "contradictory") {
		t.Error("missing contradiction note")
	}
}

func TestContradictoryProcessGuards(t *testing.T) {
	res := classOf(t, `x, y :
		process(x.s) == process(y.s) && process(y.s) == process(x.r) && process(x.s) != process(x.r) :
		x.s -> y.s && y.r -> x.r`)
	if res.Class != Tagless || !res.Unsatisfiable {
		t.Fatalf("class = %v, want tagless via contradictory process guards", res.Class)
	}
}

func TestConsistentGuardsNotFlagged(t *testing.T) {
	res := classOf(t, `x, y :
		process(x.s) == process(y.s) && process(x.s) != process(x.r) && color(x) == red && color(y) == red :
		x.s -> y.s && y.r -> x.r`)
	if res.Class != Tagged {
		t.Fatalf("class = %v, want tagged", res.Class)
	}
}

func TestInvalidPredicate(t *testing.T) {
	if _, err := Classify(&predicate.Predicate{}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("err = %v, want ErrInvalid", err)
	}
}

func TestExplanationNonEmpty(t *testing.T) {
	for _, src := range []string{
		"x, y : x.s -> y.s && y.r -> x.r",
		"x, y : x.s -> y.s && x.r -> y.r",
		"x1, x2 : x1.s -> x2.r && x2.s -> x1.r",
		"x, y : x.s -> y.s && y.s -> x.s",
	} {
		res := classOf(t, src)
		if res.Explanation() == "" {
			t.Errorf("%s: empty explanation", src)
		}
	}
}

func TestContractionAttachedForTagged(t *testing.T) {
	res := classOf(t, "x1, x2, x3 : x1.s -> x2.s && x2.s -> x3.s && x3.r -> x1.r")
	if len(res.Contraction.Steps) == 0 {
		t.Fatal("missing contraction")
	}
	canon := res.Contraction.Canonical()
	if canon.Order() != 1 {
		t.Fatalf("canonical order = %d, want 1", canon.Order())
	}
}

func TestClassString(t *testing.T) {
	cases := map[Class]string{
		Unimplementable: "unimplementable",
		Tagless:         "tagless",
		Tagged:          "tagged",
		General:         "general",
		Class(99):       "class(99)",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(c), got, want)
		}
	}
}
