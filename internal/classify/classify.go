// Package classify implements the paper's central algorithm: given a
// forbidden predicate, decide whether the specification X_B is
// implementable and, if so, which protocol class is necessary and
// sufficient (Section 4.3, Theorems 2–4):
//
//	no cycle in the predicate graph      → not implementable,
//	some cycle of order 0                → tagless ("do nothing") suffices,
//	minimum cycle order 1                → tagged (piggybacking) suffices,
//	minimum cycle order ≥ 2              → general (control messages) needed.
//
// The classifier additionally detects predicates that are unsatisfiable
// (their specification set is all of X_async — equivalent to a cycle of
// order 0, see Lemma 3.3) and degenerate predicates whose atoms are all
// trivially true (their specification admits only the empty run — never
// implementable).
//
// Model assumption: like the paper's proofs, the classification is stated
// for systems where processes do not send messages to themselves. With
// self-addressed messages the Lemma 3.2 equivalences underpinning the
// order-1 case can fail — e.g. X_co ⊄ X_B1 for B1 ≡ (x.s ▷ y.r) ∧
// (y.r ▷ x.r), witnessed by two self-messages delivered in FIFO order —
// so an order-1 predicate may then require control messages. See
// EXPERIMENTS.md ("self-message caveat").
package classify

import (
	"errors"
	"fmt"
	"strings"

	"msgorder/internal/pgraph"
	"msgorder/internal/predicate"
)

// Class is the protocol class required to implement a specification.
type Class int

// Protocol classes, ordered by increasing power.
const (
	// Unimplementable: no inhibitory protocol can guarantee safety and
	// liveness (X_sync ⊄ X_B).
	Unimplementable Class = iota + 1
	// Tagless: the trivial protocol that enables every pending event
	// suffices (X_async ⊆ X_B).
	Tagless
	// Tagged: piggybacking information on user messages is sufficient and
	// necessary (X_co ⊆ X_B but X_async ⊄ X_B).
	Tagged
	// General: control messages are necessary (X_sync ⊆ X_B but
	// X_co ⊄ X_B).
	General
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case Unimplementable:
		return "unimplementable"
	case Tagless:
		return "tagless"
	case Tagged:
		return "tagged"
	case General:
		return "general"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Result is the full classification outcome.
type Result struct {
	Class Class
	// MinOrder is the minimum cycle order when the graph is cyclic.
	MinOrder int
	// HasCycle reports whether the predicate graph has a cycle at all.
	HasCycle bool
	// Witness is a minimum-order closed walk when HasCycle.
	Witness pgraph.Cycle
	// Graph is the predicate graph built from the effective (preprocessed)
	// atoms.
	Graph *pgraph.Graph
	// Contraction is the Lemma 4 reduction of the witness.
	Contraction pgraph.ContractResult
	// Unsatisfiable reports that no run can satisfy the predicate, so
	// X_B = X_async.
	Unsatisfiable bool
	// Notes is a human-readable explanation trail.
	Notes []string
}

// Explanation joins the notes into a printable paragraph.
func (r *Result) Explanation() string { return strings.Join(r.Notes, "\n") }

// Classification errors.
var (
	ErrInvalid = errors.New("classify: invalid predicate")
)

// Classify runs the algorithm on a forbidden predicate.
//
// Guards restrict the instantiations of the predicate and therefore only
// enlarge the specification set, so the class computed from the guard-free
// graph remains sufficient; it is also necessary whenever the guards admit
// the witness constructions of Theorem 4 (true for all specifications in
// the paper). Contradictory guards make the predicate unsatisfiable and
// are detected exactly.
func Classify(p *predicate.Predicate) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	res := &Result{}

	if reason, bad := contradictoryGuards(p); bad {
		res.Class = Tagless
		res.Unsatisfiable = true
		res.Notes = append(res.Notes,
			"guards are contradictory: "+reason,
			"the predicate can never hold, so X_B = X_async and the trivial protocol suffices")
		res.Graph = pgraph.New(&predicate.Predicate{Vars: p.Vars})
		return res, nil
	}

	// Preprocess same-variable atoms.
	effective := &predicate.Predicate{Vars: append([]string(nil), p.Vars...), Guards: p.Guards}
	for _, a := range p.Atoms {
		switch {
		case a.Trivial():
			res.Notes = append(res.Notes, fmt.Sprintf(
				"dropping trivially true conjunct %s.s -> %s.r (holds for every message)",
				p.Vars[a.From.Var], p.Vars[a.To.Var]))
		case a.Impossible():
			res.Class = Tagless
			res.Unsatisfiable = true
			res.Notes = append(res.Notes, fmt.Sprintf(
				"conjunct %s.%s -> %s.%s can never hold (▷ is irreflexive and x.s always precedes x.r)",
				p.Vars[a.From.Var], a.From.Part, p.Vars[a.To.Var], a.To.Part),
				"the predicate is unsatisfiable, so X_B = X_async and the trivial protocol suffices")
			res.Graph = pgraph.New(effective)
			return res, nil
		default:
			effective.Atoms = append(effective.Atoms, a)
		}
	}

	if len(effective.Atoms) == 0 {
		res.Class = Unimplementable
		res.Graph = pgraph.New(effective)
		res.Notes = append(res.Notes,
			"every conjunct is trivially true: the predicate forbids any run containing a matching message",
			"only the empty run satisfies the specification; X_sync ⊄ X_B, so no protocol exists (Corollary 1)")
		return res, nil
	}

	g := pgraph.New(effective)
	res.Graph = g
	minOrder, witness, ok := g.MinOrder()
	res.HasCycle = ok
	if !ok {
		res.Class = Unimplementable
		res.Notes = append(res.Notes,
			"the predicate graph is acyclic",
			"by Theorem 2 the specification is not implementable: the Theorem's construction yields a logically synchronous run that violates it (X_sync ⊄ X_B)")
		return res, nil
	}
	res.MinOrder = minOrder
	res.Witness = witness
	res.Contraction = pgraph.Contract(witness)
	res.Notes = append(res.Notes, fmt.Sprintf(
		"the predicate graph has a cycle; minimum order over cycles is %d", minOrder))
	res.Notes = append(res.Notes, "minimum-order cycle: "+g.CycleString(witness))
	if bvs := witness.BetaVertices(); len(bvs) > 0 {
		names := make([]string, len(bvs))
		for i, v := range bvs {
			names[i] = g.Var(v)
		}
		res.Notes = append(res.Notes, "β vertices: "+strings.Join(names, ", "))
	}

	switch {
	case minOrder == 0:
		res.Class = Tagless
		res.Unsatisfiable = true
		res.Notes = append(res.Notes,
			"a cycle of order 0 exists: by Lemma 3.3 the predicate implies an event preceding itself and is unsatisfiable",
			"X_async ⊆ X_B (in fact X_B = X_async): the trivial protocol suffices (Theorem 3.1)")
	case minOrder == 1:
		res.Class = Tagged
		res.Notes = append(res.Notes,
			"minimum order 1: by Lemma 4 and Lemma 3.2 the cycle reduces to a causal-ordering predicate, so X_co ⊆ X_B — tagging user messages suffices (Theorem 3.2)",
			"no cycle of order 0 exists, so X_async ⊄ X_B — some protocol action is necessary (Theorem 4.3)")
	default:
		res.Class = General
		res.Notes = append(res.Notes, fmt.Sprintf(
			"minimum order %d (> 1): the cycle reduces to a %d-crown, so X_sync ⊆ X_B — a protocol with control messages suffices (Theorem 3.3)",
			minOrder, minOrder),
			"no cycle of order 0 or 1 exists, so X_co ⊄ X_B — tagging alone cannot implement the specification; control messages are necessary (Theorem 4.2)")
	}
	return res, nil
}

// contradictoryGuards decides guard satisfiability exactly: process
// selectors are united by equality guards (union-find), then inequality
// guards are checked within classes; color guards conflict when one
// variable is required to have two different colors.
func contradictoryGuards(p *predicate.Predicate) (string, bool) {
	// Selector id: 2*var + side (0 = sender, 1 = receiver).
	sel := func(r predicate.EventRef) int {
		side := 0
		if r.Part == predicate.R {
			side = 1
		}
		return 2*r.Var + side
	}
	parent := make([]int, 2*len(p.Vars))
	for i := range parent {
		parent[i] = i
	}
	var find func(x int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	for _, g := range p.Guards {
		if g.Kind == predicate.GuardProcEq {
			union(sel(g.A), sel(g.B))
		}
	}
	selName := func(id int) string {
		part := "s"
		if id%2 == 1 {
			part = "r"
		}
		return fmt.Sprintf("process(%s.%s)", p.Vars[id/2], part)
	}
	for _, g := range p.Guards {
		if g.Kind == predicate.GuardProcNeq && find(sel(g.A)) == find(sel(g.B)) {
			return fmt.Sprintf("%s != %s conflicts with the equality guards",
				selName(sel(g.A)), selName(sel(g.B))), true
		}
	}
	colors := make(map[int]predicate.Guard)
	for _, g := range p.Guards {
		if g.Kind != predicate.GuardColorIs {
			continue
		}
		if prev, ok := colors[g.Var]; ok && prev.Color != g.Color {
			return fmt.Sprintf("color(%s) constrained to both %s and %s",
				p.Vars[g.Var], prev.Color, g.Color), true
		}
		colors[g.Var] = g
	}
	return "", false
}
