package protocol

import (
	"errors"
	"testing"

	"msgorder/internal/event"
)

func TestClassString(t *testing.T) {
	cases := map[Class]string{
		Tagless:  "tagless",
		Tagged:   "tagged",
		General:  "general",
		Class(9): "class(9)",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(c), got, want)
		}
	}
}

func TestCheckCapability(t *testing.T) {
	user := Wire{Kind: UserWire}
	tagged := Wire{Kind: UserWire, Tag: []byte{1}}
	ctrl := Wire{Kind: ControlWire}
	cases := []struct {
		class Class
		wire  Wire
		ok    bool
	}{
		{Tagless, user, true},
		{Tagless, tagged, false},
		{Tagless, ctrl, false},
		{Tagged, tagged, true},
		{Tagged, ctrl, false},
		{General, ctrl, true},
		{General, tagged, true},
	}
	for _, c := range cases {
		err := CheckCapability(c.class, c.wire)
		if (err == nil) != c.ok {
			t.Errorf("CheckCapability(%v, %+v) = %v, want ok=%v", c.class, c.wire, err, c.ok)
		}
		if err != nil && !errors.Is(err, ErrClassViolation) {
			t.Errorf("error %v must match ErrClassViolation", err)
		}
	}
}

func TestRecorderLifecycle(t *testing.T) {
	r := NewRecorder(2)
	m := r.NewMessage(0, 1, event.ColorRed)
	if m.ID != 0 || m.From != 0 || m.To != 1 || m.Color != event.ColorRed {
		t.Fatalf("message = %+v", m)
	}
	r.RecordSend(m.ID, 10)
	r.RecordReceive(m.ID)
	r.RecordDeliver(m.ID)
	r.RecordControl(4)

	st := r.Stats()
	if st.UserMessages != 1 || st.UserTagBytes != 10 ||
		st.ControlMessages != 1 || st.ControlBytes != 4 || st.Deliveries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	sys, err := r.SystemRun()
	if err != nil {
		t.Fatal(err)
	}
	if !sys.InXu() {
		t.Error("immediate execution must land in X_u")
	}
	view, err := r.UserView()
	if err != nil {
		t.Fatal(err)
	}
	if !view.IsComplete() {
		t.Error("view must be complete")
	}
	if got := r.Undelivered(); len(got) != 0 {
		t.Errorf("undelivered = %v", got)
	}
	if r.Message(0) != m {
		t.Error("Message accessor mismatch")
	}
	if msgs := r.Messages(); len(msgs) != 1 || msgs[0] != m {
		t.Error("Messages accessor mismatch")
	}
}

func TestRecorderUndelivered(t *testing.T) {
	r := NewRecorder(2)
	m := r.NewMessage(0, 1, event.ColorNone)
	r.RecordSend(m.ID, 0)
	got := r.Undelivered()
	if len(got) != 1 || got[0] != m.ID {
		t.Fatalf("undelivered = %v", got)
	}
}

// An empty run has no invoked messages, so nothing can be undelivered —
// the degenerate case a crashed-at-start process produces.
func TestRecorderUndeliveredEmpty(t *testing.T) {
	r := NewRecorder(2)
	if got := r.Undelivered(); len(got) != 0 {
		t.Fatalf("empty recorder undelivered = %v, want none", got)
	}
	// A message that was created but never sent still counts as
	// undelivered: the invoke happened, the delivery did not.
	m := r.NewMessage(1, 0, event.ColorNone)
	if got := r.Undelivered(); len(got) != 1 || got[0] != m.ID {
		t.Fatalf("undelivered = %v, want [%d]", got, m.ID)
	}
}

func TestRecordCrashes(t *testing.T) {
	r := NewRecorder(2)
	r.RecordCrashes(2, 1, 17)
	r.RecordCrashes(1, 1, 3)
	s := r.Stats()
	if s.Crashes != 3 || s.Recoveries != 2 || s.ReplayedEvents != 20 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestRecordTransport(t *testing.T) {
	r := NewRecorder(2)
	r.RecordTransport(4, 2, 7)
	r.RecordTransport(1, 0, 1)
	s := r.Stats()
	if s.Retransmits != 5 || s.DupsDropped != 2 || s.FaultsInjected != 8 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestStatsAggregation(t *testing.T) {
	var s Stats
	s.Add(Stats{UserMessages: 2, ControlMessages: 6, UserTagBytes: 20, ControlBytes: 3, Deliveries: 2,
		Retransmits: 3, DupsDropped: 1, FaultsInjected: 5})
	s.Add(Stats{UserMessages: 2, ControlMessages: 0, UserTagBytes: 0, Deliveries: 2,
		Retransmits: 1, DupsDropped: 2, FaultsInjected: 0})
	if s.UserMessages != 4 || s.ControlMessages != 6 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Retransmits != 4 || s.DupsDropped != 3 || s.FaultsInjected != 5 {
		t.Fatalf("transport fields not accumulated: %+v", s)
	}
	if got := s.ControlPerUser(); got != 1.5 {
		t.Errorf("ControlPerUser = %v", got)
	}
	if got := s.TagBytesPerUser(); got != 5 {
		t.Errorf("TagBytesPerUser = %v", got)
	}
	var empty Stats
	if empty.ControlPerUser() != 0 || empty.TagBytesPerUser() != 0 {
		t.Error("empty stats must not divide by zero")
	}
}
