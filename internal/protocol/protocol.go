// Package protocol defines the operational interface for inhibitory
// message-ordering protocols (Section 3.2 of Murty & Garg) and the run
// recorder shared by the simulators.
//
// A protocol instance runs at each process. The harness calls OnInvoke
// when the user requests a message (the x.s* event) and OnReceive when a
// wire message arrives (the x.r* event for user wires). The protocol
// controls exactly the controllable events of the paper: it decides when
// to call Env.Send (executing x.s, possibly delayed past the invoke) and
// when to call Env.Deliver (executing x.r, possibly delayed past the
// receive).
//
// The three protocol classes map onto capabilities:
//
//	tagless — may not attach tags nor send control wires,
//	tagged  — may attach tags to user wires only,
//	general — may additionally send control wires.
//
// The harness enforces the declared class at run time (a tagged protocol
// attempting a control send is a bug worth failing loudly over).
package protocol

import (
	"errors"
	"fmt"
	"sync"

	"msgorder/internal/event"
	"msgorder/internal/run"
	"msgorder/internal/userview"
)

// Class is a protocol capability class.
type Class int

// Capability classes, ordered by increasing power.
const (
	Tagless Class = iota + 1
	Tagged
	General
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case Tagless:
		return "tagless"
	case Tagged:
		return "tagged"
	case General:
		return "general"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// WireKind distinguishes user messages from protocol-internal control
// messages on the wire.
type WireKind uint8

// Wire kinds.
const (
	UserWire    WireKind = iota + 1 // carries a user message (+ optional tag)
	ControlWire                     // protocol-internal
)

// Wire is a message in flight.
type Wire struct {
	From, To event.ProcID
	Kind     WireKind
	// Msg is the user message id (UserWire only).
	Msg event.MsgID
	// Color mirrors the user message's color (UserWire only) so receivers
	// need not share a message table.
	Color event.Color
	// Ctrl discriminates control message types within a protocol.
	Ctrl uint8
	// Tag is the piggybacked data (user wires) or control payload.
	Tag []byte
	// Key is the wire's ordering domain, stamped by the sharded runtime
	// (internal/shard) so the receiving side can demultiplex onto the
	// right per-key instance. Like VC it is harness-owned — protocols
	// must neither read nor write it — but unlike VC it is semantic
	// state: it is carried on the real wire, journaled, and included in
	// the explorer's state fingerprints. NoKey on unsharded runs.
	Key event.Key
	// VC is the observability layer's send-time vector-clock stamp.
	// It is set by the harness when tracing is enabled and is not part
	// of the protocol contract: protocols must neither read nor write
	// it, and the explorer's state fingerprint ignores it.
	VC []uint64
}

// Env is the harness-provided environment for one protocol instance.
// All calls made by a process must happen inside its OnInvoke/OnReceive
// handlers (the harness serializes them per process).
type Env interface {
	// Self returns this process's id.
	Self() event.ProcID
	// NumProcs returns the number of processes.
	NumProcs() int
	// Send transmits a wire message. For user wires this executes the
	// send event x.s.
	Send(w Wire)
	// Deliver executes the delivery event x.r of a previously received
	// user message.
	Deliver(id event.MsgID)
}

// Process is one protocol instance.
type Process interface {
	// Init is called once before any events, with the environment.
	Init(env Env)
	// OnInvoke is called when the user requests message m (m.From is this
	// process). The protocol eventually calls Env.Send for it.
	OnInvoke(m event.Message)
	// OnReceive is called when a wire message addressed to this process
	// arrives.
	OnReceive(w Wire)
}

// Maker constructs a fresh protocol instance for one process.
type Maker func() Process

// Snapshotter is implemented by protocol processes whose state can be
// checkpointed for crash recovery. Snapshot must return a deterministic
// encoding of the instance's complete ordering state (the same state
// must always encode to the same bytes, so recovery can be verified);
// Restore must rebuild that state onto a freshly Init'd instance.
// Snapshots let the write-ahead log be truncated: a recovering process
// restores the latest snapshot and replays only the journal suffix.
type Snapshotter interface {
	Snapshot() []byte
	Restore(b []byte) error
}

// Broadcaster is implemented by protocols with native broadcast support
// (the paper's multicast extension): the harness hands every copy of one
// logical broadcast to the protocol together, so it can stamp them with a
// single timestamp. msgs holds one message per destination, all invoked
// by this process. Protocols without this interface receive the copies as
// individual OnInvoke calls.
type Broadcaster interface {
	OnBroadcast(msgs []event.Message)
}

// Descriptor identifies a protocol implementation and its declared
// capability class.
type Descriptor struct {
	Name  string
	Class Class
}

// Describer is implemented by protocol processes to declare their
// descriptor. The harness uses it to enforce capabilities and label
// results.
type Describer interface {
	Describe() Descriptor
}

// Stats aggregates protocol overhead over a run. The transport fields
// count work below the protocol layer (the live harness's reliable
// sublayer over a lossy network); they stay zero on fault-free runs and
// in the deterministic simulator.
type Stats struct {
	UserMessages    int // user messages sent
	ControlMessages int // control wires sent
	UserTagBytes    int // total bytes piggybacked on user wires
	ControlBytes    int // total control payload bytes
	Deliveries      int

	Retransmits    int // transport-level resends (not recorded as sends)
	DupsDropped    int // duplicate envelopes absorbed by transport dedup
	FaultsInjected int // drops+dups+delays+partition cuts injected

	Crashes        int // process crashes injected (stop + restart)
	Recoveries     int // crash-restart cycles completed
	ReplayedEvents int // WAL entries replayed across all recoveries
}

// Add accumulates other into s.
func (s *Stats) Add(o Stats) {
	s.UserMessages += o.UserMessages
	s.ControlMessages += o.ControlMessages
	s.UserTagBytes += o.UserTagBytes
	s.ControlBytes += o.ControlBytes
	s.Deliveries += o.Deliveries
	s.Retransmits += o.Retransmits
	s.DupsDropped += o.DupsDropped
	s.FaultsInjected += o.FaultsInjected
	s.Crashes += o.Crashes
	s.Recoveries += o.Recoveries
	s.ReplayedEvents += o.ReplayedEvents
}

// ControlPerUser returns the control-message overhead ratio.
func (s Stats) ControlPerUser() float64 {
	if s.UserMessages == 0 {
		return 0
	}
	return float64(s.ControlMessages) / float64(s.UserMessages)
}

// TagBytesPerUser returns the average piggyback size.
func (s Stats) TagBytesPerUser() float64 {
	if s.UserMessages == 0 {
		return 0
	}
	return float64(s.UserTagBytes) / float64(s.UserMessages)
}

// Recorder accumulates the system run observed by a harness. It is safe
// for concurrent use.
type Recorder struct {
	mu    sync.Mutex
	msgs  []event.Message
	procs [][]event.Event
	stats Stats
}

// NewRecorder returns a recorder for n processes.
func NewRecorder(n int) *Recorder {
	return &Recorder{procs: make([][]event.Event, n)}
}

// NewMessage allocates the next user message id and records its invoke
// event.
func (r *Recorder) NewMessage(from, to event.ProcID, color event.Color) event.Message {
	return r.NewKeyedMessage(from, to, color, event.NoKey)
}

// NewKeyedMessage is NewMessage with an ordering key: the message joins
// key's independent ordering domain (event.NoKey = the global domain).
func (r *Recorder) NewKeyedMessage(from, to event.ProcID, color event.Color, key event.Key) event.Message {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := event.Message{
		ID:    event.MsgID(len(r.msgs)),
		From:  from,
		To:    to,
		Color: color,
		Key:   key,
	}
	r.msgs = append(r.msgs, m)
	r.procs[from] = append(r.procs[from], event.E(m.ID, event.Invoke))
	return m
}

// RecordSend records x.s at the sender and accounts tag bytes.
func (r *Recorder) RecordSend(id event.MsgID, tagBytes int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.msgs[id]
	r.procs[m.From] = append(r.procs[m.From], event.E(id, event.Send))
	r.stats.UserMessages++
	r.stats.UserTagBytes += tagBytes
}

// RecordReceive records x.r* at the destination.
func (r *Recorder) RecordReceive(id event.MsgID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.msgs[id]
	r.procs[m.To] = append(r.procs[m.To], event.E(id, event.Receive))
}

// RecordDeliver records x.r at the destination.
func (r *Recorder) RecordDeliver(id event.MsgID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.msgs[id]
	r.procs[m.To] = append(r.procs[m.To], event.E(id, event.Deliver))
	r.stats.Deliveries++
}

// RecordTransport folds the transport sublayer's counters into the
// stats (live harness only; the deterministic simulator has no lossy
// network to recover from).
func (r *Recorder) RecordTransport(retransmits, dupsDropped, faultsInjected int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats.Retransmits += retransmits
	r.stats.DupsDropped += dupsDropped
	r.stats.FaultsInjected += faultsInjected
}

// RecordCrashes folds crash-injection counters into the stats (live
// harness only): crashes fired, recoveries completed, and total WAL
// entries replayed while recovering.
func (r *Recorder) RecordCrashes(crashes, recoveries, replayed int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats.Crashes += crashes
	r.stats.Recoveries += recoveries
	r.stats.ReplayedEvents += replayed
}

// RecordControl accounts a control wire.
func (r *Recorder) RecordControl(payloadBytes int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats.ControlMessages++
	r.stats.ControlBytes += payloadBytes
}

// Stats returns a snapshot of the accumulated statistics.
func (r *Recorder) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Message returns the user message with the given id.
func (r *Recorder) Message(id event.MsgID) event.Message {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.msgs[id]
}

// Messages returns a copy of the user message table so far.
func (r *Recorder) Messages() []event.Message {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]event.Message(nil), r.msgs...)
}

// SystemRun validates and returns the recorded system run.
func (r *Recorder) SystemRun() (*run.Run, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return run.New(r.msgs, r.procs)
}

// UserView validates and returns the user's view of the recorded run.
func (r *Recorder) UserView() (*userview.Run, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	sys, err := run.New(r.msgs, r.procs)
	if err != nil {
		return nil, err
	}
	return sys.UsersView()
}

// Undelivered returns the ids of invoked messages that were never
// delivered — a liveness violation if the harness has quiesced.
func (r *Recorder) Undelivered() []event.MsgID {
	r.mu.Lock()
	defer r.mu.Unlock()
	delivered := make([]bool, len(r.msgs))
	for _, seq := range r.procs {
		for _, e := range seq {
			if e.Kind == event.Deliver {
				delivered[e.Msg] = true
			}
		}
	}
	var out []event.MsgID
	for i, d := range delivered {
		if !d {
			out = append(out, event.MsgID(i))
		}
	}
	return out
}

// ErrClassViolation reports a protocol exceeding its declared capability
// class (e.g. a tagged protocol sending a control wire).
var ErrClassViolation = errors.New("protocol: capability class violation")

// CheckCapability validates a wire against the sender's declared class.
func CheckCapability(c Class, w Wire) error {
	switch {
	case w.Kind == ControlWire && c != General:
		return fmt.Errorf("%w: %v protocol sent a control wire", ErrClassViolation, c)
	case w.Kind == UserWire && len(w.Tag) > 0 && c == Tagless:
		return fmt.Errorf("%w: tagless protocol attached a tag", ErrClassViolation)
	default:
		return nil
	}
}
