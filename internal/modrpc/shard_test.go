package modrpc

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"msgorder/internal/event"
	"msgorder/internal/netmesh"
	"msgorder/internal/protocols/fifo"
	"msgorder/internal/shard"
	"msgorder/internal/transport"
	"msgorder/internal/userview"
)

// startShardedPair boots a 2-process mesh whose nodes run the sharded
// fifo runtime, with an RPC server and client per node.
func startShardedPair(t *testing.T) ([]*netmesh.Node, []*Client) {
	t.Helper()
	addrs := make([]string, 2)
	for i := range addrs {
		m, err := netmesh.NewMesh(netmesh.MeshConfig{Self: 0, Addrs: []string{"127.0.0.1:0"}},
			func([]transport.Envelope) {})
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = m.Addr()
		m.Close()
	}
	fp := netmesh.Fingerprint("sharded-fifo", "", 2)
	nodes := make([]*netmesh.Node, 2)
	clients := make([]*Client, 2)
	for i := range nodes {
		node, err := netmesh.NewNode(netmesh.NodeConfig{
			Self: event.ProcID(i), Procs: 2, Maker: shard.New(fifo.Maker),
			Mesh:      netmesh.MeshConfig{Addrs: addrs, Fingerprint: fp, Seed: int64(i + 1)},
			Transport: transport.Config{RTO: 2 * time.Millisecond, MaxRTO: 30 * time.Millisecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		t.Cleanup(func() { node.Close() })
		srv, err := Serve("127.0.0.1:0", node)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		c, err := Dial(srv.Addr(), 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
		t.Cleanup(func() { c.Close() })
	}
	return nodes, clients
}

// TestRPCKeyedInvokeSharded drives a keyed workload over the wire
// protocol against sharded daemons: the key field must survive the
// NDJSON round-trip, fan into per-key protocol instances, and yield a
// user view whose per-key projections are each complete and causal.
func TestRPCKeyedInvokeSharded(t *testing.T) {
	_, clients := startShardedPair(t)

	pong, err := clients[0].Ping()
	if err != nil {
		t.Fatal(err)
	}
	if pong.Proto != "sharded(fifo)" {
		t.Fatalf("ping proto = %q, want sharded(fifo)", pong.Proto)
	}

	kA, kB := event.KeyOf("alpha"), event.KeyOf("beta")
	msgs := []event.Message{
		{ID: 0, From: 0, To: 1, Key: kA},
		{ID: 1, From: 0, To: 1, Key: kB},
		{ID: 2, From: 1, To: 0, Key: kA},
		{ID: 3, From: 0, To: 1, Key: kA},
	}
	want := make([]int, 2)
	for _, m := range msgs {
		if err := clients[m.From].InvokeKeyed(int(m.ID), m.To, m.Color, m.Key); err != nil {
			t.Fatal(err)
		}
		want[m.To]++
		if err := clients[m.To].Wait(want[m.To], 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}

	procEvents := make([][]event.Event, 2)
	for p, c := range clients {
		evs, _, err := c.Events()
		if err != nil {
			t.Fatal(err)
		}
		procEvents[p] = evs
	}
	v, err := userview.New(msgs, procEvents)
	if err != nil {
		t.Fatalf("RPC-assembled sharded view invalid: %v", err)
	}
	if !v.IsComplete() {
		t.Fatal("keyed RPC run incomplete")
	}
	keys := v.Keys()
	if len(keys) != 2 {
		t.Fatalf("view has %d keys, want 2", len(keys))
	}
	for _, k := range keys {
		proj, err := v.ProjectKey(k)
		if err != nil {
			t.Fatal(err)
		}
		if !proj.IsComplete() || !proj.InCO() {
			t.Fatalf("key %#x projection incomplete or out of causal order", uint64(k))
		}
	}
}

// TestRequestKeyWireFormat pins the key's JSON encoding: present and
// named "key" when set, omitted entirely for the global domain so old
// drivers and old daemons interoperate byte-for-byte.
func TestRequestKeyWireFormat(t *testing.T) {
	b, err := json.Marshal(Request{Op: "invoke", ID: 7, To: 1, Key: 42})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"key":42`) {
		t.Fatalf("keyed request lost its key: %s", b)
	}
	var back Request
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if event.Key(back.Key) != event.Key(42) {
		t.Fatalf("key round-trip = %d, want 42", back.Key)
	}
	b, err = json.Marshal(Request{Op: "invoke", ID: 7, To: 1})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "key") {
		t.Fatalf("unkeyed request must omit the key field: %s", b)
	}
}

// TestRouterDeterministicCoverage checks the key->daemon router: every
// key routes in range, two independently built routers agree on every
// key (drivers share no state, only the fleet list), each daemon owns
// a reasonable slice of the keyspace, and For returns the client at
// the routed index.
func TestRouterDeterministicCoverage(t *testing.T) {
	fleet := []*Client{{}, {}, {}, {}}
	r := NewRouter(fleet)
	again := NewRouter(fleet)
	counts := make([]int, len(fleet))
	const keys = 20000
	for i := 0; i < keys; i++ {
		k := event.Key(i)
		idx := r.Index(k)
		if idx < 0 || idx >= len(fleet) {
			t.Fatalf("key %d routed to %d", i, idx)
		}
		if again.Index(k) != idx {
			t.Fatalf("two routers over the same fleet disagree on key %d", i)
		}
		if r.For(k) != fleet[idx] {
			t.Fatalf("For(key %d) is not the client at index %d", i, idx)
		}
		counts[idx]++
	}
	for d, c := range counts {
		if c < keys/20 {
			t.Fatalf("daemon %d owns only %d of %d keys", d, c, keys)
		}
	}
}
