package modrpc

import (
	"errors"
	"testing"

	"msgorder/internal/event"
)

// TestRouterEpochTransitions checks Join and Evict each bump the
// epoch and that ForEpoch refuses routes computed under older views
// with the typed stale-epoch error.
func TestRouterEpochTransitions(t *testing.T) {
	clients := []*Client{{}, {}, {}}
	r := NewRouter(clients)
	if r.Epoch() != 0 {
		t.Fatalf("fresh router epoch = %d, want 0", r.Epoch())
	}
	if c, err := r.ForEpoch(7, 0); err != nil || c == nil {
		t.Fatalf("ForEpoch at current view failed: %v", err)
	}

	stale := r.Epoch()
	if e := r.Join(&Client{}); e != 1 {
		t.Fatalf("Join epoch = %d, want 1", e)
	}
	_, err := r.ForEpoch(7, stale)
	if !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale route error = %v, want ErrStaleEpoch", err)
	}
	var se *StaleEpochError
	if !errors.As(err, &se) || se.Have != 0 || se.Want != 1 {
		t.Fatalf("stale detail = %+v", se)
	}
	if c, err := r.ForEpoch(7, 1); err != nil || c == nil {
		t.Fatalf("refreshed route failed: %v", err)
	}
}

// TestRouterEvictedOwnerRejected checks keys hashing to an evicted
// member get ErrDeparted rather than a silently re-homed route, and
// that keys owned by survivors still resolve.
func TestRouterEvictedOwnerRejected(t *testing.T) {
	clients := []*Client{{}, {}, {}}
	r := NewRouter(clients)
	// Find one key per owner so the test is ring-layout independent.
	keyFor := make(map[int]event.Key)
	for k := event.Key(1); len(keyFor) < 3 && k < 10_000; k++ {
		i := r.Index(k)
		if _, ok := keyFor[i]; !ok {
			keyFor[i] = k
		}
	}
	if len(keyFor) != 3 {
		t.Fatalf("ring never routed to all 3 daemons: %v", keyFor)
	}

	if e := r.Evict(1); e != 1 {
		t.Fatalf("Evict epoch = %d, want 1", e)
	}
	if _, err := r.ForEpoch(keyFor[1], 1); !errors.Is(err, ErrDeparted) {
		t.Fatalf("evicted owner route error = %v, want ErrDeparted", err)
	}
	if c, err := r.ForEpoch(keyFor[0], 1); err != nil || c != clients[0] {
		t.Fatalf("survivor route = %v, %v", c, err)
	}
	// The legacy epoch-unaware route is unchanged: same owner index.
	if got := r.For(keyFor[1]); got != clients[1] {
		t.Fatal("legacy For() re-homed an evicted owner's key")
	}
}
