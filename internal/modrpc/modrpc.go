// Package modrpc is the mod daemon's client protocol: newline-delimited
// JSON requests and responses over a local TCP socket. One request per
// line, one response line per request, in order. The protocol is
// deliberately small — invoke a message, read back the process's user
// events, wait for a delivery count, trigger a crash, shut down — just
// enough for a driver (mobench's net smoke, the conformance harness, a
// shell script with netcat) to run workloads against real mod
// processes and reassemble the global user view.
package modrpc

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"msgorder/internal/event"
	"msgorder/internal/netmesh"
	"msgorder/internal/protocol"
	"msgorder/internal/shard"
	"msgorder/internal/transport"
)

// Request is one client line. Op selects the action; the remaining
// fields are op-specific.
type Request struct {
	// Op is one of: ping, invoke, events, stats, wait, crash, shutdown.
	Op string `json:"op"`
	// ID and To place a user message (invoke). The sender is always
	// the daemon's own process.
	ID int `json:"id,omitempty"`
	To int `json:"to,omitempty"`
	// Color tags the invoked message (invoke; 0 = colorless).
	Color int `json:"color,omitempty"`
	// Key is the message's ordering domain (invoke; 0 = the global
	// unkeyed domain). Only meaningful against a sharded daemon, but
	// always carried faithfully.
	Key uint64 `json:"key,omitempty"`
	// Delivered is the target local delivery count (wait).
	Delivered int `json:"delivered,omitempty"`
	// TimeoutMS bounds a wait (default 10s).
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// DowntimeMS is the crash's downtime before auto-restart.
	DowntimeMS int `json:"downtime_ms,omitempty"`
}

// EventRec is one user-visible event in an events response.
type EventRec struct {
	Msg  int `json:"msg"`
	Kind int `json:"kind"`
}

// StatsRec bundles the daemon's protocol, transport, and mesh tallies.
type StatsRec struct {
	Protocol  protocol.Stats     `json:"protocol"`
	Transport transport.Counters `json:"transport"`
	Mesh      netmesh.Counters   `json:"mesh"`
}

// Response is one server line. OK=false carries Error; the data fields
// are filled per-op.
type Response struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// Proc, Procs, and Proto describe the daemon (ping).
	Proc  int    `json:"proc,omitempty"`
	Procs int    `json:"procs,omitempty"`
	Proto string `json:"proto,omitempty"`
	// Events is the process's user-visible log; Delivered its delivery
	// sequence (events).
	Events    []EventRec `json:"events,omitempty"`
	Delivered []int      `json:"delivered,omitempty"`
	// Stats is the tally bundle (stats).
	Stats *StatsRec `json:"stats,omitempty"`
}

// Server serves the client protocol for one netmesh node.
type Server struct {
	node *netmesh.Node
	ln   net.Listener

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
	shutdown chan struct{}
	shutOnce sync.Once
}

// Serve binds addr (":0" picks a port) and starts answering clients
// against node.
func Serve(addr string, node *netmesh.Node) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		node:     node,
		ln:       ln,
		conns:    make(map[net.Conn]struct{}),
		shutdown: make(chan struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound client address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// ShutdownRequested is closed when a client sends the shutdown op; the
// daemon's main loop selects on it.
func (s *Server) ShutdownRequested() <-chan struct{} { return s.shutdown }

// Close stops accepting and tears down live client connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := s.handle(req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *Server) handle(req Request) Response {
	fail := func(err error) Response { return Response{Error: err.Error()} }
	switch req.Op {
	case "ping":
		return Response{OK: true, Proc: int(s.node.Self()), Procs: s.node.Procs(), Proto: s.node.Proto()}
	case "invoke":
		m := event.Message{
			ID:    event.MsgID(req.ID),
			From:  s.node.Self(),
			To:    event.ProcID(req.To),
			Color: event.Color(req.Color),
			Key:   event.Key(req.Key),
		}
		if err := s.node.Invoke(m); err != nil {
			return fail(err)
		}
		return Response{OK: true}
	case "events":
		var evs []EventRec
		for _, e := range s.node.Events() {
			evs = append(evs, EventRec{Msg: int(e.Msg), Kind: int(e.Kind)})
		}
		var del []int
		for _, id := range s.node.Deliveries() {
			del = append(del, int(id))
		}
		return Response{OK: true, Events: evs, Delivered: del}
	case "stats":
		return Response{OK: true, Stats: &StatsRec{
			Protocol:  s.node.Stats(),
			Transport: s.node.TransportCounters(),
			Mesh:      s.node.MeshCounters(),
		}}
	case "wait":
		timeout := 10 * time.Second
		if req.TimeoutMS > 0 {
			timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		}
		if err := s.node.WaitDeliveries(req.Delivered, timeout); err != nil {
			return fail(err)
		}
		return Response{OK: true}
	case "crash":
		if err := s.node.Crash(time.Duration(req.DowntimeMS) * time.Millisecond); err != nil {
			return fail(err)
		}
		return Response{OK: true}
	case "shutdown":
		s.shutOnce.Do(func() { close(s.shutdown) })
		return Response{OK: true}
	default:
		return Response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// Client talks the protocol to one daemon. Methods are serialized —
// the protocol is strictly request/response per connection.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	dec  *json.Decoder
	enc  *json.Encoder
}

// Dial connects to a daemon's client socket.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &Client{
		conn: conn,
		dec:  json.NewDecoder(bufio.NewReader(conn)),
		enc:  json.NewEncoder(conn),
	}, nil
}

// Close drops the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) do(req Request, readTimeout time.Duration) (Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.conn.SetDeadline(time.Now().Add(readTimeout))
	if err := c.enc.Encode(req); err != nil {
		return Response{}, err
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return Response{}, err
	}
	if !resp.OK {
		return resp, fmt.Errorf("%s: %s", req.Op, resp.Error)
	}
	return resp, nil
}

const rpcSlack = 5 * time.Second

// Ping returns the daemon's identity.
func (c *Client) Ping() (Response, error) {
	return c.do(Request{Op: "ping"}, rpcSlack)
}

// Invoke places user message id at the daemon, addressed to proc to.
func (c *Client) Invoke(id int, to event.ProcID, color event.Color) error {
	return c.InvokeKeyed(id, to, color, event.NoKey)
}

// InvokeKeyed places user message id in ordering domain key at the
// daemon, addressed to proc to.
func (c *Client) InvokeKeyed(id int, to event.ProcID, color event.Color, key event.Key) error {
	_, err := c.do(Request{Op: "invoke", ID: id, To: int(to), Color: int(color), Key: uint64(key)}, rpcSlack)
	return err
}

// Events fetches the daemon's user-visible event log and delivery
// sequence.
func (c *Client) Events() ([]event.Event, []event.MsgID, error) {
	resp, err := c.do(Request{Op: "events"}, rpcSlack)
	if err != nil {
		return nil, nil, err
	}
	evs := make([]event.Event, 0, len(resp.Events))
	for _, r := range resp.Events {
		e := event.Event{Msg: event.MsgID(r.Msg), Kind: event.Kind(r.Kind)}
		if !e.Kind.Valid() {
			return nil, nil, fmt.Errorf("events: invalid kind %d", r.Kind)
		}
		evs = append(evs, e)
	}
	del := make([]event.MsgID, 0, len(resp.Delivered))
	for _, id := range resp.Delivered {
		del = append(del, event.MsgID(id))
	}
	return evs, del, nil
}

// Stats fetches the daemon's tally bundle.
func (c *Client) Stats() (StatsRec, error) {
	resp, err := c.do(Request{Op: "stats"}, rpcSlack)
	if err != nil {
		return StatsRec{}, err
	}
	if resp.Stats == nil {
		return StatsRec{}, fmt.Errorf("stats: empty response")
	}
	return *resp.Stats, nil
}

// Wait blocks until the daemon has delivered at least k messages.
func (c *Client) Wait(k int, timeout time.Duration) error {
	_, err := c.do(Request{Op: "wait", Delivered: k, TimeoutMS: int(timeout / time.Millisecond)},
		timeout+rpcSlack)
	return err
}

// Crash tears the daemon's protocol instance down for downtime, after
// which it auto-restarts from its WAL.
func (c *Client) Crash(downtime time.Duration) error {
	_, err := c.do(Request{Op: "crash", DowntimeMS: int(downtime / time.Millisecond)}, rpcSlack)
	return err
}

// Shutdown asks the daemon to exit gracefully.
func (c *Client) Shutdown() error {
	_, err := c.do(Request{Op: "shutdown"}, rpcSlack)
	return err
}

// Router maps ordering keys onto a fleet of daemon meshes with the
// same consistent-hash ring the sharded runtime uses internally, so
// every driver routes a given key to the same mesh regardless of
// which driver computed the route. Clients are indexed by their ring
// position; growing the fleet re-homes only ~1/n of the keyspace.
//
// The router also carries a membership epoch: every fleet transition
// (join, administrative eviction) bumps it, and drivers holding a
// route computed under an older view can detect the staleness with
// ForEpoch instead of silently invoking through a departed daemon.
type Router struct {
	mu       sync.RWMutex
	epoch    uint64
	ring     *shard.Ring
	clients  []*Client
	departed []bool
}

// ErrStaleEpoch reports a keyed route computed against an older fleet
// view than the router's current one. Check with errors.Is; the
// wrapped *StaleEpochError carries both epochs.
var ErrStaleEpoch = errors.New("modrpc: stale membership epoch")

// ErrDeparted reports a route landing on a fleet member that has been
// evicted from the current view.
var ErrDeparted = errors.New("modrpc: daemon departed the fleet")

// StaleEpochError details an epoch mismatch on a keyed invoke.
type StaleEpochError struct {
	// Have is the epoch the caller routed under; Want the router's.
	Have, Want uint64
}

// Error formats the mismatch.
func (e *StaleEpochError) Error() string {
	return fmt.Sprintf("modrpc: stale membership epoch %d, fleet is at %d", e.Have, e.Want)
}

// Is makes errors.Is(err, ErrStaleEpoch) match.
func (e *StaleEpochError) Is(target error) bool { return target == ErrStaleEpoch }

// NewRouter builds a router over the daemon fleet at epoch 0. The
// client order is the ring order: every driver must list the fleet
// identically.
func NewRouter(clients []*Client) *Router {
	return &Router{ring: shard.NewRing(len(clients), 0), clients: clients,
		departed: make([]bool, len(clients))}
}

// Index returns the fleet index that owns key k.
func (r *Router) Index(k event.Key) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.ring.Daemon(k)
}

// For returns the client for the daemon mesh that owns key k. It is
// the epoch-unaware legacy route: a departed owner is returned as-is,
// matching the static-fleet contract. Epoch-aware drivers use
// ForEpoch.
func (r *Router) For(k event.Key) *Client {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.clients[r.ring.Daemon(k)]
}

// Epoch returns the router's current membership epoch.
func (r *Router) Epoch() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.epoch
}

// Join appends a daemon to the ring (re-homing ~1/n of the keyspace)
// and bumps the epoch.
func (r *Router) Join(c *Client) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.clients = append(r.clients, c)
	r.departed = append(r.departed, false)
	r.ring = shard.NewRing(len(r.clients), 0)
	r.epoch++
	return r.epoch
}

// Evict marks fleet index i departed and bumps the epoch. The ring
// keeps its shape — keys still hash to the departed slot so that
// surviving drivers get ErrDeparted instead of a silently re-homed
// route the rest of the fleet doesn't agree on.
func (r *Router) Evict(i int) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i >= 0 && i < len(r.departed) {
		r.departed[i] = true
	}
	r.epoch++
	return r.epoch
}

// ForEpoch returns the client owning key k iff the caller's epoch
// matches the router's current view. A stale epoch yields a typed
// *StaleEpochError (errors.Is ErrStaleEpoch); a route landing on an
// evicted member yields ErrDeparted.
func (r *Router) ForEpoch(k event.Key, epoch uint64) (*Client, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if epoch != r.epoch {
		return nil, &StaleEpochError{Have: epoch, Want: r.epoch}
	}
	i := r.ring.Daemon(k)
	if r.departed[i] {
		return nil, fmt.Errorf("%w: index %d owns key %d", ErrDeparted, i, k)
	}
	return r.clients[i], nil
}
