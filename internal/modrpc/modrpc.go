// Package modrpc is the mod daemon's client protocol: newline-delimited
// JSON requests and responses over a local TCP socket. One request per
// line, one response line per request, in order. The protocol is
// deliberately small — invoke a message, read back the process's user
// events, wait for a delivery count, trigger a crash, shut down — just
// enough for a driver (mobench's net smoke, the conformance harness, a
// shell script with netcat) to run workloads against real mod
// processes and reassemble the global user view.
package modrpc

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"msgorder/internal/chanmux"
	"msgorder/internal/event"
	"msgorder/internal/netmesh"
	"msgorder/internal/protocol"
	"msgorder/internal/shard"
	"msgorder/internal/transport"
)

// Request is one client line. Op selects the action; the remaining
// fields are op-specific.
type Request struct {
	// Op is one of: ping, invoke, events, stats, wait, crash, shutdown,
	// open, close, channels.
	Op string `json:"op"`
	// Channel scopes an op to one multiplexed channel (empty on a
	// single-protocol daemon). Required for every message-path op on a
	// multiplexed daemon; names a channel to open/close for those ops.
	Channel string `json:"channel,omitempty"`
	// Spec and Proto configure an open: the channel's forbidden-predicate
	// specification (classified to its cheapest witness) and an optional
	// forced catalog protocol.
	Spec  string `json:"spec,omitempty"`
	Proto string `json:"proto,omitempty"`
	// ID and To place a user message (invoke). The sender is always
	// the daemon's own process.
	ID int `json:"id,omitempty"`
	To int `json:"to,omitempty"`
	// Color tags the invoked message (invoke; 0 = colorless).
	Color int `json:"color,omitempty"`
	// Key is the message's ordering domain (invoke; 0 = the global
	// unkeyed domain). Only meaningful against a sharded daemon, but
	// always carried faithfully.
	Key uint64 `json:"key,omitempty"`
	// Delivered is the target local delivery count (wait).
	Delivered int `json:"delivered,omitempty"`
	// TimeoutMS bounds a wait (default 10s).
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// DowntimeMS is the crash's downtime before auto-restart.
	DowntimeMS int `json:"downtime_ms,omitempty"`
}

// EventRec is one user-visible event in an events response.
type EventRec struct {
	Msg  int `json:"msg"`
	Kind int `json:"kind"`
}

// StatsRec bundles the daemon's protocol, transport, and mesh tallies.
type StatsRec struct {
	Protocol  protocol.Stats     `json:"protocol"`
	Transport transport.Counters `json:"transport"`
	Mesh      netmesh.Counters   `json:"mesh"`
}

// ChannelRec describes one open channel in a channels response.
type ChannelRec struct {
	Name  string `json:"name"`
	ID    uint32 `json:"id"`
	Proto string `json:"proto"`
	Spec  string `json:"spec,omitempty"`
	Class string `json:"class"`
}

// CodeUnknownChannel is the machine-readable Response.Code for an op
// addressed to a channel the daemon has not opened; the client turns
// it back into a typed *UnknownChannelError.
const CodeUnknownChannel = "unknown-channel"

// Response is one server line. OK=false carries Error; the data fields
// are filled per-op.
type Response struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// Code is a machine-readable error discriminator (CodeUnknownChannel)
	// so typed errors survive the JSON round trip.
	Code string `json:"code,omitempty"`
	// Proc, Procs, and Proto describe the daemon (ping).
	Proc  int    `json:"proc,omitempty"`
	Procs int    `json:"procs,omitempty"`
	Proto string `json:"proto,omitempty"`
	// Events is the process's user-visible log; Delivered its delivery
	// sequence (events).
	Events    []EventRec `json:"events,omitempty"`
	Delivered []int      `json:"delivered,omitempty"`
	// Stats is the tally bundle (stats).
	Stats *StatsRec `json:"stats,omitempty"`
	// Class is the classifier's verdict on an opened channel's spec
	// (open); Channels the open-channel inventory (channels).
	Class    string       `json:"class,omitempty"`
	Channels []ChannelRec `json:"channels,omitempty"`
}

// ErrUnknownChannel reports an operation addressed to a multiplexed
// channel the daemon has not opened — the client-side mirror of
// chanmux.ErrUnknownChannel across the RPC boundary. Check with
// errors.Is; the wrapped *UnknownChannelError carries the name.
var ErrUnknownChannel = errors.New("modrpc: unknown channel")

// UnknownChannelError details which channel an op failed to resolve.
type UnknownChannelError struct {
	// Channel is the name the request addressed; Op the operation.
	Channel string
	Op      string
}

// Error formats the failure.
func (e *UnknownChannelError) Error() string {
	return fmt.Sprintf("modrpc: %s: unknown channel %q", e.Op, e.Channel)
}

// Is makes errors.Is(err, ErrUnknownChannel) match.
func (e *UnknownChannelError) Is(target error) bool { return target == ErrUnknownChannel }

// host is the per-channel surface the message-path ops run against: a
// standalone netmesh node and a multiplexed channel both satisfy it.
type host interface {
	Invoke(event.Message) error
	Events() []event.Event
	Deliveries() []event.MsgID
	Stats() protocol.Stats
	TransportCounters() transport.Counters
	WaitDeliveries(int, time.Duration) error
	Crash(time.Duration) error
}

// Server serves the client protocol for one netmesh node, or — when
// built with ServeMux — for a multi-tenant multiplexed daemon whose
// message-path ops are scoped per channel.
type Server struct {
	node *netmesh.Node
	mux  *chanmux.Mux
	ln   net.Listener

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
	shutdown chan struct{}
	shutOnce sync.Once
}

// Serve binds addr (":0" picks a port) and starts answering clients
// against node.
func Serve(addr string, node *netmesh.Node) (*Server, error) {
	return serve(addr, node, nil)
}

// ServeMux binds addr and starts answering clients against a
// multiplexed daemon: message-path ops route to the channel named in
// each request, and the open/close/channels verbs manage the tenant
// set.
func ServeMux(addr string, mux *chanmux.Mux) (*Server, error) {
	return serve(addr, nil, mux)
}

func serve(addr string, node *netmesh.Node, mux *chanmux.Mux) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		node:     node,
		mux:      mux,
		ln:       ln,
		conns:    make(map[net.Conn]struct{}),
		shutdown: make(chan struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound client address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// ShutdownRequested is closed when a client sends the shutdown op; the
// daemon's main loop selects on it.
func (s *Server) ShutdownRequested() <-chan struct{} { return s.shutdown }

// Close stops accepting and tears down live client connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := s.handle(req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// self and procs describe the daemon regardless of flavor.
func (s *Server) self() event.ProcID {
	if s.mux != nil {
		return s.mux.Self()
	}
	return s.node.Self()
}

func (s *Server) procs() int {
	if s.mux != nil {
		return s.mux.Procs()
	}
	return s.node.Procs()
}

// resolve routes a message-path op to its channel. On a multiplexed
// daemon the channel name is required and must be open; on a
// single-protocol daemon a channel-addressed request is an unknown
// channel by definition.
func (s *Server) resolve(channel string) (host, error) {
	if s.mux == nil {
		if channel != "" {
			return nil, fmt.Errorf("%w: %q (daemon is not multiplexed)", chanmux.ErrUnknownChannel, channel)
		}
		return s.node, nil
	}
	if channel == "" {
		return nil, fmt.Errorf("modrpc: a multiplexed daemon needs a channel on every message op")
	}
	return s.mux.Get(channel)
}

func (s *Server) handle(req Request) Response {
	fail := func(err error) Response {
		r := Response{Error: err.Error()}
		if errors.Is(err, chanmux.ErrUnknownChannel) {
			r.Code = CodeUnknownChannel
		}
		return r
	}
	switch req.Op {
	case "ping":
		proto := "mux"
		if s.mux == nil {
			proto = s.node.Proto()
		}
		return Response{OK: true, Proc: int(s.self()), Procs: s.procs(), Proto: proto}
	case "open":
		if s.mux == nil {
			return fail(fmt.Errorf("modrpc: open needs a multiplexed daemon"))
		}
		ch, err := s.mux.Open(chanmux.Spec{Name: req.Channel, Spec: req.Spec, Proto: req.Proto})
		if err != nil {
			return fail(err)
		}
		return Response{OK: true, Proto: ch.Proto(), Class: ch.Class().String()}
	case "close":
		if s.mux == nil {
			return fail(fmt.Errorf("modrpc: close needs a multiplexed daemon"))
		}
		if err := s.mux.CloseChannel(req.Channel); err != nil {
			return fail(err)
		}
		return Response{OK: true}
	case "channels":
		if s.mux == nil {
			return fail(fmt.Errorf("modrpc: channels needs a multiplexed daemon"))
		}
		infos := s.mux.Channels()
		recs := make([]ChannelRec, 0, len(infos))
		for _, in := range infos {
			recs = append(recs, ChannelRec{Name: in.Name, ID: in.ID, Proto: in.Proto,
				Spec: in.Spec, Class: in.Class})
		}
		return Response{OK: true, Channels: recs}
	case "invoke":
		h, err := s.resolve(req.Channel)
		if err != nil {
			return fail(err)
		}
		m := event.Message{
			ID:    event.MsgID(req.ID),
			From:  s.self(),
			To:    event.ProcID(req.To),
			Color: event.Color(req.Color),
			Key:   event.Key(req.Key),
		}
		if err := h.Invoke(m); err != nil {
			return fail(err)
		}
		return Response{OK: true}
	case "events":
		h, err := s.resolve(req.Channel)
		if err != nil {
			return fail(err)
		}
		var evs []EventRec
		for _, e := range h.Events() {
			evs = append(evs, EventRec{Msg: int(e.Msg), Kind: int(e.Kind)})
		}
		var del []int
		for _, id := range h.Deliveries() {
			del = append(del, int(id))
		}
		return Response{OK: true, Events: evs, Delivered: del}
	case "stats":
		h, err := s.resolve(req.Channel)
		if err != nil {
			return fail(err)
		}
		mesh := netmesh.Counters{}
		if s.mux != nil {
			mesh = s.mux.MeshCounters()
		} else {
			mesh = s.node.MeshCounters()
		}
		return Response{OK: true, Stats: &StatsRec{
			Protocol:  h.Stats(),
			Transport: h.TransportCounters(),
			Mesh:      mesh,
		}}
	case "wait":
		h, err := s.resolve(req.Channel)
		if err != nil {
			return fail(err)
		}
		timeout := 10 * time.Second
		if req.TimeoutMS > 0 {
			timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		}
		if err := h.WaitDeliveries(req.Delivered, timeout); err != nil {
			return fail(err)
		}
		return Response{OK: true}
	case "crash":
		h, err := s.resolve(req.Channel)
		if err != nil {
			return fail(err)
		}
		if err := h.Crash(time.Duration(req.DowntimeMS) * time.Millisecond); err != nil {
			return fail(err)
		}
		return Response{OK: true}
	case "shutdown":
		s.shutOnce.Do(func() { close(s.shutdown) })
		return Response{OK: true}
	default:
		return Response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// Client talks the protocol to one daemon. Methods are serialized —
// the protocol is strictly request/response per connection.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	dec  *json.Decoder
	enc  *json.Encoder
}

// Dial connects to a daemon's client socket.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &Client{
		conn: conn,
		dec:  json.NewDecoder(bufio.NewReader(conn)),
		enc:  json.NewEncoder(conn),
	}, nil
}

// Close drops the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) do(req Request, readTimeout time.Duration) (Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.conn.SetDeadline(time.Now().Add(readTimeout))
	if err := c.enc.Encode(req); err != nil {
		return Response{}, err
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return Response{}, err
	}
	if !resp.OK {
		if resp.Code == CodeUnknownChannel {
			return resp, &UnknownChannelError{Channel: req.Channel, Op: req.Op}
		}
		return resp, fmt.Errorf("%s: %s", req.Op, resp.Error)
	}
	return resp, nil
}

const rpcSlack = 5 * time.Second

// Ping returns the daemon's identity.
func (c *Client) Ping() (Response, error) {
	return c.do(Request{Op: "ping"}, rpcSlack)
}

// Invoke places user message id at the daemon, addressed to proc to.
func (c *Client) Invoke(id int, to event.ProcID, color event.Color) error {
	return c.InvokeKeyed(id, to, color, event.NoKey)
}

// InvokeKeyed places user message id in ordering domain key at the
// daemon, addressed to proc to.
func (c *Client) InvokeKeyed(id int, to event.ProcID, color event.Color, key event.Key) error {
	_, err := c.do(Request{Op: "invoke", ID: id, To: int(to), Color: int(color), Key: uint64(key)}, rpcSlack)
	return err
}

// decodeEvents turns an events response into the typed log + delivery
// sequence.
func decodeEvents(resp Response) ([]event.Event, []event.MsgID, error) {
	evs := make([]event.Event, 0, len(resp.Events))
	for _, r := range resp.Events {
		e := event.Event{Msg: event.MsgID(r.Msg), Kind: event.Kind(r.Kind)}
		if !e.Kind.Valid() {
			return nil, nil, fmt.Errorf("events: invalid kind %d", r.Kind)
		}
		evs = append(evs, e)
	}
	del := make([]event.MsgID, 0, len(resp.Delivered))
	for _, id := range resp.Delivered {
		del = append(del, event.MsgID(id))
	}
	return evs, del, nil
}

// Events fetches the daemon's user-visible event log and delivery
// sequence.
func (c *Client) Events() ([]event.Event, []event.MsgID, error) {
	resp, err := c.do(Request{Op: "events"}, rpcSlack)
	if err != nil {
		return nil, nil, err
	}
	return decodeEvents(resp)
}

// Stats fetches the daemon's tally bundle.
func (c *Client) Stats() (StatsRec, error) {
	resp, err := c.do(Request{Op: "stats"}, rpcSlack)
	if err != nil {
		return StatsRec{}, err
	}
	if resp.Stats == nil {
		return StatsRec{}, fmt.Errorf("stats: empty response")
	}
	return *resp.Stats, nil
}

// Wait blocks until the daemon has delivered at least k messages.
func (c *Client) Wait(k int, timeout time.Duration) error {
	_, err := c.do(Request{Op: "wait", Delivered: k, TimeoutMS: int(timeout / time.Millisecond)},
		timeout+rpcSlack)
	return err
}

// Crash tears the daemon's protocol instance down for downtime, after
// which it auto-restarts from its WAL.
func (c *Client) Crash(downtime time.Duration) error {
	_, err := c.do(Request{Op: "crash", DowntimeMS: int(downtime / time.Millisecond)}, rpcSlack)
	return err
}

// Shutdown asks the daemon to exit gracefully.
func (c *Client) Shutdown() error {
	_, err := c.do(Request{Op: "shutdown"}, rpcSlack)
	return err
}

// OpenChannel opens a multiplexed channel on the daemon (spec is its
// forbidden-predicate specification, proto an optional forced catalog
// protocol) and returns the protocol chosen to serve it and the
// classifier's verdict on the spec.
func (c *Client) OpenChannel(name, spec, proto string) (chosenProto, class string, err error) {
	resp, err := c.do(Request{Op: "open", Channel: name, Spec: spec, Proto: proto}, rpcSlack)
	if err != nil {
		return "", "", err
	}
	return resp.Proto, resp.Class, nil
}

// CloseChannel closes a multiplexed channel at the daemon.
func (c *Client) CloseChannel(name string) error {
	_, err := c.do(Request{Op: "close", Channel: name}, rpcSlack)
	return err
}

// Channels lists the daemon's open channels, sorted by name.
func (c *Client) Channels() ([]ChannelRec, error) {
	resp, err := c.do(Request{Op: "channels"}, rpcSlack)
	if err != nil {
		return nil, err
	}
	return resp.Channels, nil
}

// ChannelInvoke places user message id on one multiplexed channel. An
// unknown channel yields a typed *UnknownChannelError (errors.Is
// ErrUnknownChannel), round-tripped through the wire code.
func (c *Client) ChannelInvoke(channel string, id int, to event.ProcID, color event.Color) error {
	_, err := c.do(Request{Op: "invoke", Channel: channel, ID: id, To: int(to), Color: int(color)}, rpcSlack)
	return err
}

// ChannelEvents fetches one channel's user-visible log and delivery
// sequence.
func (c *Client) ChannelEvents(channel string) ([]event.Event, []event.MsgID, error) {
	resp, err := c.do(Request{Op: "events", Channel: channel}, rpcSlack)
	if err != nil {
		return nil, nil, err
	}
	return decodeEvents(resp)
}

// ChannelWait blocks until one channel has delivered at least k
// messages at the daemon.
func (c *Client) ChannelWait(channel string, k int, timeout time.Duration) error {
	_, err := c.do(Request{Op: "wait", Channel: channel, Delivered: k,
		TimeoutMS: int(timeout / time.Millisecond)}, timeout+rpcSlack)
	return err
}

// ChannelCrash crashes one channel's protocol instance for downtime;
// its siblings on the daemon keep running.
func (c *Client) ChannelCrash(channel string, downtime time.Duration) error {
	_, err := c.do(Request{Op: "crash", Channel: channel,
		DowntimeMS: int(downtime / time.Millisecond)}, rpcSlack)
	return err
}

// ChannelStats fetches one channel's tally bundle (the mesh counters
// are the shared carrier's).
func (c *Client) ChannelStats(channel string) (StatsRec, error) {
	resp, err := c.do(Request{Op: "stats", Channel: channel}, rpcSlack)
	if err != nil {
		return StatsRec{}, err
	}
	if resp.Stats == nil {
		return StatsRec{}, fmt.Errorf("stats: empty response")
	}
	return *resp.Stats, nil
}

// Router maps ordering keys onto a fleet of daemon meshes with the
// same consistent-hash ring the sharded runtime uses internally, so
// every driver routes a given key to the same mesh regardless of
// which driver computed the route. Clients are indexed by their ring
// position; growing the fleet re-homes only ~1/n of the keyspace.
//
// The router also carries a membership epoch: every fleet transition
// (join, administrative eviction) bumps it, and drivers holding a
// route computed under an older view can detect the staleness with
// ForEpoch instead of silently invoking through a departed daemon.
type Router struct {
	mu       sync.RWMutex
	epoch    uint64
	ring     *shard.Ring
	clients  []*Client
	departed []bool
}

// ErrStaleEpoch reports a keyed route computed against an older fleet
// view than the router's current one. Check with errors.Is; the
// wrapped *StaleEpochError carries both epochs.
var ErrStaleEpoch = errors.New("modrpc: stale membership epoch")

// ErrDeparted reports a route landing on a fleet member that has been
// evicted from the current view.
var ErrDeparted = errors.New("modrpc: daemon departed the fleet")

// StaleEpochError details an epoch mismatch on a keyed invoke.
type StaleEpochError struct {
	// Have is the epoch the caller routed under; Want the router's.
	Have, Want uint64
}

// Error formats the mismatch.
func (e *StaleEpochError) Error() string {
	return fmt.Sprintf("modrpc: stale membership epoch %d, fleet is at %d", e.Have, e.Want)
}

// Is makes errors.Is(err, ErrStaleEpoch) match.
func (e *StaleEpochError) Is(target error) bool { return target == ErrStaleEpoch }

// NewRouter builds a router over the daemon fleet at epoch 0. The
// client order is the ring order: every driver must list the fleet
// identically.
func NewRouter(clients []*Client) *Router {
	return &Router{ring: shard.NewRing(len(clients), 0), clients: clients,
		departed: make([]bool, len(clients))}
}

// Index returns the fleet index that owns key k.
func (r *Router) Index(k event.Key) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.ring.Daemon(k)
}

// For returns the client for the daemon mesh that owns key k. It is
// the epoch-unaware legacy route: a departed owner is returned as-is,
// matching the static-fleet contract. Epoch-aware drivers use
// ForEpoch.
func (r *Router) For(k event.Key) *Client {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.clients[r.ring.Daemon(k)]
}

// Epoch returns the router's current membership epoch.
func (r *Router) Epoch() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.epoch
}

// Join appends a daemon to the ring (re-homing ~1/n of the keyspace)
// and bumps the epoch.
func (r *Router) Join(c *Client) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.clients = append(r.clients, c)
	r.departed = append(r.departed, false)
	r.ring = shard.NewRing(len(r.clients), 0)
	r.epoch++
	return r.epoch
}

// Evict marks fleet index i departed and bumps the epoch. The ring
// keeps its shape — keys still hash to the departed slot so that
// surviving drivers get ErrDeparted instead of a silently re-homed
// route the rest of the fleet doesn't agree on.
func (r *Router) Evict(i int) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i >= 0 && i < len(r.departed) {
		r.departed[i] = true
	}
	r.epoch++
	return r.epoch
}

// ForEpoch returns the client owning key k iff the caller's epoch
// matches the router's current view. A stale epoch yields a typed
// *StaleEpochError (errors.Is ErrStaleEpoch); a route landing on an
// evicted member yields ErrDeparted.
func (r *Router) ForEpoch(k event.Key, epoch uint64) (*Client, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if epoch != r.epoch {
		return nil, &StaleEpochError{Have: epoch, Want: r.epoch}
	}
	i := r.ring.Daemon(k)
	if r.departed[i] {
		return nil, fmt.Errorf("%w: index %d owns key %d", ErrDeparted, i, k)
	}
	return r.clients[i], nil
}
