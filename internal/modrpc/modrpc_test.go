package modrpc

import (
	"strings"
	"testing"
	"time"

	"msgorder/internal/event"
	"msgorder/internal/netmesh"
	"msgorder/internal/protocols/causal"
	"msgorder/internal/transport"
	"msgorder/internal/userview"
)

// startPair boots a 2-process in-process mesh with an RPC server and
// client per node.
func startPair(t *testing.T) ([]*netmesh.Node, []*Client) {
	t.Helper()
	addrs := make([]string, 2)
	for i := range addrs {
		m, err := netmesh.NewMesh(netmesh.MeshConfig{Self: 0, Addrs: []string{"127.0.0.1:0"}},
			func([]transport.Envelope) {})
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = m.Addr()
		m.Close()
	}
	fp := netmesh.Fingerprint("causal-rst", "causal-b2", 2)
	nodes := make([]*netmesh.Node, 2)
	clients := make([]*Client, 2)
	for i := range nodes {
		node, err := netmesh.NewNode(netmesh.NodeConfig{
			Self: event.ProcID(i), Procs: 2, Maker: causal.RSTMaker,
			Mesh:      netmesh.MeshConfig{Addrs: addrs, Fingerprint: fp, Seed: int64(i + 1)},
			Transport: transport.Config{RTO: 2 * time.Millisecond, MaxRTO: 30 * time.Millisecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		t.Cleanup(func() { node.Close() })
		srv, err := Serve("127.0.0.1:0", node)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		c, err := Dial(srv.Addr(), 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
		t.Cleanup(func() { c.Close() })
	}
	return nodes, clients
}

func TestRPCDrivesWorkloadEndToEnd(t *testing.T) {
	_, clients := startPair(t)

	pong, err := clients[1].Ping()
	if err != nil {
		t.Fatal(err)
	}
	if pong.Proc != 1 || pong.Procs != 2 || pong.Proto != "causal-rst" {
		t.Fatalf("ping = %+v", pong)
	}

	// A small lockstep workload, driven purely over the wire protocol.
	msgs := []event.Message{
		{ID: 0, From: 0, To: 1}, {ID: 1, From: 1, To: 0}, {ID: 2, From: 0, To: 1},
	}
	want := make([]int, 2)
	for _, m := range msgs {
		if err := clients[m.From].Invoke(int(m.ID), m.To, m.Color); err != nil {
			t.Fatal(err)
		}
		want[m.To]++
		if err := clients[m.To].Wait(want[m.To], 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}

	procEvents := make([][]event.Event, 2)
	for p, c := range clients {
		evs, del, err := c.Events()
		if err != nil {
			t.Fatal(err)
		}
		procEvents[p] = evs
		if len(del) != want[p] {
			t.Fatalf("P%d delivered %v, want %d messages", p, del, want[p])
		}
	}
	v, err := userview.New(msgs, procEvents)
	if err != nil {
		t.Fatalf("RPC-assembled view invalid: %v", err)
	}
	if !v.IsComplete() || !v.InCO() {
		t.Fatal("RPC-driven run incomplete or out of causal order")
	}

	st, err := clients[0].Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Protocol.UserMessages == 0 || st.Mesh.FramesOut == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
}

func TestRPCCrashAndShutdown(t *testing.T) {
	nodes, clients := startPair(t)
	if err := clients[1].Crash(10 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if nodes[1].Stats().Recoveries == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if s := nodes[1].Stats(); s.Crashes != 1 || s.Recoveries != 1 {
		t.Fatalf("crashes/recoveries = %d/%d, want 1/1", s.Crashes, s.Recoveries)
	}

	srv, err := Serve("127.0.0.1:0", nodes[0])
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-srv.ShutdownRequested():
	case <-time.After(2 * time.Second):
		t.Fatal("shutdown op did not trip the server's shutdown channel")
	}
}

func TestRPCRejectsUnknownOp(t *testing.T) {
	nodes, _ := startPair(t)
	srv, err := Serve("127.0.0.1:0", nodes[0])
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.do(Request{Op: "frobnicate"}, time.Second)
	if err == nil || !strings.Contains(err.Error(), "unknown op") {
		t.Fatalf("unknown op error = %v", err)
	}
}
