package modrpc

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"msgorder/internal/chanmux"
	"msgorder/internal/event"
	"msgorder/internal/netmesh"
	"msgorder/internal/protocols/causal"
	"msgorder/internal/transport"
	"msgorder/internal/userview"
)

// startPair boots a 2-process in-process mesh with an RPC server and
// client per node.
func startPair(t *testing.T) ([]*netmesh.Node, []*Client) {
	t.Helper()
	addrs := make([]string, 2)
	for i := range addrs {
		m, err := netmesh.NewMesh(netmesh.MeshConfig{Self: 0, Addrs: []string{"127.0.0.1:0"}},
			func([]transport.Envelope) {})
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = m.Addr()
		m.Close()
	}
	fp := netmesh.Fingerprint("causal-rst", "causal-b2", 2)
	nodes := make([]*netmesh.Node, 2)
	clients := make([]*Client, 2)
	for i := range nodes {
		node, err := netmesh.NewNode(netmesh.NodeConfig{
			Self: event.ProcID(i), Procs: 2, Maker: causal.RSTMaker,
			Mesh:      netmesh.MeshConfig{Addrs: addrs, Fingerprint: fp, Seed: int64(i + 1)},
			Transport: transport.Config{RTO: 2 * time.Millisecond, MaxRTO: 30 * time.Millisecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		t.Cleanup(func() { node.Close() })
		srv, err := Serve("127.0.0.1:0", node)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		c, err := Dial(srv.Addr(), 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
		t.Cleanup(func() { c.Close() })
	}
	return nodes, clients
}

func TestRPCDrivesWorkloadEndToEnd(t *testing.T) {
	_, clients := startPair(t)

	pong, err := clients[1].Ping()
	if err != nil {
		t.Fatal(err)
	}
	if pong.Proc != 1 || pong.Procs != 2 || pong.Proto != "causal-rst" {
		t.Fatalf("ping = %+v", pong)
	}

	// A small lockstep workload, driven purely over the wire protocol.
	msgs := []event.Message{
		{ID: 0, From: 0, To: 1}, {ID: 1, From: 1, To: 0}, {ID: 2, From: 0, To: 1},
	}
	want := make([]int, 2)
	for _, m := range msgs {
		if err := clients[m.From].Invoke(int(m.ID), m.To, m.Color); err != nil {
			t.Fatal(err)
		}
		want[m.To]++
		if err := clients[m.To].Wait(want[m.To], 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}

	procEvents := make([][]event.Event, 2)
	for p, c := range clients {
		evs, del, err := c.Events()
		if err != nil {
			t.Fatal(err)
		}
		procEvents[p] = evs
		if len(del) != want[p] {
			t.Fatalf("P%d delivered %v, want %d messages", p, del, want[p])
		}
	}
	v, err := userview.New(msgs, procEvents)
	if err != nil {
		t.Fatalf("RPC-assembled view invalid: %v", err)
	}
	if !v.IsComplete() || !v.InCO() {
		t.Fatal("RPC-driven run incomplete or out of causal order")
	}

	st, err := clients[0].Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Protocol.UserMessages == 0 || st.Mesh.FramesOut == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
}

func TestRPCCrashAndShutdown(t *testing.T) {
	nodes, clients := startPair(t)
	if err := clients[1].Crash(10 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if nodes[1].Stats().Recoveries == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if s := nodes[1].Stats(); s.Crashes != 1 || s.Recoveries != 1 {
		t.Fatalf("crashes/recoveries = %d/%d, want 1/1", s.Crashes, s.Recoveries)
	}

	srv, err := Serve("127.0.0.1:0", nodes[0])
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-srv.ShutdownRequested():
	case <-time.After(2 * time.Second):
		t.Fatal("shutdown op did not trip the server's shutdown channel")
	}
}

func TestRPCRejectsUnknownOp(t *testing.T) {
	nodes, _ := startPair(t)
	srv, err := Serve("127.0.0.1:0", nodes[0])
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.do(Request{Op: "frobnicate"}, time.Second)
	if err == nil || !strings.Contains(err.Error(), "unknown op") {
		t.Fatalf("unknown op error = %v", err)
	}
}

// startMuxPair boots a 2-process multiplexed mesh with an RPC server
// and client per process.
func startMuxPair(t *testing.T) ([]*chanmux.Mux, []*Client) {
	t.Helper()
	addrs := make([]string, 2)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	muxes := make([]*chanmux.Mux, 2)
	clients := make([]*Client, 2)
	for i := range muxes {
		m, err := chanmux.New(chanmux.Config{
			Self: event.ProcID(i), Procs: 2,
			Mesh:      netmesh.MeshConfig{Addrs: addrs, Seed: int64(i + 1)},
			Transport: transport.Config{RTO: 2 * time.Millisecond, MaxRTO: 30 * time.Millisecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		muxes[i] = m
		t.Cleanup(func() { m.Close() })
		srv, err := ServeMux("127.0.0.1:0", m)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		c, err := Dial(srv.Addr(), 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
		t.Cleanup(func() { c.Close() })
	}
	return muxes, clients
}

// TestUnknownChannelRoundTrips is the typed-error contract: an op
// addressed to an unopened channel must come back through the JSON
// protocol as a *UnknownChannelError matching ErrUnknownChannel — on a
// multiplexed daemon and on a single-protocol daemon alike.
func TestUnknownChannelRoundTrips(t *testing.T) {
	_, muxClients := startMuxPair(t)
	err := muxClients[0].ChannelInvoke("ghost", 0, 1, 0)
	if !errors.Is(err, ErrUnknownChannel) {
		t.Fatalf("mux daemon: err = %v, want ErrUnknownChannel", err)
	}
	var uc *UnknownChannelError
	if !errors.As(err, &uc) || uc.Channel != "ghost" || uc.Op != "invoke" {
		t.Fatalf("mux daemon: typed detail = %+v", uc)
	}
	if err := muxClients[0].ChannelCrash("ghost", 0); !errors.Is(err, ErrUnknownChannel) {
		t.Fatalf("crash on unknown channel: %v", err)
	}
	if err := muxClients[0].CloseChannel("ghost"); !errors.Is(err, ErrUnknownChannel) {
		t.Fatalf("close of unknown channel: %v", err)
	}

	// A single-protocol daemon treats any channel-addressed op the same
	// way: it has no channels at all.
	_, plainClients := startPair(t)
	err = plainClients[0].ChannelInvoke("orders", 0, 1, 0)
	if !errors.Is(err, ErrUnknownChannel) {
		t.Fatalf("plain daemon: err = %v, want ErrUnknownChannel", err)
	}
}

// TestMuxRPCDrivesChannels drives the multi-tenant verbs end to end:
// open two channels with different guarantee levels over one daemon
// pair, invoke and wait per channel, list the inventory, read back
// per-channel views, and close.
func TestMuxRPCDrivesChannels(t *testing.T) {
	_, clients := startMuxPair(t)
	for i, c := range clients {
		resp, err := c.Ping()
		if err != nil {
			t.Fatal(err)
		}
		if resp.Proto != "mux" || resp.Proc != i || resp.Procs != 2 {
			t.Fatalf("ping = %+v", resp)
		}
		proto, class, err := c.OpenChannel("logs", "", "")
		if err != nil {
			t.Fatal(err)
		}
		if proto != "tagless" || class != "tagless" {
			t.Fatalf("logs opened as %s/%s", proto, class)
		}
		proto, class, err = c.OpenChannel("orders", "causal-b2", "")
		if err != nil {
			t.Fatal(err)
		}
		if proto != "causal-rst" || class != "tagged" {
			t.Fatalf("orders opened as %s/%s", proto, class)
		}
	}
	for i := 0; i < 5; i++ {
		if err := clients[0].ChannelInvoke("orders", i, 1, 0); err != nil {
			t.Fatal(err)
		}
		if err := clients[0].ChannelInvoke("logs", i, 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	for _, ch := range []string{"orders", "logs"} {
		if err := clients[1].ChannelWait(ch, 5, 10*time.Second); err != nil {
			t.Fatalf("%s: %v", ch, err)
		}
		_, del, err := clients[1].ChannelEvents(ch)
		if err != nil {
			t.Fatal(err)
		}
		if len(del) != 5 {
			t.Fatalf("%s delivered %d, want 5", ch, len(del))
		}
	}
	chans, err := clients[0].Channels()
	if err != nil {
		t.Fatal(err)
	}
	if len(chans) != 2 || chans[0].Name != "logs" || chans[1].Name != "orders" {
		t.Fatalf("channels = %+v", chans)
	}
	st, err := clients[0].ChannelStats("logs")
	if err != nil {
		t.Fatal(err)
	}
	if st.Protocol.UserTagBytes != 0 || st.Protocol.ControlMessages != 0 {
		t.Fatalf("tagless channel paid overhead over RPC: %+v", st.Protocol)
	}
	if err := clients[0].CloseChannel("logs"); err != nil {
		t.Fatal(err)
	}
	if err := clients[0].ChannelWait("logs", 1, time.Second); !errors.Is(err, ErrUnknownChannel) {
		t.Fatalf("wait on closed channel: %v", err)
	}
}
