package transport

import (
	"testing"

	"msgorder/internal/event"
)

// TestOneWayPartitionDirectional checks that an asymmetric cut mutes
// exactly the From→To direction and leaves the reverse path untouched.
func TestOneWayPartitionDirectional(t *testing.T) {
	in := NewInjector(FaultPlan{
		OneWay: []OneWayPartition{{From: []event.ProcID{2}, To: []event.ProcID{0, 1}, Heal: -1}},
		Seed:   7,
	})
	for i := 0; i < 50; i++ {
		if got := in.Decide(2, 0); got != Drop {
			t.Fatalf("muted direction 2->0: decide=%v, want Drop", got)
		}
		if got := in.Decide(2, 1); got != Drop {
			t.Fatalf("muted direction 2->1: decide=%v, want Drop", got)
		}
		if got := in.Decide(0, 2); got != Deliver {
			t.Fatalf("reverse direction 0->2: decide=%v, want Deliver", got)
		}
		if got := in.Decide(1, 0); got != Deliver {
			t.Fatalf("unrelated pair 1->0: decide=%v, want Deliver", got)
		}
	}
	c := in.Counters()
	if c.OneWayDrops != 100 {
		t.Fatalf("OneWayDrops = %d, want 100", c.OneWayDrops)
	}
	if c.Total() != 100 {
		t.Fatalf("Total = %d, want 100", c.Total())
	}
}

// TestOneWayPartitionHealBudget checks finite budgets heal and a
// negative budget never does.
func TestOneWayPartitionHealBudget(t *testing.T) {
	in := NewInjector(FaultPlan{
		OneWay: []OneWayPartition{{From: []event.ProcID{0}, To: []event.ProcID{1}, Heal: 3}},
		Seed:   7,
	})
	for i := 0; i < 3; i++ {
		if got := in.Decide(0, 1); got != Drop {
			t.Fatalf("drop %d: decide=%v, want Drop", i, got)
		}
	}
	if got := in.Decide(0, 1); got != Deliver {
		t.Fatalf("after budget exhausted: decide=%v, want Deliver", got)
	}

	perm := NewInjector(FaultPlan{
		OneWay: []OneWayPartition{{From: []event.ProcID{0}, To: []event.ProcID{1}, Heal: -1}},
		Seed:   7,
	})
	for i := 0; i < 1000; i++ {
		if got := perm.Decide(0, 1); got != Drop {
			t.Fatalf("permanent cut healed at drop %d", i)
		}
	}
}

// TestCutOneWayDynamic arms a cut mid-run and heals it again.
func TestCutOneWayDynamic(t *testing.T) {
	in := NewInjector(FaultPlan{Seed: 7})
	if got := in.Decide(2, 0); got != Deliver {
		t.Fatalf("before cut: decide=%v, want Deliver", got)
	}
	in.CutOneWay([]event.ProcID{2}, []event.ProcID{0, 1}, -1)
	if got := in.Decide(2, 0); got != Drop {
		t.Fatalf("after cut 2->0: decide=%v, want Drop", got)
	}
	if got := in.Decide(0, 2); got != Deliver {
		t.Fatalf("after cut 0->2: decide=%v, want Deliver", got)
	}
	in.HealOneWay()
	if got := in.Decide(2, 0); got != Deliver {
		t.Fatalf("after heal: decide=%v, want Deliver", got)
	}
}

// TestCutChanOneWayScopedToChannel checks channel-scoped asymmetric
// cuts: only transmissions stamped with the cut's channel ID are muted;
// sibling channels on the same direction — and legacy Decide calls,
// which carry the default channel 0 — keep flowing. A legacy CutOneWay
// in the same injector still mutes every channel.
func TestCutChanOneWayScopedToChannel(t *testing.T) {
	in := NewInjector(FaultPlan{Seed: 7})
	const lame, healthy = uint32(7), uint32(9)
	in.CutChanOneWay([]event.ProcID{0}, []event.ProcID{1}, lame, -1)
	for i := 0; i < 50; i++ {
		if got := in.DecideChan(0, 1, lame); got != Drop {
			t.Fatalf("cut channel 0->1: decide=%v, want Drop", got)
		}
		if got := in.DecideChan(0, 1, healthy); got != Deliver {
			t.Fatalf("sibling channel 0->1: decide=%v, want Deliver", got)
		}
		if got := in.DecideChan(1, 0, lame); got != Deliver {
			t.Fatalf("reverse direction 1->0: decide=%v, want Deliver", got)
		}
		if got := in.Decide(0, 1); got != Deliver {
			t.Fatalf("default channel 0->1: decide=%v, want Deliver", got)
		}
	}
	if c := in.Counters(); c.OneWayDrops != 50 {
		t.Fatalf("OneWayDrops = %d, want 50", c.OneWayDrops)
	}
	// A legacy (channel-blind) cut layered on top mutes every channel.
	in.CutOneWay([]event.ProcID{0}, []event.ProcID{1}, -1)
	if got := in.DecideChan(0, 1, healthy); got != Drop {
		t.Fatalf("legacy cut, healthy channel: decide=%v, want Drop", got)
	}
	in.HealOneWay()
	if got := in.DecideChan(0, 1, lame); got != Deliver {
		t.Fatalf("after heal: decide=%v, want Deliver", got)
	}
}

// TestZonesCrossZonePenalty checks the geo tiers: cross-zone
// transmissions suffer the extra drop/delay probabilities,
// intra-zone ones never do.
func TestZonesCrossZonePenalty(t *testing.T) {
	in := NewInjector(FaultPlan{
		Zones:          [][]event.ProcID{{0}, {1, 2}},
		CrossZoneDelay: 0.5,
		CrossZoneDrop:  0.2,
		Seed:           11,
	})
	cross, intra := 0, 0
	for i := 0; i < 400; i++ {
		if in.Decide(0, 1) != Deliver {
			cross++
		}
		if in.Decide(1, 2) != Deliver {
			intra++
		}
	}
	if intra != 0 {
		t.Fatalf("intra-zone faults = %d, want 0", intra)
	}
	// 400 draws at 0.7 total penalty: expect ~280 faults.
	if cross < 200 || cross > 360 {
		t.Fatalf("cross-zone faults = %d, want roughly 280", cross)
	}
	if c := in.Counters(); c.ZoneFaults != cross {
		t.Fatalf("ZoneFaults = %d, want %d", c.ZoneFaults, cross)
	}
}

// TestSlowLinkBidirectional checks a named slow link degrades both
// directions of its pair and no other.
func TestSlowLinkBidirectional(t *testing.T) {
	in := NewInjector(FaultPlan{
		SlowLinks: []SlowLink{{A: 0, B: 2, DelayProb: 0.6, DropProb: 0.2}},
		Seed:      13,
	})
	ab, ba, other := 0, 0, 0
	for i := 0; i < 400; i++ {
		if in.Decide(0, 2) != Deliver {
			ab++
		}
		if in.Decide(2, 0) != Deliver {
			ba++
		}
		if in.Decide(0, 1) != Deliver {
			other++
		}
	}
	if other != 0 {
		t.Fatalf("off-link faults = %d, want 0", other)
	}
	if ab < 240 || ba < 240 {
		t.Fatalf("slow-link faults ab=%d ba=%d, want roughly 320 each", ab, ba)
	}
	if c := in.Counters(); c.LinkFaults != ab+ba {
		t.Fatalf("LinkFaults = %d, want %d", c.LinkFaults, ab+ba)
	}
}

// TestTopologyPlanEnabled checks Enabled() sees the new plan shapes.
func TestTopologyPlanEnabled(t *testing.T) {
	if (FaultPlan{}).Enabled() {
		t.Fatal("zero plan reported enabled")
	}
	cases := []FaultPlan{
		{OneWay: []OneWayPartition{{From: []event.ProcID{0}, To: []event.ProcID{1}}}},
		{SlowLinks: []SlowLink{{A: 0, B: 1, DropProb: 0.1}}},
		{Zones: [][]event.ProcID{{0}, {1}}, CrossZoneDelay: 0.1},
	}
	for i, p := range cases {
		if !p.Enabled() {
			t.Fatalf("case %d: plan not reported enabled", i)
		}
	}
}
