package transport

import (
	"sync"
	"testing"
	"time"

	"msgorder/internal/event"
	"msgorder/internal/protocol"
)

func noSend(Envelope) {}

func wire(msg event.MsgID) protocol.Wire {
	return protocol.Wire{Kind: protocol.UserWire, Msg: msg}
}

func TestWrapSequencesPerChannel(t *testing.T) {
	r := NewReliable(Config{}, noSend)
	defer r.Close()
	a := r.Wrap(0, 1, wire(0))
	b := r.Wrap(0, 1, wire(1))
	c := r.Wrap(1, 0, wire(2))
	if a.Seq != 1 || b.Seq != 2 {
		t.Fatalf("channel 0->1 seqs = %d, %d, want 1, 2", a.Seq, b.Seq)
	}
	if c.Seq != 1 {
		t.Fatalf("channel 1->0 starts at %d, want 1", c.Seq)
	}
	if a.Kind != Data || a.Src != 0 || a.Dst != 1 {
		t.Fatalf("envelope = %+v", a)
	}
	if r.Pending() != 3 {
		t.Fatalf("pending = %d, want 3", r.Pending())
	}
}

func TestAcceptDedups(t *testing.T) {
	r := NewReliable(Config{}, noSend)
	defer r.Close()
	e := r.Wrap(0, 1, wire(0))
	if !r.Accept(e) {
		t.Fatal("first copy must be fresh")
	}
	if r.Accept(e) {
		t.Fatal("second copy must be absorbed")
	}
	if r.Accept(e) {
		t.Fatal("third copy must be absorbed")
	}
	if c := r.Counters(); c.DupsDropped != 2 || c.Sent != 1 {
		t.Fatalf("counters = %+v", c)
	}
	// Same seq on the reverse channel is a different envelope.
	rev := r.Wrap(1, 0, wire(1))
	if !r.Accept(rev) {
		t.Fatal("reverse-channel envelope must be fresh")
	}
}

func TestAckClearsPending(t *testing.T) {
	r := NewReliable(Config{}, noSend)
	defer r.Close()
	e := r.Wrap(0, 1, wire(0))
	ack := AckFor(e)
	if ack.Src != 1 || ack.Dst != 0 || ack.Seq != e.Seq || ack.Kind != Ack {
		t.Fatalf("ack = %+v", ack)
	}
	r.Ack(ack)
	if r.Pending() != 0 {
		t.Fatalf("pending = %d after ack", r.Pending())
	}
	r.Ack(ack) // idempotent
	if c := r.Counters(); c.AcksReceived != 2 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestRetransmitsUntilAcked(t *testing.T) {
	sent := make(chan Envelope, 64)
	r := NewReliable(
		Config{RTO: 2 * time.Millisecond, MaxRTO: 8 * time.Millisecond, Tick: 500 * time.Microsecond},
		func(e Envelope) { sent <- e },
	)
	defer r.Close()
	e := r.Wrap(0, 1, wire(0))

	// Unacked: at least two retransmissions must fire.
	deadline := time.After(2 * time.Second)
	for i := 0; i < 2; i++ {
		select {
		case re := <-sent:
			if re.Seq != e.Seq || re.Attempt == 0 {
				t.Fatalf("resend = %+v", re)
			}
		case <-deadline:
			t.Fatal("no retransmission within 2s")
		}
	}
	if c := r.Counters(); c.Retransmits < 2 {
		t.Fatalf("retransmits = %d, want >= 2", c.Retransmits)
	}

	// Acked: retransmissions stop (allow one already in flight).
	r.Ack(AckFor(e))
	drainUntilQuiet(t, sent, 50*time.Millisecond)
	if r.Pending() != 0 {
		t.Fatalf("pending = %d after ack", r.Pending())
	}
}

// drainUntilQuiet consumes envelopes until none arrive for the window.
func drainUntilQuiet(t *testing.T, ch <-chan Envelope, quiet time.Duration) {
	t.Helper()
	for {
		select {
		case <-ch:
		case <-time.After(quiet):
			return
		}
	}
}

func TestBackoffIsCapped(t *testing.T) {
	r := NewReliable(Config{RTO: 3 * time.Millisecond, MaxRTO: 12 * time.Millisecond}, noSend)
	defer r.Close()
	prev := time.Duration(0)
	for attempt := 0; attempt < 10; attempt++ {
		d := r.rto(attempt)
		if d < prev {
			t.Fatalf("rto(%d) = %v shrank below rto of previous attempt %v", attempt, d, prev)
		}
		if d > 12*time.Millisecond {
			t.Fatalf("rto(%d) = %v exceeds cap", attempt, d)
		}
		prev = d
	}
	if r.rto(10) != 12*time.Millisecond {
		t.Fatalf("rto(10) = %v, want cap", r.rto(10))
	}
}

func TestInjectorDeterministic(t *testing.T) {
	plan := FaultPlan{DropRate: 0.3, DupRate: 0.2, DelayJitter: 0.1, Seed: 42}
	a, b := NewInjector(plan), NewInjector(plan)
	for i := 0; i < 1000; i++ {
		if got, want := a.Decide(0, 1), b.Decide(0, 1); got != want {
			t.Fatalf("decision %d diverged: %v vs %v", i, got, want)
		}
	}
	if a.Counters() != b.Counters() {
		t.Fatalf("counters diverged: %+v vs %+v", a.Counters(), b.Counters())
	}
}

func TestInjectorRates(t *testing.T) {
	in := NewInjector(FaultPlan{DropRate: 0.2, DupRate: 0.1, DelayJitter: 0.1, Seed: 7})
	const trials = 20000
	for i := 0; i < trials; i++ {
		in.Decide(0, 1)
	}
	c := in.Counters()
	approx := func(name string, got int, want float64) {
		t.Helper()
		rate := float64(got) / trials
		if rate < want-0.02 || rate > want+0.02 {
			t.Fatalf("%s rate = %.3f, want %.2f +/- 0.02", name, rate, want)
		}
	}
	approx("drop", c.Drops, 0.2)
	approx("dup", c.Dups, 0.1)
	approx("delay", c.Delays, 0.1)
	if c.PartitionDrops != 0 {
		t.Fatalf("partition drops = %d without partitions", c.PartitionDrops)
	}
}

func TestInjectorClampsOverfullPlans(t *testing.T) {
	// Drop+dup+delay sums to 2.4: the injector must scale the rates so
	// some transmissions still get through.
	in := NewInjector(FaultPlan{DropRate: 0.8, DupRate: 0.8, DelayJitter: 0.8, Seed: 3})
	delivered := 0
	for i := 0; i < 2000; i++ {
		if in.Decide(0, 1) == Deliver {
			delivered++
		}
	}
	if delivered < 50 {
		t.Fatalf("only %d/2000 delivered; clamping failed", delivered)
	}
}

func TestPartitionDropsUntilHealed(t *testing.T) {
	in := NewInjector(FaultPlan{
		Partitions: []Partition{{A: []event.ProcID{0}, B: []event.ProcID{1, 2}, Heal: 5}},
		Seed:       1,
	})
	// Crossing transmissions (both directions) are dropped until the
	// budget runs out.
	for i := 0; i < 5; i++ {
		from, to := event.ProcID(0), event.ProcID(1+i%2)
		if i%2 == 1 {
			from, to = to, from
		}
		if act := in.Decide(from, to); act != Drop {
			t.Fatalf("crossing transmission %d: %v, want Drop", i, act)
		}
	}
	if act := in.Decide(0, 1); act != Deliver {
		t.Fatalf("after heal: %v, want Deliver", act)
	}
	// Non-crossing traffic was never affected.
	if act := in.Decide(1, 2); act != Deliver {
		t.Fatalf("intra-side transmission: %v, want Deliver", act)
	}
	if c := in.Counters(); c.PartitionDrops != 5 {
		t.Fatalf("partition drops = %d, want 5", c.PartitionDrops)
	}
}

// TestConcurrentTransportOps exercises the reliable sublayer from many
// goroutines for the race detector.
func TestConcurrentTransportOps(t *testing.T) {
	r := NewReliable(Config{RTO: time.Millisecond, Tick: 500 * time.Microsecond}, noSend)
	defer r.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			from := event.ProcID(g % 4)
			to := event.ProcID((g + 1) % 4)
			for i := 0; i < 200; i++ {
				e := r.Wrap(from, to, wire(event.MsgID(i)))
				r.Accept(e)
				r.Accept(e)
				r.Ack(AckFor(e))
				r.Counters()
				r.Pending()
				r.Progress()
			}
		}(g)
	}
	wg.Wait()
	if r.Pending() != 0 {
		t.Fatalf("pending = %d after acking everything", r.Pending())
	}
	c := r.Counters()
	if c.Sent != 1600 || c.DupsDropped != 1600 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestProgressAdvancesOnTransportEvents(t *testing.T) {
	r := NewReliable(Config{}, noSend)
	defer r.Close()
	p0 := r.Progress()
	e := r.Wrap(0, 1, wire(0))
	if r.Progress() <= p0 {
		t.Fatal("Wrap must advance progress")
	}
	p1 := r.Progress()
	r.Accept(e)
	if r.Progress() <= p1 {
		t.Fatal("Accept must advance progress")
	}
	p2 := r.Progress()
	r.Ack(AckFor(e))
	if r.Progress() <= p2 {
		t.Fatal("Ack must advance progress")
	}
}
