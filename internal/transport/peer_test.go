package transport

import (
	"sync/atomic"
	"testing"
	"time"

	"msgorder/internal/event"
)

func TestPeerDownPausesRetransmission(t *testing.T) {
	var resent atomic.Int64
	r := NewReliable(
		Config{RTO: time.Millisecond, MaxRTO: 4 * time.Millisecond, Tick: 500 * time.Microsecond},
		func(Envelope) { resent.Add(1) },
	)
	defer r.Close()
	r.PeerDown(1)
	r.Wrap(0, 1, wire(0))
	time.Sleep(25 * time.Millisecond)
	if n := resent.Load(); n != 0 {
		t.Fatalf("%d retransmissions towards a down peer, want 0", n)
	}
	if c := r.Counters(); c.Retransmits != 0 {
		t.Fatalf("counters = %+v, want no retransmits while down", c)
	}

	// PeerUp makes the pending envelope due immediately.
	r.PeerUp(1)
	deadline := time.Now().Add(2 * time.Second)
	for resent.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no retransmission after PeerUp")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPeerDownLeavesOtherChannelsAlone(t *testing.T) {
	var resent atomic.Int64
	r := NewReliable(
		Config{RTO: time.Millisecond, MaxRTO: 4 * time.Millisecond, Tick: 500 * time.Microsecond},
		func(e Envelope) {
			if e.Dst == 2 {
				resent.Add(1)
			} else {
				t.Errorf("retransmission towards down peer: %+v", e)
			}
		},
	)
	defer r.Close()
	r.PeerDown(1)
	r.Wrap(0, 1, wire(0))
	r.Wrap(0, 2, wire(1))
	deadline := time.Now().Add(2 * time.Second)
	for resent.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no retransmission towards the live peer")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCancelToCountsOnlyUnaccepted(t *testing.T) {
	r := NewReliable(Config{RTO: time.Hour}, noSend)
	defer r.Close()
	// Envelope a was accepted by peer 1 but its ack was lost (still
	// pending); envelope b never arrived.
	a := r.Wrap(0, 1, wire(0))
	r.Accept(a)
	r.Wrap(0, 1, wire(1))
	// Traffic to other peers is untouched.
	r.Wrap(0, 2, wire(2))

	if lost := r.CancelTo(1); lost != 1 {
		t.Fatalf("CancelTo(1) = %d lost, want 1 (only the never-accepted envelope)", lost)
	}
	if n := r.Pending(); n != 1 {
		t.Fatalf("pending = %d after cancel, want 1 (the 0->2 envelope)", n)
	}
	if lost := r.CancelTo(1); lost != 0 {
		t.Fatalf("second CancelTo(1) = %d, want 0 (idempotent)", lost)
	}
}

// TestPartitionHealsAfterBackoffCap is the regression for a channel
// wedging permanently: a partition that only heals after the sender has
// hit its maximum backoff must still deliver, because the capped RTO
// keeps retransmissions (and the partition's heal budget) flowing.
func TestPartitionHealsAfterBackoffCap(t *testing.T) {
	in := NewInjector(FaultPlan{
		Partitions: []Partition{{A: []event.ProcID{0}, B: []event.ProcID{1}, Heal: 12}},
		Seed:       1,
	})
	accepted := make(chan struct{}, 1)
	var r *Reliable
	r = NewReliable(
		// MaxRTO is reached by the second attempt, far before the heal
		// budget (12 crossings) is spent.
		Config{RTO: time.Millisecond, MaxRTO: 2 * time.Millisecond, Tick: 500 * time.Microsecond},
		func(e Envelope) {
			if in.Decide(e.Src, e.Dst) != Deliver {
				return
			}
			if r.Accept(e) {
				select {
				case accepted <- struct{}{}:
				default:
				}
			}
			r.Ack(AckFor(e))
		},
	)
	defer r.Close()

	e := r.Wrap(0, 1, wire(0))
	if in.Decide(e.Src, e.Dst) == Deliver {
		t.Fatal("first transmission must hit the partition")
	}

	select {
	case <-accepted:
	case <-time.After(5 * time.Second):
		t.Fatalf("channel wedged: partition never healed through capped backoff (faults: %+v, counters: %+v)",
			in.Counters(), r.Counters())
	}
	if r.Pending() != 0 {
		t.Fatalf("pending = %d after delivery+ack", r.Pending())
	}
	if c := in.Counters(); c.PartitionDrops != 12 {
		t.Fatalf("partition drops = %d, want the full heal budget of 12", c.PartitionDrops)
	}
}
