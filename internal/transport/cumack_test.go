package transport

import (
	"testing"
	"time"

	"msgorder/internal/event"
	"msgorder/internal/protocol"
)

// quietReliable builds a Reliable whose retransmission loop never fires
// during the test.
func quietReliable(t *testing.T) *Reliable {
	t.Helper()
	r := NewReliable(Config{RTO: time.Hour, MaxRTO: time.Hour, Tick: time.Hour}, func(Envelope) {})
	t.Cleanup(r.Close)
	return r
}

func dataEnv(seq uint64) Envelope {
	return Envelope{Src: 0, Dst: 1, Kind: Data, Seq: seq,
		Wire: protocol.Wire{From: 0, To: 1, Kind: protocol.UserWire, Msg: event.MsgID(seq)}}
}

// TestCumulativeAckRetiresBatch: a single pipelined ack clears the
// exact sequence number plus everything at or below Cum on the channel.
func TestCumulativeAckRetiresBatch(t *testing.T) {
	r := quietReliable(t)
	for i := 0; i < 5; i++ {
		r.Wrap(0, 1, protocol.Wire{From: 0, To: 1, Kind: protocol.UserWire, Msg: event.MsgID(i)})
	}
	if r.Pending() != 5 {
		t.Fatalf("pending = %d, want 5", r.Pending())
	}
	r.Ack(Envelope{Src: 1, Dst: 0, Kind: Ack, Seq: 5, Cum: 3})
	if r.Pending() != 1 {
		t.Fatalf("pending = %d after cum ack, want 1 (seq 4)", r.Pending())
	}
	c := r.Counters()
	if c.CumAcked != 3 {
		t.Fatalf("CumAcked = %d, want 3 (seqs 1-3 cleared by the cumulative part)", c.CumAcked)
	}
	if c.AcksReceived != 1 {
		t.Fatalf("AcksReceived = %d, want 1", c.AcksReceived)
	}
	// Idempotent: replaying the same ack changes nothing but the tally.
	r.Ack(Envelope{Src: 1, Dst: 0, Kind: Ack, Seq: 5, Cum: 3})
	if r.Pending() != 1 || r.Counters().CumAcked != 3 {
		t.Fatalf("replayed ack disturbed state: pending=%d counters=%+v", r.Pending(), r.Counters())
	}
}

// TestCumAckScopedToChannel: the cumulative clear must not leak onto
// other channels sharing the sublayer.
func TestCumAckScopedToChannel(t *testing.T) {
	r := quietReliable(t)
	r.Wrap(0, 1, protocol.Wire{From: 0, To: 1, Kind: protocol.UserWire})
	r.Wrap(0, 2, protocol.Wire{From: 0, To: 2, Kind: protocol.UserWire})
	r.Ack(Envelope{Src: 1, Dst: 0, Kind: Ack, Seq: 1, Cum: 100})
	if r.Pending() != 1 {
		t.Fatalf("pending = %d: ack on 0->1 disturbed channel 0->2", r.Pending())
	}
}

// TestAcceptAdvancesCumOverContiguousRuns: the receiver-side high-water
// mark moves only over contiguous prefixes, gaps hold it back, and
// filling the gap jumps it over the whole run.
func TestAcceptAdvancesCumOverContiguousRuns(t *testing.T) {
	r := quietReliable(t)
	for _, seq := range []uint64{1, 2} {
		if !r.Accept(dataEnv(seq)) {
			t.Fatalf("seq %d rejected", seq)
		}
	}
	if cum := r.CumFor(dataEnv(1)); cum != 2 {
		t.Fatalf("cum = %d, want 2", cum)
	}
	if !r.Accept(dataEnv(4)) {
		t.Fatal("seq 4 rejected")
	}
	if cum := r.CumFor(dataEnv(4)); cum != 2 {
		t.Fatalf("cum = %d over a gap, want 2", cum)
	}
	a := r.CumAckFor(dataEnv(4))
	if a.Kind != Ack || a.Src != 1 || a.Dst != 0 || a.Seq != 4 || a.Cum != 2 {
		t.Fatalf("CumAckFor = %+v", a)
	}
	if !r.Accept(dataEnv(3)) {
		t.Fatal("seq 3 rejected")
	}
	if cum := r.CumFor(dataEnv(3)); cum != 4 {
		t.Fatalf("cum = %d after gap filled, want 4", cum)
	}
	// AckFor stays the legacy exact-seq ack.
	if plain := AckFor(dataEnv(4)); plain.Cum != 0 {
		t.Fatalf("AckFor gained a Cum: %+v", plain)
	}
}

// TestAcceptPrunesSeenBehindCum: duplicates below the high-water mark
// are rejected from the mark alone — the per-seq seen set is pruned, so
// steady in-order traffic holds O(gaps) dedup state, not O(history).
func TestAcceptPrunesSeenBehindCum(t *testing.T) {
	r := quietReliable(t)
	for seq := uint64(1); seq <= 100; seq++ {
		if !r.Accept(dataEnv(seq)) {
			t.Fatalf("seq %d rejected", seq)
		}
	}
	r.mu.Lock()
	pruned := len(r.seen[chanKey{0, 1}])
	r.mu.Unlock()
	if pruned != 0 {
		t.Fatalf("seen set holds %d entries after a contiguous run, want 0", pruned)
	}
	for _, seq := range []uint64{1, 50, 100} {
		if r.Accept(dataEnv(seq)) {
			t.Fatalf("duplicate seq %d accepted after pruning", seq)
		}
	}
	if c := r.Counters(); c.DupsDropped != 3 {
		t.Fatalf("DupsDropped = %d, want 3", c.DupsDropped)
	}
}
