// Package transport is the reliable-delivery sublayer of the live
// harness (internal/sim). The paper's run model (axioms R1-R3) assumes
// every sent message is eventually received exactly once; a production
// network drops, duplicates, delays and partitions. This package closes
// the gap from both sides:
//
//   - Injector decides, per transmission, what a lossy network does to
//     it (deliver / drop / duplicate / delay), driven by a seeded
//     FaultPlan with per-fault rates and healing partitions.
//   - Reliable restores the paper's channel model above the faults:
//     every protocol wire is wrapped in a sequenced Envelope, the
//     receiver acknowledges and deduplicates, and the sender
//     retransmits unacked envelopes on a timeout with exponential
//     backoff (capped).
//
// Protocols therefore still see reliable, exactly-once (but freely
// reordering) channels, while the network below misbehaves at
// configurable rates. The counters on both halves (retransmits, dups
// dropped, faults injected) surface through protocol.Stats.
package transport

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"msgorder/internal/event"
	"msgorder/internal/obs"
	"msgorder/internal/protocol"
	"msgorder/internal/snapio"
)

// FaultPlan configures the fault injector. Rates are probabilities in
// [0, 1); the injector clamps them so that their sum stays below one
// (a transmission suffers at most one fault per hop attempt). The zero
// plan injects nothing.
type FaultPlan struct {
	// DropRate is the probability a transmission is silently discarded.
	DropRate float64
	// DupRate is the probability a transmission is delivered AND a copy
	// is put back in flight.
	DupRate float64
	// DelayJitter is the probability a transmission is pushed back into
	// the in-flight set instead of being released (extra reordering and
	// latency).
	DelayJitter float64
	// Partitions are network cuts: transmissions crossing an active cut
	// are dropped until the cut's heal budget is exhausted.
	Partitions []Partition
	// OneWay are asymmetric cuts: only transmissions travelling in the
	// cut's From→To direction are dropped; the reverse direction flows.
	// This is the topology shape that fools heartbeat detectors — the
	// mute side still hears everyone, everyone else suspects it.
	OneWay []OneWayPartition
	// Zones assigns processes to geo-latency tiers: transmissions whose
	// endpoints sit in different zones suffer the extra CrossZoneDelay /
	// CrossZoneDrop probabilities on top of the base rates. Processes
	// not listed in any zone share one implicit zone of their own.
	Zones [][]event.ProcID
	// CrossZoneDelay is the extra probability a cross-zone transmission
	// is pushed back into the in-flight set (geo latency as reordering).
	CrossZoneDelay float64
	// CrossZoneDrop is the extra probability a cross-zone transmission
	// is discarded (long-haul loss).
	CrossZoneDrop float64
	// SlowLinks name individual degraded peer pairs (both directions):
	// each carries its own delay/drop probabilities, independent of
	// zones — a flaky cable inside an otherwise healthy tier.
	SlowLinks []SlowLink
	// Seed drives the injector's RNG (default 1).
	Seed int64
}

// Enabled reports whether the plan injects any fault at all.
func (p FaultPlan) Enabled() bool {
	return p.DropRate > 0 || p.DupRate > 0 || p.DelayJitter > 0 || len(p.Partitions) > 0 ||
		len(p.OneWay) > 0 || len(p.SlowLinks) > 0 ||
		(len(p.Zones) > 0 && (p.CrossZoneDelay > 0 || p.CrossZoneDrop > 0))
}

// Partition is a temporary network cut between two sets of processes.
// Every transmission crossing the cut (in either direction) is dropped
// and decrements the heal budget; when the budget hits zero the cut
// heals permanently. Retransmissions burn the budget down, so any
// finite budget preserves liveness.
type Partition struct {
	// A and B are the two sides of the cut.
	A, B []event.ProcID
	// Heal is the number of crossing transmissions dropped before the
	// partition heals (default 16).
	Heal int
}

// OneWayPartition is an asymmetric network cut: transmissions from a
// process in From to a process in To are dropped; the reverse direction
// is untouched. Heal is the number of dropped transmissions before the
// cut heals (0 = defaultHeal); a negative Heal never heals — the shape
// needed to model a persistently unreachable process that a failure
// detector must eventually evict.
type OneWayPartition struct {
	// From and To are the muted direction's endpoints.
	From, To []event.ProcID
	// Heal is the drop budget (0 = default; negative = permanent).
	Heal int
}

// SlowLink degrades the channel between one pair of processes, in both
// directions, with its own delay/drop probabilities on top of the base
// plan rates.
type SlowLink struct {
	// A and B are the degraded pair.
	A, B event.ProcID
	// DelayProb is the extra probability a transmission on this link is
	// pushed back into the in-flight set.
	DelayProb float64
	// DropProb is the extra probability a transmission on this link is
	// discarded.
	DropProb float64
}

// Action is the injector's verdict for one transmission.
type Action int

// Injector verdicts.
const (
	Deliver   Action = iota // release to the destination
	Drop                    // discard silently
	Duplicate               // deliver and keep a copy in flight
	Delay                   // push back into the in-flight set
)

// FaultCounters tallies injected faults by kind.
type FaultCounters struct {
	Drops, Dups, Delays, PartitionDrops int
	// OneWayDrops counts transmissions muted by an asymmetric cut.
	OneWayDrops int
	// ZoneFaults counts faults charged to cross-zone geo penalties.
	ZoneFaults int
	// LinkFaults counts faults charged to a named slow link.
	LinkFaults int
}

// Total returns the number of faults injected.
func (c FaultCounters) Total() int {
	return c.Drops + c.Dups + c.Delays + c.PartitionDrops +
		c.OneWayDrops + c.ZoneFaults + c.LinkFaults
}

// Injector is a seeded, concurrency-safe fault source.
type Injector struct {
	mu     sync.Mutex
	plan   FaultPlan
	rng    *rand.Rand
	parts  []partitionState
	oneway []onewayState
	zone   map[event.ProcID]int
	links  map[chanKey]SlowLink
	counts FaultCounters
	sink   *obs.Sink
}

// Observe attaches an observability sink: every injected fault emits a
// trace record and bumps a counter. A nil sink (the default) disables
// this.
func (in *Injector) Observe(s *obs.Sink) {
	in.mu.Lock()
	in.sink = s
	in.mu.Unlock()
}

// record emits one injected fault into the sink. Called with in.mu held;
// the sink takes its own locks, never in.mu, so there is no cycle.
func (in *Injector) record(op obs.Op, name string, from, to event.ProcID) {
	s := in.sink
	if !s.Enabled() {
		return
	}
	s.Count("transport.faults."+name, 1)
	s.Trace(obs.Record{
		Step: s.Step(),
		Proc: from,
		Op:   op,
		Msg:  obs.NoMsg,
		Note: fmt.Sprintf("P%d->P%d", from, to),
	})
}

type partitionState struct {
	a, b   map[event.ProcID]bool
	budget int
}

// onewayState tracks an asymmetric cut; budget < 0 means permanent.
// chAny cuts mute every multiplexed channel (the legacy shape); a
// channel-scoped cut (chAny false) mutes only transmissions stamped
// with its channel ID, so one logical channel can be partitioned while
// its siblings on the same connection keep flowing.
type onewayState struct {
	from, to map[event.ProcID]bool
	budget   int
	ch       uint32
	chAny    bool
}

// maxFaultRate bounds the total fault probability so the adversary's
// release loop terminates (a plan of all-drops would spin forever).
const maxFaultRate = 0.95

// defaultHeal is a partition's drop budget when Heal is zero.
const defaultHeal = 16

// NewInjector builds an injector for the plan. Rates are scaled down
// proportionally if their sum exceeds maxFaultRate.
func NewInjector(plan FaultPlan) *Injector {
	if sum := plan.DropRate + plan.DupRate + plan.DelayJitter; sum > maxFaultRate {
		scale := maxFaultRate / sum
		plan.DropRate *= scale
		plan.DupRate *= scale
		plan.DelayJitter *= scale
	}
	seed := plan.Seed
	if seed == 0 {
		seed = 1
	}
	in := &Injector{plan: plan, rng: rand.New(rand.NewSource(seed))}
	for _, p := range plan.Partitions {
		st := partitionState{
			a:      make(map[event.ProcID]bool, len(p.A)),
			b:      make(map[event.ProcID]bool, len(p.B)),
			budget: p.Heal,
		}
		if st.budget <= 0 {
			st.budget = defaultHeal
		}
		for _, id := range p.A {
			st.a[id] = true
		}
		for _, id := range p.B {
			st.b[id] = true
		}
		in.parts = append(in.parts, st)
	}
	for _, p := range plan.OneWay {
		in.oneway = append(in.oneway, newOnewayState(p.From, p.To, p.Heal))
	}
	if len(plan.Zones) > 0 {
		in.zone = make(map[event.ProcID]int)
		for z, procs := range plan.Zones {
			for _, id := range procs {
				in.zone[id] = z
			}
		}
	}
	if len(plan.SlowLinks) > 0 {
		in.links = make(map[chanKey]SlowLink, 2*len(plan.SlowLinks))
		for _, l := range plan.SlowLinks {
			in.links[chanKey{l.A, l.B}] = l
			in.links[chanKey{l.B, l.A}] = l
		}
	}
	return in
}

// newOnewayState builds the runtime state for an asymmetric cut: a zero
// heal budget takes the default, a negative one means the cut never
// heals.
func newOnewayState(from, to []event.ProcID, heal int) onewayState {
	st := onewayState{
		from:   make(map[event.ProcID]bool, len(from)),
		to:     make(map[event.ProcID]bool, len(to)),
		budget: heal,
		chAny:  true,
	}
	if st.budget == 0 {
		st.budget = defaultHeal
	}
	for _, id := range from {
		st.from[id] = true
	}
	for _, id := range to {
		st.to[id] = true
	}
	return st
}

// CutOneWay arms an asymmetric cut at runtime: transmissions from a
// process in from to a process in to are dropped until the heal budget
// is exhausted (heal == 0 takes the default budget; heal < 0 never
// heals). The churn harness uses this to mute a process mid-run and
// watch the survivors' failure detectors converge on exactly it.
func (in *Injector) CutOneWay(from, to []event.ProcID, heal int) {
	in.mu.Lock()
	in.oneway = append(in.oneway, newOnewayState(from, to, heal))
	in.mu.Unlock()
}

// CutChanOneWay arms an asymmetric cut scoped to one multiplexed
// channel: only transmissions stamped with channel ID ch (and
// travelling from → to) are dropped; sibling channels sharing the same
// connection are untouched. This is the fault shape behind the
// head-of-line-blocking regression tests — a partitioned channel must
// not stall a healthy one. Heal semantics match CutOneWay.
func (in *Injector) CutChanOneWay(from, to []event.ProcID, ch uint32, heal int) {
	st := newOnewayState(from, to, heal)
	st.ch, st.chAny = ch, false
	in.mu.Lock()
	in.oneway = append(in.oneway, st)
	in.mu.Unlock()
}

// HealOneWay disarms every asymmetric cut, healed or not, restoring
// full bidirectional connectivity (modulo the plan's probabilistic
// faults).
func (in *Injector) HealOneWay() {
	in.mu.Lock()
	in.oneway = nil
	in.mu.Unlock()
}

// Decide returns the network's action for a transmission from -> to on
// the default (un-multiplexed) channel. Channel-scoped cuts armed for a
// non-zero channel ID never match here.
func (in *Injector) Decide(from, to event.ProcID) Action {
	return in.DecideChan(from, to, 0)
}

// DecideChan returns the network's action for a transmission from → to
// stamped with multiplexed channel ID ch. Legacy cuts (FaultPlan.OneWay,
// CutOneWay, Partitions) apply to every channel; CutChanOneWay cuts
// apply only when ch matches. The probabilistic faults (drop, dup,
// delay, zones, slow links) are channel-blind — a lossy wire loses
// frames regardless of what they multiplex.
func (in *Injector) DecideChan(from, to event.ProcID, ch uint32) Action {
	in.mu.Lock()
	defer in.mu.Unlock()
	for i := range in.parts {
		p := &in.parts[i]
		if p.budget > 0 && ((p.a[from] && p.b[to]) || (p.b[from] && p.a[to])) {
			p.budget--
			in.counts.PartitionDrops++
			in.record(obs.OpPartitionDrop, "partition", from, to)
			return Drop
		}
	}
	for i := range in.oneway {
		p := &in.oneway[i]
		if p.budget != 0 && p.from[from] && p.to[to] && (p.chAny || p.ch == ch) {
			if p.budget > 0 {
				p.budget--
			}
			in.counts.OneWayDrops++
			in.record(obs.OpPartitionDrop, "oneway", from, to)
			return Drop
		}
	}
	if l, ok := in.links[chanKey{from, to}]; ok {
		r := in.rng.Float64()
		if r < l.DropProb {
			in.counts.LinkFaults++
			in.record(obs.OpDrop, "slowlink", from, to)
			return Drop
		}
		if r < l.DropProb+l.DelayProb {
			in.counts.LinkFaults++
			in.record(obs.OpDelay, "slowlink", from, to)
			return Delay
		}
	}
	if in.zone != nil && in.crossZone(from, to) {
		r := in.rng.Float64()
		if r < in.plan.CrossZoneDrop {
			in.counts.ZoneFaults++
			in.record(obs.OpDrop, "zone", from, to)
			return Drop
		}
		if r < in.plan.CrossZoneDrop+in.plan.CrossZoneDelay {
			in.counts.ZoneFaults++
			in.record(obs.OpDelay, "zone", from, to)
			return Delay
		}
	}
	r := in.rng.Float64()
	if r < in.plan.DropRate {
		in.counts.Drops++
		in.record(obs.OpDrop, "drop", from, to)
		return Drop
	}
	r -= in.plan.DropRate
	if r < in.plan.DupRate {
		in.counts.Dups++
		in.record(obs.OpDup, "dup", from, to)
		return Duplicate
	}
	r -= in.plan.DupRate
	if r < in.plan.DelayJitter {
		in.counts.Delays++
		in.record(obs.OpDelay, "delay", from, to)
		return Delay
	}
	return Deliver
}

// crossZone reports whether the endpoints sit in different geo zones.
// Processes not listed in any zone share one implicit zone.
func (in *Injector) crossZone(from, to event.ProcID) bool {
	za, oka := in.zone[from]
	zb, okb := in.zone[to]
	if !oka {
		za = -1
	}
	if !okb {
		zb = -1
	}
	return za != zb
}

// Counters returns a snapshot of the injected-fault tallies.
func (in *Injector) Counters() FaultCounters {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts
}

// Kind distinguishes data envelopes from acknowledgements and
// liveness heartbeats.
type Kind uint8

// Envelope kinds. Beat envelopes are liveness heartbeats: unsequenced,
// unacknowledged, never retransmitted — they ride the same lossy
// network as data (so a one-way cut silences them in exactly one
// direction) but bypass the Reliable sublayer entirely.
const (
	Data Kind = iota + 1
	Ack
	Beat
)

// Envelope is one transport-layer transmission: a protocol wire wrapped
// with a per-channel sequence number (Data), or its acknowledgement
// (Ack, addressed back to the data sender and carrying the same Seq).
type Envelope struct {
	// Src and Dst are the transmission endpoints of THIS envelope
	// (reversed for acks relative to the data they acknowledge).
	Src, Dst event.ProcID
	Kind     Kind
	// Chan is the logical multiplexed channel this envelope belongs to.
	// Zero is the default (un-multiplexed) channel, so every legacy
	// single-protocol deployment keeps its wire behavior unchanged. A
	// channel-multiplexing host stamps its channel ID here on every
	// outbound envelope (data, ack, retransmission) and demultiplexes
	// arrivals by it; each channel runs its own Reliable instance, so
	// sequence numbers, cumulative acks and dedup state are all
	// channel-scoped without any key widening inside Reliable itself.
	Chan uint32
	// Seq is the sequence number on the data channel Src->Dst (for
	// acks: Dst->Src). Sequencing identifies envelopes for ack matching
	// and dedup; it does NOT impose FIFO delivery — the network above
	// still reorders freely, as the paper's model allows.
	Seq uint64
	// Cum is the pipelined-acknowledgement mark (Ack only): every data
	// envelope on the acked channel with sequence number ≤ Cum is
	// acknowledged by this one envelope, in addition to the exact Seq.
	// Zero means exact-seq acknowledgement only (the legacy contract),
	// so plain AckFor acks keep working unchanged.
	Cum uint64
	// Attempt counts retransmissions of this envelope (0 = original).
	Attempt int
	// Wire is the wrapped protocol payload (Data only).
	Wire protocol.Wire
}

// AckFor builds the exact-seq acknowledgement for a data envelope.
// The batched mesh path uses Reliable.CumAckFor instead, which lets a
// single ack cover a whole contiguous batch.
func AckFor(e Envelope) Envelope {
	return Envelope{Src: e.Dst, Dst: e.Src, Kind: Ack, Seq: e.Seq}
}

// Config tunes the retransmission engine.
type Config struct {
	// RTO is the initial retransmission timeout (default 3ms).
	RTO time.Duration
	// MaxRTO caps the exponential backoff (default 48ms).
	MaxRTO time.Duration
	// Tick is the retransmit scan interval (default 1ms).
	Tick time.Duration
	// Obs, when non-nil, receives retransmission trace records and the
	// attempt/backoff distributions.
	Obs *obs.Sink
}

func (c Config) withDefaults() Config {
	if c.RTO <= 0 {
		c.RTO = 3 * time.Millisecond
	}
	if c.MaxRTO <= 0 {
		c.MaxRTO = 48 * time.Millisecond
	}
	if c.Tick <= 0 {
		c.Tick = time.Millisecond
	}
	return c
}

// Counters tallies the reliable sublayer's work.
type Counters struct {
	// Sent counts data envelopes originated (one per protocol wire).
	Sent int
	// Retransmits counts timeout-driven resends.
	Retransmits int
	// DupsDropped counts duplicate data envelopes absorbed by the
	// receiver-side dedup.
	DupsDropped int
	// AcksReceived counts acknowledgements processed by senders.
	AcksReceived int
	// CumAcked counts pending envelopes cleared by the cumulative part
	// of a pipelined ack — retransmissions a batch ack made unnecessary
	// beyond its exact Seq match.
	CumAcked int
	// IdleSkips counts the times the retransmission loop parked because
	// no envelope was pending: instead of scanning an empty table every
	// Tick, it sleeps until the next Wrap wakes it. An idle mesh
	// therefore burns no timer CPU at all.
	IdleSkips int
}

type chanKey [2]event.ProcID

type pendKey struct {
	ch  chanKey
	seq uint64
}

type pendingTx struct {
	env      Envelope
	deadline time.Time
	attempt  int
}

// Reliable is the exactly-once delivery engine for one network: it
// sequences outgoing wires, retransmits unacked envelopes, and
// deduplicates arrivals. Safe for concurrent use. The send callback
// reinjects retransmissions into the network; it must not block
// forever after the network shuts down.
type Reliable struct {
	cfg  Config
	send func(Envelope)

	mu      sync.Mutex
	next    map[chanKey]uint64
	pending map[pendKey]*pendingTx
	seen    map[chanKey]map[uint64]struct{}
	// cum is the receiver-side high-water mark per channel: every seq
	// ≤ cum[ch] has been accepted. Accept advances it over contiguous
	// runs and prunes the seen set behind it, which both bounds dedup
	// memory on the steady path and is what CumAckFor advertises.
	cum      map[chanKey]uint64
	down     map[event.ProcID]bool
	counts   Counters
	progress uint64

	// wake is signalled (buffered, capacity one) when pending goes from
	// empty to non-empty, so the parked retransmission loop resumes.
	wake chan struct{}

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewReliable starts a reliable sublayer; Close must be called to stop
// its retransmission loop.
func NewReliable(cfg Config, send func(Envelope)) *Reliable {
	r := &Reliable{
		cfg:     cfg.withDefaults(),
		send:    send,
		next:    make(map[chanKey]uint64),
		pending: make(map[pendKey]*pendingTx),
		seen:    make(map[chanKey]map[uint64]struct{}),
		cum:     make(map[chanKey]uint64),
		down:    make(map[event.ProcID]bool),
		wake:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
	}
	r.wg.Add(1)
	go r.loop()
	return r
}

// Wrap sequences a wire into a data envelope and registers it for
// retransmission until acknowledged.
func (r *Reliable) Wrap(from, to event.ProcID, w protocol.Wire) Envelope {
	r.mu.Lock()
	defer r.mu.Unlock()
	ch := chanKey{from, to}
	r.next[ch]++
	env := Envelope{Src: from, Dst: to, Kind: Data, Seq: r.next[ch], Wire: w}
	wasIdle := len(r.pending) == 0
	r.pending[pendKey{ch, env.Seq}] = &pendingTx{
		env:      env,
		deadline: time.Now().Add(r.cfg.RTO),
	}
	r.counts.Sent++
	r.progress++
	if wasIdle {
		select {
		case r.wake <- struct{}{}:
		default:
		}
	}
	return env
}

// Ack processes an acknowledgement arriving back at the data sender,
// cancelling its retransmission. A pipelined ack (Cum > 0) also clears
// every pending envelope on the channel with seq ≤ Cum, so one ack can
// retire a whole batch. Idempotent.
func (r *Reliable) Ack(a Envelope) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ch := chanKey{a.Dst, a.Src}
	delete(r.pending, pendKey{ch, a.Seq})
	if a.Cum > 0 {
		for k := range r.pending {
			if k.ch == ch && k.seq <= a.Cum {
				delete(r.pending, k)
				r.counts.CumAcked++
			}
		}
	}
	r.counts.AcksReceived++
	r.progress++
}

// Accept runs receiver-side dedup on an arriving data envelope and
// reports whether this is its first copy (deliver to the protocol) or
// a duplicate (absorb). The caller acknowledges in both cases. On the
// steady (in-order) path Accept advances the channel's contiguous
// high-water mark and prunes the seen set behind it, so dedup state
// stays O(gaps) rather than O(messages ever received).
func (r *Reliable) Accept(e Envelope) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	ch := chanKey{e.Src, e.Dst}
	if e.Seq <= r.cum[ch] {
		r.counts.DupsDropped++
		r.progress++
		return false
	}
	s := r.seen[ch]
	if s == nil {
		s = make(map[uint64]struct{})
		r.seen[ch] = s
	}
	if _, dup := s[e.Seq]; dup {
		r.counts.DupsDropped++
		r.progress++
		return false
	}
	s[e.Seq] = struct{}{}
	for {
		next := r.cum[ch] + 1
		if _, ok := s[next]; !ok {
			break
		}
		delete(s, next)
		r.cum[ch] = next
	}
	r.progress++
	return true
}

// CumAckFor builds the pipelined acknowledgement for a data envelope
// arriving at this (receiver-side) Reliable: exact Seq plus the
// channel's contiguous high-water mark in Cum, so the single ack
// retires every in-order envelope of the batch it closes.
func (r *Reliable) CumAckFor(e Envelope) Envelope {
	r.mu.Lock()
	cum := r.cum[chanKey{e.Src, e.Dst}]
	r.mu.Unlock()
	return Envelope{Src: e.Dst, Dst: e.Src, Kind: Ack, Seq: e.Seq, Cum: cum}
}

// CumFor returns the receiver-side contiguous high-water mark of the
// channel a data envelope arrived on: every sequence number ≤ CumFor(e)
// has been accepted here. The batched receiver uses it to skip exact
// acks the cumulative ack already covers.
func (r *Reliable) CumFor(e Envelope) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cum[chanKey{e.Src, e.Dst}]
}

// PeerDown pauses retransmission towards p: the harness knows p has
// crashed, so resending into its dead mailbox only burns backoff.
// Pending envelopes are kept (with their deadlines frozen, not backed
// off) so a later PeerUp resumes exactly where the channel left off —
// sequence numbers and receiver dedup state are untouched, which keeps
// exactly-once delivery correct across a restart.
func (r *Reliable) PeerDown(p event.ProcID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.down[p] = true
	r.cfg.Obs.Count("transport.peer.pauses", 1)
}

// PeerUp resumes retransmission towards p after a restart. Every
// pending envelope addressed to p becomes due immediately so recovery
// is not stalled by deadlines set before the crash.
func (r *Reliable) PeerUp(p event.ProcID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.down[p] {
		return
	}
	delete(r.down, p)
	now := time.Now()
	for k, tx := range r.pending {
		if k.ch[1] == p {
			tx.deadline = now
		}
	}
	r.progress++
	r.cfg.Obs.Count("transport.peer.resumes", 1)
}

// CancelTo abandons all pending envelopes addressed to p (the harness
// knows p has crash-stopped and will never ack). It returns the number
// of cancelled envelopes that p had never accepted — the ones whose
// payload is now lost for good, as opposed to accepted-but-unacked
// envelopes whose work already happened.
func (r *Reliable) CancelTo(p event.ProcID) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	lost := 0
	for k := range r.pending {
		if k.ch[1] != p {
			continue
		}
		_, inSeen := r.seen[k.ch][k.seq]
		if !inSeen && k.seq > r.cum[k.ch] {
			lost++
		}
		delete(r.pending, k)
	}
	r.progress++
	return lost
}

// MarkAccepted replays receiver-side acceptance of sequence number seq
// on the channel src->dst without delivering anything: the journal says
// the wire was already accepted and handled in a previous incarnation,
// so dedup state must reflect it or a retransmission would be re-
// admitted as fresh (duplicate delivery) after a durable restart. The
// contiguous high-water mark advances and the seen set is pruned
// exactly as a live Accept would.
func (r *Reliable) MarkAccepted(src, dst event.ProcID, seq uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ch := chanKey{src, dst}
	if seq <= r.cum[ch] {
		return
	}
	s := r.seen[ch]
	if s == nil {
		s = make(map[uint64]struct{})
		r.seen[ch] = s
	}
	if _, dup := s[seq]; dup {
		return
	}
	s[seq] = struct{}{}
	for {
		next := r.cum[ch] + 1
		if _, ok := s[next]; !ok {
			break
		}
		delete(s, next)
		r.cum[ch] = next
	}
}

// SnapshotState returns a deterministic encoding of the sublayer's
// durable state: per-channel sender sequence counters, receiver
// high-water marks and seen-set gaps, and the pending (unacknowledged)
// envelopes with their full wire payloads. Equal states always encode
// to equal bytes (all traversals are sorted), so checkpoints can be
// compared byte-for-byte. Counters, deadlines and peer-down marks are
// transient and excluded.
func (r *Reliable) SnapshotState() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	w := &snapio.Writer{}
	w.Byte(stateVersion)
	chans := func(m map[chanKey]uint64) []chanKey {
		ks := make([]chanKey, 0, len(m))
		for k := range m {
			ks = append(ks, k)
		}
		sortChans(ks)
		return ks
	}
	nextChans := chans(r.next)
	w.Int(len(nextChans))
	for _, ch := range nextChans {
		w.Int(int(ch[0]))
		w.Int(int(ch[1]))
		w.U64(r.next[ch])
	}
	cumChans := chans(r.cum)
	w.Int(len(cumChans))
	for _, ch := range cumChans {
		w.Int(int(ch[0]))
		w.Int(int(ch[1]))
		w.U64(r.cum[ch])
	}
	var seenChans []chanKey
	for ch, s := range r.seen {
		if len(s) > 0 {
			seenChans = append(seenChans, ch)
		}
	}
	sortChans(seenChans)
	w.Int(len(seenChans))
	for _, ch := range seenChans {
		seqs := make([]uint64, 0, len(r.seen[ch]))
		for seq := range r.seen[ch] {
			seqs = append(seqs, seq)
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		w.Int(int(ch[0]))
		w.Int(int(ch[1]))
		w.Int(len(seqs))
		for _, seq := range seqs {
			w.U64(seq)
		}
	}
	pks := make([]pendKey, 0, len(r.pending))
	for k := range r.pending {
		pks = append(pks, k)
	}
	sort.Slice(pks, func(i, j int) bool {
		a, b := pks[i], pks[j]
		if a.ch != b.ch {
			return lessChan(a.ch, b.ch)
		}
		return a.seq < b.seq
	})
	w.Int(len(pks))
	for _, k := range pks {
		tx := r.pending[k]
		w.Int(int(tx.env.Src))
		w.Int(int(tx.env.Dst))
		w.U64(tx.env.Seq)
		w.Int(tx.attempt)
		appendWireState(w, tx.env.Wire)
	}
	return w.Out()
}

// RestoreState rebuilds the durable state captured by SnapshotState
// onto this Reliable, replacing whatever it held. Restored pending
// envelopes become due immediately, so the retransmission loop re-sends
// them right away — a crash between Wrap and the first transmission
// can no longer strand a wire forever.
func (r *Reliable) RestoreState(b []byte) error {
	rd := snapio.NewReader(b)
	if v := rd.Byte(); v != stateVersion && rd.Err() == nil {
		return fmt.Errorf("transport: unknown state version %d", v)
	}
	next := make(map[chanKey]uint64)
	for n := rd.Int(); n > 0 && rd.Err() == nil; n-- {
		ch := chanKey{event.ProcID(rd.Int()), event.ProcID(rd.Int())}
		next[ch] = rd.U64()
	}
	cum := make(map[chanKey]uint64)
	for n := rd.Int(); n > 0 && rd.Err() == nil; n-- {
		ch := chanKey{event.ProcID(rd.Int()), event.ProcID(rd.Int())}
		cum[ch] = rd.U64()
	}
	seen := make(map[chanKey]map[uint64]struct{})
	for n := rd.Int(); n > 0 && rd.Err() == nil; n-- {
		ch := chanKey{event.ProcID(rd.Int()), event.ProcID(rd.Int())}
		s := make(map[uint64]struct{})
		for k := rd.Int(); k > 0 && rd.Err() == nil; k-- {
			s[rd.U64()] = struct{}{}
		}
		seen[ch] = s
	}
	now := time.Now()
	pending := make(map[pendKey]*pendingTx)
	for n := rd.Int(); n > 0 && rd.Err() == nil; n-- {
		env := Envelope{
			Src:  event.ProcID(rd.Int()),
			Dst:  event.ProcID(rd.Int()),
			Kind: Data,
			Seq:  rd.U64(),
		}
		attempt := rd.Int()
		env.Wire = readWireState(rd)
		env.Attempt = attempt
		pending[pendKey{chanKey{env.Src, env.Dst}, env.Seq}] = &pendingTx{
			env: env, deadline: now, attempt: attempt,
		}
	}
	if err := rd.Close(); err != nil {
		return fmt.Errorf("transport: corrupt state snapshot: %w", err)
	}
	r.mu.Lock()
	r.next = next
	r.cum = cum
	r.seen = seen
	wasIdle := len(r.pending) == 0
	r.pending = pending
	r.progress++
	if wasIdle && len(pending) > 0 {
		select {
		case r.wake <- struct{}{}:
		default:
		}
	}
	r.mu.Unlock()
	return nil
}

// stateVersion tags the SnapshotState encoding.
const stateVersion = 1

// sortChans orders channel keys lexicographically by (src, dst).
func sortChans(ks []chanKey) {
	sort.Slice(ks, func(i, j int) bool { return lessChan(ks[i], ks[j]) })
}

// lessChan is the (src, dst) order on channel keys.
func lessChan(a, b chanKey) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}

// appendWireState encodes a protocol wire for the state snapshot.
func appendWireState(w *snapio.Writer, wire protocol.Wire) {
	w.Int(int(wire.From))
	w.Int(int(wire.To))
	w.Byte(byte(wire.Kind))
	w.Byte(wire.Ctrl)
	w.Int(int(wire.Msg))
	w.Int(int(wire.Color))
	w.U64(uint64(wire.Key))
	w.Bytes(wire.Tag)
	w.Int(len(wire.VC))
	for _, v := range wire.VC {
		w.U64(v)
	}
}

// readWireState decodes a protocol wire from the state snapshot.
func readWireState(rd *snapio.Reader) protocol.Wire {
	wire := protocol.Wire{
		From: event.ProcID(rd.Int()),
		To:   event.ProcID(rd.Int()),
		Kind: protocol.WireKind(rd.Byte()),
		Ctrl: rd.Byte(),
		Msg:  event.MsgID(rd.Int()),
	}
	wire.Color = event.Color(rd.Int())
	wire.Key = event.Key(rd.U64())
	wire.Tag = rd.Bytes()
	if n := rd.Int(); n > 0 && rd.Err() == nil {
		wire.VC = make([]uint64, n)
		for i := range wire.VC {
			wire.VC[i] = rd.U64()
		}
	}
	return wire
}

// Pending returns the number of unacknowledged data envelopes.
func (r *Reliable) Pending() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.pending)
}

// Counters returns a snapshot of the sublayer's tallies.
func (r *Reliable) Counters() Counters {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counts
}

// Progress returns a monotone counter that advances on every transport
// event (send, retransmit, ack, accept, dup). The harness's stall
// detector uses it to distinguish "still retransmitting" from
// "deadlocked".
func (r *Reliable) Progress() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.progress
}

// Close stops the retransmission loop and waits for it to exit.
func (r *Reliable) Close() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.wg.Wait()
}

// loop scans pending envelopes and resends overdue ones with
// exponential backoff. While nothing is pending it parks on the wake
// channel with the ticker stopped — zero timer work on an idle mesh —
// and Wrap's empty→non-empty transition resumes it.
func (r *Reliable) loop() {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.Tick)
	defer t.Stop()
	for {
		r.mu.Lock()
		idle := len(r.pending) == 0
		if idle {
			r.counts.IdleSkips++
		}
		r.mu.Unlock()
		if idle {
			r.cfg.Obs.Count("transport.retransmit.idle_skips", 1)
			t.Stop()
			select {
			case <-r.stop:
				return
			case <-r.wake:
			}
			select { // drop a tick buffered before Stop took effect
			case <-t.C:
			default:
			}
			t.Reset(r.cfg.Tick)
			continue
		}
		select {
		case <-r.stop:
			return
		case now := <-t.C:
			var due []Envelope
			var backoffs []time.Duration
			r.mu.Lock()
			for _, p := range r.pending {
				if r.down[p.env.Dst] {
					continue
				}
				if now.After(p.deadline) {
					p.attempt++
					p.env.Attempt = p.attempt
					backoff := r.rto(p.attempt)
					p.deadline = now.Add(backoff)
					r.counts.Retransmits++
					r.progress++
					due = append(due, p.env)
					backoffs = append(backoffs, backoff)
				}
			}
			r.mu.Unlock()
			for i, e := range due {
				r.observeRetransmit(e, backoffs[i])
			}
			// Resend outside the lock: the network injection path may
			// block until the adversary picks the envelope up.
			for _, e := range due {
				r.send(e)
			}
		}
	}
}

// observeRetransmit records one timeout-driven resend into the
// configured sink (no-op without one).
func (r *Reliable) observeRetransmit(e Envelope, backoff time.Duration) {
	s := r.cfg.Obs
	if !s.Enabled() {
		return
	}
	s.Count("transport.retransmits", 1)
	s.Observe("transport.retransmit.attempt", int64(e.Attempt))
	s.Observe("transport.backoff.us", backoff.Microseconds())
	rec := obs.Record{
		Step: s.Step(),
		Proc: e.Src,
		Op:   obs.OpRetransmit,
		Msg:  obs.NoMsg,
		Note: fmt.Sprintf("P%d->P%d seq %d attempt %d, next in %v", e.Src, e.Dst, e.Seq, e.Attempt, backoff),
	}
	if e.Wire.Kind == protocol.UserWire {
		rec.Msg = e.Wire.Msg
	}
	s.Trace(rec)
}

// rto returns the backoff for the given retransmission attempt.
func (r *Reliable) rto(attempt int) time.Duration {
	d := r.cfg.RTO
	for i := 0; i < attempt && d < r.cfg.MaxRTO; i++ {
		d *= 2
	}
	if d > r.cfg.MaxRTO {
		d = r.cfg.MaxRTO
	}
	return d
}
