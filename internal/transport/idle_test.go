package transport

import (
	"sync/atomic"
	"testing"
	"time"

	"msgorder/internal/obs"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
	t.Fatal(msg)
}

// TestIdleLoopParksUntilWrap pins the satellite behaviour: with nothing
// pending the retransmission loop parks (IdleSkips advances, no scans),
// a Wrap wakes it and retransmission works, and after the ack the loop
// parks again instead of ticking forever.
func TestIdleLoopParksUntilWrap(t *testing.T) {
	var resent atomic.Int32
	r := NewReliable(Config{RTO: time.Millisecond, Tick: 500 * time.Microsecond},
		func(Envelope) { resent.Add(1) })
	defer r.Close()

	waitFor(t, time.Second, func() bool { return r.Counters().IdleSkips >= 1 },
		"loop never parked while idle")
	// Parked means parked: no retransmission scans happen, so IdleSkips
	// stays at exactly one park and Retransmits stays zero.
	time.Sleep(5 * time.Millisecond)
	if c := r.Counters(); c.Retransmits != 0 {
		t.Fatalf("retransmits while idle = %d, want 0", c.Retransmits)
	}
	skipsBefore := r.Counters().IdleSkips

	e := r.Wrap(0, 1, wire(0))
	waitFor(t, time.Second, func() bool { return resent.Load() > 0 },
		"Wrap did not wake the parked loop (no retransmission)")

	r.Ack(AckFor(e))
	waitFor(t, time.Second, func() bool { return r.Counters().IdleSkips > skipsBefore },
		"loop did not park again after the last ack")
	if got := r.Pending(); got != 0 {
		t.Fatalf("pending after ack = %d, want 0", got)
	}
}

// TestIdleSkipCounterReachesSink asserts the park is visible as the
// transport.retransmit.idle_skips metric the E12 run reports.
func TestIdleSkipCounterReachesSink(t *testing.T) {
	reg := obs.NewRegistry()
	r := NewReliable(Config{Obs: &obs.Sink{Metrics: reg}}, noSend)
	defer r.Close()
	waitFor(t, time.Second,
		func() bool { return reg.Counter("transport.retransmit.idle_skips") >= 1 },
		"idle_skips counter never reached the sink")
}
