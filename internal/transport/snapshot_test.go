package transport

import (
	"sync"
	"testing"
)

// TestSnapshotRestoreRoundTrip checks that a restored Reliable resumes
// with the snapshotted sender counters, receiver high-water marks and
// pending retransmission queue — the durable-restart contract.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	r := NewReliable(Config{}, noSend)
	defer r.Close()

	// Sender side: three sends on 0->1, one acked, two pending.
	a := r.Wrap(0, 1, wire(0))
	r.Wrap(0, 1, wire(1))
	r.Wrap(0, 1, wire(2))
	r.Ack(AckFor(a))
	// Receiver side: accept seqs 1 and 3 on 2->0 (gap at 2).
	e1 := Envelope{Src: 2, Dst: 0, Kind: Data, Seq: 1, Wire: wire(10)}
	e3 := Envelope{Src: 2, Dst: 0, Kind: Data, Seq: 3, Wire: wire(11)}
	if !r.Accept(e1) || !r.Accept(e3) {
		t.Fatal("setup accepts must be fresh")
	}

	snap := r.SnapshotState()

	var mu sync.Mutex
	var resent []Envelope
	r2 := NewReliable(Config{}, func(e Envelope) {
		mu.Lock()
		resent = append(resent, e)
		mu.Unlock()
	})
	defer r2.Close()
	if err := r2.RestoreState(snap); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}

	// Sender counters resume where they left off: the next 0->1 send
	// must get seq 4, not 1.
	if e := r2.Wrap(0, 1, wire(3)); e.Seq != 4 {
		t.Fatalf("post-restore 0->1 seq = %d, want 4", e.Seq)
	}
	// The two unacked sends survived into pending (plus the new wrap).
	if got := r2.Pending(); got != 3 {
		t.Fatalf("pending after restore = %d, want 3", got)
	}
	// Receiver dedup state survived: retransmits of 1 and 3 are dups,
	// the gap at 2 is fresh.
	if r2.Accept(e1) {
		t.Fatal("restored receiver re-accepted seq 1")
	}
	if r2.Accept(e3) {
		t.Fatal("restored receiver re-accepted seq 3")
	}
	e2 := Envelope{Src: 2, Dst: 0, Kind: Data, Seq: 2, Wire: wire(12)}
	if !r2.Accept(e2) {
		t.Fatal("restored receiver rejected the gap fill at seq 2")
	}
	// With the gap filled, the cumulative mark covers all three.
	if got := r2.CumFor(Envelope{Src: 2, Dst: 0}); got != 3 {
		t.Fatalf("cum after gap fill = %d, want 3", got)
	}
}

// TestRestoreRetransmitsImmediately checks that pending envelopes come
// back with an expired deadline: a send unacked at snapshot time must
// not be stranded waiting out a long pre-crash RTO.
func TestRestoreRetransmitsImmediately(t *testing.T) {
	r := NewReliable(Config{}, noSend)
	r.Wrap(0, 1, wire(0))
	snap := r.SnapshotState()
	r.Close()

	sent := make(chan Envelope, 16)
	r2 := NewReliable(Config{}, func(e Envelope) { sent <- e })
	defer r2.Close()
	if err := r2.RestoreState(snap); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	e := <-sent
	if e.Seq != 1 || e.Src != 0 || e.Dst != 1 || e.Wire.Msg != 0 {
		t.Fatalf("retransmitted envelope = %+v", e)
	}
}

// TestMarkAcceptedReplaysDedupState checks that replaying journaled
// receive seqs rebuilds the same dedup state live Accepts would have.
func TestMarkAcceptedReplaysDedupState(t *testing.T) {
	r := NewReliable(Config{}, noSend)
	defer r.Close()
	r.MarkAccepted(1, 0, 1)
	r.MarkAccepted(1, 0, 2)
	r.MarkAccepted(1, 0, 4) // gap at 3
	if got := r.CumFor(Envelope{Src: 1, Dst: 0}); got != 2 {
		t.Fatalf("cum = %d, want 2", got)
	}
	for _, seq := range []uint64{1, 2, 4} {
		if r.Accept(Envelope{Src: 1, Dst: 0, Kind: Data, Seq: seq}) {
			t.Fatalf("seq %d re-accepted after MarkAccepted", seq)
		}
	}
	if !r.Accept(Envelope{Src: 1, Dst: 0, Kind: Data, Seq: 3}) {
		t.Fatal("gap fill at 3 rejected")
	}
	if got := r.CumFor(Envelope{Src: 1, Dst: 0}); got != 4 {
		t.Fatalf("cum after gap fill = %d, want 4", got)
	}
	// MarkAccepted is a replay primitive: the only counter traffic above
	// must be the three live Accepts it turned into dups.
	if c := r.Counters(); c.DupsDropped != 3 {
		t.Fatalf("counters = %+v, want 3 dups from the live re-accepts", c)
	}
}
