// Package event defines the four-event message model of Murty & Garg:
// every user message x consists of the system events invoke (x.s*),
// send (x.s), receive (x.r*), and deliver (x.r). The user only observes
// send and deliver; protocols act by inhibiting the controllable events
// send and deliver.
package event

import "fmt"

// ProcID identifies a process. Processes are numbered 0..n-1.
type ProcID int

// MsgID identifies a message within a run. Messages are numbered 0..m-1.
type MsgID int

// Color is an optional message attribute used by guarded specifications
// (e.g. "red marker messages" in flush orderings). The zero value is
// ColorNone.
type Color int

// Message colors. Specifications may constrain variables to a color.
const (
	ColorNone Color = iota
	ColorRed
	ColorBlue
	ColorGreen
)

// String returns the lowercase color name.
func (c Color) String() string {
	switch c {
	case ColorNone:
		return "none"
	case ColorRed:
		return "red"
	case ColorBlue:
		return "blue"
	case ColorGreen:
		return "green"
	default:
		return fmt.Sprintf("color(%d)", int(c))
	}
}

// ParseColor maps a color name to its Color, reporting ok=false for
// unknown names.
func ParseColor(s string) (Color, bool) {
	switch s {
	case "none":
		return ColorNone, true
	case "red":
		return ColorRed, true
	case "blue":
		return ColorBlue, true
	case "green":
		return ColorGreen, true
	default:
		return ColorNone, false
	}
}

// Key is an optional ordering key. Messages with different keys belong
// to independent ordering domains: a specification marked per-key only
// constrains same-key messages, so a sharded runtime may run one
// lightweight protocol instance per key with no cross-key blocking.
// The zero value NoKey means "unkeyed" — the single global ordering
// domain every pre-sharding run lives in.
type Key uint64

// NoKey is the unkeyed (global ordering domain) sentinel.
const NoKey Key = 0

// KeyOf hashes an application key string onto a Key. The hash is FNV-1a
// folded so it never collides with NoKey: every named key lands in a
// real ordering domain.
func KeyOf(s string) Key {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	if Key(h) == NoKey {
		return Key(1)
	}
	return Key(h)
}

// Kind distinguishes the four system events of a message.
type Kind uint8

// The four system events, in the order they occur for a single message.
const (
	Invoke  Kind = iota + 1 // x.s*: the user requests the send
	Send                    // x.s : the protocol releases the message
	Receive                 // x.r*: the message arrives at the destination
	Deliver                 // x.r : the protocol hands it to the user
)

// String returns the paper's notation for the event kind.
func (k Kind) String() string {
	switch k {
	case Invoke:
		return "s*"
	case Send:
		return "s"
	case Receive:
		return "r*"
	case Deliver:
		return "r"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// UserVisible reports whether the kind survives the user's-view projection
// (only send and deliver do).
func (k Kind) UserVisible() bool { return k == Send || k == Deliver }

// SenderSide reports whether the event occurs at the sending process.
func (k Kind) SenderSide() bool { return k == Invoke || k == Send }

// Valid reports whether k is one of the four defined kinds.
func (k Kind) Valid() bool { return k >= Invoke && k <= Deliver }

// Message carries the immutable attributes of a user message.
type Message struct {
	ID    MsgID
	From  ProcID // sending process
	To    ProcID // destination process
	Color Color
	// Key is the message's ordering domain (NoKey = the global domain).
	Key Key
}

// String renders the message as "m3(P0->P1)".
func (m Message) String() string {
	s := fmt.Sprintf("m%d(P%d->P%d)", m.ID, m.From, m.To)
	if m.Color != ColorNone {
		s += ":" + m.Color.String()
	}
	if m.Key != NoKey {
		s += fmt.Sprintf("#%x", uint64(m.Key))
	}
	return s
}

// Event is a system event: one of the four kinds of one message.
type Event struct {
	Msg  MsgID
	Kind Kind
}

// E is shorthand for constructing an Event.
func E(m MsgID, k Kind) Event { return Event{Msg: m, Kind: k} }

// String renders the event as "m3.s*".
func (e Event) String() string { return fmt.Sprintf("m%d.%s", e.Msg, e.Kind) }

// Proc returns the process at which the event occurs, given the message's
// endpoints.
func (e Event) Proc(m Message) ProcID {
	if e.Kind.SenderSide() {
		return m.From
	}
	return m.To
}

// Index packs an event into a dense integer 4*msg+offset, suitable for
// poset node ids. Offsets follow temporal order: s*=0, s=1, r*=2, r=3.
func (e Event) Index() int { return 4*int(e.Msg) + int(e.Kind-Invoke) }

// FromIndex is the inverse of Index.
func FromIndex(i int) Event {
	return Event{Msg: MsgID(i / 4), Kind: Kind(i%4) + Invoke}
}

// UserIndex packs a user-visible event into 2*msg+offset (send=0,
// deliver=1). It must only be called on Send or Deliver events.
func (e Event) UserIndex() int {
	off := 0
	if e.Kind == Deliver {
		off = 1
	}
	return 2*int(e.Msg) + off
}

// FromUserIndex is the inverse of UserIndex.
func FromUserIndex(i int) Event {
	k := Send
	if i%2 == 1 {
		k = Deliver
	}
	return Event{Msg: MsgID(i / 2), Kind: k}
}
