package event

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := []struct {
		k    Kind
		want string
	}{
		{Invoke, "s*"},
		{Send, "s"},
		{Receive, "r*"},
		{Deliver, "r"},
		{Kind(9), "kind(9)"},
	}
	for _, c := range cases {
		if got := c.k.String(); got != c.want {
			t.Errorf("Kind(%d).String() = %q, want %q", c.k, got, c.want)
		}
	}
}

func TestKindPredicates(t *testing.T) {
	if !Send.UserVisible() || !Deliver.UserVisible() {
		t.Error("send and deliver must be user visible")
	}
	if Invoke.UserVisible() || Receive.UserVisible() {
		t.Error("invoke and receive must not be user visible")
	}
	if !Invoke.SenderSide() || !Send.SenderSide() {
		t.Error("invoke and send are sender side")
	}
	if Receive.SenderSide() || Deliver.SenderSide() {
		t.Error("receive and deliver are receiver side")
	}
	for k := Invoke; k <= Deliver; k++ {
		if !k.Valid() {
			t.Errorf("%v should be valid", k)
		}
	}
	if Kind(0).Valid() || Kind(5).Valid() {
		t.Error("0 and 5 are invalid kinds")
	}
}

func TestEventProc(t *testing.T) {
	m := Message{ID: 1, From: 3, To: 7}
	if got := E(1, Invoke).Proc(m); got != 3 {
		t.Errorf("invoke proc = %d, want 3", got)
	}
	if got := E(1, Send).Proc(m); got != 3 {
		t.Errorf("send proc = %d, want 3", got)
	}
	if got := E(1, Receive).Proc(m); got != 7 {
		t.Errorf("receive proc = %d, want 7", got)
	}
	if got := E(1, Deliver).Proc(m); got != 7 {
		t.Errorf("deliver proc = %d, want 7", got)
	}
}

func TestIndexRoundTrip(t *testing.T) {
	f := func(msg uint8, kindRaw uint8) bool {
		k := Kind(kindRaw%4) + Invoke
		e := E(MsgID(msg), k)
		return FromIndex(e.Index()) == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIndexOrderWithinMessage(t *testing.T) {
	// Index must respect the temporal order s* < s < r* < r.
	for m := MsgID(0); m < 3; m++ {
		prev := -1
		for k := Invoke; k <= Deliver; k++ {
			i := E(m, k).Index()
			if i <= prev {
				t.Fatalf("index not increasing for m%d.%v", m, k)
			}
			prev = i
		}
	}
}

func TestUserIndexRoundTrip(t *testing.T) {
	f := func(msg uint8, deliver bool) bool {
		k := Send
		if deliver {
			k = Deliver
		}
		e := E(MsgID(msg), k)
		return FromUserIndex(e.UserIndex()) == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStrings(t *testing.T) {
	m := Message{ID: 3, From: 0, To: 1}
	if got := m.String(); got != "m3(P0->P1)" {
		t.Errorf("Message.String() = %q", got)
	}
	m.Color = ColorRed
	if got := m.String(); got != "m3(P0->P1):red" {
		t.Errorf("colored Message.String() = %q", got)
	}
	if got := E(3, Invoke).String(); got != "m3.s*" {
		t.Errorf("Event.String() = %q", got)
	}
}

func TestParseColor(t *testing.T) {
	for _, c := range []Color{ColorNone, ColorRed, ColorBlue, ColorGreen} {
		got, ok := ParseColor(c.String())
		if !ok || got != c {
			t.Errorf("ParseColor(%q) = %v,%v", c.String(), got, ok)
		}
	}
	if _, ok := ParseColor("magenta"); ok {
		t.Error("ParseColor should reject unknown names")
	}
	if Color(9).String() != "color(9)" {
		t.Error("unknown color string")
	}
}
