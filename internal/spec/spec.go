// Package spec composes multiple forbidden predicates into one
// specification: the acceptable runs are those violating none of the
// predicates (the intersection of the individual specification sets).
//
// Classification lifts cleanly: an intersection contains a limit set
// exactly when every component does, so the protocol class of a composite
// is the maximum of its components' classes, and it is implementable only
// if every component is.
package spec

import (
	"errors"
	"fmt"
	"strings"

	"msgorder/internal/check"
	"msgorder/internal/classify"
	"msgorder/internal/event"
	"msgorder/internal/predicate"
	"msgorder/internal/userview"
)

// ErrEmpty reports a specification with no predicates.
var ErrEmpty = errors.New("spec: no predicates")

// Spec is a named conjunction of forbidden predicates.
type Spec struct {
	Name  string
	Preds []*predicate.Predicate
}

// New builds a specification from predicates.
func New(name string, preds ...*predicate.Predicate) (*Spec, error) {
	if len(preds) == 0 {
		return nil, ErrEmpty
	}
	for i, p := range preds {
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("predicate %d: %w", i, err)
		}
	}
	return &Spec{Name: name, Preds: append([]*predicate.Predicate(nil), preds...)}, nil
}

// Result is the classification of a composite specification.
type Result struct {
	// Class is the protocol class required for the whole specification.
	Class classify.Class
	// PerPredicate holds each component's classification, in order.
	PerPredicate []*classify.Result
	// Dominant is the index of a component attaining the composite class.
	Dominant int
}

// Classify classifies the composite: the maximum class over components,
// with Unimplementable absorbing everything.
func (s *Spec) Classify() (*Result, error) {
	if len(s.Preds) == 0 {
		return nil, ErrEmpty
	}
	res := &Result{Class: classify.Tagless, Dominant: 0}
	for i, p := range s.Preds {
		r, err := classify.Classify(p)
		if err != nil {
			return nil, fmt.Errorf("predicate %d: %w", i, err)
		}
		res.PerPredicate = append(res.PerPredicate, r)
		if harder(r.Class, res.Class) {
			res.Class = r.Class
			res.Dominant = i
		}
	}
	return res, nil
}

// harder reports whether a requires a strictly more powerful protocol
// than b (with Unimplementable hardest).
func harder(a, b classify.Class) bool {
	return rank(a) > rank(b)
}

func rank(c classify.Class) int {
	switch c {
	case classify.Tagless:
		return 0
	case classify.Tagged:
		return 1
	case classify.General:
		return 2
	case classify.Unimplementable:
		return 3
	default:
		return -1
	}
}

// Violation names the first predicate a run violates.
type Violation struct {
	Index int
	Match check.Match
}

// Check tests a run against every component, returning the first
// violation found.
func (s *Spec) Check(r *userview.Run) (Violation, bool) {
	for i, p := range s.Preds {
		if m, found := check.FindViolation(r, p); found {
			return Violation{Index: i, Match: m}, true
		}
	}
	return Violation{}, false
}

// Satisfied reports whether the complete run satisfies every component.
func (s *Spec) Satisfied(r *userview.Run) bool {
	if !r.IsComplete() {
		return false
	}
	_, bad := s.Check(r)
	return !bad
}

// KeyViolation is a Violation located in one ordering domain.
type KeyViolation struct {
	Key event.Key
	Violation
}

// CheckPerKey tests the run's ordering domains independently: each
// per-key projection is checked against every component, and the first
// violating domain is reported. This is the keyed reading of a
// specification — the forbidden predicate ranges only over message
// pairs that share an ordering key, so cross-key pairs can never
// violate it.
func (s *Spec) CheckPerKey(r *userview.Run) (KeyViolation, bool) {
	for _, k := range r.Keys() {
		proj, err := r.ProjectKey(k)
		if err != nil {
			// A run that validated as a whole projects cleanly; treat a
			// failure as a violation of the domain rather than panicking.
			return KeyViolation{Key: k}, true
		}
		if v, bad := s.Check(proj); bad {
			return KeyViolation{Key: k, Violation: v}, true
		}
	}
	return KeyViolation{}, false
}

// SatisfiedPerKey reports whether the complete run satisfies every
// component within every ordering domain.
func (s *Spec) SatisfiedPerKey(r *userview.Run) bool {
	if !r.IsComplete() {
		return false
	}
	_, bad := s.CheckPerKey(r)
	return !bad
}

// String renders the composite.
func (s *Spec) String() string {
	parts := make([]string, len(s.Preds))
	for i, p := range s.Preds {
		parts[i] = p.String()
	}
	return fmt.Sprintf("%s{%s}", s.Name, strings.Join(parts, " AND "))
}
