package spec

import (
	"errors"
	"testing"

	"msgorder/internal/catalog"
	"msgorder/internal/classify"
	"msgorder/internal/event"
	"msgorder/internal/predicate"
	"msgorder/internal/userview"
)

func entry(t *testing.T, name string) *predicate.Predicate {
	t.Helper()
	e, ok := catalog.ByName(name)
	if !ok {
		t.Fatalf("missing catalog entry %s", name)
	}
	return e.Pred
}

func TestEmptyRejected(t *testing.T) {
	if _, err := New("nothing"); !errors.Is(err, ErrEmpty) {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
	s := &Spec{Name: "nothing"}
	if _, err := s.Classify(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
}

func TestInvalidComponentRejected(t *testing.T) {
	if _, err := New("bad", &predicate.Predicate{}); err == nil {
		t.Fatal("invalid predicate must be rejected")
	}
}

func TestCompositeClassIsMax(t *testing.T) {
	cases := []struct {
		name  string
		parts []string
		want  classify.Class
	}{
		{"fifo+flush", []string{"fifo", "global-forward-flush"}, classify.Tagged},
		{"causal+crown", []string{"causal-b2", "sync-2"}, classify.General},
		{"vacuous+vacuous", []string{"async-a", "async-e"}, classify.Tagless},
		{"vacuous+causal", []string{"async-a", "causal-b2"}, classify.Tagged},
		{"causal+impossible", []string{"causal-b2", "second-before-first"}, classify.Unimplementable},
		{"crown+impossible", []string{"sync-3", "second-before-first"}, classify.Unimplementable},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var preds []*predicate.Predicate
			for _, n := range c.parts {
				preds = append(preds, entry(t, n))
			}
			s, err := New(c.name, preds...)
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Classify()
			if err != nil {
				t.Fatal(err)
			}
			if res.Class != c.want {
				t.Fatalf("class = %v, want %v", res.Class, c.want)
			}
			if len(res.PerPredicate) != len(c.parts) {
				t.Fatalf("components = %d", len(res.PerPredicate))
			}
			if got := res.PerPredicate[res.Dominant].Class; got != c.want {
				t.Fatalf("dominant class = %v", got)
			}
		})
	}
}

func mkRun(t *testing.T, msgs []event.Message, procs [][]event.Event) *userview.Run {
	t.Helper()
	r, err := userview.New(msgs, procs)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestCheckReportsComponent(t *testing.T) {
	s, err := New("fifo-and-crown", entry(t, "fifo"), entry(t, "sync-2"))
	if err != nil {
		t.Fatal(err)
	}
	// A crossing pair: satisfies FIFO (different channels) but violates
	// the crown.
	msgs := []event.Message{
		{ID: 0, From: 0, To: 1},
		{ID: 1, From: 1, To: 0},
	}
	r := mkRun(t, msgs, [][]event.Event{
		{event.E(0, event.Send), event.E(1, event.Deliver)},
		{event.E(1, event.Send), event.E(0, event.Deliver)},
	})
	v, bad := s.Check(r)
	if !bad {
		t.Fatal("crossing pair must violate the composite")
	}
	if v.Index != 1 {
		t.Fatalf("violated component = %d, want 1 (the crown)", v.Index)
	}
	if s.Satisfied(r) {
		t.Fatal("Satisfied must agree with Check")
	}
}

func TestSatisfiedRequiresCompleteness(t *testing.T) {
	s, err := New("fifo", entry(t, "fifo"))
	if err != nil {
		t.Fatal(err)
	}
	msgs := []event.Message{{ID: 0, From: 0, To: 1}}
	r := mkRun(t, msgs, [][]event.Event{{event.E(0, event.Send)}, {}})
	if s.Satisfied(r) {
		t.Fatal("incomplete run can satisfy nothing")
	}
}

func TestSatisfiedPositive(t *testing.T) {
	s, err := New("both", entry(t, "fifo"), entry(t, "causal-b2"))
	if err != nil {
		t.Fatal(err)
	}
	msgs := []event.Message{
		{ID: 0, From: 0, To: 1},
		{ID: 1, From: 0, To: 1},
	}
	r := mkRun(t, msgs, [][]event.Event{
		{event.E(0, event.Send), event.E(1, event.Send)},
		{event.E(0, event.Deliver), event.E(1, event.Deliver)},
	})
	if !s.Satisfied(r) {
		t.Fatal("in-order run satisfies FIFO and causal ordering")
	}
}

func TestString(t *testing.T) {
	s, err := New("combo", entry(t, "fifo"), entry(t, "causal-b2"))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.String(); got == "" || got[:5] != "combo" {
		t.Fatalf("String = %q", got)
	}
}
