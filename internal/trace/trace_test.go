package trace

import (
	"errors"
	"strings"
	"testing"

	"msgorder/internal/event"
	"msgorder/internal/run"
	"msgorder/internal/userview"
)

func fifoSystemRun(t *testing.T) *run.Run {
	t.Helper()
	msgs := []event.Message{
		{ID: 0, From: 0, To: 1},
		{ID: 1, From: 0, To: 1},
	}
	r, err := run.New(msgs, [][]event.Event{
		{event.E(0, event.Invoke), event.E(0, event.Send), event.E(1, event.Invoke), event.E(1, event.Send)},
		{event.E(1, event.Receive), event.E(0, event.Receive), event.E(0, event.Deliver), event.E(1, event.Deliver)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func crownView(t *testing.T) *userview.Run {
	t.Helper()
	msgs := []event.Message{
		{ID: 0, From: 0, To: 1},
		{ID: 1, From: 1, To: 0, Color: event.ColorRed},
	}
	v, err := userview.New(msgs, [][]event.Event{
		{event.E(0, event.Send), event.E(1, event.Deliver)},
		{event.E(1, event.Send), event.E(0, event.Deliver)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestSystemDiagram(t *testing.T) {
	d := SystemDiagram(fifoSystemRun(t))
	lines := strings.Split(strings.TrimRight(d, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("diagram lines = %d:\n%s", len(lines), d)
	}
	if !strings.HasPrefix(lines[0], "P0 |") || !strings.HasPrefix(lines[1], "P1 |") {
		t.Fatalf("missing process rows:\n%s", d)
	}
	for _, want := range []string{"m0.s*", "m0.s", "m0.r*", "m0.r", "m1.r*", "m0(P0->P1)"} {
		if !strings.Contains(d, want) {
			t.Errorf("diagram missing %q:\n%s", want, d)
		}
	}
	// Causality: m0.s must appear in an earlier column than m0.r*.
	if strings.Index(lines[0], "m0.s") > strings.Index(lines[1], "m0.r*") {
		t.Errorf("send column after receive column:\n%s", d)
	}
}

func TestUserDiagram(t *testing.T) {
	d := UserDiagram(crownView(t))
	for _, want := range []string{"m0.s", "m1.r", "m1(P1->P0):red"} {
		if !strings.Contains(d, want) {
			t.Errorf("diagram missing %q:\n%s", want, d)
		}
	}
	if strings.Contains(d, "m0.s*") {
		t.Error("user diagram must not contain system events")
	}
}

func TestEmptyDiagram(t *testing.T) {
	v, err := userview.New(nil, [][]event.Event{{}, {}})
	if err != nil {
		t.Fatal(err)
	}
	d := UserDiagram(v)
	if !strings.Contains(d, "P0 |") {
		t.Fatalf("empty diagram should still show processes:\n%q", d)
	}
}

func TestParseEvent(t *testing.T) {
	cases := []struct {
		s    string
		want event.Event
	}{
		{"m0.s*", event.E(0, event.Invoke)},
		{"m3.s", event.E(3, event.Send)},
		{"m12.r*", event.E(12, event.Receive)},
		{"m7.r", event.E(7, event.Deliver)},
	}
	for _, c := range cases {
		got, err := ParseEvent(c.s)
		if err != nil || got != c.want {
			t.Errorf("ParseEvent(%q) = %v, %v", c.s, got, err)
		}
		if EventString(c.want) != c.s {
			t.Errorf("EventString(%v) = %q, want %q", c.want, EventString(c.want), c.s)
		}
	}
	for _, bad := range []string{"", "m.s", "x3.s", "m3.q", "m3"} {
		if _, err := ParseEvent(bad); !errors.Is(err, ErrDecode) {
			t.Errorf("ParseEvent(%q) err = %v, want ErrDecode", bad, err)
		}
	}
}

func TestSystemJSONRoundTrip(t *testing.T) {
	r := fifoSystemRun(t)
	data, err := EncodeSystem(r)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeSystem(data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(r) {
		t.Fatal("round trip changed the system run")
	}
}

func TestUserViewJSONRoundTrip(t *testing.T) {
	v := crownView(t)
	data, err := EncodeUserView(v)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeUserView(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Key() != v.Key() {
		t.Fatal("round trip changed the user view")
	}
	if back.Message(1).Color != event.ColorRed {
		t.Fatal("color lost in round trip")
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []string{
		"not json",
		`{"messages":[{"id":0,"from":0,"to":1,"color":"mauve"}],"procs":[[],[]]}`,
		`{"messages":[{"id":0,"from":0,"to":1}],"procs":[["bogus"],[]]}`,
	}
	for _, c := range cases {
		if _, err := DecodeUserView([]byte(c)); err == nil {
			t.Errorf("DecodeUserView(%q) should fail", c)
		}
		if _, err := DecodeSystem([]byte(c)); err == nil {
			t.Errorf("DecodeSystem(%q) should fail", c)
		}
	}
	// Valid JSON, invalid run (deliver without send) must be rejected by
	// revalidation.
	bad := `{"messages":[{"id":0,"from":0,"to":1}],"procs":[[],["m0.r"]]}`
	if _, err := DecodeUserView([]byte(bad)); err == nil {
		t.Error("revalidation should reject deliver-without-send")
	}
}
