// Package trace renders runs as ASCII time diagrams — the format of the
// paper's figures — and serializes runs to JSON for storage and diffing.
//
// A diagram lays every event on a global time axis (a deterministic
// linear extension of the causality relation), one row per process:
//
//	P0 | m0.s* m0.s  .     .     m1.s* m1.s  .     .
//	P1 | .     .     m1.r* m1.r  .     .     m0.r* m0.r
//	     m0: P0->P1   m1: P0->P1
package trace

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"msgorder/internal/event"
	"msgorder/internal/poset"
	"msgorder/internal/run"
	"msgorder/internal/userview"
)

// ErrDecode reports malformed serialized runs.
var ErrDecode = errors.New("trace: malformed run encoding")

// SystemDiagram renders a system run as an ASCII time diagram.
func SystemDiagram(r *run.Run) string {
	var seqs [][]event.Event
	for p := 0; p < r.NumProcs(); p++ {
		seqs = append(seqs, r.ProcSeq(event.ProcID(p)))
	}
	order := linearize(seqs, r.Messages(), true)
	return grid(seqs, r.Messages(), order)
}

// UserDiagram renders a user-view run as an ASCII time diagram.
func UserDiagram(v *userview.Run) string {
	var seqs [][]event.Event
	for p := 0; p < v.NumProcs(); p++ {
		seqs = append(seqs, v.ProcSeq(event.ProcID(p)))
	}
	order := linearize(seqs, v.Messages(), false)
	return grid(seqs, v.Messages(), order)
}

// linearize produces a deterministic global order of all present events:
// a topological order of per-process sequencing plus message edges.
func linearize(seqs [][]event.Event, msgs []event.Message, system bool) []event.Event {
	// Dense ids: 4*msg+kind covers both views.
	g := poset.NewDAG(4 * len(msgs))
	present := make([]bool, 4*len(msgs))
	for _, seq := range seqs {
		for i, e := range seq {
			present[e.Index()] = true
			if i > 0 {
				g.AddEdge(seq[i-1].Index(), e.Index())
			}
		}
	}
	for _, m := range msgs {
		var from, to event.Event
		if system {
			from, to = event.E(m.ID, event.Send), event.E(m.ID, event.Receive)
		} else {
			from, to = event.E(m.ID, event.Send), event.E(m.ID, event.Deliver)
		}
		if present[from.Index()] && present[to.Index()] {
			g.AddEdge(from.Index(), to.Index())
		}
	}
	order, err := g.TopoSort()
	if err != nil {
		// Recorded runs are always acyclic; fall back to sequence order
		// for robustness.
		var out []event.Event
		for _, seq := range seqs {
			out = append(out, seq...)
		}
		return out
	}
	var out []event.Event
	for _, idx := range order {
		if present[idx] {
			out = append(out, event.FromIndex(idx))
		}
	}
	return out
}

// grid renders rows of aligned event labels.
func grid(seqs [][]event.Event, msgs []event.Message, order []event.Event) string {
	col := make(map[event.Event]int, len(order))
	width := 1
	for i, e := range order {
		col[e] = i
		if w := len(e.String()); w > width {
			width = w
		}
	}
	pad := func(s string) string {
		return s + strings.Repeat(" ", width-len(s)+1)
	}
	var b strings.Builder
	for p, seq := range seqs {
		fmt.Fprintf(&b, "P%d |", p)
		cells := make([]string, len(order))
		for i := range cells {
			cells[i] = "."
		}
		for _, e := range seq {
			cells[col[e]] = e.String()
		}
		for _, c := range cells {
			b.WriteString(" " + pad(c))
		}
		b.WriteString("\n")
	}
	if len(msgs) > 0 {
		b.WriteString("     ")
		parts := make([]string, len(msgs))
		for i, m := range msgs {
			parts[i] = m.String()
		}
		b.WriteString(strings.Join(parts, "  "))
		b.WriteString("\n")
	}
	return b.String()
}

// --- JSON serialization ---

type msgJSON struct {
	ID    int    `json:"id"`
	From  int    `json:"from"`
	To    int    `json:"to"`
	Color string `json:"color,omitempty"`
}

type runJSON struct {
	Messages []msgJSON  `json:"messages"`
	Procs    [][]string `json:"procs"`
}

func messagesToJSON(msgs []event.Message) []msgJSON {
	out := make([]msgJSON, len(msgs))
	for i, m := range msgs {
		out[i] = msgJSON{ID: int(m.ID), From: int(m.From), To: int(m.To)}
		if m.Color != event.ColorNone {
			out[i].Color = m.Color.String()
		}
	}
	return out
}

func messagesFromJSON(in []msgJSON) ([]event.Message, error) {
	out := make([]event.Message, len(in))
	for i, m := range in {
		color := event.ColorNone
		if m.Color != "" {
			c, ok := event.ParseColor(m.Color)
			if !ok {
				return nil, fmt.Errorf("%w: color %q", ErrDecode, m.Color)
			}
			color = c
		}
		out[i] = event.Message{
			ID:    event.MsgID(m.ID),
			From:  event.ProcID(m.From),
			To:    event.ProcID(m.To),
			Color: color,
		}
	}
	return out, nil
}

// EventString renders an event in the paper's notation ("m3.s*").
func EventString(e event.Event) string { return e.String() }

// ParseEvent parses the paper's notation back into an event.
func ParseEvent(s string) (event.Event, error) {
	var id int
	var kind string
	if _, err := fmt.Sscanf(s, "m%d.%s", &id, &kind); err != nil {
		return event.Event{}, fmt.Errorf("%w: event %q", ErrDecode, s)
	}
	var k event.Kind
	switch kind {
	case "s*":
		k = event.Invoke
	case "s":
		k = event.Send
	case "r*":
		k = event.Receive
	case "r":
		k = event.Deliver
	default:
		return event.Event{}, fmt.Errorf("%w: event kind %q", ErrDecode, kind)
	}
	return event.E(event.MsgID(id), k), nil
}

func seqsToJSON(n int, seq func(event.ProcID) []event.Event) [][]string {
	out := make([][]string, n)
	for p := 0; p < n; p++ {
		events := seq(event.ProcID(p))
		row := make([]string, len(events))
		for i, e := range events {
			row[i] = e.String()
		}
		out[p] = row
	}
	return out
}

func seqsFromJSON(in [][]string) ([][]event.Event, error) {
	out := make([][]event.Event, len(in))
	for p, row := range in {
		for _, s := range row {
			e, err := ParseEvent(s)
			if err != nil {
				return nil, err
			}
			out[p] = append(out[p], e)
		}
	}
	return out, nil
}

// EncodeUserView serializes a user-view run to JSON.
func EncodeUserView(v *userview.Run) ([]byte, error) {
	return json.MarshalIndent(runJSON{
		Messages: messagesToJSON(v.Messages()),
		Procs:    seqsToJSON(v.NumProcs(), v.ProcSeq),
	}, "", "  ")
}

// DecodeUserView parses a serialized user-view run, revalidating it.
func DecodeUserView(data []byte) (*userview.Run, error) {
	var rj runJSON
	if err := json.Unmarshal(data, &rj); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDecode, err)
	}
	msgs, err := messagesFromJSON(rj.Messages)
	if err != nil {
		return nil, err
	}
	procs, err := seqsFromJSON(rj.Procs)
	if err != nil {
		return nil, err
	}
	return userview.New(msgs, procs)
}

// EncodeSystem serializes a system run to JSON.
func EncodeSystem(r *run.Run) ([]byte, error) {
	return json.MarshalIndent(runJSON{
		Messages: messagesToJSON(r.Messages()),
		Procs:    seqsToJSON(r.NumProcs(), r.ProcSeq),
	}, "", "  ")
}

// DecodeSystem parses a serialized system run, revalidating it.
func DecodeSystem(data []byte) (*run.Run, error) {
	var rj runJSON
	if err := json.Unmarshal(data, &rj); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDecode, err)
	}
	msgs, err := messagesFromJSON(rj.Messages)
	if err != nil {
		return nil, err
	}
	procs, err := seqsFromJSON(rj.Procs)
	if err != nil {
		return nil, err
	}
	return run.New(msgs, procs)
}
