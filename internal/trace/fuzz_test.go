package trace

import "testing"

// FuzzDecodeUserView drives the JSON run decoder with arbitrary bytes: it
// must never panic, and anything it accepts must re-encode and decode to
// the same run.
func FuzzDecodeUserView(f *testing.F) {
	seeds := []string{
		`{"messages":[{"id":0,"from":0,"to":1}],"procs":[["m0.s"],["m0.r"]]}`,
		`{"messages":[],"procs":[[],[]]}`,
		`{"messages":[{"id":0,"from":0,"to":1,"color":"red"}],"procs":[["m0.s"],[]]}`,
		`{"messages":[{"id":0,"from":0,"to":1}],"procs":[[],["m0.r"]]}`,
		`not json`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := DecodeUserView(data)
		if err != nil {
			return
		}
		out, err := EncodeUserView(v)
		if err != nil {
			t.Fatalf("accepted run fails to encode: %v", err)
		}
		back, err := DecodeUserView(out)
		if err != nil {
			t.Fatalf("re-encoded run fails to decode: %v", err)
		}
		if back.Key() != v.Key() {
			t.Fatal("round trip changed the run")
		}
	})
}

// FuzzParseEvent: the event notation parser must never panic and must
// round-trip everything it accepts.
func FuzzParseEvent(f *testing.F) {
	for _, s := range []string{"m0.s", "m3.s*", "m12.r*", "m7.r", "x", "m.s", "m1.q"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		e, err := ParseEvent(s)
		if err != nil {
			return
		}
		back, err := ParseEvent(e.String())
		if err != nil || back != e {
			t.Fatalf("round trip failed for %q -> %v", s, e)
		}
	})
}
