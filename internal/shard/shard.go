// Package shard adds the ordering-key dimension to the protocol
// runtimes: every key names an independent ordering domain, ordered
// internally by the classifier-chosen minimal protocol class and
// completely unordered against other keys (the paper's specifications
// quantify over message pairs; a key partitions the pairs the forbidden
// predicate ranges over). The package provides the three pieces every
// runtime needs:
//
//	Of    — key → goroutine-shard assignment (stateless hash),
//	Ring  — key → daemon routing (consistent hashing, stable under
//	        membership change),
//	New   — a protocol.Maker combinator that turns one instance of a
//	        protocol into millions of lazily created per-key instances
//	        behind the unchanged Process interface.
//
// A sharded process stays a single protocol.Process per OS process: the
// harness's per-process serialization still holds, so inner instances
// need no locking, and cross-key independence is structural — two keys
// never share mutable state, so one key's buffered backlog cannot block
// another's delivery.
package shard

import (
	"fmt"
	"sort"

	"msgorder/internal/event"
	"msgorder/internal/protocol"
	"msgorder/internal/snapio"
)

// Of maps a key to one of n goroutine shards. The finalizer-style mix
// spreads adjacent keys (KeyOf output or small integers alike) across
// shards uniformly; Of(k, n) is stable for fixed n, so a key always
// lands on the same shard within a run.
func Of(k event.Key, n int) int {
	if n <= 1 {
		return 0
	}
	return int(mix64(uint64(k)) % uint64(n))
}

// mix64 is the splitmix64 finalizer: a cheap bijective avalanche.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Ring is a consistent-hash ring assigning keys to daemons: each daemon
// owns vnodes points on a 64-bit circle and a key belongs to the first
// point at or after its hash. Unlike Of, adding or removing one daemon
// moves only ~1/n of the keyspace, so a mod-daemon fleet can grow
// without re-homing every ordering domain.
type Ring struct {
	hashes  []uint64
	daemons []int
	n       int
}

// DefaultVnodes is the per-daemon virtual-node count NewRing uses when
// given vnodes <= 0: enough points that daemon loads stay within a few
// percent of each other.
const DefaultVnodes = 64

// NewRing builds a ring over daemons 0..n-1 with the given number of
// virtual nodes per daemon.
func NewRing(n, vnodes int) *Ring {
	if n <= 0 {
		n = 1
	}
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	type point struct {
		hash   uint64
		daemon int
	}
	pts := make([]point, 0, n*vnodes)
	for d := 0; d < n; d++ {
		for v := 0; v < vnodes; v++ {
			// Mix the (daemon, vnode) pair into a circle position; the
			// odd constant decorrelates it from key hashing in Of.
			h := mix64(uint64(d)*0x9e3779b97f4a7c15 + uint64(v) + 1)
			pts = append(pts, point{hash: h, daemon: d})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].hash != pts[j].hash {
			return pts[i].hash < pts[j].hash
		}
		return pts[i].daemon < pts[j].daemon
	})
	r := &Ring{hashes: make([]uint64, len(pts)), daemons: make([]int, len(pts)), n: n}
	for i, p := range pts {
		r.hashes[i] = p.hash
		r.daemons[i] = p.daemon
	}
	return r
}

// Daemons returns the ring's daemon count.
func (r *Ring) Daemons() int { return r.n }

// Daemon returns the daemon owning key k.
func (r *Ring) Daemon(k event.Key) int {
	h := mix64(uint64(k))
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0 // wrap around the circle
	}
	return r.daemons[i]
}

// keyEnv is the environment handed to one per-key inner instance: it
// forwards everything to the sharded process's own environment, but
// stamps outgoing wires with the key so the receiving side can
// demultiplex them back onto its instance for the same key.
type keyEnv struct {
	parent protocol.Env
	key    event.Key
}

var _ protocol.Env = (*keyEnv)(nil)

func (e *keyEnv) Self() event.ProcID { return e.parent.Self() }
func (e *keyEnv) NumProcs() int      { return e.parent.NumProcs() }
func (e *keyEnv) Deliver(id event.MsgID) {
	e.parent.Deliver(id)
}
func (e *keyEnv) Send(w protocol.Wire) {
	w.Key = e.key
	e.parent.Send(w)
}

// Process is one process's sharded protocol instance: a demultiplexer
// over lazily created per-key instances of the inner protocol. The
// instances share nothing, so the per-key cost is exactly one inner
// instance (for the common single-channel case a few small maps) and
// creating the millionth key is as cheap as creating the first.
type Process struct {
	maker protocol.Maker
	desc  protocol.Descriptor
	env   protocol.Env
	insts map[event.Key]protocol.Process
}

var (
	_ protocol.Process     = (*Process)(nil)
	_ protocol.Describer   = (*Process)(nil)
	_ protocol.Broadcaster = (*Process)(nil)
)

// New wraps a protocol maker into a sharded maker: each built Process
// demultiplexes invokes and receives by ordering key onto per-key inner
// instances. The sharded process advertises the inner protocol's
// capability class (the key stamp is harness-owned wire state, not a
// tag) and is a Snapshotter exactly when the inner protocol is.
func New(maker protocol.Maker) protocol.Maker {
	probe := maker()
	desc := protocol.Descriptor{Name: "sharded", Class: protocol.General}
	if d, ok := probe.(protocol.Describer); ok {
		in := d.Describe()
		desc = protocol.Descriptor{Name: "sharded(" + in.Name + ")", Class: in.Class}
	}
	_, snaps := probe.(protocol.Snapshotter)
	return func() protocol.Process {
		p := &Process{maker: maker, desc: desc}
		if snaps {
			return &snapProcess{p}
		}
		return p
	}
}

// Describe reports the inner protocol's class under a sharded(...) name.
func (p *Process) Describe() protocol.Descriptor { return p.desc }

// Keys returns the number of ordering domains instantiated so far.
func (p *Process) Keys() int { return len(p.insts) }

// Init prepares the demultiplexer; inner instances are created on first
// use of their key.
func (p *Process) Init(env protocol.Env) {
	p.env = env
	p.insts = make(map[event.Key]protocol.Process)
}

// instance returns the inner instance for key k, creating it lazily.
func (p *Process) instance(k event.Key) protocol.Process {
	in, ok := p.insts[k]
	if !ok {
		in = p.maker()
		in.Init(&keyEnv{parent: p.env, key: k})
		p.insts[k] = in
	}
	return in
}

// OnInvoke routes the invoke to its key's domain.
func (p *Process) OnInvoke(m event.Message) {
	p.instance(m.Key).OnInvoke(m)
}

// OnReceive routes the wire to its key's domain.
func (p *Process) OnReceive(w protocol.Wire) {
	p.instance(w.Key).OnReceive(w)
}

// OnBroadcast splits one logical broadcast by key (all copies normally
// share the invoke's key) and hands each group to its domain — as a
// native broadcast when the inner protocol supports it, as individual
// invokes otherwise.
func (p *Process) OnBroadcast(msgs []event.Message) {
	for len(msgs) > 0 {
		k := msgs[0].Key
		group := msgs[:0:0]
		rest := msgs[:0:0]
		for _, m := range msgs {
			if m.Key == k {
				group = append(group, m)
			} else {
				rest = append(rest, m)
			}
		}
		in := p.instance(k)
		if b, ok := in.(protocol.Broadcaster); ok {
			b.OnBroadcast(group)
		} else {
			for _, m := range group {
				in.OnInvoke(m)
			}
		}
		msgs = rest
	}
}

// snapVersion versions the sharded snapshot encoding.
const snapVersion = 1

// snapProcess is the Snapshotter-capable variant New returns when the
// inner protocol supports checkpointing. It is a separate type so a
// sharded non-Snapshotter protocol does not falsely satisfy the
// interface probe the crash harnesses use.
type snapProcess struct {
	*Process
}

var _ protocol.Snapshotter = (*snapProcess)(nil)

// Snapshot encodes every instantiated domain, sorted by key so the
// encoding is deterministic (the crash harness verifies recovery by
// byte comparison).
func (p *snapProcess) Snapshot() []byte {
	keys := make([]event.Key, 0, len(p.insts))
	for k := range p.insts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var w snapio.Writer
	w.Byte(snapVersion)
	w.Int(len(keys))
	for _, k := range keys {
		w.U64(uint64(k))
		w.Bytes(p.insts[k].(protocol.Snapshotter).Snapshot())
	}
	return w.Out()
}

// Restore rebuilds every domain from a Snapshot onto a freshly Init'd
// sharded process.
func (p *snapProcess) Restore(b []byte) error {
	r := snapio.NewReader(b)
	if v := r.Byte(); v != snapVersion {
		return fmt.Errorf("shard: snapshot version %d, want %d", v, snapVersion)
	}
	n := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	insts := make(map[event.Key]protocol.Process, n)
	for i := 0; i < n; i++ {
		k := event.Key(r.U64())
		snap := r.Bytes()
		if err := r.Err(); err != nil {
			return err
		}
		in := p.maker()
		in.Init(&keyEnv{parent: p.env, key: k})
		if err := in.(protocol.Snapshotter).Restore(snap); err != nil {
			return fmt.Errorf("shard: key %#x: %w", uint64(k), err)
		}
		insts[k] = in
	}
	if err := r.Close(); err != nil {
		return err
	}
	p.insts = insts
	return nil
}
