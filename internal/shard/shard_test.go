package shard

import (
	"bytes"
	"fmt"
	"testing"

	"msgorder/internal/event"
	"msgorder/internal/protocol"
	"msgorder/internal/protocols/fifo"
)

// stubEnv is a harness-free protocol environment: sends are captured,
// deliveries recorded in order.
type stubEnv struct {
	self      event.ProcID
	n         int
	sent      []protocol.Wire
	delivered []event.MsgID
}

func (e *stubEnv) Self() event.ProcID { return e.self }
func (e *stubEnv) NumProcs() int      { return e.n }
func (e *stubEnv) Deliver(id event.MsgID) {
	e.delivered = append(e.delivered, id)
}
func (e *stubEnv) Send(w protocol.Wire) {
	w.From = e.self
	e.sent = append(e.sent, w)
}

func TestOfDeterministicInRangeAndSpread(t *testing.T) {
	const shards = 8
	counts := make([]int, shards)
	for i := 0; i < 100000; i++ {
		k := event.Key(i)
		s := Of(k, shards)
		if s != Of(k, shards) {
			t.Fatalf("Of(%d) not deterministic", i)
		}
		if s < 0 || s >= shards {
			t.Fatalf("Of(%d) = %d out of range", i, s)
		}
		counts[s]++
	}
	for s, c := range counts {
		// Uniform would be 12500; the mix must keep every shard within a
		// loose band even though input keys are consecutive integers.
		if c < 10000 || c > 15000 {
			t.Fatalf("shard %d got %d of 100000 keys — sequential keys not spread", s, c)
		}
	}
	if Of(event.KeyOf("x"), 1) != 0 || Of(event.KeyOf("x"), 0) != 0 {
		t.Fatal("degenerate shard counts must map to shard 0")
	}
}

func TestRingCoverageAndStability(t *testing.T) {
	const keys = 50000
	r4 := NewRing(4, 0)
	if r4.Daemons() != 4 {
		t.Fatalf("Daemons() = %d, want 4", r4.Daemons())
	}
	counts := make([]int, 4)
	for i := 0; i < keys; i++ {
		d := r4.Daemon(event.Key(i))
		if d < 0 || d >= 4 {
			t.Fatalf("key %d routed to daemon %d", i, d)
		}
		counts[d]++
	}
	for d, c := range counts {
		if c < keys/20 {
			t.Fatalf("daemon %d owns only %d of %d keys — ring badly unbalanced", d, c, keys)
		}
	}
	// Consistent hashing's point: growing the fleet re-homes only a
	// fraction of the keyspace (~1/n ideally), not all of it.
	r5 := NewRing(5, 0)
	moved := 0
	for i := 0; i < keys; i++ {
		if r4.Daemon(event.Key(i)) != r5.Daemon(event.Key(i)) {
			moved++
		}
	}
	if frac := float64(moved) / keys; frac > 0.5 {
		t.Fatalf("adding one daemon re-homed %.0f%% of keys — not consistent hashing", frac*100)
	}
	// And it must be deterministic across constructions.
	again := NewRing(4, 0)
	for i := 0; i < 1000; i++ {
		if r4.Daemon(event.Key(i)) != again.Daemon(event.Key(i)) {
			t.Fatal("two rings over the same daemons disagree")
		}
	}
}

// TestCrossKeyIndependence is the sharding invariant in its purest
// form: a domain blocked on an out-of-order arrival (fifo holds the
// wire) must not delay another domain's delivery by a single step.
func TestCrossKeyIndependence(t *testing.T) {
	maker := New(fifo.Maker)
	kA, kB := event.KeyOf("A"), event.KeyOf("B")

	senderEnv := &stubEnv{self: 0, n: 2}
	sender := maker()
	sender.Init(senderEnv)
	sender.OnInvoke(event.Message{ID: 0, From: 0, To: 1, Key: kA})
	sender.OnInvoke(event.Message{ID: 1, From: 0, To: 1, Key: kA})
	sender.OnInvoke(event.Message{ID: 2, From: 0, To: 1, Key: kB})
	if len(senderEnv.sent) != 3 {
		t.Fatalf("sender produced %d wires, want 3", len(senderEnv.sent))
	}
	for i, k := range []event.Key{kA, kA, kB} {
		if senderEnv.sent[i].Key != k {
			t.Fatalf("wire %d carries key %#x, want %#x", i, uint64(senderEnv.sent[i].Key), uint64(k))
		}
	}

	recvEnv := &stubEnv{self: 1, n: 2}
	recv := maker()
	recv.Init(recvEnv)
	// Key A's second message arrives first: its domain holds it.
	recv.OnReceive(senderEnv.sent[1])
	if len(recvEnv.delivered) != 0 {
		t.Fatal("out-of-order wire delivered")
	}
	// Key B must deliver immediately despite A's backlog.
	recv.OnReceive(senderEnv.sent[2])
	if len(recvEnv.delivered) != 1 || recvEnv.delivered[0] != 2 {
		t.Fatalf("key B blocked behind key A: delivered %v", recvEnv.delivered)
	}
	// A's missing head unblocks its domain.
	recv.OnReceive(senderEnv.sent[0])
	want := []event.MsgID{2, 0, 1}
	if len(recvEnv.delivered) != 3 {
		t.Fatalf("delivered %v, want %v", recvEnv.delivered, want)
	}
	for i, id := range want {
		if recvEnv.delivered[i] != id {
			t.Fatalf("delivered %v, want %v", recvEnv.delivered, want)
		}
	}
}

// TestBulkSnapshotRestore checkpoints thousands of lazily created
// domains and restores them into a fresh process: the re-snapshot must
// be byte-identical and sequencing state must survive per key.
func TestBulkSnapshotRestore(t *testing.T) {
	const domains = 3000
	maker := New(fifo.Maker)
	env := &stubEnv{self: 0, n: 2}
	p := maker()
	p.Init(env)
	keys := make([]event.Key, domains)
	for i := range keys {
		keys[i] = event.KeyOf(fmt.Sprintf("bulk-%d", i))
		p.OnInvoke(event.Message{ID: event.MsgID(i), From: 0, To: 1, Key: keys[i]})
	}
	if n := p.(interface{ Keys() int }).Keys(); n != domains {
		t.Fatalf("instantiated %d domains, want %d", n, domains)
	}
	snap := p.(protocol.Snapshotter).Snapshot()

	fresh := maker()
	fresh.Init(&stubEnv{self: 0, n: 2})
	if err := fresh.(protocol.Snapshotter).Restore(snap); err != nil {
		t.Fatal(err)
	}
	if n := fresh.(interface{ Keys() int }).Keys(); n != domains {
		t.Fatalf("restore rebuilt %d domains, want %d", n, domains)
	}
	again := fresh.(protocol.Snapshotter).Snapshot()
	if !bytes.Equal(snap, again) {
		t.Fatal("snapshot -> restore -> snapshot is not byte-identical")
	}
	// Sequencing continues where the checkpoint left off: the restored
	// domain's next wire to P1 carries seq 1, not 0.
	freshEnv := &stubEnv{self: 0, n: 2}
	fresh.Init(freshEnv)
	if err := fresh.(protocol.Snapshotter).Restore(snap); err != nil {
		t.Fatal(err)
	}
	fresh.OnInvoke(event.Message{ID: domains, From: 0, To: 1, Key: keys[0]})
	recv := maker()
	recvEnv := &stubEnv{self: 1, n: 2}
	recv.Init(recvEnv)
	recv.OnReceive(freshEnv.sent[0])
	if len(recvEnv.delivered) != 0 {
		t.Fatal("post-restore wire delivered at seq 0 — per-key sender state was lost")
	}
}

func TestRestoreRejectsCorruptSnapshots(t *testing.T) {
	maker := New(fifo.Maker)
	p := maker()
	p.Init(&stubEnv{self: 0, n: 2})
	if err := p.(protocol.Snapshotter).Restore([]byte{99}); err == nil {
		t.Fatal("wrong version accepted")
	}
	snap := p.(protocol.Snapshotter).Snapshot()
	if err := p.(protocol.Snapshotter).Restore(append(snap, 0)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

// notSnapshottable is a minimal inner protocol without checkpointing.
type notSnapshottable struct{ env protocol.Env }

func (p *notSnapshottable) Init(env protocol.Env) { p.env = env }
func (p *notSnapshottable) OnInvoke(m event.Message) {
	p.env.Send(protocol.Wire{To: m.To, Kind: protocol.UserWire, Msg: m.ID})
}
func (p *notSnapshottable) OnReceive(w protocol.Wire) { p.env.Deliver(w.Msg) }

func TestDescribeAndSnapshotterPropagation(t *testing.T) {
	sharded := New(fifo.Maker)()
	d, ok := sharded.(protocol.Describer)
	if !ok {
		t.Fatal("sharded process lost Describer")
	}
	if got := d.Describe(); got.Name != "sharded(fifo)" || got.Class != protocol.Tagged {
		t.Fatalf("Describe() = %+v", got)
	}
	if _, ok := sharded.(protocol.Snapshotter); !ok {
		t.Fatal("sharded fifo lost Snapshotter")
	}
	plain := New(func() protocol.Process { return &notSnapshottable{} })()
	if _, ok := plain.(protocol.Snapshotter); ok {
		t.Fatal("sharded non-snapshotter falsely advertises Snapshotter")
	}
}
