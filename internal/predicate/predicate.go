// Package predicate implements the forbidden-predicate specification
// language of Section 4 of Murty & Garg. A forbidden predicate
//
//	B ≡ ∃ x1, ..., xm ∈ M : ∧ (xj.p ▷ xk.q)
//
// is an existentially quantified conjunction of causality atoms over
// message variables, where p and q name the send or deliver event of a
// message. Variables may additionally be constrained by attribute guards
// on the sending process, the receiving process, and the message color
// (Section 4.1). The specification set X_B contains exactly the complete
// user-view runs in which no instantiation of the variables satisfies B.
//
// Predicates can be built programmatically (see Builder) or parsed from a
// concise text syntax:
//
//	forbidden x, y :
//	    process(x.s) == process(y.s) && process(x.r) == process(y.r) :
//	    x.s -> y.s && y.r -> x.r
//
// The leading keyword "forbidden" (or "exists") is optional, as is the
// guard section. "->" may also be written "▷".
package predicate

import (
	"errors"
	"fmt"
	"strings"

	"msgorder/internal/event"
)

// Part selects the user-visible event of a message variable.
type Part uint8

// The two user-visible event parts.
const (
	S Part = iota + 1 // send
	R                 // deliver (the paper writes r for the delivery event)
)

// String returns "s" or "r".
func (p Part) String() string {
	switch p {
	case S:
		return "s"
	case R:
		return "r"
	default:
		return fmt.Sprintf("part(%d)", uint8(p))
	}
}

// Kind converts the part to the user-visible event kind.
func (p Part) Kind() event.Kind {
	if p == S {
		return event.Send
	}
	return event.Deliver
}

// EventRef names one event of one predicate variable, e.g. x.s.
type EventRef struct {
	Var  int // index into Predicate.Vars
	Part Part
}

// Atom is a causality conjunct From ▷ To.
type Atom struct {
	From, To EventRef
}

// SameVar reports whether both endpoints name the same variable.
func (a Atom) SameVar() bool { return a.From.Var == a.To.Var }

// Trivial reports whether the atom holds for every message in a complete
// run: x.s ▷ x.r.
func (a Atom) Trivial() bool {
	return a.SameVar() && a.From.Part == S && a.To.Part == R
}

// Impossible reports whether the atom can never hold: x.p ▷ x.p or
// x.r ▷ x.s (▷ is irreflexive, and a message's send always precedes its
// delivery).
func (a Atom) Impossible() bool {
	return a.SameVar() && !a.Trivial()
}

// GuardKind distinguishes attribute guards.
type GuardKind uint8

// Guard kinds.
const (
	GuardProcEq  GuardKind = iota + 1 // process(a) == process(b)
	GuardProcNeq                      // process(a) != process(b)
	GuardColorIs                      // color(x) == c
)

// Guard is an attribute constraint on the quantified variables.
type Guard struct {
	Kind GuardKind
	// A and B are used by the process guards: process(A) relates to
	// process(B). Part selects sender (s) or receiver (r) side.
	A, B EventRef
	// Var and Color are used by the color guard.
	Var   int
	Color event.Color
}

// Predicate is a forbidden predicate: quantified variables, attribute
// guards, and a conjunction of causality atoms.
type Predicate struct {
	Vars   []string
	Guards []Guard
	Atoms  []Atom
}

// Validation errors.
var (
	ErrNoVars      = errors.New("predicate: no variables")
	ErrNoAtoms     = errors.New("predicate: no atoms")
	ErrDupVar      = errors.New("predicate: duplicate variable")
	ErrBadVarIndex = errors.New("predicate: variable index out of range")
	ErrBadPart     = errors.New("predicate: invalid event part")
	ErrBadGuard    = errors.New("predicate: invalid guard")
)

// Validate checks structural well-formedness. Semantically degenerate
// atoms (same-variable atoms) are allowed — the classifier handles them —
// but indices and parts must be in range.
func (p *Predicate) Validate() error {
	if len(p.Vars) == 0 {
		return ErrNoVars
	}
	if len(p.Atoms) == 0 {
		return ErrNoAtoms
	}
	seen := make(map[string]bool, len(p.Vars))
	for _, v := range p.Vars {
		if seen[v] {
			return fmt.Errorf("%w: %s", ErrDupVar, v)
		}
		seen[v] = true
	}
	checkRef := func(r EventRef) error {
		if r.Var < 0 || r.Var >= len(p.Vars) {
			return fmt.Errorf("%w: %d", ErrBadVarIndex, r.Var)
		}
		if r.Part != S && r.Part != R {
			return fmt.Errorf("%w: %d", ErrBadPart, r.Part)
		}
		return nil
	}
	for _, a := range p.Atoms {
		if err := checkRef(a.From); err != nil {
			return err
		}
		if err := checkRef(a.To); err != nil {
			return err
		}
	}
	for _, g := range p.Guards {
		switch g.Kind {
		case GuardProcEq, GuardProcNeq:
			if err := checkRef(g.A); err != nil {
				return err
			}
			if err := checkRef(g.B); err != nil {
				return err
			}
		case GuardColorIs:
			if g.Var < 0 || g.Var >= len(p.Vars) {
				return fmt.Errorf("%w: %d", ErrBadVarIndex, g.Var)
			}
		default:
			return fmt.Errorf("%w: kind %d", ErrBadGuard, g.Kind)
		}
	}
	return nil
}

// VarIndex returns the index of the named variable, or -1.
func (p *Predicate) VarIndex(name string) int {
	for i, v := range p.Vars {
		if v == name {
			return i
		}
	}
	return -1
}

// refString renders an EventRef using the predicate's variable names.
func (p *Predicate) refString(r EventRef) string {
	name := "?"
	if r.Var >= 0 && r.Var < len(p.Vars) {
		name = p.Vars[r.Var]
	}
	return name + "." + r.Part.String()
}

// String renders the predicate in the parser's input syntax.
func (p *Predicate) String() string {
	var b strings.Builder
	b.WriteString("forbidden ")
	b.WriteString(strings.Join(p.Vars, ", "))
	if len(p.Guards) > 0 {
		b.WriteString(" : ")
		parts := make([]string, len(p.Guards))
		for i, g := range p.Guards {
			switch g.Kind {
			case GuardProcEq:
				parts[i] = fmt.Sprintf("process(%s) == process(%s)", p.refString(g.A), p.refString(g.B))
			case GuardProcNeq:
				parts[i] = fmt.Sprintf("process(%s) != process(%s)", p.refString(g.A), p.refString(g.B))
			case GuardColorIs:
				name := "?"
				if g.Var >= 0 && g.Var < len(p.Vars) {
					name = p.Vars[g.Var]
				}
				parts[i] = fmt.Sprintf("color(%s) == %s", name, g.Color)
			}
		}
		b.WriteString(strings.Join(parts, " && "))
	}
	b.WriteString(" : ")
	parts := make([]string, len(p.Atoms))
	for i, a := range p.Atoms {
		parts[i] = fmt.Sprintf("%s -> %s", p.refString(a.From), p.refString(a.To))
	}
	b.WriteString(strings.Join(parts, " && "))
	return b.String()
}

// GuardsSatisfied evaluates every guard under the assignment
// vars[i] -> msgs[i].
func (p *Predicate) GuardsSatisfied(assign []event.Message) bool {
	proc := func(r EventRef) event.ProcID {
		m := assign[r.Var]
		if r.Part == S {
			return m.From
		}
		return m.To
	}
	for _, g := range p.Guards {
		switch g.Kind {
		case GuardProcEq:
			if proc(g.A) != proc(g.B) {
				return false
			}
		case GuardProcNeq:
			if proc(g.A) == proc(g.B) {
				return false
			}
		case GuardColorIs:
			if assign[g.Var].Color != g.Color {
				return false
			}
		}
	}
	return true
}

// Clone returns a deep copy.
func (p *Predicate) Clone() *Predicate {
	return &Predicate{
		Vars:   append([]string(nil), p.Vars...),
		Guards: append([]Guard(nil), p.Guards...),
		Atoms:  append([]Atom(nil), p.Atoms...),
	}
}

// Builder assembles predicates programmatically. Methods panic on unknown
// variable names — builders are written by programmers against a fixed
// variable list, so a bad name is a programming error, matching the
// fmt.Sprintf convention of failing loudly during development.
type Builder struct {
	p   Predicate
	err error
}

// NewBuilder starts a predicate over the given variables.
func NewBuilder(vars ...string) *Builder {
	b := &Builder{}
	b.p.Vars = append(b.p.Vars, vars...)
	return b
}

func (b *Builder) ref(varName string, part Part) EventRef {
	i := b.p.VarIndex(varName)
	if i < 0 && b.err == nil {
		b.err = fmt.Errorf("predicate: unknown variable %q", varName)
	}
	return EventRef{Var: i, Part: part}
}

// Atom appends the conjunct from.fp ▷ to.tp.
func (b *Builder) Atom(from string, fp Part, to string, tp Part) *Builder {
	b.p.Atoms = append(b.p.Atoms, Atom{From: b.ref(from, fp), To: b.ref(to, tp)})
	return b
}

// SameProc appends the guard process(a.ap) == process(b.bp).
func (b *Builder) SameProc(a string, ap Part, c string, cp Part) *Builder {
	b.p.Guards = append(b.p.Guards, Guard{Kind: GuardProcEq, A: b.ref(a, ap), B: b.ref(c, cp)})
	return b
}

// DistinctProc appends the guard process(a.ap) != process(b.bp).
func (b *Builder) DistinctProc(a string, ap Part, c string, cp Part) *Builder {
	b.p.Guards = append(b.p.Guards, Guard{Kind: GuardProcNeq, A: b.ref(a, ap), B: b.ref(c, cp)})
	return b
}

// Colored appends the guard color(v) == c.
func (b *Builder) Colored(v string, c event.Color) *Builder {
	i := b.p.VarIndex(v)
	if i < 0 && b.err == nil {
		b.err = fmt.Errorf("predicate: unknown variable %q", v)
	}
	b.p.Guards = append(b.p.Guards, Guard{Kind: GuardColorIs, Var: i, Color: c})
	return b
}

// Build validates and returns the predicate.
func (b *Builder) Build() (*Predicate, error) {
	if b.err != nil {
		return nil, b.err
	}
	p := b.p.Clone()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build for tests and package-level catalogs; it panics on
// error.
func (b *Builder) MustBuild() *Predicate {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
