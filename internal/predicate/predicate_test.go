package predicate

import (
	"errors"
	"strings"
	"testing"

	"msgorder/internal/event"
)

func TestBuilderCausalOrdering(t *testing.T) {
	p, err := NewBuilder("x", "y").
		Atom("x", S, "y", S).
		Atom("y", R, "x", R).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Vars) != 2 || len(p.Atoms) != 2 {
		t.Fatalf("unexpected shape: %+v", p)
	}
	want := "forbidden x, y : x.s -> y.s && y.r -> x.r"
	if got := p.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestBuilderUnknownVar(t *testing.T) {
	if _, err := NewBuilder("x").Atom("x", S, "z", R).Build(); err == nil {
		t.Fatal("expected error for unknown variable")
	}
	if _, err := NewBuilder("x").Colored("q", event.ColorRed).Atom("x", S, "x", R).Build(); err == nil {
		t.Fatal("expected error for unknown color variable")
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Predicate
		want error
	}{
		{"no vars", Predicate{}, ErrNoVars},
		{"no atoms", Predicate{Vars: []string{"x"}}, ErrNoAtoms},
		{
			"dup var",
			Predicate{Vars: []string{"x", "x"}, Atoms: []Atom{{From: EventRef{0, S}, To: EventRef{1, R}}}},
			ErrDupVar,
		},
		{
			"bad var index",
			Predicate{Vars: []string{"x"}, Atoms: []Atom{{From: EventRef{3, S}, To: EventRef{0, R}}}},
			ErrBadVarIndex,
		},
		{
			"bad part",
			Predicate{Vars: []string{"x"}, Atoms: []Atom{{From: EventRef{0, Part(7)}, To: EventRef{0, R}}}},
			ErrBadPart,
		},
		{
			"bad guard kind",
			Predicate{
				Vars:   []string{"x"},
				Atoms:  []Atom{{From: EventRef{0, S}, To: EventRef{0, R}}},
				Guards: []Guard{{Kind: GuardKind(9)}},
			},
			ErrBadGuard,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.p.Validate(); !errors.Is(err, c.want) {
				t.Fatalf("err = %v, want %v", err, c.want)
			}
		})
	}
}

func TestAtomClassification(t *testing.T) {
	sx := EventRef{0, S}
	rx := EventRef{0, R}
	sy := EventRef{1, S}
	cases := []struct {
		a                   Atom
		trivial, impossible bool
	}{
		{Atom{From: sx, To: rx}, true, false},  // x.s -> x.r
		{Atom{From: rx, To: sx}, false, true},  // x.r -> x.s
		{Atom{From: sx, To: sx}, false, true},  // x.s -> x.s
		{Atom{From: rx, To: rx}, false, true},  // x.r -> x.r
		{Atom{From: sx, To: sy}, false, false}, // distinct vars
	}
	for _, c := range cases {
		if got := c.a.Trivial(); got != c.trivial {
			t.Errorf("Trivial(%+v) = %v, want %v", c.a, got, c.trivial)
		}
		if got := c.a.Impossible(); got != c.impossible {
			t.Errorf("Impossible(%+v) = %v, want %v", c.a, got, c.impossible)
		}
	}
}

func TestParseCausal(t *testing.T) {
	p, err := Parse("forbidden x, y : x.s -> y.s && y.r -> x.r")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Vars) != 2 || p.Vars[0] != "x" || p.Vars[1] != "y" {
		t.Fatalf("vars = %v", p.Vars)
	}
	if len(p.Atoms) != 2 {
		t.Fatalf("atoms = %v", p.Atoms)
	}
	want := Atom{From: EventRef{0, S}, To: EventRef{1, S}}
	if p.Atoms[0] != want {
		t.Errorf("atom[0] = %+v, want %+v", p.Atoms[0], want)
	}
}

func TestParseKeywordOptional(t *testing.T) {
	for _, src := range []string{
		"x, y : x.s -> y.s",
		"exists x, y : x.s -> y.s",
		"forbidden x, y : x.s -> y.s",
	} {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q): %v", src, err)
		}
	}
}

func TestParseUnicodeArrow(t *testing.T) {
	p, err := Parse("x, y : x.s ▷ y.r")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Atoms) != 1 || p.Atoms[0].To.Part != R {
		t.Fatalf("atoms = %+v", p.Atoms)
	}
}

func TestParseFIFO(t *testing.T) {
	src := `forbidden x, y :
		process(x.s) == process(y.s) && process(x.r) == process(y.r) :
		x.s -> y.s && y.r -> x.r`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Guards) != 2 || len(p.Atoms) != 2 {
		t.Fatalf("shape = %d guards, %d atoms", len(p.Guards), len(p.Atoms))
	}
	if p.Guards[0].Kind != GuardProcEq {
		t.Errorf("guard kind = %v", p.Guards[0].Kind)
	}
}

func TestParseColorGuard(t *testing.T) {
	p, err := Parse("x, y : color(y) == red : x.s -> y.s && y.r -> x.r")
	if err != nil {
		t.Fatal(err)
	}
	g := p.Guards[0]
	if g.Kind != GuardColorIs || g.Color != event.ColorRed || g.Var != 1 {
		t.Fatalf("guard = %+v", g)
	}
}

func TestParseNeqGuard(t *testing.T) {
	p, err := Parse("x, y : process(x.s) != process(y.s) : x.s -> y.r")
	if err != nil {
		t.Fatal(err)
	}
	if p.Guards[0].Kind != GuardProcNeq {
		t.Fatalf("guard = %+v", p.Guards[0])
	}
}

func TestParseSingleEquals(t *testing.T) {
	if _, err := Parse("x, y : process(x.s) = process(y.s) : x.s -> y.s"); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"empty", "", "identifier"},
		{"missing colon", "x y.s -> y.r", "':'"},
		{"unknown var", "x : z.s -> x.r", `unknown variable "z"`},
		{"bad part", "x : x.q -> x.r", "'s' or 'r'"},
		{"dup var", "x, x : x.s -> x.r", "duplicate variable"},
		{"guard in atoms", "x : x.s -> x.r && process(x.s) == process(x.r)", "guard in atom section"},
		{"atom in guards", "x : x.s -> x.r : x.s -> x.r", "causality atom in guard section"},
		{"trailing junk", "x : x.s -> x.r extra", "end of input"},
		{"bad char", "x : x.s -> x.r #", "unexpected character"},
		{"lone minus", "x : x.s - x.r", "'->'"},
		{"lone amp", "x : x.s -> x.r & x", "'&&'"},
		{"lone bang", "x : x.s -> x.r !", "'!='"},
		{"unknown color", "x : color(x) == mauve : x.s -> x.r", "unknown color"},
		{"reserved var", "process : process.s -> process.r", "reserved"},
		{"process vs color", "x : process(x.s) == color(x) : x.s -> x.r", "compared with process"},
		{"guards need atoms", "x : process(x.s) == process(x.r)", "require a following ':'"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatal("expected error")
			}
			if !errors.Is(err, ErrParse) {
				t.Fatalf("error %v is not a parse error", err)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("error %q does not mention %q", err, c.wantSub)
			}
		})
	}
}

func TestParseErrorOffset(t *testing.T) {
	_, err := Parse("x : z.s -> x.r")
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T is not *ParseError", err)
	}
	if pe.Offset != 4 {
		t.Errorf("offset = %d, want 4", pe.Offset)
	}
}

func TestRoundTripStringParse(t *testing.T) {
	srcs := []string{
		"forbidden x, y : x.s -> y.s && y.r -> x.r",
		"forbidden x, y : process(x.s) == process(y.s) && color(y) == red : x.s -> y.s && y.r -> x.r",
		"forbidden x1, x2, x3 : x1.s -> x2.r && x2.s -> x3.r && x3.s -> x1.r",
		"forbidden a, b : process(a.s) != process(b.r) : a.s -> b.r",
	}
	for _, src := range srcs {
		p1, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		p2, err := Parse(p1.String())
		if err != nil {
			t.Fatalf("reparse of %q: %v", p1.String(), err)
		}
		if p1.String() != p2.String() {
			t.Errorf("round trip changed predicate:\n%s\n%s", p1, p2)
		}
	}
}

func TestGuardsSatisfied(t *testing.T) {
	p := MustParse("x, y : process(x.s) == process(y.s) && color(y) == red : x.s -> y.s && y.r -> x.r")
	sameProcRed := []event.Message{
		{ID: 0, From: 0, To: 1},
		{ID: 1, From: 0, To: 2, Color: event.ColorRed},
	}
	if !p.GuardsSatisfied(sameProcRed) {
		t.Error("guards should pass: same sender, y red")
	}
	diffProc := []event.Message{
		{ID: 0, From: 0, To: 1},
		{ID: 1, From: 3, To: 2, Color: event.ColorRed},
	}
	if p.GuardsSatisfied(diffProc) {
		t.Error("guards should fail: different senders")
	}
	notRed := []event.Message{
		{ID: 0, From: 0, To: 1},
		{ID: 1, From: 0, To: 2},
	}
	if p.GuardsSatisfied(notRed) {
		t.Error("guards should fail: y not red")
	}

	neq := MustParse("x, y : process(x.s) != process(y.s) : x.s -> y.s")
	if neq.GuardsSatisfied(sameProcRed) {
		t.Error("!= guard should fail on same sender")
	}
	if !neq.GuardsSatisfied(diffProc) {
		t.Error("!= guard should pass on different senders")
	}
}

func TestGuardReceiverSide(t *testing.T) {
	p := MustParse("x, y : process(x.r) == process(y.r) : x.s -> y.s")
	sameDest := []event.Message{{ID: 0, From: 0, To: 5}, {ID: 1, From: 1, To: 5}}
	diffDest := []event.Message{{ID: 0, From: 0, To: 5}, {ID: 1, From: 1, To: 6}}
	if !p.GuardsSatisfied(sameDest) || p.GuardsSatisfied(diffDest) {
		t.Error("receiver-side process guard misevaluated")
	}
}

func TestCloneIndependence(t *testing.T) {
	p := MustParse("x, y : x.s -> y.s")
	c := p.Clone()
	c.Vars[0] = "zzz"
	c.Atoms[0].From.Part = R
	if p.Vars[0] != "x" || p.Atoms[0].From.Part != S {
		t.Error("Clone shares state with original")
	}
}

func TestVarIndex(t *testing.T) {
	p := MustParse("alpha, beta : alpha.s -> beta.r")
	if p.VarIndex("beta") != 1 || p.VarIndex("nope") != -1 {
		t.Error("VarIndex broken")
	}
}

func TestPartKind(t *testing.T) {
	if S.Kind() != event.Send || R.Kind() != event.Deliver {
		t.Error("Part.Kind mapping wrong")
	}
	if S.String() != "s" || R.String() != "r" {
		t.Error("Part.String wrong")
	}
	if Part(9).String() != "part(9)" {
		t.Error("invalid part string")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse should panic on bad input")
		}
	}()
	MustParse("not a predicate ->")
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild should panic on bad input")
		}
	}()
	NewBuilder().MustBuild()
}
