package predicate

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"msgorder/internal/event"
)

// randomPredicate builds an arbitrary well-formed predicate.
func randomPredicate(rng *rand.Rand) *Predicate {
	nv := 1 + rng.Intn(5)
	p := &Predicate{}
	for i := 0; i < nv; i++ {
		p.Vars = append(p.Vars, string(rune('a'+i)))
	}
	parts := []Part{S, R}
	na := 1 + rng.Intn(6)
	for i := 0; i < na; i++ {
		p.Atoms = append(p.Atoms, Atom{
			From: EventRef{Var: rng.Intn(nv), Part: parts[rng.Intn(2)]},
			To:   EventRef{Var: rng.Intn(nv), Part: parts[rng.Intn(2)]},
		})
	}
	ng := rng.Intn(4)
	colors := []event.Color{event.ColorRed, event.ColorBlue, event.ColorGreen}
	for i := 0; i < ng; i++ {
		switch rng.Intn(3) {
		case 0:
			p.Guards = append(p.Guards, Guard{
				Kind: GuardProcEq,
				A:    EventRef{Var: rng.Intn(nv), Part: parts[rng.Intn(2)]},
				B:    EventRef{Var: rng.Intn(nv), Part: parts[rng.Intn(2)]},
			})
		case 1:
			p.Guards = append(p.Guards, Guard{
				Kind: GuardProcNeq,
				A:    EventRef{Var: rng.Intn(nv), Part: parts[rng.Intn(2)]},
				B:    EventRef{Var: rng.Intn(nv), Part: parts[rng.Intn(2)]},
			})
		case 2:
			p.Guards = append(p.Guards, Guard{
				Kind:  GuardColorIs,
				Var:   rng.Intn(nv),
				Color: colors[rng.Intn(len(colors))],
			})
		}
	}
	return p
}

// TestQuickStringParseRoundTrip: Parse(p.String()) reproduces the exact
// AST for arbitrary predicates.
func TestQuickStringParseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomPredicate(rng)
		back, err := Parse(p.String())
		if err != nil {
			t.Logf("Parse(%q): %v", p.String(), err)
			return false
		}
		return reflect.DeepEqual(p, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickParserNeverPanics: arbitrary byte strings must produce errors,
// not panics.
func TestQuickParserNeverPanics(t *testing.T) {
	f := func(src string) bool {
		_, _ = Parse(src) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickParserFragments: random token soup built from the grammar's
// vocabulary must never panic and must either parse or error cleanly.
func TestQuickParserFragments(t *testing.T) {
	vocab := []string{
		"x", "y", "z", ",", ":", "->", "▷", "&&", ".", "s", "r",
		"process", "color", "(", ")", "==", "!=", "red", "forbidden", " ",
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20)
		src := ""
		for i := 0; i < n; i++ {
			src += vocab[rng.Intn(len(vocab))]
		}
		if p, err := Parse(src); err == nil {
			// Anything that parses must be valid and re-parseable.
			if p.Validate() != nil {
				return false
			}
			if _, err := Parse(p.String()); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}
