package predicate

import (
	"errors"
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"

	"msgorder/internal/event"
)

// ParseError describes a syntax error with its byte offset in the input.
type ParseError struct {
	Offset int
	Msg    string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("predicate: parse error at offset %d: %s", e.Offset, e.Msg)
}

// ErrParse can be matched with errors.Is against any *ParseError.
var ErrParse = errors.New("predicate: parse error")

// Is makes errors.Is(err, ErrParse) succeed for parse errors.
func (e *ParseError) Is(target error) bool { return target == ErrParse }

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokComma
	tokColon
	tokArrow  // -> or ▷
	tokAnd    // &&
	tokLParen // (
	tokRParen // )
	tokEq     // == or =
	tokNeq    // !=
	tokDot    // .
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokComma:
		return "','"
	case tokColon:
		return "':'"
	case tokArrow:
		return "'->'"
	case tokAnd:
		return "'&&'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokEq:
		return "'=='"
	case tokNeq:
		return "'!='"
	case tokDot:
		return "'.'"
	default:
		return "unknown token"
	}
}

type token struct {
	kind tokenKind
	text string
	off  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		switch {
		case unicode.IsSpace(r):
			l.pos += size
		case r == ',':
			l.emit(tokComma, ",")
		case r == ':':
			l.emit(tokColon, ":")
		case r == '(':
			l.emit(tokLParen, "(")
		case r == ')':
			l.emit(tokRParen, ")")
		case r == '.':
			l.emit(tokDot, ".")
		case r == '▷':
			l.toks = append(l.toks, token{tokArrow, "▷", l.pos})
			l.pos += size
		case r == '-':
			if strings.HasPrefix(l.src[l.pos:], "->") {
				l.toks = append(l.toks, token{tokArrow, "->", l.pos})
				l.pos += 2
			} else {
				return nil, &ParseError{l.pos, "expected '->'"}
			}
		case r == '&':
			if strings.HasPrefix(l.src[l.pos:], "&&") {
				l.toks = append(l.toks, token{tokAnd, "&&", l.pos})
				l.pos += 2
			} else {
				return nil, &ParseError{l.pos, "expected '&&'"}
			}
		case r == '=':
			if strings.HasPrefix(l.src[l.pos:], "==") {
				l.toks = append(l.toks, token{tokEq, "==", l.pos})
				l.pos += 2
			} else {
				l.emit(tokEq, "=")
			}
		case r == '!':
			if strings.HasPrefix(l.src[l.pos:], "!=") {
				l.toks = append(l.toks, token{tokNeq, "!=", l.pos})
				l.pos += 2
			} else {
				return nil, &ParseError{l.pos, "expected '!='"}
			}
		case unicode.IsLetter(r) || r == '_':
			start := l.pos
			for l.pos < len(l.src) {
				r2, sz := utf8.DecodeRuneInString(l.src[l.pos:])
				if !unicode.IsLetter(r2) && !unicode.IsDigit(r2) && r2 != '_' {
					break
				}
				l.pos += sz
			}
			l.toks = append(l.toks, token{tokIdent, l.src[start:l.pos], start})
		case unicode.IsDigit(r):
			start := l.pos
			for l.pos < len(l.src) {
				r2, sz := utf8.DecodeRuneInString(l.src[l.pos:])
				if !unicode.IsLetter(r2) && !unicode.IsDigit(r2) && r2 != '_' {
					break
				}
				l.pos += sz
			}
			l.toks = append(l.toks, token{tokIdent, l.src[start:l.pos], start})
		default:
			return nil, &ParseError{l.pos, fmt.Sprintf("unexpected character %q", r)}
		}
	}
	l.toks = append(l.toks, token{tokEOF, "", len(l.src)})
	return l.toks, nil
}

func (l *lexer) emit(k tokenKind, text string) {
	l.toks = append(l.toks, token{k, text, l.pos})
	l.pos += len(text)
}

type parser struct {
	toks []token
	i    int
	pred *Predicate
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) expect(k tokenKind) (token, error) {
	t := p.cur()
	if t.kind != k {
		return t, &ParseError{t.off, fmt.Sprintf("expected %v, found %v %q", k, t.kind, t.text)}
	}
	p.i++
	return t, nil
}

// clause is an intermediate parse result: either a guard or an atom.
type clause struct {
	isGuard bool
	guard   Guard
	atom    Atom
	off     int
}

// Parse parses a forbidden predicate from its text syntax:
//
//	[forbidden|exists] vars [":" guards] ":" atoms
//	vars   := ident ("," ident)*
//	guards := guard ("&&" guard)*
//	guard  := "process" "(" eventref ")" ("=="|"="|"!=") "process" "(" eventref ")"
//	        | "color" "(" ident ")" ("=="|"=") colorname
//	atoms  := atom ("&&" atom)*
//	atom   := eventref ("->"|"▷") eventref
//	eventref := ident "." ("s"|"r")
func Parse(src string) (*Predicate, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, pred: &Predicate{}}

	// Optional leading keyword.
	if t := p.cur(); t.kind == tokIdent && (t.text == "forbidden" || t.text == "exists") {
		p.i++
	}
	// Variable list.
	for {
		t, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if isReservedWord(t.text) {
			return nil, &ParseError{t.off, fmt.Sprintf("%q is reserved and cannot name a variable", t.text)}
		}
		if p.pred.VarIndex(t.text) >= 0 {
			return nil, &ParseError{t.off, fmt.Sprintf("duplicate variable %q", t.text)}
		}
		p.pred.Vars = append(p.pred.Vars, t.text)
		if p.cur().kind != tokComma {
			break
		}
		p.i++
	}
	if _, err := p.expect(tokColon); err != nil {
		return nil, err
	}
	// First clause list. If a ':' follows, these were guards.
	first, err := p.parseClauses()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tokColon {
		p.i++
		for _, c := range first {
			if !c.isGuard {
				return nil, &ParseError{c.off, "causality atom in guard section (guards use process()/color())"}
			}
			p.pred.Guards = append(p.pred.Guards, c.guard)
		}
		second, err := p.parseClauses()
		if err != nil {
			return nil, err
		}
		for _, c := range second {
			if c.isGuard {
				return nil, &ParseError{c.off, "guard in atom section (atoms use x.s -> y.r)"}
			}
			p.pred.Atoms = append(p.pred.Atoms, c.atom)
		}
	} else {
		allGuards := true
		for _, c := range first {
			if !c.isGuard {
				allGuards = false
			}
		}
		for _, c := range first {
			if c.isGuard {
				if allGuards {
					return nil, &ParseError{c.off, "guard clauses require a following ':' and atom section"}
				}
				return nil, &ParseError{c.off, "guard in atom section (guards must precede the second ':')"}
			}
			p.pred.Atoms = append(p.pred.Atoms, c.atom)
		}
	}
	if _, err := p.expect(tokEOF); err != nil {
		return nil, err
	}
	if err := p.pred.Validate(); err != nil {
		return nil, err
	}
	return p.pred, nil
}

func isReservedWord(s string) bool {
	switch s {
	case "forbidden", "exists", "process", "color":
		return true
	}
	return false
}

// MustParse is Parse for tests and package-level catalogs; it panics on
// error.
func MustParse(src string) *Predicate {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

func (p *parser) parseClauses() ([]clause, error) {
	var out []clause
	for {
		c, err := p.parseClause()
		if err != nil {
			return nil, err
		}
		out = append(out, c)
		if p.cur().kind != tokAnd {
			return out, nil
		}
		p.i++
	}
}

func (p *parser) parseClause() (clause, error) {
	t := p.cur()
	if t.kind == tokIdent && t.text == "process" {
		g, err := p.parseProcGuard()
		return clause{isGuard: true, guard: g, off: t.off}, err
	}
	if t.kind == tokIdent && t.text == "color" {
		g, err := p.parseColorGuard()
		return clause{isGuard: true, guard: g, off: t.off}, err
	}
	a, err := p.parseAtom()
	return clause{atom: a, off: t.off}, err
}

func (p *parser) parseEventRef() (EventRef, error) {
	name, err := p.expect(tokIdent)
	if err != nil {
		return EventRef{}, err
	}
	vi := p.pred.VarIndex(name.text)
	if vi < 0 {
		return EventRef{}, &ParseError{name.off, fmt.Sprintf("unknown variable %q", name.text)}
	}
	if _, err := p.expect(tokDot); err != nil {
		return EventRef{}, err
	}
	part, err := p.expect(tokIdent)
	if err != nil {
		return EventRef{}, err
	}
	switch part.text {
	case "s":
		return EventRef{Var: vi, Part: S}, nil
	case "r":
		return EventRef{Var: vi, Part: R}, nil
	default:
		return EventRef{}, &ParseError{part.off, fmt.Sprintf("event part must be 's' or 'r', found %q", part.text)}
	}
}

func (p *parser) parseAtom() (Atom, error) {
	from, err := p.parseEventRef()
	if err != nil {
		return Atom{}, err
	}
	if _, err := p.expect(tokArrow); err != nil {
		return Atom{}, err
	}
	to, err := p.parseEventRef()
	if err != nil {
		return Atom{}, err
	}
	return Atom{From: from, To: to}, nil
}

func (p *parser) parseProcGuard() (Guard, error) {
	p.i++ // consume "process"
	if _, err := p.expect(tokLParen); err != nil {
		return Guard{}, err
	}
	a, err := p.parseEventRef()
	if err != nil {
		return Guard{}, err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return Guard{}, err
	}
	op := p.next()
	var kind GuardKind
	switch op.kind {
	case tokEq:
		kind = GuardProcEq
	case tokNeq:
		kind = GuardProcNeq
	default:
		return Guard{}, &ParseError{op.off, fmt.Sprintf("expected '==' or '!=', found %q", op.text)}
	}
	kw, err := p.expect(tokIdent)
	if err != nil {
		return Guard{}, err
	}
	if kw.text != "process" {
		return Guard{}, &ParseError{kw.off, "process(...) must be compared with process(...)"}
	}
	if _, err := p.expect(tokLParen); err != nil {
		return Guard{}, err
	}
	b, err := p.parseEventRef()
	if err != nil {
		return Guard{}, err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return Guard{}, err
	}
	return Guard{Kind: kind, A: a, B: b}, nil
}

func (p *parser) parseColorGuard() (Guard, error) {
	p.i++ // consume "color"
	if _, err := p.expect(tokLParen); err != nil {
		return Guard{}, err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return Guard{}, err
	}
	vi := p.pred.VarIndex(name.text)
	if vi < 0 {
		return Guard{}, &ParseError{name.off, fmt.Sprintf("unknown variable %q", name.text)}
	}
	if _, err := p.expect(tokRParen); err != nil {
		return Guard{}, err
	}
	if _, err := p.expect(tokEq); err != nil {
		return Guard{}, err
	}
	cname, err := p.expect(tokIdent)
	if err != nil {
		return Guard{}, err
	}
	c, ok := event.ParseColor(cname.text)
	if !ok {
		return Guard{}, &ParseError{cname.off, fmt.Sprintf("unknown color %q", cname.text)}
	}
	return Guard{Kind: GuardColorIs, Var: vi, Color: c}, nil
}
