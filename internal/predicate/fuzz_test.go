package predicate

import "testing"

// FuzzParse drives the lexer and parser with arbitrary input: it must
// never panic, and anything that parses must validate, print, and
// re-parse to an equivalent form.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"x, y : x.s -> y.s && y.r -> x.r",
		"forbidden x, y : process(x.s) == process(y.s) && color(y) == red : x.s -> y.s && y.r -> x.r",
		"exists a : a.s ▷ a.r",
		"x1, x2, x3 : x1.s -> x2.r && x2.s -> x3.r && x3.s -> x1.r",
		"x, y : process(x.r) != process(y.r) : x.r -> y.r",
		"x : : x.s -> x.r",
		"process : process.s -> process.r",
		"x, y : x.s -> y.s &&",
		"",
		"▷▷▷",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("parsed predicate fails validation: %v", verr)
		}
		rendered := p.String()
		back, err := Parse(rendered)
		if err != nil {
			t.Fatalf("canonical form %q does not re-parse: %v", rendered, err)
		}
		if back.String() != rendered {
			t.Fatalf("canonical form unstable: %q vs %q", rendered, back.String())
		}
	})
}
