package sim

import (
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"msgorder/internal/event"
	"msgorder/internal/protocol"
	"msgorder/internal/protocols/tagless"
)

// TestQuiesceTimeoutLeaksNoGoroutines guards against the old harness's
// waiter leak: every timed-out Quiesce parked one goroutine in
// work.Wait() forever. Repeated timeouts must not grow the goroutine
// count.
func TestQuiesceTimeoutLeaksNoGoroutines(t *testing.T) {
	nw := New(2, func() protocol.Process { return &staller{} },
		WithTimeout(10*time.Millisecond))
	defer nw.shutdown()
	nw.Invoke(Request{From: 0, To: 1})

	// Let the message reach the staller so the network settles into its
	// stuck state before we start measuring.
	if err := nw.Quiesce(); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	runtime.GC()
	before := runtime.NumGoroutine()
	const rounds = 25
	for i := 0; i < rounds; i++ {
		if err := nw.Quiesce(); !errors.Is(err, ErrTimeout) {
			t.Fatalf("round %d: err = %v, want ErrTimeout", i, err)
		}
	}
	runtime.GC()
	after := runtime.NumGoroutine()
	// Pre-fix this grows by one goroutine per round; allow slack for
	// unrelated runtime noise.
	if after > before+rounds/4 {
		t.Fatalf("goroutines grew from %d to %d over %d timed-out Quiesces",
			before, after, rounds)
	}
}

// gatedSender blocks in OnReceive until released, then sends a control
// wire — modelling a straggler handler that is still running when the
// network shuts down.
type gatedSender struct {
	env      protocol.Env
	gate     chan struct{}
	finished chan struct{}
}

func (p *gatedSender) Init(env protocol.Env) { p.env = env }
func (p *gatedSender) OnInvoke(m event.Message) {
	p.env.Send(protocol.Wire{To: m.To, Kind: protocol.UserWire, Msg: m.ID})
}
func (p *gatedSender) OnReceive(w protocol.Wire) {
	if w.Kind != protocol.UserWire {
		return
	}
	<-p.gate
	p.env.Send(protocol.Wire{To: w.From, Kind: protocol.ControlWire})
	close(p.finished)
}

// TestSendAfterStopFailsFast guards against the old post-stop hang:
// after Stop closed done, a straggler handler's Env.Send blocked
// forever on the adversary pool. It must now return promptly and record
// ErrProtocol.
func TestSendAfterStopFailsFast(t *testing.T) {
	gate := make(chan struct{})
	finished := make(chan struct{})
	makers := 0
	nw := New(2, func() protocol.Process {
		makers++
		return &gatedSender{gate: gate, finished: finished}
	}, WithTimeout(30*time.Millisecond))
	_ = makers
	nw.Invoke(Request{From: 0, To: 1})

	if _, err := nw.Stop(); !errors.Is(err, ErrTimeout) {
		t.Fatalf("Stop err = %v, want ErrTimeout (handler is gated)", err)
	}

	// Release the straggler after teardown: its Send must fail fast.
	close(gate)
	select {
	case <-finished:
	case <-time.After(2 * time.Second):
		t.Fatal("straggler handler still blocked in Send 2s after Stop")
	}
	if err := nw.runErr(); !errors.Is(err, ErrProtocol) {
		t.Fatalf("recorded err = %v, want ErrProtocol", err)
	}
}

func TestInvokeAfterStopReturnsErrStopped(t *testing.T) {
	nw := New(2, tagless.Maker)
	nw.Invoke(Request{From: 0, To: 1})
	if _, err := nw.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := nw.Invoke(Request{From: 0, To: 1}); !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
}

func TestInvokeValidatesRange(t *testing.T) {
	nw := New(2, tagless.Maker)
	for _, req := range []Request{
		{From: -1, To: 1},
		{From: 2, To: 1},
		{From: 0, To: -1},
		{From: 0, To: 2},
	} {
		if err := nw.Invoke(req); !errors.Is(err, ErrProtocol) {
			t.Fatalf("Invoke(%+v) = %v, want ErrProtocol", req, err)
		}
	}
	// Rejected requests must not be counted as work.
	if _, err := nw.Stop(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentInvokeQuiesceStop hammers the lifecycle API from many
// goroutines under the race detector. The old harness had a
// WaitGroup-misuse race here (Add concurrent with Wait after the
// counter hit zero).
func TestConcurrentInvokeQuiesceStop(t *testing.T) {
	nw := New(3, tagless.Maker, WithSeed(4))
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				err := nw.Invoke(Request{
					From: event.ProcID((g + i) % 3),
					To:   event.ProcID((g + i + 1) % 3),
				})
				if err != nil && !errors.Is(err, ErrStopped) {
					t.Errorf("Invoke: %v", err)
					return
				}
				if errors.Is(err, ErrStopped) {
					return
				}
			}
		}(g)
	}
	for q := 0; q < 2; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				nw.Quiesce()
			}
		}()
	}
	time.Sleep(5 * time.Millisecond)
	if _, err := nw.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	wg.Wait()
}

// TestBroadcastLive checks the live harness's broadcast plumbing: one
// request fans out to every other process and each copy is delivered.
func TestBroadcastLive(t *testing.T) {
	nw := New(4, tagless.Maker, WithSeed(3))
	for i := 0; i < 8; i++ {
		if err := nw.Invoke(Request{From: event.ProcID(i % 4), Broadcast: true}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := nw.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if !res.View.IsComplete() || len(res.Undelivered) != 0 {
		t.Fatal("all broadcast copies must be delivered")
	}
	if res.Stats.UserMessages != 8*3 {
		t.Fatalf("user messages = %d, want 24", res.Stats.UserMessages)
	}
}
