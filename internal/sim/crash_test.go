package sim

import (
	"errors"
	"testing"
	"time"

	"msgorder/internal/crash"
	"msgorder/internal/event"
	"msgorder/internal/obs"
	"msgorder/internal/protocol"
	"msgorder/internal/protocols/causal"
	"msgorder/internal/protocols/fifo"
	"msgorder/internal/protocols/flush"
	"msgorder/internal/protocols/kweaker"
	"msgorder/internal/protocols/sync"
	"msgorder/internal/protocols/tagless"
	"msgorder/internal/transport"
)

// restartPlan crashes every non-coordinator process once (P0 stays up:
// it is the sync sequencer). Short downtimes keep the tests fast; the
// small SnapshotEvery forces checkpoint + journal-suffix recovery
// rather than full-journal replay.
func restartPlan() crash.Plan {
	p := crash.RestartStagger([]event.ProcID{1, 2}, 15, 40, 10*time.Millisecond)
	p.SnapshotEvery = 8
	return p
}

// TestCrashRestartRecoversEveryProtocol is the acceptance run: a seeded
// 50-message workload per catalog protocol with a crash-restart of
// every non-coordinator process. The run must recover, quiesce, and
// deliver every message exactly once (a double delivery would make the
// recorded run invalid and fail Stop).
func TestCrashRestartRecoversEveryProtocol(t *testing.T) {
	cases := []struct {
		name  string
		maker protocol.Maker
		color func(i int) event.Color
	}{
		{"tagless", tagless.Maker, nil},
		{"fifo", fifo.Maker, nil},
		{"kweaker-1", kweaker.Maker(1), nil},
		{"flush", flush.Maker, func(i int) event.Color {
			// Mix ordinary messages with all three barrier kinds.
			return []event.Color{event.ColorNone, event.ColorRed, event.ColorNone, event.ColorBlue, event.ColorGreen}[i%5]
		}},
		{"causal-rst", causal.RSTMaker, nil},
		{"causal-ses", causal.SESMaker, nil},
		{"sync", sync.Maker, nil},
		{"sync-ra", sync.RAMaker, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			nw := New(3, tc.maker, WithSeed(3), WithCrashes(restartPlan()))
			for i := 0; i < 50; i++ {
				req := Request{From: event.ProcID(i % 3), To: event.ProcID((i + 1) % 3)}
				if tc.color != nil {
					req.Color = tc.color(i)
				}
				if err := nw.Invoke(req); err != nil {
					t.Fatalf("invoke %d: %v", i, err)
				}
			}
			res, err := nw.Stop()
			if err != nil {
				t.Fatal(err)
			}
			if !res.View.IsComplete() || len(res.Undelivered) != 0 {
				t.Fatalf("crash-restart run lost messages: undelivered = %v", res.Undelivered)
			}
			if res.Crashes.Fired != 2 {
				t.Fatalf("crashes fired = %d, want 2 (%+v)", res.Crashes.Fired, res.Crashes)
			}
			if res.Stats.Crashes != 2 || res.Stats.Recoveries != 2 {
				t.Fatalf("stats crashes/recoveries = %d/%d, want 2/2", res.Stats.Crashes, res.Stats.Recoveries)
			}
			// ReplayedEvents may legitimately be 0 here: a crash can land
			// right after a checkpoint. TestRecoveryReplaysJournal pins
			// replay down with checkpointing disabled.
		})
	}
}

// TestRecoveryReplaysJournal disables checkpointing so recovery must
// rebuild the crashed process's state by full-journal replay.
func TestRecoveryReplaysJournal(t *testing.T) {
	plan := crash.Plan{
		Crashes:  []crash.Spec{{Proc: 1, At: 60, Restart: true, Downtime: 10 * time.Millisecond}},
		Downtime: 10 * time.Millisecond,
	}
	nw := New(3, fifo.Maker, WithSeed(13), WithCrashes(plan))
	for i := 0; i < 50; i++ {
		if err := nw.Invoke(Request{From: event.ProcID(i % 3), To: event.ProcID((i + 1) % 3)}); err != nil {
			t.Fatalf("invoke %d: %v", i, err)
		}
	}
	res, err := nw.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if !res.View.IsComplete() || len(res.Undelivered) != 0 {
		t.Fatalf("replay run lost messages: undelivered = %v", res.Undelivered)
	}
	if res.Stats.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1", res.Stats.Recoveries)
	}
	if res.Stats.ReplayedEvents == 0 {
		t.Fatal("with no checkpoints, recovery must replay the journal")
	}
}

// TestCrashRestartBroadcast exercises recovery of broadcast protocol
// state (BSS journals whole broadcast batches).
func TestCrashRestartBroadcast(t *testing.T) {
	nw := New(3, causal.BSSMaker, WithSeed(5), WithCrashes(restartPlan()))
	for i := 0; i < 30; i++ {
		if err := nw.Invoke(Request{From: event.ProcID(i % 3), Broadcast: true}); err != nil {
			t.Fatalf("invoke %d: %v", i, err)
		}
	}
	res, err := nw.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if !res.View.IsComplete() || len(res.Undelivered) != 0 {
		t.Fatalf("broadcast crash run lost messages: undelivered = %v", res.Undelivered)
	}
	if v, bad := res.View.FindCOViolation(); bad {
		t.Fatalf("causal order violated across a crash: %v", v)
	}
	if res.Crashes.Fired != 2 {
		t.Fatalf("crashes fired = %d, want 2", res.Crashes.Fired)
	}
}

// TestCrashRestartUnderLoss composes both fault layers: a lossy,
// duplicating network plus process crashes.
func TestCrashRestartUnderLoss(t *testing.T) {
	nw := New(3, fifo.Maker, WithSeed(7),
		WithFaults(transport.FaultPlan{DropRate: 0.2, DupRate: 0.1, Seed: 7}),
		WithCrashes(restartPlan()))
	for i := 0; i < 40; i++ {
		if err := nw.Invoke(Request{From: event.ProcID(i % 3), To: event.ProcID((i + 1) % 3)}); err != nil {
			t.Fatalf("invoke %d: %v", i, err)
		}
	}
	res, err := nw.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if !res.View.IsComplete() || len(res.Undelivered) != 0 {
		t.Fatalf("lossy crash run lost messages: undelivered = %v", res.Undelivered)
	}
	if v, bad := res.View.FindCOViolation(); bad {
		t.Fatalf("FIFO safety violated across crash+loss: %v", v)
	}
	if res.Faults.Total() == 0 {
		t.Fatal("fault injection must still run alongside crashes")
	}
}

// TestCrashStopLosesOnlyTheDeadProcess kills P1 forever. The run must
// still quiesce — messages addressed to the corpse stay undelivered (a
// valid prefix run), everything between live processes completes, and
// invokes aimed at the corpse are rejected with ErrCrashed.
func TestCrashStopLosesOnlyTheDeadProcess(t *testing.T) {
	nw := New(3, tagless.Maker, WithSeed(4), WithCrashes(crash.StopOne(1, 10)))
	for i := 0; i < 30; i++ {
		err := nw.Invoke(Request{From: event.ProcID(i % 3), To: event.ProcID((i + 1) % 3)})
		if err != nil && !errors.Is(err, ErrCrashed) {
			t.Fatalf("invoke %d: %v", i, err)
		}
	}
	res, err := nw.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes.Fired != 1 {
		t.Fatalf("crashes fired = %d, want 1", res.Crashes.Fired)
	}
	if res.Stats.Recoveries != 0 {
		t.Fatalf("a crash-stop must not recover, got %d recoveries", res.Stats.Recoveries)
	}
	for _, id := range res.Undelivered {
		m := res.System.Message(id)
		if m.To != 1 && m.From != 1 {
			t.Fatalf("message %d (P%d->P%d) undelivered; only mail to or from the corpse may be lost",
				id, m.From, m.To)
		}
	}
	// Work between the two live processes must have completed.
	delivered := 0
	for _, m := range res.View.Messages() {
		if m.To != 1 && m.From != 1 {
			delivered++
		}
	}
	if delivered == 0 {
		t.Fatal("no messages between live processes delivered")
	}
}

// TestCrashStopRejectsInvokes checks the ErrCrashed path directly.
func TestCrashStopRejectsInvokes(t *testing.T) {
	nw := New(2, tagless.Maker, WithSeed(1), WithCrashes(crash.StopOne(1, 2)))
	for i := 0; i < 10; i++ {
		nw.Invoke(Request{From: 0, To: 1})
	}
	// Wait for the crash to have fired, then poke the corpse.
	deadline := time.Now().Add(2 * time.Second)
	for nw.crashInj.Counters().Fired == 0 {
		if time.Now().After(deadline) {
			t.Fatal("crash never fired")
		}
		time.Sleep(time.Millisecond)
	}
	if err := nw.Invoke(Request{From: 1, To: 0}); !errors.Is(err, ErrCrashed) {
		t.Fatalf("invoke from corpse: err = %v, want ErrCrashed", err)
	}
	if _, err := nw.Stop(); err != nil {
		t.Fatal(err)
	}
}

// TestDetectorObservesCrashAndRecovery runs with a downtime long enough
// that the failure detector must suspect the crashed process, then see
// it come back.
func TestDetectorObservesCrashAndRecovery(t *testing.T) {
	plan := crash.Plan{
		Crashes:  []crash.Spec{{Proc: 1, At: 10, Restart: true, Downtime: 80 * time.Millisecond}},
		Detector: crash.DetectorConfig{Interval: 2 * time.Millisecond, Timeout: 10 * time.Millisecond},
	}
	reg := obs.NewRegistry()
	nw := New(2, tagless.Maker, WithSeed(9), WithCrashes(plan), WithMetrics(reg))
	for i := 0; i < 30; i++ {
		nw.Invoke(Request{From: 0, To: 1})
	}
	res, err := nw.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if !res.View.IsComplete() {
		t.Fatal("incomplete")
	}
	if res.Detector.Suspicions == 0 {
		t.Fatalf("an 80ms downtime with a 10ms timeout must be suspected: %+v", res.Detector)
	}
	if res.Detector.Alives == 0 {
		t.Fatalf("the restart's heartbeats must clear the suspicion: %+v", res.Detector)
	}
	if got := reg.Counter("crash.detector.suspicions"); got == 0 {
		t.Fatal("suspicions must flow into the metrics registry")
	}
	if got := reg.Counter("sim.recoveries"); got != 1 {
		t.Fatalf("sim.recoveries = %d, want 1", got)
	}
}

// TestFileBackedWAL runs a crash-restart with the journal mirrored to
// disk, exercising the file WAL in the harness end to end.
func TestFileBackedWAL(t *testing.T) {
	plan := restartPlan()
	plan.WALDir = t.TempDir()
	nw := New(3, fifo.Maker, WithSeed(11), WithCrashes(plan))
	for i := 0; i < 50; i++ {
		if err := nw.Invoke(Request{From: event.ProcID(i % 3), To: event.ProcID((i + 1) % 3)}); err != nil {
			t.Fatalf("invoke %d: %v", i, err)
		}
	}
	res, err := nw.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if !res.View.IsComplete() || len(res.Undelivered) != 0 {
		t.Fatalf("file-WAL crash run lost messages: undelivered = %v", res.Undelivered)
	}
	if res.Stats.Recoveries != 2 {
		t.Fatalf("recoveries = %d, want 2", res.Stats.Recoveries)
	}
}

// TestEmptyCrashPlanIsIgnored: WithCrashes with no scheduled crashes
// must leave the run on the crash-free fast path — no transport, no
// detector, counters all zero, identical to a plain run.
func TestEmptyCrashPlanIsIgnored(t *testing.T) {
	nw := New(2, tagless.Maker, WithSeed(1), WithCrashes(crash.Plan{SnapshotEvery: 4}))
	for i := 0; i < 10; i++ {
		nw.Invoke(Request{From: 0, To: 1})
	}
	res, err := nw.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if res.Transport != (transport.Counters{}) {
		t.Fatalf("empty crash plan must not engage the transport: %+v", res.Transport)
	}
	if res.Crashes != (crash.InjectorCounters{}) || res.Detector != (crash.DetectorCounters{}) {
		t.Fatalf("empty crash plan left counters: %+v / %+v", res.Crashes, res.Detector)
	}
}

// TestCrashPlanValidation: a plan naming an out-of-range process fails
// the run up front rather than crashing nothing silently.
func TestCrashPlanValidation(t *testing.T) {
	nw := New(2, tagless.Maker, WithSeed(1), WithCrashes(crash.StopOne(7, 5)))
	nw.Invoke(Request{From: 0, To: 1})
	if _, err := nw.Stop(); !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol for an invalid plan", err)
	}
}
