// Package sim is the live execution harness: every process runs as its
// own goroutine with an unbounded mailbox, and an adversary goroutine
// holds all in-flight wires and releases them in random order. Unlike
// package dsim there is no virtual clock — real concurrency exercises the
// protocols' state machines under true interleaving, while the random
// release order supplies the reordering adversary.
//
// Safety properties must hold on every execution; exact traces are not
// reproducible across runs (the adversary's choices are seeded, but the
// goroutine interleaving is the scheduler's). Use dsim when a bit-exact
// replay is needed.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"msgorder/internal/event"
	"msgorder/internal/protocol"
	"msgorder/internal/run"
	"msgorder/internal/userview"
)

// Simulation errors.
var (
	ErrTimeout  = errors.New("sim: timed out waiting for quiescence")
	ErrProtocol = errors.New("sim: protocol error")
)

// Request asks for a user message invocation.
type Request struct {
	From, To event.ProcID
	Color    event.Color
}

// Result is the outcome of a stopped network.
type Result struct {
	System      *run.Run
	View        *userview.Run
	Stats       protocol.Stats
	Undelivered []event.MsgID
}

// Option configures a Network.
type Option func(*Network)

// WithSeed seeds the adversary's release order (default 1).
func WithSeed(seed int64) Option {
	return func(n *Network) { n.rng = rand.New(rand.NewSource(seed)) }
}

// WithTimeout bounds Quiesce (default 10s).
func WithTimeout(d time.Duration) Option {
	return func(n *Network) { n.timeout = d }
}

// Network is a live protocol harness. Construct with New, feed with
// Invoke, then Stop to collect the recorded run.
type Network struct {
	n       int
	rec     *protocol.Recorder
	rng     *rand.Rand
	timeout time.Duration

	procs   []*mailbox
	insts   []protocol.Process
	classes []protocol.Class

	pool     chan protocol.Wire
	work     sync.WaitGroup
	stopOnce sync.Once
	done     chan struct{}

	mu        sync.Mutex
	err       error
	onDeliver func(p event.ProcID, id event.MsgID) []Request
	stopped   bool

	// hookMu serializes onDeliver invocations so workload closures need
	// no locking of their own.
	hookMu sync.Mutex
}

// item is one mailbox entry: either an invoke or a wire arrival.
type item struct {
	isInvoke bool
	msg      event.Message
	wire     protocol.Wire
}

// mailbox is an unbounded FIFO with condition-variable signalling.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []item
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) push(it item) {
	m.mu.Lock()
	m.items = append(m.items, it)
	m.mu.Unlock()
	m.cond.Signal()
}

func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.cond.Broadcast()
}

// pop blocks until an item arrives or the mailbox closes.
func (m *mailbox) pop() (item, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.items) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.items) == 0 {
		return item{}, false
	}
	it := m.items[0]
	m.items = m.items[1:]
	return it, true
}

// New builds and starts a live network of n processes.
func New(n int, maker protocol.Maker, opts ...Option) *Network {
	nw := &Network{
		n:       n,
		rec:     protocol.NewRecorder(n),
		rng:     rand.New(rand.NewSource(1)),
		timeout: 10 * time.Second,
		pool:    make(chan protocol.Wire, 1),
		done:    make(chan struct{}),
	}
	for _, o := range opts {
		o(nw)
	}
	for i := 0; i < n; i++ {
		p := maker()
		class := protocol.General
		if d, ok := p.(protocol.Describer); ok {
			class = d.Describe().Class
		}
		nw.insts = append(nw.insts, p)
		nw.classes = append(nw.classes, class)
		nw.procs = append(nw.procs, newMailbox())
		p.Init(&env{nw: nw, self: event.ProcID(i)})
	}
	for i := 0; i < n; i++ {
		go nw.runProcess(event.ProcID(i))
	}
	go nw.runAdversary()
	return nw
}

// OnDeliver installs the delivery hook. Must be called before the first
// Invoke.
func (nw *Network) OnDeliver(fn func(p event.ProcID, id event.MsgID) []Request) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	nw.onDeliver = fn
}

// Invoke submits a user request.
func (nw *Network) Invoke(req Request) {
	nw.mu.Lock()
	if nw.stopped {
		nw.mu.Unlock()
		return
	}
	m := nw.rec.NewMessage(req.From, req.To, req.Color)
	nw.mu.Unlock()
	nw.work.Add(1)
	nw.procs[req.From].push(item{isInvoke: true, msg: m})
}

// Quiesce waits until all submitted work (and everything it spawned) has
// been processed.
func (nw *Network) Quiesce() error {
	ch := make(chan struct{})
	go func() {
		nw.work.Wait()
		close(ch)
	}()
	select {
	case <-ch:
		nw.mu.Lock()
		defer nw.mu.Unlock()
		return nw.err
	case <-time.After(nw.timeout):
		return ErrTimeout
	}
}

// Stop quiesces, shuts the goroutines down, and returns the recorded run.
func (nw *Network) Stop() (*Result, error) {
	if err := nw.Quiesce(); err != nil {
		return nil, err
	}
	nw.stopOnce.Do(func() {
		nw.mu.Lock()
		nw.stopped = true
		nw.mu.Unlock()
		close(nw.done)
		for _, m := range nw.procs {
			m.close()
		}
	})
	sys, err := nw.rec.SystemRun()
	if err != nil {
		return nil, fmt.Errorf("%w: recorded run invalid: %v", ErrProtocol, err)
	}
	view, err := sys.UsersView()
	if err != nil {
		return nil, fmt.Errorf("%w: user view invalid: %v", ErrProtocol, err)
	}
	return &Result{
		System:      sys,
		View:        view,
		Stats:       nw.rec.Stats(),
		Undelivered: nw.rec.Undelivered(),
	}, nil
}

// runProcess is one process goroutine: it drains its mailbox, invoking
// the protocol handlers.
func (nw *Network) runProcess(self event.ProcID) {
	for {
		it, ok := nw.procs[self].pop()
		if !ok {
			return
		}
		if it.isInvoke {
			nw.insts[self].OnInvoke(it.msg)
		} else {
			if it.wire.Kind == protocol.UserWire {
				nw.rec.RecordReceive(it.wire.Msg)
			}
			nw.insts[self].OnReceive(it.wire)
		}
		nw.work.Done()
	}
}

// runAdversary accumulates in-flight wires and releases them in random
// order.
func (nw *Network) runAdversary() {
	var inflight []protocol.Wire
	for {
		if len(inflight) == 0 {
			select {
			case w := <-nw.pool:
				inflight = append(inflight, w)
			case <-nw.done:
				return
			}
			continue
		}
		// Opportunistically batch whatever is queued, then release one
		// at random.
		for {
			select {
			case w := <-nw.pool:
				inflight = append(inflight, w)
				continue
			default:
			}
			break
		}
		i := nw.rng.Intn(len(inflight))
		w := inflight[i]
		inflight[i] = inflight[len(inflight)-1]
		inflight = inflight[:len(inflight)-1]
		nw.procs[w.To].push(item{wire: w})
	}
}

func (nw *Network) fail(err error) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if nw.err == nil {
		nw.err = err
	}
}

// env implements protocol.Env for a live process.
type env struct {
	nw   *Network
	self event.ProcID
}

var _ protocol.Env = (*env)(nil)

func (e *env) Self() event.ProcID { return e.self }
func (e *env) NumProcs() int      { return e.nw.n }

func (e *env) Send(w protocol.Wire) {
	nw := e.nw
	w.From = e.self
	if int(w.To) < 0 || int(w.To) >= nw.n {
		nw.fail(fmt.Errorf("%w: send to out-of-range process %d", ErrProtocol, w.To))
		return
	}
	if err := protocol.CheckCapability(nw.classes[e.self], w); err != nil {
		nw.fail(fmt.Errorf("%w: P%d: %w", ErrProtocol, e.self, err))
		return
	}
	switch w.Kind {
	case protocol.UserWire:
		nw.rec.RecordSend(w.Msg, len(w.Tag))
	case protocol.ControlWire:
		nw.rec.RecordControl(len(w.Tag))
	default:
		nw.fail(fmt.Errorf("%w: P%d sent wire with invalid kind", ErrProtocol, e.self))
		return
	}
	nw.work.Add(1)
	nw.pool <- w
}

func (e *env) Deliver(id event.MsgID) {
	nw := e.nw
	nw.rec.RecordDeliver(id)
	nw.mu.Lock()
	hook := nw.onDeliver
	nw.mu.Unlock()
	if hook == nil {
		return
	}
	nw.hookMu.Lock()
	reqs := hook(e.self, id)
	nw.hookMu.Unlock()
	for _, req := range reqs {
		m := nw.rec.NewMessage(req.From, req.To, req.Color)
		nw.work.Add(1)
		nw.procs[req.From].push(item{isInvoke: true, msg: m})
	}
}
