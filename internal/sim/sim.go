// Package sim is the live execution harness: every process runs as its
// own goroutine with an unbounded mailbox, and an adversary goroutine
// holds all in-flight transmissions and releases them in random order.
// Unlike package dsim there is no virtual clock — real concurrency
// exercises the protocols' state machines under true interleaving,
// while the random release order supplies the reordering adversary.
//
// The adversary is a pluggable fault-injecting scheduler. By default it
// only reorders (the paper's reliable-channel model). With WithFaults
// it also drops, duplicates, delays and partitions transmissions at the
// configured rates, and every protocol wire is carried by the reliable
// transport sublayer (internal/transport): sequenced envelopes, acks,
// timeout-driven retransmission with exponential backoff, and
// receiver-side dedup. Protocols above the transport still observe
// reliable exactly-once (but freely reordering) channels, so the
// paper's axioms R1-R3 keep holding while the network misbehaves.
//
// Safety properties must hold on every execution; exact traces are not
// reproducible across runs (the adversary's choices are seeded, but the
// goroutine interleaving is the scheduler's). Use dsim when a bit-exact
// replay is needed. With faults disabled the transport is bypassed
// entirely, so fault-free recorded runs are identical to the
// pre-transport harness's.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"msgorder/internal/crash"
	"msgorder/internal/event"
	"msgorder/internal/obs"
	"msgorder/internal/protocol"
	"msgorder/internal/run"
	"msgorder/internal/transport"
	"msgorder/internal/userview"
)

// Simulation errors.
var (
	ErrTimeout  = errors.New("sim: timed out waiting for quiescence")
	ErrProtocol = errors.New("sim: protocol error")
	ErrStopped  = errors.New("sim: network already stopped")
	// ErrCrashed reports an Invoke aimed at a crash-stopped process.
	// The request is dropped, exactly as a real client's request to a
	// dead server would be.
	ErrCrashed = errors.New("sim: process crashed")
	// ErrReplayDiverged reports that a restarted process, replaying its
	// journal, emitted different sends or deliveries than its pre-crash
	// incarnation journaled — the protocol's state is not a function of
	// its event history, so recovery cannot be trusted.
	ErrReplayDiverged = errors.New("sim: recovery replay diverged from journal")
)

// stallCap bounds how long a lossy-network Quiesce may extend past the
// configured timeout while the transport is still making progress.
const stallCap = 8

// Request asks for a user message invocation. With Broadcast set, To is
// ignored and one copy is invoked for every other process (the
// multicast extension); protocols implementing protocol.Broadcaster
// receive all copies together.
type Request struct {
	From, To  event.ProcID
	Color     event.Color
	Broadcast bool
	// Key places the message in an independent ordering domain
	// (event.NoKey = the global domain). Only sharded protocol runtimes
	// (internal/shard) act on it; plain protocols ignore it.
	Key event.Key
}

// Result is the outcome of a stopped network.
type Result struct {
	System      *run.Run
	View        *userview.Run
	Stats       protocol.Stats
	Undelivered []event.MsgID
	// Transport holds the reliable sublayer's counters (zero when the
	// network ran fault-free, i.e. without the transport).
	Transport transport.Counters
	// Faults holds the injected-fault tallies (zero without WithFaults).
	Faults transport.FaultCounters
	// Crashes holds the crash-injection tallies (zero without
	// WithCrashes).
	Crashes crash.InjectorCounters
	// Detector holds the failure detector's transition tallies (zero
	// without WithCrashes).
	Detector crash.DetectorCounters
}

// Scheduler orders and perturbs the adversary's in-flight
// transmissions. Pick chooses which of n in-flight transmissions to
// release next; Fate decides what the network does with the released
// one. The default scheduler picks uniformly at random (seeded) and
// always delivers; WithFaults installs one whose Fate injects drops,
// duplicates, delays and partition cuts. Fates other than
// transport.Deliver require the reliable transport (WithFaults) —
// without it a dropped wire would silently violate the paper's
// reliable-channel axioms.
type Scheduler interface {
	Pick(n int) int
	Fate(from, to event.ProcID) transport.Action
}

// randomSched is the default reorder-only adversary.
type randomSched struct{ rng *rand.Rand }

func (s *randomSched) Pick(n int) int { return s.rng.Intn(n) }
func (s *randomSched) Fate(event.ProcID, event.ProcID) transport.Action {
	return transport.Deliver
}

// faultSched keeps the random release order and delegates fates to the
// fault injector.
type faultSched struct {
	rng *rand.Rand
	inj *transport.Injector
}

func (s *faultSched) Pick(n int) int { return s.rng.Intn(n) }
func (s *faultSched) Fate(from, to event.ProcID) transport.Action {
	return s.inj.Decide(from, to)
}

// Option configures a Network.
type Option func(*Network)

// WithSeed seeds the adversary's release order (default 1).
func WithSeed(seed int64) Option {
	return func(n *Network) { n.rng = rand.New(rand.NewSource(seed)) }
}

// WithTimeout bounds Quiesce (default 10s). Under a fault plan this is
// the stall window: Quiesce keeps waiting past it while the transport
// makes progress (retransmissions, acks), up to stallCap windows.
func WithTimeout(d time.Duration) Option {
	return func(n *Network) { n.timeout = d }
}

// WithFaults makes the network lossy per the plan and routes every wire
// through the reliable transport sublayer.
func WithFaults(plan transport.FaultPlan) Option {
	return func(n *Network) { n.faults = &plan }
}

// WithTransportConfig tunes the transport's retransmission engine
// (effective only together with WithFaults or WithCrashes).
func WithTransportConfig(cfg transport.Config) Option {
	return func(n *Network) { n.trCfg = cfg }
}

// WithCrashes schedules process crashes per the plan. Crashed processes
// tear down mid-run; crash-restart ones come back after their downtime,
// restore the latest checkpoint, and replay their journal. Crashes
// force the reliable transport on (a crashed process loses its mailbox,
// so redelivery must come from retransmission) even without WithFaults.
// A plan with no crashes is ignored, keeping the run byte-identical to
// a crash-free one.
func WithCrashes(plan crash.Plan) Option {
	return func(n *Network) {
		if plan.Enabled() {
			n.crashes = &plan
		}
	}
}

// WithScheduler installs a custom adversary scheduler, overriding both
// the default and the WithFaults one.
func WithScheduler(s Scheduler) Option {
	return func(n *Network) { n.sched = s }
}

// WithTracer streams causally stamped trace records of the run into t,
// including transport retransmissions, injected faults and the stall
// detector's decisions. Timestamps are wall microseconds since New. The
// tracer must be safe for concurrent use (obs.Collector is).
func WithTracer(t obs.Tracer) Option {
	return func(n *Network) { n.tracer = t }
}

// WithMetrics records inhibition/latency histograms, transport
// distributions and stall-detector counters into m.
func WithMetrics(m *obs.Registry) Option {
	return func(n *Network) { n.metrics = m }
}

// Network is a live protocol harness. Construct with New, feed with
// Invoke, then Stop to collect the recorded run.
type Network struct {
	n       int
	rec     *protocol.Recorder
	rng     *rand.Rand
	timeout time.Duration
	maker   protocol.Maker

	procs   []*mailbox
	classes []protocol.Class

	pool     chan flight
	work     *workGate
	stopOnce sync.Once
	statOnce sync.Once
	done     chan struct{}

	faults *transport.FaultPlan
	trCfg  transport.Config
	tr     *transport.Reliable
	inj    *transport.Injector
	sched  Scheduler

	crashes  *crash.Plan
	crashInj *crash.Injector
	det      *crash.Detector
	wals     []*crash.WAL

	// crashMu fences crash state against concurrent senders: Send holds
	// the read lock across its dead-check and transport Wrap, so every
	// envelope addressed to a process is either wrapped before the
	// crash marks it dead (and cancelled by CancelTo) or never wrapped.
	crashMu    sync.RWMutex
	incs       []*incarnation
	downProcs  []bool // crashed, restart pending (or dead)
	deadProcs  []bool // crash-stopped forever
	tallyCrash struct{ crashes, recoveries, replayed int }

	tracer  obs.Tracer
	metrics *obs.Registry
	probe   *obs.Probe // nil unless WithTracer/WithMetrics was given
	sink    *obs.Sink  // shared with the transport; nil when disabled

	mu        sync.Mutex
	err       error
	onDeliver func(p event.ProcID, id event.MsgID) []Request
	stopped   bool
	timers    []*time.Timer // pending restarts, cancelled at shutdown

	// hookMu serializes onDeliver invocations so workload closures need
	// no locking of their own.
	hookMu sync.Mutex
}

// flight is one in-flight transmission: a bare wire (fault-free mode)
// or a transport envelope (lossy mode).
type flight struct {
	wire  protocol.Wire
	env   transport.Envelope
	isEnv bool
}

func (f flight) from() event.ProcID {
	if f.isEnv {
		return f.env.Src
	}
	return f.wire.From
}

func (f flight) to() event.ProcID {
	if f.isEnv {
		return f.env.Dst
	}
	return f.wire.To
}

// workGate counts outstanding work items and exposes an idle channel
// closed whenever the count is zero. Unlike sync.WaitGroup, add while
// a waiter is blocked is well-defined (the waiter observes the zero
// instant it was waiting for), and waiting costs no goroutine — the
// two lifecycle bugs the old WaitGroup-based harness had.
type workGate struct {
	mu   sync.Mutex
	n    int
	zero chan struct{}
}

func newWorkGate() *workGate {
	g := &workGate{zero: make(chan struct{})}
	close(g.zero)
	return g
}

func (g *workGate) add(d int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	was := g.n
	g.n += d
	switch {
	case g.n < 0:
		panic("sim: negative work count")
	case was == 0 && g.n > 0:
		g.zero = make(chan struct{})
	case was > 0 && g.n == 0:
		close(g.zero)
	}
}

func (g *workGate) done() { g.add(-1) }

// idle returns a channel that is closed once the count reaches zero.
func (g *workGate) idle() <-chan struct{} {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.zero
}

// item is one mailbox entry: an invoke, a broadcast batch, a bare wire
// arrival, or a transport envelope arrival.
type item struct {
	isInvoke    bool
	isBroadcast bool
	isEnv       bool
	msg         event.Message
	msgs        []event.Message
	wire        protocol.Wire
	env         transport.Envelope
}

// mailbox is an unbounded FIFO with condition-variable signalling. One
// mailbox serves a process for the network's whole life, across crash
// incarnations: down marks a crash (the incarnation's goroutine exits
// at its next pop), dead marks a crash-stop.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []item
	closed bool
	down   bool
	dead   bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// push queues it, reporting false when the process is dead forever so
// the caller can release the item's work count. Transmissions arriving
// while the process is down are dropped — they are pre-accept, so the
// transport redelivers them after restart; user invocations queue up
// and drain in the next incarnation.
func (m *mailbox) push(it item) bool {
	m.mu.Lock()
	if m.dead {
		m.mu.Unlock()
		return false
	}
	if m.down && !it.isInvoke && !it.isBroadcast {
		m.mu.Unlock()
		return true
	}
	m.items = append(m.items, it)
	m.mu.Unlock()
	m.cond.Signal()
	return true
}

// crash marks the mailbox down, dropping queued transmissions. With
// keepUser, queued user invocations survive for the next incarnation;
// otherwise (crash-stop) they are dropped and their count returned so
// the harness can release their work.
func (m *mailbox) crash(keepUser bool) int {
	m.mu.Lock()
	m.down = true
	m.dead = !keepUser
	dropped := 0
	var kept []item
	for _, it := range m.items {
		switch {
		case !it.isInvoke && !it.isBroadcast:
			// dropped: the transport redelivers after restart
		case keepUser:
			kept = append(kept, it)
		default:
			dropped++
		}
	}
	m.items = kept
	m.mu.Unlock()
	m.cond.Broadcast()
	return dropped
}

// restart reopens a down mailbox; anything queued while down drains in
// arrival order.
func (m *mailbox) restart() {
	m.mu.Lock()
	m.down = false
	m.mu.Unlock()
	m.cond.Broadcast()
}

func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.cond.Broadcast()
}

// pop blocks until an item arrives, the process crashes, or the mailbox
// closes. A crash returns false immediately — queued items wait for the
// next incarnation — while a close drains the queue first.
func (m *mailbox) pop() (item, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.items) == 0 && !m.closed && !m.down {
		m.cond.Wait()
	}
	if m.down || len(m.items) == 0 {
		return item{}, false
	}
	it := m.items[0]
	m.items = m.items[1:]
	return it, true
}

// New builds and starts a live network of n processes.
func New(n int, maker protocol.Maker, opts ...Option) *Network {
	nw := &Network{
		n:       n,
		rec:     protocol.NewRecorder(n),
		rng:     rand.New(rand.NewSource(1)),
		timeout: 10 * time.Second,
		pool:    make(chan flight, 1),
		work:    newWorkGate(),
		done:    make(chan struct{}),
	}
	nw.maker = maker
	for _, o := range opts {
		o(nw)
	}
	if nw.tracer != nil || nw.metrics != nil {
		start := time.Now()
		now := func() int64 { return time.Since(start).Microseconds() }
		nw.sink = &obs.Sink{Tracer: nw.tracer, Metrics: nw.metrics, Now: now}
	}
	if nw.crashes != nil {
		if err := nw.crashes.Validate(n); err != nil {
			nw.fail(fmt.Errorf("%w: %v", ErrProtocol, err))
			nw.crashes = nil
		}
	}
	if nw.faults != nil {
		nw.inj = transport.NewInjector(*nw.faults)
		if nw.sink != nil {
			nw.inj.Observe(nw.sink)
		}
	}
	if nw.faults != nil || nw.crashes != nil {
		if nw.sink != nil {
			nw.trCfg.Obs = nw.sink
		}
		nw.tr = transport.NewReliable(nw.trCfg, func(ev transport.Envelope) {
			nw.inject(flight{env: ev, isEnv: true})
		})
	}
	if nw.sched == nil {
		if nw.inj != nil {
			nw.sched = &faultSched{rng: nw.rng, inj: nw.inj}
		} else {
			nw.sched = &randomSched{rng: nw.rng}
		}
	}
	if nw.crashes != nil {
		nw.downProcs = make([]bool, n)
		nw.deadProcs = make([]bool, n)
		nw.wals = make([]*crash.WAL, n)
		for i := range nw.wals {
			nw.wals[i] = nw.openWAL(i)
		}
		nw.det = crash.NewDetector(n, nw.crashes.Detector, nw.sink)
		nw.crashInj = crash.NewInjector(*nw.crashes, nw.sched, nw.crashProcess)
		nw.sched = nw.crashInj
	}
	proto := ""
	for i := 0; i < n; i++ {
		p := maker()
		class := protocol.General
		if d, ok := p.(protocol.Describer); ok {
			class = d.Describe().Class
			proto = d.Describe().Name
		}
		e := &env{nw: nw, self: event.ProcID(i)}
		if nw.wals != nil {
			e.wal = nw.wals[i]
		}
		nw.incs = append(nw.incs, &incarnation{
			self: event.ProcID(i), inst: p, env: e,
			gone: make(chan struct{}), hbStop: make(chan struct{}),
		})
		nw.classes = append(nw.classes, class)
		nw.procs = append(nw.procs, newMailbox())
		p.Init(e)
	}
	if nw.sink != nil {
		nw.probe = obs.NewProbe(n, nw.tracer, nw.metrics, proto, nw.sink.Now)
	}
	for _, inc := range nw.incs {
		go nw.runProcess(inc)
		if nw.det != nil {
			go nw.heartbeat(inc)
		}
	}
	go nw.runAdversary()
	return nw
}

// OnDeliver installs the delivery hook. Must be called before the first
// Invoke.
func (nw *Network) OnDeliver(fn func(p event.ProcID, id event.MsgID) []Request) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	nw.onDeliver = fn
}

// Invoke submits a user request. It returns ErrStopped after Stop and
// ErrProtocol for out-of-range processes; the stopped check and the
// work accounting are atomic, so Invoke never races a concurrent
// Quiesce into a lost or half-counted request.
func (nw *Network) Invoke(req Request) error {
	if int(req.From) < 0 || int(req.From) >= nw.n {
		return fmt.Errorf("%w: invoke from out-of-range process %d", ErrProtocol, req.From)
	}
	if !req.Broadcast && (int(req.To) < 0 || int(req.To) >= nw.n) {
		return fmt.Errorf("%w: invoke to out-of-range process %d", ErrProtocol, req.To)
	}
	nw.mu.Lock()
	if nw.stopped {
		nw.mu.Unlock()
		return ErrStopped
	}
	if req.Broadcast {
		msgs := make([]event.Message, 0, nw.n-1)
		for to := 0; to < nw.n; to++ {
			if event.ProcID(to) == req.From {
				continue
			}
			msgs = append(msgs, nw.rec.NewKeyedMessage(req.From, event.ProcID(to), req.Color, req.Key))
		}
		if len(msgs) == 0 {
			nw.mu.Unlock()
			return nil // single-process system: nothing to broadcast
		}
		nw.work.add(1)
		nw.mu.Unlock()
		for _, m := range msgs {
			nw.probe.Invoke(m)
		}
		if !nw.procs[req.From].push(item{isBroadcast: true, msgs: msgs}) {
			nw.work.done()
			return fmt.Errorf("%w: P%d", ErrCrashed, req.From)
		}
		return nil
	}
	m := nw.rec.NewKeyedMessage(req.From, req.To, req.Color, req.Key)
	nw.work.add(1)
	nw.mu.Unlock()
	nw.probe.Invoke(m)
	if !nw.procs[req.From].push(item{isInvoke: true, msg: m}) {
		nw.work.done()
		return fmt.Errorf("%w: P%d", ErrCrashed, req.From)
	}
	return nil
}

// Quiesce waits until all submitted work (and everything it spawned)
// has been processed. No waiter goroutine is spawned, so a timed-out
// Quiesce leaks nothing and may be retried. Under a fault plan the
// timeout acts as a stall window: while the transport keeps making
// progress (retransmitting, acking) the deadline extends, up to
// stallCap windows — distinguishing a lossy-but-live network from a
// deadlocked one.
func (nw *Network) Quiesce() error {
	idle := nw.work.idle()
	if nw.tr == nil {
		select {
		case <-idle:
			nw.stallVerdict("idle", "all work drained")
			return nw.runErr()
		case <-time.After(nw.timeout):
			nw.stallVerdict("timeout", "work outstanding, no transport to observe")
			if err := nw.runErr(); err != nil {
				return err
			}
			return fmt.Errorf("%w after %v", ErrTimeout, nw.timeout)
		}
	}
	start := time.Now()
	last := nw.tr.Progress()
	for {
		select {
		case <-idle:
			nw.stallVerdict("idle", "all work drained")
			return nw.runErr()
		case <-time.After(nw.timeout):
			cur := nw.tr.Progress()
			if cur != last && time.Since(start) < stallCap*nw.timeout {
				// Still retransmitting: lossy but live. Record the window
				// extension and how much transport progress bought it.
				if s := nw.sink; s.Enabled() {
					s.Count("sim.stall.extensions", 1)
					s.Observe("sim.stall.progress.delta", int64(cur-last))
					s.Trace(obs.Record{
						Step: s.Step(), Proc: obs.HarnessProc, Op: obs.OpStallExtend, Msg: obs.NoMsg,
						Note: fmt.Sprintf("transport progress %d -> %d, window extended", last, cur),
					})
				}
				last = cur
				continue
			}
			if err := nw.runErr(); err != nil {
				nw.stallVerdict("failed", err.Error())
				return err
			}
			if cur != last || nw.tr.Pending() > 0 {
				nw.stallVerdict("retransmitting", fmt.Sprintf("%d unacked envelopes", nw.tr.Pending()))
				return fmt.Errorf("%w: transport still retransmitting (%d unacked envelopes) after %v",
					ErrTimeout, nw.tr.Pending(), time.Since(start).Round(time.Millisecond))
			}
			nw.stallVerdict("deadlock", "no transport progress for a full window")
			return fmt.Errorf("%w: no transport progress for %v — harness deadlocked",
				ErrTimeout, nw.timeout)
		}
	}
}

// stallVerdict records how one Quiesce call ended: a per-verdict
// counter plus an OpStallVerdict trace record. No-op when the network
// is uninstrumented.
func (nw *Network) stallVerdict(kind, detail string) {
	s := nw.sink
	if !s.Enabled() {
		return
	}
	s.Count("sim.stall.verdict."+kind, 1)
	s.Trace(obs.Record{
		Step: s.Step(), Proc: obs.HarnessProc, Op: obs.OpStallVerdict, Msg: obs.NoMsg,
		Note: kind + ": " + detail,
	})
}

func (nw *Network) runErr() error {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return nw.err
}

// Stop quiesces, shuts the goroutines down, and returns the recorded
// run. Teardown happens even when quiescence fails, so a timed-out
// network does not leak its process, adversary and retransmission
// goroutines; straggler handlers then fail fast instead of hanging.
func (nw *Network) Stop() (*Result, error) {
	qerr := nw.Quiesce()
	nw.shutdown()
	if qerr != nil {
		return nil, qerr
	}
	if nw.tr != nil {
		nw.statOnce.Do(func() {
			tc := nw.tr.Counters()
			faults := 0
			if nw.inj != nil {
				faults = nw.inj.Counters().Total()
			}
			nw.rec.RecordTransport(tc.Retransmits, tc.DupsDropped, faults)
			if nw.crashInj != nil {
				nw.crashMu.RLock()
				t := nw.tallyCrash
				nw.crashMu.RUnlock()
				nw.rec.RecordCrashes(t.crashes, t.recoveries, t.replayed)
			}
		})
	}
	sys, err := nw.rec.SystemRun()
	if err != nil {
		return nil, fmt.Errorf("%w: recorded run invalid: %v", ErrProtocol, err)
	}
	view, err := sys.UsersView()
	if err != nil {
		return nil, fmt.Errorf("%w: user view invalid: %v", ErrProtocol, err)
	}
	res := &Result{
		System:      sys,
		View:        view,
		Stats:       nw.rec.Stats(),
		Undelivered: nw.rec.Undelivered(),
	}
	if nw.tr != nil {
		res.Transport = nw.tr.Counters()
		if nw.inj != nil {
			res.Faults = nw.inj.Counters()
		}
	}
	if nw.crashInj != nil {
		res.Crashes = nw.crashInj.Counters()
	}
	if nw.det != nil {
		res.Detector = nw.det.Counters()
	}
	return res, nil
}

// shutdown tears the harness down exactly once: mark stopped, release
// the adversary and any blocked senders, stop the transport's
// retransmission loop, and close the mailboxes.
func (nw *Network) shutdown() {
	nw.stopOnce.Do(func() {
		nw.mu.Lock()
		nw.stopped = true
		timers := nw.timers
		nw.timers = nil
		nw.mu.Unlock()
		for _, t := range timers {
			t.Stop()
		}
		close(nw.done) // before tr.Close: unblocks the resend path
		if nw.tr != nil {
			nw.tr.Close()
		}
		if nw.det != nil {
			nw.det.Close()
		}
		for _, m := range nw.procs {
			m.close()
		}
		for _, w := range nw.wals {
			w.Close()
		}
	})
}

// inject hands a transmission to the adversary, failing fast (false)
// once the network has shut down instead of blocking forever on the
// pool channel.
func (nw *Network) inject(f flight) bool {
	// Check done first: after shutdown the adversary is gone, and the
	// pool's buffer would otherwise swallow one straggler send.
	select {
	case <-nw.done:
		return false
	default:
	}
	select {
	case nw.pool <- f:
		return true
	case <-nw.done:
		return false
	}
}

// runProcess is one incarnation's goroutine: it drains the process's
// mailbox, journaling each input before its handler runs (so a crash
// never loses a half-applied event — the goroutine only exits between
// handlers, at the next pop).
func (nw *Network) runProcess(inc *incarnation) {
	defer close(inc.gone)
	for {
		it, ok := nw.procs[inc.self].pop()
		if !ok {
			return
		}
		switch {
		case it.isInvoke:
			inc.journal(crash.Entry{Kind: crash.EntryInvoke, Msg: it.msg})
			inc.inst.OnInvoke(it.msg)
			nw.work.done()
			nw.maybeCheckpoint(inc)
		case it.isBroadcast:
			inc.journal(crash.Entry{Kind: crash.EntryBroadcast, Msgs: it.msgs})
			deliverBroadcast(inc.inst, it.msgs)
			nw.work.done()
			nw.maybeCheckpoint(inc)
		case it.isEnv:
			nw.handleEnvelope(inc, it.env)
		default:
			if it.wire.Kind == protocol.UserWire {
				nw.rec.RecordReceive(it.wire.Msg)
			}
			nw.probe.Receive(it.wire)
			inc.inst.OnReceive(it.wire)
			nw.work.done()
		}
	}
}

// deliverBroadcast hands one logical broadcast to the protocol, falling
// back to per-copy invokes when it is not a Broadcaster. Replay uses
// the same dispatch so a recovering instance sees identical calls.
func deliverBroadcast(p protocol.Process, msgs []event.Message) {
	if b, ok := p.(protocol.Broadcaster); ok {
		b.OnBroadcast(msgs)
		return
	}
	for _, m := range msgs {
		p.OnInvoke(m)
	}
}

// handleEnvelope is the receiver side of the transport sublayer: acks
// are routed to the pending table; data envelopes are acknowledged,
// deduplicated, and (first copy only) handed to the protocol.
func (nw *Network) handleEnvelope(inc *incarnation, ev transport.Envelope) {
	switch ev.Kind {
	case transport.Ack:
		nw.tr.Ack(ev)
	case transport.Data:
		fresh := nw.tr.Accept(ev)
		// Always (re-)acknowledge — the previous ack may have been lost.
		nw.inject(flight{env: transport.AckFor(ev), isEnv: true})
		if !fresh {
			return
		}
		w := ev.Wire
		if w.Kind == protocol.UserWire {
			nw.rec.RecordReceive(w.Msg)
		}
		inc.journal(crash.Entry{Kind: crash.EntryReceive, Wire: w})
		nw.probe.Receive(w)
		inc.inst.OnReceive(w)
		nw.work.done()
		nw.maybeCheckpoint(inc)
	}
}

// runAdversary accumulates in-flight transmissions and releases them in
// the scheduler's order, applying its fate (deliver, drop, duplicate,
// delay) to each release.
func (nw *Network) runAdversary() {
	var inflight []flight
	for {
		if len(inflight) == 0 {
			select {
			case f := <-nw.pool:
				inflight = append(inflight, f)
			case <-nw.done:
				return
			}
			continue
		}
		// Opportunistically batch whatever is queued, then release one.
		for {
			select {
			case f := <-nw.pool:
				inflight = append(inflight, f)
				continue
			default:
			}
			break
		}
		i := nw.sched.Pick(len(inflight))
		f := inflight[i]
		inflight[i] = inflight[len(inflight)-1]
		inflight = inflight[:len(inflight)-1]
		switch nw.sched.Fate(f.from(), f.to()) {
		case transport.Drop:
			continue // the transport's retransmission recovers it
		case transport.Duplicate:
			inflight = append(inflight, f) // deliver now, copy stays in flight
		case transport.Delay:
			inflight = append(inflight, f) // back into the reorder pool
			continue
		}
		if nw.crashes != nil && f.isEnv && f.env.Kind == transport.Ack && nw.procDown(f.to()) {
			// A down process cannot run its transport handler, but ack
			// state is network-global bookkeeping: apply it directly so
			// a crashed sender's pendings stop retransmitting instead of
			// looping until the run ends.
			nw.tr.Ack(f.env)
			continue
		}
		nw.procs[f.to()].push(item{wire: f.wire, env: f.env, isEnv: f.isEnv})
	}
}

func (nw *Network) fail(err error) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if nw.err == nil {
		nw.err = err
	}
}

// env implements protocol.Env for one incarnation of a live process.
// With crashes enabled it journals every Send and Deliver into the
// process's WAL; in replay mode (recovery) it suppresses all real
// effects and collects the would-be outputs for divergence checking.
type env struct {
	nw     *Network
	self   event.ProcID
	wal    *crash.WAL // nil without WithCrashes
	replay bool
	got    []crash.Entry // outputs collected during replay
}

var _ protocol.Env = (*env)(nil)

func (e *env) Self() event.ProcID { return e.self }
func (e *env) NumProcs() int      { return e.nw.n }

func (e *env) Send(w protocol.Wire) {
	nw := e.nw
	w.From = e.self
	if e.replay {
		e.got = append(e.got, crash.Entry{Kind: crash.EntrySend, Wire: w})
		return
	}
	if int(w.To) < 0 || int(w.To) >= nw.n {
		nw.fail(fmt.Errorf("%w: send to out-of-range process %d", ErrProtocol, w.To))
		return
	}
	if err := protocol.CheckCapability(nw.classes[e.self], w); err != nil {
		nw.fail(fmt.Errorf("%w: P%d: %w", ErrProtocol, e.self, err))
		return
	}
	switch w.Kind {
	case protocol.UserWire:
		nw.rec.RecordSend(w.Msg, len(w.Tag))
	case protocol.ControlWire:
		nw.rec.RecordControl(len(w.Tag))
	default:
		nw.fail(fmt.Errorf("%w: P%d sent wire with invalid kind", ErrProtocol, e.self))
		return
	}
	if e.wal != nil {
		if err := e.wal.Append(crash.Entry{Kind: crash.EntrySend, Wire: w}); err != nil {
			nw.fail(err)
		}
	}
	nw.probe.Send(&w)
	if nw.crashes != nil {
		nw.sendCrashAware(e.self, w)
		return
	}
	nw.work.add(1)
	var f flight
	if nw.tr != nil {
		f = flight{env: nw.tr.Wrap(e.self, w.To, w), isEnv: true}
	} else {
		f = flight{wire: w}
	}
	if !nw.inject(f) {
		nw.work.done()
		nw.fail(fmt.Errorf("%w: P%d sent after network stop", ErrProtocol, e.self))
	}
}

// sendCrashAware hands a wire to the transport under the crash fence:
// wires addressed to a crash-stopped process vanish (their messages
// stay undelivered, which conformance tolerates for crash-stop plans),
// and holding the read lock across Wrap guarantees CancelTo sees every
// envelope a racing crash-stop must uncount.
func (nw *Network) sendCrashAware(self event.ProcID, w protocol.Wire) {
	nw.crashMu.RLock()
	if nw.deadProcs[w.To] {
		nw.crashMu.RUnlock()
		return
	}
	nw.work.add(1)
	f := flight{env: nw.tr.Wrap(self, w.To, w), isEnv: true}
	nw.crashMu.RUnlock()
	if !nw.inject(f) {
		nw.work.done()
		nw.fail(fmt.Errorf("%w: P%d sent after network stop", ErrProtocol, self))
	}
}

func (e *env) Deliver(id event.MsgID) {
	nw := e.nw
	if e.replay {
		e.got = append(e.got, crash.Entry{Kind: crash.EntryDeliver, ID: id})
		return
	}
	if e.wal != nil {
		if err := e.wal.Append(crash.Entry{Kind: crash.EntryDeliver, ID: id}); err != nil {
			nw.fail(err)
		}
	}
	nw.rec.RecordDeliver(id)
	nw.probe.Deliver(e.self, id)
	nw.mu.Lock()
	hook := nw.onDeliver
	nw.mu.Unlock()
	if hook == nil {
		return
	}
	nw.hookMu.Lock()
	reqs := hook(e.self, id)
	nw.hookMu.Unlock()
	for _, req := range reqs {
		err := nw.Invoke(req)
		if err != nil && !errors.Is(err, ErrStopped) && !errors.Is(err, ErrCrashed) {
			nw.fail(err)
		}
	}
}
