package sim

import (
	"errors"
	"testing"
	"time"

	"msgorder/internal/event"
	"msgorder/internal/protocol"
	"msgorder/internal/protocols/fifo"
	"msgorder/internal/protocols/tagless"
	"msgorder/internal/transport"
)

func TestLossyNetworkStaysLive(t *testing.T) {
	nw := New(3, tagless.Maker, WithSeed(2),
		WithFaults(transport.FaultPlan{DropRate: 0.3, DupRate: 0.2, DelayJitter: 0.2, Seed: 11}))
	for i := 0; i < 40; i++ {
		if err := nw.Invoke(Request{From: event.ProcID(i % 3), To: event.ProcID((i + 1) % 3)}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := nw.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if !res.View.IsComplete() || len(res.Undelivered) != 0 {
		t.Fatalf("lossy run must still deliver everything; undelivered = %v", res.Undelivered)
	}
	if res.Stats.UserMessages != 40 {
		t.Fatalf("user messages = %d, want 40 (dups must not be recorded)", res.Stats.UserMessages)
	}
	if res.Transport.Retransmits == 0 {
		t.Fatal("a 30% drop rate must force retransmissions")
	}
	if res.Transport.DupsDropped == 0 {
		t.Fatal("a 20% dup rate must exercise receiver-side dedup")
	}
	if res.Faults.Total() == 0 {
		t.Fatal("fault counters must be nonzero")
	}
	// Transport counters surface through protocol.Stats too.
	if res.Stats.Retransmits != res.Transport.Retransmits ||
		res.Stats.DupsDropped != res.Transport.DupsDropped ||
		res.Stats.FaultsInjected != res.Faults.Total() {
		t.Fatalf("stats transport fields %+v disagree with counters %+v / %+v",
			res.Stats, res.Transport, res.Faults)
	}
}

func TestFIFOSafetyUnderLoss(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		nw := New(2, fifo.Maker, WithSeed(seed),
			WithFaults(transport.FaultPlan{DropRate: 0.25, DupRate: 0.15, Seed: seed}))
		for i := 0; i < 30; i++ {
			nw.Invoke(Request{From: 0, To: 1})
		}
		res, err := nw.Stop()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if v, bad := res.View.FindCOViolation(); bad {
			t.Fatalf("seed %d: FIFO violated under loss: %v", seed, v)
		}
		if !res.View.IsComplete() {
			t.Fatalf("seed %d: incomplete", seed)
		}
	}
}

func TestPartitionHealsAndDelivers(t *testing.T) {
	nw := New(2, tagless.Maker, WithSeed(6),
		WithFaults(transport.FaultPlan{
			Partitions: []transport.Partition{{A: []event.ProcID{0}, B: []event.ProcID{1}, Heal: 10}},
			Seed:       6,
		}))
	for i := 0; i < 10; i++ {
		nw.Invoke(Request{From: 0, To: 1})
	}
	res, err := nw.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if !res.View.IsComplete() || len(res.Undelivered) != 0 {
		t.Fatalf("messages lost to a healed partition: %v", res.Undelivered)
	}
	if res.Faults.PartitionDrops != 10 {
		t.Fatalf("partition drops = %d, want exactly the heal budget (10)", res.Faults.PartitionDrops)
	}
	if res.Transport.Retransmits == 0 {
		t.Fatal("recovery from the partition requires retransmissions")
	}
}

// TestStallDetectorExtendsPastTimeout uses a stall window shorter than
// the whole lossy run: Quiesce must keep extending the deadline while
// the transport makes progress instead of reporting a spurious timeout.
func TestStallDetectorExtendsPastTimeout(t *testing.T) {
	nw := New(2, tagless.Maker, WithSeed(8),
		WithTimeout(40*time.Millisecond),
		WithFaults(transport.FaultPlan{DropRate: 0.3, Seed: 8}))
	for i := 0; i < 20; i++ {
		nw.Invoke(Request{From: event.ProcID(i % 2), To: event.ProcID((i + 1) % 2)})
	}
	res, err := nw.Stop()
	if err != nil {
		t.Fatalf("stall detector must tolerate a live lossy network: %v", err)
	}
	if !res.View.IsComplete() {
		t.Fatal("incomplete")
	}
}

// TestDeadlockDetectedUnderFaults checks the other side of the stall
// detector: a genuinely stuck protocol still times out (wrapped
// ErrTimeout), bounded by stallCap windows.
func TestDeadlockDetectedUnderFaults(t *testing.T) {
	window := 40 * time.Millisecond
	nw := New(2, func() protocol.Process { return &staller{} },
		WithTimeout(window),
		WithFaults(transport.FaultPlan{DropRate: 0.2, Seed: 3}))
	nw.Invoke(Request{From: 0, To: 1})
	start := time.Now()
	_, err := nw.Stop()
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > (stallCap+2)*window {
		t.Fatalf("stall detector ran %v, want <= ~%v", elapsed, stallCap*window)
	}
}

func TestFaultFreeRunHasZeroTransportCounters(t *testing.T) {
	nw := New(2, tagless.Maker, WithSeed(1))
	for i := 0; i < 10; i++ {
		nw.Invoke(Request{From: 0, To: 1})
	}
	res, err := nw.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if res.Transport != (transport.Counters{}) {
		t.Fatalf("transport counters = %+v on a fault-free run", res.Transport)
	}
	if res.Faults != (transport.FaultCounters{}) {
		t.Fatalf("fault counters = %+v on a fault-free run", res.Faults)
	}
	if res.Stats.Retransmits != 0 || res.Stats.DupsDropped != 0 || res.Stats.FaultsInjected != 0 {
		t.Fatalf("stats transport fields must stay zero: %+v", res.Stats)
	}
}
