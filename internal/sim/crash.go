// Crash/restart lifecycle for the live harness. A process is one
// mailbox for life plus a sequence of incarnations: crashing an
// incarnation makes its goroutine exit at the next mailbox pop (a
// running handler always completes — the journal never splits an
// event), and restarting builds a fresh protocol instance, restores the
// latest checkpoint, replays the journal suffix with all effects
// suppressed, verifies the replayed outputs match what the pre-crash
// incarnation journaled, and only then goes live again.
package sim

import (
	"fmt"
	"path/filepath"
	"time"

	"msgorder/internal/crash"
	"msgorder/internal/event"
	"msgorder/internal/obs"
	"msgorder/internal/protocol"
)

// incarnation is one lifetime of one process: the protocol instance,
// its env, and the channels fencing its goroutine and heartbeats.
type incarnation struct {
	self   event.ProcID
	num    int // 0 for the boot instance
	inst   protocol.Process
	env    *env
	gone   chan struct{} // closed when the process goroutine exits
	hbStop chan struct{} // closed to stop this incarnation's heartbeats
}

// journal appends a WAL entry for this process, when journaling is on.
func (inc *incarnation) journal(e crash.Entry) {
	if w := inc.env.wal; w != nil {
		if err := w.Append(e); err != nil {
			inc.env.nw.fail(err)
		}
	}
}

// openWAL builds process i's write-ahead log: file-backed when the plan
// names a directory, in-memory otherwise.
func (nw *Network) openWAL(i int) *crash.WAL {
	dir := nw.crashes.WALDir
	if dir == "" {
		return crash.NewWAL()
	}
	w, err := crash.OpenFileWAL(filepath.Join(dir, fmt.Sprintf("p%d.wal", i)))
	if err != nil {
		nw.fail(fmt.Errorf("sim: open WAL for P%d: %w", i, err))
		return crash.NewWAL()
	}
	return w
}

// procDown reports whether p is currently crashed (or dead forever).
func (nw *Network) procDown(p event.ProcID) bool {
	nw.crashMu.RLock()
	defer nw.crashMu.RUnlock()
	return nw.downProcs[p]
}

// crashProcess fires one crash spec. It runs on the adversary goroutine
// (via the crash injector's callback) and must not block: it only flips
// flags, prunes the mailbox, and pauses the transport; the heavier
// work — cancelling a dead process's inbound traffic, or restarting —
// happens on spawned goroutines after the incarnation's goroutine has
// provably exited.
func (nw *Network) crashProcess(sp crash.Spec) bool {
	nw.crashMu.Lock()
	if nw.downProcs[sp.Proc] {
		nw.crashMu.Unlock()
		return false // already down (or dead): the spec is skipped
	}
	nw.downProcs[sp.Proc] = true
	if !sp.Restart {
		nw.deadProcs[sp.Proc] = true
	}
	inc := nw.incs[sp.Proc]
	nw.tallyCrash.crashes++
	nw.crashMu.Unlock()

	close(inc.hbStop)
	lost := nw.procs[sp.Proc].crash(sp.Restart)
	nw.work.add(-lost)
	nw.tr.PeerDown(sp.Proc)
	nw.det.MarkCrashed(sp.Proc, true)
	if s := nw.sink; s.Enabled() {
		kind := "crash-stop"
		if sp.Restart {
			kind = fmt.Sprintf("crash-restart, down %v", sp.Downtime)
		}
		s.Count("sim.crashes", 1)
		s.Trace(obs.Record{
			Step: s.Step(), Proc: sp.Proc, Op: obs.OpCrash, Msg: obs.NoMsg,
			Note: fmt.Sprintf("%s at release %d (incarnation %d)", kind, sp.At, inc.num),
		})
	}

	if sp.Restart {
		crashedAt := time.Now()
		t := time.AfterFunc(sp.Downtime, func() {
			nw.restartProcess(sp.Proc, inc, crashedAt)
		})
		nw.mu.Lock()
		if nw.stopped {
			t.Stop()
		} else {
			nw.timers = append(nw.timers, t)
		}
		nw.mu.Unlock()
		return true
	}
	go func() {
		// Wait for the final handler to finish: it may still accept
		// envelopes, and CancelTo must only uncount never-accepted ones.
		<-inc.gone
		nw.work.add(-nw.tr.CancelTo(sp.Proc))
	}()
	return true
}

// restartProcess brings p back after its downtime: restore, replay,
// verify, then go live.
func (nw *Network) restartProcess(p event.ProcID, old *incarnation, crashedAt time.Time) {
	<-old.gone
	nw.mu.Lock()
	stopped := nw.stopped
	nw.mu.Unlock()
	if stopped {
		return
	}

	inst := nw.maker()
	e := &env{nw: nw, self: p, replay: true}
	inst.Init(e)

	wal := nw.wals[p]
	snap, entries := wal.Replay()
	if snap != nil {
		s, ok := inst.(protocol.Snapshotter)
		if !ok {
			nw.fail(fmt.Errorf("%w: P%d has a checkpoint but no Snapshotter", ErrProtocol, p))
			return
		}
		if err := s.Restore(snap); err != nil {
			nw.fail(fmt.Errorf("%w: P%d restore: %v", ErrProtocol, p, err))
			return
		}
	}
	var outs []crash.Entry
	for _, en := range entries {
		if !en.Input() {
			outs = append(outs, en)
		}
	}
	oi, replayed := 0, 0
	for _, en := range entries {
		if !en.Input() {
			continue
		}
		switch en.Kind {
		case crash.EntryInvoke:
			inst.OnInvoke(en.Msg)
		case crash.EntryBroadcast:
			deliverBroadcast(inst, en.Msgs)
		case crash.EntryReceive:
			inst.OnReceive(en.Wire)
		}
		replayed++
		for _, g := range e.got {
			if oi >= len(outs) || !crash.SameOutput(outs[oi], g) {
				nw.fail(fmt.Errorf("%w: P%d replaying %s entry %d", ErrReplayDiverged, p, en.Kind, replayed))
				return
			}
			oi++
		}
		e.got = e.got[:0]
	}
	if oi != len(outs) {
		nw.fail(fmt.Errorf("%w: P%d re-emitted %d of %d journaled outputs", ErrReplayDiverged, p, oi, len(outs)))
		return
	}

	// Go live. The env flips out of replay mode before the goroutine
	// starts, so the new incarnation journals and sends for real.
	e.replay = false
	e.wal = wal
	e.got = nil
	ninc := &incarnation{
		self: p, num: old.num + 1, inst: inst, env: e,
		gone: make(chan struct{}), hbStop: make(chan struct{}),
	}
	nw.crashMu.Lock()
	nw.incs[p] = ninc
	nw.downProcs[p] = false
	nw.tallyCrash.recoveries++
	nw.tallyCrash.replayed += replayed
	nw.crashMu.Unlock()

	nw.procs[p].restart()
	nw.tr.PeerUp(p)
	nw.det.MarkCrashed(p, false)
	if s := nw.sink; s.Enabled() {
		lat := time.Since(crashedAt)
		s.Count("sim.recoveries", 1)
		s.Observe("crash.recovery.latency.us", lat.Microseconds())
		s.Observe("crash.recovery.replayed", int64(replayed))
		s.Trace(obs.Record{
			Step: s.Step(), Proc: p, Op: obs.OpRecover, Msg: obs.NoMsg,
			Note: fmt.Sprintf("incarnation %d live after %v, replayed %d entries", ninc.num, lat.Round(time.Microsecond), replayed),
		})
	}
	go nw.runProcess(ninc)
	go nw.heartbeat(ninc)
}

// maybeCheckpoint snapshots a Snapshotter protocol once enough entries
// accumulated since the last checkpoint, truncating its journal. Runs
// only between handlers on the process's own goroutine, so a checkpoint
// never splits one handler's input from its outputs.
func (nw *Network) maybeCheckpoint(inc *incarnation) {
	w := inc.env.wal
	if w == nil || nw.crashes.SnapshotEvery <= 0 || w.SinceCheckpoint() < nw.crashes.SnapshotEvery {
		return
	}
	s, ok := inc.inst.(protocol.Snapshotter)
	if !ok {
		return
	}
	if err := w.Checkpoint(s.Snapshot()); err != nil {
		nw.fail(err)
		return
	}
	if sk := nw.sink; sk.Enabled() {
		sk.Count("crash.wal.checkpoints", 1)
	}
}

// heartbeat feeds the failure detector for one incarnation.
func (nw *Network) heartbeat(inc *incarnation) {
	nw.det.Beat(inc.self)
	t := time.NewTicker(nw.det.Config().Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			nw.det.Beat(inc.self)
		case <-inc.hbStop:
			return
		case <-nw.done:
			return
		}
	}
}
