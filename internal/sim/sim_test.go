package sim

import (
	"errors"
	"testing"
	"time"

	"msgorder/internal/event"
	"msgorder/internal/protocol"
	"msgorder/internal/protocols/causal"
	"msgorder/internal/protocols/fifo"
	"msgorder/internal/protocols/sync"
	"msgorder/internal/protocols/tagless"
)

func TestTaglessLive(t *testing.T) {
	nw := New(3, tagless.Maker, WithSeed(1))
	for i := 0; i < 30; i++ {
		nw.Invoke(Request{From: event.ProcID(i % 3), To: event.ProcID((i + 1) % 3)})
	}
	res, err := nw.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if !res.View.IsComplete() || len(res.Undelivered) != 0 {
		t.Fatal("all messages must be delivered")
	}
	if res.Stats.UserMessages != 30 {
		t.Fatalf("stats = %+v", res.Stats)
	}
}

func TestFIFOSafetyLive(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		nw := New(2, fifo.Maker, WithSeed(seed))
		for i := 0; i < 40; i++ {
			nw.Invoke(Request{From: 0, To: 1})
		}
		res, err := nw.Stop()
		if err != nil {
			t.Fatal(err)
		}
		if v, bad := res.View.FindCOViolation(); bad {
			t.Fatalf("seed %d: FIFO violated: %v", seed, v)
		}
	}
}

func TestCausalSafetyLive(t *testing.T) {
	for _, maker := range []protocol.Maker{causal.RSTMaker, causal.SESMaker} {
		nw := New(3, maker, WithSeed(5))
		// Delivery-triggered relays build causal chains across channels.
		count := 0
		nw.OnDeliver(func(p event.ProcID, _ event.MsgID) []Request {
			if count >= 25 {
				return nil
			}
			count++
			return []Request{{From: p, To: event.ProcID((int(p) + 1) % 3)}}
		})
		for i := 0; i < 15; i++ {
			nw.Invoke(Request{From: event.ProcID(i % 3), To: event.ProcID((i + 2) % 3)})
		}
		res, err := nw.Stop()
		if err != nil {
			t.Fatal(err)
		}
		if !res.View.InCO() {
			t.Fatal("causal protocol must keep the live view causally ordered")
		}
	}
}

func TestSyncSafetyLive(t *testing.T) {
	nw := New(4, sync.Maker, WithSeed(9))
	for i := 0; i < 20; i++ {
		nw.Invoke(Request{From: event.ProcID(i % 4), To: event.ProcID((i + 1) % 4)})
	}
	res, err := nw.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if !res.View.InSync() {
		t.Fatal("sequencer protocol must stay logically synchronous under live concurrency")
	}
	if res.Stats.ControlMessages != 3*res.Stats.UserMessages {
		t.Fatalf("control = %d for %d user", res.Stats.ControlMessages, res.Stats.UserMessages)
	}
}

func TestInvokeAfterStopIgnored(t *testing.T) {
	nw := New(2, tagless.Maker)
	nw.Invoke(Request{From: 0, To: 1})
	if _, err := nw.Stop(); err != nil {
		t.Fatal(err)
	}
	nw.Invoke(Request{From: 0, To: 1}) // must not panic or hang
}

// blackhole keeps every user message forever.
type blackhole struct{ env protocol.Env }

func (p *blackhole) Init(env protocol.Env) { p.env = env }
func (p *blackhole) OnInvoke(m event.Message) {
	p.env.Send(protocol.Wire{To: m.To, Kind: protocol.UserWire, Msg: m.ID})
}
func (p *blackhole) OnReceive(protocol.Wire) {}

func TestUndeliveredReported(t *testing.T) {
	nw := New(2, func() protocol.Process { return &blackhole{} })
	nw.Invoke(Request{From: 0, To: 1})
	res, err := nw.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Undelivered) != 1 {
		t.Fatalf("undelivered = %v", res.Undelivered)
	}
}

// staller blocks forever on receive, forcing a quiescence timeout.
type staller struct{ env protocol.Env }

func (p *staller) Init(env protocol.Env) { p.env = env }
func (p *staller) OnInvoke(m event.Message) {
	p.env.Send(protocol.Wire{To: m.To, Kind: protocol.UserWire, Msg: m.ID})
}
func (p *staller) OnReceive(protocol.Wire) { select {} }

func TestQuiesceTimeout(t *testing.T) {
	nw := New(2, func() protocol.Process { return &staller{} },
		WithTimeout(50*time.Millisecond))
	nw.Invoke(Request{From: 0, To: 1})
	if err := nw.Quiesce(); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

// sneaky declares tagless but tags.
type sneaky struct{ env protocol.Env }

func (p *sneaky) Describe() protocol.Descriptor {
	return protocol.Descriptor{Name: "sneaky", Class: protocol.Tagless}
}
func (p *sneaky) Init(env protocol.Env) { p.env = env }
func (p *sneaky) OnInvoke(m event.Message) {
	p.env.Send(protocol.Wire{To: m.To, Kind: protocol.UserWire, Msg: m.ID, Tag: []byte{1}})
}
func (p *sneaky) OnReceive(w protocol.Wire) {
	if w.Kind == protocol.UserWire {
		p.env.Deliver(w.Msg)
	}
}

func TestCapabilityEnforcedLive(t *testing.T) {
	nw := New(2, func() protocol.Process { return &sneaky{} })
	nw.Invoke(Request{From: 0, To: 1})
	// The send is rejected, so the message never arrives; quiesce still
	// succeeds (work is counted per handler) and the error is surfaced.
	err := nw.Quiesce()
	if !errors.Is(err, protocol.ErrClassViolation) {
		t.Fatalf("err = %v, want ErrClassViolation", err)
	}
}

func TestChainedWorkloadLive(t *testing.T) {
	nw := New(2, tagless.Maker, WithSeed(2))
	hops := 0
	nw.OnDeliver(func(p event.ProcID, _ event.MsgID) []Request {
		if hops >= 10 {
			return nil
		}
		hops++
		return []Request{{From: p, To: 1 - p}}
	})
	nw.Invoke(Request{From: 0, To: 1})
	res, err := nw.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if res.View.NumMessages() != 11 {
		t.Fatalf("messages = %d, want 11", res.View.NumMessages())
	}
}
