package sim

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"msgorder/internal/event"
	"msgorder/internal/obs"
	"msgorder/internal/protocol"
	"msgorder/internal/protocols/tagless"
	"msgorder/internal/transport"
)

// dropFirst releases flights in FIFO order and drops the first n of
// them — a deterministic adversary that forces sustained retransmission
// without randomness (the transport recovers every drop).
type dropFirst struct{ n int }

func (s *dropFirst) Pick(int) int { return 0 }
func (s *dropFirst) Fate(event.ProcID, event.ProcID) transport.Action {
	if s.n > 0 {
		s.n--
		return transport.Drop
	}
	return transport.Deliver
}

// TestStallDetectorMetricsLossyButLive pins the observable half of the
// stall detector: a lossy-but-live run whose recovery outlasts the
// quiescence window must record its window extensions (counter, progress
// deltas, OpStallExtend records) and finish with an "idle" verdict.
func TestStallDetectorMetricsLossyButLive(t *testing.T) {
	col := obs.NewCollector()
	reg := obs.NewRegistry()
	window := 20 * time.Millisecond
	// 50 drop credits over 5 pending messages with a 2-4ms RTO burn in
	// roughly 30-40ms: past the first window (an extension must fire)
	// but well inside the stallCap budget of 8 windows.
	nw := New(2, tagless.Maker,
		WithTimeout(window),
		WithFaults(transport.FaultPlan{}),
		WithScheduler(&dropFirst{n: 50}),
		WithTransportConfig(transport.Config{
			RTO: 2 * time.Millisecond, MaxRTO: 4 * time.Millisecond, Tick: time.Millisecond,
		}),
		WithTracer(col), WithMetrics(reg))
	for i := 0; i < 5; i++ {
		if err := nw.Invoke(Request{From: 0, To: 1}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := nw.Stop()
	if err != nil {
		t.Fatalf("lossy-but-live run must quiesce: %v", err)
	}
	if !res.View.IsComplete() {
		t.Fatal("incomplete")
	}
	if n := reg.Counter("sim.stall.extensions"); n < 1 {
		t.Fatalf("stall extensions = %d, want >= 1 (recovery spans multiple windows)", n)
	}
	if n := reg.Counter("sim.stall.verdict.idle"); n != 1 {
		t.Fatalf("idle verdicts = %d, want exactly 1", n)
	}
	if n := reg.Counter("transport.retransmits"); n < 1 {
		t.Fatalf("transport.retransmits = %d, want >= 1", n)
	}
	snap := reg.Snapshot()
	if h, ok := snap.Histograms["sim.stall.progress.delta"]; !ok || h.Count < 1 || h.Sum < 1 {
		t.Fatalf("progress-delta histogram missing or empty: %+v", h)
	}
	var extends, verdicts int
	for _, r := range col.Records() {
		switch r.Op {
		case obs.OpStallExtend:
			extends++
			if r.Proc != obs.HarnessProc || !strings.Contains(r.Note, "window extended") {
				t.Fatalf("malformed extension record: %+v", r)
			}
		case obs.OpStallVerdict:
			verdicts++
			if !strings.Contains(r.Note, "idle") {
				t.Fatalf("verdict record = %+v, want idle", r)
			}
		}
	}
	if extends < 1 || verdicts != 1 {
		t.Fatalf("trace has %d extend / %d verdict records, want >=1 / 1", extends, verdicts)
	}
}

// TestStallDetectorMetricsDeadlock is the other half: a protocol stuck
// forever (after its transport traffic has drained) must be classified
// as a deadlock, not as retransmission, and the verdict counter must say
// so.
func TestStallDetectorMetricsDeadlock(t *testing.T) {
	col := obs.NewCollector()
	reg := obs.NewRegistry()
	nw := New(2, func() protocol.Process { return &staller{} },
		WithTimeout(25*time.Millisecond),
		WithFaults(transport.FaultPlan{}),
		WithTracer(col), WithMetrics(reg))
	nw.Invoke(Request{From: 0, To: 1})
	_, err := nw.Stop()
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if n := reg.Counter("sim.stall.verdict.deadlock"); n != 1 {
		t.Fatalf("deadlock verdicts = %d, want exactly 1", n)
	}
	if n := reg.Counter("sim.stall.verdict.idle"); n != 0 {
		t.Fatalf("idle verdicts = %d on a deadlocked run", n)
	}
	found := false
	for _, r := range col.Records() {
		if r.Op == obs.OpStallVerdict && strings.Contains(r.Note, "deadlock") {
			found = true
		}
	}
	if !found {
		t.Fatal("no OpStallVerdict deadlock record in the trace")
	}
}

// TestLiveTraceExportsValidChromeTrace runs an instrumented lossy live
// run end to end and checks the exported Chrome trace passes the causal
// validator (monotone tracks, every deliver preceded by its send).
func TestLiveTraceExportsValidChromeTrace(t *testing.T) {
	col := obs.NewCollector()
	reg := obs.NewRegistry()
	nw := New(3, tagless.Maker, WithSeed(4),
		WithFaults(transport.FaultPlan{DropRate: 0.2, DupRate: 0.1, Seed: 9}),
		WithTracer(col), WithMetrics(reg))
	for i := 0; i < 12; i++ {
		if err := nw.Invoke(Request{From: event.ProcID(i % 3), To: event.ProcID((i + 1) % 3)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := nw.Stop(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, col.Records()); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("live trace fails validation: %v", err)
	}
	if h, ok := reg.Snapshot().Histograms["deliver.latency.steps.tagless"]; !ok || h.Count != 12 {
		t.Fatalf("deliver latency histogram = %+v, want 12 samples", h)
	}
}
