package conformance

import (
	"errors"
	"strings"
	"testing"

	"msgorder/internal/catalog"
	"msgorder/internal/dsim"
	"msgorder/internal/event"
	"msgorder/internal/predicate"
	"msgorder/internal/protocol"
	"msgorder/internal/protocols/causal"
	"msgorder/internal/protocols/fifo"
	"msgorder/internal/protocols/flush"
	"msgorder/internal/protocols/kweaker"
	"msgorder/internal/protocols/sync"
	"msgorder/internal/protocols/tagless"
)

const (
	safetySeeds    = 60  // seeds each protocol must satisfy its spec on
	violationSeeds = 300 // budget for finding a violating seed
)

func pred(t *testing.T, name string) *predicate.Predicate {
	t.Helper()
	e, ok := catalog.ByName(name)
	if !ok {
		t.Fatalf("unknown catalog entry %q", name)
	}
	return e.Pred
}

func chainCfg(maker protocol.Maker) Config {
	return Config{
		Maker:       maker,
		Procs:       3,
		InitialMsgs: 10,
		ChainBudget: 10,
		ChainProb:   0.7,
		DelayMin:    1,
		DelayMax:    40,
	}
}

// --- tagless ---

func TestTaglessAlwaysLiveAndAsync(t *testing.T) {
	results, _, err := Sweep(chainCfg(tagless.Maker), safetySeeds, pred(t, "causal-b2"))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !r.View.InAsync() {
			t.Fatal("every quiesced run is in X_async")
		}
	}
}

func TestTaglessViolatesFIFO(t *testing.T) {
	v, found, err := FindsViolation(chainCfg(tagless.Maker), violationSeeds, pred(t, "fifo"))
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("tagless protocol should violate FIFO under some seed")
	}
	if v.View.InCO() {
		t.Error("a FIFO violation is a causal-ordering violation")
	}
}

func TestTaglessViolatesCausal(t *testing.T) {
	_, found, err := FindsViolation(chainCfg(tagless.Maker), violationSeeds, pred(t, "causal-b2"))
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("tagless protocol should violate causal ordering under some seed")
	}
}

// --- FIFO ---

func TestFIFOSatisfiesFIFO(t *testing.T) {
	if err := AlwaysSatisfies(chainCfg(fifo.Maker), safetySeeds, pred(t, "fifo")); err != nil {
		t.Fatal(err)
	}
}

func TestFIFOViolatesCausal(t *testing.T) {
	// Cross-channel relays defeat per-channel sequencing.
	_, found, err := FindsViolation(chainCfg(fifo.Maker), violationSeeds, pred(t, "causal-b2"))
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("FIFO should violate causal ordering under some seed")
	}
}

// --- causal (RST and SES) ---

func TestRSTSatisfiesCausal(t *testing.T) {
	if err := AlwaysSatisfies(chainCfg(causal.RSTMaker), safetySeeds, pred(t, "causal-b2")); err != nil {
		t.Fatal(err)
	}
}

func TestSESSatisfiesCausal(t *testing.T) {
	if err := AlwaysSatisfies(chainCfg(causal.SESMaker), safetySeeds, pred(t, "causal-b2")); err != nil {
		t.Fatal(err)
	}
}

func TestCausalImpliesFIFO(t *testing.T) {
	for name, maker := range map[string]protocol.Maker{
		"rst": causal.RSTMaker,
		"ses": causal.SESMaker,
	} {
		if err := AlwaysSatisfies(chainCfg(maker), safetySeeds/2, pred(t, "fifo")); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestCausalViolatesSync(t *testing.T) {
	// Theorem 4.2's empirical face: causally ordered runs still contain
	// crowns, so tagging cannot implement logical synchrony.
	for name, maker := range map[string]protocol.Maker{
		"rst": causal.RSTMaker,
		"ses": causal.SESMaker,
	} {
		v, found, err := FindsViolation(chainCfg(maker), violationSeeds, pred(t, "sync-2"))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !found {
			t.Fatalf("%s: causal protocol should produce a crown under some seed", name)
		}
		if !v.View.InCO() {
			t.Fatalf("%s: crown witness must still be causally ordered", name)
		}
	}
}

func TestCausalVariantsAgreeOnDeliverability(t *testing.T) {
	// Both causal implementations must accept exactly X_co; their views
	// may differ per seed, but both must be causally ordered and live.
	for seed := int64(1); seed <= 25; seed++ {
		for name, maker := range map[string]protocol.Maker{
			"rst": causal.RSTMaker,
			"ses": causal.SESMaker,
		} {
			cfg := chainCfg(maker)
			cfg.Seed = seed
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
			if !res.View.InCO() {
				t.Fatalf("%s seed %d: view not causally ordered", name, seed)
			}
		}
	}
}

// --- broadcast (the multicast extension) ---

func broadcastCfg(maker protocol.Maker) Config {
	cfg := chainCfg(maker)
	cfg.Broadcast = true
	cfg.Procs = 4
	cfg.InitialMsgs = 6
	cfg.ChainBudget = 6
	return cfg
}

func TestBSSSatisfiesCausalOnBroadcasts(t *testing.T) {
	if err := AlwaysSatisfies(broadcastCfg(causal.BSSMaker), safetySeeds, pred(t, "causal-b2")); err != nil {
		t.Fatal(err)
	}
}

func TestBSSLiveOnBroadcasts(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		cfg := broadcastCfg(causal.BSSMaker)
		cfg.Seed = seed
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.View.IsComplete() {
			t.Fatalf("seed %d: incomplete", seed)
		}
	}
}

func TestTaglessViolatesCausalOnBroadcasts(t *testing.T) {
	_, found, err := FindsViolation(broadcastCfg(tagless.Maker), violationSeeds, pred(t, "causal-b2"))
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("tagless broadcast should violate causal ordering under some seed")
	}
}

func TestRSTHandlesBroadcastWorkloads(t *testing.T) {
	// RST has no native broadcast; the harness decomposes into unicasts,
	// and matrix clocks still enforce causal ordering.
	if err := AlwaysSatisfies(broadcastCfg(causal.RSTMaker), safetySeeds/2, pred(t, "causal-b2")); err != nil {
		t.Fatal(err)
	}
}

func TestBSSTagBytesBeatRSTOnBroadcasts(t *testing.T) {
	total := func(maker protocol.Maker) float64 {
		cfg := broadcastCfg(maker)
		cfg.Procs = 8
		cfg.Seed = 3
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.TagBytesPerUser()
	}
	bss, rst := total(causal.BSSMaker), total(causal.RSTMaker)
	if bss >= rst {
		t.Fatalf("BSS tag bytes (%.1f) should undercut RST (%.1f) at n=8", bss, rst)
	}
}

// --- sync ---

func TestSyncSatisfiesEverything(t *testing.T) {
	cfg := chainCfg(sync.Maker)
	for _, spec := range []string{"sync-2", "sync-3", "sync-4", "causal-b2", "fifo"} {
		if err := AlwaysSatisfies(cfg, safetySeeds/2, pred(t, spec)); err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
	}
}

func TestSyncRunsAreLogicallySynchronous(t *testing.T) {
	results, _, err := Sweep(chainCfg(sync.Maker), safetySeeds/2, pred(t, "sync-2"))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !r.View.InSync() {
			t.Fatal("sequencer protocol must yield logically synchronous views")
		}
		if r.Stats.ControlMessages != 3*r.Stats.UserMessages {
			t.Fatalf("control overhead = %d for %d user messages, want 3x",
				r.Stats.ControlMessages, r.Stats.UserMessages)
		}
	}
}

func TestRASatisfiesEverything(t *testing.T) {
	cfg := chainCfg(sync.RAMaker)
	for _, spec := range []string{"sync-2", "sync-3", "causal-b2", "fifo"} {
		if err := AlwaysSatisfies(cfg, safetySeeds/2, pred(t, spec)); err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
	}
}

func TestRAControlOverheadScalesWithN(t *testing.T) {
	// RA pays 2(n-1)+1 control messages per user message.
	for _, procs := range []int{2, 3, 5} {
		cfg := chainCfg(sync.RAMaker)
		cfg.Procs = procs
		cfg.Seed = 1
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := 2*(procs-1) + 1
		got := res.Stats.ControlPerUser()
		if got != float64(want) {
			t.Fatalf("procs=%d: control/user = %v, want %d", procs, got, want)
		}
		if !res.View.InSync() {
			t.Fatalf("procs=%d: view not logically synchronous", procs)
		}
	}
}

// --- flush ---

func flushCfg() Config {
	cfg := chainCfg(flush.Maker)
	// Red = forward flush; plain = ordinary.
	cfg.Colors = []event.Color{
		event.ColorNone, event.ColorNone, event.ColorNone, event.ColorRed,
	}
	return cfg
}

func TestFlushSatisfiesLocalForwardFlush(t *testing.T) {
	if err := AlwaysSatisfies(flushCfg(), safetySeeds, pred(t, "local-forward-flush")); err != nil {
		t.Fatal(err)
	}
}

func TestFlushOrdinaryMessagesMayReorder(t *testing.T) {
	// Flush channels are weaker than FIFO: ordinary messages may overtake
	// each other.
	_, found, err := FindsViolation(flushCfg(), violationSeeds, pred(t, "fifo"))
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("flush protocol should reorder ordinary messages under some seed")
	}
}

func TestFlushBackwardBarrier(t *testing.T) {
	// Blue = backward flush: later sends on the channel must trail it.
	// Specification: forbidden x (blue), y : x.s -> y.s (same channel) &&
	// y.r -> x.r.
	spec := predicate.MustParse(`x, y :
		process(x.s) == process(y.s) && process(x.r) == process(y.r) && color(x) == blue :
		x.s -> y.s && y.r -> x.r`)
	cfg := chainCfg(flush.Maker)
	cfg.Colors = []event.Color{event.ColorNone, event.ColorNone, event.ColorBlue}
	if err := AlwaysSatisfies(cfg, safetySeeds, spec); err != nil {
		t.Fatal(err)
	}
}

func TestFlushTwoWay(t *testing.T) {
	// Green = two-way flush: acts as both barrier and forward flush.
	forward := predicate.MustParse(`x, y :
		process(x.s) == process(y.s) && process(x.r) == process(y.r) && color(y) == green :
		x.s -> y.s && y.r -> x.r`)
	backward := predicate.MustParse(`x, y :
		process(x.s) == process(y.s) && process(x.r) == process(y.r) && color(x) == green :
		x.s -> y.s && y.r -> x.r`)
	cfg := chainCfg(flush.Maker)
	cfg.Colors = []event.Color{event.ColorNone, event.ColorNone, event.ColorGreen}
	for name, spec := range map[string]*predicate.Predicate{
		"forward": forward, "backward": backward,
	} {
		if err := AlwaysSatisfies(cfg, safetySeeds/2, spec); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestGlobalFlushNeedsMoreThanChannelFlush(t *testing.T) {
	// The per-channel flush protocol does not implement the GLOBAL
	// forward-flush specification: a red marker can be outrun through a
	// relay on another channel.
	cfg := flushCfg()
	cfg.Procs = 3
	cfg.InitialMsgs = 12
	cfg.ChainBudget = 12
	cfg.ChainProb = 0.8
	_, found, err := FindsViolation(cfg, violationSeeds, pred(t, "global-forward-flush"))
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("channel-local flush should violate the global flush spec under some seed")
	}
}

func TestCausalOrderingImpliesGlobalFlush(t *testing.T) {
	// X_co is contained in the global forward-flush specification, so the
	// RST protocol implements it outright.
	cfg := chainCfg(causal.RSTMaker)
	cfg.Colors = []event.Color{
		event.ColorNone, event.ColorNone, event.ColorNone, event.ColorRed,
	}
	if err := AlwaysSatisfies(cfg, safetySeeds, pred(t, "global-forward-flush")); err != nil {
		t.Fatal(err)
	}
}

// --- k-weaker ---

func TestKWeakerSatisfiesChannelSpec(t *testing.T) {
	for _, k := range []int{0, 1, 2} {
		cfg := chainCfg(kweaker.Maker(k))
		cfg.Procs = 2 // concentrate traffic on one channel
		cfg.InitialMsgs = 14
		if err := AlwaysSatisfies(cfg, safetySeeds, catalog.KWeakerChannel(k)); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
}

func TestKWeakerZeroIsFIFO(t *testing.T) {
	cfg := chainCfg(kweaker.Maker(0))
	if err := AlwaysSatisfies(cfg, safetySeeds, pred(t, "fifo")); err != nil {
		t.Fatal(err)
	}
}

func TestKWeakerOneViolatesFIFO(t *testing.T) {
	cfg := chainCfg(kweaker.Maker(1))
	cfg.Procs = 2
	cfg.InitialMsgs = 14
	cfg.DelayMax = 60
	_, found, err := FindsViolation(cfg, violationSeeds, pred(t, "fifo"))
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("k=1 should permit single-step overtaking under some seed")
	}
}

// --- harness behaviour ---

func TestDefaultsApplied(t *testing.T) {
	// A zero config (plus a maker) gets workable defaults.
	res, err := Run(Config{Maker: tagless.Maker, ChainBudget: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.View.NumProcs() != 3 {
		t.Fatalf("default procs = %d, want 3", res.View.NumProcs())
	}
	if res.Stats.UserMessages < 12 {
		t.Fatalf("default workload too small: %+v", res.Stats)
	}
}

func TestAlwaysSatisfiesReportsSeed(t *testing.T) {
	err := AlwaysSatisfies(chainCfg(tagless.Maker), violationSeeds, pred(t, "causal-b2"))
	if err == nil {
		t.Fatal("tagless must violate causal ordering within the budget")
	}
	if !strings.Contains(err.Error(), "seed") {
		t.Fatalf("error should name the seed: %v", err)
	}
}

func TestSweepReturnsViolations(t *testing.T) {
	results, violations, err := Sweep(chainCfg(tagless.Maker), 50, pred(t, "causal-b2"))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 50 {
		t.Fatalf("results = %d", len(results))
	}
	if len(violations) == 0 {
		t.Fatal("expected at least one violation in 50 tagless seeds")
	}
	v := violations[0]
	if v.Seed == 0 || v.View == nil || len(v.Match.Assignment) == 0 {
		t.Fatalf("violation incomplete: %+v", v)
	}
}

func TestFindsViolationExhaustsBudget(t *testing.T) {
	// The sync protocol never violates anything: the hunt must come back
	// empty after its budget.
	_, found, err := FindsViolation(chainCfg(sync.Maker), 5, pred(t, "sync-2"))
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatal("sequencer cannot violate sync-2")
	}
}

func TestHarnessPropagatesProtocolErrors(t *testing.T) {
	cfg := chainCfg(func() protocol.Process { return &cheater{} })
	if _, _, err := Sweep(cfg, 3, pred(t, "fifo")); err == nil {
		t.Fatal("protocol errors must propagate through Sweep")
	}
	if err := AlwaysSatisfies(cfg, 3, pred(t, "fifo")); err == nil {
		t.Fatal("protocol errors must propagate through AlwaysSatisfies")
	}
	if _, _, err := FindsViolation(cfg, 3, pred(t, "fifo")); err == nil {
		t.Fatal("protocol errors must propagate through FindsViolation")
	}
}

// cheater claims tagless but tags.
type cheater struct{ env protocol.Env }

func (p *cheater) Describe() protocol.Descriptor {
	return protocol.Descriptor{Name: "cheater", Class: protocol.Tagless}
}
func (p *cheater) Init(env protocol.Env) { p.env = env }
func (p *cheater) OnInvoke(m event.Message) {
	p.env.Send(protocol.Wire{To: m.To, Kind: protocol.UserWire, Msg: m.ID, Tag: []byte{1}})
}
func (p *cheater) OnReceive(w protocol.Wire) {
	if w.Kind == protocol.UserWire {
		p.env.Deliver(w.Msg)
	}
}

// --- liveness across the board ---

func TestAllProtocolsLive(t *testing.T) {
	makers := map[string]protocol.Maker{
		"tagless":   tagless.Maker,
		"fifo":      fifo.Maker,
		"rst":       causal.RSTMaker,
		"ses":       causal.SESMaker,
		"sync":      sync.Maker,
		"sync-ra":   sync.RAMaker,
		"flush":     flush.Maker,
		"kweaker-1": kweaker.Maker(1),
	}
	for name, maker := range makers {
		cfg := chainCfg(maker)
		cfg.InitialMsgs = 20
		cfg.ChainBudget = 20
		for seed := int64(1); seed <= 15; seed++ {
			cfg.Seed = seed
			if _, err := Run(cfg); err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
		}
	}
}

// TestSelfMessagesSupported: protocols must stay live when a process
// sends to itself.
func TestSelfMessagesSupported(t *testing.T) {
	makers := map[string]protocol.Maker{
		"tagless": tagless.Maker,
		"fifo":    fifo.Maker,
		"rst":     causal.RSTMaker,
		"ses":     causal.SESMaker,
		"sync":    sync.Maker,
		"sync-ra": sync.RAMaker,
	}
	for name, maker := range makers {
		cfg := chainCfg(maker)
		cfg.AllowSelf = true
		cfg.InitialMsgs = 10
		for seed := int64(1); seed <= 10; seed++ {
			cfg.Seed = seed
			if _, err := Run(cfg); err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
		}
	}
}

// --- exhaustive exploration ---

func exhaustiveTriangle(maker protocol.Maker) ExhaustiveConfig {
	// The causal triangle: two concurrent sends from P0, plus a relay
	// from P1 to P2 triggered by P1's first delivery.
	return ExhaustiveConfig{
		Maker: maker,
		Procs: 3,
		Requests: []dsim.Request{
			{From: 0, To: 2},
			{From: 0, To: 1},
		},
		MakeHook: func() func(event.ProcID, event.MsgID) []dsim.Request {
			fired := false
			return func(p event.ProcID, _ event.MsgID) []dsim.Request {
				if p != 1 || fired {
					return nil
				}
				fired = true
				return []dsim.Request{{From: 1, To: 2}}
			}
		},
	}
}

func TestExhaustiveRSTSatisfiesCausal(t *testing.T) {
	st, err := AlwaysSatisfiesAllSchedules(exhaustiveTriangle(causal.RSTMaker), pred(t, "causal-b2"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Schedules == 0 || st.Replays == 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
}

func TestExhaustiveTaglessViolatesCausal(t *testing.T) {
	v, found, err := FindsViolationInSomeSchedule(exhaustiveTriangle(tagless.Maker), pred(t, "causal-b2"))
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("some schedule must deliver the relay before the direct send")
	}
	if v.View == nil || len(v.Match.Assignment) == 0 {
		t.Fatalf("violation incomplete: %+v", v)
	}
}

func TestExhaustiveReportsViolatingSchedule(t *testing.T) {
	_, err := AlwaysSatisfiesAllSchedules(exhaustiveTriangle(tagless.Maker), pred(t, "causal-b2"))
	if err == nil {
		t.Fatal("tagless triangle must violate causal ordering in some schedule")
	}
	if !strings.Contains(err.Error(), "schedule") {
		t.Fatalf("error should describe the violating schedule: %v", err)
	}
}

func TestExhaustivePropagatesLimit(t *testing.T) {
	cfg := ExhaustiveConfig{
		Maker: sync.RAMaker,
		Procs: 3,
		Requests: []dsim.Request{
			{From: 1, To: 2}, {From: 2, To: 1},
		},
		MaxRuns: 2,
		Workers: 1,
	}
	_, err := AlwaysSatisfiesAllSchedules(cfg, pred(t, "sync-2"))
	if !errors.Is(err, dsim.ErrExploreLimit) {
		t.Fatalf("err = %v, want ErrExploreLimit", err)
	}
}
