package conformance

import (
	"testing"

	"msgorder/internal/protocols/registry"
)

// catalogNetProtocols adapts the CLI protocol catalog to the net
// matrix input.
func catalogNetProtocols() []NetProtocol {
	var out []NetProtocol
	for _, e := range registry.Catalog() {
		out = append(out, NetProtocol{Name: e.Name, Maker: e.Maker, Colors: e.Colors})
	}
	return out
}

// TestNetMatrixAllProtocolsAllCells is the cross-runtime acceptance
// gate: every catalog protocol must produce the identical user view on
// the in-memory sim and on a 3-process loopback TCP mesh — including
// the lossy and crash-restart cells, whose disturbances must be
// invisible in the view.
func TestNetMatrixAllProtocolsAllCells(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second socket matrix")
	}
	cells, err := NetMatrix(NetMatrixConfig{
		Procs: 3, Msgs: 16, Seed: 5, WALDir: t.TempDir(),
	}, catalogNetProtocols())
	if err != nil {
		t.Fatal(err)
	}
	wantCells := len(registry.Catalog()) * len(NetMatrixCells())
	if len(cells) != wantCells {
		t.Fatalf("matrix has %d cells, want %d", len(cells), wantCells)
	}
	for _, c := range cells {
		if !c.Match {
			t.Errorf("%s/%s: views diverge across runtimes\n sim: %s\nmesh: %s",
				c.Protocol, c.Cell, c.SimKey, c.MeshKey)
			continue
		}
		if c.Mesh.FramesIn == 0 || c.Mesh.FramesOut == 0 {
			t.Errorf("%s/%s: no frames crossed the sockets", c.Protocol, c.Cell)
		}
		switch c.Cell {
		case "lossy":
			if c.Mesh.FaultsInjected == 0 {
				t.Errorf("%s/lossy: no faults injected — cell degenerated to clean", c.Protocol)
			}
		case "crash-restart":
			if c.Stats.Crashes != 1 || c.Stats.Recoveries != 1 {
				t.Errorf("%s/crash-restart: crashes/recoveries = %d/%d, want 1/1",
					c.Protocol, c.Stats.Crashes, c.Stats.Recoveries)
			}
		}
	}
}

// TestNetMatrixDefaults exercises the zero-value config path on a
// single cheap protocol pairing.
func TestNetMatrixDefaults(t *testing.T) {
	e := registry.Catalog()[0]
	cells, err := NetMatrix(NetMatrixConfig{Msgs: 4}, []NetProtocol{
		{Name: e.Name, Maker: e.Maker, Colors: e.Colors},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 {
		t.Fatalf("got %d cells, want 3", len(cells))
	}
	for _, c := range cells {
		if !c.Match {
			t.Fatalf("%s/%s diverged:\n sim: %s\nmesh: %s", c.Protocol, c.Cell, c.SimKey, c.MeshKey)
		}
		if c.SimKey == "" || c.MeshKey == "" {
			t.Fatalf("%s/%s: empty view keys", c.Protocol, c.Cell)
		}
	}
}
