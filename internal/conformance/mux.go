// Multi-tenant conformance: N channels with heterogeneous guarantee
// levels multiplexed over ONE loopback TCP mesh must each reproduce,
// byte for byte, the user view of a standalone single-spec run of the
// same seeded workload. MuxMatrix interleaves the channels' lockstep
// workloads round-robin so every mesh connection genuinely carries
// mixed traffic, then diffs each channel's view against the in-memory
// sim reference — under a clean mesh, a lossy mesh, and a mid-run
// crash-restart of every channel's peer-1 instance. A divergence means
// multiplexing changed a protocol decision, which is exactly what the
// frame channel-ID demux and per-channel sequencing exist to prevent.
package conformance

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"msgorder/internal/chanmux"
	"msgorder/internal/event"
	"msgorder/internal/netmesh"
	"msgorder/internal/protocol"
	"msgorder/internal/transport"
	"msgorder/internal/userview"
)

// MuxCell is one (channel, disturbance) cell of the multi-tenant
// matrix. All channels of one disturbance shared a single mesh; the
// Mesh counters are that shared mesh's aggregate and repeat across the
// cell's rows.
type MuxCell struct {
	// Protocol is the catalog protocol the channel was pinned to.
	Protocol string
	// Cell names the mesh-side disturbance: clean, lossy, or
	// crash-restart.
	Cell string
	// Match reports per-channel view equality with the standalone sim
	// reference (the acceptance criterion).
	Match bool
	// SimKey and MuxKey are the canonical view encodings compared.
	SimKey, MuxKey string
	// Stats aggregates the channel's per-peer protocol tallies.
	Stats protocol.Stats
	// Transport aggregates the channel's reliable-sublayer counters.
	Transport transport.Counters
	// Mesh aggregates the shared socket layer across peers.
	Mesh netmesh.Counters
	// UnknownDrops counts envelopes the shared mesh dropped for lack
	// of an open channel (must stay 0 under symmetric opens).
	UnknownDrops uint64
	// SimElapsed and MuxElapsed are the wall-clock run times; the mux
	// side timed the whole interleaved round-robin, so it is shared by
	// every row of the cell.
	SimElapsed, MuxElapsed time.Duration
}

// muxWorkload gives each channel its own seeded lockstep workload so
// concurrent channels do not mirror each other's traffic shape.
func muxWorkload(cfg NetMatrixConfig, idx int, colors []event.Color) []event.Message {
	per := cfg
	per.Seed = cfg.Seed + int64(idx)*101
	return netWorkload(per, colors)
}

// runMuxCell executes every channel's workload over one shared mesh
// under the named disturbance and returns per-channel views.
func runMuxCell(protos []NetProtocol, cfg NetMatrixConfig, cell string, workloads [][]event.Message) ([]*userview.Run, []*MuxCell, error) {
	addrs, err := meshPorts(cfg.Procs)
	if err != nil {
		return nil, nil, err
	}
	var inj *transport.Injector
	if cell == "lossy" {
		inj = transport.NewInjector(transport.FaultPlan{
			DropRate: 0.2, DupRate: 0.1, Seed: cfg.Seed*0x9e3779b9 + 101,
		})
	}
	muxes := make([]*chanmux.Mux, cfg.Procs)
	defer func() {
		for _, m := range muxes {
			if m != nil {
				m.Close()
			}
		}
	}()
	for i := range muxes {
		mcfg := chanmux.Config{
			Self:  event.ProcID(i),
			Procs: cfg.Procs,
			Mesh: netmesh.MeshConfig{
				Addrs: addrs, Seed: cfg.Seed + int64(i), Injector: inj,
			},
			Transport: transport.Config{RTO: 2 * time.Millisecond, MaxRTO: 30 * time.Millisecond},
		}
		if cell == "crash-restart" {
			mcfg.SnapshotEvery = 8
			if cfg.WALDir != "" {
				mcfg.WALDir = filepath.Join(cfg.WALDir, fmt.Sprintf("mux-p%d", i))
				if err := os.MkdirAll(mcfg.WALDir, 0o755); err != nil {
					return nil, nil, err
				}
			}
		}
		m, err := chanmux.New(mcfg)
		if err != nil {
			return nil, nil, fmt.Errorf("mux/%s: peer %d: %w", cell, i, err)
		}
		muxes[i] = m
	}
	chans := make([][]*chanmux.Channel, len(protos))
	for ci, p := range protos {
		chans[ci] = make([]*chanmux.Channel, cfg.Procs)
		for i, m := range muxes {
			ch, err := m.Open(chanmux.Spec{Name: p.Name, Proto: p.Name})
			if err != nil {
				return nil, nil, fmt.Errorf("mux/%s: peer %d open %q: %w", cell, i, p.Name, err)
			}
			chans[ci][i] = ch
		}
	}

	// Interleaved lockstep: round r sends message r on every channel,
	// so the shared connections carry genuinely mixed frames. The
	// crash cell restarts every channel's P1 instance halfway through
	// (P0 is the sync protocols' coordinator, so the crash targets P1);
	// recovery must be invisible in every final view.
	start := time.Now()
	rounds := cfg.Msgs
	want := make([][]int, len(protos))
	for ci := range protos {
		want[ci] = make([]int, cfg.Procs)
	}
	for r := 0; r < rounds; r++ {
		if cell == "crash-restart" && r == rounds/2 {
			for ci := range protos {
				if err := chans[ci][1].Crash(10 * time.Millisecond); err != nil {
					return nil, nil, err
				}
			}
		}
		for ci, p := range protos {
			m := workloads[ci][r]
			if err := chans[ci][m.From].Invoke(m); err != nil {
				return nil, nil, fmt.Errorf("mux/%s: %s invoke m%d: %w", cell, p.Name, m.ID, err)
			}
			want[ci][m.To]++
			if err := chans[ci][m.To].WaitDeliveries(want[ci][m.To], cfg.PerMsg); err != nil {
				return nil, nil, fmt.Errorf("mux/%s: %s: %w", cell, p.Name, err)
			}
		}
	}
	elapsed := time.Since(start)

	var meshAgg netmesh.Counters
	var drops uint64
	for _, m := range muxes {
		if err := m.Err(); err != nil {
			return nil, nil, fmt.Errorf("mux/%s: %w", cell, err)
		}
		mc := m.MeshCounters()
		meshAgg.Accepted += mc.Accepted
		meshAgg.Dials += mc.Dials
		meshAgg.Redials += mc.Redials
		meshAgg.Rejects += mc.Rejects
		meshAgg.FramesIn += mc.FramesIn
		meshAgg.FramesOut += mc.FramesOut
		meshAgg.BytesIn += mc.BytesIn
		meshAgg.BytesOut += mc.BytesOut
		meshAgg.FaultsInjected += mc.FaultsInjected
		drops += m.UnknownDrops()
	}

	views := make([]*userview.Run, len(protos))
	cells := make([]*MuxCell, len(protos))
	for ci, p := range protos {
		out := &MuxCell{
			Protocol: p.Name, Cell: cell, MuxElapsed: elapsed,
			Mesh: meshAgg, UnknownDrops: drops,
		}
		procEvents := make([][]event.Event, cfg.Procs)
		for i := 0; i < cfg.Procs; i++ {
			ch := chans[ci][i]
			procEvents[i] = ch.Events()
			out.Stats.Add(ch.Stats())
			tc := ch.TransportCounters()
			out.Transport.Sent += tc.Sent
			out.Transport.Retransmits += tc.Retransmits
			out.Transport.DupsDropped += tc.DupsDropped
			out.Transport.AcksReceived += tc.AcksReceived
			out.Transport.IdleSkips += tc.IdleSkips
		}
		v, err := userview.New(workloads[ci], procEvents)
		if err != nil {
			return nil, nil, fmt.Errorf("mux/%s: %s view invalid: %w", cell, p.Name, err)
		}
		views[ci] = v
		cells[ci] = out
	}
	return views, cells, nil
}

// MuxLoadRow is one channel's result in the multiplexing-overhead
// comparison: the measured protocol's per-message cost and sustained
// throughput, solo on a mux mesh vs sharing the mesh with a companion
// channel carrying the same open-loop load.
type MuxLoadRow struct {
	// Runtime is "solo" (one channel on the mux mesh) or "shared"
	// (the channel rode the mesh alongside the companion).
	Runtime string `json:"runtime"`
	// Protocol is the channel's catalog protocol.
	Protocol string `json:"protocol"`
	// Companion names the other channel of a shared run.
	Companion string `json:"companion,omitempty"`
	// Msgs is the channel's workload length.
	Msgs int `json:"msgs"`
	// ElapsedMs is first-invoke→last-delivery wall time for the whole
	// (possibly shared) run.
	ElapsedMs float64 `json:"elapsed_ms"`
	// MsgsPerSec is the channel's sustained end-to-end throughput.
	MsgsPerSec float64 `json:"msgs_per_sec"`
	// TagBytesPerMsg and CtrlPerMsg are the channel's per-user-message
	// ordering overhead — the numbers that must not change when a
	// tagged channel shares the connection.
	TagBytesPerMsg float64 `json:"tag_bytes_per_msg"`
	CtrlPerMsg     float64 `json:"ctrl_per_msg"`
	// Retransmits sums the channel's reliable-sublayer repairs.
	Retransmits int `json:"retransmits"`
}

// runMuxLoad drives every channel's open-loop workload concurrently
// over one mux mesh and returns a row per channel.
func runMuxLoad(protos []NetProtocol, cfg LoadConfig) ([]MuxLoadRow, error) {
	cfg = cfg.withDefaults()
	addrs, err := meshPorts(cfg.Procs)
	if err != nil {
		return nil, err
	}
	muxes := make([]*chanmux.Mux, cfg.Procs)
	defer func() {
		for _, m := range muxes {
			if m != nil {
				m.Close()
			}
		}
	}()
	for i := range muxes {
		m, err := chanmux.New(chanmux.Config{
			Self:  event.ProcID(i),
			Procs: cfg.Procs,
			Mesh:  netmesh.MeshConfig{Addrs: addrs, Seed: cfg.Seed + int64(i)},
		})
		if err != nil {
			return nil, fmt.Errorf("muxload: peer %d: %w", i, err)
		}
		muxes[i] = m
	}
	chans := make([][]*chanmux.Channel, len(protos))
	workloads := make([][]event.Message, len(protos))
	for ci, p := range protos {
		chans[ci] = make([]*chanmux.Channel, cfg.Procs)
		for i, m := range muxes {
			ch, err := m.Open(chanmux.Spec{Name: p.Name, Proto: p.Name})
			if err != nil {
				return nil, fmt.Errorf("muxload: peer %d open %q: %w", i, p.Name, err)
			}
			chans[ci][i] = ch
		}
		per := cfg
		per.Seed = cfg.Seed + int64(ci)*101
		workloads[ci] = LoadWorkload(per, p.Colors)
	}

	// Open loop, channels interleaved per message so the shared
	// connections coalesce mixed frames the whole run.
	start := time.Now()
	for r := 0; r < cfg.Msgs; r++ {
		for ci := range protos {
			m := workloads[ci][r]
			if err := chans[ci][m.From].Invoke(m); err != nil {
				return nil, fmt.Errorf("muxload: %s invoke m%d: %w", protos[ci].Name, m.ID, err)
			}
		}
	}
	deadline := time.Now().Add(cfg.Timeout)
	for ci := range protos {
		want := make([]int, cfg.Procs)
		for _, m := range workloads[ci] {
			want[m.To]++
		}
		for i := 0; i < cfg.Procs; i++ {
			if err := chans[ci][i].WaitDeliveries(want[i], time.Until(deadline)); err != nil {
				return nil, fmt.Errorf("muxload: %s drain on P%d: %w", protos[ci].Name, i, err)
			}
		}
	}
	elapsed := time.Since(start)

	rows := make([]MuxLoadRow, len(protos))
	for ci, p := range protos {
		procEvents := make([][]event.Event, cfg.Procs)
		var stats protocol.Stats
		retransmits := 0
		for i := 0; i < cfg.Procs; i++ {
			procEvents[i] = chans[ci][i].Events()
			stats.Add(chans[ci][i].Stats())
			retransmits += chans[ci][i].TransportCounters().Retransmits
		}
		if _, err := userview.New(workloads[ci], procEvents); err != nil {
			return nil, fmt.Errorf("muxload: %s view invalid: %w", p.Name, err)
		}
		rows[ci] = MuxLoadRow{
			Protocol:       p.Name,
			Msgs:           cfg.Msgs,
			ElapsedMs:      float64(elapsed.Microseconds()) / 1000,
			MsgsPerSec:     float64(cfg.Msgs) / elapsed.Seconds(),
			TagBytesPerMsg: stats.TagBytesPerUser(),
			CtrlPerMsg:     stats.ControlPerUser(),
			Retransmits:    retransmits,
		}
	}
	return rows, nil
}

// MuxLoad measures what multiplexing costs a channel: the measured
// protocol runs the open-loop workload once as the mux mesh's only
// channel ("solo") and once sharing the mesh with a companion channel
// carrying its own equal load ("shared"). A tagless measured channel
// must show identical per-message overhead — zero tag bytes, zero
// control messages — in both rows; that invariance is the point of
// per-channel protocol instances.
func MuxLoad(cfg LoadConfig, measured, companion NetProtocol) ([]MuxLoadRow, error) {
	solo, err := runMuxLoad([]NetProtocol{measured}, cfg)
	if err != nil {
		return nil, err
	}
	solo[0].Runtime = "solo"
	shared, err := runMuxLoad([]NetProtocol{measured, companion}, cfg)
	if err != nil {
		return nil, err
	}
	for i := range shared {
		shared[i].Runtime = "shared"
		shared[i].Companion = companion.Name
		if shared[i].Protocol == companion.Name {
			shared[i].Companion = measured.Name
		}
	}
	return append(solo, shared...), nil
}

// MuxMatrix runs the multi-tenant conformance sweep: every protocol
// becomes one channel on a shared mesh, all channels' seeded lockstep
// workloads interleave round-robin, and each channel's user view is
// diffed against a standalone in-memory sim run of the same workload.
// Callers assert Match on every cell — a false means multiplexing
// leaked between channels.
func MuxMatrix(cfg NetMatrixConfig, protos []NetProtocol) ([]MuxCell, error) {
	cfg = cfg.withDefaults()
	workloads := make([][]event.Message, len(protos))
	simKeys := make([]string, len(protos))
	simTimes := make([]time.Duration, len(protos))
	for ci, p := range protos {
		workloads[ci] = muxWorkload(cfg, ci, p.Colors)
		v, elapsed, err := runSimLockstep(p.Maker, cfg.Procs, cfg.Seed, workloads[ci])
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.Name, err)
		}
		simKeys[ci], simTimes[ci] = v.Key(), elapsed
	}
	var cells []MuxCell
	for _, cell := range NetMatrixCells() {
		views, outs, err := runMuxCell(protos, cfg, cell, workloads)
		if err != nil {
			return nil, err
		}
		for ci := range protos {
			out := outs[ci]
			out.SimKey = simKeys[ci]
			out.MuxKey = views[ci].Key()
			out.Match = out.SimKey == out.MuxKey
			out.SimElapsed = simTimes[ci]
			cells = append(cells, *out)
		}
	}
	return cells, nil
}
