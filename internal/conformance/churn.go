// Membership-churn conformance: the net matrix's cross-runtime check
// extended with dynamic membership. Each cell runs one protocol on a
// loopback TCP mesh under one topology-shaped network environment and
// performs one membership operation mid-run:
//
//   - join: the churned process departs and a successor joins at the
//     next epoch via protocol-correct state transfer — its WAL
//     checkpoint is captured (member.Capture), materialized into a
//     fresh journal, and the joiner durable-boots from it (snapshot
//     install + verified suffix replay). Traffic then continues over
//     the full group, so the transferred ordering state is exercised,
//     and the joiner's user view must splice byte-identically onto the
//     departed incarnation's.
//   - handoff: the paper's §5 mobile scenario at the runtime layer —
//     the same logical member migrates hosts through the identical
//     transfer machinery, with no epoch change.
//   - leave: a clean departure (Tracker.Leave); the survivors' views
//     of the pre-departure traffic must match the sim reference.
//   - evict: the churned process goes silent (one-way partition in the
//     asym-partition environment, process death otherwise) and the
//     heartbeat detector + member.Evictor must administratively evict
//     exactly that process — evicting a survivor fails the cell.
//
// Leave and evict cells end at the view change: the catalog protocols
// are fixed-n (sync-ra needs every member's reply to grant its send
// lock), so post-departure traffic is only meaningful for operations
// where the slot is refilled (join, handoff). Reconfiguring protocol
// instances to a shrunken group at an epoch boundary is the roadmap's
// follow-on.
package conformance

import (
	"fmt"
	"path/filepath"
	"time"

	"msgorder/internal/check"
	"msgorder/internal/crash"
	"msgorder/internal/event"
	"msgorder/internal/member"
	"msgorder/internal/netmesh"
	"msgorder/internal/predicate"
	"msgorder/internal/protocol"
	"msgorder/internal/transport"
	"msgorder/internal/userview"
)

// ChurnProtocol names one protocol for the churn matrix.
type ChurnProtocol struct {
	Name  string
	Maker protocol.Maker
	// Colors is the workload color mix (nil = colorless).
	Colors []event.Color
	// Pred, when non-nil, is the forbidden-predicate specification the
	// final mesh view is validated against.
	Pred *predicate.Predicate
}

// ChurnConfig shapes the churn sweep.
type ChurnConfig struct {
	// Procs is the mesh size (default 3). The churned process is
	// always the last slot, keeping P0 (the sync coordinator) stable.
	Procs int
	// Msgs is the lockstep workload length (default 12); the
	// membership operation fires after Msgs/2 deliveries.
	Msgs int
	// Seed drives the workload shape (default 1).
	Seed int64
	// PerMsg bounds one lockstep delivery wait (default 10s).
	PerMsg time.Duration
	// Detect bounds the evict cells' detection wait (default 10s).
	Detect time.Duration
	// Beat is the heartbeat period for evict cells (default 10ms; the
	// detector timeout and evictor grace derive from it).
	Beat time.Duration
	// WALDir hosts every node's journal and the transfer scratch
	// files. Required: churn cells are durable by construction.
	WALDir string
	// Ops and Envs, when non-empty, restrict the sweep to a sub-matrix
	// (defaults: ChurnOps() × ChurnEnvs()).
	Ops  []string
	Envs []string
}

func (c ChurnConfig) withDefaults() ChurnConfig {
	if c.Procs == 0 {
		c.Procs = 3
	}
	if c.Msgs == 0 {
		c.Msgs = 12
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.PerMsg <= 0 {
		c.PerMsg = 10 * time.Second
	}
	if c.Detect <= 0 {
		c.Detect = 10 * time.Second
	}
	if c.Beat <= 0 {
		c.Beat = 10 * time.Millisecond
	}
	return c
}

// ChurnOps lists the membership operations every protocol sweeps.
func ChurnOps() []string { return []string{"join", "leave", "evict", "handoff"} }

// ChurnEnvs lists the network environments every operation runs under.
func ChurnEnvs() []string {
	return []string{"clean", "geo-lossy", "asym-partition", "crash-restart"}
}

// ChurnCell is one (protocol, op, env) cell's outcome.
type ChurnCell struct {
	Protocol string `json:"protocol"`
	Op       string `json:"op"`
	Env      string `json:"env"`
	// Match reports the surviving members' user view equals the sim
	// reference byte for byte (the acceptance criterion).
	Match bool `json:"match"`
	// SpecViolation reports the mesh view violating the protocol's
	// specification predicate (always false on a passing cell).
	SpecViolation bool `json:"spec_violation"`
	// SimKey and MeshKey are the canonical view encodings compared.
	SimKey  string `json:"-"`
	MeshKey string `json:"-"`
	// Epoch is the final membership epoch (join 2, leave/evict 1,
	// handoff 0).
	Epoch uint64 `json:"epoch"`
	// Evicted lists administratively removed processes (evict cells).
	Evicted []int `json:"evicted,omitempty"`
	// Msgs is the number of messages the validated view covers (the
	// full workload for join/handoff, the pre-churn half otherwise).
	Msgs int `json:"msgs"`
	// Stats aggregates the mesh nodes' protocol tallies.
	Stats protocol.Stats `json:"stats"`
	// SimElapsed and MeshElapsed are the wall-clock run times.
	SimElapsed  time.Duration `json:"sim_elapsed_ns"`
	MeshElapsed time.Duration `json:"mesh_elapsed_ns"`
}

// ChurnMatrix sweeps every protocol through every (op, env) churn
// cell. A cell failing its membership bookkeeping (wrong epoch, wrong
// eviction, state transfer rejected) is an error; measured outcomes
// (view divergence, spec violations) land in the cells for callers to
// assert.
func ChurnMatrix(cfg ChurnConfig, protos []ChurnProtocol) ([]ChurnCell, error) {
	cfg = cfg.withDefaults()
	if cfg.Procs < 3 {
		return nil, fmt.Errorf("churn: need ≥ 3 processes, got %d", cfg.Procs)
	}
	if cfg.WALDir == "" {
		return nil, fmt.Errorf("churn: WALDir is required")
	}
	ops, envs := cfg.Ops, cfg.Envs
	if len(ops) == 0 {
		ops = ChurnOps()
	}
	if len(envs) == 0 {
		envs = ChurnEnvs()
	}
	for _, op := range ops {
		if !churnKnown(ChurnOps(), op) {
			return nil, fmt.Errorf("churn: unknown op %q", op)
		}
	}
	for _, env := range envs {
		if !churnKnown(ChurnEnvs(), env) {
			return nil, fmt.Errorf("churn: unknown env %q", env)
		}
	}
	var cells []ChurnCell
	for _, p := range protos {
		for _, op := range ops {
			for _, env := range envs {
				cell, err := runChurnCell(p, cfg, op, env)
				if err != nil {
					return nil, fmt.Errorf("%s/%s/%s: %w", p.Name, op, env, err)
				}
				cells = append(cells, cell)
			}
		}
	}
	return cells, nil
}

// churnInjector builds the environment's topology-shaped fault plan.
// The churned process is the last slot; P0 is the observer.
func churnInjector(env string, procs int, seed int64) *transport.Injector {
	switch env {
	case "geo-lossy":
		// Two geo zones — the observer alone vs everyone else — with
		// cross-zone delay and drop, plus one slow link to the churned
		// process: the mobile on a degraded last hop.
		far := make([]event.ProcID, 0, procs-1)
		for p := 1; p < procs; p++ {
			far = append(far, event.ProcID(p))
		}
		return transport.NewInjector(transport.FaultPlan{
			Zones:          [][]event.ProcID{{0}, far},
			CrossZoneDelay: 0.25,
			CrossZoneDrop:  0.1,
			SlowLinks:      []transport.SlowLink{{A: 0, B: event.ProcID(procs - 1), DelayProb: 0.3}},
			Seed:           seed*0x9e3779b9 + 211,
		})
	case "asym-partition":
		// Cuts are armed mid-run (CutOneWay): permanently from the
		// churned process in evict cells, transiently between two
		// survivors otherwise.
		return transport.NewInjector(transport.FaultPlan{Seed: seed*0x9e3779b9 + 223})
	default:
		return nil
	}
}

// runChurnCell executes one (protocol, op, env) cell.
func runChurnCell(p ChurnProtocol, cfg ChurnConfig, op, env string) (ChurnCell, error) {
	msgs := netWorkload(NetMatrixConfig{Procs: cfg.Procs, Msgs: cfg.Msgs, Seed: cfg.Seed}, p.Colors)
	mid := len(msgs) / 2
	churned := event.ProcID(cfg.Procs - 1)
	// Leave/evict cells end at the view change; join/handoff refill the
	// slot and run the whole workload through the transferred state.
	simMsgs := msgs
	if op == "leave" || op == "evict" {
		simMsgs = msgs[:mid]
	}
	simView, simElapsed, err := runSimLockstep(p.Maker, cfg.Procs, cfg.Seed, simMsgs)
	if err != nil {
		return ChurnCell{}, err
	}

	addrs, err := meshPorts(cfg.Procs)
	if err != nil {
		return ChurnCell{}, err
	}
	inj := churnInjector(env, cfg.Procs, cfg.Seed)
	fp := netmesh.Fingerprint(p.Name, "churn", cfg.Procs)
	walPath := func(i int, gen string) string {
		return filepath.Join(cfg.WALDir, fmt.Sprintf("churn-%s-%s-%s-p%d%s.wal", p.Name, op, env, i, gen))
	}

	var det *crash.Detector
	var evictor *member.Evictor
	tracker := member.NewTracker(cfg.Procs, allProcs(cfg.Procs))
	if op == "evict" {
		det = crash.NewDetector(cfg.Procs, crash.DetectorConfig{Interval: cfg.Beat}, nil)
		defer det.Close()
		evictor = member.NewEvictor(tracker, det, member.EvictorConfig{})
		defer evictor.Close()
	}

	nodeConfig := func(i int, gen string) netmesh.NodeConfig {
		ncfg := netmesh.NodeConfig{
			Self:  event.ProcID(i),
			Procs: cfg.Procs,
			Maker: p.Maker,
			Mesh: netmesh.MeshConfig{
				Addrs: addrs, Fingerprint: fp,
				Seed: cfg.Seed + int64(i), Injector: inj,
			},
			Transport:     transport.Config{RTO: 2 * time.Millisecond, MaxRTO: 30 * time.Millisecond},
			WALPath:       walPath(i, gen),
			SnapshotEvery: 6,
		}
		if op == "evict" {
			ncfg.Heartbeat = netmesh.HeartbeatConfig{Interval: cfg.Beat}
			if i == 0 {
				ncfg.Heartbeat.Detector = det
			}
		}
		return ncfg
	}
	nodes := make([]*netmesh.Node, cfg.Procs)
	defer func() {
		for _, n := range nodes {
			if n != nil {
				n.Close()
			}
		}
	}()
	for i := range nodes {
		n, err := netmesh.NewNode(nodeConfig(i, ""))
		if err != nil {
			return ChurnCell{}, fmt.Errorf("node %d: %w", i, err)
		}
		nodes[i] = n
	}

	start := time.Now()
	want := make([]int, cfg.Procs)
	step := func(m event.Message) error {
		if err := nodes[m.From].Invoke(m); err != nil {
			return fmt.Errorf("invoke m%d: %w", m.ID, err)
		}
		want[m.To]++
		if err := nodes[m.To].WaitDeliveries(want[m.To], cfg.PerMsg); err != nil {
			return fmt.Errorf("m%d: %w", m.ID, err)
		}
		return nil
	}
	for i := 0; i < mid; i++ {
		if i == mid/2 {
			switch {
			case env == "crash-restart":
				// A survivor crash-restarts before the churn: recovery
				// and membership transfer must compose.
				if err := nodes[1].Crash(10 * time.Millisecond); err != nil {
					return ChurnCell{}, err
				}
			case env == "asym-partition" && op != "evict":
				// Transient one-way cut between survivors; the budget
				// heals it and retransmission masks it.
				inj.CutOneWay([]event.ProcID{0}, []event.ProcID{1}, 64)
			}
		}
		if err := step(msgs[i]); err != nil {
			return ChurnCell{}, err
		}
	}

	// The churn point: every pre-churn message is delivered.
	churnedEvents := nodes[churned].Events()
	var transferred *member.Checkpoint
	switch op {
	case "leave":
		if _, err := tracker.Leave(churned); err != nil {
			return ChurnCell{}, err
		}
		nodes[churned].Close()
		nodes[churned] = nil
	case "evict":
		if env == "asym-partition" {
			// The churned process stays alive but its outbound traffic
			// — heartbeats included — is swallowed by a permanent
			// one-way cut: the silent mobile.
			inj.CutOneWay([]event.ProcID{churned}, allProcs(cfg.Procs-1), -1)
		} else {
			nodes[churned].Close()
			nodes[churned] = nil
		}
		deadline := time.Now().Add(cfg.Detect)
		for {
			ev := evictor.Evicted()
			if len(ev) > 0 {
				if len(ev) != 1 || ev[0] != churned {
					return ChurnCell{}, fmt.Errorf("evicted %v, want exactly [%d]", ev, churned)
				}
				break
			}
			if time.Now().After(deadline) {
				return ChurnCell{}, fmt.Errorf("eviction of P%d not detected within %v", churned, cfg.Detect)
			}
			time.Sleep(cfg.Beat)
		}
		if v := tracker.View(); v.Contains(churned) || v.Count() != cfg.Procs-1 {
			return ChurnCell{}, fmt.Errorf("post-evict view %v", v.Members())
		}
	case "join", "handoff":
		epochBefore := tracker.Epoch()
		if op == "join" {
			if _, err := tracker.Leave(churned); err != nil {
				return ChurnCell{}, err
			}
		}
		nodes[churned].Close()
		nodes[churned] = nil
		w, err := crash.OpenFileWAL(walPath(int(churned), ""))
		if err != nil {
			return ChurnCell{}, fmt.Errorf("reopen departed WAL: %w", err)
		}
		ck := member.Capture(tracker.Epoch(), churned, w)
		w.Close()
		transferred = &ck
		// The transferred journal suffix's user-event projection must
		// be byte-identical to the tail of the departed incarnation's
		// live view — the state transfer acceptance check.
		proj := member.UserEvents(ck.Suffix)
		if len(proj) > len(churnedEvents) {
			return ChurnCell{}, fmt.Errorf("suffix projects %d user events, live view has %d",
				len(proj), len(churnedEvents))
		}
		tail := churnedEvents[len(churnedEvents)-len(proj):]
		for i := range proj {
			if proj[i] != tail[i] {
				return ChurnCell{}, fmt.Errorf("suffix projection diverges at %d: %v != %v", i, proj[i], tail[i])
			}
		}
		if err := ck.Materialize(walPath(int(churned), "-next")); err != nil {
			return ChurnCell{}, fmt.Errorf("materialize transfer: %w", err)
		}
		n, err := netmesh.NewNode(nodeConfig(int(churned), "-next"))
		if err != nil {
			return ChurnCell{}, fmt.Errorf("joiner boot: %w", err)
		}
		nodes[churned] = n
		want[churned] = 0 // the successor's delivery count restarts
		if op == "join" {
			if _, err := tracker.Join(churned); err != nil {
				return ChurnCell{}, err
			}
			if err := tracker.CheckEpoch(epochBefore); err == nil {
				return ChurnCell{}, fmt.Errorf("pre-churn epoch still accepted after join")
			}
		}
		for i := mid; i < len(msgs); i++ {
			if err := step(msgs[i]); err != nil {
				return ChurnCell{}, err
			}
		}
	default:
		return ChurnCell{}, fmt.Errorf("unknown churn op %q", op)
	}
	elapsed := time.Since(start)

	cell := ChurnCell{
		Protocol: p.Name, Op: op, Env: env,
		Epoch: tracker.Epoch(), Msgs: len(simMsgs),
		SimElapsed: simElapsed, MeshElapsed: elapsed,
	}
	if evictor != nil {
		for _, q := range evictor.Evicted() {
			cell.Evicted = append(cell.Evicted, int(q))
		}
	}
	procEvents := make([][]event.Event, cfg.Procs)
	for i, n := range nodes {
		if n == nil {
			continue
		}
		if err := n.Err(); err != nil {
			return ChurnCell{}, fmt.Errorf("P%d: %w", i, err)
		}
		procEvents[i] = n.Events()
		cell.Stats.Add(n.Stats())
	}
	if nodes[churned] == nil || transferred != nil {
		// The departed incarnation's events, captured before its close;
		// for join/handoff the successor's events splice on after.
		pre := churnedEvents
		if nodes[churned] != nil {
			pre = append(pre[:len(pre):len(pre)], nodes[churned].Events()...)
		}
		procEvents[churned] = pre
	}
	meshView, err := userview.New(simMsgs, procEvents)
	if err != nil {
		return ChurnCell{}, fmt.Errorf("mesh run invalid: %w", err)
	}
	cell.SimKey = simView.Key()
	cell.MeshKey = meshView.Key()
	cell.Match = cell.SimKey == cell.MeshKey
	if p.Pred != nil {
		_, cell.SpecViolation = check.FindViolation(meshView, p.Pred)
	}
	return cell, nil
}

// churnKnown reports whether name is one of the canonical values.
func churnKnown(canon []string, name string) bool {
	for _, c := range canon {
		if c == name {
			return true
		}
	}
	return false
}

// allProcs returns [0, n).
func allProcs(n int) []event.ProcID {
	out := make([]event.ProcID, n)
	for i := range out {
		out[i] = event.ProcID(i)
	}
	return out
}
