package conformance

import (
	"testing"
	"time"

	"msgorder/internal/check"
	"msgorder/internal/crash"
	"msgorder/internal/event"
	"msgorder/internal/protocols/causal"
	"msgorder/internal/protocols/fifo"
)

// TestCrashRestartConformance: a crash-restart plan must not cost
// completeness or ordering — every message is delivered and the FIFO
// specification holds on every seed.
func TestCrashRestartConformance(t *testing.T) {
	cfg := Config{Maker: fifo.Maker, Procs: 3, InitialMsgs: 50}
	plan := crash.RestartStagger([]event.ProcID{1, 2}, 15, 40, 5*time.Millisecond)
	plan.SnapshotEvery = 8
	cfg.Crashes = &plan
	cfg.Seed = 4
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.View.IsComplete() {
		t.Fatal("crash-restart run incomplete")
	}
	if m, bad := check.FindViolation(res.View, pred(t, "fifo")); bad {
		t.Fatalf("FIFO violated across restarts: %s", m.String(pred(t, "fifo")))
	}
	if res.Stats.Crashes != 2 || res.Stats.Recoveries != 2 {
		t.Fatalf("crashes/recoveries = %d/%d, want 2/2", res.Stats.Crashes, res.Stats.Recoveries)
	}
}

// TestCrashMatrixSweep smoke-tests the matrix driver: a restart plan
// must leave nothing undelivered, a stop plan may lose only the dead
// process's mail, and neither may violate causal ordering on the
// delivered prefix.
func TestCrashMatrixSweep(t *testing.T) {
	cfg := Config{Maker: causal.RSTMaker, Procs: 3, InitialMsgs: 30}
	restartPlan := crash.RestartStagger([]event.ProcID{1}, 20, 0, 5*time.Millisecond)
	restartPlan.SnapshotEvery = 8
	plans := []crash.Plan{restartPlan, crash.StopOne(2, 25)}
	cells, err := CrashMatrix(cfg, plans, 2, pred(t, "causal-b2"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(cells))
	}
	for i, cell := range cells {
		if cell.Runs != 2 {
			t.Fatalf("cell %d: runs = %d, want 2", i, cell.Runs)
		}
		if cell.Violations != 0 {
			t.Fatalf("cell %d: %d violations on the delivered prefix", i, cell.Violations)
		}
	}
	restart, stop := cells[0], cells[1]
	if restart.Undelivered != 0 {
		t.Fatalf("restart cell lost %d messages", restart.Undelivered)
	}
	if restart.Stats.Recoveries != 2 {
		t.Fatalf("restart cell recoveries = %d, want 2 (one per seed)", restart.Stats.Recoveries)
	}
	if stop.Stats.Crashes != 2 || stop.Stats.Recoveries != 0 {
		t.Fatalf("stop cell crashes/recoveries = %d/%d, want 2/0", stop.Stats.Crashes, stop.Stats.Recoveries)
	}
}
