package conformance

import (
	"testing"

	"msgorder/internal/protocols/registry"
)

// TestShardMatrixAllProtocols is the sharding acceptance gate: for
// every catalog protocol, a keyed lockstep workload run on the sharded
// sim and on a sharded loopback TCP mesh must project, key by key, to
// views byte-identical to unsharded single-key runs of each domain's
// sub-workload. A divergence means sharding changed an ordering
// decision — one domain's traffic leaked into another.
func TestShardMatrixAllProtocols(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second socket matrix")
	}
	cells, err := ShardMatrix(ShardMatrixConfig{
		Procs: 3, Msgs: 24, Seed: 5, Keys: 6,
	}, catalogNetProtocols())
	if err != nil {
		t.Fatal(err)
	}
	wantCells := len(registry.Catalog()) * 2
	if len(cells) != wantCells {
		t.Fatalf("matrix has %d cells, want %d", len(cells), wantCells)
	}
	for _, c := range cells {
		if !c.Match {
			t.Errorf("%s/%s: key %#x diverged from its unsharded single-key run",
				c.Protocol, c.Runtime, uint64(c.MismatchKey))
		}
	}
}

// TestShardMatrixDefaults exercises the zero-value config path on one
// cheap protocol.
func TestShardMatrixDefaults(t *testing.T) {
	e := registry.Catalog()[0]
	cells, err := ShardMatrix(ShardMatrixConfig{Msgs: 8}, []NetProtocol{
		{Name: e.Name, Maker: e.Maker, Colors: e.Colors},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(cells))
	}
	for _, c := range cells {
		if !c.Match {
			t.Fatalf("%s/%s diverged at key %#x", c.Protocol, c.Runtime, uint64(c.MismatchKey))
		}
		if c.Keys != 8 {
			t.Fatalf("default Keys = %d, want 8", c.Keys)
		}
	}
}

// TestShardLoadSmoke drives small sharded load runs on both runtimes:
// nonzero throughput over a multi-key, multi-shard workload, with the
// row describing the partition it measured.
func TestShardLoadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second load runs")
	}
	e, ok := registry.ByName("fifo")
	if !ok {
		t.Fatal("fifo missing from registry")
	}
	p := NetProtocol{Name: e.Name, Maker: e.Maker, Colors: e.Colors}
	cfg := ShardLoadConfig{Msgs: 800, Keys: 40, Shards: 4, Seed: 3}
	for _, run := range []func(NetProtocol, ShardLoadConfig) (ShardLoadResult, error){
		RunShardLoadSim, RunShardLoadMesh,
	} {
		res, err := run(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.MsgsPerSec <= 0 {
			t.Fatalf("%s: zero throughput", res.Runtime)
		}
		if res.Msgs != 800 || res.Keys != 40 || res.Shards != 4 {
			t.Fatalf("%s: row misdescribes the run: %+v", res.Runtime, res)
		}
		if res.Class != "tagged" {
			t.Fatalf("%s: class = %q, want tagged", res.Runtime, res.Class)
		}
	}
}
