// Fleet-traced runs: the observability-plane conformance half. A
// loopback TCP mesh runs with per-node tracing on and each node's
// observability surface served over real HTTP; a fleet scraper polls
// the daemons while the workload drains, and the scraped per-node
// traces are merged into one causal fleet timeline. The gate is that
// the merged timeline is a run at all — every receive causally follows
// a send scraped from a *different* node's endpoint, with zero orphans
// — plus complete: every invoked message carries a delivery record.
// Latency attribution and hot-key skew come from the same merged
// timeline, so the numbers the tooling reports are backed by a
// validated reconstruction, not trusted counters.
package conformance

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"msgorder/internal/event"
	"msgorder/internal/fleetobs"
	"msgorder/internal/netmesh"
	"msgorder/internal/obs"
	"msgorder/internal/shard"
	"msgorder/internal/transport"
	"msgorder/internal/userview"
)

// FleetTraceConfig shapes one fleet-traced mesh run.
type FleetTraceConfig struct {
	// Procs is the mesh size (default 3).
	Procs int
	// Msgs is the workload length (default 200).
	Msgs int
	// Seed drives the workload shape (default 1).
	Seed int64
	// Timeout bounds the drain after the last invoke (default 60s).
	Timeout time.Duration
	// Keys, when nonzero, stamps the workload with that many ordering
	// domains and runs the sharded runtime — the hot-key skew input.
	Keys int
	// TopK is how many heavy-hitter domains the skew report keeps
	// (default 5).
	TopK int
}

func (c FleetTraceConfig) withDefaults() FleetTraceConfig {
	if c.Procs == 0 {
		c.Procs = 3
	}
	if c.Msgs == 0 {
		c.Msgs = 200
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Timeout <= 0 {
		c.Timeout = 60 * time.Second
	}
	if c.TopK == 0 {
		c.TopK = 5
	}
	return c
}

// FleetTraceResult is one fleet-traced run: the merged-timeline
// validation verdict plus the analyses computed from it.
type FleetTraceResult struct {
	// Protocol is the catalog protocol driven.
	Protocol string `json:"protocol"`
	// Msgs is the workload length; Procs the mesh size.
	Msgs  int `json:"msgs"`
	Procs int `json:"procs"`
	// Events is the merged fleet timeline's record count.
	Events int `json:"events"`
	// Check is the causal validation outcome (Check.Err() == nil is
	// the gate).
	Check fleetobs.Check `json:"check"`
	// Attribution decomposes end-to-end latency across the fleet.
	Attribution fleetobs.Attribution `json:"attribution"`
	// Skew reports per-domain delivery counts for keyed runs.
	Skew fleetobs.SkewReport `json:"skew"`
	// Polls is how many scrape rounds the fleet poller made.
	Polls int `json:"polls"`
	// ElapsedMs is first-invoke→last-delivery wall time.
	ElapsedMs float64 `json:"elapsed_ms"`
}

// RunFleetTraced drives a workload through an instrumented loopback
// mesh, scrapes every node's live observability endpoints (including
// incremental /trace cursors mid-run), merges the scraped traces into
// one causal fleet timeline and validates it. The returned result's
// Check.Err() is nil iff the merged timeline is causally valid with
// zero orphaned receives and every invoked message was delivered.
func RunFleetTraced(p NetProtocol, cfg FleetTraceConfig) (FleetTraceResult, error) {
	cfg = cfg.withDefaults()
	maker := p.Maker
	var msgs []event.Message
	if cfg.Keys > 0 {
		maker = shard.New(p.Maker)
		msgs = ShardWorkload(NetMatrixConfig{Procs: cfg.Procs, Msgs: cfg.Msgs, Seed: cfg.Seed}, p.Colors, cfg.Keys)
	} else {
		msgs = LoadWorkload(LoadConfig{Procs: cfg.Procs, Msgs: cfg.Msgs, Seed: cfg.Seed}, p.Colors)
	}
	addrs, err := meshPorts(cfg.Procs)
	if err != nil {
		return FleetTraceResult{}, err
	}
	fpName := p.Name
	if cfg.Keys > 0 {
		fpName = "sharded-" + p.Name
	}
	fp := netmesh.Fingerprint(fpName, "fleettrace", cfg.Procs)

	nodes := make([]*netmesh.Node, cfg.Procs)
	servers := make([]*http.Server, cfg.Procs)
	urls := make([]string, cfg.Procs)
	defer func() {
		for _, s := range servers {
			if s != nil {
				s.Close()
			}
		}
		for _, n := range nodes {
			if n != nil {
				n.Close()
			}
		}
	}()
	for i := range nodes {
		collector := obs.NewCollector()
		metrics := obs.NewRegistry()
		n, err := netmesh.NewNode(netmesh.NodeConfig{
			Self:  event.ProcID(i),
			Procs: cfg.Procs,
			Maker: maker,
			Mesh: netmesh.MeshConfig{
				Addrs: addrs, Fingerprint: fp, Seed: cfg.Seed + int64(i),
			},
			Transport: transport.Config{RTO: 250 * time.Millisecond, MaxRTO: 2 * time.Second},
			Tracer:    collector,
			Metrics:   metrics,
		})
		if err != nil {
			return FleetTraceResult{}, fmt.Errorf("fleettrace %s: node %d: %w", p.Name, i, err)
		}
		nodes[i] = n
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return FleetTraceResult{}, fmt.Errorf("fleettrace %s: obs listener: %w", p.Name, err)
		}
		srv := &http.Server{Handler: fleetobs.Mux(metrics, collector)}
		go srv.Serve(ln)
		servers[i] = srv
		urls[i] = "http://" + ln.Addr().String()
	}

	fleet := fleetobs.NewFleet(urls)
	ctx, cancel := context.WithTimeout(context.Background(), cfg.Timeout)
	defer cancel()

	start := time.Now()
	want := make([]int, cfg.Procs)
	polls := 0
	for i, m := range msgs {
		if err := nodes[m.From].Invoke(m); err != nil {
			return FleetTraceResult{}, fmt.Errorf("fleettrace %s: invoke m%d: %w", p.Name, m.ID, err)
		}
		want[m.To]++
		// Scrape mid-run a few times so the incremental cursors are
		// exercised against live daemons, not just the quiesced state.
		if i%(len(msgs)/3+1) == len(msgs)/3 {
			if _, _, err := fleet.Poll(ctx); err != nil {
				return FleetTraceResult{}, fmt.Errorf("fleettrace %s: live scrape: %w", p.Name, err)
			}
			polls++
		}
	}
	for i, n := range nodes {
		if err := n.WaitDeliveries(want[i], cfg.Timeout); err != nil {
			return FleetTraceResult{}, fmt.Errorf("fleettrace %s: %w", p.Name, err)
		}
	}
	elapsed := time.Since(start)

	procEvents := make([][]event.Event, cfg.Procs)
	for i, n := range nodes {
		if err := n.Err(); err != nil {
			return FleetTraceResult{}, fmt.Errorf("fleettrace %s: P%d: %w", p.Name, i, err)
		}
		procEvents[i] = n.Events()
	}
	if _, err := userview.New(msgs, procEvents); err != nil {
		return FleetTraceResult{}, fmt.Errorf("fleettrace %s: run invalid: %w", p.Name, err)
	}

	// Final scrape picks up everything after the last mid-run cursor.
	if _, _, err := fleet.Poll(ctx); err != nil {
		return FleetTraceResult{}, fmt.Errorf("fleettrace %s: final scrape: %w", p.Name, err)
	}
	polls++

	tl := fleet.Timeline()
	out := FleetTraceResult{
		Protocol: p.Name, Msgs: len(msgs), Procs: cfg.Procs,
		Events:    len(tl.Events),
		Check:     tl.Validate(true),
		Polls:     polls,
		ElapsedMs: float64(elapsed.Microseconds()) / 1000,
	}
	out.Attribution = fleetobs.Summarize(fleetobs.Attribute(tl))
	out.Skew = fleetobs.Skew(tl, cfg.TopK)
	return out, nil
}
