package conformance

import (
	"testing"
	"time"

	"msgorder/internal/protocols/registry"
)

// loadProto resolves the protocol the smoke tests drive.
func loadProto(t *testing.T, name string) NetProtocol {
	t.Helper()
	e, ok := registry.ByName(name)
	if !ok {
		t.Fatalf("protocol %q missing from the registry", name)
	}
	return NetProtocol{Name: e.Name, Maker: e.Maker, Colors: e.Colors}
}

func TestRunLoadSimSmoke(t *testing.T) {
	res, err := RunLoadSim(loadProto(t, "tagless"), LoadConfig{Msgs: 300, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runtime != "sim" || res.Protocol != "tagless" || res.Msgs != 300 {
		t.Fatalf("row identity = %+v", res)
	}
	if res.MsgsPerSec <= 0 || res.ElapsedMs <= 0 {
		t.Fatalf("no throughput measured: %+v", res)
	}
	if res.P50us > res.P99us || res.P99us > res.MaxUs {
		t.Fatalf("latency quantiles out of order: p50=%d p99=%d max=%d", res.P50us, res.P99us, res.MaxUs)
	}
}

func TestRunLoadMeshSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket load run")
	}
	res, err := RunLoadMesh(loadProto(t, "tagless"), LoadConfig{Msgs: 300, Seed: 3, Timeout: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runtime != "mesh" || res.Msgs != 300 || res.MsgsPerSec <= 0 {
		t.Fatalf("row = %+v", res)
	}
	if res.FramesOut == 0 || res.EnvelopesOut < res.Msgs {
		t.Fatalf("mesh counters empty: %+v", res)
	}
	if res.BatchFactor < 1 {
		t.Fatalf("batch factor %v < 1 — batching path not engaged", res.BatchFactor)
	}
	if res.PoolGets == 0 {
		t.Fatalf("codec pool never used: %+v", res)
	}
	if res.P50us > res.P99us || res.P99us > res.MaxUs {
		t.Fatalf("latency quantiles out of order: %+v", res)
	}
}

// TestRunLoadMeshGroupCommitWAL: the -wal variant must journal through
// file-backed WALs with group commit amortizing the writes.
func TestRunLoadMeshGroupCommitWAL(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket load run with file WALs")
	}
	res, err := RunLoadMesh(loadProto(t, "fifo"), LoadConfig{
		Msgs: 300, Seed: 3, WALDir: t.TempDir(), GroupCommit: true, Timeout: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.WALAppends == 0 {
		t.Fatalf("file WALs journaled nothing: %+v", res)
	}
	if res.WALFlushes == 0 || res.WALFlushes >= res.WALAppends {
		t.Fatalf("group commit not amortizing: %d appends in %d flushes", res.WALAppends, res.WALFlushes)
	}
}
