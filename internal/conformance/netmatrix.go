// Cross-runtime conformance: the same seeded workload executed on the
// in-memory live harness and on a real multi-process loopback TCP mesh
// must produce identical user views. Delivery order is only comparable
// across runtimes if it is invocation-determined, so NetMatrix drives
// a lockstep (linearized) workload — invoke one message, wait for its
// delivery, invoke the next — on both sides; under lockstep every
// catalog protocol's view is a pure function of the message list, and
// a divergence means the socket runtime changed a protocol decision.
// The lossy and crash-restart cells then assert something stronger:
// retransmission and WAL recovery are *transparent* — the disturbed
// mesh still reproduces the clean sim view byte for byte. (Concurrency
// stress, where views legitimately diverge, lives in the netmesh soak
// test instead.)
package conformance

import (
	"fmt"
	"net"
	"path/filepath"
	"time"

	"msgorder/internal/event"
	"msgorder/internal/netmesh"
	"msgorder/internal/protocol"
	"msgorder/internal/sim"
	"msgorder/internal/transport"
	"msgorder/internal/userview"
)

// NetProtocol names one protocol for the net matrix (the caller
// supplies makers so this package stays protocol-agnostic).
type NetProtocol struct {
	Name  string
	Maker protocol.Maker
	// Colors is the workload color mix (nil = colorless).
	Colors []event.Color
}

// NetMatrixConfig shapes the cross-runtime sweep.
type NetMatrixConfig struct {
	// Procs is the mesh size (default 3).
	Procs int
	// Msgs is the lockstep workload length (default 16).
	Msgs int
	// Seed drives the workload shape (default 1).
	Seed int64
	// PerMsg bounds one lockstep delivery wait on the mesh
	// (default 10s).
	PerMsg time.Duration
	// WALDir, when non-empty, makes crash-restart cells file-backed.
	WALDir string
}

func (c NetMatrixConfig) withDefaults() NetMatrixConfig {
	if c.Procs == 0 {
		c.Procs = 3
	}
	if c.Msgs == 0 {
		c.Msgs = 16
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.PerMsg <= 0 {
		c.PerMsg = 10 * time.Second
	}
	return c
}

// NetCell is one (protocol, disturbance) cell of the cross-runtime
// matrix.
type NetCell struct {
	Protocol string
	// Cell names the mesh-side disturbance: clean, lossy, or
	// crash-restart. The sim reference is always the clean run.
	Cell string
	// Match reports view equality (the acceptance criterion).
	Match bool
	// SimKey and MeshKey are the canonical view encodings compared.
	SimKey, MeshKey string
	// Stats aggregates the mesh nodes' protocol tallies.
	Stats protocol.Stats
	// Transport aggregates the mesh nodes' reliable-sublayer counters.
	Transport transport.Counters
	// Mesh aggregates the socket-layer counters.
	Mesh netmesh.Counters
	// SimElapsed and MeshElapsed are the wall-clock run times.
	SimElapsed, MeshElapsed time.Duration
}

// NetWorkload derives the lockstep message list from the same seeded
// stream the other conformance matrices use. Exported so external
// drivers (mobench's net smoke over real OS processes) run the
// identical workload the in-process matrix runs.
func NetWorkload(cfg NetMatrixConfig, colors []event.Color) []event.Message {
	return netWorkload(cfg.withDefaults(), colors)
}

// SimLockstep runs the message list on the in-memory sim in lockstep
// and returns the reference user view external drivers diff against.
func SimLockstep(maker protocol.Maker, procs int, seed int64, msgs []event.Message) (*userview.Run, error) {
	v, _, err := runSimLockstep(maker, procs, seed, msgs)
	return v, err
}

// netWorkload derives the lockstep message list from the same seeded
// stream the other conformance matrices use.
func netWorkload(cfg NetMatrixConfig, colors []event.Color) []event.Message {
	w := newWorkload(Config{Procs: cfg.Procs, InitialMsgs: cfg.Msgs, Seed: cfg.Seed, Colors: colors}.withDefaults())
	msgs := make([]event.Message, cfg.Msgs)
	for i := range msgs {
		from, to, color := w.initial()
		msgs[i] = event.Message{ID: event.MsgID(i), From: from, To: to, Color: color}
	}
	return msgs
}

// runSimLockstep executes the message list on the in-memory live
// harness, one quiescent step per message, and returns the user view.
func runSimLockstep(maker protocol.Maker, procs int, seed int64, msgs []event.Message) (*userview.Run, time.Duration, error) {
	nw := sim.New(procs, maker, sim.WithSeed(seed))
	start := time.Now()
	for _, m := range msgs {
		if err := nw.Invoke(sim.Request{From: m.From, To: m.To, Color: m.Color, Key: m.Key}); err != nil {
			return nil, 0, fmt.Errorf("sim invoke m%d: %w", m.ID, err)
		}
		if err := nw.Quiesce(); err != nil {
			return nil, 0, fmt.Errorf("sim quiesce after m%d: %w", m.ID, err)
		}
	}
	elapsed := time.Since(start)
	res, err := nw.Stop()
	if err != nil {
		return nil, 0, err
	}
	if len(res.Undelivered) > 0 {
		return nil, 0, fmt.Errorf("sim lockstep left %d undelivered", len(res.Undelivered))
	}
	return res.View, elapsed, nil
}

// meshPorts reserves n loopback addresses.
func meshPorts(n int) ([]string, error) {
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs, nil
}

// runMeshLockstep executes the message list on an in-process loopback
// TCP mesh — real sockets, real frames — under the named disturbance.
func runMeshLockstep(p NetProtocol, cfg NetMatrixConfig, cell string, msgs []event.Message) (*userview.Run, *NetCell, error) {
	addrs, err := meshPorts(cfg.Procs)
	if err != nil {
		return nil, nil, err
	}
	var inj *transport.Injector
	if cell == "lossy" {
		inj = transport.NewInjector(transport.FaultPlan{
			DropRate: 0.2, DupRate: 0.1, Seed: cfg.Seed*0x9e3779b9 + 101,
		})
	}
	fp := netmesh.Fingerprint(p.Name, "netmatrix", cfg.Procs)
	nodes := make([]*netmesh.Node, cfg.Procs)
	defer func() {
		for _, n := range nodes {
			if n != nil {
				n.Close()
			}
		}
	}()
	for i := range nodes {
		ncfg := netmesh.NodeConfig{
			Self:  event.ProcID(i),
			Procs: cfg.Procs,
			Maker: p.Maker,
			Mesh: netmesh.MeshConfig{
				Addrs: addrs, Fingerprint: fp,
				Seed: cfg.Seed + int64(i), Injector: inj,
			},
			Transport: transport.Config{RTO: 2 * time.Millisecond, MaxRTO: 30 * time.Millisecond},
		}
		if cell == "crash-restart" {
			ncfg.SnapshotEvery = 8
			if cfg.WALDir != "" {
				ncfg.WALPath = filepath.Join(cfg.WALDir, fmt.Sprintf("%s-p%d.wal", p.Name, i))
			}
		}
		n, err := netmesh.NewNode(ncfg)
		if err != nil {
			return nil, nil, fmt.Errorf("%s/%s: node %d: %w", p.Name, cell, i, err)
		}
		nodes[i] = n
	}

	start := time.Now()
	want := make([]int, cfg.Procs)
	for i, m := range msgs {
		// The crash cell restarts a worker halfway through: recovery
		// must be invisible in the final view. P0 is the sync
		// protocols' coordinator, so the crash targets P1.
		if cell == "crash-restart" && i == len(msgs)/2 {
			if err := nodes[1].Crash(10 * time.Millisecond); err != nil {
				return nil, nil, err
			}
		}
		if err := nodes[m.From].Invoke(m); err != nil {
			return nil, nil, fmt.Errorf("%s/%s: invoke m%d: %w", p.Name, cell, m.ID, err)
		}
		want[m.To]++
		if err := nodes[m.To].WaitDeliveries(want[m.To], cfg.PerMsg); err != nil {
			return nil, nil, fmt.Errorf("%s/%s: %w", p.Name, cell, err)
		}
	}
	elapsed := time.Since(start)

	out := &NetCell{Protocol: p.Name, Cell: cell, MeshElapsed: elapsed}
	procEvents := make([][]event.Event, cfg.Procs)
	for i, n := range nodes {
		if err := n.Err(); err != nil {
			return nil, nil, fmt.Errorf("%s/%s: P%d: %w", p.Name, cell, i, err)
		}
		procEvents[i] = n.Events()
		out.Stats.Add(n.Stats())
		tc := n.TransportCounters()
		out.Transport.Sent += tc.Sent
		out.Transport.Retransmits += tc.Retransmits
		out.Transport.DupsDropped += tc.DupsDropped
		out.Transport.AcksReceived += tc.AcksReceived
		out.Transport.IdleSkips += tc.IdleSkips
		mc := n.MeshCounters()
		out.Mesh.Accepted += mc.Accepted
		out.Mesh.Dials += mc.Dials
		out.Mesh.Redials += mc.Redials
		out.Mesh.Rejects += mc.Rejects
		out.Mesh.FramesIn += mc.FramesIn
		out.Mesh.FramesOut += mc.FramesOut
		out.Mesh.BytesIn += mc.BytesIn
		out.Mesh.BytesOut += mc.BytesOut
		out.Mesh.FaultsInjected += mc.FaultsInjected
	}
	v, err := userview.New(msgs, procEvents)
	if err != nil {
		return nil, nil, fmt.Errorf("%s/%s: mesh run invalid: %w", p.Name, cell, err)
	}
	return v, out, nil
}

// NetMatrixCells lists the mesh-side disturbances every protocol is
// swept across.
func NetMatrixCells() []string { return []string{"clean", "lossy", "crash-restart"} }

// NetMatrix runs the cross-runtime conformance sweep: for every
// protocol, the seeded lockstep workload executes once on the
// in-memory sim (the reference view) and once per cell on a loopback
// TCP mesh; each cell reports whether the views matched. Callers
// assert Match — a false is a real cross-runtime divergence.
func NetMatrix(cfg NetMatrixConfig, protos []NetProtocol) ([]NetCell, error) {
	cfg = cfg.withDefaults()
	var cells []NetCell
	for _, p := range protos {
		msgs := netWorkload(cfg, p.Colors)
		simView, simElapsed, err := runSimLockstep(p.Maker, cfg.Procs, cfg.Seed, msgs)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.Name, err)
		}
		simKey := simView.Key()
		for _, cell := range NetMatrixCells() {
			meshView, out, err := runMeshLockstep(p, cfg, cell, msgs)
			if err != nil {
				return nil, err
			}
			out.SimKey = simKey
			out.MeshKey = meshView.Key()
			out.Match = out.SimKey == out.MeshKey
			out.SimElapsed = simElapsed
			cells = append(cells, *out)
		}
	}
	return cells, nil
}
