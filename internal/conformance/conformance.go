// Package conformance drives message-ordering protocols through the
// deterministic simulator under randomized workloads and checks the
// resulting user views against forbidden-predicate specifications.
//
// It is the engine behind the Theorem 1 reproduction (cmd/mobench
// protocols): each protocol class's witness must always satisfy its own
// specification, and for every strictly stronger specification some seed
// must exhibit a violation.
package conformance

import (
	"errors"
	"fmt"
	"math/rand"

	"msgorder/internal/check"
	"msgorder/internal/crash"
	"msgorder/internal/dsim"
	"msgorder/internal/event"
	"msgorder/internal/obs"
	"msgorder/internal/predicate"
	"msgorder/internal/protocol"
	"msgorder/internal/sim"
	"msgorder/internal/transport"
	"msgorder/internal/userview"
)

// Config describes one workload run.
type Config struct {
	// Maker builds the protocol under test.
	Maker protocol.Maker
	// Procs is the number of processes (≥ 2).
	Procs int
	// InitialMsgs is the number of spontaneously invoked messages.
	InitialMsgs int
	// ChainBudget bounds follow-up messages triggered by deliveries
	// (causal chains). Zero disables chaining.
	ChainBudget int
	// ChainProb is the per-delivery probability of a follow-up.
	ChainProb float64
	// Colors, when non-empty, are assigned to messages at random
	// (uncolored otherwise).
	Colors []event.Color
	// Seed drives both the workload and the network adversary.
	Seed int64
	// DelayMin/DelayMax bound network delays (defaults 1/16).
	DelayMin, DelayMax int64
	// FIFONet makes the network order-preserving per channel.
	FIFONet bool
	// AllowSelf permits self-addressed messages (off by default; the
	// paper's model sends between distinct processes).
	AllowSelf bool
	// Broadcast makes every invocation a broadcast to all other
	// processes (the multicast extension); chained follow-ups broadcast
	// too.
	Broadcast bool
	// Faults, when non-nil, runs the workload on the live harness
	// (internal/sim) over a lossy network with the reliable transport
	// sublayer, instead of the deterministic simulator. The protocols
	// still see reliable channels; Stats additionally reports
	// retransmits, dups dropped and faults injected. Live runs are
	// seeded but not bit-reproducible (goroutine interleaving); leave
	// Faults nil for byte-identical deterministic runs.
	Faults *transport.FaultPlan
	// Crashes, when non-nil and non-empty, schedules process crashes on
	// the live harness (composable with Faults). Crash-restart plans
	// still require liveness — every message delivered; plans with a
	// crash-stop tolerate undelivered messages, since mail to (or
	// invocations queued on) a dead process is lost by design and the
	// recorded run is a valid prefix.
	Crashes *crash.Plan
	// Tracer, when non-nil, receives the run's causally stamped trace
	// records (both harness backends honor it).
	Tracer obs.Tracer
	// Metrics, when non-nil, receives the run's inhibition/latency
	// distributions (and transport/stall metrics on live runs).
	Metrics *obs.Registry
}

// WithTracer returns a copy of the config with the tracer attached.
func (c Config) WithTracer(t obs.Tracer) Config {
	c.Tracer = t
	return c
}

// WithMetrics returns a copy of the config with the registry attached.
func (c Config) WithMetrics(m *obs.Registry) Config {
	c.Metrics = m
	return c
}

func (c Config) withDefaults() Config {
	if c.Procs == 0 {
		c.Procs = 3
	}
	if c.InitialMsgs == 0 {
		c.InitialMsgs = 12
	}
	if c.DelayMax == 0 {
		c.DelayMin, c.DelayMax = 1, 16
	}
	if c.ChainBudget > 0 && c.ChainProb == 0 {
		c.ChainProb = 0.5
	}
	return c
}

// workload derives the randomized request stream for one config. Both
// harness backends (deterministic dsim and live sim) draw from the same
// seeded stream, so the workload shape is identical across them.
type workload struct {
	cfg    Config
	wrng   *rand.Rand
	budget int
}

func newWorkload(cfg Config) *workload {
	return &workload{
		cfg:    cfg,
		wrng:   rand.New(rand.NewSource(cfg.Seed*0x9e3779b9 + 17)),
		budget: cfg.ChainBudget,
	}
}

func (w *workload) color() event.Color {
	if len(w.cfg.Colors) == 0 {
		return event.ColorNone
	}
	return w.cfg.Colors[w.wrng.Intn(len(w.cfg.Colors))]
}

func (w *workload) pick(not event.ProcID) event.ProcID {
	for {
		p := event.ProcID(w.wrng.Intn(w.cfg.Procs))
		if w.cfg.AllowSelf || p != not {
			return p
		}
	}
}

// initial returns the i-th spontaneous request.
func (w *workload) initial() (from, to event.ProcID, color event.Color) {
	from = event.ProcID(w.wrng.Intn(w.cfg.Procs))
	color = w.color()
	if !w.cfg.Broadcast {
		to = w.pick(from)
	}
	return from, to, color
}

// chain rolls for a delivery-triggered follow-up from p. The RNG draw
// order (pick before color on unicasts) is load-bearing: it keeps
// seeded workloads byte-identical to the pre-refactor harness.
func (w *workload) chain(p event.ProcID) (to event.ProcID, color event.Color, ok bool) {
	if w.budget <= 0 || w.wrng.Float64() >= w.cfg.ChainProb {
		return 0, 0, false
	}
	w.budget--
	if !w.cfg.Broadcast {
		to = w.pick(p)
	}
	color = w.color()
	return to, color, true
}

// Run executes one simulation and requires quiescence (liveness). With
// cfg.Faults set it runs on the live lossy-network harness; otherwise
// on the deterministic simulator.
func Run(cfg Config) (*dsim.Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Faults != nil || (cfg.Crashes != nil && cfg.Crashes.Enabled()) {
		return runLive(cfg)
	}
	opts := []dsim.Option{
		dsim.WithSeed(cfg.Seed),
		dsim.WithDelay(cfg.DelayMin, cfg.DelayMax),
	}
	if cfg.FIFONet {
		opts = append(opts, dsim.WithFIFONetwork())
	}
	if cfg.Tracer != nil {
		opts = append(opts, dsim.WithTracer(cfg.Tracer))
	}
	if cfg.Metrics != nil {
		opts = append(opts, dsim.WithMetrics(cfg.Metrics))
	}
	s := dsim.New(cfg.Procs, cfg.Maker, opts...)
	w := newWorkload(cfg)
	s.OnDeliver(func(p event.ProcID, _ event.MsgID) []dsim.Request {
		to, color, ok := w.chain(p)
		if !ok {
			return nil
		}
		return []dsim.Request{{From: p, To: to, Color: color, Broadcast: cfg.Broadcast}}
	})
	for i := 0; i < cfg.InitialMsgs; i++ {
		from, to, color := w.initial()
		s.Invoke(int64(i)*2, dsim.Request{From: from, To: to, Color: color, Broadcast: cfg.Broadcast})
	}
	return s.MustQuiesce()
}

// runLive drives the same workload through the live harness with fault
// and/or crash injection and the reliable transport sublayer.
func runLive(cfg Config) (*dsim.Result, error) {
	sopts := []sim.Option{
		sim.WithSeed(cfg.Seed),
	}
	if cfg.Faults != nil {
		plan := *cfg.Faults
		if plan.Seed == 0 {
			plan.Seed = cfg.Seed*0x9e3779b9 + 101
		}
		sopts = append(sopts, sim.WithFaults(plan))
	}
	tolerateLoss := false
	if cfg.Crashes != nil {
		sopts = append(sopts, sim.WithCrashes(*cfg.Crashes))
		tolerateLoss = cfg.Crashes.HasStop()
	}
	if cfg.Tracer != nil {
		sopts = append(sopts, sim.WithTracer(cfg.Tracer))
	}
	if cfg.Metrics != nil {
		sopts = append(sopts, sim.WithMetrics(cfg.Metrics))
	}
	nw := sim.New(cfg.Procs, cfg.Maker, sopts...)
	w := newWorkload(cfg)
	nw.OnDeliver(func(p event.ProcID, _ event.MsgID) []sim.Request {
		to, color, ok := w.chain(p)
		if !ok {
			return nil
		}
		return []sim.Request{{From: p, To: to, Color: color, Broadcast: cfg.Broadcast}}
	})
	for i := 0; i < cfg.InitialMsgs; i++ {
		from, to, color := w.initial()
		err := nw.Invoke(sim.Request{From: from, To: to, Color: color, Broadcast: cfg.Broadcast})
		if err != nil && !(tolerateLoss && errors.Is(err, sim.ErrCrashed)) {
			return nil, err
		}
	}
	res, err := nw.Stop()
	if err != nil {
		return nil, err
	}
	if len(res.Undelivered) > 0 && !tolerateLoss {
		return nil, fmt.Errorf("lossy run not live: %d undelivered messages: %v",
			len(res.Undelivered), res.Undelivered)
	}
	return &dsim.Result{
		System:      res.System,
		View:        res.View,
		Stats:       res.Stats,
		Undelivered: res.Undelivered,
	}, nil
}

// Violation describes a specification violation found during a sweep.
type Violation struct {
	Seed  int64
	Match check.Match
	View  *userview.Run
}

// Sweep runs seeds 1..n and returns the views plus any violations of the
// predicate.
func Sweep(cfg Config, n int, pred *predicate.Predicate) ([]*dsim.Result, []Violation, error) {
	var results []*dsim.Result
	var violations []Violation
	for seed := int64(1); seed <= int64(n); seed++ {
		cfg.Seed = seed
		res, err := Run(cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("seed %d: %w", seed, err)
		}
		results = append(results, res)
		if m, found := check.FindViolation(res.View, pred); found {
			violations = append(violations, Violation{Seed: seed, Match: m, View: res.View})
		}
	}
	return results, violations, nil
}

// AlwaysSatisfies sweeps n seeds and returns an error naming the first
// violating seed, if any. Use it to assert protocol safety.
func AlwaysSatisfies(cfg Config, n int, pred *predicate.Predicate) error {
	_, violations, err := Sweep(cfg, n, pred)
	if err != nil {
		return err
	}
	if len(violations) > 0 {
		v := violations[0]
		return fmt.Errorf("seed %d violates the specification with %s",
			v.Seed, v.Match.String(pred))
	}
	return nil
}

// FindsViolation sweeps up to n seeds and returns the first violation.
// Use it to show a protocol class is too weak for a specification.
func FindsViolation(cfg Config, n int, pred *predicate.Predicate) (Violation, bool, error) {
	for seed := int64(1); seed <= int64(n); seed++ {
		cfg.Seed = seed
		res, err := Run(cfg)
		if err != nil {
			return Violation{}, false, fmt.Errorf("seed %d: %w", seed, err)
		}
		if m, found := check.FindViolation(res.View, pred); found {
			return Violation{Seed: seed, Match: m, View: res.View}, true, nil
		}
	}
	return Violation{}, false, nil
}

// FaultCell is one cell of a fault-matrix sweep: a fault plan, the
// number of runs executed under it, how many violated the
// specification, and the summed run statistics (including transport
// counters).
type FaultCell struct {
	Plan       transport.FaultPlan
	Runs       int
	Violations int
	Stats      protocol.Stats
}

// FaultMatrix sweeps the workload across fault plans on the live
// harness, checking every run's user view against pred. Each plan runs
// `seeds` seeds (1..seeds). A protocol satisfies its specification
// under loss iff every cell reports zero violations.
func FaultMatrix(cfg Config, plans []transport.FaultPlan, seeds int, pred *predicate.Predicate) ([]FaultCell, error) {
	cells := make([]FaultCell, 0, len(plans))
	for _, plan := range plans {
		cell := FaultCell{Plan: plan}
		for seed := int64(1); seed <= int64(seeds); seed++ {
			cfg.Seed = seed
			p := plan
			cfg.Faults = &p
			res, err := Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("plan %+v seed %d: %w", plan, seed, err)
			}
			cell.Runs++
			cell.Stats.Add(res.Stats)
			if pred != nil {
				if _, bad := check.FindViolation(res.View, pred); bad {
					cell.Violations++
				}
			}
		}
		cells = append(cells, cell)
	}
	return cells, nil
}

// CrashCell is one cell of a crash-matrix sweep: a crash plan, the
// number of runs executed under it, how many violated the
// specification, how many left messages undelivered (only legal for
// plans with a crash-stop), and the summed run statistics (including
// crash/recovery counters).
type CrashCell struct {
	Plan        crash.Plan
	Runs        int
	Violations  int
	Undelivered int
	Stats       protocol.Stats
}

// CrashMatrix sweeps the workload across crash plans on the live
// harness, checking every run's user view against pred. Each plan runs
// `seeds` seeds (1..seeds). A protocol survives crashes iff every cell
// reports zero violations — the delivered prefix must still satisfy the
// specification even when a crash-stop makes the run incomplete.
func CrashMatrix(cfg Config, plans []crash.Plan, seeds int, pred *predicate.Predicate) ([]CrashCell, error) {
	cells := make([]CrashCell, 0, len(plans))
	for _, plan := range plans {
		cell := CrashCell{Plan: plan}
		for seed := int64(1); seed <= int64(seeds); seed++ {
			cfg.Seed = seed
			p := plan
			cfg.Crashes = &p
			res, err := Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("plan %+v seed %d: %w", plan, seed, err)
			}
			cell.Runs++
			cell.Stats.Add(res.Stats)
			cell.Undelivered += len(res.Undelivered)
			if pred != nil {
				if _, bad := check.FindViolation(res.View, pred); bad {
					cell.Violations++
				}
			}
		}
		cells = append(cells, cell)
	}
	return cells, nil
}

// ExhaustiveConfig describes one exhaustive-exploration check: a fixed
// workload replayed under every network arrival order (see dsim.Explore).
// Unlike the seed sweeps above, a pass is a proof for the workload, not a
// sample of it.
type ExhaustiveConfig struct {
	// Maker builds the protocol under test.
	Maker protocol.Maker
	// Procs is the number of processes (≥ 2).
	Procs int
	// Requests is the fixed workload, invoked eagerly in order.
	Requests []dsim.Request
	// MakeHook, when set, builds a fresh delivery hook per replay
	// (deterministic chained workloads).
	MakeHook func() func(event.ProcID, event.MsgID) []dsim.Request
	// MaxRuns bounds the number of complete schedules visited (dsim's
	// default when zero). Hitting the bound is reported as an error:
	// the check was a sample, not a proof.
	MaxRuns int
	// Workers selects the search mode: 0 = parallel deduplicating
	// search, 1 = legacy sequential enumeration (see dsim package docs).
	Workers int
	// Tracer and Metrics, when non-nil, receive the search's expansion
	// records and depth/fanout distributions (see dsim.ExploreConfig).
	Tracer  obs.Tracer
	Metrics *obs.Registry
}

func (c ExhaustiveConfig) explore() dsim.ExploreConfig {
	return dsim.ExploreConfig{
		Procs:    c.Procs,
		Maker:    c.Maker,
		Requests: c.Requests,
		MakeHook: c.MakeHook,
		MaxRuns:  c.MaxRuns,
		Workers:  c.Workers,
		Tracer:   c.Tracer,
		Metrics:  c.Metrics,
	}
}

// AlwaysSatisfiesAllSchedules explores every arrival order of the
// workload and returns an error describing the first violating schedule,
// if any. A nil error with the returned stats is a proof that no schedule
// of this workload violates the predicate.
func AlwaysSatisfiesAllSchedules(cfg ExhaustiveConfig, pred *predicate.Predicate) (dsim.ExploreStats, error) {
	var bad *Violation
	st, err := dsim.ExploreWithStats(cfg.explore(), func(res *dsim.Result) bool {
		if m, found := check.FindViolation(res.View, pred); found {
			bad = &Violation{Match: m, View: res.View}
			return false
		}
		return true
	})
	if err != nil {
		return st, err
	}
	if bad != nil {
		return st, fmt.Errorf("a schedule violates the specification with %s",
			bad.Match.String(pred))
	}
	return st, nil
}

// FindsViolationInSomeSchedule explores arrival orders until one violates
// the predicate. The Violation's Seed is meaningless here (exploration is
// schedule-driven, not seed-driven) and is left zero.
func FindsViolationInSomeSchedule(cfg ExhaustiveConfig, pred *predicate.Predicate) (Violation, bool, error) {
	var bad *Violation
	_, err := dsim.ExploreWithStats(cfg.explore(), func(res *dsim.Result) bool {
		if m, found := check.FindViolation(res.View, pred); found {
			bad = &Violation{Match: m, View: res.View}
			return false
		}
		return true
	})
	if err != nil {
		return Violation{}, false, err
	}
	if bad == nil {
		return Violation{}, false, nil
	}
	return *bad, true, nil
}
