package conformance

import (
	"testing"

	"msgorder/internal/protocols/registry"
)

// TestFleetTraceSmoke is the observability-plane acceptance gate: a
// 3-process instrumented loopback mesh is scraped live over HTTP, and
// the per-node traces merged into one fleet timeline must be causally
// valid (zero orphaned receives, every receive dominating a scraped
// send stamp) and complete (every invoked message delivered). The
// latency attribution computed from the same timeline must cover every
// message.
func TestFleetTraceSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a socket mesh with HTTP scraping")
	}
	e, ok := registry.ByName("causal-rst")
	if !ok {
		t.Fatal("causal-rst missing from catalog")
	}
	p := NetProtocol{Name: e.Name, Maker: e.Maker, Colors: e.Colors}
	res, err := RunFleetTraced(p, FleetTraceConfig{Procs: 3, Msgs: 120, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check.Err(); err != nil {
		t.Fatalf("merged fleet timeline invalid: %v", err)
	}
	if res.Check.Receives == 0 || res.Check.Delivers == 0 {
		t.Fatalf("timeline saw no cross-process traffic: %+v", res.Check)
	}
	if res.Attribution.Msgs != res.Msgs {
		t.Fatalf("attributed %d of %d messages", res.Attribution.Msgs, res.Msgs)
	}
	if res.Attribution.Total.P50 <= 0 {
		t.Fatalf("end-to-end p50 = %d, want > 0", res.Attribution.Total.P50)
	}
	if res.Polls < 2 {
		t.Fatalf("fleet poller made %d scrapes, want live + final", res.Polls)
	}
	if res.Skew.Deliveries != 0 {
		t.Fatalf("unkeyed run produced a skew report: %+v", res.Skew)
	}
}

// TestFleetTraceKeyedSkew runs the sharded runtime under the fleet
// tracer: the merged timeline must stay causally valid, and the skew
// report must see every ordering domain the workload stamped.
func TestFleetTraceKeyedSkew(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a socket mesh with HTTP scraping")
	}
	e, ok := registry.ByName("fifo")
	if !ok {
		t.Fatal("fifo missing from catalog")
	}
	p := NetProtocol{Name: e.Name, Maker: e.Maker, Colors: e.Colors}
	res, err := RunFleetTraced(p, FleetTraceConfig{Procs: 3, Msgs: 90, Seed: 3, Keys: 6, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check.Err(); err != nil {
		t.Fatalf("keyed fleet timeline invalid: %v", err)
	}
	if res.Skew.Keys != 6 {
		t.Fatalf("skew saw %d ordering domains, want 6", res.Skew.Keys)
	}
	if res.Skew.Deliveries != res.Msgs {
		t.Fatalf("skew counted %d keyed deliveries, want %d", res.Skew.Deliveries, res.Msgs)
	}
	if len(res.Skew.Top) != 3 {
		t.Fatalf("top-K = %d entries, want 3", len(res.Skew.Top))
	}
	// Round-robin stamping spreads load evenly: the heaviest domain
	// cannot dominate.
	if res.Skew.MaxShare > 0.5 {
		t.Fatalf("uniform workload reported max share %v", res.Skew.MaxShare)
	}
}
