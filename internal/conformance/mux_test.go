package conformance

import (
	"testing"

	"msgorder/internal/protocols/registry"
)

// TestMuxMatrixAllProtocolsAllCells is the multi-tenant acceptance
// gate: all 8 catalog protocols become channels on ONE shared mesh,
// their workloads interleave, and every channel's user view must be
// byte-identical to its standalone sim run — clean, lossy, and
// crash-restart alike. The tagless channel must additionally stay
// overhead-free even though tagged and general channels ride the same
// connections.
func TestMuxMatrixAllProtocolsAllCells(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second socket matrix")
	}
	protos := catalogNetProtocols()
	cells, err := MuxMatrix(NetMatrixConfig{
		Procs: 3, Msgs: 16, Seed: 5, WALDir: t.TempDir(),
	}, protos)
	if err != nil {
		t.Fatal(err)
	}
	wantCells := len(protos) * len(NetMatrixCells())
	if len(cells) != wantCells {
		t.Fatalf("matrix has %d cells, want %d", len(cells), wantCells)
	}
	for _, c := range cells {
		if !c.Match {
			t.Errorf("%s/%s: multiplexed view diverges from standalone\n sim: %s\n mux: %s",
				c.Protocol, c.Cell, c.SimKey, c.MuxKey)
			continue
		}
		if c.UnknownDrops != 0 {
			t.Errorf("%s/%s: %d envelopes dropped as unknown under symmetric opens",
				c.Protocol, c.Cell, c.UnknownDrops)
		}
		if c.Mesh.FramesIn == 0 || c.Mesh.FramesOut == 0 {
			t.Errorf("%s/%s: no frames crossed the shared sockets", c.Protocol, c.Cell)
		}
		// One mesh carried all channels: at most one accepted
		// connection per peer pair across the whole 3-peer cell.
		if c.Mesh.Accepted > 6 {
			t.Errorf("%s/%s: %d accepted connections — channels are not sharing the mesh",
				c.Protocol, c.Cell, c.Mesh.Accepted)
		}
		if c.Protocol == "tagless" && (c.Stats.UserTagBytes != 0 || c.Stats.ControlMessages != 0) {
			t.Errorf("tagless/%s: channel paid overhead while multiplexed: tags=%d ctrl=%d",
				c.Cell, c.Stats.UserTagBytes, c.Stats.ControlMessages)
		}
		switch c.Cell {
		case "lossy":
			if c.Mesh.FaultsInjected == 0 {
				t.Errorf("%s/lossy: no faults injected — cell degenerated to clean", c.Protocol)
			}
		case "crash-restart":
			if c.Stats.Crashes != 1 || c.Stats.Recoveries != 1 {
				t.Errorf("%s/crash-restart: crashes/recoveries = %d/%d, want 1/1",
					c.Protocol, c.Stats.Crashes, c.Stats.Recoveries)
			}
		}
	}
}

// TestMuxLoadTaglessOverheadInvariant is the multiplexing-overhead
// acceptance check: a tagless channel's per-message cost must be
// identical — zero tag bytes, zero control messages — whether it is
// the mux mesh's only channel or shares the connections with a tagged
// causal channel under equal load.
func TestMuxLoadTaglessOverheadInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("open-loop socket load")
	}
	tl, _ := registry.ByName("tagless")
	cr, _ := registry.ByName("causal-rst")
	rows, err := MuxLoad(LoadConfig{Msgs: 400, Seed: 7},
		NetProtocol{Name: tl.Name, Maker: tl.Maker, Colors: tl.Colors},
		NetProtocol{Name: cr.Name, Maker: cr.Maker, Colors: cr.Colors})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3 (solo + 2 shared)", len(rows))
	}
	for _, r := range rows {
		if r.MsgsPerSec <= 0 {
			t.Fatalf("%s/%s: zero throughput", r.Runtime, r.Protocol)
		}
		if r.Protocol == "tagless" && (r.TagBytesPerMsg != 0 || r.CtrlPerMsg != 0) {
			t.Fatalf("%s tagless overhead changed: tags=%.1f ctrl=%.2f",
				r.Runtime, r.TagBytesPerMsg, r.CtrlPerMsg)
		}
		if r.Protocol == "causal-rst" && r.TagBytesPerMsg == 0 {
			t.Fatalf("shared causal channel reports no tags — stats misattributed")
		}
	}
}

// TestMuxMatrixDefaults exercises the zero-value config path on a
// two-channel pairing (one tagless, one tagged).
func TestMuxMatrixDefaults(t *testing.T) {
	var protos []NetProtocol
	for _, name := range []string{"tagless", "causal-rst"} {
		e, ok := registry.ByName(name)
		if !ok {
			t.Fatalf("catalog protocol %q missing", name)
		}
		protos = append(protos, NetProtocol{Name: e.Name, Maker: e.Maker, Colors: e.Colors})
	}
	cells, err := MuxMatrix(NetMatrixConfig{Msgs: 4}, protos)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 6 {
		t.Fatalf("got %d cells, want 6", len(cells))
	}
	for _, c := range cells {
		if !c.Match {
			t.Fatalf("%s/%s diverged:\n sim: %s\n mux: %s", c.Protocol, c.Cell, c.SimKey, c.MuxKey)
		}
		if c.SimKey == "" || c.MuxKey == "" {
			t.Fatalf("%s/%s: empty view keys", c.Protocol, c.Cell)
		}
	}
}
