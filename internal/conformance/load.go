// Sustained open-loop load: unlike the lockstep conformance matrices,
// the load runner invokes the whole seeded workload up front and lets
// the stack drain it at full speed — the regime where the batched
// framing, pooled buffers, pipelined acks and group-commit WAL of the
// high-throughput path actually engage. Every run still validates the
// user view (exactly-once, per-process event sanity) via userview, so
// a throughput number from a broken run cannot exist.
package conformance

import (
	"fmt"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"time"

	"msgorder/internal/crash"
	"msgorder/internal/event"
	"msgorder/internal/netmesh"
	"msgorder/internal/obs"
	"msgorder/internal/sim"
	"msgorder/internal/transport"
	"msgorder/internal/userview"
)

// latencyMetric is the obs histogram name load runs record
// invoke→deliver latency under.
const latencyMetric = "load.latency.us"

// LoadConfig shapes one sustained open-loop load run.
type LoadConfig struct {
	// Procs is the mesh size (default 3).
	Procs int
	// Msgs is the workload length (default 4000).
	Msgs int
	// Seed drives the workload shape (default 1).
	Seed int64
	// Timeout bounds the whole drain after the last invoke
	// (default 60s).
	Timeout time.Duration
	// WALDir, when non-empty, makes the mesh nodes' journals
	// file-backed (the sim runtime ignores it).
	WALDir string
	// GroupCommit enables group-commit batching on file-backed
	// journals (no effect without WALDir).
	GroupCommit bool
	// Traced gives every mesh node its own obs collector and metrics
	// registry — the full tracing pipeline the fleet observability
	// plane scrapes — so traced and untraced runs of the same workload
	// measure the instrumentation overhead (sim runtime ignores it).
	Traced bool
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Procs == 0 {
		c.Procs = 3
	}
	if c.Msgs == 0 {
		c.Msgs = 4000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Timeout <= 0 {
		c.Timeout = 60 * time.Second
	}
	return c
}

// LoadResult is one (runtime, protocol) row of a load run: sustained
// throughput plus the invoke→deliver latency distribution, with the
// batching-efficiency counters that explain the number.
type LoadResult struct {
	// Runtime is "sim" or "mesh".
	Runtime string `json:"runtime"`
	// Traced records whether the run carried per-node obs tracing.
	Traced bool `json:"traced,omitempty"`
	// Protocol is the catalog protocol driven.
	Protocol string `json:"protocol"`
	// Msgs is the workload length.
	Msgs int `json:"msgs"`
	// ElapsedMs is first-invoke→last-delivery wall time.
	ElapsedMs float64 `json:"elapsed_ms"`
	// MsgsPerSec is the sustained end-to-end throughput.
	MsgsPerSec float64 `json:"msgs_per_sec"`
	// P50us / P99us / MaxUs summarize invoke→deliver latency in
	// microseconds (power-of-two histogram quantiles, so estimates are
	// bucket-granular).
	P50us int64 `json:"p50_us"`
	P99us int64 `json:"p99_us"`
	MaxUs int64 `json:"max_us"`
	// FramesOut and EnvelopesOut are summed mesh socket counters
	// (mesh runtime only); EnvelopesOut/FramesOut is BatchFactor, the
	// achieved coalescing.
	FramesOut    int     `json:"frames_out,omitempty"`
	EnvelopesOut int     `json:"envelopes_out,omitempty"`
	BatchFactor  float64 `json:"batch_factor,omitempty"`
	// Retransmits and CumAcked are summed reliable-sublayer counters:
	// CumAcked is how many retransmissions pipelined acks prevented.
	Retransmits int `json:"retransmits,omitempty"`
	CumAcked    int `json:"cum_acked,omitempty"`
	// WALAppends and WALFlushes are summed journal counters (mesh
	// runtime with WALDir); Appends ≫ Flushes is group commit working.
	WALAppends int `json:"wal_appends,omitempty"`
	WALFlushes int `json:"wal_flushes,omitempty"`
	// PoolGets / PoolMisses snapshot the codec buffer pool across the
	// run (process-wide deltas).
	PoolGets   uint64 `json:"pool_gets,omitempty"`
	PoolMisses uint64 `json:"pool_misses,omitempty"`
}

// LoadWorkload derives the open-loop message list — the same seeded
// stream the net matrix uses, just longer.
func LoadWorkload(cfg LoadConfig, colors []event.Color) []event.Message {
	cfg = cfg.withDefaults()
	return netWorkload(NetMatrixConfig{Procs: cfg.Procs, Msgs: cfg.Msgs, Seed: cfg.Seed}.withDefaults(), colors)
}

// latencyProbe times invoke→deliver per message id and folds the
// samples into a power-of-two histogram.
type latencyProbe struct {
	start []int64 // UnixNano at invoke, indexed by MsgID
	reg   *obs.Registry
}

func newLatencyProbe(n int) *latencyProbe {
	return &latencyProbe{start: make([]int64, n), reg: obs.NewRegistry()}
}

func (p *latencyProbe) invoked(id event.MsgID) {
	atomic.StoreInt64(&p.start[id], time.Now().UnixNano())
}

func (p *latencyProbe) delivered(id event.MsgID) {
	if int(id) >= len(p.start) {
		return
	}
	t := atomic.LoadInt64(&p.start[int(id)])
	if t == 0 {
		return
	}
	p.reg.Observe(latencyMetric, (time.Now().UnixNano()-t)/1000)
}

func (p *latencyProbe) fill(r *LoadResult) {
	h := p.reg.Snapshot().Histograms[latencyMetric]
	r.P50us = h.Quantile(0.50)
	r.P99us = h.Quantile(0.99)
	r.MaxUs = h.Max
	if h.Count == 0 {
		r.MaxUs = 0
	}
}

// RunLoadSim drives the open-loop workload through the in-memory live
// harness and reports sustained throughput and latency quantiles.
func RunLoadSim(p NetProtocol, cfg LoadConfig) (LoadResult, error) {
	cfg = cfg.withDefaults()
	msgs := LoadWorkload(cfg, p.Colors)
	probe := newLatencyProbe(len(msgs))
	nw := sim.New(cfg.Procs, p.Maker, sim.WithSeed(cfg.Seed), sim.WithTimeout(cfg.Timeout))
	nw.OnDeliver(func(_ event.ProcID, id event.MsgID) []sim.Request {
		probe.delivered(id)
		return nil
	})
	start := time.Now()
	for _, m := range msgs {
		probe.invoked(m.ID)
		if err := nw.Invoke(sim.Request{From: m.From, To: m.To, Color: m.Color}); err != nil {
			return LoadResult{}, fmt.Errorf("sim load invoke m%d: %w", m.ID, err)
		}
	}
	if err := nw.Quiesce(); err != nil {
		return LoadResult{}, fmt.Errorf("sim load quiesce: %w", err)
	}
	elapsed := time.Since(start)
	res, err := nw.Stop()
	if err != nil {
		return LoadResult{}, err
	}
	if len(res.Undelivered) > 0 {
		return LoadResult{}, fmt.Errorf("sim load left %d undelivered", len(res.Undelivered))
	}
	out := LoadResult{Runtime: "sim", Protocol: p.Name, Msgs: len(msgs)}
	out.ElapsedMs = float64(elapsed.Microseconds()) / 1000
	out.MsgsPerSec = float64(len(msgs)) / elapsed.Seconds()
	probe.fill(&out)
	return out, nil
}

// RunLoadMesh drives the open-loop workload through a loopback TCP
// mesh — the batched, pooled, pipelined-ack hot path — and reports
// sustained throughput, latency quantiles and the batching counters.
// The final user view is validated (exactly-once per message) before
// any number is returned.
func RunLoadMesh(p NetProtocol, cfg LoadConfig) (LoadResult, error) {
	cfg = cfg.withDefaults()
	msgs := LoadWorkload(cfg, p.Colors)
	probe := newLatencyProbe(len(msgs))
	pool0 := netmesh.CodecPoolStats()
	addrs, err := meshPorts(cfg.Procs)
	if err != nil {
		return LoadResult{}, err
	}
	fp := netmesh.Fingerprint(p.Name, "load", cfg.Procs)
	nodes := make([]*netmesh.Node, cfg.Procs)
	defer func() {
		for _, n := range nodes {
			if n != nil {
				n.Close()
			}
		}
	}()
	for i := range nodes {
		ncfg := netmesh.NodeConfig{
			Self:  event.ProcID(i),
			Procs: cfg.Procs,
			Maker: p.Maker,
			Mesh: netmesh.MeshConfig{
				Addrs: addrs, Fingerprint: fp, Seed: cfg.Seed + int64(i),
			},
			// The load cell is a clean loopback network: a generous RTO keeps
			// the retransmit loop from misreading open-loop queueing delay as
			// loss and re-sending the whole burst (delivery still dedups, but
			// spurious retransmits would pollute the throughput numbers).
			Transport: transport.Config{RTO: 250 * time.Millisecond, MaxRTO: 2 * time.Second},
			OnDeliver: probe.delivered,
		}
		if cfg.WALDir != "" {
			ncfg.WALPath = filepath.Join(cfg.WALDir, fmt.Sprintf("load-%s-p%d.wal", p.Name, i))
			if cfg.GroupCommit {
				ncfg.WALGroupCommit = &crash.GroupCommit{}
			}
		}
		if cfg.Traced {
			// Capped like a long-running daemon's collector: tracing cost
			// is the steady-state ring write, not unbounded buffering.
			ncfg.Tracer = obs.NewCollectorCap(1 << 10)
			ncfg.Metrics = obs.NewRegistry()
		}
		n, err := netmesh.NewNode(ncfg)
		if err != nil {
			return LoadResult{}, fmt.Errorf("load %s: node %d: %w", p.Name, i, err)
		}
		nodes[i] = n
	}

	// Quiesce the heap before timing: the previous run's validation
	// garbage (userview builds a full reachability matrix) otherwise
	// leaks GC assist debt into this run's timed region, and the noise
	// lands on whichever arm of an overhead comparison runs second.
	runtime.GC()

	start := time.Now()
	want := make([]int, cfg.Procs)
	for _, m := range msgs {
		probe.invoked(m.ID)
		if err := nodes[m.From].Invoke(m); err != nil {
			return LoadResult{}, fmt.Errorf("load %s: invoke m%d: %w", p.Name, m.ID, err)
		}
		want[m.To]++
	}
	for i, n := range nodes {
		if err := n.WaitDeliveries(want[i], cfg.Timeout); err != nil {
			return LoadResult{}, fmt.Errorf("load %s: %w", p.Name, err)
		}
	}
	elapsed := time.Since(start)

	out := LoadResult{Runtime: "mesh", Protocol: p.Name, Msgs: len(msgs), Traced: cfg.Traced}
	procEvents := make([][]event.Event, cfg.Procs)
	for i, n := range nodes {
		if err := n.Err(); err != nil {
			return LoadResult{}, fmt.Errorf("load %s: P%d: %w", p.Name, i, err)
		}
		procEvents[i] = n.Events()
		mc := n.MeshCounters()
		out.FramesOut += mc.FramesOut
		out.EnvelopesOut += mc.EnvelopesOut
		tc := n.TransportCounters()
		out.Retransmits += tc.Retransmits
		out.CumAcked += tc.CumAcked
		if cfg.WALDir != "" {
			ws := n.WALStats()
			out.WALAppends += ws.Appends
			out.WALFlushes += ws.Flushes
		}
	}
	if _, err := userview.New(msgs, procEvents); err != nil {
		return LoadResult{}, fmt.Errorf("load %s: run invalid: %w", p.Name, err)
	}
	out.ElapsedMs = float64(elapsed.Microseconds()) / 1000
	out.MsgsPerSec = float64(len(msgs)) / elapsed.Seconds()
	if out.FramesOut > 0 {
		out.BatchFactor = float64(out.EnvelopesOut) / float64(out.FramesOut)
	}
	pool1 := netmesh.CodecPoolStats()
	out.PoolGets = pool1.Gets - pool0.Gets
	out.PoolMisses = pool1.Misses - pool0.Misses
	probe.fill(&out)
	return out, nil
}
