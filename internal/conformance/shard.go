// Ordering-key sharding conformance and load: a sharded runtime must be
// observationally equivalent, per key, to running each ordering domain
// alone on the unsharded protocol — the key partitions the message pairs
// the forbidden predicate ranges over, so the per-key projection of a
// sharded run and an unsharded single-key run of the same sub-workload
// must produce byte-identical canonical views. The load half then
// measures what the partition buys: with keys spread across independent
// goroutine shards there is no cross-key blocking, so aggregate
// throughput over thousands of domains is bounded by the machine, not by
// one protocol instance's serialization.
package conformance

import (
	"fmt"
	"sync"
	"time"

	"msgorder/internal/event"
	"msgorder/internal/netmesh"
	"msgorder/internal/protocol"
	"msgorder/internal/shard"
	"msgorder/internal/sim"
	"msgorder/internal/transport"
	"msgorder/internal/userview"
)

// ShardKeys returns k distinct ordering keys derived from stable
// application names ("domain-0".."domain-<k-1>"), the key set every
// sharding harness in this package stamps workloads with.
func ShardKeys(k int) []event.Key {
	keys := make([]event.Key, k)
	for i := range keys {
		keys[i] = event.KeyOf(fmt.Sprintf("domain-%d", i))
	}
	return keys
}

// ShardWorkload derives the seeded lockstep message list and stamps it
// with keys ordering domains round-robin, so every domain sees an
// interleaved slice of the stream rather than a contiguous block.
func ShardWorkload(cfg NetMatrixConfig, colors []event.Color, keys int) []event.Message {
	cfg = cfg.withDefaults()
	if keys < 1 {
		keys = 1
	}
	msgs := netWorkload(cfg, colors)
	ks := ShardKeys(keys)
	for i := range msgs {
		msgs[i].Key = ks[i%len(ks)]
	}
	return msgs
}

// subWorkload extracts one ordering domain's messages, renumbered to
// contiguous IDs in their original order — exactly the renumbering
// userview's ProjectKey applies, so the two canonical views are
// directly comparable.
func subWorkload(msgs []event.Message, k event.Key) []event.Message {
	var sub []event.Message
	for _, m := range msgs {
		if m.Key == k {
			m.ID = event.MsgID(len(sub))
			sub = append(sub, m)
		}
	}
	return sub
}

// ShardMatrixConfig shapes the per-key equivalence sweep.
type ShardMatrixConfig struct {
	// Procs, Msgs, Seed, PerMsg shape the lockstep workload exactly as
	// in NetMatrixConfig.
	Procs  int
	Msgs   int
	Seed   int64
	PerMsg time.Duration
	// Keys is the number of ordering domains stamped onto the workload
	// (default 8).
	Keys int
}

func (c ShardMatrixConfig) withDefaults() ShardMatrixConfig {
	if c.Keys == 0 {
		c.Keys = 8
	}
	return c
}

func (c ShardMatrixConfig) net() NetMatrixConfig {
	return NetMatrixConfig{Procs: c.Procs, Msgs: c.Msgs, Seed: c.Seed, PerMsg: c.PerMsg}.withDefaults()
}

// ShardCell is one (protocol, runtime) row of the per-key equivalence
// matrix: the sharded run's per-key projections diffed against
// unsharded single-key reference runs.
type ShardCell struct {
	Protocol string
	// Runtime is "sim" or "mesh" (the sharded side; the reference is
	// always the unsharded single-key sim run).
	Runtime string
	// Keys is the number of ordering domains in the workload.
	Keys int
	// Match reports that every domain's projection was byte-identical
	// to its reference view (the acceptance criterion).
	Match bool
	// MismatchKey identifies the first diverging domain when !Match.
	MismatchKey event.Key
	// Elapsed is the sharded run's wall time.
	Elapsed time.Duration
}

// shardRefs runs each ordering domain's sub-workload alone on the
// unsharded protocol and returns the canonical reference view per key.
func shardRefs(p NetProtocol, cfg NetMatrixConfig, msgs []event.Message, keys []event.Key) (map[event.Key]string, error) {
	refs := make(map[event.Key]string, len(keys))
	for _, k := range keys {
		sub := subWorkload(msgs, k)
		if len(sub) == 0 {
			continue
		}
		v, _, err := runSimLockstep(p.Maker, cfg.Procs, cfg.Seed, sub)
		if err != nil {
			return nil, fmt.Errorf("%s: unsharded reference for key %#x: %w", p.Name, uint64(k), err)
		}
		refs[k] = v.Key()
	}
	return refs, nil
}

// diffPerKey projects the sharded view per key and diffs each
// projection against its reference.
func diffPerKey(v *userview.Run, refs map[event.Key]string, cell *ShardCell) error {
	cell.Match = true
	for _, k := range v.Keys() {
		ref, ok := refs[k]
		if !ok {
			cell.Match = false
			cell.MismatchKey = k
			return fmt.Errorf("sharded run contains unexpected key %#x", uint64(k))
		}
		proj, err := v.ProjectKey(k)
		if err != nil {
			return fmt.Errorf("projecting key %#x: %w", uint64(k), err)
		}
		if proj.Key() != ref {
			cell.Match = false
			cell.MismatchKey = k
			return nil
		}
	}
	return nil
}

// ShardMatrix runs the per-key user-view equivalence sweep: for every
// protocol, a keyed lockstep workload executes once on the sharded sim
// and once on a sharded loopback TCP mesh, and every key's projection
// is diffed against an unsharded single-key reference run. A false
// Match is a real isolation failure — one domain's traffic changed
// another domain's ordering decisions.
func ShardMatrix(cfg ShardMatrixConfig, protos []NetProtocol) ([]ShardCell, error) {
	cfg = cfg.withDefaults()
	ncfg := cfg.net()
	var cells []ShardCell
	for _, p := range protos {
		msgs := ShardWorkload(ncfg, p.Colors, cfg.Keys)
		refs, err := shardRefs(p, ncfg, msgs, ShardKeys(cfg.Keys))
		if err != nil {
			return nil, err
		}
		sharded := NetProtocol{Name: p.Name, Maker: shard.New(p.Maker), Colors: p.Colors}

		simCell := ShardCell{Protocol: p.Name, Runtime: "sim", Keys: cfg.Keys}
		simView, simElapsed, err := runSimLockstep(sharded.Maker, ncfg.Procs, ncfg.Seed, msgs)
		if err != nil {
			return nil, fmt.Errorf("%s: sharded sim: %w", p.Name, err)
		}
		simCell.Elapsed = simElapsed
		if err := diffPerKey(simView, refs, &simCell); err != nil {
			return nil, fmt.Errorf("%s/sim: %w", p.Name, err)
		}
		cells = append(cells, simCell)

		meshCell := ShardCell{Protocol: p.Name, Runtime: "mesh", Keys: cfg.Keys}
		meshView, out, err := runMeshLockstep(sharded, ncfg, "sharded", msgs)
		if err != nil {
			return nil, fmt.Errorf("%s: sharded mesh: %w", p.Name, err)
		}
		meshCell.Elapsed = out.MeshElapsed
		if err := diffPerKey(meshView, refs, &meshCell); err != nil {
			return nil, fmt.Errorf("%s/mesh: %w", p.Name, err)
		}
		cells = append(cells, meshCell)
	}
	return cells, nil
}

// ShardLoadConfig shapes one sharded open-loop load run.
type ShardLoadConfig struct {
	// Procs is the per-shard mesh size (default 3).
	Procs int
	// Msgs is the total workload length across all shards
	// (default 4000).
	Msgs int
	// Keys is the number of ordering domains (default 1000).
	Keys int
	// Shards is the number of independent shard runtimes keys are
	// hash-partitioned across (default 4).
	Shards int
	// Seed drives the workload shape (default 1).
	Seed int64
	// Timeout bounds one shard's drain after its last invoke
	// (default 60s).
	Timeout time.Duration
}

func (c ShardLoadConfig) withDefaults() ShardLoadConfig {
	if c.Procs == 0 {
		c.Procs = 3
	}
	if c.Msgs == 0 {
		c.Msgs = 4000
	}
	if c.Keys == 0 {
		c.Keys = 1000
	}
	if c.Shards == 0 {
		c.Shards = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Timeout <= 0 {
		c.Timeout = 60 * time.Second
	}
	return c
}

// ShardLoadResult is one (runtime, protocol) row of a sharded load run.
type ShardLoadResult struct {
	// Runtime is "sim" or "mesh".
	Runtime string `json:"runtime"`
	// Protocol is the inner catalog protocol (each key runs one
	// lazily created instance of it).
	Protocol string `json:"protocol"`
	// Class is the inner protocol's capability class.
	Class string `json:"class"`
	// Msgs is the total workload length across all shards.
	Msgs int `json:"msgs"`
	// Keys is the number of ordering domains stamped on the workload.
	Keys int `json:"keys"`
	// Shards is the number of independent shard runtimes.
	Shards int `json:"shards"`
	// ElapsedMs is wall time from the first invoke anywhere to the
	// last shard draining.
	ElapsedMs float64 `json:"elapsed_ms"`
	// MsgsPerSec is the aggregate end-to-end throughput.
	MsgsPerSec float64 `json:"msgs_per_sec"`
	// P50us / P99us / MaxUs summarize invoke→deliver latency across
	// all shards, in microseconds.
	P50us int64 `json:"p50_us"`
	P99us int64 `json:"p99_us"`
	MaxUs int64 `json:"max_us"`
	// BaselineMsgsPerSec is the single-domain unsharded throughput of
	// the same (runtime, protocol) from BENCH_load.json, when the
	// caller supplies it; Speedup is MsgsPerSec over it.
	BaselineMsgsPerSec float64 `json:"baseline_msgs_per_sec,omitempty"`
	Speedup            float64 `json:"speedup,omitempty"`
}

// shardBuckets hash-partitions the keyed workload across shards and
// renumbers each bucket to contiguous local IDs, returning the buckets
// and the local→global ID map the shared latency probe needs.
func shardBuckets(msgs []event.Message, shards int) (buckets [][]event.Message, orig [][]event.MsgID) {
	buckets = make([][]event.Message, shards)
	orig = make([][]event.MsgID, shards)
	for _, m := range msgs {
		s := shard.Of(m.Key, shards)
		global := m.ID
		m.ID = event.MsgID(len(buckets[s]))
		buckets[s] = append(buckets[s], m)
		orig[s] = append(orig[s], global)
	}
	return buckets, orig
}

// protoClass names the inner protocol's capability class for the row.
func protoClass(maker protocol.Maker) string {
	if d, ok := maker().(protocol.Describer); ok {
		return d.Describe().Class.String()
	}
	return "unknown"
}

// RunShardLoadSim drives the keyed open-loop workload through Shards
// independent in-memory harnesses — keys hash-partitioned by shard.Of,
// every shard running the sharded protocol over its share of the
// ordering domains — and reports aggregate throughput and latency.
func RunShardLoadSim(p NetProtocol, cfg ShardLoadConfig) (ShardLoadResult, error) {
	cfg = cfg.withDefaults()
	msgs := ShardWorkload(NetMatrixConfig{Procs: cfg.Procs, Msgs: cfg.Msgs, Seed: cfg.Seed}, p.Colors, cfg.Keys)
	buckets, orig := shardBuckets(msgs, cfg.Shards)
	probe := newLatencyProbe(len(msgs))

	nets := make([]*sim.Network, cfg.Shards)
	for s := range nets {
		ids := orig[s]
		nw := sim.New(cfg.Procs, shard.New(p.Maker), sim.WithSeed(cfg.Seed+int64(s)), sim.WithTimeout(cfg.Timeout))
		nw.OnDeliver(func(_ event.ProcID, id event.MsgID) []sim.Request {
			probe.delivered(ids[id])
			return nil
		})
		nets[s] = nw
	}

	// The timed region covers invoking and draining every shard; the
	// per-shard Stop (which builds and validates the recorded run — an
	// O(events²) poset construction) runs after the clock stops, exactly
	// as in the unsharded load runner.
	start := time.Now()
	errs := make([]error, cfg.Shards)
	var wg sync.WaitGroup
	for s := range nets {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			nw, bucket, ids := nets[s], buckets[s], orig[s]
			for _, m := range bucket {
				probe.invoked(ids[m.ID])
				if err := nw.Invoke(sim.Request{From: m.From, To: m.To, Color: m.Color, Key: m.Key}); err != nil {
					errs[s] = fmt.Errorf("shard %d invoke m%d: %w", s, m.ID, err)
					return
				}
			}
			if err := nw.Quiesce(); err != nil {
				errs[s] = fmt.Errorf("shard %d quiesce: %w", s, err)
			}
		}(s)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for s, nw := range nets {
		if errs[s] != nil {
			continue
		}
		res, err := nw.Stop()
		if err != nil {
			errs[s] = fmt.Errorf("shard %d: %w", s, err)
			continue
		}
		if len(res.Undelivered) > 0 {
			errs[s] = fmt.Errorf("shard %d left %d undelivered", s, len(res.Undelivered))
		}
	}
	for _, err := range errs {
		if err != nil {
			return ShardLoadResult{}, fmt.Errorf("shard load sim %s: %w", p.Name, err)
		}
	}
	out := ShardLoadResult{
		Runtime: "sim", Protocol: p.Name, Class: protoClass(p.Maker),
		Msgs: len(msgs), Keys: cfg.Keys, Shards: cfg.Shards,
	}
	out.ElapsedMs = float64(elapsed.Microseconds()) / 1000
	out.MsgsPerSec = float64(len(msgs)) / elapsed.Seconds()
	fillShardLatency(probe, &out)
	return out, nil
}

// fillShardLatency copies the probe's quantiles into a shard row.
func fillShardLatency(p *latencyProbe, r *ShardLoadResult) {
	var lr LoadResult
	p.fill(&lr)
	r.P50us, r.P99us, r.MaxUs = lr.P50us, lr.P99us, lr.MaxUs
}

// RunShardLoadMesh drives the keyed open-loop workload through Shards
// independent loopback TCP meshes (cfg.Procs nodes each, real sockets),
// keys hash-partitioned across the meshes, and reports aggregate
// throughput and latency. Every shard's user view is validated before
// any number is returned.
func RunShardLoadMesh(p NetProtocol, cfg ShardLoadConfig) (ShardLoadResult, error) {
	cfg = cfg.withDefaults()
	msgs := ShardWorkload(NetMatrixConfig{Procs: cfg.Procs, Msgs: cfg.Msgs, Seed: cfg.Seed}, p.Colors, cfg.Keys)
	buckets, orig := shardBuckets(msgs, cfg.Shards)
	probe := newLatencyProbe(len(msgs))
	maker := shard.New(p.Maker)

	meshes := make([][]*netmesh.Node, cfg.Shards)
	defer func() {
		for _, nodes := range meshes {
			for _, n := range nodes {
				if n != nil {
					n.Close()
				}
			}
		}
	}()
	for s := range meshes {
		addrs, err := meshPorts(cfg.Procs)
		if err != nil {
			return ShardLoadResult{}, err
		}
		fp := netmesh.Fingerprint("sharded-"+p.Name, fmt.Sprintf("shardload-%d", s), cfg.Procs)
		nodes := make([]*netmesh.Node, cfg.Procs)
		ids := orig[s]
		for i := range nodes {
			n, err := netmesh.NewNode(netmesh.NodeConfig{
				Self:  event.ProcID(i),
				Procs: cfg.Procs,
				Maker: maker,
				Mesh: netmesh.MeshConfig{
					Addrs: addrs, Fingerprint: fp, Seed: cfg.Seed + int64(s*cfg.Procs+i),
				},
				// Same reasoning as the unsharded load cell: a clean loopback
				// network under open-loop queueing needs a generous RTO.
				Transport: transport.Config{RTO: 250 * time.Millisecond, MaxRTO: 2 * time.Second},
				OnDeliver: func(id event.MsgID) { probe.delivered(ids[id]) },
			})
			if err != nil {
				return ShardLoadResult{}, fmt.Errorf("shard load %s: shard %d node %d: %w", p.Name, s, i, err)
			}
			nodes[i] = n
		}
		meshes[s] = nodes
	}

	// As in the sim runner, the timed region is invoke→drain only; the
	// per-shard user-view validation (an O(events²) construction) runs
	// after the clock stops.
	start := time.Now()
	errs := make([]error, cfg.Shards)
	var wg sync.WaitGroup
	for s := range meshes {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			nodes, bucket, ids := meshes[s], buckets[s], orig[s]
			want := make([]int, cfg.Procs)
			for _, m := range bucket {
				probe.invoked(ids[m.ID])
				if err := nodes[m.From].Invoke(m); err != nil {
					errs[s] = fmt.Errorf("shard %d invoke m%d: %w", s, m.ID, err)
					return
				}
				want[m.To]++
			}
			for i, n := range nodes {
				if err := n.WaitDeliveries(want[i], cfg.Timeout); err != nil {
					errs[s] = fmt.Errorf("shard %d: %w", s, err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for s := range meshes {
		if errs[s] != nil {
			continue
		}
		nodes, bucket := meshes[s], buckets[s]
		procEvents := make([][]event.Event, cfg.Procs)
		for i, n := range nodes {
			if err := n.Err(); err != nil {
				errs[s] = fmt.Errorf("shard %d P%d: %w", s, i, err)
				break
			}
			procEvents[i] = n.Events()
		}
		if errs[s] == nil {
			if _, err := userview.New(bucket, procEvents); err != nil {
				errs[s] = fmt.Errorf("shard %d run invalid: %w", s, err)
			}
		}
	}
	for _, err := range errs {
		if err != nil {
			return ShardLoadResult{}, fmt.Errorf("shard load mesh %s: %w", p.Name, err)
		}
	}
	out := ShardLoadResult{
		Runtime: "mesh", Protocol: p.Name, Class: protoClass(p.Maker),
		Msgs: len(msgs), Keys: cfg.Keys, Shards: cfg.Shards,
	}
	out.ElapsedMs = float64(elapsed.Microseconds()) / 1000
	out.MsgsPerSec = float64(len(msgs)) / elapsed.Seconds()
	fillShardLatency(probe, &out)
	return out, nil
}
